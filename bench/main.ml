(* The full benchmark harness.

   Part 1 prints the paper-verification certificate and regenerates
   every experiment table of EXPERIMENTS.md (T1-T22)
   and reports each table's shape checks - the paper's qualitative
   claims.  Part 2 runs bechamel microbenchmarks of the hot paths
   behind those tables.

   Usage:
     main.exe                 full experiments + microbenchmarks
     main.exe --quick         reduced sizes (CI-speed) + baseline shape check
     main.exe --only T1,T5    a subset of experiments
     main.exe --seed 42       change the master seed
     main.exe --no-micro      skip the microbenchmarks
     main.exe --no-exp        skip the experiment tables
     main.exe --metrics F     write the obs.json run manifest to F
                              (- writes it to stdout)
     main.exe --no-obs        disable all instrumentation
     main.exe --trace F       write the event trace to F (.jsonl
                              streams; else Perfetto JSON)
     main.exe --progress      live per-experiment progress on stderr
     main.exe --jobs N        worker domains for the experiment fan-out
                              and the trial grids inside experiments
     main.exe --workers N     worker processes for the experiment
                              fan-out (the fabric swarm) instead of
                              the --jobs domain pool; same tables,
                              same shape checks
     main.exe --corpus DIR    content-addressed graph corpus cache
                              (default: SCALEFREE_CORPUS if set)
     main.exe --baseline F    metric-name baseline for --quick
                              (default bench/baseline_quick.json)
     main.exe --telemetry P   serve live telemetry on a unix socket at P
                              (default: SCALEFREE_TELEMETRY if set);
                              attach with sftop P
     main.exe --telemetry-tick S
                              telemetry sampling period (default 0.5) *)

type options = {
  quick : bool;
  ids : string list option;
  seed : int;
  micro : bool;
  experiments : bool;
  metrics : string option;
  obs : bool;
  trace : string option;
  progress : bool;
  jobs : int;
  workers : int;
  worker_connect : string option;
  corpus : string option;
  baseline : string;
  telemetry : string option;
  telemetry_tick : float;
}

let parse_args () =
  let quick = ref false
  and only = ref ""
  and seed = ref 20070615
  and micro = ref true
  and experiments = ref true
  and metrics = ref ""
  and obs = ref true
  and trace = ref ""
  and progress = ref false
  and jobs = ref 0
  and workers = ref 0
  and worker_connect = ref ""
  and corpus = ref ""
  and baseline = ref "bench/baseline_quick.json"
  and telemetry = ref ""
  and telemetry_tick = ref 0.5 in
  let spec =
    [
      ("--quick", Arg.Set quick, "reduced problem sizes");
      ("--only", Arg.Set_string only, "comma-separated experiment ids (e.g. T1,T5)");
      ("--seed", Arg.Set_int seed, "master seed (default 20070615)");
      ("--no-micro", Arg.Clear micro, "skip microbenchmarks");
      ("--no-exp", Arg.Clear experiments, "skip experiment tables");
      ( "--metrics",
        Arg.Set_string metrics,
        "write the obs.json run manifest to FILE (- for stdout)" );
      ("--no-obs", Arg.Clear obs, "disable all instrumentation (no counters, no manifest)");
      ( "--trace",
        Arg.Set_string trace,
        "write the event trace to FILE (.jsonl streams; else Perfetto JSON)" );
      ("--progress", Arg.Set progress, "live per-experiment progress on stderr");
      ( "--jobs",
        Arg.Set_int jobs,
        "worker domains for the parallel sections (default: SCALEFREE_JOBS or the \
         recommended domain count, capped at 8); output is identical at any value" );
      ( "--workers",
        Arg.Set_int workers,
        "worker processes for the experiment fan-out (the fabric swarm, \
         doc/FABRIC.md) instead of the --jobs domain pool; tables, shape checks \
         and counter totals are identical either way" );
      ( "--worker-connect",
        Arg.Set_string worker_connect,
        "internal: run as an experiment worker attached to the coordinator socket \
         at PATH (spawned by --workers)" );
      ( "--corpus",
        Arg.Set_string corpus,
        "content-addressed graph corpus cache directory (doc/STORAGE.md; default: \
         SCALEFREE_CORPUS if set); generated instance graphs are stored and replayed \
         with byte-identical results" );
      ( "--baseline",
        Arg.Set_string baseline,
        "metric-name baseline diffed against in --quick mode" );
      ( "--telemetry",
        Arg.Set_string telemetry,
        "serve live telemetry on a unix-domain socket at PATH while the run is in \
         flight (doc/OBSERVABILITY.md; attach with sftop PATH; default: \
         SCALEFREE_TELEMETRY if set)" );
      ( "--telemetry-tick",
        Arg.Set_float telemetry_tick,
        "background sampling period of the telemetry time series (default 0.5)" );
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) "bench/main.exe";
  let ids =
    if !only = "" then None
    else Some (String.split_on_char ',' !only |> List.map String.trim)
  in
  {
    quick = !quick;
    ids;
    seed = !seed;
    micro = !micro;
    experiments = !experiments;
    metrics = (if !metrics = "" then None else Some !metrics);
    obs = !obs;
    trace = (if !trace = "" then None else Some !trace);
    progress = !progress;
    jobs = !jobs;
    workers = !workers;
    worker_connect = (if !worker_connect = "" then None else Some !worker_connect);
    corpus = (if !corpus = "" then None else Some !corpus);
    baseline = !baseline;
    telemetry =
      (if !telemetry <> "" then Some !telemetry
       else
         match Sys.getenv_opt "SCALEFREE_TELEMETRY" with
         | Some "" | None -> None
         | Some _ as p -> p);
    telemetry_tick = !telemetry_tick;
  }

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)
(* ------------------------------------------------------------------ *)

let run_experiments ~quick ~seed ~progress ~workers ~corpus ids =
  let selected =
    match ids with
    | None -> Sf_experiments.Registry.all
    | Some wanted ->
      List.filter_map
        (fun id ->
          match Sf_experiments.Registry.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment id %s (known: %s)\n" id
              (String.concat ", " (Sf_experiments.Registry.ids ()));
            None)
        wanted
  in
  let failures = ref 0 in
  let reporter =
    if progress then
      Some (Sf_obs.Progress.create ~label:"experiments" ~total:(List.length selected) ())
    else None
  in
  (* the fan-out: one pool task per experiment (or, with --workers, one
     fabric swarm job per experiment in its own process), results
     printed in registry order after the join — tables and checks are
     independent of the job and worker counts; only the [%.1fs] stamps
     (that experiment's own wall time, measured inside the task) vary
     run to run, and the distributed path omits them *)
  let results =
    if workers > 0 && List.length selected > 1 then begin
      let sock_path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "sfbench-grid-%d.sock" (Unix.getpid ()))
      in
      let argv =
        [ Sys.executable_name; "--worker-connect"; sock_path; "--seed"; string_of_int seed ]
        @ (if quick then [ "--quick" ] else [])
        @ (match corpus with Some d -> [ "--corpus"; d ] | None -> [])
      in
      let spawn () = Sf_fabric.Swarm.spawn_exec (Array.of_list argv) in
      List.map
        (fun (e, r) -> (e, r, None))
        (Sf_experiments.Distrib.run_all_processes ~sock_path ~workers ~spawn selected)
    end
    else
      List.map (fun (e, r, dt) -> (e, r, Some dt)) (Sf_experiments.Registry.run_all ~quick ~seed selected)
  in
  List.iter
    (fun ((_ : Sf_experiments.Registry.entry), result, dt) ->
      (match dt with
      | Some dt ->
        Printf.printf "\n######## %s - %s  [%.1fs]\n\n" result.Sf_experiments.Exp.id
          result.Sf_experiments.Exp.title dt
      | None ->
        Printf.printf "\n######## %s - %s\n\n" result.Sf_experiments.Exp.id
          result.Sf_experiments.Exp.title);
      print_string result.Sf_experiments.Exp.output;
      print_newline ();
      List.iter
        (fun (name, ok) ->
          if not ok then incr failures;
          Printf.printf "  [%s] %s\n" (if ok then "ok" else "SHAPE MISMATCH") name)
        result.Sf_experiments.Exp.checks;
      flush stdout;
      Option.iter
        (fun pr -> Sf_obs.Progress.step pr ~detail:result.Sf_experiments.Exp.id)
        reporter)
    results;
  Option.iter Sf_obs.Progress.finish reporter;
  Printf.printf "\n================================================================\n";
  if !failures = 0 then
    Printf.printf "All shape checks passed across %d experiments.\n" (List.length selected)
  else Printf.printf "%d shape check(s) FAILED.\n" !failures;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

open Bechamel

let run_microbenchmarks ~quick =
  Printf.printf "\n######## Microbenchmarks (bechamel, monotonic clock)\n\n%!";
  (* the definitions live in Sf_perf.Suite so that `sfbench record`
     times exactly the same closures with the same configuration *)
  let tests = Sf_perf.Suite.tests ~quick in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Sf_perf.Suite.micro_cfg ~quick in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"sf" tests) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  let fmt_time ns =
    if Float.is_nan ns then "-"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  print_string
    (Sf_stats.Table.render
       ~aligns:[ Sf_stats.Table.Left; Sf_stats.Table.Right; Sf_stats.Table.Right ]
       ~headers:[ "benchmark"; "time/run"; "r2" ]
       ~rows:
         (List.map (fun (name, ns, r2) -> [ name; fmt_time ns; Printf.sprintf "%.3f" r2 ]) rows)
       ())

(* ------------------------------------------------------------------ *)
(* Part 3: the run manifest and the baseline shape check               *)
(* ------------------------------------------------------------------ *)

let write_manifest opts ~wall0 ~cpu0 ~telem path =
  let wall_s = Unix.gettimeofday () -. wall0 in
  let cpu_s = Sys.time () -. cpu0 in
  let extra =
    [
      ("timestamp_s", Sf_obs.Export.json_float (Unix.time ()));
      ("quick", string_of_bool opts.quick);
      ("jobs", string_of_int (Sf_parallel.Pool.default_jobs ()));
      ("wall_s", Sf_obs.Export.json_float wall_s);
      ("cpu_s", Sf_obs.Export.json_float cpu_s);
      (* Sys.time sums CPU across domains, so cpu/wall is the achieved
         parallel speedup of the whole run *)
      ( "parallel_speedup",
        Sf_obs.Export.json_float (if wall_s > 0. then cpu_s /. wall_s else 1.) );
    ]
    @ Sf_obs.Expose.manifest_extras ?listener:(Option.map snd telem) ()
    @
    (* a warm-cache run is auditable from the manifest alone: cache.hit
       / cache.miss say what happened, corpus_dir says where *)
    (match Sf_store.Corpus.cache () with
    | None -> []
    | Some cache ->
      [
        ("corpus_dir", Sf_obs.Export.json_string (Sf_store.Cache.dir cache));
        ("corpus_entries", string_of_int (List.length (Sf_store.Cache.entries cache)));
        ("corpus_bytes", string_of_int (Sf_store.Cache.total_bytes cache));
      ])
  in
  match
    Sf_obs.Export.write_manifest_checked ~extra ~tool:"bench/main.exe" ~seed:opts.seed
      ~mode:(if opts.quick then "quick" else "full")
      ~path ()
  with
  | `Written ->
    (* the confirmation goes to stderr when the manifest itself went to
       stdout (--metrics -) *)
    let print = if path = "-" then Printf.eprintf else Printf.printf in
    print "wrote run manifest to %s (%d metrics, %d top-level spans)\n"
      (if path = "-" then "stdout" else path)
      (List.length (Sf_obs.Registry.names ()))
      (List.length (Sf_obs.Span.roots ()))
  | `Skipped_disabled -> () (* the warning is already on stderr *)
  | `Error msg ->
    Printf.eprintf "cannot write run manifest: %s\n" msg;
    exit 1

(* Shape check only: every metric name of the committed baseline must
   have been registered by this run — a missing name means an
   instrumentation site was lost.  Values and timings are never
   compared.  Extra names are fine (new instrumentation lands before
   the baseline is refreshed). *)
let baseline_shape_check path =
  if not (Sys.file_exists path) then begin
    Printf.printf "baseline %s not found; skipping the metric shape check\n" path;
    true
  end
  else begin
    let wanted = Sf_obs.Export.metric_names_of_file path in
    let have = Sf_obs.Registry.names () in
    let missing = List.filter (fun n -> not (List.mem n have)) wanted in
    let extra = List.filter (fun n -> not (List.mem n wanted)) have in
    if extra <> [] then
      Printf.printf "baseline: %d new metric(s) not yet in %s: %s\n" (List.length extra) path
        (String.concat ", " extra);
    if missing = [] then begin
      Printf.printf "baseline: all %d metric names from %s present.\n" (List.length wanted)
        path;
      true
    end
    else begin
      Printf.printf "baseline: %d metric name(s) MISSING vs %s: %s\n" (List.length missing)
        path (String.concat ", " missing);
      false
    end
  end

(* The [--trace] sinks: the file exporter plus a flight recorder armed
   to dump on the first gave-up run; the top-level handler below dumps
   it again if the harness raises. *)
let attach_trace_sinks opts =
  match opts.trace with
  | None -> (None, [])
  | Some path when not opts.obs ->
    Printf.eprintf
      "observability is disabled (--no-obs); not writing an event trace to %s\n" path;
    (None, [])
  | Some path ->
    let flight = Sf_obs.Flight.create () in
    Sf_obs.Flight.arm flight
      ~trigger:(fun e -> e.Sf_obs.Trace.name = "search.gave_up")
      ~action:(fun f ->
        Printf.eprintf "flight recorder: a strategy gave up; recent events:\n";
        Sf_obs.Flight.dump f);
    (* kill -USR1 <pid> dumps the same ring for stuck runs *)
    ignore (Sf_obs.Flight.install_sigusr1 flight);
    ( Some flight,
      [ Sf_obs.Trace.attach (Sf_obs.Flight.sink flight); Sf_obs.Trace_export.attach_file path ]
    )

(* The --telemetry bracket: a Series sampler plus the socket listener,
   stopped before the manifest is written so the final rss_peak and
   scrape figures cover the whole run. *)
let start_telemetry opts =
  match opts.telemetry with
  | None -> None
  | Some path when not opts.obs ->
    Printf.eprintf
      "observability is disabled (--no-obs); not serving telemetry on %s\n" path;
    None
  | Some path ->
    let series = Sf_obs.Series.create ~tick_s:opts.telemetry_tick () in
    let listener = Sf_obs.Expose.serve ~series ~path () in
    Sf_obs.Series.start series;
    Printf.eprintf "serving live telemetry on %s (attach with: sftop %s)\n%!" path path;
    Some (series, listener)

let stop_telemetry = function
  | None -> ()
  | Some (series, listener) ->
    Sf_obs.Expose.stop listener;
    Sf_obs.Series.stop series

let () =
  let opts = parse_args () in
  (* all phase timings (Timer, Span, manifest wall_s) read bechamel's
     CLOCK_MONOTONIC stub instead of Unix.gettimeofday from here on *)
  Sf_obs.Timer.set_clock (fun () -> Int64.to_float (Monotonic_clock.now ()) /. 1e9);
  (match opts.worker_connect with
  | Some connect ->
    (* an experiment worker spawned by --workers: serve assignments and
       exit without touching the harness machinery *)
    Sf_store.Corpus.configure ?dir:opts.corpus ();
    (match Sf_experiments.Distrib.worker_main ~connect ~quick:opts.quick ~seed:opts.seed with
    | () -> exit 0
    | exception e ->
      Printf.eprintf "bench worker: %s\n" (Printexc.to_string e);
      exit 1)
  | None -> ());
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  if opts.jobs <> 0 then Sf_parallel.Pool.set_default_jobs opts.jobs;
  (* before any domains spawn: the corpus handle is a process global *)
  Sf_store.Corpus.configure ?dir:opts.corpus ();
  if not opts.obs then Sf_obs.Registry.set_enabled false;
  let flight, sink_ids = attach_trace_sinks opts in
  let telem = start_telemetry opts in
  let close_trace () =
    List.iter Sf_obs.Trace.detach sink_ids;
    match opts.trace with
    | Some path when opts.obs -> Printf.printf "wrote event trace to %s\n" path
    | Some _ | None -> ()
  in
  Printf.printf "Non-searchability of random scale-free graphs - experiment harness\n";
  Printf.printf "mode: %s, seed: %d, jobs: %d%s\n"
    (if opts.quick then "quick" else "full")
    opts.seed
    (Sf_parallel.Pool.default_jobs ())
    (if opts.obs then "" else ", observability off");
  (try
     if opts.experiments && opts.ids = None then
       Sf_obs.Span.with_span "verify" (fun () ->
           (* the statement-by-statement certificate heads the full run *)
           let reports = Sf_core.Paper.verify ~seed:opts.seed in
           print_newline ();
           print_string (Sf_core.Paper.render reports);
           if not (Sf_core.Paper.all_pass reports) then
             print_endline "WARNING: some paper statements failed their self-check.");
     if opts.experiments then
       Sf_obs.Span.with_span "experiments" (fun () ->
           run_experiments ~quick:opts.quick ~seed:opts.seed ~progress:opts.progress
             ~workers:opts.workers ~corpus:opts.corpus opts.ids);
     if opts.micro then
       Sf_obs.Span.with_span "microbench" (fun () -> run_microbenchmarks ~quick:opts.quick)
   with exn ->
     (match flight with
     | Some f when Sf_obs.Flight.seen f > 0 ->
       Printf.eprintf "flight recorder: run raised (%s); recent events:\n"
         (Printexc.to_string exn);
       Sf_obs.Flight.dump f
     | Some _ | None -> ());
     stop_telemetry telem;
     close_trace ();
     (* a partial trace file is still written *)
     raise exn);
  stop_telemetry telem;
  close_trace ();
  Option.iter (write_manifest opts ~wall0 ~cpu0 ~telem) opts.metrics;
  let shape_ok =
    (* the check needs the full default metric surface: skip it when a
       subset of the work ran, or when instrumentation is off *)
    if opts.quick && opts.obs && opts.ids = None && opts.experiments && opts.micro then
      baseline_shape_check opts.baseline
    else true
  in
  if not shape_ok then exit 1
