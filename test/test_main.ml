let () =
  Alcotest.run "scalefree"
    [
      ("prng", Test_prng.suite);
      ("graph", Test_graph.suite);
      ("gen", Test_gen.suite);
      ("search", Test_search.suite);
      ("stats", Test_stats.suite);
      ("core", Test_core.suite);
      ("sim", Test_sim.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("store", Test_store.suite);
      ("trace", Test_trace.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("serve", Test_serve.suite);
      ("fabric", Test_fabric.suite);
      ("perf", Test_perf.suite);
    ]
