(* Tests for the observability layer: counter monotonicity, histogram
   bucket boundaries, span nesting and ordering, registry name
   semantics, and the JSON manifest round-trip.

   The registry is process-global and shared with the instrumented
   libraries, so these tests use a reserved "test.obs." name prefix
   and never call Registry.clear. *)

module Counter = Sf_obs.Counter
module Timer = Sf_obs.Timer
module Histo = Sf_obs.Histo
module Span = Sf_obs.Span
module Registry = Sf_obs.Registry
module Export = Sf_obs.Export

(* --- counters ---------------------------------------------------------- *)

let test_counter_monotone () =
  let c = Counter.create () in
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.incr c;
  Alcotest.(check int) "three increments" 3 (Counter.value c);
  Counter.add c 5;
  Alcotest.(check int) "add" 8 (Counter.value c);
  Counter.add c 0;
  Alcotest.(check int) "zero delta allowed" 8 (Counter.value c);
  Alcotest.check_raises "negative delta rejected"
    (Invalid_argument "Counter.add: negative delta (counters are monotone)") (fun () ->
      Counter.add c (-1));
  Alcotest.(check int) "unchanged after rejection" 8 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

(* --- timers ------------------------------------------------------------ *)

let test_timer_accumulates () =
  let t = Timer.create () in
  Alcotest.(check int) "no intervals" 0 (Timer.count t);
  Alcotest.(check (float 1e-9)) "mean of nothing" 0. (Timer.mean_s t);
  let x = Timer.time t (fun () -> 21 * 2) in
  Alcotest.(check int) "payload returned" 42 x;
  Alcotest.(check int) "one interval" 1 (Timer.count t);
  Alcotest.(check bool) "non-negative total" true (Timer.total_s t >= 0.);
  Timer.start t;
  Timer.stop t;
  Alcotest.(check int) "start/stop interval" 2 (Timer.count t);
  Timer.stop t;
  Alcotest.(check int) "stray stop ignored" 2 (Timer.count t);
  (* exceptions still record the interval *)
  (try Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "interval recorded on raise" 3 (Timer.count t)

(* --- histogram bucket boundaries --------------------------------------- *)

let test_histo_bucket_boundaries () =
  let h = Histo.create () in
  (* base 2: bucket 0 is (-inf, 1]; bucket i >= 1 is (2^(i-1), 2^i] *)
  Alcotest.(check int) "negatives in bucket 0" 0 (Histo.bucket_index h (-3.));
  Alcotest.(check int) "zero in bucket 0" 0 (Histo.bucket_index h 0.);
  Alcotest.(check int) "one in bucket 0" 0 (Histo.bucket_index h 1.);
  Alcotest.(check int) "just above one" 1 (Histo.bucket_index h 1.0001);
  Alcotest.(check int) "two closes bucket 1" 1 (Histo.bucket_index h 2.);
  Alcotest.(check int) "just above two" 2 (Histo.bucket_index h 2.0001);
  Alcotest.(check int) "four closes bucket 2" 2 (Histo.bucket_index h 4.);
  Alcotest.(check int) "exact powers stay put" 10 (Histo.bucket_index h 1024.);
  Alcotest.(check int) "just above a power" 11 (Histo.bucket_index h 1024.5);
  List.iter (fun v -> Histo.observe h v) [ 0.5; 1.; 1.5; 2.; 3.; 4.; 100. ];
  Alcotest.(check int) "count" 7 (Histo.count h);
  Alcotest.(check (float 1e-9)) "sum" 112. (Histo.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.5 (Histo.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100. (Histo.max_value h);
  Alcotest.(check int) "bucket 0 holds 0.5 and 1" 2 (Histo.bucket_count h 0);
  Alcotest.(check int) "bucket 1 holds 1.5 and 2" 2 (Histo.bucket_count h 1);
  Alcotest.(check int) "bucket 2 holds 3 and 4" 2 (Histo.bucket_count h 2);
  Alcotest.(check int) "bucket 7 holds 100" 1 (Histo.bucket_count h 7);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "non-empty buckets with upper bounds"
    [ (1., 2); (2., 2); (4., 2); (128., 1) ]
    (Histo.buckets h)

let test_histo_quantile_and_base () =
  Alcotest.check_raises "base must exceed 1" (Invalid_argument "Histo.create: need base > 1")
    (fun () -> ignore (Histo.create ~base:1. ()));
  let h = Histo.create ~base:10. () in
  Alcotest.(check int) "ten closes bucket 1 (base 10)" 1 (Histo.bucket_index h 10.);
  Alcotest.(check int) "eleven opens bucket 2 (base 10)" 2 (Histo.bucket_index h 11.);
  Alcotest.(check bool) "quantile of empty is nan" true (Float.is_nan (Histo.quantile h 0.5));
  for v = 1 to 100 do
    Histo.observe_int h v
  done;
  (* quantile returns the bucket upper bound: an upper estimate *)
  Alcotest.(check (float 1e-9)) "p50 upper estimate" 100. (Histo.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p05 in the first decade" 10. (Histo.quantile h 0.05);
  Alcotest.check_raises "quantile range" (Invalid_argument "Histo.quantile: need q in [0, 1]")
    (fun () -> ignore (Histo.quantile h 1.5))

let test_histo_quantile_edges () =
  let h = Histo.create () in
  (* empty: every legal q is nan, including the endpoints *)
  Alcotest.(check bool) "empty q=0 is nan" true (Float.is_nan (Histo.quantile h 0.));
  Alcotest.(check bool) "empty q=1 is nan" true (Float.is_nan (Histo.quantile h 1.));
  (* single sample: every quantile is that sample's bucket bound *)
  Histo.observe h 5.;
  Alcotest.(check (float 1e-9)) "single q=0" 8. (Histo.quantile h 0.);
  Alcotest.(check (float 1e-9)) "single q=0.5" 8. (Histo.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "single q=1" 8. (Histo.quantile h 1.);
  (* two spread samples: the endpoints bracket, q=0 skips empty
     buckets below the minimum *)
  let h2 = Histo.create () in
  Histo.observe h2 1.;
  Histo.observe h2 100.;
  Alcotest.(check (float 1e-9)) "q=0 is the min's bucket" 1. (Histo.quantile h2 0.);
  Alcotest.(check (float 1e-9)) "q=0.5 is the lower bucket" 1. (Histo.quantile h2 0.5);
  Alcotest.(check (float 1e-9)) "q=1 is the max's bucket" 128. (Histo.quantile h2 1.);
  (* out-of-range rejections on both sides *)
  Alcotest.check_raises "q below range" (Invalid_argument "Histo.quantile: need q in [0, 1]")
    (fun () -> ignore (Histo.quantile h2 (-0.1)));
  Alcotest.check_raises "q above range" (Invalid_argument "Histo.quantile: need q in [0, 1]")
    (fun () -> ignore (Histo.quantile h2 1.5))

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting_and_order () =
  Span.reset ();
  let r =
    Span.with_span "outer" (fun () ->
        Span.with_span "first-child" (fun () -> ());
        Span.with_span "second-child" (fun () -> ());
        17)
  in
  Alcotest.(check int) "payload returned" 17 r;
  Span.with_span "later-root" (fun () -> ());
  (match Span.roots () with
  | [ outer; later ] ->
    Alcotest.(check string) "roots in completion order" "outer" (Span.name outer);
    Alcotest.(check string) "second root" "later-root" (Span.name later);
    Alcotest.(check (list string)) "children in order" [ "first-child"; "second-child" ]
      (List.map Span.name (Span.children outer));
    Alcotest.(check bool) "durations non-negative" true
      (Span.duration_s outer >= 0. && Span.duration_s later >= 0.);
    let child_total =
      List.fold_left (fun acc c -> acc +. Span.duration_s c) 0. (Span.children outer)
    in
    Alcotest.(check bool) "children fit inside the parent" true
      (child_total <= Span.duration_s outer +. 1e-6)
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots));
  Span.reset ();
  Alcotest.(check int) "reset empties the forest" 0 (List.length (Span.roots ()))

let test_span_exception_safety () =
  Span.reset ();
  (try Span.with_span "survives-raise" (fun () -> failwith "boom") with Failure _ -> ());
  (match Span.roots () with
  | [ s ] -> Alcotest.(check string) "span closed by the exception" "survives-raise" (Span.name s)
  | _ -> Alcotest.fail "span should have been completed");
  Span.reset ()

let test_span_disabled_is_transparent () =
  Span.reset ();
  Registry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled true)
    (fun () ->
      let r = Span.with_span "invisible" (fun () -> 5) in
      Alcotest.(check int) "body still runs" 5 r);
  Alcotest.(check int) "no span recorded while disabled" 0 (List.length (Span.roots ()))

(* --- registry ----------------------------------------------------------- *)

let test_registry_get_or_create () =
  let a = Registry.counter "test.obs.shared" in
  let b = Registry.counter "test.obs.shared" in
  Alcotest.(check bool) "same instance returned" true (a == b);
  Counter.incr a;
  Alcotest.(check int) "one object behind the name" 1 (Counter.value b)

let test_registry_kind_collision () =
  ignore (Registry.counter "test.obs.collide");
  Alcotest.check_raises "timer under a counter name"
    (Invalid_argument "Registry: metric \"test.obs.collide\" already registered as a counter")
    (fun () -> ignore (Registry.timer "test.obs.collide"));
  Alcotest.check_raises "histogram under a counter name"
    (Invalid_argument "Registry: metric \"test.obs.collide\" already registered as a counter")
    (fun () -> ignore (Registry.histo "test.obs.collide"))

let test_registry_name_grammar () =
  Alcotest.check_raises "empty name" (Invalid_argument "Registry: empty metric name") (fun () ->
      ignore (Registry.counter ""));
  Alcotest.check_raises "bad character"
    (Invalid_argument "Registry: bad character ' ' in metric name \"test obs\"") (fun () ->
      ignore (Registry.counter "test obs"))

let test_registry_gauge_and_names () =
  let g = Registry.gauge "test.obs.gauge" in
  Alcotest.(check bool) "fresh gauge unset" false (Registry.gauge_set g);
  Registry.set_gauge g 2.5;
  Alcotest.(check bool) "gauge set" true (Registry.gauge_set g);
  Alcotest.(check (float 1e-9)) "gauge value" 2.5 (Registry.gauge_value g);
  Alcotest.(check bool) "names are sorted" true
    (let names = Registry.names () in
     List.sort compare names = names);
  Alcotest.(check bool) "gauge listed" true (List.mem "test.obs.gauge" (Registry.names ()))

(* --- export round-trip --------------------------------------------------- *)

let test_manifest_roundtrip () =
  ignore (Registry.counter "test.obs.roundtrip");
  let manifest =
    Export.manifest_json
      ~extra:[ ("note", Export.json_string "shape only: {\"metrics\": tricky}") ]
      ~tool:"test" ~seed:7 ~mode:"unit" ()
  in
  let names = Export.metric_names_of_manifest manifest in
  Alcotest.(check (list string)) "manifest names = registry names" (Registry.names ()) names;
  (* the scanner is not fooled by nested objects inside metric values *)
  Alcotest.(check bool) "no bucket keys leak" true
    (List.for_all (fun n -> n <> "kind" && n <> "value" && n <> "buckets") names)

let test_manifest_without_metrics_section () =
  Alcotest.(check (list string)) "no metrics object" []
    (Export.metric_names_of_manifest {|{"tool": "x", "seed": 3}|})

let test_csv_export_covers_registry () =
  let csv = Export.metrics_csv () in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header plus one row per metric"
    (1 + List.length (Registry.names ()))
    (List.length lines);
  Alcotest.(check string) "header" "name,kind,value,count,mean" (List.hd lines)

let test_csv_export_escapes_tricky_names () =
  (* the registry admits commas and quotes precisely because the CSV
     exporter escapes per RFC 4180 (Sf_stats.Csv.escape_field); a
     tricky name must survive a full parse round-trip *)
  let tricky = {|test.obs.csv,tricky"name|} in
  let c = Registry.counter tricky in
  Counter.incr c;
  let rows = Sf_stats.Csv.parse (Export.metrics_csv ()) in
  match List.filter (fun row -> List.nth_opt row 0 = Some tricky) rows with
  | [ row ] ->
    Alcotest.(check string) "kind survives" "counter" (List.nth row 1);
    Alcotest.(check bool) "value parses" true
      (match float_of_string_opt (List.nth row 2) with
      | Some v -> v >= 1.
      | None -> false)
  | rows -> Alcotest.failf "expected exactly one row named %S, got %d" tricky (List.length rows)

let test_disabled_counters_freeze_sites () =
  (* instrumented library sites guard on Registry.enabled: a search run
     with observability off must leave the search counters untouched *)
  let requests = Registry.counter "search.requests" in
  let before = Counter.value requests in
  Registry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Registry.set_enabled true)
    (fun () ->
      let rng = Sf_prng.Rng.of_seed 11 in
      let g = Sf_graph.Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:200) in
      let outcome =
        Sf_search.Runner.search ~rng g Sf_search.Strategies.bfs ~source:1 ~target:200
      in
      Alcotest.(check bool) "search still works" true
        (outcome.Sf_search.Runner.to_target <> None));
  Alcotest.(check int) "no requests counted while disabled" before (Counter.value requests)

let suite =
  [
    ("counter monotonicity", `Quick, test_counter_monotone);
    ("timer accumulates", `Quick, test_timer_accumulates);
    ("histogram bucket boundaries", `Quick, test_histo_bucket_boundaries);
    ("histogram quantiles and bases", `Quick, test_histo_quantile_and_base);
    ("histogram quantile edge cases", `Quick, test_histo_quantile_edges);
    ("span nesting and ordering", `Quick, test_span_nesting_and_order);
    ("span exception safety", `Quick, test_span_exception_safety);
    ("span disabled transparency", `Quick, test_span_disabled_is_transparent);
    ("registry get-or-create", `Quick, test_registry_get_or_create);
    ("registry kind collision", `Quick, test_registry_kind_collision);
    ("registry name grammar", `Quick, test_registry_name_grammar);
    ("registry gauges and names", `Quick, test_registry_gauge_and_names);
    ("manifest round-trip", `Quick, test_manifest_roundtrip);
    ("manifest without metrics", `Quick, test_manifest_without_metrics_section);
    ("csv export", `Quick, test_csv_export_covers_registry);
    ("csv export escapes tricky names", `Quick, test_csv_export_escapes_tricky_names);
    ("disabled mode freezes counters", `Quick, test_disabled_counters_freeze_sites);
  ]
