(* Tests for the search formalism: the oracle's information hiding and
   request accounting, every strategy's behaviour on known graphs, the
   runner, geographic routing and percolation search. *)

module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module Oracle = Sf_search.Oracle
module Strategy = Sf_search.Strategy
module Strategies = Sf_search.Strategies
module Runner = Sf_search.Runner
module Heap = Sf_search.Heap

let path_graph n = Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i + 1, i + 2)))

let star_graph n =
  (* center 1, leaves 2..n *)
  Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i + 2, 1)))

let oracle_on ?(model = Oracle.Weak) ?(source = 1) ?(target = 2) g =
  Oracle.start ~rng:(Rng.of_seed 1000) model (Ugraph.of_digraph g) ~source ~target

(* --- Oracle ------------------------------------------------------------ *)

let test_oracle_initial_state () =
  let o = oracle_on ~target:5 (path_graph 5) in
  Alcotest.(check int) "no requests yet" 0 (Oracle.requests o);
  Alcotest.(check bool) "source discovered" true (Oracle.is_discovered o 1);
  Alcotest.(check bool) "others hidden" false (Oracle.is_discovered o 2);
  Alcotest.(check int) "one discovery" 1 (Oracle.discovered_count o);
  Alcotest.(check int) "source degree visible" 1 (Oracle.degree o 1);
  Alcotest.(check bool) "not found" false (Oracle.target_found o)

let test_oracle_hides_undiscovered () =
  let o = oracle_on (path_graph 5) in
  Alcotest.check_raises "degree of undiscovered"
    (Invalid_argument "Oracle.handles: vertex not discovered") (fun () ->
      ignore (Oracle.degree o 3));
  Alcotest.check_raises "handles of undiscovered"
    (Invalid_argument "Oracle.handles: vertex not discovered") (fun () ->
      ignore (Oracle.handles o 3))

let test_weak_request_reveals () =
  let o = oracle_on ~target:3 (path_graph 3) in
  let h = (Oracle.handles o 1).(0) in
  Alcotest.(check bool) "not yet requested" false (Oracle.handle_requested o h);
  Alcotest.(check (option (pair int int))) "endpoints hidden" None (Oracle.endpoints_if_known o h);
  let far = Oracle.request_weak o ~owner:1 h in
  Alcotest.(check int) "far endpoint" 2 far;
  Alcotest.(check int) "one request" 1 (Oracle.requests o);
  Alcotest.(check bool) "requested flag" true (Oracle.handle_requested o h);
  Alcotest.(check bool) "far endpoint discovered" true (Oracle.is_discovered o 2);
  Alcotest.(check int) "degree of 2 now visible" 2 (Oracle.degree o 2);
  (match Oracle.endpoints_if_known o h with
  | Some (a, b) -> Alcotest.(check bool) "endpoints now known" true ((a, b) = (1, 2) || (a, b) = (2, 1))
  | None -> Alcotest.fail "endpoints should be recognisable");
  Alcotest.(check bool) "target not found yet" false (Oracle.target_found o)

let test_shared_handle_identity () =
  (* after discovering both endpoints, the same physical edge carries
     the same handle in both incidence lists *)
  let o = oracle_on ~target:3 (path_graph 3) in
  let h = (Oracle.handles o 1).(0) in
  ignore (Oracle.request_weak o ~owner:1 h);
  let handles2 = Oracle.handles o 2 in
  Alcotest.(check bool) "edge recognisable from the other side" true
    (Array.exists (fun h' -> h' = h) handles2)

let test_wasted_requests_still_count () =
  let o = oracle_on ~target:3 (path_graph 3) in
  let h = (Oracle.handles o 1).(0) in
  ignore (Oracle.request_weak o ~owner:1 h);
  ignore (Oracle.request_weak o ~owner:1 h);
  Alcotest.(check int) "re-request costs" 2 (Oracle.requests o)

let test_request_validation () =
  let o = oracle_on (path_graph 4) in
  Alcotest.check_raises "owner undiscovered"
    (Invalid_argument "Oracle.request_weak: vertex not discovered") (fun () ->
      ignore (Oracle.request_weak o ~owner:3 0));
  Alcotest.check_raises "strong request on weak oracle"
    (Invalid_argument "Oracle.request_strong: not a strong-model instance") (fun () ->
      ignore (Oracle.request_strong o 1));
  let h = (Oracle.handles o 1).(0) in
  ignore (Oracle.request_weak o ~owner:1 h);
  (* handle of vertex 2's far side is not incident to 1 *)
  let far_handle =
    Array.to_list (Oracle.handles o 2) |> List.find (fun h' -> h' <> h)
  in
  Alcotest.check_raises "handle not incident to owner"
    (Invalid_argument "Ugraph.other_endpoint: vertex is not an endpoint") (fun () ->
      ignore (Oracle.request_weak o ~owner:1 far_handle))

let test_found_bookkeeping () =
  let o = oracle_on ~target:3 (path_graph 4) in
  let h1 = (Oracle.handles o 1).(0) in
  ignore (Oracle.request_weak o ~owner:1 h1);
  (* vertex 2 is a neighbour of target 3: neighbor counter fires at 1 *)
  Alcotest.(check (option int)) "neighbor reached at 1" (Some 1) (Oracle.requests_when_neighbor o);
  Alcotest.(check (option int)) "target not yet" None (Oracle.requests_when_found o);
  let h2 =
    Array.to_list (Oracle.handles o 2)
    |> List.find (fun h -> not (Oracle.handle_requested o h))
  in
  ignore (Oracle.request_weak o ~owner:2 h2);
  Alcotest.(check (option int)) "target found at 2" (Some 2) (Oracle.requests_when_found o);
  Alcotest.(check bool) "found" true (Oracle.target_found o)

let test_source_equals_neighbor_of_target () =
  let o = oracle_on ~source:2 ~target:3 (path_graph 4) in
  Alcotest.(check (option int)) "starting next to the target scores 0" (Some 0)
    (Oracle.requests_when_neighbor o)

let test_strong_request () =
  let o = oracle_on ~model:Oracle.Strong ~source:1 ~target:4 (star_graph 5) in
  let neighbors = Oracle.request_strong o 1 in
  Alcotest.(check int) "one request" 1 (Oracle.requests o);
  Alcotest.(check (list int)) "all leaves revealed" [ 2; 3; 4; 5 ] (List.sort compare neighbors);
  Alcotest.(check bool) "explored" true (Oracle.is_explored o 1);
  Alcotest.(check bool) "leaf discovered" true (Oracle.is_discovered o 3);
  Alcotest.(check bool) "target found" true (Oracle.target_found o);
  Alcotest.(check (option int)) "found at 1" (Some 1) (Oracle.requests_when_found o)

let test_strong_neighbor_multiplicity_collapsed () =
  let g = Digraph.of_edges ~n:2 [ (1, 2); (1, 2); (2, 2) ] in
  let o = Oracle.start ~rng:(Rng.of_seed 3) Oracle.Strong (Ugraph.of_digraph g) ~source:1 ~target:2 in
  let neighbors = Oracle.request_strong o 1 in
  Alcotest.(check (list int)) "multiplicity collapsed" [ 2 ] neighbors

let test_handle_obfuscation () =
  (* with obfuscation on, public handles are assigned in discovery
     order starting at 0, regardless of physical edge ids *)
  let g = path_graph 6 in
  let o = Oracle.start ~rng:(Rng.of_seed 4) Oracle.Weak (Ugraph.of_digraph g) ~source:5 ~target:1 in
  let hs = Oracle.handles o 5 in
  Array.iter
    (fun h -> Alcotest.(check bool) "small public ids" true (h >= 0 && h < 2))
    hs

let test_self_loop_request () =
  let g = Digraph.of_edges ~n:2 [ (1, 1); (1, 2) ] in
  let o = Oracle.start ~rng:(Rng.of_seed 5) Oracle.Weak (Ugraph.of_digraph g) ~source:1 ~target:2 in
  (* find the self-loop handle: requesting it returns 1 itself *)
  let hs = Oracle.handles o 1 in
  Alcotest.(check int) "two handles (loop counted once)" 2 (Array.length hs);
  let results = Array.map (fun h -> Oracle.request_weak o ~owner:1 h) hs in
  Array.sort compare results;
  Alcotest.(check (array int)) "loop returns self, edge returns 2" [| 1; 2 |] results

(* --- Heap ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v) [ (1., 1); (5., 2); (3., 3); (5., 4); (0.5, 5) ];
  Alcotest.(check int) "size" 5 (Heap.length h);
  let first = Heap.pop_max h in
  let second = Heap.pop_max h in
  (match (first, second) with
  | Some (p1, _), Some (p2, _) ->
    Alcotest.(check (float 1e-9)) "max first" 5. p1;
    Alcotest.(check (float 1e-9)) "max second" 5. p2
  | _ -> Alcotest.fail "pops should succeed");
  Alcotest.(check int) "size after pops" 3 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in non-increasing priority order" ~count:200
    QCheck.(list (float_range (-100.) 100.))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p i) priorities;
      let rec drain acc =
        match Heap.pop_max h with Some (p, _) -> drain (p :: acc) | None -> acc
      in
      let popped = drain [] in
      (* drained in reverse: acc ends up ascending *)
      List.sort compare popped = popped
      && List.length popped = List.length priorities)

(* --- strategies on known graphs ---------------------------------------------- *)

let run_strategy ?(seed = 7) ?budget strategy g ~source ~target =
  let rng = Rng.of_seed seed in
  Runner.search ?budget ~rng (Ugraph.of_digraph g) strategy ~source ~target

let test_all_weak_strategies_find_target_on_path () =
  let g = path_graph 12 in
  List.iter
    (fun s ->
      let o = run_strategy ~budget:100_000 s g ~source:1 ~target:12 in
      Alcotest.(check bool)
        (Printf.sprintf "%s finds the end of the path" o.Runner.strategy)
        true
        (o.Runner.to_target <> None))
    (Strategies.weak_portfolio ())

let test_bfs_cost_on_path_is_exact () =
  (* On a path searched from one end, BFS must pay exactly the distance:
     every request discovers the next vertex. *)
  let g = path_graph 10 in
  let o = run_strategy Strategies.bfs g ~source:1 ~target:10 in
  Alcotest.(check (option int)) "9 requests to reach the far end" (Some 9) o.Runner.to_target

let test_strategies_never_exceed_useful_requests_on_star () =
  (* On a star with target a leaf, any skip-known strategy needs at most
     n-1 requests (all spokes). *)
  let g = star_graph 20 in
  List.iter
    (fun s ->
      let o = run_strategy s g ~source:1 ~target:17 in
      match o.Runner.to_target with
      | Some r ->
        Alcotest.(check bool) (Printf.sprintf "%s <= 19 on star" o.Runner.strategy) true (r <= 19)
      | None -> Alcotest.fail "must find a leaf of the star")
    [ Strategies.bfs; Strategies.dfs; Strategies.high_degree; Strategies.random_edge ~skip_known:true ]

let test_strong_strategies_find_target () =
  let rng = Rng.of_seed 8 in
  let g = Sf_gen.Mori.tree rng ~p:0.6 ~t:300 in
  List.iter
    (fun s ->
      let o = run_strategy s g ~source:1 ~target:295 in
      Alcotest.(check bool)
        (Printf.sprintf "%s finds target" o.Runner.strategy)
        true
        (o.Runner.to_target <> None))
    (Strategies.strong_portfolio ())

let test_strong_cheaper_than_weak_on_star () =
  (* one strong request on the centre discovers everything *)
  let g = star_graph 30 in
  let o = run_strategy Strategies.strong_seq g ~source:1 ~target:25 in
  Alcotest.(check (option int)) "single strong request suffices" (Some 1) o.Runner.to_target

let test_runner_budget () =
  let g = path_graph 100 in
  let o = run_strategy ~budget:5 Strategies.bfs g ~source:1 ~target:100 in
  Alcotest.(check int) "stopped at budget" 5 o.Runner.total_requests;
  Alcotest.(check (option int)) "not found" None o.Runner.to_target;
  Alcotest.(check bool) "did not give up" false o.Runner.gave_up

let test_runner_give_up_on_unreachable () =
  let g = Digraph.of_edges ~n:4 [ (1, 2); (3, 4) ] in
  let o = run_strategy Strategies.bfs g ~source:1 ~target:4 in
  Alcotest.(check bool) "gave up" true o.Runner.gave_up;
  Alcotest.(check (option int)) "never found" None o.Runner.to_target;
  Alcotest.(check int) "explored its component" 2 o.Runner.discovered

let test_runner_stop_at_neighbor () =
  let g = path_graph 10 in
  let rng = Rng.of_seed 9 in
  let o =
    Runner.search ~stop_at:Runner.At_neighbor ~rng (Ugraph.of_digraph g) Strategies.bfs
      ~source:1 ~target:10
  in
  Alcotest.(check (option int)) "stops one hop early" (Some 8) o.Runner.to_neighbor;
  Alcotest.(check (option int)) "target itself not discovered" None o.Runner.to_target

let test_runner_model_mismatch () =
  let g = path_graph 4 in
  let o = oracle_on ~target:4 g in
  Alcotest.check_raises "weak oracle, strong strategy"
    (Invalid_argument "Runner.run: strategy and oracle use different knowledge models")
    (fun () -> ignore (Runner.run ~rng:(Rng.of_seed 1) Strategies.strong_seq o))

let test_source_equals_target () =
  let g = path_graph 5 in
  let o = run_strategy Strategies.bfs g ~source:3 ~target:3 in
  Alcotest.(check (option int)) "zero requests" (Some 0) o.Runner.to_target

let test_random_walk_moves () =
  (* on a path, the walk's request count equals hops taken; ensure it
     progresses and eventually arrives on a small instance *)
  let g = path_graph 6 in
  let o = run_strategy ~budget:10_000 Strategies.random_walk g ~source:1 ~target:6 in
  Alcotest.(check bool) "walk arrives" true (o.Runner.to_target <> None)

let test_high_degree_prefers_hub () =
  (* star centre has max degree: high-degree explores it before leaves *)
  let g = star_graph 15 in
  (* searching from a leaf: the first request reveals the centre, the
     strategy must then drain the centre's spokes *)
  let o = run_strategy Strategies.high_degree g ~source:3 ~target:11 in
  match o.Runner.to_target with
  | Some r -> Alcotest.(check bool) "cheap via hub" true (r <= 15)
  | None -> Alcotest.fail "high-degree must find the leaf"

(* --- information hiding: strategies cannot beat the physical limit ----------- *)

let test_no_strategy_teleports () =
  (* any outcome's discovered set must be connected through requested
     edges: |discovered| <= requests + 1 *)
  let rng = Rng.of_seed 10 in
  let g = Sf_gen.Mori.tree rng ~p:0.8 ~t:400 in
  List.iter
    (fun s ->
      let o = run_strategy s g ~source:1 ~target:399 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: discoveries bounded by requests" o.Runner.strategy)
        true
        (o.Runner.discovered <= o.Runner.total_requests + 1))
    (Strategies.weak_portfolio ())

let adjacent u v w =
  List.exists (fun x -> x = w) (Ugraph.neighbors u v)

let test_discovery_path_is_real_path () =
  (* every strategy, weak and strong, must leave a certified graph path
     from the source to the target in the discovery tree - the paper's
     actual deliverable ("find a path to vertex n") *)
  let rng = Rng.of_seed 90 in
  let g = Sf_gen.Mori.graph rng ~p:0.6 ~m:2 ~n:250 in
  let u = Ugraph.of_digraph g in
  List.iter
    (fun strategy ->
      let oracle =
        Oracle.start ~rng strategy.Strategy.model u ~source:1 ~target:240
      in
      let outcome = Runner.run ~budget:100_000 ~rng strategy oracle in
      match outcome.Runner.to_target with
      | None -> Alcotest.fail (strategy.Strategy.name ^ " should find the target")
      | Some _ ->
        let path = Oracle.discovery_path oracle 240 in
        Alcotest.(check int) "starts at source" 1 (List.hd path);
        Alcotest.(check int) "ends at target" 240 (List.nth path (List.length path - 1));
        let rec check_edges = function
          | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d-%d is an edge" strategy.Strategy.name a b)
              true (adjacent u a b);
            check_edges rest
          | _ -> ()
        in
        check_edges path)
    (Strategies.weak_portfolio () @ Strategies.strong_portfolio ())

let test_discovery_parent_of_source () =
  let o = oracle_on ~target:3 (path_graph 4) in
  Alcotest.(check (option int)) "source has no parent" None (Oracle.discovery_parent o 1);
  let h = (Oracle.handles o 1).(0) in
  ignore (Oracle.request_weak o ~owner:1 h);
  Alcotest.(check (option int)) "revealed by the source" (Some 1) (Oracle.discovery_parent o 2);
  Alcotest.(check (list int)) "two-vertex path" [ 1; 2 ] (Oracle.discovery_path o 2)

let test_epsilon_greedy_finds_target () =
  let rng = Rng.of_seed 80 in
  let g = Sf_gen.Mori.tree rng ~p:0.6 ~t:300 in
  List.iter
    (fun eps ->
      let o =
        run_strategy ~budget:50_000 (Strategies.epsilon_greedy ~epsilon:eps) g ~source:1
          ~target:295
      in
      Alcotest.(check bool)
        (Printf.sprintf "eps=%.1f finds target" eps)
        true
        (o.Runner.to_target <> None))
    [ 0.; 0.3; 1. ];
  Alcotest.check_raises "epsilon out of range"
    (Invalid_argument "Strategies.epsilon_greedy: need epsilon in [0,1]") (fun () ->
      ignore (Strategies.epsilon_greedy ~epsilon:1.5))

let test_restart_walk_finds_target () =
  let rng = Rng.of_seed 81 in
  let g = Sf_gen.Mori.tree rng ~p:0.6 ~t:120 in
  let o = run_strategy ~budget:200_000 (Strategies.restart_walk ~restart:0.1) g ~source:1 ~target:115 in
  Alcotest.(check bool) "restart walk arrives" true (o.Runner.to_target <> None);
  (* restart = 0 must behave like a plain walk (still correct) *)
  let o0 = run_strategy ~budget:200_000 (Strategies.restart_walk ~restart:0.) g ~source:1 ~target:115 in
  Alcotest.(check bool) "zero-restart walk arrives" true (o0.Runner.to_target <> None)

let test_timestamp_cheat_grabs_target_edge () =
  (* Non-obfuscated Mori tree where the father of the target is the
     start vertex: the cheat must find the target in one request. *)
  let g = Digraph.of_edges ~n:5 [ (2, 1); (3, 1); (4, 2); (5, 1) ] in
  (* this is a valid fathers-array tree: N_2..N_5 = 1,1,2,1; target 5's
     edge has id 3 and sits in vertex 1's incidence list *)
  let rng = Rng.of_seed 77 in
  let o =
    Runner.search ~obfuscate:false ~rng (Ugraph.of_digraph g) Strategies.timestamp_cheat
      ~source:1 ~target:5
  in
  Alcotest.(check (option int)) "one request via the leaked id" (Some 1) o.Runner.to_target

let test_timestamp_cheat_works_sealed () =
  (* on the default oracle the cheat degenerates to high-degree search
     but must still terminate and find the target *)
  let rng = Rng.of_seed 78 in
  let g = Sf_gen.Mori.tree rng ~p:0.6 ~t:400 in
  let o = run_strategy Strategies.timestamp_cheat g ~source:1 ~target:390 in
  Alcotest.(check bool) "still finds the target" true (o.Runner.to_target <> None)

let test_traced_run_matches_outcome () =
  let rng = Rng.of_seed 95 in
  let g = Sf_gen.Mori.tree rng ~p:0.7 ~t:200 in
  let oracle = Oracle.start ~rng Oracle.Weak (Ugraph.of_digraph g) ~source:1 ~target:190 in
  let outcome, trace = Runner.run_traced ~rng Strategies.bfs oracle in
  Alcotest.(check int) "one event per request" outcome.Runner.total_requests (List.length trace);
  (* indices are 1..N in order; discovered_total is monotone *)
  List.iteri
    (fun i e -> Alcotest.(check int) "sequential indices" (i + 1) e.Runner.index)
    trace;
  let monotone, _ =
    List.fold_left
      (fun (ok, prev) e -> (ok && e.Runner.discovered_total >= prev, e.Runner.discovered_total))
      (true, 0) trace
  in
  Alcotest.(check bool) "discovery counter monotone" true monotone;
  (* every weak event reveals at most one vertex *)
  List.iter
    (fun e -> Alcotest.(check bool) "weak reveals <= 1" true (List.length e.Runner.revealed <= 1))
    trace;
  (* csv renders one line per event plus the header *)
  let csv = Runner.trace_to_csv trace in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "csv lines" (List.length trace + 1) (List.length lines)

let test_traced_strong_reveals_batches () =
  let rng = Rng.of_seed 96 in
  let g = star_graph 12 in
  let oracle = Oracle.start ~rng Oracle.Strong (Ugraph.of_digraph g) ~source:1 ~target:9 in
  let _, trace = Runner.run_traced ~rng Strategies.strong_seq oracle in
  match trace with
  | [ e ] ->
    Alcotest.(check int) "one request" 1 e.Runner.index;
    Alcotest.(check int) "reveals all leaves" 11 (List.length e.Runner.revealed)
  | _ -> Alcotest.fail "single strong request expected"

(* --- geographic routing ------------------------------------------------------- *)

let test_geo_routing_on_grid () =
  let rng = Rng.of_seed 11 in
  let side = 12 in
  let t = Sf_gen.Kleinberg.generate rng ~side ~r:2. ~q:1 () in
  let u = Ugraph.of_digraph t.Sf_gen.Kleinberg.graph in
  let dist = Sf_gen.Kleinberg.lattice_distance ~side in
  let source = 1 and target = Sf_gen.Kleinberg.vertex_of_coord ~side ~row:6 ~col:6 in
  let r = Sf_search.Geo_routing.greedy u ~dist ~source ~target ~max_steps:1000 in
  Alcotest.(check bool) "reaches target" true r.Sf_search.Geo_routing.reached;
  Alcotest.(check bool) "no more steps than lattice distance on q>=0 grid" true
    (r.Sf_search.Geo_routing.steps <= dist source target + 50)

let test_geo_routing_trivial () =
  let rng = Rng.of_seed 12 in
  let t = Sf_gen.Kleinberg.generate rng ~side:4 ~r:2. ~q:0 () in
  let u = Ugraph.of_digraph t.Sf_gen.Kleinberg.graph in
  let dist = Sf_gen.Kleinberg.lattice_distance ~side:4 in
  let r = Sf_search.Geo_routing.greedy u ~dist ~source:5 ~target:5 ~max_steps:10 in
  Alcotest.(check int) "zero steps to self" 0 r.Sf_search.Geo_routing.steps;
  Alcotest.(check bool) "reached" true r.Sf_search.Geo_routing.reached

let test_geo_routing_pure_lattice_exact () =
  (* with q = 0 greedy follows a shortest lattice path exactly *)
  let rng = Rng.of_seed 13 in
  let side = 8 in
  let t = Sf_gen.Kleinberg.generate rng ~side ~r:2. ~q:0 () in
  let u = Ugraph.of_digraph t.Sf_gen.Kleinberg.graph in
  let dist = Sf_gen.Kleinberg.lattice_distance ~side in
  let source = 1 and target = Sf_gen.Kleinberg.vertex_of_coord ~side ~row:3 ~col:2 in
  let r = Sf_search.Geo_routing.greedy u ~dist ~source ~target ~max_steps:100 in
  Alcotest.(check bool) "reached" true r.Sf_search.Geo_routing.reached;
  Alcotest.(check int) "exact lattice distance" (dist source target) r.Sf_search.Geo_routing.steps

(* --- percolation search --------------------------------------------------------- *)

let test_percolation_replicate () =
  let rng = Rng.of_seed 14 in
  let g = Ugraph.of_digraph (path_graph 50) in
  let replicas = Sf_search.Percolation.replicate rng g ~owner:25 ~walk_length:10 in
  Alcotest.(check bool) "owner holds a replica" true replicas.(24);
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 replicas in
  Alcotest.(check bool) "walk placed between 1 and 11 replicas" true (count >= 1 && count <= 11)

let test_percolation_finds_on_small_graph () =
  let rng = Rng.of_seed 15 in
  let g =
    Sf_gen.Config_model.searchable_power_law rng ~n:500 ~exponent:2.3 ()
  in
  let u = Ugraph.of_digraph g in
  let params = Sf_search.Percolation.default_params ~n:(Ugraph.n_vertices u) in
  let hits = ref 0 in
  let trials = 20 in
  for i = 1 to trials do
    let source = 1 + (i mod Ugraph.n_vertices u) in
    let target = 1 + ((i * 7) mod Ugraph.n_vertices u) in
    if source <> target then begin
      let r = Sf_search.Percolation.run rng u params ~source ~target in
      if r.Sf_search.Percolation.hit then incr hits;
      Alcotest.(check bool) "messages within budget" true
        (r.Sf_search.Percolation.messages <= params.Sf_search.Percolation.max_messages)
    end
  done;
  Alcotest.(check bool) "mostly successful" true (!hits >= trials / 2)

let test_percolation_zero_prob_rarely_hits () =
  let rng = Rng.of_seed 16 in
  let g = Ugraph.of_digraph (path_graph 200) in
  let params =
    {
      Sf_search.Percolation.replication_walk = 2;
      query_walk = 2;
      broadcast_prob = 0.;
      max_messages = 1000;
    }
  in
  (* with no broadcast and tiny walks on a long path, distant content
     is unreachable *)
  let r = Sf_search.Percolation.run rng g params ~source:1 ~target:200 in
  Alcotest.(check bool) "cannot cross the path" false r.Sf_search.Percolation.hit

(* --- qcheck: model consistency -------------------------------------------------- *)

let prop_strong_equals_weak_closure =
  (* one strong request discovers exactly what weak requests on every
     handle of the same vertex discover - the simulation the proof
     rests on *)
  QCheck.Test.make ~name:"strong request = closure of weak requests" ~count:60
    QCheck.(
      make
        ~print:(fun (seed, t) -> Printf.sprintf "(seed=%d, t=%d)" seed t)
        Gen.(pair (int_bound 100_000) (int_range 3 60)))
    (fun (seed, t) ->
      let rng = Rng.of_seed seed in
      let g = Ugraph.of_digraph (Sf_gen.Mori.graph rng ~p:0.7 ~m:2 ~n:t) in
      let weak = Oracle.start ~rng:(Rng.of_seed seed) Oracle.Weak g ~source:1 ~target:t in
      let strong = Oracle.start ~rng:(Rng.of_seed seed) Oracle.Strong g ~source:1 ~target:t in
      ignore (Oracle.request_strong strong 1);
      Array.iter (fun h -> ignore (Oracle.request_weak weak ~owner:1 h)) (Oracle.handles weak 1);
      let discovered oracle =
        List.init (Oracle.discovered_count oracle) (Oracle.discovered_nth oracle)
        |> List.sort compare
      in
      discovered weak = discovered strong)

let prop_kleinberg_distance_is_metric =
  QCheck.Test.make ~name:"toroidal lattice distance is a metric" ~count:200
    QCheck.(
      make
        ~print:(fun (side, a, b, c) -> Printf.sprintf "side=%d a=%d b=%d c=%d" side a b c)
        Gen.(
          int_range 2 20 >>= fun side ->
          let n = side * side in
          triple (int_range 1 n) (int_range 1 n) (int_range 1 n)
          >>= fun (a, b, c) -> return (side, a, b, c)))
    (fun (side, a, b, c) ->
      let d = Sf_gen.Kleinberg.lattice_distance ~side in
      d a a = 0
      && d a b = d b a
      && d a b >= 0
      && d a c <= d a b + d b c
      && (d a b > 0 || a = b))

let prop_requests_never_decrease_knowledge =
  QCheck.Test.make ~name:"discovered set grows monotonically" ~count:40
    QCheck.(
      make
        ~print:(fun (seed, t) -> Printf.sprintf "(seed=%d, t=%d)" seed t)
        Gen.(pair (int_bound 100_000) (int_range 10 100)))
    (fun (seed, t) ->
      let rng = Rng.of_seed seed in
      let g = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t) in
      let oracle = Oracle.start ~rng Oracle.Weak g ~source:1 ~target:t in
      let _, trace = Runner.run_traced ~rng Strategies.dfs oracle in
      fst
        (List.fold_left
           (fun (ok, prev) e -> (ok && e.Runner.discovered_total >= prev, e.Runner.discovered_total))
           (true, 1) trace))

(* --- Observability ----------------------------------------------------- *)

let test_obs_counters_match_outcome () =
  (* The obs counters are process-global, so measure deltas: one
     weak-model search on a fixed seed must advance search.requests,
     search.requests.weak and the per-strategy counter by exactly the
     outcome's total_requests — the same quantity Lemma 1 counts. *)
  let total = Sf_obs.Registry.counter "search.requests" in
  let weak = Sf_obs.Registry.counter "search.requests.weak" in
  let strong = Sf_obs.Registry.counter "search.requests.strong" in
  let by_strategy = Sf_obs.Registry.counter "search.strategy.bfs.requests" in
  let runs = Sf_obs.Registry.counter "search.runs" in
  let before = Sf_obs.Counter.value total in
  let before_weak = Sf_obs.Counter.value weak in
  let before_strong = Sf_obs.Counter.value strong in
  let before_strategy = Sf_obs.Counter.value by_strategy in
  let before_runs = Sf_obs.Counter.value runs in
  let rng = Rng.of_seed 4242 in
  let g = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:400) in
  let outcome = Runner.search ~rng g Strategies.bfs ~source:1 ~target:400 in
  Alcotest.(check bool) "bfs reaches the target" true (outcome.Runner.to_target <> None);
  Alcotest.(check int) "search.requests counts every oracle request"
    outcome.Runner.total_requests
    (Sf_obs.Counter.value total - before);
  Alcotest.(check int) "a weak-model run only advances the weak counter"
    outcome.Runner.total_requests
    (Sf_obs.Counter.value weak - before_weak);
  Alcotest.(check int) "strong counter untouched" 0 (Sf_obs.Counter.value strong - before_strong);
  Alcotest.(check int) "per-strategy attribution" outcome.Runner.total_requests
    (Sf_obs.Counter.value by_strategy - before_strategy);
  Alcotest.(check int) "one run recorded" 1 (Sf_obs.Counter.value runs - before_runs)

let suite =
  [
    ("oracle initial state", `Quick, test_oracle_initial_state);
    ("oracle hides undiscovered", `Quick, test_oracle_hides_undiscovered);
    ("weak request reveals", `Quick, test_weak_request_reveals);
    ("shared handle identity", `Quick, test_shared_handle_identity);
    ("wasted requests count", `Quick, test_wasted_requests_still_count);
    ("request validation", `Quick, test_request_validation);
    ("found bookkeeping", `Quick, test_found_bookkeeping);
    ("source next to target", `Quick, test_source_equals_neighbor_of_target);
    ("strong request", `Quick, test_strong_request);
    ("strong multiplicity", `Quick, test_strong_neighbor_multiplicity_collapsed);
    ("handle obfuscation", `Quick, test_handle_obfuscation);
    ("self-loop request", `Quick, test_self_loop_request);
    ("heap ordering", `Quick, test_heap_ordering);
    ("weak portfolio on path", `Quick, test_all_weak_strategies_find_target_on_path);
    ("bfs exact on path", `Quick, test_bfs_cost_on_path_is_exact);
    ("strategies on star", `Quick, test_strategies_never_exceed_useful_requests_on_star);
    ("strong portfolio", `Quick, test_strong_strategies_find_target);
    ("strong star", `Quick, test_strong_cheaper_than_weak_on_star);
    ("runner budget", `Quick, test_runner_budget);
    ("runner gives up", `Quick, test_runner_give_up_on_unreachable);
    ("runner stop at neighbor", `Quick, test_runner_stop_at_neighbor);
    ("runner model mismatch", `Quick, test_runner_model_mismatch);
    ("source equals target", `Quick, test_source_equals_target);
    ("random walk arrives", `Quick, test_random_walk_moves);
    ("high degree prefers hub", `Quick, test_high_degree_prefers_hub);
    ("no strategy teleports", `Quick, test_no_strategy_teleports);
    ("discovery path is a real path", `Quick, test_discovery_path_is_real_path);
    ("discovery parent", `Quick, test_discovery_parent_of_source);
    ("epsilon greedy", `Quick, test_epsilon_greedy_finds_target);
    ("restart walk", `Quick, test_restart_walk_finds_target);
    ("timestamp cheat grabs leaked id", `Quick, test_timestamp_cheat_grabs_target_edge);
    ("timestamp cheat sealed", `Quick, test_timestamp_cheat_works_sealed);
    ("traced run", `Quick, test_traced_run_matches_outcome);
    ("traced strong batches", `Quick, test_traced_strong_reveals_batches);
    ("geo routing on grid", `Quick, test_geo_routing_on_grid);
    ("geo routing trivial", `Quick, test_geo_routing_trivial);
    ("geo routing exact on lattice", `Quick, test_geo_routing_pure_lattice_exact);
    ("percolation replicate", `Quick, test_percolation_replicate);
    ("percolation finds", `Quick, test_percolation_finds_on_small_graph);
    ("percolation needs probability", `Quick, test_percolation_zero_prob_rarely_hits);
    ("obs counters match outcome", `Quick, test_obs_counters_match_outcome);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_strong_equals_weak_closure;
    QCheck_alcotest.to_alcotest prop_kleinberg_distance_is_metric;
    QCheck_alcotest.to_alcotest prop_requests_never_decrease_knowledge;
  ]
