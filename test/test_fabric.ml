(* The fabric battery for lib/fabric: protocol and checkpoint codec
   exactness, decode strictness under mutilated input, the shard
   runner's crash-resume contract (QCheck over arbitrary kill points),
   the swarm's death-detection/reassignment machinery with real forked
   processes, and the headline determinism claim — measure.csv and
   manifest.json byte-identical across sequential, multi-process,
   fault-injected and killed-then-resumed runs of the same grid
   (doc/FABRIC.md). *)

module Proto = Sf_fabric.Proto
module Ckpt = Sf_fabric.Ckpt
module Grid = Sf_fabric.Grid
module Swarm = Sf_fabric.Swarm
module Worker = Sf_fabric.Worker
module Coordinator = Sf_fabric.Coordinator
module Codec_error = Sf_store.Codec_error
module Rng = Sf_prng.Rng
module S = Sf_core.Searchability

let temp_counter = ref 0

let with_temp_dir body =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-fabric-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ()) (fun () -> body dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The pinned grid every determinism test runs: small enough for the
   battery, rich enough to exercise multiple sizes, strategies and a
   timeout (128/rand-walk runs out of budget twice). *)
let pinned_spec () =
  {
    Grid.gs_model = "mori";
    gs_p = 0.5;
    gs_m = 1;
    gs_alpha = 0.5;
    gs_exponent = 2.3;
    gs_sizes = [ 64; 128 ];
    gs_strategies = [ "high-degree"; "rand-walk" ];
    gs_trials = 4;
    gs_metric = `Neighbor;
    gs_source = `Oldest;
    gs_budget_mul = 4;
    gs_budget_add = 0;
    gs_seed = 11;
  }

(* MD5 of the pinned grid's measure.csv — the cross-PR golden.  If a
   legitimate change moves search outcomes (rng stream, strategy
   semantics), rerun `sffabric run --sizes 64,128 --strategies
   high-degree,rand-walk --trials 4 --seed 11 --workers 0` and update
   this digest together with the golden-output fixtures. *)
let pinned_csv_md5 = "ea6bc9be8d96c7245592e808adc93d43"

(* Worker processes are the test binary re-exec'd with a role in the
   environment (the dispatcher below runs at module init, before
   alcotest). Unix.create_process, not fork: OCaml 5 forbids Unix.fork
   once any domain has been created, and earlier suites in the battery
   spawn pool domains. *)
let spawn_self extras =
  flush stdout;
  flush stderr;
  let env = Array.append (Unix.environment ()) (Array.of_list extras) in
  Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env Unix.stdin
    Unix.stdout Unix.stderr

let () =
  match Sys.getenv_opt "SF_FABRIC_TEST_ROLE" with
  | Some "grid" ->
    let dir = Sys.getenv "SF_FABRIC_TEST_DIR" in
    let connect = Sys.getenv "SF_FABRIC_TEST_SOCK" in
    let fault_rate = float_of_string (Sys.getenv "SF_FABRIC_TEST_FAULT") in
    let ckpt_every = int_of_string (Sys.getenv "SF_FABRIC_TEST_CKPT") in
    let code = try Worker.main ~dir ~connect ~fault_rate ~ckpt_every (); 0 with _ -> 1 in
    exit code
  | Some "swarm" ->
    let connect = Sys.getenv "SF_FABRIC_TEST_SOCK" in
    let marker = Sys.getenv "SF_FABRIC_TEST_MARKER" in
    (try
       Swarm.worker_loop ~connect ~handle:(fun ~job ~body:_ ~progress:_ ~telemetry:_ ->
           if job = 0 && not (Sys.file_exists marker) then begin
             (* leave a note for the replacement, then die rudely *)
             let oc = open_out marker in
             close_out oc;
             Unix.kill (Unix.getpid ()) Sys.sigkill
           end;
           Printf.sprintf "done-%d" job)
     with _ -> ());
    exit 0
  | Some _ | None -> ()

let fork_worker ~dir ~fault_rate ~ckpt_every ~sock_path =
  spawn_self
    [
      "SF_FABRIC_TEST_ROLE=grid";
      "SF_FABRIC_TEST_DIR=" ^ dir;
      "SF_FABRIC_TEST_SOCK=" ^ sock_path;
      "SF_FABRIC_TEST_FAULT=" ^ string_of_float fault_rate;
      "SF_FABRIC_TEST_CKPT=" ^ string_of_int ckpt_every;
    ]

let run_grid ~dir ~workers ?fault_rate ?stop_after ?ckpt_every () =
  let loaded = Coordinator.load ~dir in
  let ckpt_every = Option.value ckpt_every ~default:2 in
  Coordinator.run ~dir ~workers ~ckpt_every ?fault_rate ?stop_after
    ~spawn:(fun ~sock_path ->
      fork_worker ~dir ~fault_rate:(Option.value fault_rate ~default:0.) ~ckpt_every
        ~sock_path)
    loaded

let prepare_pinned ~dir ~shards = ignore (Coordinator.prepare ~dir ~shards (pinned_spec ()))

(* ---- protocol codec --------------------------------------------------- *)

let all_msgs =
  [
    Proto.Hello 4242;
    Proto.Assign { job = 0; body = "" };
    Proto.Assign { job = 17; body = String.make 513 'x' };
    Proto.Done { job = 17; body = "payload \x00\xff bytes" };
    Proto.Progress { job = 3; body = "\x07" };
    Proto.Telemetry { job = 2; body = "relay \x00\xff bytes" };
    Proto.Quit;
  ]

let test_proto_roundtrip () =
  List.iter
    (fun m ->
      let e = Proto.encode m in
      Alcotest.(check bool) "round trip" true (Proto.decode e = m);
      (* framed: pop finds exactly this message and nothing more *)
      let framed = Proto.frame e in
      match Proto.pop framed ~pos:0 with
      | `Frame (payload, pos) ->
        Alcotest.(check bool) "frame payload" true (Proto.decode payload = m);
        Alcotest.(check int) "frame consumed all" (String.length framed) pos
      | `Need_more | `Bad _ -> Alcotest.fail "framed message did not pop")
    all_msgs;
  (* a partial frame is Need_more at every prefix *)
  let framed = Proto.frame (Proto.encode (Proto.Done { job = 9; body = "abc" })) in
  for cut = 0 to String.length framed - 1 do
    match Proto.pop (String.sub framed 0 cut) ~pos:0 with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "prefix %d popped a frame" cut
    | `Bad _ -> Alcotest.failf "prefix %d unrecoverable" cut
  done

let test_proto_rejects () =
  let e = Proto.encode (Proto.Done { job = 5; body = "hello" }) in
  (* every truncation raises *)
  for cut = 0 to String.length e - 1 do
    match Proto.decode (String.sub e 0 cut) with
    | _ -> Alcotest.failf "truncation to %d bytes decoded" cut
    | exception Codec_error.Error _ -> ()
  done;
  (* every single-bit flip raises: version, kind, varints and body are
     all under the CRC *)
  String.iteri
    (fun i _ ->
      for bit = 0 to 7 do
        let b = Bytes.of_string e in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        match Proto.decode (Bytes.to_string b) with
        | _ -> Alcotest.failf "bit flip at %d:%d decoded" i bit
        | exception Codec_error.Error _ -> ()
      done)
    e;
  (* an oversized frame length is unrecoverable, not a blind wait *)
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 0x7fff_ffffl;
  match Proto.pop (Bytes.to_string b) ~pos:0 with
  | `Bad _ -> ()
  | `Need_more -> Alcotest.fail "oversized frame waited for more"
  | `Frame _ -> Alcotest.fail "oversized frame popped"

let test_proto_pump () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let ca = Proto.conn a and cb = Proto.conn b in
      List.iter (Proto.send ca) all_msgs;
      (* the receiver sees every message, in order, across pumps *)
      let got = ref [] in
      while List.length !got < List.length all_msgs do
        match Proto.pump cb with
        | `Msgs ms -> got := !got @ ms
        | `Eof -> Alcotest.fail "eof before all messages"
        | `Bad e -> Alcotest.failf "bad stream: %s" e
      done;
      Alcotest.(check bool) "all messages in order" true (!got = all_msgs);
      (* recv_block drains queued messages one at a time *)
      List.iter (Proto.send cb) all_msgs;
      List.iter
        (fun m ->
          match Proto.recv_block ca with
          | Some got -> Alcotest.(check bool) "recv_block order" true (got = m)
          | None -> Alcotest.fail "eof in recv_block")
        all_msgs;
      (* peer close is `Eof *)
      Unix.close b;
      match Proto.pump ca with
      | `Eof -> ()
      | `Msgs _ | `Bad _ -> Alcotest.fail "closed peer was not Eof")

(* ---- checkpoint codec ------------------------------------------------- *)

let sample_ckpt () =
  {
    Ckpt.c_grid_crc = 0xdead_beefl;
    c_shard = 3;
    c_lo = 24;
    c_hi = 32;
    c_rng_token = 0x0123_4567_89ab_cdefL;
    c_next = 29;
    c_outcomes = [| (12., false, false); (64., true, false); (3.5, false, true); (0., true, true); (97., false, false) |];
    c_counters = [ ("search.request", 176); ("search.runs", 5) ];
  }

let test_ckpt_roundtrip () =
  let c = sample_ckpt () in
  Alcotest.(check bool) "partial round trip" true (Ckpt.decode (Ckpt.encode c) = c);
  Alcotest.(check bool) "not complete" false (Ckpt.complete c);
  let full = { c with Ckpt.c_next = 32; c_outcomes = Array.append c.Ckpt.c_outcomes [| (1., false, false); (2., false, false); (3., false, false) |] } in
  Alcotest.(check bool) "complete round trip" true (Ckpt.decode (Ckpt.encode full) = full);
  Alcotest.(check bool) "complete" true (Ckpt.complete full);
  (* write is atomic and load is exact *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "s.ckpt" in
      Ckpt.write ~path c;
      Alcotest.(check bool) "file round trip" true (Ckpt.load ~path = c);
      Alcotest.(check bool) "load_opt some" true (Ckpt.load_opt ~path = Some c);
      Alcotest.(check bool) "load_opt none" true
        (Ckpt.load_opt ~path:(Filename.concat dir "missing.ckpt") = None))

let test_ckpt_rejects () =
  let c = sample_ckpt () in
  (match Ckpt.encode { c with Ckpt.c_next = 30 } with
  | _ -> Alcotest.fail "outcome count mismatch encoded"
  | exception Invalid_argument _ -> ());
  let e = Ckpt.encode c in
  for cut = 0 to String.length e - 1 do
    match Ckpt.decode (String.sub e 0 cut) with
    | _ -> Alcotest.failf "truncation to %d decoded" cut
    | exception Codec_error.Error _ -> ()
  done;
  let salt = ref 17 in
  String.iteri
    (fun i _ ->
      salt := (!salt * 31) land 7;
      let b = Bytes.of_string e in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl !salt)));
      match Ckpt.decode (Bytes.to_string b) with
      | _ -> Alcotest.failf "bit flip at %d decoded" i
      | exception Codec_error.Error _ -> ())
    e;
  (* a corrupt file raises out of load_opt rather than restarting *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.ckpt" in
      let oc = open_out_bin path in
      output_string oc (String.sub e 0 (String.length e - 2));
      close_out oc;
      match Ckpt.load_opt ~path with
      | _ -> Alcotest.fail "corrupt checkpoint loaded"
      | exception Codec_error.Error _ -> ())

let test_counter_helpers () =
  let base = [ ("a", 10); ("b", 5) ] in
  let now = [ ("a", 14); ("b", 5); ("c", 3) ] in
  Alcotest.(check bool) "delta" true
    (Ckpt.counters_delta ~base now = [ ("a", 4); ("c", 3) ]);
  Alcotest.(check bool) "merge" true
    (Ckpt.counters_merge [ ("b", 2); ("a", 1) ] [ ("a", 4); ("c", 3) ]
    = [ ("a", 5); ("b", 2); ("c", 3) ]);
  (* fabric.* metrics never leak into checkpoints *)
  let snap = Ckpt.counters_snapshot () in
  Alcotest.(check bool) "no fabric counters" true
    (List.for_all (fun (name, _) -> not (String.length name >= 7 && String.sub name 0 7 = "fabric.")) snap)

(* ---- grid plan -------------------------------------------------------- *)

let test_grid_plan_roundtrip () =
  let spec = pinned_spec () in
  let plan = Grid.make_plan ~shards:5 spec in
  Alcotest.(check int) "n_tasks" 16 (Grid.n_tasks spec);
  (* shards tile [0, 16) in order *)
  let covered = Array.fold_left (fun acc (lo, hi) ->
      Alcotest.(check int) "contiguous" acc lo;
      hi) 0 plan.Grid.p_shards
  in
  Alcotest.(check int) "covers all" 16 covered;
  Alcotest.(check bool) "memory round trip" true (Grid.decode (Grid.encode plan) = plan);
  with_temp_dir (fun dir ->
      Grid.write_plan ~dir plan;
      let plan2, crc = Grid.load_plan ~dir in
      Alcotest.(check bool) "file round trip" true (plan2 = plan);
      Alcotest.(check bool) "crc binds" true (crc = Grid.plan_crc plan);
      Alcotest.(check bool) "json mirror exists" true (Sys.file_exists (Grid.json_path dir)))

let test_grid_rejects () =
  let spec = pinned_spec () in
  (match Grid.make_plan ~shards:2 { spec with Grid.gs_strategies = [ "no-such" ] } with
  | _ -> Alcotest.fail "unknown strategy accepted"
  | exception Invalid_argument _ -> ());
  (match Grid.make_plan ~shards:2 { spec with Grid.gs_model = "no-such" } with
  | _ -> Alcotest.fail "unknown model accepted"
  | exception Invalid_argument _ -> ());
  let e = Grid.encode (Grid.make_plan ~shards:3 spec) in
  for cut = 0 to String.length e - 1 do
    match Grid.decode (String.sub e 0 cut) with
    | _ -> Alcotest.failf "truncation to %d decoded" cut
    | exception Codec_error.Error _ -> ()
  done;
  let salt = ref 5 in
  String.iteri
    (fun i _ ->
      salt := (!salt * 13) land 7;
      let b = Bytes.of_string e in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl !salt)));
      match Grid.decode (Bytes.to_string b) with
      | _ -> Alcotest.failf "bit flip at %d decoded" i
      | exception Codec_error.Error _ -> ())
    e

(* ---- the shard runner and its crash-resume contract ------------------- *)

let test_seq_run_equals_measure () =
  with_temp_dir (fun dir ->
      let spec = pinned_spec () in
      prepare_pinned ~dir ~shards:4;
      (match run_grid ~dir ~workers:0 () with
      | `Complete (points, _) ->
        (* the fabric's CSV is the same bytes measure would print *)
        let direct =
          S.measure (Rng.of_seed spec.Grid.gs_seed) ~make:(Grid.make_of_spec spec)
            ~strategies:(Grid.strategies_of_spec spec)
            ~sizes:spec.Grid.gs_sizes ~spec:(Grid.core_spec spec)
        in
        Alcotest.(check string) "fabric csv = measure csv" (S.points_to_csv direct)
          (S.points_to_csv points);
        Alcotest.(check string) "csv file matches" (S.points_to_csv direct)
          (read_file (Grid.csv_path dir));
        (* the cross-PR golden: this digest is pinned in the test source *)
        Alcotest.(check string) "golden digest" pinned_csv_md5
          (Digest.to_hex (Digest.string (read_file (Grid.csv_path dir))))
      | `Stopped_early _ -> Alcotest.fail "sequential run stopped early"))

exception Killed

let test_resume_after_crash () =
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          prepare_pinned ~dir:ref_dir ~shards:2;
          prepare_pinned ~dir ~shards:2;
          let plan, crc = Coordinator.load ~dir in
          (* reference: both shards straight through *)
          (match run_grid ~dir:ref_dir ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "reference stopped");
          (* crash shard 0 at its first checkpoint, then resume *)
          let crashed = ref false in
          (match
             Worker.run_shard ~dir ~grid_crc:crc plan ~shard:0 ~ckpt_every:1
               ~after_ckpt:(fun ~next:_ ->
                 if not !crashed then begin
                   crashed := true;
                   raise Killed
                 end)
               ()
           with
          | _ -> Alcotest.fail "crash hook did not fire"
          | exception Killed -> ());
          Alcotest.(check bool) "crashed once" true !crashed;
          (* the partial checkpoint is on disk and resumable *)
          (match Ckpt.load_opt ~path:(Grid.shard_path dir 0) with
          | Some c -> Alcotest.(check bool) "partial persisted" false (Ckpt.complete c)
          | None -> Alcotest.fail "no checkpoint after crash");
          let c0 = Worker.run_shard ~dir ~grid_crc:crc plan ~shard:0 ~ckpt_every:1 () in
          Alcotest.(check bool) "resumed to complete" true (Ckpt.complete c0);
          let (_ : Ckpt.t) = Worker.run_shard ~dir ~grid_crc:crc plan ~shard:1 ~ckpt_every:1 () in
          (* merge and compare bytes with the reference *)
          let outcomes, counters = Coordinator.merge ~dir ~grid_crc:crc plan in
          let (_ : S.point list) = Grid.write_outputs ~dir plan ~outcomes ~counters in
          Alcotest.(check string) "csv identical after crash+resume"
            (read_file (Grid.csv_path ref_dir))
            (read_file (Grid.csv_path dir));
          Alcotest.(check string) "manifest identical after crash+resume"
            (read_file (Grid.manifest_path ref_dir))
            (read_file (Grid.manifest_path dir))))

(* arbitrary kill schedules: at every checkpoint boundary a coin
   decides whether the runner "dies" (at most once per boundary, like
   the real fault injector); resuming until complete must always
   reproduce the reference bytes *)
let qcheck_kill_points =
  QCheck.Test.make ~count:8 ~name:"crash-resume is exact at arbitrary kill points"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun salt ->
      with_temp_dir (fun ref_dir ->
          with_temp_dir (fun dir ->
              prepare_pinned ~dir:ref_dir ~shards:3;
              prepare_pinned ~dir ~shards:3;
              (match run_grid ~dir:ref_dir ~workers:0 () with
              | `Complete _ -> ()
              | `Stopped_early _ -> failwith "reference stopped");
              let plan, crc = Coordinator.load ~dir in
              let krng = Rng.of_seed salt in
              let killed = Hashtbl.create 16 in
              for shard = 0 to Array.length plan.Grid.p_shards - 1 do
                let rec go () =
                  match
                    Worker.run_shard ~dir ~grid_crc:crc plan ~shard ~ckpt_every:1
                      ~after_ckpt:(fun ~next ->
                        if (not (Hashtbl.mem killed (shard, next)))
                           && Rng.unit_float krng < 0.5
                        then begin
                          Hashtbl.add killed (shard, next) ();
                          raise Killed
                        end)
                      ()
                  with
                  | c -> c
                  | exception Killed -> go ()
                in
                let c = go () in
                if not (Ckpt.complete c) then failwith "shard did not complete"
              done;
              let outcomes, counters = Coordinator.merge ~dir ~grid_crc:crc plan in
              let (_ : S.point list) = Grid.write_outputs ~dir plan ~outcomes ~counters in
              read_file (Grid.csv_path ref_dir) = read_file (Grid.csv_path dir)
              && read_file (Grid.manifest_path ref_dir) = read_file (Grid.manifest_path dir))))

let test_foreign_ckpt_refused () =
  with_temp_dir (fun dir_a ->
      with_temp_dir (fun dir_b ->
          prepare_pinned ~dir:dir_a ~shards:2;
          ignore
            (Coordinator.prepare ~dir:dir_b ~shards:2
               { (pinned_spec ()) with Grid.gs_seed = 12 });
          (match run_grid ~dir:dir_a ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "run stopped");
          (* graft a seed-11 checkpoint into the seed-12 run *)
          let data = read_file (Grid.shard_path dir_a 0) in
          let oc = open_out_bin (Grid.shard_path dir_b 0) in
          output_string oc data;
          close_out oc;
          let plan_b, crc_b = Coordinator.load ~dir:dir_b in
          match Coordinator.pending ~dir:dir_b ~grid_crc:crc_b plan_b with
          | _ -> Alcotest.fail "foreign checkpoint accepted"
          | exception Failure _ -> ()))

(* ---- the swarm with real processes ------------------------------------ *)

let test_workers_byte_identical () =
  with_temp_dir (fun seq_dir ->
      with_temp_dir (fun par_dir ->
          prepare_pinned ~dir:seq_dir ~shards:4;
          prepare_pinned ~dir:par_dir ~shards:4;
          (match run_grid ~dir:seq_dir ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "sequential stopped");
          (match run_grid ~dir:par_dir ~workers:3 () with
          | `Complete (_, report) ->
            Alcotest.(check int) "all shards" 4 report.Swarm.sw_completed
          | `Stopped_early _ -> Alcotest.fail "parallel stopped");
          Alcotest.(check string) "csv identical at workers=3"
            (read_file (Grid.csv_path seq_dir))
            (read_file (Grid.csv_path par_dir));
          Alcotest.(check string) "manifest identical at workers=3"
            (read_file (Grid.manifest_path seq_dir))
            (read_file (Grid.manifest_path par_dir))))

let test_fault_injection_byte_identical () =
  with_temp_dir (fun seq_dir ->
      with_temp_dir (fun par_dir ->
          prepare_pinned ~dir:seq_dir ~shards:4;
          prepare_pinned ~dir:par_dir ~shards:8;
          (match run_grid ~dir:seq_dir ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "sequential stopped");
          (match run_grid ~dir:par_dir ~workers:2 ~fault_rate:0.5 ~ckpt_every:1 () with
          | `Complete (_, report) ->
            (* seed 11 at rate 0.5 with per-trial checkpoints must
               actually kill somebody, or the test tests nothing *)
            Alcotest.(check bool) "workers died" true (report.Swarm.sw_deaths > 0);
            Alcotest.(check bool) "respawned past the initial fleet" true
              (report.Swarm.sw_spawned > 2)
          | `Stopped_early _ -> Alcotest.fail "fault run stopped");
          Alcotest.(check string) "csv identical under faults"
            (read_file (Grid.csv_path seq_dir))
            (read_file (Grid.csv_path par_dir));
          Alcotest.(check string) "manifest identical under faults"
            (read_file (Grid.manifest_path seq_dir))
            (read_file (Grid.manifest_path par_dir))))

let test_stop_then_resume () =
  with_temp_dir (fun seq_dir ->
      with_temp_dir (fun dir ->
          prepare_pinned ~dir:seq_dir ~shards:4;
          prepare_pinned ~dir ~shards:8;
          (match run_grid ~dir:seq_dir ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "sequential stopped");
          (* stop after 2 shards: the rest of the fleet is SIGKILLed
             mid-shard, which is the honest crash *)
          (match run_grid ~dir ~workers:2 ~stop_after:2 ~ckpt_every:1 () with
          | `Stopped_early report ->
            Alcotest.(check bool) "some shards done" true (report.Swarm.sw_completed >= 2)
          | `Complete _ -> Alcotest.fail "stop_after completed");
          let plan, crc = Coordinator.load ~dir in
          Alcotest.(check bool) "work remains" true
            (Coordinator.pending ~dir ~grid_crc:crc plan <> []);
          (* no outputs yet *)
          Alcotest.(check bool) "no premature csv" false (Sys.file_exists (Grid.csv_path dir));
          (* resume on a different worker count *)
          (match run_grid ~dir ~workers:3 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "resume stopped");
          Alcotest.(check string) "csv identical after kill+resume"
            (read_file (Grid.csv_path seq_dir))
            (read_file (Grid.csv_path dir));
          Alcotest.(check string) "manifest identical after kill+resume"
            (read_file (Grid.manifest_path seq_dir))
            (read_file (Grid.manifest_path dir))))

let test_rerun_completed_is_noop () =
  with_temp_dir (fun dir ->
      prepare_pinned ~dir ~shards:2;
      (match run_grid ~dir ~workers:0 () with
      | `Complete _ -> ()
      | `Stopped_early _ -> Alcotest.fail "run stopped");
      let csv = read_file (Grid.csv_path dir) in
      (* running again spawns nothing and rewrites identical bytes *)
      match run_grid ~dir ~workers:2 () with
      | `Complete (_, report) ->
        Alcotest.(check int) "nothing spawned" 0 report.Swarm.sw_spawned;
        Alcotest.(check string) "csv unchanged" csv (read_file (Grid.csv_path dir))
      | `Stopped_early _ -> Alcotest.fail "noop run stopped")

let test_prepare_refuses_existing () =
  with_temp_dir (fun dir ->
      prepare_pinned ~dir ~shards:2;
      match Coordinator.prepare ~dir ~shards:4 (pinned_spec ()) with
      | _ -> Alcotest.fail "re-planned a started run"
      | exception Failure _ -> ())

(* a generic swarm client whose job 0 kills its first worker: death
   detection, head-of-queue reassignment and respawn, visible in the
   report.  A single worker makes the respawn deterministic — with two,
   the survivor can drain the requeued job before the coordinator needs
   a replacement *)
let test_swarm_death_reassignment () =
  with_temp_dir (fun dir ->
      let sock_path = Filename.concat dir "swarm.sock" in
      let marker = Filename.concat dir "poison-consumed" in
      let spawn () =
        spawn_self
          [
            "SF_FABRIC_TEST_ROLE=swarm";
            "SF_FABRIC_TEST_SOCK=" ^ sock_path;
            "SF_FABRIC_TEST_MARKER=" ^ marker;
          ]
      in
      let done_bodies = ref [] in
      let outcome, report =
        Swarm.run ~who:"test-swarm" ~sock_path ~workers:1 ~spawn
          ~pending:[ 0; 1; 2; 3 ]
          ~assign_body:(fun job -> Printf.sprintf "job-%d" job)
          ~on_done:(fun ~job ~body -> done_bodies := (job, body) :: !done_bodies)
          ()
      in
      Alcotest.(check bool) "complete" true (outcome = `Complete);
      Alcotest.(check int) "all jobs done" 4 report.Swarm.sw_completed;
      Alcotest.(check bool) "death detected" true (report.Swarm.sw_deaths >= 1);
      Alcotest.(check bool) "job reassigned" true (report.Swarm.sw_reassigned >= 1);
      Alcotest.(check bool) "replacement spawned" true (report.Swarm.sw_spawned >= 2);
      List.iter
        (fun job ->
          Alcotest.(check string)
            (Printf.sprintf "job %d body" job)
            (Printf.sprintf "done-%d" job)
            (List.assoc job !done_bodies))
        [ 0; 1; 2; 3 ])

let test_swarm_socket_exclusion () =
  with_temp_dir (fun dir ->
      let sock_path = Filename.concat dir "busy.sock" in
      (* a live listener on the path: the swarm must refuse to steal it *)
      let fd = Sf_obs.Sock.bind_unix ~who:"test" sock_path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            Swarm.run ~who:"test-swarm" ~sock_path ~workers:1
              ~spawn:(fun () -> Alcotest.fail "spawned against a busy socket")
              ~pending:[ 0 ]
              ~assign_body:(fun _ -> "")
              ~on_done:(fun ~job:_ ~body:_ -> ())
              ()
          with
          | _ -> Alcotest.fail "second coordinator bound a live socket"
          | exception Invalid_argument _ -> ());
      (* once the listener is gone the stale socket file is reclaimed *)
      Alcotest.(check bool) "socket file still there" true (Sys.file_exists sock_path);
      let fd2 = Sf_obs.Sock.bind_unix ~who:"test" sock_path in
      Unix.close fd2)

let test_fault_schedule_deterministic () =
  (* the kill decision is a pure function: same inputs, same schedule *)
  let fires rate = List.init 64 (fun next -> Worker.fault_fires ~seed:11 ~shard:2 ~next rate) in
  Alcotest.(check bool) "repeatable" true (fires 0.3 = fires 0.3);
  Alcotest.(check bool) "rate 0 never fires" true
    (List.for_all not (fires 0.));
  Alcotest.(check bool) "rate 0.9 fires somewhere" true (List.exists Fun.id (fires 0.9));
  (* different shards see different schedules (with overwhelming
     probability at 64 draws; pinned here as a regression guard) *)
  let a = List.init 64 (fun next -> Worker.fault_fires ~seed:11 ~shard:1 ~next 0.5) in
  let b = List.init 64 (fun next -> Worker.fault_fires ~seed:11 ~shard:2 ~next 0.5) in
  Alcotest.(check bool) "shards decorrelated" true (a <> b)

(* ---- telemetry relay --------------------------------------------------- *)

module Relay = Sf_fabric.Relay
module Trace = Sf_obs.Trace

let ev ?(args = []) ~seq ~ts name kind = { Trace.seq; ts; name; kind; args }

(* one batch exercising every event kind and every arg tag (including
   a negative Int and negative Ints elements, which travel as zigzag
   varints) plus counter deltas at both bounds of "non-negative" *)
let relay_batch () =
  {
    Relay.r_events =
      [
        ev ~seq:1 ~ts:0.5 "fabric.trial" Trace.Begin
          ~args:
            [
              ("shard", Trace.Int 0);
              ("neg", Trace.Int (-42));
              ("w", Trace.Float 1.5);
              ("who", Trace.Str "a\x00\"b");
              ("ok", Trace.Bool true);
              ("no", Trace.Bool false);
              ("vs", Trace.Ints [ 1; -2; 3 ]);
            ];
        ev ~seq:2 ~ts:0.75 "fabric.trial" Trace.End;
        ev ~seq:3 ~ts:0.8125 "fabric.ckpt" Trace.Instant ~args:[ ("next", Trace.Int 4) ];
        ev ~seq:4 ~ts:0.875 "fabric.queue_depth" (Trace.Counter 2.25);
      ];
    r_counters = [ ("oracle.requests", 128); ("search.trials", 0) ];
  }

let test_relay_roundtrip () =
  let check_rt what b =
    let e = Relay.encode b in
    Alcotest.(check bool) (what ^ " round trips") true (Relay.decode e = b);
    (* canonical: re-encoding the decoded batch gives the same bytes *)
    Alcotest.(check string) (what ^ " canonical") e (Relay.encode (Relay.decode e))
  in
  check_rt "full batch" (relay_batch ());
  check_rt "empty batch" { Relay.r_events = []; r_counters = [] };
  check_rt "counters only" { Relay.r_events = []; r_counters = [ ("a.b", 7) ] }

let test_relay_rejects () =
  let e = Relay.encode (relay_batch ()) in
  let rejects what s =
    match Relay.decode s with
    | _ -> Alcotest.failf "decoded %s" what
    | exception Codec_error.Error _ -> ()
  in
  (* every truncation raises: counts are explicit, nothing is implied
     by end-of-input *)
  for cut = 0 to String.length e - 1 do
    rejects (Printf.sprintf "truncation to %d bytes" cut) (String.sub e 0 cut)
  done;
  rejects "trailing byte" (e ^ "\x00");
  rejects "future version" ("\x09" ^ String.sub e 1 (String.length e - 1));
  (* surgically corrupt tag bytes of a minimal single-arg event whose
     layout we control: ...| kind | ts | seq | n_args | klen k tag bool *)
  let tiny =
    Relay.encode
      {
        Relay.r_events = [ ev ~seq:1 ~ts:0.5 "n" Trace.Instant ~args:[ ("k", Trace.Bool true) ] ];
        r_counters = [];
      }
  in
  let patch s i c =
    let b = Bytes.of_string s in
    Bytes.set b i c;
    Bytes.to_string b
  in
  let len = String.length tiny in
  rejects "bool byte 5" (patch tiny (len - 1) '\x05');
  rejects "arg tag 9" (patch tiny (len - 2) '\x09');
  (* kind byte sits right after the 1-char event name: version,
     n_counters=0, n_events=1, name len, name *)
  rejects "event kind 7" (patch tiny 5 '\x07');
  (* negative deltas are a caller bug, refused at encode time *)
  match Relay.encode { Relay.r_events = []; r_counters = [ ("x", -1) ] } with
  | _ -> Alcotest.fail "encoded a negative counter delta"
  | exception Invalid_argument _ -> ()

let test_relay_assign_flag () =
  Alcotest.(check bool) "trace:true wants trace" true
    (Relay.assign_wants_trace (Relay.assign_body ~trace:true));
  Alcotest.(check string) "trace:false is the pre-relay grammar" ""
    (Relay.assign_body ~trace:false);
  Alcotest.(check bool) "empty body runs silent" false (Relay.assign_wants_trace "");
  Alcotest.(check bool) "junk runs silent" false (Relay.assign_wants_trace "trace:2")

(* the merged fleet timeline, pinned byte-for-byte: coordinator events
   plus two worker tracks whose events pass through the relay codec
   exactly as Coordinator.run replays them.  Timestamps are fixed, so
   the whole Perfetto document is deterministic. *)
let test_fleet_timeline_golden () =
  let through_relay events =
    (Relay.decode (Relay.encode { Relay.r_events = events; r_counters = [] })).Relay.r_events
  in
  let coord =
    [
      ev ~seq:1 ~ts:0. "fabric.run" Trace.Begin ~args:[ ("shards", Trace.Int 2) ];
      ev ~seq:2 ~ts:1. "fabric.run" Trace.End;
    ]
  in
  let worker shard =
    [
      ev ~seq:1 ~ts:(0.125 +. (0.0625 *. float_of_int shard)) "fabric.trial" Trace.Begin
        ~args:(("shard", Trace.Int shard) :: ("task", Trace.Int (shard * 3))
              :: Sf_obs.Tctx.args (Sf_obs.Tctx.derive ~seed:11 ~id:(shard * 3)));
      ev ~seq:2 ~ts:(0.5 +. (0.0625 *. float_of_int shard)) "fabric.trial" Trace.End;
      ev ~seq:3 ~ts:(0.5625 +. (0.0625 *. float_of_int shard)) "fabric.ckpt" Trace.Instant
        ~args:[ ("next", Trace.Int 1) ];
    ]
  in
  let doc =
    Sf_obs.Trace_export.perfetto_of_tracks ~process:"coordinator"
      [
        ("coordinator", coord);
        ("worker-1", through_relay (worker 0));
        ("worker-2", through_relay (worker 1));
      ]
  in
  Alcotest.(check string) "golden digest of the merged timeline"
    "0163e68c1d1ccefc8cfbd18bfcfae6f2" (Digest.to_hex (Digest.string doc))

(* the headline claim with tracing ON: a traced 2-worker run produces
   byte-identical measure.csv/manifest.json to the untraced sequential
   reference, and the merged timeline that falls out names all three
   process tracks with trace-context-tagged trial spans. *)
let test_traced_workers_byte_identical () =
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          prepare_pinned ~dir:ref_dir ~shards:2;
          prepare_pinned ~dir ~shards:2;
          (match run_grid ~dir:ref_dir ~workers:0 () with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "reference stopped");
          let doc = ref "" in
          let id =
            Trace.attach
              (Sf_obs.Trace_export.perfetto_sink ~process:"coordinator" (fun d -> doc := d))
          in
          let outcome =
            Fun.protect
              ~finally:(fun () -> Trace.detach id)
              (fun () ->
                let loaded = Coordinator.load ~dir in
                Coordinator.run ~dir ~workers:2 ~ckpt_every:2 ~trace:true
                  ~spawn:(fun ~sock_path ->
                    fork_worker ~dir ~fault_rate:0. ~ckpt_every:2 ~sock_path)
                  loaded)
          in
          (match outcome with
          | `Complete _ -> ()
          | `Stopped_early _ -> Alcotest.fail "traced run stopped");
          Alcotest.(check string) "csv identical with tracing on"
            (read_file (Grid.csv_path ref_dir))
            (read_file (Grid.csv_path dir));
          Alcotest.(check string) "manifest identical with tracing on"
            (read_file (Grid.manifest_path ref_dir))
            (read_file (Grid.manifest_path dir));
          let contains sub =
            let n = String.length sub and s = !doc in
            let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          List.iter
            (fun sub ->
              Alcotest.(check bool) (Printf.sprintf "timeline mentions %S" sub) true
                (contains sub))
            [ "coordinator"; "worker-1"; "worker-2"; "fabric.trial"; "fabric.ckpt"; "\"trace\":" ]))

let suite =
  [
    ("proto: round trips", `Quick, test_proto_roundtrip);
    ("proto: rejects mutilated input", `Quick, test_proto_rejects);
    ("proto: pump and recv over sockets", `Quick, test_proto_pump);
    ("ckpt: round trips", `Quick, test_ckpt_roundtrip);
    ("ckpt: rejects mutilated input", `Quick, test_ckpt_rejects);
    ("ckpt: counter bookkeeping", `Quick, test_counter_helpers);
    ("grid: plan round trips", `Quick, test_grid_plan_roundtrip);
    ("grid: rejects bad plans", `Quick, test_grid_rejects);
    ("fabric: sequential run = measure (golden)", `Slow, test_seq_run_equals_measure);
    ("fabric: crash at a checkpoint, resume exactly", `Slow, test_resume_after_crash);
    QCheck_alcotest.to_alcotest qcheck_kill_points;
    ("fabric: foreign checkpoint refused", `Slow, test_foreign_ckpt_refused);
    ("fabric: workers=3 byte-identical", `Slow, test_workers_byte_identical);
    ("fabric: fault injection byte-identical", `Slow, test_fault_injection_byte_identical);
    ("fabric: SIGKILL mid-shard, resume byte-identical", `Slow, test_stop_then_resume);
    ("fabric: rerun of a completed grid is a no-op", `Quick, test_rerun_completed_is_noop);
    ("fabric: prepare refuses a started run", `Quick, test_prepare_refuses_existing);
    ("swarm: death, reassignment, respawn", `Quick, test_swarm_death_reassignment);
    ("swarm: live socket refused, stale reclaimed", `Quick, test_swarm_socket_exclusion);
    ("fault schedule is deterministic", `Quick, test_fault_schedule_deterministic);
    ("relay: round trips", `Quick, test_relay_roundtrip);
    ("relay: rejects mutilated input", `Quick, test_relay_rejects);
    ("relay: assign-body flag", `Quick, test_relay_assign_flag);
    ("relay: merged timeline golden", `Quick, test_fleet_timeline_golden);
    ("fabric: traced workers=2 byte-identical", `Slow, test_traced_workers_byte_identical);
  ]
