(* The storage battery for lib/store: codec exactness, decode
   strictness under mutilated input, cache protocol (hit / miss /
   evict / corrupt-fallback), and the corpus determinism contract —
   cold and warm measurement grids byte-identical at any job count
   (doc/STORAGE.md). *)

module Codec = Sf_store.Codec
module Csr_codec = Sf_store.Csr_codec
module Codec_error = Sf_store.Codec_error
module Varint = Sf_store.Varint
module Crc32 = Sf_store.Crc32
module Cache = Sf_store.Cache
module Corpus = Sf_store.Corpus
module Fingerprint = Sf_store.Fingerprint
module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module Rng = Sf_prng.Rng
module Registry = Sf_obs.Registry
module Searchability = Sf_core.Searchability

(* the registry hands back the same instance cache.ml declared, so the
   tests can assert on the real counters *)
let c_hit = Registry.counter "cache.hit"
let c_miss = Registry.counter "cache.miss"
let c_evict = Registry.counter "cache.evict"
let c_corrupt = Registry.counter "cache.corrupt"

let temp_counter = ref 0

let with_temp_dir body =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-store-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> body dir)

let with_cache body =
  with_temp_dir (fun dir ->
      let cache = Cache.open_dir dir in
      Fun.protect ~finally:(fun () -> Cache.close cache) (fun () -> body dir cache))

(* exact equality: same vertices and the same (id, src, dst) sequence
   — stronger than Digraph.equal_structure, which ignores order *)
let same_graph a b =
  Digraph.n_vertices a = Digraph.n_vertices b && Digraph.edges a = Digraph.edges b

let check_same_graph what a b =
  Alcotest.(check bool) (what ^ ": exact round trip") true (same_graph a b)

let key ?(gen = "test") ?(params = []) ?(n = 10) ?(stream = String.make 64 '0') () =
  { Fingerprint.gen; params; n; stream }

(* ---------------------------------------------------------------- *)
(* Varint and CRC32                                                  *)
(* ---------------------------------------------------------------- *)

let test_varint_roundtrip () =
  let cases = [ 0; 1; 127; 128; 255; 16_383; 16_384; 1 lsl 40; max_int ] in
  List.iter
    (fun v ->
      let buf = Buffer.create 10 in
      Varint.write buf v;
      let s = Buffer.contents buf in
      let v', pos = Varint.read s ~pos:0 in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v v';
      Alcotest.(check int) "consumed all bytes" (String.length s) pos)
    cases;
  List.iter
    (fun v ->
      let buf = Buffer.create 10 in
      Varint.write_signed buf v;
      let v', _ = Varint.read_signed (Buffer.contents buf) ~pos:0 in
      Alcotest.(check int) (Printf.sprintf "signed varint %d" v) v v')
    (* zigzag needs one spare bit: the representable range is
       |v| <= 2^61 - 1, far beyond any vertex delta *)
    [ 0; -1; 1; -64; 64; -16_384; (1 lsl 60) - 1; -(1 lsl 60) ]

let test_varint_truncation () =
  let buf = Buffer.create 10 in
  Varint.write buf (1 lsl 40);
  let s = Buffer.contents buf in
  for len = 0 to String.length s - 1 do
    match Varint.read (String.sub s 0 len) ~pos:0 with
    | _ -> Alcotest.failf "varint accepted a %d-byte truncation" len
    | exception Codec_error.Error (Codec_error.Truncated _) -> ()
  done

let test_crc32_known_value () =
  (* the standard test vector for reflected CRC-32 (0xEDB88320) *)
  Alcotest.(check int32)
    "crc32 of '123456789'" 0xCBF43926l
    (Crc32.string "123456789")

(* ---------------------------------------------------------------- *)
(* Codec round trips                                                 *)
(* ---------------------------------------------------------------- *)

let test_codec_small_graphs () =
  let empty = Digraph.create () in
  check_same_graph "empty" empty (Codec.decode (Codec.encode empty));
  let single = Digraph.of_edges ~n:1 [] in
  check_same_graph "single vertex" single (Codec.decode (Codec.encode single));
  let loops = Digraph.of_edges ~n:3 [ (1, 1); (1, 2); (1, 2); (3, 1); (2, 2) ] in
  check_same_graph "loops and parallels" loops (Codec.decode (Codec.encode loops))

let test_codec_preserves_insertion_order () =
  (* edges 'out of source order' force the permutation section: vertex
     1 gains an edge after vertex 3 already has one *)
  let g = Digraph.of_edges ~n:3 [ (3, 1); (1, 2); (2, 3); (1, 3) ] in
  let g' = Codec.decode (Codec.encode g) in
  check_same_graph "non-monotone insertion order" g g';
  Alcotest.(check bool)
    "edge ids double as timestamps" true
    (List.map (fun e -> (e.Digraph.id, e.Digraph.src, e.Digraph.dst)) (Digraph.edges g')
    = [ (0, 3, 1); (1, 1, 2); (2, 2, 3); (3, 1, 3) ])

let random_model_graph rng =
  match Rng.int rng 3 with
  | 0 -> Sf_gen.Mori.graph rng ~p:0.6 ~m:(1 + Rng.int rng 3) ~n:(2 + Rng.int rng 60)
  | 1 ->
    Sf_gen.Cooper_frieze.generate_n_vertices rng Sf_gen.Cooper_frieze.default
      ~n:(2 + Rng.int rng 60)
  | _ ->
    let n = 2 + Rng.int rng 60 in
    Sf_gen.Erdos_renyi.gnm rng ~n ~m:(Rng.int rng (max 1 (n * (n - 1) / 4)))

let qcheck_roundtrip =
  QCheck.Test.make ~count:60 ~name:"codec round-trips model graphs exactly"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_seed seed in
      let g = random_model_graph rng in
      let g' = Codec.decode (Codec.encode g) in
      (* structural equality plus a search replay: the decoded graph
         must drive a search to the same outcome from the same
         stream *)
      let search graph =
        let u = Ugraph.of_digraph graph in
        let n = Ugraph.n_vertices u in
        Sf_search.Runner.search ~budget:(4 * n) ~rng:(Rng.of_seed (seed + 1)) u
          Sf_search.Strategies.high_degree ~source:1 ~target:n
      in
      same_graph g g' && search g = search g')

let qcheck_ugraph_roundtrip =
  QCheck.Test.make ~count:40 ~name:"ugraph codec round trip is exact"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_seed seed in
      let g = random_model_graph rng in
      let u = Ugraph.of_digraph g in
      let u' = Codec.decode_ugraph (Codec.encode_ugraph u) in
      Ugraph.n_vertices u = Ugraph.n_vertices u'
      && Ugraph.n_edges u = Ugraph.n_edges u'
      && List.init (Ugraph.n_edges u) (fun i -> Ugraph.endpoints u i)
         = List.init (Ugraph.n_edges u') (fun i -> Ugraph.endpoints u' i))

(* ---------------------------------------------------------------- *)
(* Decode strictness                                                 *)
(* ---------------------------------------------------------------- *)

let expect_codec_error what thunk =
  match thunk () with
  | (_ : Digraph.t) -> Alcotest.failf "%s: decode accepted malformed input" what
  | exception Codec_error.Error _ -> ()

let test_decode_rejects_basics () =
  expect_codec_error "empty" (fun () -> Codec.decode "");
  expect_codec_error "bad magic" (fun () -> Codec.decode "NOPE\x01\x00\x00\x00");
  let good = Codec.encode (Digraph.of_edges ~n:4 [ (1, 2); (2, 3); (3, 4) ]) in
  let bumped = Bytes.of_string good in
  Bytes.set bumped 4 '\x7f';
  expect_codec_error "unsupported version" (fun () -> Codec.decode (Bytes.to_string bumped));
  expect_codec_error "trailing garbage" (fun () -> Codec.decode (good ^ "\x00"))

let test_decode_rejects_truncations () =
  let good = Codec.encode (Digraph.of_edges ~n:5 [ (1, 2); (1, 3); (2, 4); (4, 5); (5, 1) ]) in
  for len = 0 to String.length good - 1 do
    expect_codec_error
      (Printf.sprintf "truncation to %d bytes" len)
      (fun () -> Codec.decode (String.sub good 0 len))
  done

let test_decode_rejects_bit_flips () =
  let rng = Rng.of_seed 99 in
  let g = Sf_gen.Mori.graph rng ~p:0.5 ~m:2 ~n:40 in
  let good = Codec.encode g in
  String.iteri
    (fun i _ ->
      let bit = 1 lsl Rng.int rng 8 in
      let mutated = Bytes.of_string good in
      Bytes.set mutated i (Char.chr (Char.code (Bytes.get mutated i) lxor bit));
      expect_codec_error
        (Printf.sprintf "bit flip at byte %d" i)
        (fun () -> Codec.decode (Bytes.to_string mutated)))
    good

let test_read_any_file_dispatch () =
  with_temp_dir (fun dir ->
      let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
      let bin = Filename.concat dir "g.sfg" and txt = Filename.concat dir "g.edges" in
      Codec.write_graph_file g ~path:bin;
      Sf_graph.Gio.write_edge_list g ~path:txt;
      check_same_graph "binary branch" g (Codec.read_any_file ~path:bin);
      check_same_graph "edge-list branch" g (Codec.read_any_file ~path:txt);
      Alcotest.(check bool) "sniff" true (Codec.looks_binary (Codec.encode g));
      Alcotest.(check bool) "edge lists do not sniff binary" false (Codec.looks_binary "3 2\n"))

(* ---------------------------------------------------------------- *)
(* The giant container (SFGB v2)                                     *)
(* ---------------------------------------------------------------- *)

let same_ugraph a b = Sf_graph.Csr.equal (Ugraph.csr a) (Ugraph.csr b)

let test_csr_codec_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "g.sfg" in
      let u = Sf_gen.Mori.graph_giant (Rng.of_seed 61) ~p:0.6 ~m:2 ~n:300 in
      Csr_codec.write_ugraph_file u ~path;
      Alcotest.(check int)
        "file size is the documented arithmetic"
        (Csr_codec.file_bytes ~n:(Ugraph.n_vertices u) ~m:(Ugraph.n_edges u)
           ~inc_len:(Bigarray.Array1.dim (Ugraph.csr u).Sf_graph.Csr.inc))
        (Unix.stat path).Unix.st_size;
      let mapped = Csr_codec.map_ugraph_file ~path () in
      Alcotest.(check bool) "mapped graph identical" true (same_ugraph u mapped);
      (match Sf_graph.Csr.validate (Ugraph.csr mapped) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("mapped CSR invalid: " ^ msg));
      let unverified = Csr_codec.map_ugraph_file ~verify:false ~path () in
      Alcotest.(check bool) "verify:false agrees" true (same_ugraph u unverified);
      (* a mapped graph must drive searches exactly like the original *)
      let search g =
        Sf_search.Runner.search ~budget:600 ~rng:(Rng.of_seed 62) g
          Sf_search.Strategies.high_degree ~source:1 ~target:(Ugraph.n_vertices g)
      in
      Alcotest.(check bool) "search replay identical" true (search u = search mapped))

let qcheck_csr_codec_roundtrip =
  QCheck.Test.make ~count:40 ~name:"giant container round-trips model graphs exactly"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.of_seed seed in
      let u = Ugraph.of_digraph (random_model_graph rng) in
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "g.sfg" in
          Csr_codec.write_ugraph_file u ~path;
          same_ugraph u (Csr_codec.map_ugraph_file ~path ())))

let expect_csr_codec_error what thunk =
  match thunk () with
  | (_ : Ugraph.t) -> Alcotest.failf "%s: map accepted malformed input" what
  | exception Codec_error.Error _ -> ()

let test_csr_codec_rejects_truncations () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "g.sfg" in
      let u = Ugraph.of_digraph (Digraph.of_edges ~n:5 [ (1, 2); (1, 3); (2, 4); (4, 5) ]) in
      Csr_codec.write_ugraph_file u ~path;
      let good = In_channel.with_open_bin path In_channel.input_all in
      let cut = Filename.concat dir "cut.sfg" in
      for len = 0 to String.length good - 1 do
        Out_channel.with_open_bin cut (fun oc -> output_string oc (String.sub good 0 len));
        expect_csr_codec_error
          (Printf.sprintf "truncation to %d bytes" len)
          (fun () -> Csr_codec.map_ugraph_file ~path:cut ())
      done)

let test_csr_codec_rejects_bit_flips () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "g.sfg" in
      let u = Sf_gen.Mori.graph_giant (Rng.of_seed 63) ~p:0.5 ~m:1 ~n:40 in
      Csr_codec.write_ugraph_file u ~path;
      let good = In_channel.with_open_bin path In_channel.input_all in
      let rng = Rng.of_seed 64 in
      let bad = Filename.concat dir "bad.sfg" in
      String.iteri
        (fun i _ ->
          let mutated = Bytes.of_string good in
          Bytes.set mutated i
            (Char.chr (Char.code (Bytes.get mutated i) lxor (1 lsl Rng.int rng 8)));
          Out_channel.with_open_bin bad (fun oc -> output_bytes oc mutated);
          expect_csr_codec_error
            (Printf.sprintf "bit flip at byte %d" i)
            (fun () -> Csr_codec.map_ugraph_file ~path:bad ()))
        good)

let test_load_ugraph_dispatch () =
  with_temp_dir (fun dir ->
      let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
      let u = Ugraph.of_digraph g in
      let v1 = Filename.concat dir "v1.sfg"
      and v2 = Filename.concat dir "v2.sfg"
      and txt = Filename.concat dir "g.edges" in
      Codec.write_graph_file g ~path:v1;
      Csr_codec.write_ugraph_file u ~path:v2;
      Sf_graph.Gio.write_edge_list g ~path:txt;
      Alcotest.(check (option int)) "v1 sniffs 1" (Some 1) (Csr_codec.sniff_version v1);
      Alcotest.(check (option int)) "v2 sniffs 2" (Some 2) (Csr_codec.sniff_version v2);
      Alcotest.(check (option int)) "text sniffs none" None (Csr_codec.sniff_version txt);
      List.iter
        (fun (what, path) ->
          Alcotest.(check bool) (what ^ " loads identically") true
            (same_ugraph u (Csr_codec.load_ugraph ~path ())))
        [ ("v1", v1); ("v2", v2); ("edge list", txt) ])

(* ---------------------------------------------------------------- *)
(* Fingerprints                                                      *)
(* ---------------------------------------------------------------- *)

let test_fingerprint_distinct_coordinates () =
  let base = key () in
  let hexes =
    List.map Fingerprint.hex
      [
        base;
        { base with Fingerprint.gen = "other" };
        { base with Fingerprint.params = [ ("p", "0.5") ] };
        { base with Fingerprint.n = 11 };
        { base with Fingerprint.stream = String.make 64 '1' };
      ]
  in
  List.iter
    (fun h -> Alcotest.(check int) "32 hex digits" 32 (String.length h))
    hexes;
  Alcotest.(check int) "all coordinates distinct" (List.length hexes)
    (List.length (List.sort_uniq compare hexes))

let test_rng_token_roundtrip () =
  let rng = Rng.of_seed 5 in
  for _ = 1 to 10 do
    ignore (Rng.int rng 1000)
  done;
  let token = Fingerprint.rng_token rng in
  let expected = List.init 8 (fun _ -> Rng.int rng 1_000_000) in
  Fingerprint.restore rng token;
  let replayed = List.init 8 (fun _ -> Rng.int rng 1_000_000) in
  Alcotest.(check (list int)) "restore replays the stream" expected replayed;
  Alcotest.check_raises "malformed token rejected"
    (Invalid_argument "Fingerprint.restore: malformed rng token") (fun () ->
      Fingerprint.restore rng "zz")

(* ---------------------------------------------------------------- *)
(* Cache protocol                                                    *)
(* ---------------------------------------------------------------- *)

let test_cache_miss_then_hit () =
  with_cache (fun _dir cache ->
      let k = key ~n:4 () in
      let g = Digraph.of_edges ~n:4 [ (1, 2); (2, 3); (3, 4) ] in
      let misses0 = Sf_obs.Counter.value c_miss and hits0 = Sf_obs.Counter.value c_hit in
      Alcotest.(check bool) "cold lookup misses" true (Cache.find cache k = None);
      Alcotest.(check int) "cache.miss ticked" (misses0 + 1) (Sf_obs.Counter.value c_miss);
      Cache.add cache k ~graph:g ~target:4 ~rng_after:(String.make 64 'a');
      (match Cache.find cache k with
      | None -> Alcotest.fail "warm lookup missed"
      | Some (g', e) ->
        check_same_graph "cached graph" g g';
        Alcotest.(check int) "target" 4 e.Cache.target;
        Alcotest.(check string) "rng token" (String.make 64 'a') e.Cache.rng_after);
      Alcotest.(check int) "cache.hit ticked" (hits0 + 1) (Sf_obs.Counter.value c_hit);
      Alcotest.(check bool) "mem" true (Cache.mem cache k))

let test_cache_persists_across_reopen () =
  with_temp_dir (fun dir ->
      let k = key ~n:3 () in
      let g = Digraph.of_edges ~n:3 [ (1, 2); (1, 3) ] in
      let cache = Cache.open_dir dir in
      Cache.add cache k ~graph:g ~target:3 ~rng_after:(String.make 64 'b');
      Cache.close cache;
      let cache = Cache.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Cache.close cache)
        (fun () ->
          match Cache.find cache k with
          | None -> Alcotest.fail "entry lost across reopen"
          | Some (g', _) -> check_same_graph "reloaded graph" g g'))

let test_cache_lru_eviction () =
  with_cache (fun _dir cache ->
      let graph i = Digraph.of_edges ~n:(i + 2) [ (1, 2); (2, i + 2) ] in
      let keys = List.init 4 (fun i -> key ~n:(i + 2) ~params:[ ("i", string_of_int i) ] ()) in
      List.iteri
        (fun i k -> Cache.add cache k ~graph:(graph i) ~target:1 ~rng_after:(String.make 64 'c'))
        keys;
      (* touch entry 0: it becomes most recently used and must survive
         an eviction that removes two entries *)
      ignore (Cache.find cache (List.nth keys 0));
      let bytes_of k =
        (List.find (fun (e : Cache.entry) -> e.Cache.fp = Fingerprint.hex k) (Cache.entries cache))
          .Cache.bytes
      in
      let keep = bytes_of (List.nth keys 0) + bytes_of (List.nth keys 3) in
      let evict0 = Sf_obs.Counter.value c_evict in
      let evicted = Cache.gc cache ~budget_bytes:keep in
      Alcotest.(check int) "two evicted" 2 (List.length evicted);
      Alcotest.(check int) "cache.evict ticked twice" (evict0 + 2) (Sf_obs.Counter.value c_evict);
      Alcotest.(check (list string))
        "LRU order: the untouched oldest entries go first"
        [ Fingerprint.hex (List.nth keys 1); Fingerprint.hex (List.nth keys 2) ]
        (List.map (fun (e : Cache.entry) -> e.Cache.fp) evicted);
      Alcotest.(check bool) "touched entry survived" true (Cache.mem cache (List.nth keys 0));
      Alcotest.(check bool) "gc is idempotent" true (Cache.gc cache ~budget_bytes:keep = []))

let test_cache_corrupt_fallback () =
  with_cache (fun dir cache ->
      let k = key ~n:5 () in
      let g = Digraph.of_edges ~n:5 [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
      Cache.add cache k ~graph:g ~target:5 ~rng_after:(String.make 64 'd');
      (* flip one payload byte on disk: the checksum must catch it *)
      let path = Filename.concat (Filename.concat dir "objects") (Fingerprint.hex k ^ ".sfg") in
      let bytes = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      Bytes.set bytes 7 (Char.chr (Char.code (Bytes.get bytes 7) lxor 0x10));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
      let corrupt0 = Sf_obs.Counter.value c_corrupt in
      Alcotest.(check bool) "corrupt entry reads as a miss" true (Cache.find cache k = None);
      Alcotest.(check int) "cache.corrupt ticked" (corrupt0 + 1) (Sf_obs.Counter.value c_corrupt);
      Alcotest.(check bool) "entry evicted" false (Cache.mem cache k);
      Alcotest.(check bool) "object file removed" false (Sys.file_exists path);
      (* the protocol recovers: re-add and hit *)
      Cache.add cache k ~graph:g ~target:5 ~rng_after:(String.make 64 'd');
      Alcotest.(check bool) "regenerated entry hits" true (Cache.find cache k <> None))

let test_cache_verify_reports_corruption () =
  with_cache (fun dir cache ->
      let k1 = key ~n:2 ~params:[ ("i", "1") ] () and k2 = key ~n:2 ~params:[ ("i", "2") ] () in
      let g = Digraph.of_edges ~n:2 [ (1, 2) ] in
      Cache.add cache k1 ~graph:g ~target:1 ~rng_after:(String.make 64 'e');
      Cache.add cache k2 ~graph:g ~target:1 ~rng_after:(String.make 64 'e');
      let path = Filename.concat (Filename.concat dir "objects") (Fingerprint.hex k2 ^ ".sfg") in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "SFGB");
      let bad =
        Cache.verify cache
        |> List.filter (fun ((_ : Cache.entry), status) -> Result.is_error status)
      in
      Alcotest.(check int) "exactly the truncated object fails" 1 (List.length bad);
      Alcotest.(check string) "the right entry" (Fingerprint.hex k2)
        (fst (List.hd bad)).Cache.fp)

let test_cache_tolerates_index_garbage () =
  with_temp_dir (fun dir ->
      let k = key ~n:3 () in
      let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
      let cache = Cache.open_dir dir in
      Cache.add cache k ~graph:g ~target:3 ~rng_after:(String.make 64 'f');
      Cache.close cache;
      let index = Filename.concat dir "index.jsonl" in
      let oc = open_out_gen [ Open_append ] 0o644 index in
      output_string oc "not json at all\n{\"fp\":\"zz\",\"seq\":1}\n";
      close_out oc;
      let cache = Cache.open_dir dir in
      Fun.protect
        ~finally:(fun () -> Cache.close cache)
        (fun () ->
          Alcotest.(check int) "only the valid entry survives replay" 1
            (List.length (Cache.entries cache));
          Alcotest.(check bool) "and still hits" true (Cache.find cache k <> None)))

let test_cache_ugraph_both_containers () =
  with_cache (fun dir cache ->
      let u = Sf_gen.Mori.graph_giant (Rng.of_seed 71) ~p:0.6 ~m:2 ~n:80 in
      List.iter
        (fun (what, format, k) ->
          Cache.add_ugraph cache k ~graph:u ~target:5 ~rng_after:(String.make 64 'a') ~format;
          match Cache.find_ugraph cache k with
          | None -> Alcotest.failf "%s: stored object missed" what
          | Some (u', e) ->
            Alcotest.(check bool) (what ^ ": identical graph") true (same_ugraph u u');
            Alcotest.(check int) (what ^ ": target kept") 5 e.Cache.target)
        [ ("v1", `V1, key ~n:80 ()); ("v2", `V2, key ~n:81 ()) ];
      (* verify covers both containers in one sweep *)
      List.iter
        (fun (e, status) ->
          match status with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "verify rejected %s: %s" e.Cache.fp msg)
        (Cache.verify cache);
      (* corrupting a v2 object turns its verify entry into an error
         and its find into a counted miss *)
      let fp2 = Fingerprint.hex (key ~n:81 ()) in
      let path = Filename.concat (Filename.concat dir "objects") (fp2 ^ ".sfg") in
      let bytes = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      Bytes.set bytes 40 (Char.chr (Char.code (Bytes.get bytes 40) lxor 1));
      Out_channel.with_open_bin path (fun oc -> output_bytes oc bytes);
      Alcotest.(check bool) "verify flags the corrupt v2 object" true
        (List.exists (fun (_, s) -> Result.is_error s) (Cache.verify cache));
      let corrupt0 = Sf_obs.Counter.value c_corrupt in
      Alcotest.(check bool) "find_ugraph reports a miss" true
        (Cache.find_ugraph cache (key ~n:81 ()) = None);
      Alcotest.(check bool) "corrupt counter ticked" true
        (Sf_obs.Counter.value c_corrupt > corrupt0))

(* ---------------------------------------------------------------- *)
(* The corpus determinism contract                                   *)
(* ---------------------------------------------------------------- *)

let with_corpus cache body =
  Corpus.set_cache (Some cache);
  Fun.protect ~finally:(fun () -> Corpus.set_cache None) body

(* a counting maker: cold runs generate, warm runs must not *)
let counted_maker calls rng n =
  Corpus.instance ~gen:"count-test" ~params:[]
    (fun rng n ->
      incr calls;
      let g = Sf_gen.Mori.graph rng ~p:0.6 ~m:1 ~n in
      (Ugraph.of_digraph g, n))
    rng n

let test_corpus_identity_when_unset () =
  Corpus.set_cache None;
  let calls = ref 0 in
  let a = counted_maker calls (Rng.of_seed 11) 30 in
  let b = counted_maker calls (Rng.of_seed 11) 30 in
  Alcotest.(check int) "maker runs every time" 2 !calls;
  Alcotest.(check bool) "and deterministically" true (a = b)

let test_corpus_hit_skips_generation_and_restores_stream () =
  with_cache (fun _dir cache ->
      with_corpus cache (fun () ->
          let calls = ref 0 in
          let run () =
            let rng = Rng.of_seed 21 in
            let u, target = counted_maker calls rng 40 in
            (* draws after the maker must see the post-generation
               stream on both paths *)
            (Ugraph.n_edges u, target, List.init 4 (fun _ -> Rng.int rng 1_000_000))
          in
          let cold = run () in
          Alcotest.(check int) "cold run generated" 1 !calls;
          let warm = run () in
          Alcotest.(check int) "warm run did not generate" 1 !calls;
          Alcotest.(check bool) "identical graph, target and stream" true (cold = warm)))

let test_corpus_v2_threshold () =
  (* a maker above the edge threshold must land in the v2 container,
     and the warm read must restore graph, target and stream exactly *)
  with_cache (fun dir cache ->
      with_corpus cache (fun () ->
          let n = (1 lsl 18) + 2 (* m-1 tree: edges = n - 1 >= 2^18 *) in
          let calls = ref 0 in
          let maker rng n =
            Corpus.instance ~gen:"giant-test" ~params:[ ("p", "0.6") ]
              (fun rng n ->
                incr calls;
                (Sf_gen.Mori.graph_giant rng ~p:0.6 ~m:1 ~n, n))
              rng n
          in
          let run () =
            let rng = Rng.of_seed 81 in
            let u, target = maker rng n in
            (Ugraph.n_edges u, Ugraph.degree u 1, target, Rng.int rng 1_000_000)
          in
          let cold = run () in
          Alcotest.(check int) "cold generated" 1 !calls;
          let objects = Sys.readdir (Filename.concat dir "objects") in
          Alcotest.(check int) "one object" 1 (Array.length objects);
          let path = Filename.concat (Filename.concat dir "objects") objects.(0) in
          Alcotest.(check (option int)) "stored in the v2 container" (Some 2)
            (Csr_codec.sniff_version path);
          let warm = run () in
          Alcotest.(check int) "warm did not generate" 1 !calls;
          Alcotest.(check bool) "warm result identical" true (cold = warm)))

let grid_csv ~jobs () =
  let master = Rng.of_seed 4242 in
  let spec = { Searchability.default_spec with Searchability.trials = 5 } in
  let points =
    Searchability.measure ~jobs master
      ~make:(Searchability.mori_instance ~p:0.6 ~m:1)
      ~strategies:[ Sf_search.Strategies.high_degree; Sf_search.Strategies.bfs ]
      ~sizes:[ 40; 80 ] ~spec
  in
  Searchability.points_to_csv points

let test_measure_golden_cold_warm_jobs () =
  let baseline = grid_csv ~jobs:1 () in
  with_cache (fun _dir cache ->
      with_corpus cache (fun () ->
          let miss0 = Sf_obs.Counter.value c_miss in
          let cold = grid_csv ~jobs:1 () in
          Alcotest.(check string) "cold = uncached baseline" baseline cold;
          Alcotest.(check bool) "cold run populated the cache" true
            (Sf_obs.Counter.value c_miss > miss0);
          let miss1 = Sf_obs.Counter.value c_miss and hit1 = Sf_obs.Counter.value c_hit in
          let warm1 = grid_csv ~jobs:1 () in
          Alcotest.(check string) "warm jobs=1 byte-identical" baseline warm1;
          Alcotest.(check int) "warm jobs=1: zero misses" miss1 (Sf_obs.Counter.value c_miss);
          Alcotest.(check bool) "warm jobs=1: hits recorded" true
            (Sf_obs.Counter.value c_hit > hit1);
          let miss2 = Sf_obs.Counter.value c_miss in
          let warm4 = grid_csv ~jobs:4 () in
          Alcotest.(check string) "warm jobs=4 byte-identical" baseline warm4;
          Alcotest.(check int) "warm jobs=4: zero misses" miss2 (Sf_obs.Counter.value c_miss)))

let test_measure_parallel_cold_matches () =
  (* a cold cache filled from four domains at once must still produce
     the sequential answer *)
  let baseline = grid_csv ~jobs:1 () in
  with_cache (fun _dir cache ->
      with_corpus cache (fun () ->
          let cold4 = grid_csv ~jobs:4 () in
          Alcotest.(check string) "cold jobs=4 = uncached baseline" baseline cold4;
          let warm1 = grid_csv ~jobs:1 () in
          Alcotest.(check string) "then warm jobs=1 agrees" baseline warm1))

let suite =
  [
    ("varint round trip", `Quick, test_varint_roundtrip);
    ("varint truncation", `Quick, test_varint_truncation);
    ("crc32 test vector", `Quick, test_crc32_known_value);
    ("codec: small graphs", `Quick, test_codec_small_graphs);
    ("codec: insertion order", `Quick, test_codec_preserves_insertion_order);
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ugraph_roundtrip;
    ("decode: basic rejections", `Quick, test_decode_rejects_basics);
    ("decode: truncations", `Quick, test_decode_rejects_truncations);
    ("decode: bit flips", `Quick, test_decode_rejects_bit_flips);
    ("read_any_file dispatch", `Quick, test_read_any_file_dispatch);
    ("giant container: round trip", `Quick, test_csr_codec_roundtrip);
    QCheck_alcotest.to_alcotest qcheck_csr_codec_roundtrip;
    ("giant container: truncations", `Quick, test_csr_codec_rejects_truncations);
    ("giant container: bit flips", `Quick, test_csr_codec_rejects_bit_flips);
    ("giant container: load dispatch", `Quick, test_load_ugraph_dispatch);
    ("cache: both containers", `Quick, test_cache_ugraph_both_containers);
    ("corpus: v2 threshold", `Slow, test_corpus_v2_threshold);
    ("fingerprint: distinct coordinates", `Quick, test_fingerprint_distinct_coordinates);
    ("fingerprint: rng token round trip", `Quick, test_rng_token_roundtrip);
    ("cache: miss then hit", `Quick, test_cache_miss_then_hit);
    ("cache: persists across reopen", `Quick, test_cache_persists_across_reopen);
    ("cache: LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache: corrupt fallback", `Quick, test_cache_corrupt_fallback);
    ("cache: verify reports corruption", `Quick, test_cache_verify_reports_corruption);
    ("cache: tolerates index garbage", `Quick, test_cache_tolerates_index_garbage);
    ("corpus: identity when unset", `Quick, test_corpus_identity_when_unset);
    ("corpus: hit skips generation", `Quick, test_corpus_hit_skips_generation_and_restores_stream);
    ("corpus: golden cold/warm at jobs 1 and 4", `Slow, test_measure_golden_cold_warm_jobs);
    ("corpus: parallel cold fill", `Slow, test_measure_parallel_cold_matches);
  ]
