(* Tests for the structured event stream: sink fan-out and ordering,
   the flight-recorder ring, the JSONL and Perfetto exporters (their
   output must parse as JSON), GC sampling, progress reporting, the
   stream-backed traced runs (pinned byte-for-byte against a golden
   CSV digest), and the --no-obs kill switch.

   The stream is process-global and shared with every instrumented
   library, so each test attaches its sinks inside Fun.protect and
   detaches them before returning — a leaked sink would make every
   other suite pay for event construction. *)

module Trace = Sf_obs.Trace
module Flight = Sf_obs.Flight
module Trace_export = Sf_obs.Trace_export
module Registry = Sf_obs.Registry
module Runner = Sf_search.Runner
module Oracle = Sf_search.Oracle
module Strategies = Sf_search.Strategies
module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph

let with_sink sink body =
  let id = Trace.attach sink in
  Fun.protect ~finally:(fun () -> Trace.detach id) body

let collector acc =
  { Trace.descr = "test-collector"; emit = (fun e -> acc := e :: !acc); close = ignore }

(* --- a minimal JSON reader ---------------------------------------------

   Enough of RFC 8259 to validate what the exporters emit (objects,
   arrays, strings with escapes, numbers, booleans, null). Failing to
   parse raises, which fails the test — exactly the check we want:
   "external tools can read this file". *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* raw code point is fine for validation purposes *)
          Buffer.add_char buf (Char.chr (code land 0x7f));
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when number_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_arr (elements [])
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name j =
  match obj_field name j with Some (J_str s) -> Some s | _ -> None

(* --- the stream --------------------------------------------------------- *)

let test_emit_fanout_and_ordering () =
  let a = ref [] and b = ref [] in
  with_sink (collector a) (fun () ->
      with_sink (collector b) (fun () ->
          Alcotest.(check bool) "stream active with sinks" true (Trace.active ());
          Trace.instant "test.trace.one";
          Trace.instant "test.trace.two" ~args:[ ("k", Trace.Int 7) ];
          Trace.counter "test.trace.depth" 3.));
  Alcotest.(check int) "first sink saw all three" 3 (List.length !a);
  Alcotest.(check int) "second sink saw all three" 3 (List.length !b);
  let names evs = List.rev_map (fun e -> e.Trace.name) evs in
  Alcotest.(check (list string))
    "same events in the same order" (names !a) (names !b);
  let seqs = List.rev_map (fun e -> e.Trace.seq) !a in
  Alcotest.(check bool) "sequence numbers strictly increase" true
    (List.sort compare seqs = seqs && List.sort_uniq compare seqs = seqs);
  let ts = List.rev_map (fun e -> e.Trace.ts) !a in
  Alcotest.(check bool) "timestamps non-decreasing" true
    (List.sort compare ts = ts)

let test_inactive_without_sinks () =
  Alcotest.(check int) "no sinks attached between tests" 0 (Trace.attached ());
  Alcotest.(check bool) "stream inactive without sinks" false (Trace.active ())

let test_detach_closes_sink () =
  let closed = ref false in
  let id =
    Trace.attach
      { Trace.descr = "closing"; emit = ignore; close = (fun () -> closed := true) }
  in
  Trace.detach id;
  Alcotest.(check bool) "close ran on detach" true !closed;
  Trace.detach id;
  Alcotest.(check bool) "unknown id ignored, close not re-run" true !closed

let test_disabled_stream_emits_nothing () =
  let acc = ref [] in
  with_sink (collector acc) (fun () ->
      Registry.set_enabled false;
      Fun.protect
        ~finally:(fun () -> Registry.set_enabled true)
        (fun () ->
          Alcotest.(check bool) "sink attached but stream inactive" false
            (Trace.active ());
          Trace.instant "test.trace.suppressed";
          (* a whole search run: every instrumented site must stay silent *)
          let rng = Rng.of_seed 12 in
          let g = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:150) in
          ignore (Runner.search ~rng g Strategies.bfs ~source:1 ~target:150)));
  Alcotest.(check int) "no events under --no-obs" 0 (List.length !acc)

(* --- flight recorder ---------------------------------------------------- *)

let test_flight_wraparound () =
  let f = Flight.create ~capacity:4 () in
  with_sink (Flight.sink f) (fun () ->
      for i = 1 to 10 do
        Trace.instant "test.trace.flight" ~args:[ ("i", Trace.Int i) ]
      done);
  Alcotest.(check int) "ring keeps capacity events" 4 (Flight.length f);
  Alcotest.(check int) "all events were seen" 10 (Flight.seen f);
  Alcotest.(check int) "overwritten count" 6 (Flight.dropped f);
  let kept =
    List.map
      (fun e ->
        match List.assoc "i" e.Trace.args with Trace.Int i -> i | _ -> -1)
      (Flight.events f)
  in
  Alcotest.(check (list int)) "oldest-first, most recent retained" [ 7; 8; 9; 10 ] kept

let test_flight_trigger_fires_once () =
  let f = Flight.create ~capacity:8 () in
  let fired = ref 0 in
  Flight.arm f
    ~trigger:(fun e -> e.Trace.name = "test.trace.boom")
    ~action:(fun _ -> incr fired);
  with_sink (Flight.sink f) (fun () ->
      Trace.instant "test.trace.calm";
      Alcotest.(check int) "not yet" 0 !fired;
      Trace.instant "test.trace.boom";
      Trace.instant "test.trace.boom";
      Trace.instant "test.trace.boom");
  Alcotest.(check int) "trigger disarms after the first hit" 1 !fired;
  Alcotest.(check bool) "triggering event is retained" true
    (List.exists (fun e -> e.Trace.name = "test.trace.boom") (Flight.events f))

let test_flight_dump_renders_lines () =
  let f = Flight.create ~capacity:4 () in
  with_sink (Flight.sink f) (fun () ->
      for i = 1 to 6 do
        Trace.instant "test.trace.dumpme" ~args:[ ("i", Trace.Int i) ]
      done);
  let path = Filename.temp_file "sf_flight" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Flight.dump ~out:oc f;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "dump names the event" true
        (let re = "test.trace.dumpme" in
         let rec contains i =
           i + String.length re <= String.length contents
           && (String.sub contents i (String.length re) = re || contains (i + 1))
         in
         contains 0);
      Alcotest.(check bool) "dump mentions the overwritten count" true
        (String.length contents > 0))

(* --- exporters ---------------------------------------------------------- *)

(* one synthetic stream exercising every kind, including an unmatched
   Begin (a run that raised mid-phase) *)
let synthetic_events () =
  let acc = ref [] in
  with_sink (collector acc) (fun () ->
      Trace.emit "test.phase" Trace.Begin ~args:[ ("n", Trace.Int 3) ];
      Trace.instant "test.point"
        ~args:[ ("who", Trace.Str "a\"b\\c"); ("ok", Trace.Bool true) ];
      Trace.counter "test.depth" 2.;
      Trace.emit "test.inner" Trace.Begin;
      Trace.emit "test.inner" Trace.End;
      Trace.emit "test.phase" Trace.End ~args:[ ("done", Trace.Bool true) ];
      Trace.emit "test.dangling" Trace.Begin;
      Trace.instant "test.last" ~args:[ ("vs", Trace.Ints [ 1; 2; 3 ]) ]);
  List.rev !acc

let test_perfetto_export_is_valid_json () =
  let doc = Trace_export.perfetto_json (synthetic_events ()) in
  let j = parse_json doc in
  (match str_field "displayTimeUnit" j with
  | Some u -> Alcotest.(check string) "display unit" "ms" u
  | None -> Alcotest.fail "missing displayTimeUnit");
  match obj_field "traceEvents" j with
  | Some (J_arr events) ->
    Alcotest.(check bool) "non-empty traceEvents" true (events <> []);
    let phs =
      List.filter_map (fun e -> str_field "ph" e) events |> List.sort_uniq compare
    in
    Alcotest.(check (list string)) "only complete/instant/counter/metadata phases"
      [ "C"; "M"; "X"; "i" ] phs;
    List.iter
      (fun e ->
        match str_field "ph" e with
        | Some "X" ->
          (match obj_field "dur" e with
          | Some (J_num d) ->
            Alcotest.(check bool) "slice durations non-negative" true (d >= 0.)
          | _ -> Alcotest.fail "X record without dur");
          (match obj_field "ts" e with
          | Some (J_num ts) ->
            Alcotest.(check bool) "timestamps relative, non-negative" true (ts >= 0.)
          | _ -> Alcotest.fail "X record without ts")
        | Some "C" ->
          (match obj_field "args" e with
          | Some (J_obj _) -> ()
          | _ -> Alcotest.fail "counter without args")
        | _ -> ())
      events;
    (* both phases became slices; the dangling Begin was force-closed *)
    let slice_names =
      List.filter_map
        (fun e -> if str_field "ph" e = Some "X" then str_field "name" e else None)
        events
    in
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " sliced") true (List.mem name slice_names))
      [ "test.phase"; "test.inner"; "test.dangling" ]
  | _ -> Alcotest.fail "missing traceEvents array"

let test_jsonl_lines_parse () =
  List.iter
    (fun e ->
      let line = Trace_export.event_jsonl e in
      match parse_json line with
      | J_obj fields ->
        Alcotest.(check bool) "has seq/ts/ph/name" true
          (List.mem_assoc "seq" fields && List.mem_assoc "ts" fields
          && List.mem_assoc "ph" fields && List.mem_assoc "name" fields)
      | _ -> Alcotest.fail "JSONL line is not an object")
    (synthetic_events ())

let test_file_sink_selection () =
  let dir = Filename.get_temp_dir_name () in
  let jsonl = Filename.concat dir "sf_trace_test.jsonl" in
  let json = Filename.concat dir "sf_trace_test.json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists jsonl then Sys.remove jsonl;
      if Sys.file_exists json then Sys.remove json)
    (fun () ->
      let id_l = Trace_export.attach_file jsonl in
      let id_p = Trace_export.attach_file json in
      Fun.protect
        ~finally:(fun () ->
          Trace.detach id_l;
          Trace.detach id_p)
        (fun () ->
          Trace.instant "test.trace.file" ~args:[ ("x", Trace.Int 1) ];
          Trace.counter "test.trace.gauge" 4.);
      let read path =
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let lines =
        String.split_on_char '\n' (read jsonl) |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "jsonl: one line per event" 2 (List.length lines);
      List.iter (fun l -> ignore (parse_json l)) lines;
      match obj_field "traceEvents" (parse_json (read json)) with
      | Some (J_arr evs) ->
        (* one record per event, plus the process_name metadata record *)
        Alcotest.(check int) "perfetto: one record per event" 3 (List.length evs)
      | _ -> Alcotest.fail "perfetto file missing traceEvents")

(* --- the oracle's request events ---------------------------------------- *)

let test_request_events_match_counters () =
  let requests_counter = Registry.counter "search.requests" in
  let before = Sf_obs.Counter.value requests_counter in
  let acc = ref [] in
  let outcome =
    with_sink (collector acc) (fun () ->
        let rng = Rng.of_seed 41 in
        let g = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.6 ~t:300) in
        Runner.search ~rng g Strategies.bfs ~source:1 ~target:290)
  in
  let request_events =
    List.filter (fun e -> e.Trace.name = Oracle.request_event_name) !acc
  in
  Alcotest.(check int) "one event per paid request"
    outcome.Runner.total_requests (List.length request_events);
  Alcotest.(check int) "stream and counter agree"
    (Sf_obs.Counter.value requests_counter - before)
    (List.length request_events);
  (* the index argument replays the request sequence 1..N *)
  let indices =
    List.rev_map
      (fun e ->
        match List.assoc_opt "index" e.Trace.args with
        | Some (Trace.Int i) -> i
        | _ -> -1)
      request_events
  in
  Alcotest.(check (list int)) "indices are 1..N"
    (List.init (List.length indices) (fun i -> i + 1))
    indices

let test_traced_run_golden_csv () =
  (* the CSV of a fixed seeded run is pinned byte-for-byte: the
     stream-backed run_traced must reproduce what the bespoke recorder
     produced before it was deleted *)
  let rng = Rng.of_seed 95 in
  let g = Sf_gen.Mori.tree rng ~p:0.7 ~t:200 in
  let oracle =
    Oracle.start ~rng Oracle.Weak (Ugraph.of_digraph g) ~source:1 ~target:190
  in
  let _, trace = Runner.run_traced ~rng Strategies.bfs oracle in
  let csv = Runner.trace_to_csv trace in
  Alcotest.(check string) "golden digest of the seeded trace CSV"
    "e72c509f00697c5912e24b093d6e3325"
    (Digest.to_hex (Digest.string csv))

let test_traced_run_empty_when_disabled () =
  Registry.set_enabled false;
  let outcome, trace =
    Fun.protect
      ~finally:(fun () -> Registry.set_enabled true)
      (fun () ->
        let rng = Rng.of_seed 95 in
        let g = Sf_gen.Mori.tree rng ~p:0.7 ~t:200 in
        let oracle =
          Oracle.start ~rng Oracle.Weak (Ugraph.of_digraph g) ~source:1 ~target:190
        in
        Runner.run_traced ~rng Strategies.bfs oracle)
  in
  Alcotest.(check bool) "run still succeeds" true (outcome.Runner.to_target <> None);
  Alcotest.(check int) "trace empty under --no-obs" 0 (List.length trace)

(* --- GC sampling -------------------------------------------------------- *)

let test_gc_sample_gauges_and_events () =
  let acc = ref [] in
  with_sink (collector acc) (fun () -> Sf_obs.Gc_sample.sample ());
  let gauge name =
    let g = Registry.gauge name in
    Alcotest.(check bool) (name ^ " gauge set") true (Registry.gauge_set g);
    Registry.gauge_value g
  in
  Alcotest.(check bool) "heap words positive" true (gauge "gc.heap_words" > 0.);
  Alcotest.(check bool) "minor words non-negative" true (gauge "gc.minor_words" >= 0.);
  ignore (gauge "gc.minor_collections");
  ignore (gauge "gc.major_collections");
  let counter_names =
    List.filter_map
      (fun e -> match e.Trace.kind with Trace.Counter _ -> Some e.Trace.name | _ -> None)
      !acc
    |> List.sort_uniq compare
  in
  (* Resource.sample rides along and adds its RSS counter sample where
     /proc is available *)
  let expected =
    [ "gc.heap_words"; "gc.major_collections"; "gc.minor_collections" ]
    @ (if Sf_obs.Resource.available () then [ "proc.rss_bytes" ] else [])
  in
  Alcotest.(check (list string)) "gc counter samples on the stream" expected counter_names

(* --- manifest gating ----------------------------------------------------- *)

let test_manifest_checked_skips_when_disabled () =
  let path = Filename.temp_file "sf_manifest" ".json" in
  Sys.remove path;
  Registry.set_enabled false;
  let status =
    Fun.protect
      ~finally:(fun () -> Registry.set_enabled true)
      (fun () ->
        Sf_obs.Export.write_manifest_checked ~tool:"test" ~seed:1 ~mode:"unit" ~path ())
  in
  Alcotest.(check bool) "reports the skip" true (status = `Skipped_disabled);
  Alcotest.(check bool) "no file written" false (Sys.file_exists path)

let test_manifest_checked_reports_io_errors () =
  let status =
    Sf_obs.Export.write_manifest_checked ~tool:"test" ~seed:1 ~mode:"unit"
      ~path:"/nonexistent-dir-sf/obs.json" ()
  in
  match status with
  | `Error _ -> ()
  | `Written -> Alcotest.fail "wrote through a nonexistent directory"
  | `Skipped_disabled -> Alcotest.fail "registry is enabled"

(* --- progress ------------------------------------------------------------ *)

let test_progress_reporting () =
  let path = Filename.temp_file "sf_progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let pr = Sf_obs.Progress.create ~out:oc ~label:"trials" ~total:3 () in
      Sf_obs.Progress.step pr ~detail:"first";
      Sf_obs.Progress.step pr;
      Sf_obs.Progress.step pr;
      Alcotest.(check int) "steps counted" 3 (Sf_obs.Progress.completed pr);
      Sf_obs.Progress.finish pr;
      Sf_obs.Progress.step pr;
      Alcotest.(check int) "steps after finish ignored" 3 (Sf_obs.Progress.completed pr);
      close_out oc;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "line carries the label and counts" true
        (let re = "trials: 3/3" in
         let rec contains i =
           i + String.length re <= String.length s
           && (String.sub s i (String.length re) = re || contains (i + 1))
         in
         contains 0);
      Alcotest.(check bool) "final line is newline-terminated" true
        (String.length s > 0 && s.[String.length s - 1] = '\n'))

(* --- multi-process tracks ----------------------------------------------- *)

let mk ?(args = []) ~seq ~ts name kind = { Trace.seq; ts; name; kind; args }

let test_multiproc_export_tracks () =
  (* three processes with fixed stamps: untagged coordinator events on
     the default track, two tagged worker tracks via merge_tracks *)
  let coord =
    [ mk ~seq:1 ~ts:0. "merge" Trace.Begin; mk ~seq:2 ~ts:1. "merge" Trace.End ]
  in
  let w1 =
    [
      mk ~seq:1 ~ts:0.125 "trial" Trace.Begin;
      mk ~seq:2 ~ts:0.375 "trial" Trace.End;
      mk ~seq:3 ~ts:0.4375 "ckpt" Trace.Instant;
    ]
  in
  let w2 =
    [ mk ~seq:1 ~ts:0.25 "trial" Trace.Begin; mk ~seq:2 ~ts:0.5 "trial" Trace.End ]
  in
  let doc =
    Trace_export.perfetto_of_tracks ~process:"coordinator"
      [ ("coordinator", coord); ("worker-1", w1); ("worker-2", w2) ]
  in
  match obj_field "traceEvents" (parse_json doc) with
  | Some (J_arr events) ->
    (* each track is announced exactly once, pids in first-seen order *)
    let tracks =
      List.filter_map
        (fun e ->
          match (str_field "ph" e, obj_field "pid" e, obj_field "args" e) with
          | Some "M", Some (J_num pid), Some (J_obj args) -> (
            match List.assoc_opt "name" args with
            | Some (J_str name) -> Some (int_of_float pid, name)
            | _ -> None)
          | _ -> None)
        events
      |> List.sort compare
    in
    Alcotest.(check (list (pair int string)))
      "named process tracks"
      [ (1, "coordinator"); (2, "worker-1"); (3, "worker-2") ]
      tracks;
    (* every slice lands on its own process's pid *)
    let slices =
      List.filter_map
        (fun e ->
          match (str_field "ph" e, str_field "name" e, obj_field "pid" e) with
          | Some "X", Some name, Some (J_num pid) -> Some (int_of_float pid, name)
          | _ -> None)
        events
      |> List.sort compare
    in
    Alcotest.(check (list (pair int string)))
      "slices on their tracks"
      [ (1, "merge"); (2, "trial"); (3, "trial") ]
      slices;
    let instants =
      List.filter_map
        (fun e ->
          match (str_field "ph" e, obj_field "pid" e) with
          | Some "i", Some (J_num pid) -> Some (int_of_float pid)
          | _ -> None)
        events
    in
    Alcotest.(check (list int)) "instant on worker-1's track" [ 2 ] instants
  | _ -> Alcotest.fail "missing traceEvents"

(* merge_tracks restores per-track sequence order no matter how the
   input lists are shuffled: within one process, seq order and stamp
   order agree (the stream stamps monotonically), and the merge must
   keep both — per-track seqs strictly increasing in the merged
   stream, with nothing dropped. *)
let qcheck_merge_seq_order =
  let open QCheck in
  let track_gen =
    Gen.(
      int_range 0 24 >>= fun n ->
      (* nondecreasing stamps on an exact binary grid (no float noise),
         strictly increasing seqs; then shuffle the transmission order *)
      list_repeat n (int_range 0 3) >>= fun steps ->
      let _, pairs =
        List.fold_left
          (fun (ts, acc) d ->
            let ts = ts +. (float_of_int d /. 16.) in
            (ts, (List.length acc + 1, ts) :: acc))
          (0., []) steps
      in
      shuffle_l pairs)
  in
  let arb =
    make
      ~print:(fun tracks ->
        String.concat " | "
          (List.map
             (fun pairs ->
               String.concat ","
                 (List.map (fun (seq, ts) -> Printf.sprintf "%d@%g" seq ts) pairs))
             tracks))
      Gen.(int_range 1 4 >>= fun k -> list_repeat k track_gen)
  in
  Test.make ~name:"merge_tracks: seqs strictly ordered per track" ~count:200 arb
    (fun tracks ->
      let named =
        List.mapi
          (fun i pairs ->
            ( Printf.sprintf "t%d" i,
              List.map
                (fun (seq, ts) ->
                  { Trace.seq; ts; name = "e"; kind = Trace.Instant; args = [] })
                pairs ))
          tracks
      in
      let merged = Trace_export.merge_tracks named in
      List.length merged = List.fold_left (fun a (_, es) -> a + List.length es) 0 named
      && List.for_all
           (fun (name, es) ->
             let seqs =
               List.filter_map
                 (fun e ->
                   match List.assoc_opt "proc" e.Trace.args with
                   | Some (Trace.Str p) when p = name -> Some e.Trace.seq
                   | _ -> None)
                 merged
             in
             let rec strict = function
               | a :: (b :: _ as tl) -> a < b && strict tl
               | _ -> true
             in
             List.length seqs = List.length es && strict seqs)
           named)

(* --- trace-context ids --------------------------------------------------- *)

let test_tctx_derivation () =
  let module Tctx = Sf_obs.Tctx in
  let c = Tctx.derive ~seed:42 ~id:7 in
  Alcotest.(check bool) "pure: same inputs, same context" true
    (c = Tctx.derive ~seed:42 ~id:7);
  Alcotest.(check bool) "seed moves the trace id" true
    ((Tctx.derive ~seed:43 ~id:7).Tctx.trace <> c.Tctx.trace);
  Alcotest.(check bool) "request id moves the trace id" true
    ((Tctx.derive ~seed:42 ~id:8).Tctx.trace <> c.Tctx.trace);
  Alcotest.(check bool) "ids non-negative" true (c.Tctx.trace >= 0 && c.Tctx.span >= 0);
  let c1 = Tctx.child c ~key:1 and c2 = Tctx.child c ~key:2 in
  Alcotest.(check bool) "children keep the trace id" true
    (c1.Tctx.trace = c.Tctx.trace && c2.Tctx.trace = c.Tctx.trace);
  Alcotest.(check bool) "children get fresh, distinct spans" true
    (c1.Tctx.span <> c2.Tctx.span && c1.Tctx.span <> c.Tctx.span && c2.Tctx.span >= 0);
  Alcotest.(check int) "hex is 16 digits" 16 (String.length (Tctx.to_hex c.Tctx.trace));
  Alcotest.(check string) "hex of zero pads" "0000000000000000" (Tctx.to_hex 0);
  match Tctx.args c with
  | [ ("trace", Trace.Str t); ("span", Trace.Str s) ] ->
    Alcotest.(check string) "trace arg renders to_hex" (Tctx.to_hex c.Tctx.trace) t;
    Alcotest.(check string) "span arg renders to_hex" (Tctx.to_hex c.Tctx.span) s
  | _ -> Alcotest.fail "unexpected Tctx.args shape"

let suite =
  [
    ("fan-out and ordering", `Quick, test_emit_fanout_and_ordering);
    ("inactive without sinks", `Quick, test_inactive_without_sinks);
    ("detach closes the sink", `Quick, test_detach_closes_sink);
    ("disabled stream emits nothing", `Quick, test_disabled_stream_emits_nothing);
    ("flight ring wraparound", `Quick, test_flight_wraparound);
    ("flight trigger fires once", `Quick, test_flight_trigger_fires_once);
    ("flight dump renders", `Quick, test_flight_dump_renders_lines);
    ("perfetto export is valid JSON", `Quick, test_perfetto_export_is_valid_json);
    ("jsonl lines parse", `Quick, test_jsonl_lines_parse);
    ("file sink selection by suffix", `Quick, test_file_sink_selection);
    ("request events match counters", `Quick, test_request_events_match_counters);
    ("traced run golden CSV", `Quick, test_traced_run_golden_csv);
    ("traced run empty when disabled", `Quick, test_traced_run_empty_when_disabled);
    ("gc sample gauges and events", `Quick, test_gc_sample_gauges_and_events);
    ("manifest skipped when disabled", `Quick, test_manifest_checked_skips_when_disabled);
    ("manifest io errors reported", `Quick, test_manifest_checked_reports_io_errors);
    ("progress reporting", `Quick, test_progress_reporting);
    ("multi-process export tracks", `Quick, test_multiproc_export_tracks);
    QCheck_alcotest.to_alcotest qcheck_merge_seq_order;
    ("trace-context derivation", `Quick, test_tctx_derivation);
  ]
