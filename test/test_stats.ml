(* Tests for the statistics substrate: summaries, quantiles,
   regression, histograms, power-law fitting and the hypothesis
   tests. *)

module Summary = Sf_stats.Summary
module Quantile = Sf_stats.Quantile
module Regression = Sf_stats.Regression
module Histogram = Sf_stats.Histogram
module Power_law = Sf_stats.Power_law
module Tests = Sf_stats.Tests
module Table = Sf_stats.Table
module Rng = Sf_prng.Rng

let checkf ?(eps = 1e-9) name expected actual = Alcotest.(check (float eps)) name expected actual

(* --- Summary ----------------------------------------------------------- *)

let test_summary_moments () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "count" 8 (Summary.count s);
  checkf "mean" 5. (Summary.mean s);
  checkf ~eps:1e-9 "variance (unbiased)" (32. /. 7.) (Summary.variance s);
  checkf "min" 2. (Summary.min_value s);
  checkf "max" 9. (Summary.max_value s);
  checkf "total" 40. (Summary.total s)

let test_summary_empty_and_single () =
  let s = Summary.create () in
  checkf "empty mean" 0. (Summary.mean s);
  checkf "empty variance" 0. (Summary.variance s);
  Summary.add s 42.;
  checkf "single mean" 42. (Summary.mean s);
  checkf "single variance" 0. (Summary.variance s)

let test_summary_merge () =
  let a = Summary.of_array [| 1.; 2.; 3. |] in
  let b = Summary.of_array [| 10.; 20. |] in
  let m = Summary.merge a b in
  let direct = Summary.of_array [| 1.; 2.; 3.; 10.; 20. |] in
  Alcotest.(check int) "merged count" 5 (Summary.count m);
  checkf ~eps:1e-9 "merged mean" (Summary.mean direct) (Summary.mean m);
  checkf ~eps:1e-9 "merged variance" (Summary.variance direct) (Summary.variance m);
  checkf "merged min" 1. (Summary.min_value m);
  checkf "merged max" 20. (Summary.max_value m)

let test_summary_ci () =
  let s = Summary.of_int_array (Array.make 100 5) in
  checkf "zero-variance CI" 0. (Summary.ci95_halfwidth s);
  let lo, hi = Summary.ci95 s in
  checkf "ci around mean (lo)" 5. lo;
  checkf "ci around mean (hi)" 5. hi

(* --- Quantile ----------------------------------------------------------- *)

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  checkf "median interpolates" 2.5 (Quantile.median xs);
  checkf "q0 = min" 1. (Quantile.quantile xs ~q:0.);
  checkf "q1 = max" 4. (Quantile.quantile xs ~q:1.);
  checkf "q25" 1.75 (Quantile.quantile xs ~q:0.25);
  checkf "iqr" 1.5 (Quantile.iqr xs);
  Alcotest.check_raises "empty sample" (Invalid_argument "Quantile: empty sample") (fun () ->
      ignore (Quantile.median [||]))

let test_quantiles_unsorted_input () =
  let xs = [| 9.; 1.; 5. |] in
  checkf "median of unsorted" 5. (Quantile.median xs);
  (* input untouched *)
  Alcotest.(check (array (float 0.))) "input preserved" [| 9.; 1.; 5. |] xs

(* --- Regression ----------------------------------------------------------- *)

let test_linear_exact () =
  let fit = Regression.linear [ (0., 1.); (1., 3.); (2., 5.); (3., 7.) ] in
  checkf "slope" 2. fit.Regression.slope;
  checkf "intercept" 1. fit.Regression.intercept;
  checkf "r2 perfect" 1. fit.Regression.r_squared;
  checkf "zero slope error on perfect fit" 0. fit.Regression.slope_std_error;
  checkf "predict" 9. (Regression.predict fit 4.)

let test_log_log_recovers_power () =
  let points = List.init 20 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3. *. (x ** 1.7)))
  in
  let fit = Regression.log_log points in
  checkf ~eps:1e-6 "exponent" 1.7 fit.Regression.slope;
  checkf ~eps:1e-6 "constant" 3. (Regression.power_fit_constant fit);
  checkf ~eps:1e-4 "power prediction" (3. *. (25. ** 1.7)) (Regression.predict_power fit 25.)

let test_regression_validation () =
  Alcotest.check_raises "one point" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.linear: all x values identical")
    (fun () -> ignore (Regression.linear [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "nonpositive log input"
    (Invalid_argument "Regression.log_log: coordinates must be positive") (fun () ->
      ignore (Regression.log_log [ (0., 1.); (1., 2.) ]))

let test_linear_noise_slope_error () =
  let rng = Rng.of_seed 1 in
  let points =
    List.init 200 (fun i ->
        let x = float_of_int i in
        (x, (2. *. x) +. Sf_prng.Dist.normal rng ~mu:0. ~sigma:5.))
  in
  let fit = Regression.linear points in
  Alcotest.(check bool) "slope near 2" true (Float.abs (fit.Regression.slope -. 2.) < 0.05);
  Alcotest.(check bool) "slope error positive" true (fit.Regression.slope_std_error > 0.)

(* --- Histogram ----------------------------------------------------------- *)

let test_linear_histogram () =
  let bins = Histogram.linear [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 |] ~bins:5 in
  Alcotest.(check int) "bin count" 5 (List.length bins);
  List.iter (fun b -> Alcotest.(check int) "two per bin" 2 b.Histogram.count) bins;
  let total_mass =
    List.fold_left (fun acc b -> acc +. (b.Histogram.density *. (b.Histogram.hi -. b.Histogram.lo))) 0. bins
  in
  checkf ~eps:1e-9 "densities integrate to 1" 1. total_mass

let test_log_histogram () =
  let bins = Histogram.logarithmic [| 1; 1; 2; 3; 4; 8; 9; 100 |] () in
  let total = List.fold_left (fun acc b -> acc + b.Histogram.count) 0 bins in
  Alcotest.(check int) "all positive samples binned" 8 total;
  (* first bin [1,2) holds the two 1s *)
  (match bins with
  | first :: _ -> Alcotest.(check int) "first bin" 2 first.Histogram.count
  | [] -> Alcotest.fail "bins expected");
  Alcotest.check_raises "no positive values"
    (Invalid_argument "Histogram.logarithmic: no positive values") (fun () ->
      ignore (Histogram.logarithmic [| 0; 0 |] ()))

let test_ccdf () =
  let ccdf = Histogram.ccdf [| 1; 1; 2; 4 |] in
  Alcotest.(check int) "distinct values" 3 (List.length ccdf);
  let assoc = List.map (fun (x, p) -> (x, p)) ccdf in
  checkf "P(X>=1)" 1. (List.assoc 1 assoc);
  checkf "P(X>=2)" 0.5 (List.assoc 2 assoc);
  checkf "P(X>=4)" 0.25 (List.assoc 4 assoc);
  Alcotest.(check (list (pair int (float 0.)))) "empty sample" [] (Histogram.ccdf [||])

let test_render_histogram () =
  let bins = Histogram.linear [| 1; 2; 3 |] ~bins:3 in
  let s = Histogram.render bins in
  Alcotest.(check bool) "renders lines" true (String.length s > 0)

(* --- Power law ----------------------------------------------------------- *)

let test_hurwitz_zeta () =
  (* zeta(2) = pi^2/6 *)
  checkf ~eps:1e-8 "zeta(2,1)" (Float.pi *. Float.pi /. 6.) (Power_law.hurwitz_zeta ~alpha:2. ~q:1.);
  (* Hurwitz shift identity: zeta(a,1) - 1 = zeta(a,2) *)
  checkf ~eps:1e-8 "shift identity"
    (Power_law.hurwitz_zeta ~alpha:3. ~q:1. -. 1.)
    (Power_law.hurwitz_zeta ~alpha:3. ~q:2.);
  Alcotest.check_raises "alpha <= 1" (Invalid_argument "Power_law.hurwitz_zeta: need alpha > 1")
    (fun () -> ignore (Power_law.hurwitz_zeta ~alpha:1. ~q:1.))

let test_mle_recovers_exponent () =
  let rng = Rng.of_seed 2 in
  let alpha = 2.5 in
  let xs = Array.init 30_000 (fun _ -> Sf_prng.Dist.zeta rng ~alpha) in
  let est = Power_law.mle_alpha xs ~x_min:1 in
  Alcotest.(check bool)
    (Printf.sprintf "MLE %.3f near %.1f" est alpha)
    true
    (Float.abs (est -. alpha) < 0.06)

let test_fit_ks_small_for_true_model () =
  let rng = Rng.of_seed 3 in
  let xs = Array.init 20_000 (fun _ -> Sf_prng.Dist.zeta rng ~alpha:2.2) in
  let fit = Power_law.fit xs ~x_min:1 in
  Alcotest.(check bool) "ks small" true (fit.Power_law.ks < 0.02);
  Alcotest.(check int) "tail size" 20_000 fit.Power_law.n_tail

let test_fit_scan_picks_reasonable_cutoff () =
  let rng = Rng.of_seed 4 in
  (* contaminate the head: power law only above 5 *)
  let xs =
    Array.init 20_000 (fun i ->
        if i mod 3 = 0 then 1 + (i mod 4)
        else 4 + Sf_prng.Dist.zeta rng ~alpha:2.5)
  in
  let fit = Power_law.fit_scan xs () in
  Alcotest.(check bool)
    (Printf.sprintf "scan cutoff %d >= 2" fit.Power_law.x_min)
    true
    (fit.Power_law.x_min >= 2)

(* --- hypothesis tests ------------------------------------------------------- *)

let test_gamma_p_known_values () =
  (* P(1, x) = 1 - e^-x *)
  checkf ~eps:1e-10 "P(1,1)" (1. -. exp (-1.)) (Tests.gamma_p ~a:1. ~x:1.);
  checkf ~eps:1e-10 "P(1,0)" 0. (Tests.gamma_p ~a:1. ~x:0.);
  (* chi-square with 2 dof: CDF(x) = 1 - e^{-x/2} *)
  checkf ~eps:1e-10 "chi2 cdf dof=2" (1. -. exp (-1.5)) (Tests.chi_square_cdf ~dof:2 3.)

let test_chi_square_same_distribution () =
  let rng = Rng.of_seed 5 in
  let draw () =
    List.init 2000 (fun _ -> string_of_int (Sf_prng.Rng.int rng 6))
    |> List.fold_left
         (fun acc k ->
           let c = try List.assoc k acc with Not_found -> 0 in
           (k, c + 1) :: List.remove_assoc k acc)
         []
  in
  let _, _, p = Tests.chi_square_two_sample (draw ()) (draw ()) in
  Alcotest.(check bool) (Printf.sprintf "same dist not rejected (p=%.3f)" p) true (p > 0.001)

let test_chi_square_different_distribution () =
  let s1 = [ ("a", 900); ("b", 100) ] in
  let s2 = [ ("a", 500); ("b", 500) ] in
  let stat, dof, p = Tests.chi_square_two_sample s1 s2 in
  Alcotest.(check bool) "large statistic" true (stat > 100.);
  Alcotest.(check int) "dof" 1 dof;
  Alcotest.(check bool) "rejected" true (p < 1e-6)

let test_total_variation () =
  checkf "identical" 0. (Tests.total_variation [ ("a", 5); ("b", 5) ] [ ("a", 50); ("b", 50) ]);
  checkf "disjoint" 1. (Tests.total_variation [ ("a", 10) ] [ ("b", 10) ]);
  checkf "quarter" 0.25 (Tests.total_variation [ ("a", 10); ("b", 10) ] [ ("a", 5); ("b", 15) ])

let test_ks_two_sample () =
  let rng = Rng.of_seed 6 in
  let xs = Array.init 2000 (fun _ -> Sf_prng.Dist.normal rng ~mu:0. ~sigma:1.) in
  let ys = Array.init 2000 (fun _ -> Sf_prng.Dist.normal rng ~mu:0. ~sigma:1.) in
  let _, p_same = Tests.ks_two_sample xs ys in
  Alcotest.(check bool) (Printf.sprintf "same dist p=%.3f" p_same) true (p_same > 0.001);
  let zs = Array.init 2000 (fun _ -> Sf_prng.Dist.normal rng ~mu:1. ~sigma:1.) in
  let d, p_diff = Tests.ks_two_sample xs zs in
  Alcotest.(check bool) "shifted dist detected" true (p_diff < 1e-6 && d > 0.2)

let test_mann_whitney_separated () =
  (* complete separation: every y above every x, so U1 = 0 *)
  let u1, p = Tests.mann_whitney_u [| 1.; 2.; 3. |] [| 4.; 5.; 6. |] in
  checkf "U1 under full separation" 0. u1;
  Alcotest.(check bool) "small samples not significant" true (p > 0.05);
  let rng = Rng.of_seed 7 in
  let xs = Array.init 200 (fun _ -> Sf_prng.Dist.normal rng ~mu:0. ~sigma:1.) in
  let ys = Array.init 200 (fun _ -> Sf_prng.Dist.normal rng ~mu:1. ~sigma:1.) in
  let _, p_shift = Tests.mann_whitney_u xs ys in
  Alcotest.(check bool)
    (Printf.sprintf "large shifted samples p=%.4g" p_shift)
    true (p_shift < 0.01)

let test_mann_whitney_identical () =
  (* all pooled values equal: the tie correction zeroes the variance
     and the test must report no evidence, not NaN *)
  let u1, p = Tests.mann_whitney_u [| 5.; 5.; 5. |] [| 5.; 5.; 5. |] in
  checkf "U1 is n*m/2 under total ties" 4.5 u1;
  checkf "p = 1 under total ties" 1. p;
  let rng = Rng.of_seed 8 in
  let xs = Array.init 500 (fun _ -> Sf_prng.Dist.normal rng ~mu:0. ~sigma:1.) in
  let ys = Array.init 500 (fun _ -> Sf_prng.Dist.normal rng ~mu:0. ~sigma:1.) in
  let _, p_same = Tests.mann_whitney_u xs ys in
  Alcotest.(check bool)
    (Printf.sprintf "same dist p=%.3f" p_same)
    true (p_same > 0.01)

let test_mann_whitney_empty () =
  Alcotest.check_raises "empty first sample"
    (Invalid_argument "Tests.mann_whitney_u: empty sample") (fun () ->
      ignore (Tests.mann_whitney_u [||] [| 1. |]));
  Alcotest.check_raises "empty second sample"
    (Invalid_argument "Tests.mann_whitney_u: empty sample") (fun () ->
      ignore (Tests.mann_whitney_u [| 1. |] [||]))

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let s =
    Table.render ~headers:[ "n"; "mean" ]
      ~rows:[ [ "10"; "1.5" ]; [ "1000"; "42.0" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header + rule + rows" true (List.length lines >= 4);
  (* all non-empty lines share a width *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_formats () =
  Alcotest.(check string) "float" "3.142" (Table.fmt_float ~digits:3 Float.pi);
  Alcotest.(check string) "nan" "nan" (Table.fmt_float Float.nan);
  Alcotest.(check string) "inf" "inf" (Table.fmt_float Float.infinity);
  Alcotest.(check string) "grouped" "1_234_567" (Table.fmt_int_grouped 1234567);
  Alcotest.(check string) "negative grouped" "-12_345" (Table.fmt_int_grouped (-12345));
  Alcotest.(check string) "small" "999" (Table.fmt_int_grouped 999)

(* --- Csv ----------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let header = [ "a"; "b"; "c" ] in
  let rows =
    [
      [ "1"; "plain"; "x" ];
      [ "2"; "with,comma"; "y" ];
      [ "3"; "with\"quote"; "z" ];
      [ "4"; "multi\nline"; "w" ];
    ]
  in
  let text = Sf_stats.Csv.to_string ~header ~rows in
  Alcotest.(check (list (list string))) "roundtrip" (header :: rows) (Sf_stats.Csv.parse text)

let test_csv_pads_short_rows () =
  let text = Sf_stats.Csv.to_string ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ] ] in
  (match Sf_stats.Csv.parse text with
  | [ _; row ] -> Alcotest.(check (list string)) "padded" [ "1"; ""; "" ] row
  | _ -> Alcotest.fail "two rows expected");
  Alcotest.(check string) "escape plain" "x" (Sf_stats.Csv.escape_field "x");
  Alcotest.(check string) "escape comma" "\"a,b\"" (Sf_stats.Csv.escape_field "a,b")

let test_csv_parse_errors () =
  Alcotest.check_raises "unterminated quote" (Failure "Csv.parse: unterminated quoted field")
    (fun () -> ignore (Sf_stats.Csv.parse "\"oops"))

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "sfcsv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sf_stats.Csv.write ~path ~header:[ "x" ] ~rows:[ [ "1" ]; [ "2" ] ];
      Alcotest.(check (list (list string)))
        "file roundtrip"
        [ [ "x" ]; [ "1" ]; [ "2" ] ]
        (Sf_stats.Csv.parse_file ~path))

(* --- Plot ---------------------------------------------------------------- *)

let test_plot_renders_points () =
  let s =
    Sf_stats.Plot.render ~width:20 ~height:8
      [ { Sf_stats.Plot.label = "a"; glyph = '*'; points = [ (0., 0.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "contains glyph" true (String.contains s '*');
  Alcotest.(check bool) "contains legend" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (* header + 8 canvas rows + axis + footer *)
  Alcotest.(check bool) "expected line count" true (List.length lines >= 10)

let test_plot_log_axes_drop_nonpositive () =
  let s =
    Sf_stats.Plot.render ~x_log:true ~y_log:true
      [ { Sf_stats.Plot.label = "a"; glyph = '*'; points = [ (-1., 5.); (10., 100.) ] } ]
  in
  Alcotest.(check bool) "renders despite bad point" true (String.contains s '*')

let test_plot_empty () =
  Alcotest.(check string) "placeholder" "(no plottable points)\n" (Sf_stats.Plot.render []);
  Alcotest.(check string) "all dropped"
    "(no plottable points)\n"
    (Sf_stats.Plot.render ~y_log:true
       [ { Sf_stats.Plot.label = "a"; glyph = '*'; points = [ (1., -1.) ] } ])

let test_plot_single_point () =
  let s =
    Sf_stats.Plot.render [ { Sf_stats.Plot.label = "p"; glyph = 'o'; points = [ (3., 3.) ] } ]
  in
  Alcotest.(check bool) "single point plotted" true (String.contains s 'o')

(* --- qcheck ----------------------------------------------------------------- *)

let prop_summary_matches_reference =
  QCheck.Test.make ~name:"streaming summary equals direct computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let s = Summary.of_array arr in
      let n = float_of_int (Array.length arr) in
      let mean = Array.fold_left ( +. ) 0. arr /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. arr /. (n -. 1.)
      in
      Float.abs (Summary.mean s -. mean) < 1e-6 *. (1. +. Float.abs mean)
      && Float.abs (Summary.variance s -. var) < 1e-6 *. (1. +. var))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-50.) 50.))
    (fun xs ->
      let arr = Array.of_list xs in
      let q1 = Quantile.quantile arr ~q:0.2
      and q2 = Quantile.quantile arr ~q:0.5
      and q3 = Quantile.quantile arr ~q:0.9 in
      q1 <= q2 && q2 <= q3)

let suite =
  [
    ("summary moments", `Quick, test_summary_moments);
    ("summary empty/single", `Quick, test_summary_empty_and_single);
    ("summary merge", `Quick, test_summary_merge);
    ("summary ci", `Quick, test_summary_ci);
    ("quantiles", `Quick, test_quantiles);
    ("quantiles unsorted", `Quick, test_quantiles_unsorted_input);
    ("linear regression exact", `Quick, test_linear_exact);
    ("log-log recovers power", `Quick, test_log_log_recovers_power);
    ("regression validation", `Quick, test_regression_validation);
    ("noisy slope", `Quick, test_linear_noise_slope_error);
    ("linear histogram", `Quick, test_linear_histogram);
    ("log histogram", `Quick, test_log_histogram);
    ("ccdf", `Quick, test_ccdf);
    ("render histogram", `Quick, test_render_histogram);
    ("hurwitz zeta", `Quick, test_hurwitz_zeta);
    ("power-law MLE", `Slow, test_mle_recovers_exponent);
    ("power-law KS", `Quick, test_fit_ks_small_for_true_model);
    ("power-law scan", `Quick, test_fit_scan_picks_reasonable_cutoff);
    ("gamma_p known values", `Quick, test_gamma_p_known_values);
    ("chi-square same", `Quick, test_chi_square_same_distribution);
    ("chi-square different", `Quick, test_chi_square_different_distribution);
    ("total variation", `Quick, test_total_variation);
    ("ks two-sample", `Quick, test_ks_two_sample);
    ("mann-whitney separated", `Quick, test_mann_whitney_separated);
    ("mann-whitney identical", `Quick, test_mann_whitney_identical);
    ("mann-whitney empty", `Quick, test_mann_whitney_empty);
    ("csv roundtrip", `Quick, test_csv_roundtrip);
    ("csv padding and escaping", `Quick, test_csv_pads_short_rows);
    ("csv parse errors", `Quick, test_csv_parse_errors);
    ("csv file roundtrip", `Quick, test_csv_file_roundtrip);
    ("plot renders", `Quick, test_plot_renders_points);
    ("plot log axes", `Quick, test_plot_log_axes_drop_nonpositive);
    ("plot empty", `Quick, test_plot_empty);
    ("plot single point", `Quick, test_plot_single_point);
    ("table render", `Quick, test_table_render);
    ("table formats", `Quick, test_table_formats);
    QCheck_alcotest.to_alcotest prop_summary_matches_reference;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
