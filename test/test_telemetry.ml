(* The live-telemetry battery: Series rings and their derived
   statistics, the Prometheus/JSON exposition, the unix-socket
   listener, process-resource gauges, and the SIGUSR1 flight dump.

   The load-bearing case is the concurrent one: a scraper thread
   hammering the socket while a 4-domain Searchability.measure grid
   runs must neither perturb the grid's bytes (the golden digest from
   test_parallel.ml must still come out) nor observe counters moving
   backwards. *)

module Series = Sf_obs.Series
module Expose = Sf_obs.Expose
module Resource = Sf_obs.Resource
module Registry = Sf_obs.Registry
module Counter = Sf_obs.Counter
module Timer = Sf_obs.Timer
module Histo = Sf_obs.Histo
module Export = Sf_obs.Export
module Flight = Sf_obs.Flight
module Trace = Sf_obs.Trace
module Pool = Sf_parallel.Pool
module Json = Sf_perf.Json
module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Strategies = Sf_search.Strategies
module Searchability = Sf_core.Searchability

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------------------------------------------------------- *)
(* rings                                                             *)
(* ---------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Series.ring_create ~capacity:4 in
  Alcotest.(check int) "empty length" 0 (Series.ring_length r);
  Alcotest.(check bool) "empty last" true (Series.ring_last r = None);
  for i = 1 to 10 do
    Series.ring_push r ~ts:(float_of_int i) ~v:(float_of_int (i * i))
  done;
  Alcotest.(check int) "length capped" 4 (Series.ring_length r);
  Alcotest.(check int) "seen counts everything" 10 (Series.ring_seen r);
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "last capacity points, oldest first"
    [ (7., 49.); (8., 64.); (9., 81.); (10., 100.) ]
    (Series.ring_points r);
  Alcotest.(check bool) "last is newest" true (Series.ring_last r = Some (10., 100.))

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Series.ring_create: capacity must be >= 1") (fun () ->
      ignore (Series.ring_create ~capacity:0))

let test_rate_math () =
  let r = Series.ring_create ~capacity:8 in
  Alcotest.(check bool) "empty ring: no rate" true (Series.rate r ~window_s:10. = None);
  Series.ring_push r ~ts:0. ~v:100.;
  Alcotest.(check bool) "one point: no rate" true (Series.rate r ~window_s:10. = None);
  Series.ring_push r ~ts:2. ~v:150.;
  Series.ring_push r ~ts:4. ~v:300.;
  (* full window: (300 - 100) / (4 - 0) = 50/s *)
  (match Series.rate r ~window_s:10. with
  | Some v -> Alcotest.(check (float 1e-9)) "rate over full window" 50. v
  | None -> Alcotest.fail "expected a rate");
  (* window of 2 s keeps only ts in [2, 4]: (300 - 150) / 2 = 75/s *)
  match Series.rate r ~window_s:2. with
  | Some v -> Alcotest.(check (float 1e-9)) "rate over trailing window" 75. v
  | None -> Alcotest.fail "expected a windowed rate"

let test_ewma_math () =
  let r = Series.ring_create ~capacity:8 in
  Alcotest.(check bool) "empty ring: no ewma" true (Series.ewma r ~tau_s:1. = None);
  Series.ring_push r ~ts:0. ~v:10.;
  (match Series.ewma r ~tau_s:1. with
  | Some v -> Alcotest.(check (float 1e-9)) "single point is its own ewma" 10. v
  | None -> Alcotest.fail "expected an ewma");
  Series.ring_push r ~ts:1. ~v:20.;
  (* a = 1 - exp(-1); e = 10 + a * 10 *)
  let expected = 10. +. ((1. -. exp (-1.)) *. 10.) in
  (match Series.ewma r ~tau_s:1. with
  | Some v -> Alcotest.(check (float 1e-9)) "one decay step" expected v
  | None -> Alcotest.fail "expected an ewma");
  Alcotest.check_raises "tau must be positive"
    (Invalid_argument "Series.ewma: tau_s must be > 0") (fun () ->
      ignore (Series.ewma r ~tau_s:0.))

let test_window_quantile_math () =
  let r = Series.ring_create ~capacity:16 in
  List.iteri
    (fun i v -> Series.ring_push r ~ts:(float_of_int i) ~v)
    [ 5.; 1.; 9.; 3.; 7. ];
  (* nearest rank over all five values [1;3;5;7;9] *)
  let q p =
    match Series.window_quantile r ~window_s:100. p with
    | Some v -> v
    | None -> Alcotest.fail "expected a quantile"
  in
  Alcotest.(check (float 0.)) "q0 is min" 1. (q 0.);
  Alcotest.(check (float 0.)) "median" 5. (q 0.5);
  Alcotest.(check (float 0.)) "q1 is max" 9. (q 1.);
  (* window of 1 s keeps ts in [3, 4]: values [3;7] *)
  (match Series.window_quantile r ~window_s:1. 0.5 with
  | Some v -> Alcotest.(check (float 0.)) "windowed median" 3. v
  | None -> Alcotest.fail "expected a windowed quantile");
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Series.window_quantile: q outside [0,1]") (fun () ->
      ignore (Series.window_quantile r ~window_s:1. 1.5))

(* Arbitrary tick sequences: the ring must retain exactly the last
   [capacity] points in push order, and the windowed quantile must
   agree with a direct nearest-rank computation over those points. *)
let prop_ring_arbitrary_ticks =
  QCheck.Test.make ~name:"Series ring on arbitrary tick sequences" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair (float_bound_exclusive 10.) (float_bound_exclusive 1000.))))
    (fun (capacity, steps) ->
      let r = Series.ring_create ~capacity in
      (* strictly increasing timestamps from arbitrary non-negative deltas *)
      let _, rev_points =
        List.fold_left
          (fun (t, acc) (dt, v) ->
            let t = t +. Float.abs dt +. 0.001 in
            (t, (t, v) :: acc))
          (0., []) steps
      in
      let points = List.rev rev_points in
      List.iter (fun (ts, v) -> Series.ring_push r ~ts ~v) points;
      let n = List.length points in
      let expected_points =
        (* the last [capacity] pushes, oldest first *)
        List.filteri (fun i _ -> i >= n - capacity) points
      in
      let retained_ok =
        Series.ring_points r = expected_points
        && Series.ring_seen r = n
        && Series.ring_length r = min n capacity
      in
      let quantile_ok =
        match Series.window_quantile r ~window_s:Float.max_float 0.5 with
        | None -> expected_points = []
        | Some got ->
          let vs = List.map snd expected_points |> Array.of_list in
          Array.sort compare vs;
          let m = Array.length vs in
          let rank = int_of_float (ceil (0.5 *. float_of_int m)) in
          got = vs.(max 0 (min (m - 1) (rank - 1)))
      in
      retained_ok && quantile_ok)

(* ---------------------------------------------------------------- *)
(* sampling the registry                                             *)
(* ---------------------------------------------------------------- *)

let test_sample_facets () =
  let c = Registry.counter "test.telem.hits" in
  let tm = Registry.timer "test.telem.phase_s" in
  let g = Registry.gauge "test.telem.depth" in
  let h = Registry.histo "test.telem.lat" in
  Counter.add c 7;
  Timer.time tm (fun () -> ());
  Registry.set_gauge g 2.5;
  Histo.observe h 3.;
  let s = Series.create ~capacity:8 () in
  Series.sample s;
  let last name =
    Option.join (Series.with_ring s name (fun r -> Option.map snd (Series.ring_last r)))
  in
  Alcotest.(check bool) "counter facet" true (last "test.telem.hits" = Some 7.);
  Alcotest.(check bool) "timer count facet" true (last "test.telem.phase_s.count" = Some 1.);
  Alcotest.(check bool) "timer total facet" true (last "test.telem.phase_s.total_s" <> None);
  Alcotest.(check bool) "gauge facet" true (last "test.telem.depth" = Some 2.5);
  Alcotest.(check bool) "histo count facet" true (last "test.telem.lat.count" = Some 1.);
  Alcotest.(check bool) "histo p95 facet" true (last "test.telem.lat.p95" <> None);
  Counter.add c 5;
  Series.sample s;
  Alcotest.(check bool) "counter advanced" true (last "test.telem.hits" = Some 12.);
  Alcotest.(check int) "two snapshots" 2 (Series.samples s);
  (* gc/rss gauges ride along every sample *)
  Alcotest.(check bool) "gc gauges sampled" true
    (Series.with_ring s "gc.minor_collections" (fun _ -> ()) <> None)

let test_unset_gauge_skipped () =
  let _g = Registry.gauge "test.telem.never_set" in
  let s = Series.create () in
  Series.sample s;
  Alcotest.(check bool) "unset gauge has no series" true
    (Series.with_ring s "test.telem.never_set" (fun _ -> ()) = None)

let test_background_sampler () =
  let s = Series.create ~capacity:64 ~tick_s:0.02 () in
  Series.start s;
  Alcotest.(check bool) "running" true (Series.running s);
  Thread.delay 0.15;
  Series.stop s;
  Alcotest.(check bool) "stopped" false (Series.running s);
  let n = Series.samples s in
  Alcotest.(check bool) (Printf.sprintf "ticked a few times (saw %d)" n) true (n >= 3);
  Series.stop s;
  Alcotest.(check int) "stop is idempotent" n (Series.samples s)

(* ---------------------------------------------------------------- *)
(* exposition                                                        *)
(* ---------------------------------------------------------------- *)

let test_sanitize () =
  Alcotest.(check string) "dots and slashes" "sf_gen_mori_build_s"
    (Expose.sanitize "gen.mori.build_s");
  Alcotest.(check string) "odd characters" "sf_a_b_c_d_1"
    (Expose.sanitize "a,b/c\"d-1")

(* The exposition grammar, pinned byte for byte over metrics with
   hand-fed values (a fake timer clock makes the seconds exact). *)
let test_prometheus_golden () =
  let c = Registry.counter "test.telem.golden.hits" in
  let tm = Registry.timer "test.telem.golden.build_s" in
  let g = Registry.gauge "test.telem.golden.depth" in
  let h = Registry.histo "test.telem.golden.lat" in
  Counter.add c 42;
  let fake = ref 0. in
  Timer.set_clock (fun () -> !fake);
  Fun.protect
    ~finally:(fun () -> Timer.set_clock Unix.gettimeofday)
    (fun () ->
      Timer.start tm;
      fake := 1.5;
      Timer.stop tm);
  Registry.set_gauge g 3.5;
  List.iter (Histo.observe h) [ 1.; 2.; 4. ];
  let rendered =
    Expose.render_prometheus_for
      [
        ("test.telem.golden.hits", Registry.Counter c);
        ("test.telem.golden.build_s", Registry.Timer tm);
        ("test.telem.golden.depth", Registry.Gauge g);
        ("test.telem.golden.lat", Registry.Histo h);
      ]
  in
  let golden =
    String.concat "\n"
      [
        "# TYPE sf_test_telem_golden_hits_total counter";
        "sf_test_telem_golden_hits_total 42";
        "# TYPE sf_test_telem_golden_build_s_seconds_total counter";
        "sf_test_telem_golden_build_s_seconds_total 1.5";
        "# TYPE sf_test_telem_golden_build_s_count counter";
        "sf_test_telem_golden_build_s_count 1";
        "# TYPE sf_test_telem_golden_depth gauge";
        "sf_test_telem_golden_depth 3.5";
        "# TYPE sf_test_telem_golden_lat summary";
        {|sf_test_telem_golden_lat{quantile="0.5"} 2|};
        {|sf_test_telem_golden_lat{quantile="0.95"} 4|};
        {|sf_test_telem_golden_lat{quantile="0.99"} 4|};
        {|sf_test_telem_golden_lat{quantile="0.999"} 4|};
        "sf_test_telem_golden_lat_sum 7";
        "sf_test_telem_golden_lat_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition bytes" golden rendered

let test_histo_json_has_p95 () =
  let h = Registry.histo "test.telem.p95check" in
  List.iter (Histo.observe h) [ 1.; 2.; 4. ];
  match Json.parse (Export.metrics_json ()) with
  | Error msg -> Alcotest.fail ("metrics_json unparseable: " ^ msg)
  | Ok j ->
    let p95 =
      Option.bind (Json.member "test.telem.p95check" j) (fun m ->
          Option.bind (Json.member "p95" m) Json.as_num)
    in
    Alcotest.(check bool) "p95 present" true (p95 = Some 4.)

let test_histo_json_has_p999 () =
  let h = Registry.histo "test.telem.p999check" in
  (* 1000 observations with two outliers: the top 0.2% sits past the
     nearest-rank p999 cut, in the tail bucket that p99 rounds away *)
  for _ = 1 to 998 do
    Histo.observe h 1.
  done;
  Histo.observe h 512.;
  Histo.observe h 512.;
  match Json.parse (Export.metrics_json ()) with
  | Error msg -> Alcotest.fail ("metrics_json unparseable: " ^ msg)
  | Ok j ->
    let facet name =
      Option.bind (Json.member "test.telem.p999check" j) (fun m ->
          Option.bind (Json.member name m) Json.as_num)
    in
    (match facet "p999" with
    | Some p999 -> Alcotest.(check bool) "p999 sees the outlier" true (p999 > 1.)
    | None -> Alcotest.fail "p999 facet missing");
    match (facet "p999", facet "p99") with
    | Some p999, Some p99 ->
      Alcotest.(check bool) "quantiles ordered" true (p999 >= p99)
    | _ -> Alcotest.fail "quantile facets missing"

(* ---------------------------------------------------------------- *)
(* the socket                                                        *)
(* ---------------------------------------------------------------- *)

let test_sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "sft-%d-%s.sock" (Unix.getpid ()) name)

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with 0 -> () | w -> go (off + w)
  in
  go 0

let scrape path command =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      write_all fd (command ^ "\n");
      let acc = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents acc
        | n ->
          Buffer.add_subbytes acc chunk 0 n;
          go ()
      in
      go ())

let with_listener name body =
  let series = Series.create ~capacity:32 () in
  let path = test_sock_path name in
  let listener = Expose.serve ~series ~path () in
  Fun.protect ~finally:(fun () -> Expose.stop listener) (fun () -> body path listener)

let test_socket_protocol () =
  let c = Registry.counter "test.telem.sock.hits" in
  Counter.add c 3;
  with_listener "proto" (fun path listener ->
      Alcotest.(check string) "ping answers pong" "pong\n" (scrape path "ping");
      let prom = scrape path "metrics" in
      Alcotest.(check bool) "prometheus body has the counter" true
        (contains_sub prom "sf_test_telem_sock_hits_total 3");
      let json = scrape path "json" in
      (match Json.parse (String.trim json) with
      | Error msg -> Alcotest.fail ("json snapshot unparseable: " ^ msg)
      | Ok j ->
        let v =
          Option.bind (Json.member "metrics" j) (fun m ->
              Option.bind (Json.member "test.telem.sock.hits" m) (fun c ->
                  Option.bind (Json.member "value" c) Json.as_num))
        in
        Alcotest.(check bool) "snapshot carries the counter" true (v = Some 3.));
      let series_dump = scrape path "series" in
      (match Json.parse (String.trim series_dump) with
      | Error msg -> Alcotest.fail ("series dump unparseable: " ^ msg)
      | Ok j ->
        Alcotest.(check bool) "series dump has the ring" true
          (Option.bind (Json.member "series" j) (Json.member "test.telem.sock.hits")
          <> None));
      let err = scrape path "bogus" in
      Alcotest.(check bool) "unknown command answers err" true
        (String.length err >= 3 && String.sub err 0 3 = "err");
      Alcotest.(check int) "ping and bogus are not scrapes" 3 (Expose.scrapes listener))

let test_socket_path_too_long () =
  let path = String.make 120 'x' in
  let series = Series.create () in
  Alcotest.(check bool) "long path rejected" true
    (try
       ignore (Expose.serve ~series ~path ());
       false
     with Invalid_argument _ -> true)

(* serve must not delete arbitrary files handed to it as a socket path
   (--telemetry ./results.json) *)
let test_socket_path_not_socket () =
  let path = Filename.temp_file "sft-notsock" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let series = Series.create () in
      Alcotest.(check bool) "regular file rejected" true
        (try
           ignore (Expose.serve ~series ~path ());
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "file survives the attempt" true (Sys.file_exists path))

(* ... nor steal the socket of another live listener *)
let test_socket_path_live () =
  with_listener "live" (fun path _listener ->
      let series = Series.create () in
      Alcotest.(check bool) "live socket rejected" true
        (try
           ignore (Expose.serve ~series ~path ());
           false
         with Invalid_argument _ -> true);
      Alcotest.(check string) "first listener still answers" "pong\n" (scrape path "ping"))

(* ... while a stale socket left by a dead run is reclaimed *)
let test_socket_path_stale_reclaimed () =
  let path = test_sock_path "stale" in
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead (* closed without unlinking: the file remains, unanswered *);
  let series = Series.create ~capacity:32 () in
  let listener = Expose.serve ~series ~path () in
  Fun.protect
    ~finally:(fun () -> Expose.stop listener)
    (fun () ->
      Alcotest.(check string) "reclaimed socket answers" "pong\n" (scrape path "ping"))

(* A client that connects, commands, and vanishes without reading must
   not hurt the server (SIGPIPE ignored, EPIPE swallowed). *)
let test_client_disconnect_mid_response () =
  with_listener "rude" (fun path _listener ->
      for _ = 1 to 5 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        write_all fd "series\n";
        Unix.close fd
      done;
      (* give the listener time to hit the broken pipes *)
      Thread.delay 0.05;
      Alcotest.(check string) "server survives rude clients" "pong\n" (scrape path "ping"))

let test_manifest_extras () =
  let extras = Expose.manifest_extras () in
  Alcotest.(check bool) "rss_peak_bytes present" true
    (List.mem_assoc "rss_peak_bytes" extras);
  Alcotest.(check bool) "telemetry_scrapes present" true
    (List.mem_assoc "telemetry_scrapes" extras);
  Alcotest.(check string) "no listener means zero scrapes" "0"
    (List.assoc "telemetry_scrapes" extras);
  if Resource.available () then
    Alcotest.(check bool) "peak is a positive byte count" true
      (int_of_string (List.assoc "rss_peak_bytes" extras) > 0)

let test_resource_probe () =
  if Resource.available () then begin
    Alcotest.(check bool) "rss positive" true (Resource.rss_bytes () > 0);
    Alcotest.(check bool) "peak at least a probe's rss" true
      (Resource.rss_peak_bytes () > 0)
  end

(* ---------------------------------------------------------------- *)
(* concurrent scrape while a 4-domain grid runs                      *)
(* ---------------------------------------------------------------- *)

let grid_spec = { Searchability.default_spec with Searchability.trials = 5 }

let grid_csv ~jobs =
  let master = Rng.of_seed 2007 in
  let make rng n = (Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:n), n) in
  let points =
    Searchability.measure ~jobs master ~make
      ~strategies:[ Strategies.bfs; Strategies.high_degree ]
      ~sizes:[ 60; 90 ] ~spec:grid_spec
  in
  Searchability.points_to_csv points

(* must match test_parallel.ml: telemetry attached or not, the grid's
   bytes are the grid's bytes *)
let grid_csv_digest = "12c7ed4284945390e2d185a134d18048"

let test_concurrent_scrape_jobs4 () =
  let requests = Registry.counter "search.requests" in
  let base = Counter.value requests in
  with_listener "conc" (fun path _listener ->
      let series = Series.create ~capacity:128 ~tick_s:0.005 () in
      Series.start series;
      let stop_flag = Atomic.make false in
      let observed = ref [] in
      let scraper =
        Thread.create
          (fun () ->
            while not (Atomic.get stop_flag) do
              (match Json.parse (String.trim (scrape path "json")) with
              | Ok j -> (
                match
                  Option.bind (Json.member "metrics" j) (fun m ->
                      Option.bind (Json.member "search.requests" m) (fun c ->
                          Option.bind (Json.member "value" c) Json.as_num))
                with
                | Some v -> observed := v :: !observed
                | None -> ())
              | Error _ -> ());
              Thread.delay 0.005
            done)
          ()
      in
      (* the grid can outrun the scraper's thread scheduling: repeat it
         (identical bytes every pass) until a few scrapes have landed *)
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop_flag true;
          Thread.join scraper;
          Series.stop series)
        (fun () ->
          let passes = ref 0 in
          while List.length !observed < 3 && !passes < 10 do
            let csv = grid_csv ~jobs:4 in
            incr passes;
            Alcotest.(check string)
              (Printf.sprintf "golden digest with telemetry attached (pass %d)" !passes)
              grid_csv_digest
              (Digest.to_hex (Digest.string csv))
          done);
      let scrapes = List.rev !observed in
      Alcotest.(check bool)
        (Printf.sprintf "scraped while running (saw %d)" (List.length scrapes))
        true
        (List.length scrapes >= 2);
      let monotone =
        List.for_all2
          (fun a b -> b >= a)
          (List.filteri (fun i _ -> i < List.length scrapes - 1) scrapes)
          (List.tl scrapes)
      in
      Alcotest.(check bool) "counter never moves backwards" true monotone;
      Alcotest.(check bool) "counter advanced past its base" true
        (match List.rev scrapes with
        | last :: _ -> last >= float_of_int base
        | [] -> false))

(* telemetry enabled end to end must not shift the measurement bytes *)
let test_grid_identical_with_and_without_sampler () =
  let bare = grid_csv ~jobs:1 in
  let sampled =
    let series = Series.create ~capacity:64 ~tick_s:0.005 () in
    Series.start series;
    Fun.protect ~finally:(fun () -> Series.stop series) (fun () -> grid_csv ~jobs:1)
  in
  Alcotest.(check string) "byte-identical with sampler attached" bare sampled

(* ---------------------------------------------------------------- *)
(* SIGUSR1                                                           *)
(* ---------------------------------------------------------------- *)

let test_sigusr1_dump () =
  let fl = Flight.create ~capacity:8 () in
  let id = Trace.attach (Flight.sink fl) in
  Trace.instant "test.telem.stuck";
  Trace.detach id;
  let path = Filename.temp_file "sf-usr1" ".txt" in
  let oc = open_out path in
  let installed = Flight.install_sigusr1 ~out:oc fl in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigusr1 Sys.Signal_default;
      close_out_noerr oc;
      Sys.remove path)
    (fun () ->
      if installed then begin
        Unix.kill (Unix.getpid ()) Sys.sigusr1;
        (* the handler runs at a safepoint; give the runtime a few *)
        let deadline = Unix.gettimeofday () +. 2. in
        let dumped () =
          flush oc;
          let ic = open_in path in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          body
        in
        let rec wait () =
          let body = dumped () in
          if String.length body > 0 || Unix.gettimeofday () > deadline then body
          else begin
            Thread.delay 0.01;
            wait ()
          end
        in
        let body = wait () in
        Alcotest.(check bool) "dump header present" true
          (contains_sub body "flight recorder");
        Alcotest.(check bool) "recorded event present" true
          (contains_sub body "test.telem.stuck")
      end)

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring rejects bad capacity" `Quick test_ring_rejects_bad_capacity;
    Alcotest.test_case "rolling rate math" `Quick test_rate_math;
    Alcotest.test_case "time-decayed ewma math" `Quick test_ewma_math;
    Alcotest.test_case "windowed quantile math" `Quick test_window_quantile_math;
    QCheck_alcotest.to_alcotest prop_ring_arbitrary_ticks;
    Alcotest.test_case "sample pushes every facet" `Quick test_sample_facets;
    Alcotest.test_case "unset gauge has no series" `Quick test_unset_gauge_skipped;
    Alcotest.test_case "background sampler ticks" `Quick test_background_sampler;
    Alcotest.test_case "prometheus name sanitization" `Quick test_sanitize;
    Alcotest.test_case "prometheus exposition golden" `Quick test_prometheus_golden;
    Alcotest.test_case "histogram json carries p95" `Quick test_histo_json_has_p95;
    Alcotest.test_case "histogram json carries p999" `Quick test_histo_json_has_p999;
    Alcotest.test_case "socket protocol end to end" `Quick test_socket_protocol;
    Alcotest.test_case "socket path length guard" `Quick test_socket_path_too_long;
    Alcotest.test_case "socket path refuses regular file" `Quick test_socket_path_not_socket;
    Alcotest.test_case "socket path refuses live socket" `Quick test_socket_path_live;
    Alcotest.test_case "stale socket reclaimed" `Quick test_socket_path_stale_reclaimed;
    Alcotest.test_case "client disconnect mid-response" `Quick test_client_disconnect_mid_response;
    Alcotest.test_case "manifest extras" `Quick test_manifest_extras;
    Alcotest.test_case "resource probe" `Quick test_resource_probe;
    Alcotest.test_case "concurrent scrape at jobs 4 (golden)" `Slow
      test_concurrent_scrape_jobs4;
    Alcotest.test_case "grid bytes identical with sampler" `Slow
      test_grid_identical_with_and_without_sampler;
    Alcotest.test_case "sigusr1 dumps the flight ring" `Quick test_sigusr1_dump;
  ]
