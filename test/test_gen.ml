(* Tests for the random-graph generators: structural invariants of
   every model, exact-law checks where a law is computable, and the
   conditioned Móri sampler against the closed-form event
   probability. *)

module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module Traversal = Sf_graph.Traversal
module Metrics = Sf_graph.Metrics
module Mori = Sf_gen.Mori
module Cooper_frieze = Sf_gen.Cooper_frieze
module Config_model = Sf_gen.Config_model
module Kleinberg = Sf_gen.Kleinberg

(* --- Móri ------------------------------------------------------------- *)

let test_mori_tree_shape () =
  let rng = Rng.of_seed 1 in
  let t = 500 in
  let g = Mori.tree rng ~p:0.5 ~t in
  Alcotest.(check int) "vertices" t (Digraph.n_vertices g);
  Alcotest.(check int) "edges" (t - 1) (Digraph.n_edges g);
  for k = 2 to t do
    Alcotest.(check int) "one out-edge each" 1 (Digraph.out_degree g k);
    Alcotest.(check bool) "father is older" true (Mori.father g k < k)
  done;
  Alcotest.(check int) "root has no out-edge" 0 (Digraph.out_degree g 1);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g))

let test_mori_edge_ids_are_arrival_times () =
  let rng = Rng.of_seed 2 in
  let g = Mori.tree rng ~p:0.9 ~t:100 in
  for k = 2 to 100 do
    let e = List.hd (Digraph.out_edges g k) in
    Alcotest.(check int) "edge id = k - 2" (k - 2) e.Digraph.id
  done

let test_mori_p1_is_preferential () =
  (* with p = 1 vertex 3 must attach to vertex 1 (the only vertex with
     positive indegree at that time) *)
  let rng = Rng.of_seed 3 in
  for _ = 1 to 50 do
    let g = Mori.tree rng ~p:1.0 ~t:3 in
    Alcotest.(check int) "forced father" 1 (Mori.father g 3)
  done

let test_mori_father_frequencies_t3 () =
  (* At k = 3: P(father = 1) = 1 / (2 - p), P(father = 2) = (1-p)/(2-p). *)
  let rng = Rng.of_seed 4 in
  let p = 0.4 in
  let trials = 30_000 in
  let ones = ref 0 in
  for _ = 1 to trials do
    if Mori.father (Mori.tree rng ~p ~t:3) 3 = 1 then incr ones
  done;
  let freq = float_of_int !ones /. float_of_int trials in
  let expected = 1. /. (2. -. p) in
  Alcotest.(check bool) "exact step law" true (Float.abs (freq -. expected) < 0.01)

let test_mori_fathers_accessor () =
  let rng = Rng.of_seed 5 in
  let g = Mori.tree rng ~p:0.5 ~t:50 in
  let fathers = Mori.fathers g in
  Alcotest.(check int) "length" 49 (Array.length fathers);
  Alcotest.(check int) "N_2 = 1" 1 fathers.(0);
  Array.iteri
    (fun i f -> Alcotest.(check int) "agrees with father" f (Mori.father g (i + 2)))
    fathers

let test_mori_conditioned_respects_event () =
  let rng = Rng.of_seed 6 in
  let a = 20 and b = 26 and t = 40 in
  for _ = 1 to 100 do
    let g = Mori.tree_conditioned rng ~p:0.5 ~t ~a ~b in
    Alcotest.(check bool) "event holds" true (Sf_core.Events.holds g ~a ~b);
    Alcotest.(check int) "size unchanged" t (Digraph.n_vertices g)
  done

let test_mori_conditioned_matches_conditional_law () =
  (* The conditional sampler must reproduce the conditional step law:
     P(N_{a+1} = u | E) for u <= a is the unconditional law renormalised
     to [1, a]. Check the frequency of father 1 at the first window
     step. *)
  let p = 0.6 and a = 5 and b = 6 and t = 8 in
  let rng = Rng.of_seed 7 in
  let trials = 40_000 in
  let count = ref 0 in
  for _ = 1 to trials do
    let g = Mori.tree_conditioned rng ~p ~t ~a ~b in
    if Mori.father g (a + 1) = 1 then incr count
  done;
  let freq = float_of_int !count /. float_of_int trials in
  (* exact: enumerate the conditional probability *)
  let joint =
    Sf_core.Enumerate.event_prob ~p ~t ~condition:(fun g ->
        Sf_core.Events.holds g ~a ~b && Mori.father g (a + 1) = 1)
  in
  let event = Sf_core.Enumerate.event_prob ~p ~t ~condition:(fun g -> Sf_core.Events.holds g ~a ~b) in
  let exact = joint /. event in
  Alcotest.(check bool)
    (Printf.sprintf "conditional sampler law (freq %.4f vs exact %.4f)" freq exact)
    true
    (Float.abs (freq -. exact) < 0.012)

(* --- giant engine ----------------------------------------------------- *)

let test_mori_giant_samplewise_parity () =
  (* the giant engine must be the SAME random variable as the legacy
     path: same stream -> identical edge list, not merely equal law *)
  List.iter
    (fun (p, m, n, seed) ->
      let legacy = Ugraph.of_digraph (Mori.graph (Rng.of_seed seed) ~p ~m ~n) in
      let giant = Mori.graph_giant (Rng.of_seed seed) ~p ~m ~n in
      Alcotest.(check bool)
        (Printf.sprintf "p=%g m=%d n=%d identical" p m n)
        true
        (Sf_graph.Csr.equal (Ugraph.csr legacy) (Ugraph.csr giant)))
    [ (0.5, 1, 100, 11); (0.5, 3, 64, 12); (0.9, 2, 500, 13); (0.1, 4, 25, 14); (1.0, 1, 50, 15) ]

let test_mori_giant_fathers_match_tree () =
  let seed = 21 and p = 0.7 and t = 400 in
  let legacy = Mori.fathers (Mori.tree (Rng.of_seed seed) ~p ~t) in
  let giant = Mori.tree_fathers (Rng.of_seed seed) ~p ~t in
  Alcotest.(check int) "length" (t - 1) (Sf_graph.Bigvec.length giant);
  Array.iteri
    (fun i f -> Alcotest.(check int) "father" f (Sf_graph.Bigvec.get giant i))
    legacy

let test_mori_giant_rng_stream_position () =
  (* after generation both paths must leave the stream at the same
     point — the corpus fingerprint/RNG-restore contract depends on a
     deterministic number of draws *)
  let rng_a = Rng.of_seed 31 and rng_b = Rng.of_seed 31 in
  ignore (Mori.graph rng_a ~p:0.5 ~m:2 ~n:80);
  ignore (Mori.graph_giant rng_b ~p:0.5 ~m:2 ~n:80);
  Alcotest.(check int) "next draw agrees" (Rng.int rng_a 1_000_000) (Rng.int rng_b 1_000_000)

let test_cf_giant_structure () =
  let g = Cooper_frieze.generate_n_vertices_giant (Rng.of_seed 41) Cooper_frieze.default ~n:800 in
  Alcotest.(check int) "vertex count" 800 (Ugraph.n_vertices g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (match Sf_graph.Csr.validate (Ugraph.csr g) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("CSR invalid: " ^ msg));
  (* vertex 1's self-loop survives as edge 0 *)
  Alcotest.(check (pair int int)) "initial self-loop" (1, 1) (Ugraph.endpoints g 0)

let test_cf_giant_degree_law_chi_square () =
  (* The giant path consumes the stream differently (alias draws), so
     equality is in law only.  Pool vertex degrees over many small
     builds from both paths and require the two-sample chi-square test
     not to reject.  Deterministic seeds make this a fixed, replayable
     comparison. *)
  let n = 120 and reps = 120 in
  let degree_counts sample_graph =
    let tbl = Hashtbl.create 32 in
    for rep = 1 to reps do
      let g = sample_graph rep in
      for v = 1 to Ugraph.n_vertices g do
        let key = string_of_int (Ugraph.degree g v) in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      done
    done;
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  in
  let legacy =
    degree_counts (fun rep ->
        Ugraph.of_digraph
          (Cooper_frieze.generate_n_vertices (Rng.of_seed (1000 + rep)) Cooper_frieze.default ~n))
  in
  let giant =
    degree_counts (fun rep ->
        Cooper_frieze.generate_n_vertices_giant (Rng.of_seed (5000 + rep)) Cooper_frieze.default ~n)
  in
  let stat, dof, p_value = Sf_stats.Tests.chi_square_two_sample legacy giant in
  Alcotest.(check bool)
    (Printf.sprintf "same degree law (chi2=%.2f dof=%d p=%.4f)" stat dof p_value)
    true (p_value > 0.001)

let test_merge_properties () =
  let rng = Rng.of_seed 8 in
  let m = 3 and n = 40 in
  let tree = Mori.tree rng ~p:0.5 ~t:(n * m) in
  let merged = Mori.merge ~m tree in
  Alcotest.(check int) "merged vertices" n (Digraph.n_vertices merged);
  Alcotest.(check int) "edges preserved" (Digraph.n_edges tree) (Digraph.n_edges merged);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph merged));
  (* every merged edge descends from a tree edge of the right blocks *)
  let group v = ((v - 1) / m) + 1 in
  List.iter2
    (fun te me ->
      Alcotest.(check int) "src block" (group te.Digraph.src) me.Digraph.src;
      Alcotest.(check int) "dst block" (group te.Digraph.dst) me.Digraph.dst)
    (Digraph.edges tree) (Digraph.edges merged)

let test_merge_m1_is_identity () =
  let rng = Rng.of_seed 9 in
  let tree = Mori.tree rng ~p:0.5 ~t:30 in
  Alcotest.(check bool) "m=1 merge copies" true
    (Digraph.equal_structure tree (Mori.merge ~m:1 tree))

let test_mori_graph_out_degree () =
  let rng = Rng.of_seed 10 in
  let g = Mori.graph rng ~p:0.7 ~m:4 ~n:50 in
  Alcotest.(check int) "vertices" 50 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" ((50 * 4) - 1) (Digraph.n_edges g);
  (* every merged vertex except the first has out-degree exactly m *)
  for v = 2 to 50 do
    Alcotest.(check int) "out degree m" 4 (Digraph.out_degree g v)
  done;
  Alcotest.(check int) "first block out degree m-1" 3 (Digraph.out_degree g 1)

let test_mori_validation () =
  let rng = Rng.of_seed 11 in
  Alcotest.check_raises "p out of range" (Invalid_argument "Mori: need 0 < p <= 1") (fun () ->
      ignore (Mori.tree rng ~p:0. ~t:5));
  Alcotest.check_raises "t too small" (Invalid_argument "Mori: need t >= 2") (fun () ->
      ignore (Mori.tree rng ~p:0.5 ~t:1));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Mori.tree_conditioned: need 2 <= a <= b <= t") (fun () ->
      ignore (Mori.tree_conditioned rng ~p:0.5 ~t:10 ~a:8 ~b:4))

let test_degree_exponent_formula () =
  Alcotest.(check (float 1e-9)) "p=0.5 gives BA exponent 3" 3. (Mori.expected_degree_exponent ~p:0.5);
  Alcotest.(check (float 1e-9)) "p=2/3 gives 2.5" 2.5 (Mori.expected_degree_exponent ~p:(2. /. 3.))

(* --- Barabási–Albert ---------------------------------------------------- *)

let test_ba_shape () =
  let rng = Rng.of_seed 12 in
  let g = Sf_gen.Barabasi_albert.generate rng ~n:200 ~m:3 in
  Alcotest.(check int) "vertices" 200 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" (1 + (198 * 3)) (Digraph.n_edges g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g));
  for v = 3 to 200 do
    Alcotest.(check int) "m out-edges" 3 (Digraph.out_degree g v)
  done

let test_ba_rich_get_richer () =
  (* the first vertices should accumulate far more than median degree *)
  let rng = Rng.of_seed 13 in
  let g = Sf_gen.Barabasi_albert.generate rng ~n:2000 ~m:2 in
  let degrees = Metrics.total_degrees g in
  let median =
    Sf_stats.Quantile.median (Sf_stats.Quantile.of_int_array degrees)
  in
  Alcotest.(check bool) "hub formation" true (float_of_int degrees.(0) > 10. *. median)

(* --- Cooper–Frieze ------------------------------------------------------- *)

let test_cf_validation () =
  Alcotest.(check bool) "default valid" true (Result.is_ok (Cooper_frieze.validate Cooper_frieze.default));
  let bad = { Cooper_frieze.default with Cooper_frieze.alpha = 1.5 } in
  Alcotest.(check bool) "alpha out of range" true (Result.is_error (Cooper_frieze.validate bad));
  let bad_dist = { Cooper_frieze.default with Cooper_frieze.q = [ (1, 0.4) ] } in
  Alcotest.(check bool) "non-normalised distribution" true
    (Result.is_error (Cooper_frieze.validate bad_dist))

let test_cf_growth_and_connectivity () =
  let rng = Rng.of_seed 14 in
  let g = Cooper_frieze.generate_n_vertices rng Cooper_frieze.default ~n:300 in
  Alcotest.(check int) "vertex count" 300 (Digraph.n_vertices g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g))

let test_cf_steps_count () =
  let rng = Rng.of_seed 15 in
  let g = Cooper_frieze.generate rng Cooper_frieze.default ~steps:500 in
  (* each NEW step adds one vertex; alpha = 1/2 so roughly 250 + 1 *)
  let n = Digraph.n_vertices g in
  Alcotest.(check bool) "plausible vertex count" true (n > 180 && n < 320);
  (* edges: every step adds >= 1 edge, plus the initial loop *)
  Alcotest.(check bool) "edges >= steps" true (Digraph.n_edges g >= 501)

let test_cf_alpha1_only_new () =
  let rng = Rng.of_seed 16 in
  let params = { Cooper_frieze.default with Cooper_frieze.alpha = 1.0 } in
  let g = Cooper_frieze.generate rng params ~steps:100 in
  Alcotest.(check int) "every step adds a vertex" 101 (Digraph.n_vertices g)

let test_cf_traced_arrival_degrees () =
  let rng = Rng.of_seed 17 in
  let g, arrival = Cooper_frieze.generate_n_vertices_traced rng Cooper_frieze.default ~n:200 in
  Alcotest.(check int) "arrival array size" (Digraph.n_vertices g) (Array.length arrival);
  Alcotest.(check int) "vertex 1 born with the loop" 1 arrival.(0);
  let support = List.map fst Cooper_frieze.default.Cooper_frieze.q in
  for v = 2 to Digraph.n_vertices g do
    Alcotest.(check bool) "arrival degree in q's support" true (List.mem arrival.(v - 1) support);
    Alcotest.(check bool) "final out-degree >= arrival" true
      (Digraph.out_degree g v >= arrival.(v - 1))
  done

let test_cf_total_degree_mode () =
  let rng = Rng.of_seed 18 in
  let params = { Cooper_frieze.default with Cooper_frieze.preference = Cooper_frieze.Total_degree } in
  let g = Cooper_frieze.generate_n_vertices rng params ~n:200 in
  Alcotest.(check bool) "connected in total-degree mode" true
    (Traversal.is_connected (Ugraph.of_digraph g))

let test_cf_mean_out_degree () =
  Alcotest.(check (float 1e-9)) "mean of default q" 1.5
    (Cooper_frieze.mean_out_degree Cooper_frieze.default.Cooper_frieze.q)

(* --- configuration model --------------------------------------------------- *)

let test_config_degree_sequence_exact () =
  let rng = Rng.of_seed 19 in
  let deg = [| 3; 2; 2; 1; 1; 1 |] in
  let g = Config_model.of_degree_sequence rng deg in
  Alcotest.(check int) "edges = sum/2" 5 (Digraph.n_edges g);
  Array.iteri
    (fun i d -> Alcotest.(check int) (Printf.sprintf "degree of %d" (i + 1)) d (Digraph.degree g (i + 1)))
    deg

let test_config_rejects_odd_sum () =
  let rng = Rng.of_seed 20 in
  Alcotest.check_raises "odd sum" (Invalid_argument "Config_model: degree sum must be even")
    (fun () -> ignore (Config_model.of_degree_sequence rng [| 1; 1; 1 |]))

let test_power_law_degrees () =
  let rng = Rng.of_seed 21 in
  let deg = Config_model.power_law_degrees rng ~n:2000 ~exponent:2.5 ~d_min:2 () in
  Alcotest.(check int) "n degrees" 2000 (Array.length deg);
  Alcotest.(check int) "even total" 0 (Array.fold_left ( + ) 0 deg mod 2);
  Array.iter (fun d -> Alcotest.(check bool) "d >= d_min" true (d >= 2)) deg

let test_simple_graph () =
  let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 1); (1, 1); (2, 3) ] in
  let s = Config_model.simple_graph g in
  Alcotest.(check int) "loops and duplicates removed" 2 (Digraph.n_edges s);
  Alcotest.(check int) "no self loops" 0 (Metrics.self_loops s);
  Alcotest.(check int) "no parallel edges" 0 (Metrics.parallel_edges s)

let test_searchable_power_law () =
  let rng = Rng.of_seed 22 in
  let g = Config_model.searchable_power_law rng ~n:1500 ~exponent:2.3 () in
  let u = Ugraph.of_digraph g in
  Alcotest.(check bool) "connected" true (Traversal.is_connected u);
  Alcotest.(check bool) "giant component" true (Ugraph.n_vertices u > 1000);
  Alcotest.(check int) "simple" 0 (Metrics.self_loops g + Metrics.parallel_edges g)

(* --- Kleinberg -------------------------------------------------------------- *)

let test_kleinberg_coords () =
  let side = 5 in
  for v = 1 to side * side do
    let r, c = Kleinberg.coord_of_vertex ~side v in
    Alcotest.(check int) "coord roundtrip" v (Kleinberg.vertex_of_coord ~side ~row:r ~col:c)
  done;
  Alcotest.(check int) "wrapping" (Kleinberg.vertex_of_coord ~side ~row:0 ~col:0)
    (Kleinberg.vertex_of_coord ~side ~row:5 ~col:(-5))

let test_kleinberg_distance () =
  let side = 6 in
  let v1 = Kleinberg.vertex_of_coord ~side ~row:0 ~col:0 in
  let v2 = Kleinberg.vertex_of_coord ~side ~row:0 ~col:5 in
  (* wraps: distance 1, not 5 *)
  Alcotest.(check int) "toroidal wrap" 1 (Kleinberg.lattice_distance ~side v1 v2);
  let v3 = Kleinberg.vertex_of_coord ~side ~row:3 ~col:3 in
  Alcotest.(check int) "manhattan" 6 (Kleinberg.lattice_distance ~side v1 v3)

let test_kleinberg_structure () =
  let rng = Rng.of_seed 23 in
  let t = Kleinberg.generate rng ~side:8 ~r:2. ~q:1 () in
  let g = t.Kleinberg.graph in
  Alcotest.(check int) "vertices" 64 (Kleinberg.n_vertices t);
  (* 2 lattice edges per vertex + 1 long-range each *)
  Alcotest.(check int) "edges" (64 * 3) (Digraph.n_edges g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g));
  (* long-range edges (the third out-edge of each vertex) never have
     lattice distance 0 *)
  Digraph.iter_edges g (fun e ->
      if e.Digraph.src <> e.Digraph.dst then ()
      else Alcotest.fail "self-loop in Kleinberg graph")

let test_kleinberg_q0 () =
  let rng = Rng.of_seed 24 in
  let t = Kleinberg.generate rng ~side:4 ~r:1. ~q:0 () in
  Alcotest.(check int) "pure lattice edges" 32 (Digraph.n_edges t.Kleinberg.graph)

let test_kleinberg_r0_uniform () =
  (* r = 0: long-range endpoints uniform; mean lattice distance of the
     long link should be near the mean over the torus *)
  let rng = Rng.of_seed 25 in
  let side = 10 in
  let t = Kleinberg.generate rng ~side ~r:0. ~q:1 () in
  let sum = ref 0 and count = ref 0 in
  Digraph.iter_edges t.Kleinberg.graph (fun e ->
      let d = Kleinberg.lattice_distance ~side e.Digraph.src e.Digraph.dst in
      if d > 1 then begin
        sum := !sum + d;
        incr count
      end);
  let mean = float_of_int !sum /. float_of_int (max 1 !count) in
  Alcotest.(check bool) "long links reach far when r=0" true (mean > 3.5)

(* --- LCD (Bollobás–Riordan) ----------------------------------------------------- *)

let test_lcd_tree_shape () =
  let rng = Rng.of_seed 60 in
  let g = Sf_gen.Lcd.tree1 rng ~t:500 in
  Alcotest.(check int) "vertices" 500 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 500 (Digraph.n_edges g);
  (* vertex 1's only choice is itself *)
  let e0 = Digraph.edge g 0 in
  Alcotest.(check int) "first edge is the root loop (src)" 1 e0.Digraph.src;
  Alcotest.(check int) "first edge is the root loop (dst)" 1 e0.Digraph.dst;
  for k = 2 to 500 do
    Alcotest.(check int) "one out-edge per vertex" 1 (Digraph.out_degree g k);
    let e = Digraph.edge g (k - 1) in
    Alcotest.(check bool) "attaches to an older-or-equal vertex" true (e.Digraph.dst <= k)
  done;
  (* the m = 1 LCD graph is a forest: every self-loop roots a component *)
  let loops = Metrics.self_loops g in
  let components = Array.length (Traversal.component_sizes (Ugraph.of_digraph g)) in
  Alcotest.(check int) "one component per self-loop" loops components

let test_lcd_self_loop_rate () =
  (* vertex 2 self-loops with probability 1/3 in the LCD convention *)
  let rng = Rng.of_seed 61 in
  let trials = 30_000 in
  let loops = ref 0 in
  for _ = 1 to trials do
    let g = Sf_gen.Lcd.tree1 rng ~t:2 in
    let e = Digraph.edge g 1 in
    if e.Digraph.dst = 2 then incr loops
  done;
  let freq = float_of_int !loops /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "P(loop at 2) = %.3f ~ 1/3" freq)
    true
    (Float.abs (freq -. (1. /. 3.)) < 0.01)

let test_lcd_merged () =
  let rng = Rng.of_seed 62 in
  let g = Sf_gen.Lcd.generate rng ~n:100 ~m:3 in
  Alcotest.(check int) "vertices" 100 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 300 (Digraph.n_edges g)

let test_lcd_hub_growth () =
  (* total-degree preferential attachment: max degree ~ sqrt(t), so it
     should dwarf the uniform tree's log-size hubs *)
  let rng = Rng.of_seed 63 in
  let lcd = Sf_gen.Lcd.tree1 rng ~t:8000 in
  let uni = Sf_gen.Uniform_attachment.tree rng ~t:8000 in
  Alcotest.(check bool) "lcd hubs much larger" true
    (Metrics.max_total_degree lcd > 3 * Metrics.max_total_degree uni)

(* --- uniform attachment and Erdős–Rényi -------------------------------------- *)

let test_uniform_attachment_tree () =
  let rng = Rng.of_seed 26 in
  let g = Sf_gen.Uniform_attachment.tree rng ~t:300 in
  Alcotest.(check int) "edges" 299 (Digraph.n_edges g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g));
  (* uniform attachment has geometric-ish indegree: max degree should
     stay tiny compared to preferential attachment *)
  Alcotest.(check bool) "no giant hub" true (Metrics.max_in_degree g < 30)

let test_uniform_attachment_graph () =
  let rng = Rng.of_seed 27 in
  let g = Sf_gen.Uniform_attachment.graph rng ~n:100 ~m:2 in
  Alcotest.(check int) "edges" (1 + (98 * 2)) (Digraph.n_edges g)

let test_gnm () =
  let rng = Rng.of_seed 28 in
  let g = Sf_gen.Erdos_renyi.gnm rng ~n:50 ~m:100 in
  Alcotest.(check int) "edge count exact" 100 (Digraph.n_edges g);
  Alcotest.(check int) "no loops" 0 (Metrics.self_loops g);
  Alcotest.(check int) "no duplicates" 0 (Metrics.parallel_edges g);
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Erdos_renyi.gnm: too many edges requested") (fun () ->
      ignore (Sf_gen.Erdos_renyi.gnm rng ~n:4 ~m:7))

let test_gnp_mean_edges () =
  let rng = Rng.of_seed 29 in
  let n = 60 and p = 0.1 in
  let total = ref 0 in
  let reps = 200 in
  for _ = 1 to reps do
    total := !total + Digraph.n_edges (Sf_gen.Erdos_renyi.gnp rng ~n ~p)
  done;
  let mean = float_of_int !total /. float_of_int reps in
  let expected = float_of_int (n * (n - 1) / 2) *. p in
  Alcotest.(check bool)
    (Printf.sprintf "gnp edge mean %.1f vs %.1f" mean expected)
    true
    (Float.abs (mean -. expected) /. expected < 0.05);
  Alcotest.(check int) "gnp p=0 empty" 0 (Digraph.n_edges (Sf_gen.Erdos_renyi.gnp rng ~n:10 ~p:0.));
  Alcotest.(check int) "gnp p=1 complete" 45 (Digraph.n_edges (Sf_gen.Erdos_renyi.gnp rng ~n:10 ~p:1.))

(* --- Watts–Strogatz -------------------------------------------------------------- *)

let test_ws_beta0_is_ring_lattice () =
  let rng = Rng.of_seed 70 in
  let n = 30 and k = 4 in
  let g = Sf_gen.Watts_strogatz.generate rng ~n ~k ~beta:0. in
  Alcotest.(check int) "edges nk/2" (n * k / 2) (Digraph.n_edges g);
  (* every vertex has total degree exactly k, and neighbours are the
     nearest ring positions *)
  for v = 1 to n do
    Alcotest.(check int) (Printf.sprintf "degree of %d" v) k (Digraph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Traversal.is_connected (Ugraph.of_digraph g));
  Alcotest.(check int) "no rewiring: zero parallel edges" 0 (Metrics.parallel_edges g)

let test_ws_rewired_properties () =
  let rng = Rng.of_seed 71 in
  let n = 500 and k = 6 in
  let g = Sf_gen.Watts_strogatz.generate rng ~n ~k ~beta:0.2 in
  Alcotest.(check int) "edge count preserved" (n * k / 2) (Digraph.n_edges g);
  Alcotest.(check int) "simple (no loops)" 0 (Metrics.self_loops g);
  Alcotest.(check int) "simple (no duplicates)" 0 (Metrics.parallel_edges g);
  (* no hubs: max degree stays near k *)
  Alcotest.(check bool) "concentrated degrees" true (Metrics.max_total_degree g < 3 * k)

let test_ws_small_world_shortcut_effect () =
  (* rewiring shrinks distances dramatically versus the pure ring *)
  let rng = Rng.of_seed 72 in
  let n = 400 and k = 4 in
  let ring = Sf_gen.Watts_strogatz.generate rng ~n ~k ~beta:0. in
  let sw = Sf_gen.Watts_strogatz.generate rng ~n ~k ~beta:0.1 in
  let d_ring = Traversal.diameter_double_sweep (Ugraph.of_digraph ring) rng in
  let d_sw = Traversal.diameter_double_sweep (Ugraph.of_digraph sw) rng in
  Alcotest.(check bool)
    (Printf.sprintf "shortcuts shrink the world (%d < %d / 3)" d_sw d_ring)
    true
    (d_sw < d_ring / 3)

let test_ws_validation () =
  let rng = Rng.of_seed 73 in
  Alcotest.check_raises "odd k" (Invalid_argument "Watts_strogatz.generate: k must be even and >= 2")
    (fun () -> ignore (Sf_gen.Watts_strogatz.generate rng ~n:10 ~k:3 ~beta:0.1));
  Alcotest.check_raises "n too small" (Invalid_argument "Watts_strogatz.generate: need n > k")
    (fun () -> ignore (Sf_gen.Watts_strogatz.generate rng ~n:4 ~k:4 ~beta:0.1))

(* --- qcheck properties --------------------------------------------------------- *)

let prop_mori_tree_invariants =
  QCheck.Test.make ~name:"Mori tree invariants" ~count:60
    QCheck.(
      make
        ~print:(fun (s, t, p) -> Printf.sprintf "(seed=%d t=%d p=%.2f)" s t p)
        Gen.(triple (int_bound 100_000) (int_range 2 300) (float_range 0.05 1.0)))
    (fun (seed, t, p) ->
      let g = Mori.tree (Rng.of_seed seed) ~p ~t in
      Digraph.n_edges g = t - 1
      && (let ok = ref true in
          for k = 2 to t do
            if Mori.father g k >= k then ok := false
          done;
          !ok)
      && Traversal.is_connected (Ugraph.of_digraph g))

let prop_config_model_degrees =
  QCheck.Test.make ~name:"configuration model realises its sequence" ~count:60
    QCheck.(
      make
        ~print:(fun (s, l) ->
          Printf.sprintf "(seed=%d, %s)" s (String.concat "," (List.map string_of_int l)))
        Gen.(pair (int_bound 100_000) (list_size (int_range 2 40) (int_range 0 6))))
    (fun (seed, degrees) ->
      let deg = Array.of_list degrees in
      let total = Array.fold_left ( + ) 0 deg in
      if total mod 2 = 1 then deg.(0) <- deg.(0) + 1;
      let g = Config_model.of_degree_sequence (Rng.of_seed seed) deg in
      Array.for_all
        (fun i -> Digraph.degree g (i + 1) = deg.(i))
        (Array.init (Array.length deg) Fun.id))

let prop_cf_always_connected =
  QCheck.Test.make ~name:"Cooper-Frieze connected by construction" ~count:30
    QCheck.(
      make
        ~print:(fun (s, n, alpha) -> Printf.sprintf "(seed=%d n=%d alpha=%.2f)" s n alpha)
        Gen.(triple (int_bound 100_000) (int_range 2 150) (float_range 0.2 0.95)))
    (fun (seed, n, alpha) ->
      let params = { Cooper_frieze.default with Cooper_frieze.alpha } in
      let g = Cooper_frieze.generate_n_vertices (Rng.of_seed seed) params ~n in
      Traversal.is_connected (Ugraph.of_digraph g))

let prop_mori_giant_parity =
  QCheck.Test.make ~name:"Mori giant engine samplewise equals legacy" ~count:40
    QCheck.(
      make
        ~print:(fun (s, p, m, n) -> Printf.sprintf "(seed=%d p=%.2f m=%d n=%d)" s p m n)
        Gen.(
          quad (int_bound 100_000) (float_range 0.05 1.0) (int_range 1 4) (int_range 2 120)))
    (fun (seed, p, m, n) ->
      let legacy = Ugraph.of_digraph (Mori.graph (Rng.of_seed seed) ~p ~m ~n) in
      let giant = Mori.graph_giant (Rng.of_seed seed) ~p ~m ~n in
      Sf_graph.Csr.equal (Ugraph.csr legacy) (Ugraph.csr giant))

let suite =
  [
    ("mori tree shape", `Quick, test_mori_tree_shape);
    ("mori edge ids", `Quick, test_mori_edge_ids_are_arrival_times);
    ("mori p=1 preferential", `Quick, test_mori_p1_is_preferential);
    ("mori step law", `Quick, test_mori_father_frequencies_t3);
    ("mori fathers accessor", `Quick, test_mori_fathers_accessor);
    ("mori conditioned event", `Quick, test_mori_conditioned_respects_event);
    ("mori conditioned law", `Slow, test_mori_conditioned_matches_conditional_law);
    ("mori giant parity", `Quick, test_mori_giant_samplewise_parity);
    ("mori giant fathers", `Quick, test_mori_giant_fathers_match_tree);
    ("mori giant stream position", `Quick, test_mori_giant_rng_stream_position);
    ("CF giant structure", `Quick, test_cf_giant_structure);
    ("CF giant degree law", `Slow, test_cf_giant_degree_law_chi_square);
    ("merge properties", `Quick, test_merge_properties);
    ("merge m=1 identity", `Quick, test_merge_m1_is_identity);
    ("mori graph out-degrees", `Quick, test_mori_graph_out_degree);
    ("mori validation", `Quick, test_mori_validation);
    ("degree exponent formula", `Quick, test_degree_exponent_formula);
    ("BA shape", `Quick, test_ba_shape);
    ("BA hubs", `Quick, test_ba_rich_get_richer);
    ("CF validation", `Quick, test_cf_validation);
    ("CF growth", `Quick, test_cf_growth_and_connectivity);
    ("CF step count", `Quick, test_cf_steps_count);
    ("CF alpha=1", `Quick, test_cf_alpha1_only_new);
    ("CF traced arrivals", `Quick, test_cf_traced_arrival_degrees);
    ("CF total-degree mode", `Quick, test_cf_total_degree_mode);
    ("CF mean out degree", `Quick, test_cf_mean_out_degree);
    ("config model exact degrees", `Quick, test_config_degree_sequence_exact);
    ("config model odd sum", `Quick, test_config_rejects_odd_sum);
    ("power-law degrees", `Quick, test_power_law_degrees);
    ("simple graph", `Quick, test_simple_graph);
    ("searchable power law", `Quick, test_searchable_power_law);
    ("kleinberg coords", `Quick, test_kleinberg_coords);
    ("kleinberg distance", `Quick, test_kleinberg_distance);
    ("kleinberg structure", `Quick, test_kleinberg_structure);
    ("kleinberg q=0", `Quick, test_kleinberg_q0);
    ("kleinberg r=0 uniform", `Quick, test_kleinberg_r0_uniform);
    ("lcd tree shape", `Quick, test_lcd_tree_shape);
    ("lcd self-loop rate", `Quick, test_lcd_self_loop_rate);
    ("lcd merged", `Quick, test_lcd_merged);
    ("lcd hub growth", `Quick, test_lcd_hub_growth);
    ("uniform attachment tree", `Quick, test_uniform_attachment_tree);
    ("uniform attachment graph", `Quick, test_uniform_attachment_graph);
    ("watts-strogatz ring", `Quick, test_ws_beta0_is_ring_lattice);
    ("watts-strogatz rewired", `Quick, test_ws_rewired_properties);
    ("watts-strogatz shortcuts", `Quick, test_ws_small_world_shortcut_effect);
    ("watts-strogatz validation", `Quick, test_ws_validation);
    ("gnm", `Quick, test_gnm);
    ("gnp mean edges", `Quick, test_gnp_mean_edges);
    QCheck_alcotest.to_alcotest prop_mori_tree_invariants;
    QCheck_alcotest.to_alcotest prop_config_model_degrees;
    QCheck_alcotest.to_alcotest prop_cf_always_connected;
    QCheck_alcotest.to_alcotest prop_mori_giant_parity;
  ]
