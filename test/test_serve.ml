(* The serving battery: the wire codec (round trips, canonical bytes,
   truncation and bit-flip fuzz mirroring test_store.ml), the framing
   layer, and the daemon end to end — an in-process Server on a temp
   unix socket driven by real Client connections.

   The load-bearing case is determinism: a reply is a pure function of
   (server seed, graph, request), so the same request ids must produce
   byte-identical reply payloads whether the server runs --jobs 1 or
   --jobs 4, whether the requests share one connection or three, and
   in whatever order the batches formed. *)

module Wire = Sf_serve.Wire
module Server = Sf_serve.Server
module Client = Sf_serve.Client
module Load = Sf_serve.Load
module E = Sf_store.Codec_error
module Registry = Sf_obs.Registry
module Counter = Sf_obs.Counter
module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Searchability = Sf_core.Searchability
module Bench_file = Sf_perf.Bench_file

let temp_counter = ref 0

let temp_sock () =
  incr temp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "sf-serve-%d-%d.sock" (Unix.getpid ()) !temp_counter)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let raw_write fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* read one reply frame off a raw socket and decode it *)
let raw_read_response fd =
  let buf = Bytes.create 4096 in
  let rec go acc =
    match Wire.pop acc ~pos:0 with
    | `Frame (payload, _) -> Wire.decode_response payload
    | `Bad msg -> Alcotest.failf "unframeable reply: %s" msg
    | `Need_more -> (
      match Unix.read fd buf 0 4096 with
      | 0 -> Alcotest.fail "connection closed before a reply arrived"
      | n -> go (acc ^ Bytes.sub_string buf 0 n))
  in
  go ""

(* one small mori instance shared by the end-to-end cases *)
let graph, _graph_target =
  let rng = Rng.of_seed 11 in
  Searchability.mori_instance ~p:0.5 ~m:1 rng 600

let with_server_on path ?(jobs = 1) ?(seed = 5) body =
  let cfg = Server.config ~jobs ~seed graph in
  let server = Server.create cfg ~listen:[ Wire.Unix_path path ] in
  let th = Thread.create (fun () -> Server.run ~tick:0.01 server) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th)
    (fun () -> body path server)

let with_server ?jobs ?seed body = with_server_on (temp_sock ()) ?jobs ?seed body

let with_client path body =
  let c = Client.connect (Wire.Unix_path path) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> body c)

(* ---------------------------------------------------------------- *)
(* endpoints                                                         *)
(* ---------------------------------------------------------------- *)

let test_endpoint_parsing () =
  let ok s = match Wire.endpoint_of_string s with Ok e -> e | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "unix:" true (ok "unix:/tmp/x.sock" = Wire.Unix_path "/tmp/x.sock");
  Alcotest.(check bool) "bare path" true (ok "/tmp/x.sock" = Wire.Unix_path "/tmp/x.sock");
  Alcotest.(check bool) "tcp" true (ok "tcp:10.0.0.1:7440" = Wire.Tcp ("10.0.0.1", 7440));
  Alcotest.(check bool) "tcp empty host" true (ok "tcp::7440" = Wire.Tcp ("127.0.0.1", 7440));
  List.iter
    (fun bad ->
      match Wire.endpoint_of_string bad with
      | Ok _ -> Alcotest.failf "parsed %S" bad
      | Error _ -> ())
    [ ""; "tcp:host"; "tcp:host:nope"; "tcp:host:-1"; "tcp:host:70000" ];
  List.iter
    (fun e ->
      match Wire.endpoint_of_string (Wire.endpoint_to_string e) with
      | Ok e' -> Alcotest.(check bool) "printer round trip" true (e = e')
      | Error m -> Alcotest.fail m)
    [ Wire.Unix_path "/a/b.sock"; Wire.Tcp ("example.org", 80) ]

(* ---------------------------------------------------------------- *)
(* payload codec                                                     *)
(* ---------------------------------------------------------------- *)

let sample_requests =
  [
    Wire.Search
      { Wire.id = 1; strategy = "high-degree"; source = None; target = None;
        budget = None; stop_at_neighbor = false; ctx = None };
    Wire.Search
      { Wire.id = 900_000; strategy = "rand-walk"; source = Some 17; target = Some 1;
        budget = Some 12_345; stop_at_neighbor = true;
        ctx = Some (Sf_obs.Tctx.derive ~seed:42 ~id:900_000) };
    Wire.Ping 0;
    Wire.Ping max_int;
    Wire.Stats 3;
    Wire.Shutdown 42;
  ]

let sample_responses =
  [
    Wire.Search_reply
      { Wire.sr_id = 1; sr_total_requests = 0; sr_to_target = None;
        sr_to_neighbor = None; sr_discovered = 2; sr_gave_up = false; sr_path_len = 0 };
    Wire.Search_reply
      { Wire.sr_id = 77; sr_total_requests = 4_096; sr_to_target = Some 4_000;
        sr_to_neighbor = Some 12; sr_discovered = 512; sr_gave_up = true; sr_path_len = 9 };
    Wire.Pong 5;
    Wire.Stats_reply
      { Wire.ss_id = 9; ss_n_vertices = 1_000_000; ss_n_edges = 2_000_000;
        ss_served = 123; ss_errors = 4; ss_connections = 56;
        ss_stage_queue_us = 1_500; ss_stage_batch_us = 0; ss_stage_search_us = 987_654;
        ss_stage_reply_us = 31 };
    Wire.Shutdown_ack 0;
    Wire.Error { err_id = 3; code = Wire.Bad_frame; message = "boom" };
    Wire.Error { err_id = 0; code = Wire.Unknown_strategy; message = "" };
    Wire.Error { err_id = 1; code = Wire.Bad_vertex; message = "v" };
    Wire.Error { err_id = 2; code = Wire.Bad_request; message = "b" };
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let enc = Wire.encode_request r in
      Alcotest.(check bool) "request round-trips" true (Wire.decode_request enc = r);
      Alcotest.(check string) "encoding is canonical" enc (Wire.encode_request r))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      let enc = Wire.encode_response r in
      Alcotest.(check bool) "response round-trips" true (Wire.decode_response enc = r);
      Alcotest.(check string) "encoding is canonical" enc (Wire.encode_response r))
    sample_responses

let qcheck_search_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random search requests round-trip exactly"
    QCheck.(make Gen.(int_bound 1_000_000_000))
    (fun seed ->
      let rng = Rng.of_seed seed in
      let opt gen = if Rng.bool rng then Some (gen ()) else None in
      let s =
        {
          Wire.id = Rng.int rng 1_000_000;
          strategy =
            String.init (Rng.int rng 12) (fun _ -> Char.chr (32 + Rng.int rng 95));
          source = opt (fun () -> 1 + Rng.int rng 1_000_000);
          target = opt (fun () -> 1 + Rng.int rng 1_000_000);
          budget = opt (fun () -> 1 + Rng.int rng 1_000_000);
          stop_at_neighbor = Rng.bool rng;
          ctx =
            opt (fun () ->
                Sf_obs.Tctx.derive ~seed:(Rng.int rng 1_000_000) ~id:(Rng.int rng 1_000_000));
        }
      in
      Wire.decode_request (Wire.encode_request (Wire.Search s)) = Wire.Search s)

let qcheck_reply_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random search replies round-trip exactly"
    QCheck.(make Gen.(int_bound 1_000_000_000))
    (fun seed ->
      let rng = Rng.of_seed seed in
      let opt gen = if Rng.bool rng then Some (gen ()) else None in
      let r =
        {
          Wire.sr_id = Rng.int rng 1_000_000;
          sr_total_requests = Rng.int rng 10_000_000;
          sr_to_target = opt (fun () -> Rng.int rng 10_000_000);
          sr_to_neighbor = opt (fun () -> Rng.int rng 10_000_000);
          sr_discovered = Rng.int rng 1_000_000;
          sr_gave_up = Rng.bool rng;
          sr_path_len = Rng.int rng 1_000;
        }
      in
      Wire.decode_response (Wire.encode_response (Wire.Search_reply r))
      = Wire.Search_reply r)

let test_decode_rejects_truncations () =
  List.iter
    (fun r ->
      let enc = Wire.encode_request r in
      for len = 0 to String.length enc - 1 do
        match Wire.decode_request (String.sub enc 0 len) with
        | _ ->
          Alcotest.failf "accepted a %d-byte prefix of %d bytes" len (String.length enc)
        | exception E.Error _ -> ()
      done)
    sample_requests;
  List.iter
    (fun r ->
      let enc = Wire.encode_response r in
      for len = 0 to String.length enc - 1 do
        match Wire.decode_response (String.sub enc 0 len) with
        | _ -> Alcotest.fail "accepted a truncated response"
        | exception E.Error _ -> ()
      done)
    sample_responses

let test_decode_rejects_bit_flips () =
  List.iter
    (fun r ->
      let enc = Wire.encode_request r in
      for i = 0 to String.length enc - 1 do
        for bit = 0 to 7 do
          let mutated = Bytes.of_string enc in
          Bytes.set mutated i (Char.chr (Char.code enc.[i] lxor (1 lsl bit)));
          match Wire.decode_request (Bytes.to_string mutated) with
          | _ -> Alcotest.failf "accepted bit %d of byte %d flipped" bit i
          | exception E.Error _ -> ()
        done
      done)
    sample_requests

let test_decode_rejects_trailing_bytes () =
  let enc = Wire.encode_request (Wire.Ping 7) in
  match Wire.decode_request (enc ^ "\x00") with
  | _ -> Alcotest.fail "accepted trailing bytes"
  | exception E.Error _ -> ()

(* ---------------------------------------------------------------- *)
(* framing                                                           *)
(* ---------------------------------------------------------------- *)

let test_frame_pop () =
  let p1 = Wire.encode_request (Wire.Ping 1) in
  let p2 = Wire.encode_request (Wire.Stats 2) in
  let buf = Wire.frame p1 ^ Wire.frame p2 in
  (* incremental: every strict prefix of the first frame wants more *)
  for len = 0 to Wire.frame_header_bytes + String.length p1 - 1 do
    match Wire.pop (String.sub buf 0 len) ~pos:0 with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.failf "framed out of a %d-byte prefix" len
    | `Bad m -> Alcotest.failf "rejected a prefix: %s" m
  done;
  (* then both frames pop in sequence *)
  (match Wire.pop buf ~pos:0 with
  | `Frame (payload, next) -> (
    Alcotest.(check string) "first frame" p1 payload;
    match Wire.pop buf ~pos:next with
    | `Frame (payload2, next2) ->
      Alcotest.(check string) "second frame" p2 payload2;
      Alcotest.(check int) "buffer exhausted" (String.length buf) next2
    | _ -> Alcotest.fail "second frame missing")
  | _ -> Alcotest.fail "first frame missing");
  (* a declared length outside the legal range is unrecoverable *)
  let header_of len =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.to_string b
  in
  (match Wire.pop (header_of 3 ^ "xxx") ~pos:0 with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "accepted a below-minimum frame");
  (match Wire.pop (header_of 2_000_000) ~pos:0 with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "accepted an oversized frame");
  match Wire.pop ~max_payload:4_000_000 (header_of 2_000_000) ~pos:0 with
  | `Need_more -> ()
  | _ -> Alcotest.fail "max_payload override ignored"

(* ---------------------------------------------------------------- *)
(* the daemon, end to end                                            *)
(* ---------------------------------------------------------------- *)

let test_ping_and_stats () =
  with_server (fun path _ ->
      with_client path (fun c ->
          (match Client.call c (Wire.Ping 41) with
          | Wire.Pong 41 -> ()
          | _ -> Alcotest.fail "expected Pong 41");
          match Client.call c (Wire.Stats 9) with
          | Wire.Stats_reply s ->
            Alcotest.(check int) "stats id" 9 s.Wire.ss_id;
            Alcotest.(check int) "stats n" (Ugraph.n_vertices graph) s.Wire.ss_n_vertices;
            Alcotest.(check int) "stats m" (Ugraph.n_edges graph) s.Wire.ss_n_edges
          | _ -> Alcotest.fail "expected Stats_reply"))

let search_req id strategy =
  Wire.Search
    { Wire.id = id; strategy; source = None; target = None; budget = Some 200;
      stop_at_neighbor = false; ctx = None }

(* fire [ids] across [n_conns] connections (request i on connection
   i mod n_conns, pipelined), return encoded replies keyed by id *)
let fire_searches path ~n_conns ids =
  let conns = Array.init n_conns (fun _ -> Client.connect (Wire.Unix_path path)) in
  Fun.protect
    ~finally:(fun () -> Array.iter Client.close conns)
    (fun () ->
      let counts = Array.make n_conns 0 in
      List.iteri
        (fun i id ->
          let strategy = if id mod 2 = 0 then "rand-walk" else "high-degree" in
          Client.send conns.(i mod n_conns) (search_req id strategy);
          counts.(i mod n_conns) <- counts.(i mod n_conns) + 1)
        ids;
      let tbl = Hashtbl.create 64 in
      Array.iteri
        (fun ci count ->
          for _ = 1 to count do
            let resp = Client.recv conns.(ci) in
            Hashtbl.replace tbl (Wire.response_id resp) (Wire.encode_response resp)
          done)
        counts;
      tbl)

let test_deterministic_replies_across_jobs () =
  let ids = List.init 24 (fun i -> i + 1) in
  let c_requests = Registry.counter "serve.requests" in
  let before = Counter.value c_requests in
  let replies1 = with_server ~jobs:1 (fun path _ -> fire_searches path ~n_conns:1 ids) in
  Alcotest.(check int)
    "serve.requests counted every search exactly once"
    (before + List.length ids) (Counter.value c_requests);
  (* same ids, reversed send order, three connections, four domains *)
  let replies4 =
    with_server ~jobs:4 (fun path _ -> fire_searches path ~n_conns:3 (List.rev ids))
  in
  List.iter
    (fun id ->
      match (Hashtbl.find_opt replies1 id, Hashtbl.find_opt replies4 id) with
      | Some a, Some b ->
        Alcotest.(check string) (Printf.sprintf "reply %d byte-identical" id) a b
      | _ -> Alcotest.failf "reply %d missing" id)
    ids;
  (* the same id asked twice gets the same bytes — the contract that
     makes the reply a pure function of the request *)
  with_server ~jobs:2 (fun path _ ->
      with_client path (fun c ->
          let a = Wire.encode_response (Client.call c (search_req 7 "high-degree")) in
          let b = Wire.encode_response (Client.call c (search_req 7 "high-degree")) in
          Alcotest.(check string) "idempotent reply" a b))

let test_search_reply_is_plausible () =
  with_server (fun path _ ->
      with_client path (fun c ->
          match Client.call c (search_req 1 "high-degree") with
          | Wire.Search_reply sr ->
            Alcotest.(check int) "id echoed" 1 sr.Wire.sr_id;
            Alcotest.(check bool) "paid at least one request" true
              (sr.Wire.sr_total_requests >= 1);
            Alcotest.(check bool) "budget respected" true
              (sr.Wire.sr_total_requests <= 200);
            (match sr.Wire.sr_to_target with
            | Some r ->
              Alcotest.(check bool) "path certified when found" true
                (sr.Wire.sr_path_len >= 1);
              Alcotest.(check bool) "to_target within total" true
                (r <= sr.Wire.sr_total_requests)
            | None -> ())
          | _ -> Alcotest.fail "expected Search_reply"))

let test_request_validation_errors () =
  with_server (fun path _ ->
      with_client path (fun c ->
          (match Client.call c (search_req 5 "no-such-strategy") with
          | Wire.Error { err_id = 5; code = Wire.Unknown_strategy; message } ->
            Alcotest.(check bool) "names the portfolio" true
              (contains_sub message "high-degree")
          | _ -> Alcotest.fail "expected Unknown_strategy");
          (match
             Client.call c
               (Wire.Search
                  { Wire.id = 6; strategy = "high-degree"; source = None;
                    target = Some 99_999_999; budget = None; stop_at_neighbor = false;
                    ctx = None })
           with
          | Wire.Error { err_id = 6; code = Wire.Bad_vertex; _ } -> ()
          | _ -> Alcotest.fail "expected Bad_vertex");
          (match
             Client.call c
               (Wire.Search
                  { Wire.id = 7; strategy = "high-degree"; source = None;
                    target = None; budget = Some 0; stop_at_neighbor = false;
                    ctx = None })
           with
          | Wire.Error { err_id = 7; code = Wire.Bad_request; _ } -> ()
          | _ -> Alcotest.fail "expected Bad_request");
          (* the connection survived all of it *)
          match Client.call c (Wire.Ping 8) with
          | Wire.Pong 8 -> ()
          | _ -> Alcotest.fail "connection should have survived the errors"))

(* ---------------------------------------------------------------- *)
(* robustness: socket lifecycle                                      *)
(* ---------------------------------------------------------------- *)

let test_mid_frame_disconnect () =
  with_server (fun path _ ->
      let whole = Wire.frame (Wire.encode_request (Wire.Ping 1)) in
      let half = String.sub whole 0 (String.length whole / 2) in
      let raw = raw_connect path in
      raw_write raw half;
      Thread.delay 0.05;
      Unix.close raw;
      Thread.delay 0.05;
      (* the daemon shrugs: a fresh client still gets answered *)
      with_client path (fun c2 ->
          match Client.call c2 (Wire.Ping 2) with
          | Wire.Pong 2 -> ()
          | _ -> Alcotest.fail "server should survive a mid-frame disconnect"))

let test_garbage_payload_keeps_connection () =
  with_server (fun path _ ->
      with_client path (fun bystander ->
          let raw = raw_connect path in
          Fun.protect
            ~finally:(fun () -> try Unix.close raw with Unix.Unix_error _ -> ())
            (fun () ->
              (* well-framed, but the payload is noise: the server
                 reports Bad_frame and keeps the connection *)
              raw_write raw (Wire.frame (String.make 16 'X'));
              (match raw_read_response raw with
              | Wire.Error { code = Wire.Bad_frame; _ } -> ()
              | _ -> Alcotest.fail "expected a Bad_frame error");
              (* the same connection still answers a real request *)
              raw_write raw (Wire.frame (Wire.encode_request (Wire.Ping 3)));
              match raw_read_response raw with
              | Wire.Pong 3 -> ()
              | _ -> Alcotest.fail "expected Pong after the garbage frame");
          (* and bystanders never noticed *)
          match Client.call bystander (Wire.Ping 4) with
          | Wire.Pong 4 -> ()
          | _ -> Alcotest.fail "bystander connection broken"))

let test_oversized_frame_drops_connection_only () =
  with_server (fun path _ ->
      let raw = raw_connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close raw with Unix.Unix_error _ -> ())
        (fun () ->
          (* a header declaring 64 MiB: unrecoverable, the server
             answers once and closes this connection *)
          let b = Bytes.create 4 in
          Bytes.set_int32_le b 0 (Int32.of_int (64 * 1024 * 1024));
          raw_write raw (Bytes.to_string b);
          (match raw_read_response raw with
          | Wire.Error { code = Wire.Bad_frame; _ } -> ()
          | _ -> Alcotest.fail "expected Bad_frame for the oversized header");
          (* then EOF: the server hung up on this connection *)
          let buf = Bytes.create 64 in
          match Unix.read raw buf 0 64 with
          | 0 -> ()
          | _ -> Alcotest.fail "expected the connection to be closed");
      (* the daemon itself is fine *)
      with_client path (fun c ->
          match Client.call c (Wire.Ping 5) with
          | Wire.Pong 5 -> ()
          | _ -> Alcotest.fail "server should survive an oversized frame"))

let test_socket_claim_lifecycle () =
  (* stale socket: a bound-then-abandoned path is reclaimed *)
  let path = temp_sock () in
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX path);
  Unix.close stale;
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists path);
  with_server_on path (fun p _ ->
      with_client p (fun c ->
          match Client.call c (Wire.Ping 1) with
          | Wire.Pong 1 -> ()
          | _ -> Alcotest.fail "reclaimed server does not answer"));
  (* non-socket path: refused *)
  let file = temp_sock () in
  let oc = open_out file in
  output_string oc "not a socket";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      match
        Server.create (Server.config ~jobs:1 ~seed:1 graph)
          ~listen:[ Wire.Unix_path file ]
      with
      | _ -> Alcotest.fail "bound over a regular file"
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "names the offence" true
          (contains_sub msg "not a socket"));
  (* live socket: refused while a server holds it *)
  with_server (fun live_path _ ->
      match
        Server.create (Server.config ~jobs:1 ~seed:1 graph)
          ~listen:[ Wire.Unix_path live_path ]
      with
      | _ -> Alcotest.fail "bound over a live server"
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "names the live process" true
          (contains_sub msg "in use by a live process"))

let test_shutdown_request () =
  let path = temp_sock () in
  let cfg = Server.config ~jobs:1 ~seed:5 graph in
  let server = Server.create cfg ~listen:[ Wire.Unix_path path ] in
  let th = Thread.create (fun () -> Server.run ~tick:0.01 server) () in
  with_client path (fun c ->
      match Client.call c (Wire.Shutdown 13) with
      | Wire.Shutdown_ack 13 -> ()
      | _ -> Alcotest.fail "expected Shutdown_ack");
  Thread.join th;
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists path)

(* ---------------------------------------------------------------- *)
(* sfload                                                            *)
(* ---------------------------------------------------------------- *)

let load_cfg path ~connections ~seed =
  Load.config ~connections ~concurrency:8
    ~mix:[ ("high-degree", 2.); ("rand-walk", 1.) ]
    ~budget:150 ~timeout:30. ~seed ~requests:48 (Wire.Unix_path path)

let test_load_determinism () =
  let summary1, digest1 =
    with_server ~jobs:1 (fun path _ ->
        let o = Load.run (load_cfg path ~connections:2 ~seed:9) in
        Alcotest.(check int) "every request answered" 48 o.Load.o_replies;
        Alcotest.(check int) "no errors" 0 o.Load.o_errors;
        Alcotest.(check int) "no missing" 0 o.Load.o_missing;
        (Load.summary o, o.Load.o_reply_crc))
  in
  let summary2, digest2 =
    with_server ~jobs:4 (fun path _ ->
        let o = Load.run (load_cfg path ~connections:3 ~seed:9) in
        (Load.summary o, o.Load.o_reply_crc))
  in
  Alcotest.(check string)
    "summary byte-identical across jobs and connection counts" summary1 summary2;
  Alcotest.(check bool) "reply digests agree" true (digest1 = digest2);
  (* A different seed is a different plan — and the digest must see it.
     Regression: a CRC over whole payloads (self-checksummed blocks)
     collapses to a content-independent constant per reply, making the
     digest blind to reply bytes; it must exclude the checksum tails. *)
  let summary3, digest3 =
    with_server ~jobs:1 (fun path _ ->
        let o = Load.run (load_cfg path ~connections:2 ~seed:10) in
        (Load.summary o, o.Load.o_reply_crc))
  in
  Alcotest.(check bool) "distinct seed, distinct summary" true (summary1 <> summary3);
  Alcotest.(check bool) "distinct seed, distinct reply digest" true
    (digest1 <> digest3)

let test_load_bench_file_validates () =
  with_server ~jobs:2 (fun path _ ->
      let o = Load.run (load_cfg path ~connections:2 ~seed:3) in
      let bench =
        Load.to_bench ~date:"2026-08-08T00:00:00Z" ~commit:"test" ~mode:"load" o
      in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "sf-load-bench-%d-%d" (Unix.getpid ()) !temp_counter)
      in
      Unix.mkdir dir 0o755;
      let file = Filename.concat dir "BENCH_load.json" in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists file then Sys.remove file;
          if Sys.file_exists dir then Unix.rmdir dir)
        (fun () ->
          Bench_file.write ~path:file bench;
          match Bench_file.read ~path:file with
          | Error msg -> Alcotest.failf "bench file invalid: %s" msg
          | Ok t ->
            Alcotest.(check (list string))
              "both sample sets present"
              [ "serve/load: request latency"; "serve/load: service cost" ]
              (Bench_file.names t);
            let cost = Option.get (Bench_file.find t "serve/load: service cost") in
            Alcotest.(check int) "one cost sample per reply" o.Load.o_replies
              (Array.length cost.Bench_file.samples)))

let test_open_loop_poisson () =
  (* a paced open-loop run completes and reports sane numbers *)
  with_server ~jobs:2 (fun path _ ->
      let cfg =
        Load.config ~rate:400. ~connections:2
          ~mix:[ ("high-degree", 1.) ]
          ~budget:100 ~timeout:30. ~seed:5 ~requests:40 (Wire.Unix_path path)
      in
      let o = Load.run cfg in
      Alcotest.(check int) "all answered" 40 o.Load.o_replies;
      Alcotest.(check bool) "took at least the schedule span" true
        (o.Load.o_elapsed_s > 0.04);
      Alcotest.(check int) "latencies recorded" 40 (Array.length o.Load.o_wall_ns);
      Array.iter
        (fun ns ->
          Alcotest.(check bool) "latency non-negative and finite" true
            (Float.is_finite ns && ns >= 0.))
        o.Load.o_wall_ns)

let test_load_rejects_bad_config () =
  let ep = Wire.Unix_path "/tmp/never-used.sock" in
  List.iter
    (fun f ->
      match f () with
      | (_ : Load.config) -> Alcotest.fail "accepted a bad config"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Load.config ~seed:1 ~requests:0 ep);
      (fun () -> Load.config ~seed:1 ~requests:1 ~connections:0 ep);
      (fun () -> Load.config ~seed:1 ~requests:1 ~rate:(-1.) ep);
      (fun () -> Load.config ~seed:1 ~requests:1 ~mix:[] ep);
      (fun () -> Load.config ~seed:1 ~requests:1 ~mix:[ ("x", 0.) ] ep);
      (fun () -> Load.config ~seed:1 ~requests:1 ~budget:0 ep);
    ]

(* ---- the capacity ramp, against a synthetic probe ------------------- *)

(* ramp never opens sockets itself — the probe closure does — so the
   climb/bisect logic is testable as a pure function of a simulated
   server with a known capacity cliff *)
let fake_outcome ?(errors = 0) ?(missing = 0) ~lat_ms n =
  let replies = max 0 (n - missing - errors) in
  {
    Load.o_requests = n;
    o_connections = 1;
    o_rate = 0.;
    o_seed = 1;
    o_n_vertices = 100;
    o_sent = n;
    o_replies = replies;
    o_errors = errors;
    o_missing = missing;
    o_found = replies;
    o_exhausted = 0;
    o_gave_up = 0;
    o_mix_counts = [ ("high-degree", n) ];
    o_costs = Array.make replies 10;
    o_wall_ns = Array.make replies (lat_ms *. 1e6);
    o_reply_crc = 0l;
    o_elapsed_s = 1.;
    o_achieved_rate = float_of_int replies;
  }

let test_ramp_brackets_capacity () =
  (* a hard cliff at 1000 req/s: fast below, hopeless above *)
  let offered = ref [] in
  let probe ~rate =
    offered := rate :: !offered;
    if rate <= 1000. then fake_outcome ~lat_ms:5. 20
    else fake_outcome ~lat_ms:200. 20
  in
  let r = Load.ramp ~start:50. ~factor:2. ~p99_ms:50. ~max_steps:10 ~bisect:2 probe in
  (* geometric climb 50..800 holds, 1600 blows, two geometric-mean
     bisection rounds tighten the bracket around the cliff *)
  (match r.Load.r_capacity with
  | Some c ->
    Alcotest.(check bool) "capacity above last good climb" true (c >= 800.);
    Alcotest.(check bool) "capacity below the cliff" true (c <= 1000.)
  | None -> Alcotest.fail "no capacity found");
  (match r.Load.r_ceiling with
  | Some c ->
    Alcotest.(check bool) "ceiling above the cliff" true (c > 1000.);
    Alcotest.(check bool) "ceiling tightened by bisection" true (c < 1600.)
  | None -> Alcotest.fail "no ceiling found");
  Alcotest.(check int) "6 climb + 2 bisect probes" 8 (List.length r.Load.r_steps);
  (* the climb really was geometric from start *)
  (match List.rev !offered with
  | a :: b :: c :: _ ->
    Alcotest.(check (float 1e-9)) "first rate" 50. a;
    Alcotest.(check (float 1e-9)) "second rate" 100. b;
    Alcotest.(check (float 1e-9)) "third rate" 200. c
  | _ -> Alcotest.fail "too few probes");
  (* the report renders every step and a capacity line *)
  let report = Load.ramp_report r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report mentions capacity" true (contains report "capacity")

let test_ramp_edge_cases () =
  (* even the first rate fails: no capacity, ceiling = start *)
  let r = Load.ramp ~start:50. ~p99_ms:50. (fun ~rate:_ -> fake_outcome ~lat_ms:200. 10) in
  Alcotest.(check bool) "no capacity" true (r.Load.r_capacity = None);
  Alcotest.(check bool) "ceiling is the first rate" true (r.Load.r_ceiling = Some 50.);
  (* nothing fails within max_steps: capacity is the last climb, no ceiling *)
  let r = Load.ramp ~start:50. ~factor:2. ~p99_ms:50. ~max_steps:3 (fun ~rate:_ -> fake_outcome ~lat_ms:5. 10) in
  Alcotest.(check bool) "capacity is the last climb" true (r.Load.r_capacity = Some 200.);
  Alcotest.(check bool) "no ceiling" true (r.Load.r_ceiling = None);
  Alcotest.(check int) "exactly max_steps probes" 3 (List.length r.Load.r_steps);
  (* errors and missing replies fail a step regardless of latency *)
  let r = Load.ramp ~start:50. ~bisect:0 (fun ~rate ->
      if rate <= 50. then fake_outcome ~lat_ms:5. 10
      else fake_outcome ~errors:1 ~lat_ms:5. 10)
  in
  Alcotest.(check bool) "errors blow the step" true (r.Load.r_ceiling = Some 100.);
  (* a step with no replies at all is p99 = infinity, a failure *)
  let r = Load.ramp ~start:50. ~bisect:0 (fun ~rate:_ -> fake_outcome ~missing:10 ~lat_ms:5. 10) in
  Alcotest.(check bool) "silent server fails the first step" true (r.Load.r_capacity = None);
  (match r.Load.r_steps with
  | [ s ] -> Alcotest.(check bool) "p99 is infinite" true (s.Load.r_p99_ms = infinity)
  | _ -> Alcotest.fail "expected one step");
  (* validation *)
  List.iter
    (fun f -> match f () with
      | (_ : Load.ramp_result) -> Alcotest.fail "bad ramp config accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Load.ramp ~start:0. (fun ~rate:_ -> fake_outcome ~lat_ms:1. 1));
      (fun () -> Load.ramp ~factor:1. (fun ~rate:_ -> fake_outcome ~lat_ms:1. 1));
      (fun () -> Load.ramp ~p99_ms:0. (fun ~rate:_ -> fake_outcome ~lat_ms:1. 1));
      (fun () -> Load.ramp ~max_steps:0 (fun ~rate:_ -> fake_outcome ~lat_ms:1. 1));
      (fun () -> Load.ramp ~bisect:(-1) (fun ~rate:_ -> fake_outcome ~lat_ms:1. 1));
    ]

let suite =
  [
    ("endpoint parsing", `Quick, test_endpoint_parsing);
    ("codec: request round trips", `Quick, test_request_roundtrip);
    ("codec: response round trips", `Quick, test_response_roundtrip);
    QCheck_alcotest.to_alcotest qcheck_search_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_reply_roundtrip;
    ("codec: truncations rejected", `Quick, test_decode_rejects_truncations);
    ("codec: bit flips rejected", `Quick, test_decode_rejects_bit_flips);
    ("codec: trailing bytes rejected", `Quick, test_decode_rejects_trailing_bytes);
    ("framing: pop state machine", `Quick, test_frame_pop);
    ("e2e: ping and stats", `Quick, test_ping_and_stats);
    ("e2e: deterministic replies across jobs", `Slow, test_deterministic_replies_across_jobs);
    ("e2e: search reply sanity", `Quick, test_search_reply_is_plausible);
    ("e2e: validation errors", `Quick, test_request_validation_errors);
    ("robustness: mid-frame disconnect", `Quick, test_mid_frame_disconnect);
    ("robustness: garbage payload", `Quick, test_garbage_payload_keeps_connection);
    ("robustness: oversized frame", `Quick, test_oversized_frame_drops_connection_only);
    ("robustness: socket claim lifecycle", `Quick, test_socket_claim_lifecycle);
    ("robustness: shutdown request", `Quick, test_shutdown_request);
    ("load: determinism", `Slow, test_load_determinism);
    ("load: bench file validates", `Quick, test_load_bench_file_validates);
    ("load: open loop", `Quick, test_open_loop_poisson);
    ("load: config validation", `Quick, test_load_rejects_bad_config);
    ("ramp: brackets a capacity cliff", `Quick, test_ramp_brackets_capacity);
    ("ramp: edge cases and validation", `Quick, test_ramp_edge_cases);
  ]
