(* Tests for the performance-trajectory subsystem: the BENCH_<n>.json
   schema, the statistical comparison engine, the history renderer and
   the CI gate. The synthetic-regression fixtures pin the contract the
   CI perf job relies on: a 50 % slowdown fails the gate, a
   self-comparison passes it, and sub-noise-floor drift never flags. *)

module Bench_file = Sf_perf.Bench_file
module Compare = Sf_perf.Compare
module Gate = Sf_perf.Gate
module History = Sf_perf.History
module Rng = Sf_prng.Rng

let temp_counter = ref 0

let with_temp_dir body =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-perf-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> body dir)

let host =
  { Bench_file.hostname = "testhost"; os = "Unix"; word_size = 64; ocaml = "5.1.1" }

let mk_file ?(commit = "abc123") ?(mode = "quick") ?(jobs = 1) ?host:(h = host) benchmarks =
  {
    Bench_file.commit;
    date = "2026-08-06T00:00:00Z";
    host = h;
    jobs;
    seed = 1;
    mode;
    benchmarks =
      List.map
        (fun (name, samples) -> { Bench_file.name; unit_label = "ns"; samples })
        benchmarks;
  }

(* samples around [center] with a deterministic +/-[spread] fraction
   of uniform jitter — the shape of real timing noise minus the tail *)
let jittered rng ~center ~spread ~n =
  Array.init n (fun _ ->
      center *. (1. -. spread +. (2. *. spread *. Rng.unit_float rng)))

(* --- Bench_file ---------------------------------------------------------- *)

let test_schema_roundtrip () =
  let file =
    mk_file
      [
        ("sf/gen: mori tree (T1)", [| 100.5; 101.25; 99.75 |]);
        ("exp.T3", [| 2.5e9 |]);
        ({|tricky "name", with csv chars|}, [| 0.; 1.5 |]);
      ]
  in
  match Bench_file.of_json (Bench_file.to_json file) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok back ->
    Alcotest.(check string) "commit" file.Bench_file.commit back.Bench_file.commit;
    Alcotest.(check string) "date" file.Bench_file.date back.Bench_file.date;
    Alcotest.(check string) "mode" file.Bench_file.mode back.Bench_file.mode;
    Alcotest.(check int) "jobs" file.Bench_file.jobs back.Bench_file.jobs;
    Alcotest.(check int) "seed" file.Bench_file.seed back.Bench_file.seed;
    Alcotest.(check string) "hostname" "testhost" back.Bench_file.host.Bench_file.hostname;
    Alcotest.(check (list string)) "names preserved in order" (Bench_file.names file)
      (Bench_file.names back);
    List.iter2
      (fun (a : Bench_file.benchmark) (b : Bench_file.benchmark) ->
        Alcotest.(check (array (float 1e-9)))
          (Printf.sprintf "samples of %s" a.Bench_file.name)
          a.Bench_file.samples b.Bench_file.samples)
      file.Bench_file.benchmarks back.Bench_file.benchmarks

let contains ~needle hay =
  let nn = String.length needle and nh = String.length hay in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_rejects name json expected_fragment =
  match Bench_file.of_json json with
  | Ok _ -> Alcotest.failf "%s: accepted invalid document" name
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error mentions %S (got %S)" name expected_fragment msg)
      true
      (contains ~needle:expected_fragment msg)

let render_with ~schema benchmarks =
  (* swap the schema id textually: the writer always emits the real one *)
  let json = Bench_file.to_json (mk_file benchmarks) in
  let marker = Printf.sprintf "%S" Bench_file.schema_id in
  let idx =
    let rec find i =
      if i + String.length marker > String.length json then raise Not_found
      else if String.sub json i (String.length marker) = marker then i
      else find (i + 1)
    in
    find 0
  in
  String.sub json 0 idx
  ^ Printf.sprintf "%S" schema
  ^ String.sub json
      (idx + String.length marker)
      (String.length json - idx - String.length marker)

let test_of_json_validation () =
  check_rejects "garbage" "not json at all" "not valid JSON";
  check_rejects "wrong schema"
    (render_with ~schema:"scalefree.bench/999" [ ("a", [| 1. |]) ])
    "unsupported schema";
  check_rejects "missing commit"
    {|{"schema": "scalefree.bench/1", "date": "d"}|} {|"commit"|};
  let doc ?(jobs = 1) ?(mode = {|"quick"|}) benches =
    {|{"schema": "scalefree.bench/1", "commit": "c", "date": "d",
       "host": {"hostname": "h", "os": "Unix", "word_size": 64, "ocaml": "5.1.1"},
       "jobs": |} ^ string_of_int jobs ^ {|, "seed": 1, "mode": |} ^ mode
    ^ {|, "benchmarks": |} ^ benches ^ "}"
  in
  check_rejects "empty samples" (doc {|[{"name": "a", "unit": "ns", "samples": []}]|})
    "has no samples";
  check_rejects "negative sample"
    (doc {|[{"name": "a", "unit": "ns", "samples": [1.0, -2.0]}]|})
    "non-finite or negative";
  check_rejects "duplicate names"
    (doc
       {|[{"name": "a", "unit": "ns", "samples": [1.0]},
          {"name": "a", "unit": "ns", "samples": [2.0]}]|})
    "duplicate benchmark name";
  check_rejects "empty name" (doc {|[{"name": "", "unit": "ns", "samples": [1.0]}]|})
    "empty benchmark name";
  check_rejects "bad jobs" (doc ~jobs:0 "[]") "jobs must be positive";
  check_rejects "empty mode" (doc ~mode:{|""|} "[]") "empty mode";
  match Bench_file.of_json (doc "[]") with
  | Ok f -> Alcotest.(check int) "empty benchmark list is legal" 0 (List.length f.Bench_file.benchmarks)
  | Error msg -> Alcotest.failf "minimal valid doc rejected: %s" msg

let test_filenames () =
  Alcotest.(check string) "filename pads" "BENCH_0007.json" (Bench_file.filename 7);
  Alcotest.(check string) "filename wide" "BENCH_12345.json" (Bench_file.filename 12345);
  Alcotest.check_raises "filename rejects zero"
    (Invalid_argument "Bench_file.filename: need a positive index") (fun () ->
      ignore (Bench_file.filename 0));
  Alcotest.(check (option int)) "inverse" (Some 7)
    (Bench_file.index_of_filename "BENCH_0007.json");
  Alcotest.(check (option int)) "no padding required" (Some 123)
    (Bench_file.index_of_filename "BENCH_123.json");
  Alcotest.(check (option int)) "rejects zero" None
    (Bench_file.index_of_filename "BENCH_0000.json");
  Alcotest.(check (option int)) "rejects other files" None
    (Bench_file.index_of_filename "bench.json");
  Alcotest.(check (option int)) "rejects non-digits" None
    (Bench_file.index_of_filename "BENCH_00x7.json");
  Alcotest.(check (option int)) "rejects signs" None
    (Bench_file.index_of_filename "BENCH_+1.json")

let test_history_dir_listing () =
  with_temp_dir (fun dir ->
      Alcotest.(check int) "empty dir starts at 1" 1 (Bench_file.next_index ~dir);
      Alcotest.(check int) "missing dir starts at 1" 1
        (Bench_file.next_index ~dir:(Filename.concat dir "nope"));
      let write i =
        Bench_file.write
          ~path:(Filename.concat dir (Bench_file.filename i))
          (mk_file [ ("a", [| float_of_int i |]) ])
      in
      write 1;
      write 3;
      (* an unrelated file must be ignored *)
      let oc = open_out (Filename.concat dir "README.txt") in
      output_string oc "not a bench file";
      close_out oc;
      Alcotest.(check (list int)) "indices ascending" [ 1; 3 ]
        (List.map fst (Bench_file.list_dir ~dir));
      Alcotest.(check int) "next skips the gap" 4 (Bench_file.next_index ~dir))

(* --- Compare -------------------------------------------------------------- *)

let policy = Compare.default_policy

let test_bootstrap_ci () =
  let rng = Rng.of_seed 42 in
  let xs = jittered rng ~center:1000. ~spread:0.05 ~n:60 in
  let lo, hi = Compare.bootstrap_median_ci policy xs in
  let lo2, hi2 = Compare.bootstrap_median_ci policy xs in
  Alcotest.(check (float 1e-12)) "deterministic lo" lo lo2;
  Alcotest.(check (float 1e-12)) "deterministic hi" hi hi2;
  let median = Sf_stats.Quantile.median xs in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.1f, %.1f] brackets the median %.1f" lo hi median)
    true
    (lo <= median && median <= hi && lo < hi);
  Alcotest.(check bool) "CI is tight for low-noise samples" true
    ((hi -. lo) /. median < 0.05);
  Alcotest.(check (pair (float 0.) (float 0.))) "single sample collapses" (7., 7.)
    (Compare.bootstrap_median_ci policy [| 7. |]);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Compare.bootstrap_median_ci: empty sample") (fun () ->
      ignore (Compare.bootstrap_median_ci policy [||]))

let test_compare_identical_unchanged () =
  let rng = Rng.of_seed 7 in
  let xs = jittered rng ~center:1000. ~spread:0.05 ~n:50 in
  let r = Compare.samples policy ~name:"x" ~base:xs ~cand:(Array.copy xs) in
  Alcotest.(check bool) "identical samples are unchanged" true
    (r.Compare.verdict = Compare.Unchanged);
  Alcotest.(check (float 1e-9)) "zero change" 0. r.Compare.change_pct;
  Alcotest.(check bool) (Printf.sprintf "p=%.3f is large" r.Compare.p) true
    (r.Compare.p > 0.5)

let test_compare_regression_detected () =
  (* the pinned CI fixture: a 50 % slowdown with realistic jitter must
     come back Regressed with an effect size near +50 % *)
  let rng = Rng.of_seed 11 in
  let base = jittered rng ~center:1000. ~spread:0.05 ~n:50 in
  let cand = jittered rng ~center:1500. ~spread:0.05 ~n:50 in
  let r = Compare.samples policy ~name:"slow" ~base ~cand in
  Alcotest.(check bool)
    (Printf.sprintf "50%% slowdown flags (p=%.4g, change=%+.1f%%)" r.Compare.p
       r.Compare.change_pct)
    true
    (r.Compare.verdict = Compare.Regressed);
  Alcotest.(check bool) "change near +50%" true
    (r.Compare.change_pct > 40. && r.Compare.change_pct < 60.);
  Alcotest.(check bool) "significant" true (r.Compare.p < policy.Compare.alpha)

let test_compare_improvement_detected () =
  let rng = Rng.of_seed 13 in
  let base = jittered rng ~center:1500. ~spread:0.05 ~n:50 in
  let cand = jittered rng ~center:1000. ~spread:0.05 ~n:50 in
  let r = Compare.samples policy ~name:"fast" ~base ~cand in
  Alcotest.(check bool) "speedup flags as improved" true
    (r.Compare.verdict = Compare.Improved);
  Alcotest.(check bool) "change near -33%" true
    (r.Compare.change_pct < -25. && r.Compare.change_pct > -45.)

let test_noise_floor_suppresses_small_drift () =
  (* a 1 % drift measured so precisely it is statistically unambiguous
     must still come back Unchanged: the floor is a magnitude
     requirement, not a confidence one *)
  let rng = Rng.of_seed 17 in
  let base = jittered rng ~center:1000. ~spread:0.002 ~n:200 in
  let cand = jittered rng ~center:1010. ~spread:0.002 ~n:200 in
  let r = Compare.samples policy ~name:"drift" ~base ~cand in
  Alcotest.(check bool)
    (Printf.sprintf "p=%.2e yet verdict stays unchanged" r.Compare.p)
    true
    (r.Compare.verdict = Compare.Unchanged);
  Alcotest.(check bool) "the drift itself is real" true
    (r.Compare.p < 0.01 && r.Compare.change_pct > 0.5)

let test_compare_files_set_difference () =
  let rng = Rng.of_seed 19 in
  let s () = jittered rng ~center:100. ~spread:0.05 ~n:20 in
  let base = mk_file [ ("shared", s ()); ("lost", s ()) ] in
  let cand = mk_file [ ("shared", s ()); ("new", s ()) ] in
  let c = Compare.files policy ~base ~cand in
  Alcotest.(check (list string)) "compared" [ "shared" ]
    (List.map (fun (r : Compare.result) -> r.Compare.name) c.Compare.results);
  Alcotest.(check (list string)) "only base" [ "lost" ] c.Compare.only_base;
  Alcotest.(check (list string)) "only cand" [ "new" ] c.Compare.only_cand

let test_render_mentions_verdicts () =
  let rng = Rng.of_seed 23 in
  let base = jittered rng ~center:1000. ~spread:0.05 ~n:50 in
  let cand = jittered rng ~center:1500. ~spread:0.05 ~n:50 in
  let r = Compare.samples policy ~name:"hot path" ~base ~cand in
  let table = Compare.render [ r ] in
  Alcotest.(check bool) "names the benchmark" true (contains ~needle:"hot path" table);
  Alcotest.(check bool) "shouts the regression" true (contains ~needle:"REGRESSED" table)

(* --- Gate ----------------------------------------------------------------- *)

let gate_policy = { Gate.compare = policy; max_regression_pct = 25. }

let test_gate_fails_on_regression () =
  let rng = Rng.of_seed 29 in
  let base = mk_file [ ("hot", jittered rng ~center:1000. ~spread:0.05 ~n:50) ] in
  let cand = mk_file [ ("hot", jittered rng ~center:1500. ~spread:0.05 ~n:50) ] in
  let o = Gate.run gate_policy ~base ~cand in
  Alcotest.(check bool) "gate fails" false (Gate.passed o);
  Alcotest.(check (list string)) "failure names the benchmark" [ "hot" ]
    (List.map (fun (r : Compare.result) -> r.Compare.name) o.Gate.failures);
  Alcotest.(check bool) "render says FAIL" true
    (contains ~needle:"perf gate: FAIL" (Gate.render o))

let test_gate_tolerates_capped_regression () =
  (* a confirmed regression below max_regression_pct is reported in
     the table but does not fail the gate *)
  let rng = Rng.of_seed 31 in
  let base = mk_file [ ("warm", jittered rng ~center:1000. ~spread:0.01 ~n:50) ] in
  let cand = mk_file [ ("warm", jittered rng ~center:1100. ~spread:0.01 ~n:50) ] in
  let o = Gate.run gate_policy ~base ~cand in
  Alcotest.(check bool) "10% < 25% cap passes" true (Gate.passed o);
  Alcotest.(check int) "no failures recorded" 0 (List.length o.Gate.failures)

let test_gate_passes_self_comparison () =
  let rng = Rng.of_seed 37 in
  let file =
    mk_file
      [
        ("a", jittered rng ~center:1000. ~spread:0.05 ~n:40);
        ("b", jittered rng ~center:5e6 ~spread:0.05 ~n:40);
      ]
  in
  let o = Gate.run gate_policy ~base:file ~cand:file in
  Alcotest.(check bool) "self comparison passes" true (Gate.passed o);
  Alcotest.(check bool) "render says PASS" true
    (contains ~needle:"perf gate: PASS" (Gate.render o))

let test_gate_fails_on_missing_benchmark () =
  let rng = Rng.of_seed 41 in
  let s () = jittered rng ~center:100. ~spread:0.05 ~n:20 in
  let base = mk_file [ ("kept", s ()); ("lost", s ()) ] in
  let cand = mk_file [ ("kept", s ()) ] in
  let o = Gate.run gate_policy ~base ~cand in
  Alcotest.(check bool) "lost benchmark fails the gate" false (Gate.passed o);
  Alcotest.(check (list string)) "missing is named" [ "lost" ] o.Gate.missing

let test_gate_fails_on_mode_mismatch () =
  let rng = Rng.of_seed 43 in
  let s () = jittered rng ~center:100. ~spread:0.05 ~n:20 in
  let base = mk_file ~mode:"quick" [ ("a", s ()) ] in
  let cand = mk_file ~mode:"full" [ ("a", s ()) ] in
  let o = Gate.run gate_policy ~base ~cand in
  Alcotest.(check bool) "quick vs full fails" false (Gate.passed o);
  Alcotest.(check (option (pair string string))) "mismatch recorded"
    (Some ("quick", "full")) o.Gate.mode_mismatch

let test_gate_host_mismatch_informational () =
  let rng = Rng.of_seed 47 in
  let s () = jittered rng ~center:100. ~spread:0.05 ~n:20 in
  let other = { host with Bench_file.hostname = "ci-runner-9" } in
  let base = mk_file [ ("a", s ()) ] in
  let cand = mk_file ~host:other [ ("a", s ()) ] in
  let o = Gate.run gate_policy ~base ~cand in
  Alcotest.(check bool) "different host still passes" true (Gate.passed o);
  Alcotest.(check bool) "but is reported" true (o.Gate.host_mismatch <> None);
  Alcotest.(check bool) "render notes it" true
    (contains ~needle:"hosts differ" (Gate.render o))

(* --- History -------------------------------------------------------------- *)

let test_history_load_and_series () =
  with_temp_dir (fun dir ->
      let write i median =
        Bench_file.write
          ~path:(Filename.concat dir (Bench_file.filename i))
          (mk_file ~commit:(Printf.sprintf "c%d" i)
             [ ("hot", [| median |]); (Printf.sprintf "only%d" i, [| 1. |]) ])
      in
      write 1 100.;
      write 2 120.;
      write 3 90.;
      (* a corrupt file must surface as an error, not poison the rest *)
      let oc = open_out (Filename.concat dir "BENCH_0004.json") in
      output_string oc "{ definitely not a bench file";
      close_out oc;
      let entries, errors = History.load ~dir in
      Alcotest.(check (list int)) "valid entries in order" [ 1; 2; 3 ]
        (List.map (fun (e : History.entry) -> e.History.index) entries);
      Alcotest.(check int) "one error" 1 (List.length errors);
      Alcotest.(check bool) "error names the file" true
        (contains ~needle:"BENCH_0004.json" (List.hd errors));
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "series follows the medians"
        [ (1., 100.); (2., 120.); (3., 90.) ]
        (History.series entries "hot");
      Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
        "sparse series only has its recordings" [ (2., 1.) ]
        (History.series entries "only2");
      Alcotest.(check (list string)) "names are the sorted union"
        [ "hot"; "only1"; "only2"; "only3" ]
        (History.names entries);
      let table = History.trend_table entries in
      Alcotest.(check bool) "table names the benchmark" true (contains ~needle:"hot" table);
      Alcotest.(check bool) "table shows the net change" true
        (contains ~needle:"-10.0%" table);
      let plot = History.trend_plot ~width:40 ~height:10 ~only:[ "hot" ] entries in
      Alcotest.(check bool) "plot labels the axis" true
        (contains ~needle:"bench file index" plot))

let test_sparkline () =
  Alcotest.(check string) "empty" "" (History.sparkline []);
  Alcotest.(check string) "flat series" "---" (History.sparkline [ 5.; 5.; 5. ]);
  Alcotest.(check string) "singleton" "-" (History.sparkline [ 2. ]);
  let s = History.sparkline [ 0.; 50.; 100. ] in
  Alcotest.(check int) "one glyph per value" 3 (String.length s);
  Alcotest.(check char) "min maps to the low glyph" '_' s.[0];
  Alcotest.(check char) "max maps to the high glyph" '@' s.[2]

(* --- the committed baseline ----------------------------------------------- *)

(* dune runtest runs from _build/default/test (where the committed
   history is a declared dep one level up); dune exec from the project
   root — probe both so either invocation works *)
let baseline_path =
  let candidates = [ "../bench/history/BENCH_0002.json"; "bench/history/BENCH_0002.json" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let test_committed_baseline_valid () =
  match Bench_file.read ~path:baseline_path with
  | Error msg -> Alcotest.failf "committed baseline invalid: %s" msg
  | Ok f ->
    Alcotest.(check bool) "has benchmarks" true (List.length f.Bench_file.benchmarks > 0);
    Alcotest.(check string) "recorded in quick mode" "quick" f.Bench_file.mode;
    List.iter
      (fun (b : Bench_file.benchmark) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s has samples" b.Bench_file.name)
          true
          (Array.length b.Bench_file.samples > 0))
      f.Bench_file.benchmarks;
    (* the gate's self-comparison contract holds on the real artifact *)
    let o = Gate.run Gate.default_policy ~base:f ~cand:f in
    Alcotest.(check bool) "baseline passes against itself" true (Gate.passed o)

let test_committed_baseline_renders () =
  match Bench_file.read ~path:baseline_path with
  | Error msg -> Alcotest.failf "committed baseline invalid: %s" msg
  | Ok f ->
    let entries = [ { History.index = 1; path = baseline_path; file = f } ] in
    let table = History.trend_table entries in
    List.iter
      (fun name ->
        Alcotest.(check bool) (Printf.sprintf "trend table rows %s" name) true
          (contains ~needle:name table))
      (Bench_file.names f)

let suite =
  [
    ("bench file schema round-trip", `Quick, test_schema_roundtrip);
    ("bench file validation", `Quick, test_of_json_validation);
    ("bench file naming", `Quick, test_filenames);
    ("history directory listing", `Quick, test_history_dir_listing);
    ("bootstrap confidence interval", `Quick, test_bootstrap_ci);
    ("identical samples unchanged", `Quick, test_compare_identical_unchanged);
    ("regression detected", `Quick, test_compare_regression_detected);
    ("improvement detected", `Quick, test_compare_improvement_detected);
    ("noise floor suppresses drift", `Quick, test_noise_floor_suppresses_small_drift);
    ("file comparison set difference", `Quick, test_compare_files_set_difference);
    ("comparison table renders", `Quick, test_render_mentions_verdicts);
    ("gate fails on 50% regression", `Quick, test_gate_fails_on_regression);
    ("gate tolerates capped regression", `Quick, test_gate_tolerates_capped_regression);
    ("gate passes self-comparison", `Quick, test_gate_passes_self_comparison);
    ("gate fails on missing benchmark", `Quick, test_gate_fails_on_missing_benchmark);
    ("gate fails on mode mismatch", `Quick, test_gate_fails_on_mode_mismatch);
    ("gate host mismatch informational", `Quick, test_gate_host_mismatch_informational);
    ("history load and series", `Quick, test_history_load_and_series);
    ("sparkline", `Quick, test_sparkline);
    ("committed baseline valid", `Quick, test_committed_baseline_valid);
    ("committed baseline renders", `Quick, test_committed_baseline_renders);
  ]
