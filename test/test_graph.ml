(* Tests for the sf_graph substrate: the multigraph, its undirected
   view, traversal, permutation action, metrics and IO. *)

module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module Vec = Sf_graph.Vec
module Traversal = Sf_graph.Traversal
module Permute = Sf_graph.Permute
module Metrics = Sf_graph.Metrics
module Gio = Sf_graph.Gio
module Subgraph = Sf_graph.Subgraph
module Rng = Sf_prng.Rng

(* --- Vec ------------------------------------------------------------ *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 7);
  Alcotest.(check int) "pop" (99 * 99) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.(check int) "fold sum" (Vec.fold ( + ) 0 v) (List.fold_left ( + ) 0 (Vec.to_list v));
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let test_vec_copy_independent () =
  let v = Vec.of_array [| 1; 2 |] in
  let w = Vec.copy v in
  Vec.push w 3;
  Vec.set w 0 9;
  Alcotest.(check int) "original unchanged" 1 (Vec.get v 0);
  Alcotest.(check int) "original length" 2 (Vec.length v)

(* --- Digraph ---------------------------------------------------------- *)

let diamond () =
  (* 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4, plus a self-loop at 4 and a
     parallel 1 -> 2 *)
  Digraph.of_edges ~n:4 [ (1, 2); (1, 3); (2, 4); (3, 4); (4, 4); (1, 2) ]

let test_digraph_counts () =
  let g = diamond () in
  Alcotest.(check int) "vertices" 4 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 6 (Digraph.n_edges g);
  Alcotest.(check int) "out 1" 3 (Digraph.out_degree g 1);
  Alcotest.(check int) "in 2" 2 (Digraph.in_degree g 2);
  Alcotest.(check int) "self-loop total degree counts twice" 4 (Digraph.degree g 4)

let test_digraph_edge_ids_are_timestamps () =
  let g = diamond () in
  let e = Digraph.edge g 4 in
  Alcotest.(check int) "src" 4 e.Digraph.src;
  Alcotest.(check int) "dst" 4 e.Digraph.dst;
  List.iteri
    (fun i e -> Alcotest.(check int) "insertion order" i e.Digraph.id)
    (Digraph.edges g)

let test_digraph_validation () =
  let g = diamond () in
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Digraph.add_edge: vertex out of range")
    (fun () -> ignore (Digraph.add_edge g ~src:1 ~dst:9));
  Alcotest.check_raises "bad edge id" (Invalid_argument "Digraph.edge: id out of range")
    (fun () -> ignore (Digraph.edge g 100))

let test_digraph_copy_independent () =
  let g = diamond () in
  let h = Digraph.copy g in
  ignore (Digraph.add_vertex h);
  ignore (Digraph.add_edge h ~src:5 ~dst:1);
  Alcotest.(check int) "original vertices" 4 (Digraph.n_vertices g);
  Alcotest.(check int) "original edges" 6 (Digraph.n_edges g);
  Alcotest.(check bool) "copy equal before mutation" true
    (Digraph.equal_structure g (Digraph.copy g))

let test_equal_structure_ignores_order () =
  let g1 = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
  let g2 = Digraph.of_edges ~n:3 [ (2, 3); (1, 2) ] in
  Alcotest.(check bool) "order irrelevant" true (Digraph.equal_structure g1 g2);
  let g3 = Digraph.of_edges ~n:3 [ (1, 2); (3, 2) ] in
  Alcotest.(check bool) "direction matters" false (Digraph.equal_structure g1 g3);
  let g4 = Digraph.of_edges ~n:3 [ (1, 2); (2, 3); (2, 3) ] in
  Alcotest.(check bool) "multiplicity matters" false (Digraph.equal_structure g1 g4)

let test_canonical_key_agrees_with_equality () =
  let g1 = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
  let g2 = Digraph.of_edges ~n:3 [ (2, 3); (1, 2) ] in
  let g3 = Digraph.of_edges ~n:3 [ (1, 2); (3, 2) ] in
  Alcotest.(check string) "equal graphs same key" (Digraph.canonical_key g1)
    (Digraph.canonical_key g2);
  Alcotest.(check bool) "different graphs different keys" true
    (Digraph.canonical_key g1 <> Digraph.canonical_key g3)

(* --- Ugraph ----------------------------------------------------------- *)

let test_ugraph_incidence () =
  let g = diamond () in
  let u = Ugraph.of_digraph g in
  Alcotest.(check int) "n" 4 (Ugraph.n_vertices u);
  Alcotest.(check int) "m" 6 (Ugraph.n_edges u);
  (* vertex 1: out-edges to 2, 3, 2 -> three handles *)
  Alcotest.(check int) "deg 1" 3 (Ugraph.degree u 1);
  (* vertex 4: in from 2 and 3, self-loop appears once *)
  Alcotest.(check int) "deg 4 (self-loop once)" 3 (Ugraph.degree u 4);
  Alcotest.(check int) "max degree" 3 (Ugraph.max_degree u)

let test_ugraph_other_endpoint () =
  let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 2) ] in
  let u = Ugraph.of_digraph g in
  Alcotest.(check int) "far endpoint" 2 (Ugraph.other_endpoint u ~edge_id:0 1);
  Alcotest.(check int) "reverse direction" 1 (Ugraph.other_endpoint u ~edge_id:0 2);
  Alcotest.(check int) "self-loop maps to itself" 2 (Ugraph.other_endpoint u ~edge_id:1 2);
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Ugraph.other_endpoint: vertex is not an endpoint") (fun () ->
      ignore (Ugraph.other_endpoint u ~edge_id:0 3))

let test_ugraph_neighbors () =
  let g = diamond () in
  let u = Ugraph.of_digraph g in
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "neighbors of 1" [ 2; 2; 3 ] (sorted (Ugraph.neighbors u 1));
  Alcotest.(check (list int)) "neighbors of 4 include itself once" [ 2; 3; 4 ]
    (sorted (Ugraph.neighbors u 4))

(* --- Traversal --------------------------------------------------------- *)

let path_graph n =
  Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i + 1, i + 2)))

let test_bfs_distances_on_path () =
  let u = Ugraph.of_digraph (path_graph 6) in
  let dist = Traversal.bfs_distances u ~source:1 in
  Array.iteri (fun i d -> Alcotest.(check int) (Printf.sprintf "dist to %d" (i + 1)) i d) dist

let test_bfs_unreachable () =
  let g = Digraph.of_edges ~n:4 [ (1, 2) ] in
  let dist = Traversal.bfs_distances (Ugraph.of_digraph g) ~source:1 in
  Alcotest.(check int) "unreachable" (-1) dist.(2);
  Alcotest.(check int) "reachable" 1 dist.(1)

let test_shortest_path () =
  let g = Digraph.of_edges ~n:5 [ (1, 2); (2, 3); (3, 4); (1, 5); (5, 4) ] in
  let u = Ugraph.of_digraph g in
  match Traversal.shortest_path u ~src:1 ~dst:4 with
  | Some path ->
    Alcotest.(check int) "length 3 vertices" 3 (List.length path);
    Alcotest.(check int) "starts at src" 1 (List.hd path);
    Alcotest.(check int) "ends at dst" 4 (List.nth path 2)
  | None -> Alcotest.fail "path must exist"

let test_components () =
  let g = Digraph.of_edges ~n:6 [ (1, 2); (2, 3); (4, 5) ] in
  let u = Ugraph.of_digraph g in
  let sizes = Traversal.component_sizes u in
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "component sizes" [| 1; 2; 3 |] sorted;
  Alcotest.(check bool) "not connected" false (Traversal.is_connected u);
  Alcotest.(check (list int)) "largest component" [ 1; 2; 3 ] (Traversal.largest_component u)

let test_diameter () =
  let u = Ugraph.of_digraph (path_graph 8) in
  Alcotest.(check int) "path diameter" 7 (Traversal.diameter_exact u);
  let rng = Rng.of_seed 5 in
  Alcotest.(check int) "double sweep exact on trees" 7 (Traversal.diameter_double_sweep u rng);
  Alcotest.(check int) "eccentricity of middle" 4 (Traversal.eccentricity u 4)

let test_mean_distance () =
  let u = Ugraph.of_digraph (path_graph 3) in
  let rng = Rng.of_seed 6 in
  let m = Traversal.mean_distance_sampled u rng ~samples:50 in
  (* exact mean over ordered pairs: (1+1+2+2+1+1)/6 = 4/3 *)
  Alcotest.(check bool) "mean distance near 4/3" true (Float.abs (m -. (4. /. 3.)) < 0.15)

(* --- Permute ----------------------------------------------------------- *)

let test_permute_validation () =
  Alcotest.(check bool) "identity valid" true (Permute.is_valid (Permute.identity 5));
  Alcotest.(check bool) "repeat invalid" false (Permute.is_valid [| 1; 1; 3 |]);
  Alcotest.(check bool) "out of range invalid" false (Permute.is_valid [| 0; 1; 2 |])

let test_permute_group_laws () =
  let rng = Rng.of_seed 7 in
  let s1 = Permute.random_of_subrange rng ~n:8 ~lo:1 ~hi:8 in
  let s2 = Permute.random_of_subrange rng ~n:8 ~lo:1 ~hi:8 in
  let id = Permute.identity 8 in
  Alcotest.(check bool) "inverse composes to identity" true
    (Permute.compose (Permute.inverse s1) s1 = id);
  Alcotest.(check bool) "composition is a permutation" true
    (Permute.is_valid (Permute.compose s1 s2))

let test_permute_action () =
  let g = Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ] in
  let sigma = Permute.transposition 3 2 3 in
  let g' = Permute.apply sigma g in
  let expected = Digraph.of_edges ~n:3 [ (1, 3); (3, 2) ] in
  Alcotest.(check bool) "transposed action" true (Digraph.equal_structure g' expected)

let test_permute_action_is_homomorphism () =
  let rng = Rng.of_seed 8 in
  let g = Sf_gen.Mori.tree rng ~p:0.7 ~t:20 in
  let s1 = Permute.random_of_subrange rng ~n:20 ~lo:5 ~hi:12 in
  let s2 = Permute.random_of_subrange rng ~n:20 ~lo:5 ~hi:12 in
  let lhs = Permute.apply s2 (Permute.apply s1 g) in
  let rhs = Permute.apply (Permute.compose s2 s1) g in
  Alcotest.(check bool) "sigma2(sigma1 G) = (sigma2 . sigma1)(G)" true
    (Digraph.equal_structure lhs rhs)

let test_permute_preserves_degree_multiset () =
  let rng = Rng.of_seed 9 in
  let g = Sf_gen.Mori.tree rng ~p:0.9 ~t:30 in
  let sigma = Permute.random_of_subrange rng ~n:30 ~lo:1 ~hi:30 in
  let g' = Permute.apply sigma g in
  let sorted_degrees h =
    let d = Metrics.total_degrees h in
    Array.sort compare d;
    d
  in
  Alcotest.(check (array int)) "degree multiset invariant" (sorted_degrees g) (sorted_degrees g')

let test_subrange_fixes_rest () =
  let rng = Rng.of_seed 10 in
  let sigma = Permute.random_of_subrange rng ~n:10 ~lo:4 ~hi:7 in
  List.iter
    (fun v -> Alcotest.(check int) "fixed outside window" v (Permute.apply_vertex sigma v))
    [ 1; 2; 3; 8; 9; 10 ];
  List.iter
    (fun v ->
      let img = Permute.apply_vertex sigma v in
      Alcotest.(check bool) "window maps into window" true (img >= 4 && img <= 7))
    [ 4; 5; 6; 7 ]

(* --- Metrics ------------------------------------------------------------ *)

let test_metrics_degrees () =
  let g = diamond () in
  Alcotest.(check (array int)) "in degrees" [| 0; 2; 1; 3 |] (Metrics.in_degrees g);
  Alcotest.(check (array int)) "out degrees" [| 3; 1; 1; 1 |] (Metrics.out_degrees g);
  Alcotest.(check int) "max in" 3 (Metrics.max_in_degree g);
  Alcotest.(check bool) "handshake" true (Metrics.degree_sum_invariant g);
  Alcotest.(check int) "self loops" 1 (Metrics.self_loops g);
  Alcotest.(check int) "parallel edges" 1 (Metrics.parallel_edges g)

let test_degree_counts_and_ccdf () =
  let counts = Metrics.degree_counts [| 1; 1; 2; 5 |] in
  Alcotest.(check (list (pair int int))) "counts" [ (1, 2); (2, 1); (5, 1) ] counts;
  let ccdf = Metrics.degree_ccdf [| 1; 1; 2; 5 |] in
  Alcotest.(check int) "ccdf entries" 3 (List.length ccdf);
  let d1, p1 = List.hd ccdf in
  Alcotest.(check int) "first degree" 1 d1;
  Alcotest.(check (float 1e-9)) "P(D >= 1)" 1. p1;
  let d5, p5 = List.nth ccdf 2 in
  Alcotest.(check int) "last degree" 5 d5;
  Alcotest.(check (float 1e-9)) "P(D >= 5)" 0.25 p5

(* --- Gio ------------------------------------------------------------------ *)

let test_edge_list_roundtrip () =
  let g = diamond () in
  let g' = Gio.of_edge_list (Gio.to_edge_list g) in
  Alcotest.(check bool) "roundtrip" true (Digraph.equal_structure g g');
  (* edge order (ids) preserved too *)
  List.iter2
    (fun e e' ->
      Alcotest.(check int) "src" e.Digraph.src e'.Digraph.src;
      Alcotest.(check int) "dst" e.Digraph.dst e'.Digraph.dst)
    (Digraph.edges g) (Digraph.edges g')

let test_edge_list_file_roundtrip () =
  let g = diamond () in
  let path = Filename.temp_file "sfgraph" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.write_edge_list g ~path;
      let g' = Gio.read_edge_list ~path in
      Alcotest.(check bool) "file roundtrip" true (Digraph.equal_structure g g'))

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_parse_fails name ~needle text =
  match Gio.of_edge_list text with
  | _ -> Alcotest.failf "%s: parse should have failed" name
  | exception Failure msg ->
    Alcotest.(check bool) (name ^ ": message mentions " ^ needle) true
      (contains_substring msg needle)

let test_edge_list_rejects_garbage () =
  Alcotest.check_raises "bad header" (Failure "Gio.of_edge_list: bad header") (fun () ->
      ignore (Gio.of_edge_list "x y\n"));
  check_parse_fails "too few edges" ~needle:"edge count mismatch" "2 5\n1 2\n";
  check_parse_fails "trailing garbage" ~needle:"trailing garbage" "2 1\n1 2\n2 1\n";
  check_parse_fails "trailing word" ~needle:"trailing garbage" "2 1\n1 2\nEOF\n";
  check_parse_fails "endpoint out of range" ~needle:"outside vertex range" "2 1\n1 3\n";
  check_parse_fails "three tokens" ~needle:"bad edge line" "2 1\n1 2 9\n";
  check_parse_fails "hex endpoint" ~needle:"bad edge line" "2 1\n1 0x2\n";
  check_parse_fails "negative header" ~needle:"bad header" "-2 1\n1 2\n"

let test_read_edge_list_names_path () =
  let path = Filename.temp_file "sfgraph" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "2 5\n1 2\n";
      close_out oc;
      match Gio.read_edge_list ~path with
      | _ -> Alcotest.fail "parse should have failed"
      | exception Failure msg ->
        Alcotest.(check bool) "failure names the file" true (contains_substring msg path))

let test_dot_output () =
  let g = Digraph.of_edges ~n:2 [ (1, 2) ] in
  let dot = Gio.to_dot ~name:"test" ~highlight:[ 2 ] g in
  Alcotest.(check bool) "mentions edge" true (contains_substring dot "1 -> 2");
  Alcotest.(check bool) "mentions highlight" true (contains_substring dot "fillcolor")

(* --- Subgraph ---------------------------------------------------------------- *)

let test_induced_subgraph () =
  let g = Digraph.of_edges ~n:5 [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ] in
  let sub, mapping = Subgraph.induced g ~vertices:[ 1; 2; 3 ] in
  Alcotest.(check int) "sub vertices" 3 (Digraph.n_vertices sub);
  Alcotest.(check int) "sub edges" 2 (Digraph.n_edges sub);
  Alcotest.(check int) "mapping to_sub" 2 mapping.Subgraph.to_sub.(1);
  Alcotest.(check int) "mapping of_sub" 3 mapping.Subgraph.of_sub.(2)

let test_largest_component_subgraph () =
  let g = Digraph.of_edges ~n:7 [ (1, 2); (2, 3); (3, 1); (4, 5) ] in
  let sub, mapping = Subgraph.largest_component g in
  Alcotest.(check int) "largest component size" 3 (Digraph.n_vertices sub);
  Alcotest.(check int) "edges preserved" 3 (Digraph.n_edges sub);
  Alcotest.(check (array int)) "members" [| 1; 2; 3 |] mapping.Subgraph.of_sub

(* --- Clustering ---------------------------------------------------------------- *)

let triangle_plus_tail () =
  (* triangle 1-2-3 with a pendant 4 attached to 3 *)
  Digraph.of_edges ~n:4 [ (1, 2); (2, 3); (3, 1); (3, 4) ]

let test_clustering_coefficients () =
  let u = Ugraph.of_digraph (triangle_plus_tail ()) in
  Alcotest.(check (float 1e-9)) "vertex in triangle" 1. (Sf_graph.Clustering.local_coefficient u 1);
  Alcotest.(check (float 1e-9)) "triangle vertex with pendant" (1. /. 3.)
    (Sf_graph.Clustering.local_coefficient u 3);
  Alcotest.(check (float 1e-9)) "pendant has none" 0. (Sf_graph.Clustering.local_coefficient u 4);
  Alcotest.(check int) "one triangle" 1 (Sf_graph.Clustering.triangle_count u);
  (* wedges: deg 2,2,3,1 -> 1+1+3+0 = 5; transitivity 3/5 *)
  Alcotest.(check (float 1e-9)) "transitivity" 0.6 (Sf_graph.Clustering.global_transitivity u);
  Alcotest.(check (float 1e-9)) "average local" ((1. +. 1. +. (1. /. 3.)) /. 4.)
    (Sf_graph.Clustering.average_local u)

let test_clustering_tree_is_zero () =
  let rng = Rng.of_seed 50 in
  let u = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.7 ~t:200) in
  Alcotest.(check (float 1e-9)) "trees have no triangles" 0.
    (Sf_graph.Clustering.global_transitivity u);
  Alcotest.(check int) "zero triangles" 0 (Sf_graph.Clustering.triangle_count u)

(* --- Correlation ----------------------------------------------------------------- *)

let test_assortativity_star_negative () =
  (* a star is maximally disassortative: r = -1 *)
  let star = Digraph.of_edges ~n:6 (List.init 5 (fun i -> (i + 2, 1))) in
  let u = Ugraph.of_digraph star in
  Alcotest.(check (float 1e-9)) "star assortativity" (-1.) (Sf_graph.Correlation.assortativity u)

let test_assortativity_regular_zero () =
  (* cycle: all degrees equal -> zero excess-degree variance -> 0 *)
  let cycle = Digraph.of_edges ~n:5 [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ] in
  Alcotest.(check (float 1e-9)) "cycle assortativity" 0.
    (Sf_graph.Correlation.assortativity (Ugraph.of_digraph cycle))

let test_knn_curve_star () =
  let star = Digraph.of_edges ~n:5 (List.init 4 (fun i -> (i + 2, 1))) in
  let u = Ugraph.of_digraph star in
  let curve = Sf_graph.Correlation.knn_curve u in
  (* leaves (degree 1) neighbour the hub (degree 4); hub neighbours leaves *)
  Alcotest.(check (float 1e-9)) "knn(1) = 4" 4. (List.assoc 1 curve);
  Alcotest.(check (float 1e-9)) "knn(4) = 1" 1. (List.assoc 4 curve)

let test_age_degree_spearman () =
  let rng = Rng.of_seed 51 in
  (* Mori tree: old vertices are rich (moderate p keeps enough degree
     spread for ranks to correlate despite ties) *)
  let u = Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.75 ~t:5000) in
  Alcotest.(check bool) "old vertices rich" true
    (Sf_graph.Correlation.age_degree_spearman u < -0.2);
  (* configuration model: no age structure *)
  let c =
    Ugraph.of_digraph (Sf_gen.Config_model.searchable_power_law rng ~n:2000 ~exponent:2.4 ())
  in
  Alcotest.(check bool) "config model age-free" true
    (Float.abs (Sf_graph.Correlation.age_degree_spearman c) < 0.1)

(* --- Kcore -------------------------------------------------------------------------- *)

let test_kcore_path () =
  let u = Ugraph.of_digraph (path_graph 6) in
  Alcotest.(check (array int)) "path is 1-core" (Array.make 6 1) (Sf_graph.Kcore.coreness u);
  Alcotest.(check int) "degeneracy 1" 1 (Sf_graph.Kcore.degeneracy u)

let test_kcore_clique_with_tail () =
  (* K4 on 1..4 plus tail 4-5-6 *)
  let g =
    Digraph.of_edges ~n:6
      [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4); (4, 5); (5, 6) ]
  in
  let core = Sf_graph.Kcore.coreness (Ugraph.of_digraph g) in
  Alcotest.(check (array int)) "coreness" [| 3; 3; 3; 3; 1; 1 |] core;
  Alcotest.(check int) "degeneracy 3" 3 (Sf_graph.Kcore.degeneracy (Ugraph.of_digraph g));
  Alcotest.(check (list int)) "3-core members" [ 1; 2; 3; 4 ]
    (Sf_graph.Kcore.k_core (Ugraph.of_digraph g) ~k:3);
  Alcotest.(check (list (pair int int))) "core sizes" [ (1, 2); (3, 4) ]
    (Sf_graph.Kcore.core_sizes (Ugraph.of_digraph g))

let test_kcore_matches_bruteforce () =
  (* brute force: iteratively strip vertices of degree < k *)
  let rng = Rng.of_seed 52 in
  let g = Sf_gen.Erdos_renyi.gnm rng ~n:40 ~m:100 in
  let u = Ugraph.of_digraph g in
  let core = Sf_graph.Kcore.coreness u in
  let brute_k_core k =
    let alive = Array.make 40 true in
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 1 to 40 do
        if alive.(v - 1) then begin
          let d = ref 0 in
          Ugraph.iter_neighbors u v (fun w -> if w <> v && alive.(w - 1) then incr d);
          if !d < k then begin
            alive.(v - 1) <- false;
            changed := true
          end
        end
      done
    done;
    alive
  in
  for k = 1 to 8 do
    let alive = brute_k_core k in
    for v = 1 to 40 do
      Alcotest.(check bool)
        (Printf.sprintf "k=%d v=%d" k v)
        alive.(v - 1)
        (core.(v - 1) >= k)
    done
  done

(* --- qcheck properties ---------------------------------------------------------- *)

let mori_arb =
  QCheck.make
    ~print:(fun (seed, t) -> Printf.sprintf "(seed=%d, t=%d)" seed t)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 2 200))

let prop_handshake =
  QCheck.Test.make ~name:"handshake on random trees" ~count:100 mori_arb
    (fun (seed, t) ->
      let g = Sf_gen.Mori.tree (Rng.of_seed seed) ~p:0.5 ~t in
      Metrics.degree_sum_invariant g)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"BFS distances satisfy edge triangle inequality" ~count:50 mori_arb
    (fun (seed, t) ->
      let g = Sf_gen.Mori.tree (Rng.of_seed seed) ~p:0.5 ~t in
      let u = Ugraph.of_digraph g in
      let dist = Traversal.bfs_distances u ~source:1 in
      Digraph.fold_edges g ~init:true ~f:(fun acc e ->
          acc
          && abs (dist.(e.Digraph.src - 1) - dist.(e.Digraph.dst - 1)) <= 1))

let prop_coreness_bounded_by_degree =
  QCheck.Test.make ~name:"coreness <= degree, and k-cores nest" ~count:60 mori_arb
    (fun (seed, t) ->
      let rng = Rng.of_seed seed in
      let g = Sf_gen.Mori.graph rng ~p:0.6 ~m:2 ~n:(max 2 (t / 2)) in
      let u = Ugraph.of_digraph g in
      let core = Sf_graph.Kcore.coreness u in
      let deg_ok =
        Array.for_all Fun.id
          (Array.mapi (fun i c -> c <= Ugraph.degree u (i + 1)) core)
      in
      let k_max = Sf_graph.Kcore.degeneracy u in
      let nested =
        let rec go k =
          k > k_max
          ||
          let inner = Sf_graph.Kcore.k_core u ~k in
          let outer = Sf_graph.Kcore.k_core u ~k:(k - 1) in
          List.for_all (fun v -> List.mem v outer) inner && go (k + 1)
        in
        go 1
      in
      deg_ok && nested)

let prop_conditioned_tree_always_in_event =
  QCheck.Test.make ~name:"conditioned sampler lands in E_{a,b}" ~count:80
    QCheck.(
      make
        ~print:(fun (seed, a, w) -> Printf.sprintf "(seed=%d a=%d w=%d)" seed a w)
        Gen.(triple (int_bound 100_000) (int_range 2 80) (int_range 0 20)))
    (fun (seed, a, w) ->
      let b = a + w in
      let t = b + 5 in
      let g = Sf_gen.Mori.tree_conditioned (Rng.of_seed seed) ~p:0.6 ~t ~a ~b in
      Sf_core.Events.holds g ~a ~b)

let prop_permutation_action_preserves_edge_count =
  QCheck.Test.make ~name:"permutation action preserves size" ~count:50 mori_arb
    (fun (seed, t) ->
      let rng = Rng.of_seed seed in
      let g = Sf_gen.Mori.tree rng ~p:0.8 ~t in
      let sigma = Permute.random_of_subrange rng ~n:t ~lo:1 ~hi:t in
      let g' = Permute.apply sigma g in
      Digraph.n_edges g' = Digraph.n_edges g && Digraph.n_vertices g' = t)

let suite =
  [
    ("vec basics", `Quick, test_vec_basics);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec copy", `Quick, test_vec_copy_independent);
    ("digraph counts", `Quick, test_digraph_counts);
    ("edge ids are timestamps", `Quick, test_digraph_edge_ids_are_timestamps);
    ("digraph validation", `Quick, test_digraph_validation);
    ("digraph copy", `Quick, test_digraph_copy_independent);
    ("equal_structure", `Quick, test_equal_structure_ignores_order);
    ("canonical key", `Quick, test_canonical_key_agrees_with_equality);
    ("ugraph incidence", `Quick, test_ugraph_incidence);
    ("ugraph other endpoint", `Quick, test_ugraph_other_endpoint);
    ("ugraph neighbors", `Quick, test_ugraph_neighbors);
    ("bfs on path", `Quick, test_bfs_distances_on_path);
    ("bfs unreachable", `Quick, test_bfs_unreachable);
    ("shortest path", `Quick, test_shortest_path);
    ("components", `Quick, test_components);
    ("diameter", `Quick, test_diameter);
    ("mean distance", `Quick, test_mean_distance);
    ("permute validation", `Quick, test_permute_validation);
    ("permute group laws", `Quick, test_permute_group_laws);
    ("permute action", `Quick, test_permute_action);
    ("permute homomorphism", `Quick, test_permute_action_is_homomorphism);
    ("permute degree multiset", `Quick, test_permute_preserves_degree_multiset);
    ("subrange fixes rest", `Quick, test_subrange_fixes_rest);
    ("metrics degrees", `Quick, test_metrics_degrees);
    ("degree counts and ccdf", `Quick, test_degree_counts_and_ccdf);
    ("edge list roundtrip", `Quick, test_edge_list_roundtrip);
    ("edge list file roundtrip", `Quick, test_edge_list_file_roundtrip);
    ("edge list rejects garbage", `Quick, test_edge_list_rejects_garbage);
    ("read_edge_list names the path", `Quick, test_read_edge_list_names_path);
    ("dot output", `Quick, test_dot_output);
    ("induced subgraph", `Quick, test_induced_subgraph);
    ("largest component subgraph", `Quick, test_largest_component_subgraph);
    ("clustering coefficients", `Quick, test_clustering_coefficients);
    ("clustering zero on trees", `Quick, test_clustering_tree_is_zero);
    ("assortativity star", `Quick, test_assortativity_star_negative);
    ("assortativity regular", `Quick, test_assortativity_regular_zero);
    ("knn curve star", `Quick, test_knn_curve_star);
    ("age-degree spearman", `Quick, test_age_degree_spearman);
    ("kcore path", `Quick, test_kcore_path);
    ("kcore clique with tail", `Quick, test_kcore_clique_with_tail);
    ("kcore vs brute force", `Quick, test_kcore_matches_bruteforce);
    QCheck_alcotest.to_alcotest prop_handshake;
    QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_permutation_action_preserves_edge_count;
    QCheck_alcotest.to_alcotest prop_coreness_bounded_by_degree;
    QCheck_alcotest.to_alcotest prop_conditioned_tree_always_in_event;
  ]
