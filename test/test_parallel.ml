(* The determinism and concurrency battery for lib/parallel and the
   capture layer of lib/obs.

   The contract under test (doc/PARALLELISM.md): for a fixed seed,
   results, metric totals and the trace stream are identical at any
   job count — scheduling decides when a task runs, never what it
   observes or the order its output lands. Wall-clock quantities
   (timer seconds, event timestamps) are exempt and never compared.

   Domain spawning is real here (the point is cross-domain safety), so
   workloads are kept small: a few dozen trials on double-digit
   graphs. *)

module Pool = Sf_parallel.Pool
module Shard = Sf_obs.Shard
module Counter = Sf_obs.Counter
module Timer = Sf_obs.Timer
module Histo = Sf_obs.Histo
module Registry = Sf_obs.Registry
module Trace = Sf_obs.Trace
module Flight = Sf_obs.Flight
module Trace_export = Sf_obs.Trace_export
module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Strategies = Sf_search.Strategies
module Searchability = Sf_core.Searchability

let with_sink sink body =
  let id = Trace.attach sink in
  Fun.protect ~finally:(fun () -> Trace.detach id) body

let collector acc =
  { Trace.descr = "test-collector"; emit = (fun e -> acc := e :: !acc); close = ignore }

let with_default_jobs j body =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) body

(* ---------------------------------------------------------------- *)
(* Pool mechanics                                                    *)
(* ---------------------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let r = Pool.mapi pool 100 (fun i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v) r;
      let chunked = Pool.map_chunks pool ~chunk:7 100 (fun i -> i * i) in
      Alcotest.(check bool) "chunked map agrees" true (chunked = r);
      let mapped = Pool.map pool (fun s -> String.length s) [| "a"; "bb"; "ccc" |] in
      Alcotest.(check (array int)) "map over array" [| 1; 2; 3 |] mapped)

let test_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      let r = Pool.mapi pool 10 (fun i -> i + 1) in
      Alcotest.(check (array int)) "inline results" [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] r);
  Alcotest.check_raises "jobs must be positive" (Invalid_argument "Pool.create: need jobs >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_exception_smallest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "smallest failing index wins" (Failure "task 5")
        (fun () ->
          ignore
            (Pool.mapi pool 16 (fun i ->
                 if i = 5 || i = 11 then failwith (Printf.sprintf "task %d" i) else i)));
      (* the pool survives a failed batch *)
      let r = Pool.mapi pool 4 (fun i -> i * 10) in
      Alcotest.(check (array int)) "pool reusable after failure" [| 0; 10; 20; 30 |] r)

let test_failed_batch_discards_obs () =
  let c = Counter.create () in
  Pool.with_pool ~jobs:4 (fun pool ->
      (try
         ignore
           (Pool.mapi pool 8 (fun i ->
                Counter.incr c;
                if i = 3 then failwith "boom"))
       with Failure _ -> ());
      Alcotest.(check int) "no shard of a failed batch is merged" 0 (Counter.value c))

let test_nested_pool_runs_inline () =
  let c = Counter.create () in
  let rows =
    Pool.with_pool ~jobs:2 (fun outer ->
        Pool.mapi outer 3 (fun i ->
            Pool.with_pool ~jobs:4 (fun inner ->
                let inner_sums =
                  Pool.mapi inner 4 (fun j ->
                      Counter.incr c;
                      (i * 4) + j)
                in
                (Pool.jobs inner, Array.fold_left ( + ) 0 inner_sums))))
  in
  Array.iteri
    (fun i (inner_jobs, sum) ->
      Alcotest.(check int) "nested pool degraded to jobs=1" 1 inner_jobs;
      Alcotest.(check int) "nested sum" ((i * 16) + 6) sum)
    rows;
  Alcotest.(check int) "nested increments all merged" 12 (Counter.value c)

let test_pool_rejects_use_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "shut-down pool refuses work"
    (Invalid_argument "Pool.map_chunks: pool is shut down") (fun () ->
      ignore (Pool.mapi pool 3 (fun i -> i)))

(* ---------------------------------------------------------------- *)
(* Shard capture under raw domains: the obs stress tests             *)
(* ---------------------------------------------------------------- *)

let test_shard_stress_counters_exact () =
  let n_domains = 4 and per_domain = 1_000 in
  let c = Counter.create () and h = Histo.create () and t = Timer.create () in
  let work d () =
    Shard.capture (fun () ->
        for i = 1 to per_domain do
          Counter.incr c;
          Histo.observe_int h ((d * per_domain) + i);
          Timer.time t (fun () -> ())
        done)
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (work d)) in
  let shards = List.map (fun dom -> snd (Domain.join dom)) domains in
  List.iter Shard.merge shards;
  let total = n_domains * per_domain in
  Alcotest.(check int) "counter total exact" total (Counter.value c);
  Alcotest.(check int) "histogram count exact" total (Histo.count h);
  Alcotest.(check (float 1e-9)) "histogram sum exact"
    (float_of_int (total * (total + 1) / 2))
    (Histo.sum h);
  Alcotest.(check (float 1e-9)) "histogram min" 1. (Histo.min_value h);
  Alcotest.(check (float 1e-9)) "histogram max" (float_of_int total) (Histo.max_value h);
  Alcotest.(check int) "timer interval count exact" total (Timer.count t)

let test_shard_stress_trace_sink () =
  let n_domains = 4 and per_domain = 250 in
  let acc = ref [] in
  let flight = Flight.create ~capacity:32 () in
  with_sink (collector acc) (fun () ->
      with_sink (Flight.sink flight) (fun () ->
          let work d () =
            Shard.capture (fun () ->
                for i = 1 to per_domain do
                  Trace.instant "stress.tick"
                    ~args:[ ("domain", Trace.Int d); ("i", Trace.Int i) ]
                done)
          in
          let domains = List.init n_domains (fun d -> Domain.spawn (work d)) in
          let shards = List.map (fun dom -> snd (Domain.join dom)) domains in
          List.iter Shard.merge shards));
  let events = List.rev !acc in
  let total = n_domains * per_domain in
  Alcotest.(check int) "every buffered event reached the sink" total (List.length events);
  (* sequence numbers are assigned at merge time: gap-free, ascending *)
  let seqs = List.map (fun e -> e.Trace.seq) events in
  let rec gap_free = function
    | a :: (b :: _ as rest) -> a + 1 = b && gap_free rest
    | _ -> true
  in
  Alcotest.(check bool) "seq gap-free and ascending" true (gap_free seqs);
  (* the ring held the last [capacity] events and never corrupted *)
  Alcotest.(check int) "flight saw everything" total (Flight.seen flight);
  let ring = Flight.events flight in
  Alcotest.(check int) "ring keeps capacity" 32 (List.length ring);
  let last_32 =
    List.filteri (fun i _ -> i >= total - 32) events |> List.map (fun e -> e.Trace.seq)
  in
  Alcotest.(check (list int)) "ring holds exactly the newest events" last_32
    (List.map (fun e -> e.Trace.seq) ring);
  (* the Perfetto export of a concurrently-emitted stream stays valid *)
  let doc = Trace_export.perfetto_json events in
  match Test_trace.parse_json doc with
  | Test_trace.J_obj fields ->
    Alcotest.(check bool) "perfetto doc has traceEvents" true
      (List.mem_assoc "traceEvents" fields)
  | _ -> Alcotest.fail "perfetto export is not a JSON object"

let test_gauge_last_write_by_index () =
  let g = Registry.gauge "test.parallel.gauge" in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore (Pool.mapi pool 32 (fun i -> Registry.set_gauge g (float_of_int i))));
  Alcotest.(check (float 1e-9)) "last write decided by task index" 31. (Registry.gauge_value g)

(* ---------------------------------------------------------------- *)
(* Rng.split_at under domains                                        *)
(* ---------------------------------------------------------------- *)

let prop_split_at_same_across_domains =
  QCheck.Test.make ~name:"Rng.split_at children identical across domains" ~count:25
    QCheck.(pair small_int (int_range 1 48))
    (fun (seed, k) ->
      let parent = Rng.of_seed seed in
      let fp0 = Rng.state_fingerprint parent in
      let derive () = Array.init k (fun i -> Rng.state_fingerprint (Rng.split_at parent i)) in
      let sequential = derive () in
      let domains = List.init 3 (fun _ -> Domain.spawn derive) in
      let parallel = List.map Domain.join domains in
      Rng.state_fingerprint parent = fp0 && List.for_all (fun a -> a = sequential) parallel)

let prop_split_at_same_through_pool =
  QCheck.Test.make ~name:"Rng.split_at children identical through the pool" ~count:25
    QCheck.(pair small_int (int_range 1 48))
    (fun (seed, k) ->
      let parent = Rng.of_seed seed in
      let fp0 = Rng.state_fingerprint parent in
      let sequential = Array.init k (fun i -> Rng.state_fingerprint (Rng.split_at parent i)) in
      let pooled =
        Pool.with_pool ~jobs:4 (fun pool ->
            Pool.mapi pool k (fun i -> Rng.state_fingerprint (Rng.split_at parent i)))
      in
      Rng.state_fingerprint parent = fp0 && pooled = sequential)

(* ---------------------------------------------------------------- *)
(* Searchability.measure: byte-identical output at any job count     *)
(* ---------------------------------------------------------------- *)

(* small Mori trees, two strategies, five trials per cell: enough to
   exercise every merge path while spawning real domains *)
let grid_spec = { Searchability.default_spec with Searchability.trials = 5 }

let grid_csv ~jobs =
  let master = Rng.of_seed 2007 in
  let make rng n = (Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:n), n) in
  let points =
    Searchability.measure ~jobs master ~make
      ~strategies:[ Strategies.bfs; Strategies.high_degree ]
      ~sizes:[ 60; 90 ] ~spec:grid_spec
  in
  Searchability.points_to_csv points

(* the golden digest pins today's bytes, like the run_traced one: a
   change here means either the PRNG stream layout or the aggregation
   changed — both are breaking changes for reproducibility *)
let grid_csv_digest = "12c7ed4284945390e2d185a134d18048"

let test_measure_identical_across_jobs () =
  let csv1 = grid_csv ~jobs:1 in
  let csv2 = grid_csv ~jobs:2 in
  let csv4 = grid_csv ~jobs:4 in
  Alcotest.(check string) "jobs=2 byte-identical to jobs=1" csv1 csv2;
  Alcotest.(check string) "jobs=4 byte-identical to jobs=1" csv1 csv4;
  Alcotest.(check string) "golden digest" grid_csv_digest
    (Digest.to_hex (Digest.string csv1))

let test_measure_metrics_identical_across_jobs () =
  let requests = Registry.counter "search.requests" in
  let runs = Registry.counter "search.runs" in
  let histo = Registry.histo "search.requests_per_run" in
  let run ~jobs =
    let req0 = Counter.value requests and runs0 = Counter.value runs in
    let hc0 = Histo.count histo and hs0 = Histo.sum histo in
    ignore (grid_csv ~jobs);
    ( Counter.value requests - req0,
      Counter.value runs - runs0,
      Histo.count histo - hc0,
      Histo.sum histo -. hs0 )
  in
  let r1, n1, hc1, hs1 = run ~jobs:1 in
  let r4, n4, hc4, hs4 = run ~jobs:4 in
  Alcotest.(check bool) "some requests were counted" true (r1 > 0);
  Alcotest.(check int) "request total identical" r1 r4;
  Alcotest.(check int) "run count identical" n1 n4;
  Alcotest.(check int) "histogram count identical" hc1 hc4;
  Alcotest.(check (float 1e-9)) "histogram sum identical" hs1 hs4

(* compare everything deterministic about an event; ts is wall-clock
   and exempt *)
let event_fingerprint base e =
  Printf.sprintf "%d %s %s %s" (e.Trace.seq - base) e.Trace.name
    (Trace.kind_tag e.Trace.kind)
    (String.concat ","
       (List.map (fun (k, v) -> k ^ "=" ^ Trace.arg_to_string v) e.Trace.args))

let test_measure_trace_identical_across_jobs () =
  let stream ~jobs =
    let acc = ref [] in
    with_sink (collector acc) (fun () -> ignore (grid_csv ~jobs));
    match List.rev !acc with
    | [] -> Alcotest.fail "no events collected"
    | first :: _ as events -> List.map (event_fingerprint first.Trace.seq) events
  in
  let s1 = stream ~jobs:1 in
  let s4 = stream ~jobs:4 in
  Alcotest.(check int) "same event count" (List.length s1) (List.length s4);
  List.iter2 (fun a b -> Alcotest.(check string) "event identical" a b) s1 s4

let test_measure_rejects_bad_budget () =
  let master = Rng.of_seed 1 in
  let make rng n = (Ugraph.of_digraph (Sf_gen.Mori.tree rng ~p:0.5 ~t:n), n) in
  let spec = { grid_spec with Searchability.budget = (fun _ -> 0) } in
  Alcotest.check_raises "non-positive budget rejected"
    (Invalid_argument "Searchability.measure: budget must be positive (got 0 for n = 50)")
    (fun () ->
      ignore
        (Searchability.measure ~jobs:1 master ~make ~strategies:[ Strategies.bfs ]
           ~sizes:[ 50 ] ~spec))

(* ---------------------------------------------------------------- *)
(* The experiment fan-out: sfexp-level byte identity                 *)
(* ---------------------------------------------------------------- *)

let test_experiments_identical_across_jobs () =
  let entries =
    List.filter_map Sf_experiments.Registry.find [ "T1"; "T5" ]
  in
  Alcotest.(check int) "both test experiments found" 2 (List.length entries);
  let outputs jobs =
    with_default_jobs jobs (fun () ->
        Sf_experiments.Registry.run_all ~quick:true ~seed:7 entries
        |> List.map (fun ((e : Sf_experiments.Registry.entry), result, _elapsed) ->
               ( e.Sf_experiments.Registry.id,
                 result.Sf_experiments.Exp.output,
                 result.Sf_experiments.Exp.checks )))
  in
  let o1 = outputs 1 in
  let o2 = outputs 2 in
  let o4 = outputs 4 in
  Alcotest.(check bool) "jobs=2 identical to jobs=1" true (o1 = o2);
  Alcotest.(check bool) "jobs=4 identical to jobs=1" true (o1 = o4)

let suite =
  [
    Alcotest.test_case "pool map preserves order" `Quick test_map_order;
    Alcotest.test_case "pool sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "pool exception: smallest index wins" `Quick
      test_exception_smallest_index;
    Alcotest.test_case "pool failed batch discards obs" `Quick test_failed_batch_discards_obs;
    Alcotest.test_case "nested pool runs inline" `Quick test_nested_pool_runs_inline;
    Alcotest.test_case "pool shutdown is final" `Quick test_pool_rejects_use_after_shutdown;
    Alcotest.test_case "shard stress: metric totals exact" `Quick
      test_shard_stress_counters_exact;
    Alcotest.test_case "shard stress: trace sink and flight ring" `Quick
      test_shard_stress_trace_sink;
    Alcotest.test_case "gauge last-write decided by index" `Quick
      test_gauge_last_write_by_index;
    QCheck_alcotest.to_alcotest prop_split_at_same_across_domains;
    QCheck_alcotest.to_alcotest prop_split_at_same_through_pool;
    Alcotest.test_case "measure identical across jobs (golden)" `Slow
      test_measure_identical_across_jobs;
    Alcotest.test_case "measure metrics identical across jobs" `Slow
      test_measure_metrics_identical_across_jobs;
    Alcotest.test_case "measure trace identical across jobs" `Slow
      test_measure_trace_identical_across_jobs;
    Alcotest.test_case "measure rejects non-positive budget" `Quick
      test_measure_rejects_bad_budget;
    Alcotest.test_case "experiments identical across jobs" `Slow
      test_experiments_identical_across_jobs;
  ]
