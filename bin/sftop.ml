(* sftop: attach to a running tool's --telemetry socket and watch it
   work (doc/OBSERVABILITY.md, "Live telemetry").

   Examples:
     sftop /tmp/sf.sock                      live dashboard, 1 s refresh
     sftop once /tmp/sf.sock                 one snapshot, plain text
     sftop record /tmp/sf.sock --out run.jsonl --count 30
     sftop plot run.jsonl --series gen.mori.vertices

   The dashboard derives counter rates from consecutive snapshots; the
   socket protocol itself is one command line per connection ([json],
   [metrics], [series], [ping]) answered with a body and EOF, so
   everything here also works from a shell:
     printf 'metrics\n' | socat - UNIX-CONNECT:/tmp/sf.sock *)

open Cmdliner
module Json = Sf_perf.Json

(* ------------------------------------------------------------------ *)
(* socket client                                                       *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with 0 -> () | w -> go (off + w)
  in
  go 0

let read_to_eof fd =
  let acc = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents acc
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      go ()
  in
  go ()

let scrape path command =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      write_all fd (command ^ "\n");
      read_to_eof fd)

(* ------------------------------------------------------------------ *)
(* snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snap = {
  s_ts : float;
  s_scrapes : int;
  s_metrics : (string * Json.t) list; (* name -> metric object *)
}

let snap_of_json doc =
  match Json.parse doc with
  | Error msg -> Error msg
  | Ok j -> (
    let ts = Option.bind (Json.member "ts" j) Json.as_num in
    let scrapes = Option.bind (Json.member "scrapes" j) Json.as_int in
    match Json.member "metrics" j with
    | Some (Json.Obj fields) ->
      Ok
        {
          s_ts = Option.value ~default:0. ts;
          s_scrapes = Option.value ~default:0 scrapes;
          s_metrics = fields;
        }
    | _ -> Error "snapshot has no metrics object")

let take_snap path =
  match snap_of_json (scrape path "json") with
  | Ok s -> s
  | Error msg -> failwith ("malformed snapshot from " ^ path ^ ": " ^ msg)

let kind_of m = Option.bind (Json.member "kind" m) Json.as_str
let num field m = Option.bind (Json.member field m) Json.as_num

(* "gen.mori.vertices" -> that metric's natural scalar;
   "gen.mori.build_s.total_s" -> an explicit facet of the base metric *)
let series_value metrics name =
  let value_of m = function
    | "" -> (
      match kind_of m with
      | Some ("counter" | "gauge") -> num "value" m
      | Some "timer" -> num "total_s" m
      | Some "histogram" -> num "count" m
      | _ -> None)
    | facet -> num facet m
  in
  match List.assoc_opt name metrics with
  | Some m -> value_of m ""
  | None -> (
    match String.rindex_opt name '.' with
    | None -> None
    | Some i ->
      let base = String.sub name 0 i in
      let facet = String.sub name (i + 1) (String.length name - i - 1) in
      Option.bind (List.assoc_opt base metrics) (fun m -> value_of m facet))

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_bytes b =
  if b >= 1024. *. 1024. *. 1024. then Printf.sprintf "%.2f GiB" (b /. (1024. *. 1024. *. 1024.))
  else if b >= 1024. *. 1024. then Printf.sprintf "%.1f MiB" (b /. (1024. *. 1024.))
  else if b >= 1024. then Printf.sprintf "%.1f KiB" (b /. 1024.)
  else Printf.sprintf "%.0f B" b

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let fmt_seconds s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.0f us" (s *. 1e6)

let is_bytes_gauge name =
  (* suffix convention: *.bytes / *_bytes gauges render human-readable *)
  let n = String.length name in
  (n >= 6 && String.sub name (n - 6) 6 = "_bytes") || (n >= 6 && String.sub name (n - 6) 6 = ".bytes")

let table aligns headers rows =
  if rows = [] then "" else Sf_stats.Table.render ~aligns ~headers ~rows ()

(* prev is the previous snapshot when we have one: rates come from the
   (prev, cur) pair *)
let render_dashboard ?prev ~path cur =
  let b = Buffer.create 4096 in
  let dt = match prev with None -> 0. | Some p -> cur.s_ts -. p.s_ts in
  Buffer.add_string b
    (Printf.sprintf "sftop - %s  t=%.1fs  scrapes=%d%s\n\n" path cur.s_ts cur.s_scrapes
       (if dt > 0. then Printf.sprintf "  (rates over %.1fs)" dt else ""));
  let rate name v =
    match prev with
    | Some p when dt > 0. -> (
      match series_value p.s_metrics name with
      | Some v0 -> Printf.sprintf "%.1f/s" ((v -. v0) /. dt)
      | None -> "-")
    | _ -> "-"
  in
  let counters, timers, gauges, histos =
    List.fold_left
      (fun (cs, ts, gs, hs) (name, m) ->
        match kind_of m with
        | Some "counter" -> ((name, m) :: cs, ts, gs, hs)
        | Some "timer" -> (cs, (name, m) :: ts, gs, hs)
        | Some "gauge" -> (cs, ts, (name, m) :: gs, hs)
        | Some "histogram" -> (cs, ts, gs, (name, m) :: hs)
        | _ -> (cs, ts, gs, hs))
      ([], [], [], []) cur.s_metrics
  in
  let rev_rows f l = List.rev_map f l in
  let open Sf_stats.Table in
  (* gauges first: GC and RSS are the vital signs *)
  Buffer.add_string b
    (table [ Left; Right ] [ "gauge"; "value" ]
       (rev_rows
          (fun (name, m) ->
            let v = Option.value ~default:Float.nan (num "value" m) in
            [ name; (if is_bytes_gauge name then fmt_bytes v else fmt_num v) ])
          (List.filter
             (fun (_, m) -> Option.bind (Json.member "set" m) (function Json.Bool x -> Some x | _ -> None) <> Some false)
             gauges)));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Right; Right ] [ "counter"; "value"; "rate" ]
       (rev_rows
          (fun (name, m) ->
            let v = Option.value ~default:0. (num "value" m) in
            [ name; fmt_num v; rate name v ])
          (List.filter (fun (_, m) -> num "value" m <> Some 0.) counters)));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Right; Right; Right; Right ]
       [ "timer"; "count"; "total"; "mean"; "rate" ]
       (rev_rows
          (fun (name, m) ->
            let count = Option.value ~default:0. (num "count" m) in
            let total = Option.value ~default:0. (num "total_s" m) in
            [
              name;
              fmt_num count;
              fmt_seconds total;
              fmt_seconds (Option.value ~default:0. (num "mean_s" m));
              rate (name ^ ".count") count;
            ])
          (List.filter (fun (_, m) -> num "count" m <> Some 0.) timers)));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Right; Right; Right; Right; Right ]
       [ "histogram"; "count"; "p50"; "p95"; "p99"; "p999" ]
       (rev_rows
          (fun (name, m) ->
            let q f = match num f m with Some v -> fmt_num v | None -> "-" in
            [ name; fmt_num (Option.value ~default:0. (num "count" m)); q "p50"; q "p95"; q "p99"; q "p999" ])
          (List.filter (fun (_, m) -> num "count" m <> Some 0.) histos)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* fleet: several sockets, one dashboard                               *)
(* ------------------------------------------------------------------ *)

(* Rows carry a proc column (the socket's basename) and sort by metric
   name first, so the same metric from every process sits together —
   the aggregate view of a serving fleet or a fabric run. *)
let render_fleet ?prev snaps =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "sftop fleet - %d process(es)\n" (List.length snaps));
  List.iter
    (fun (label, path, s) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %s  t=%.1fs  scrapes=%d\n" label path s.s_ts s.s_scrapes))
    snaps;
  Buffer.add_char b '\n';
  let rate label name v =
    match prev with
    | Some prevs when List.mem_assoc label prevs -> (
      let p = List.assoc label prevs in
      let cur = List.find (fun (l, _, _) -> l = label) snaps in
      let _, _, c = cur in
      let dt = c.s_ts -. p.s_ts in
      if dt <= 0. then "-"
      else
        match series_value p.s_metrics name with
        | Some v0 -> Printf.sprintf "%.1f/s" ((v -. v0) /. dt)
        | None -> "-")
    | _ -> "-"
  in
  let rows_of kind_wanted =
    List.concat_map
      (fun (label, _, s) ->
        List.filter_map
          (fun (name, m) ->
            if kind_of m = Some kind_wanted then Some (name, label, m) else None)
          s.s_metrics)
      snaps
    |> List.sort (fun (a, la, _) (b, lb, _) -> compare (a, la) (b, lb))
  in
  let open Sf_stats.Table in
  Buffer.add_string b
    (table [ Left; Left; Right ] [ "gauge"; "proc"; "value" ]
       (List.filter_map
          (fun (name, label, m) ->
            match num "value" m with
            | Some v -> Some [ name; label; (if is_bytes_gauge name then fmt_bytes v else fmt_num v) ]
            | None -> None)
          (rows_of "gauge")));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Left; Right; Right ] [ "counter"; "proc"; "value"; "rate" ]
       (List.filter_map
          (fun (name, label, m) ->
            match num "value" m with
            | Some v when v <> 0. -> Some [ name; label; fmt_num v; rate label name v ]
            | _ -> None)
          (rows_of "counter")));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Left; Right; Right; Right ]
       [ "timer"; "proc"; "count"; "total"; "mean" ]
       (List.filter_map
          (fun (name, label, m) ->
            match num "count" m with
            | Some c when c <> 0. ->
              Some
                [
                  name; label; fmt_num c;
                  fmt_seconds (Option.value ~default:0. (num "total_s" m));
                  fmt_seconds (Option.value ~default:0. (num "mean_s" m));
                ]
            | _ -> None)
          (rows_of "timer")));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (table [ Left; Left; Right; Right; Right; Right; Right ]
       [ "histogram"; "proc"; "count"; "p50"; "p95"; "p99"; "p999" ]
       (List.filter_map
          (fun (name, label, m) ->
            let q f = match num f m with Some v -> fmt_num v | None -> "-" in
            match num "count" m with
            | Some c when c <> 0. ->
              Some [ name; label; fmt_num c; q "p50"; q "p95"; q "p99"; q "p999" ]
            | _ -> None)
          (rows_of "histogram")));
  Buffer.contents b

(* short, unique labels: the socket basename, disambiguated by index
   when two paths share one *)
let fleet_labels paths =
  let bases = List.map Filename.basename paths in
  List.mapi
    (fun i (path, base) ->
      let dup = List.length (List.filter (( = ) base) bases) > 1 in
      ((if dup then Printf.sprintf "%s#%d" base (i + 1) else base), path))
    (List.combine paths bases)

(* ------------------------------------------------------------------ *)
(* modes                                                               *)
(* ------------------------------------------------------------------ *)

(* The server going away mid-watch is the expected way a session ends:
   the socket is unlinked (ENOENT) or stops being answered
   (ECONNREFUSED), or drops us mid-scrape (ECONNRESET/EPIPE). Anything
   else — notably a malformed-snapshot parse failure — is a real error
   and must not be reported as a clean finish. *)
let server_gone = function
  | Unix.Unix_error
      ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    true
  | _ -> false

let connect_failed path e =
  Printf.eprintf "sftop: cannot attach to %s: %s\n(is the tool running with --telemetry %s?)\n"
    path (Printexc.to_string e) path;
  1

let once path =
  match take_snap path with
  | snap ->
    print_string (render_dashboard ~path snap);
    0
  | exception e -> connect_failed path e

let watch path interval =
  if interval <= 0. then failwith "--interval: must be > 0";
  match take_snap path with
  | exception e -> connect_failed path e
  | first ->
    let clear = "\027[H\027[2J" in
    print_string (clear ^ render_dashboard ~path first);
    flush stdout;
    let rec loop prev =
      Unix.sleepf interval;
      match take_snap path with
      | exception e when server_gone e ->
        Printf.printf "\nsftop: %s closed (run finished); detaching.\n" path;
        0
      | exception e ->
        Printf.eprintf "\nsftop: error scraping %s: %s\n" path (Printexc.to_string e);
        1
      | cur ->
        print_string (clear ^ render_dashboard ~prev ~path cur);
        flush stdout;
        loop cur
    in
    loop first

let record path out count interval =
  if interval <= 0. then failwith "--interval: must be > 0";
  if count < 1 then failwith "--count: must be >= 1";
  let oc =
    if out = "-" then stdout else open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 out
  in
  let finally () = if out <> "-" then close_out oc in
  Fun.protect ~finally (fun () ->
      let taken = ref 0 in
      (try
         for i = 1 to count do
           if i > 1 then Unix.sleepf interval;
           let line = String.trim (scrape path "json") in
           output_string oc (line ^ "\n");
           flush oc;
           incr taken;
           Printf.eprintf "scrape %d/%d\n%!" i count
         done
       with e ->
         Printf.eprintf "sftop: %s while recording from %s\n" (Printexc.to_string e) path);
      if !taken = 0 then connect_failed path (Failure "no scrapes recorded")
      else begin
        if out <> "-" then
          Printf.eprintf "recorded %d scrape(s) to %s\n" !taken out;
        if !taken = count then 0 else 1
      end)

let fleet paths once interval =
  if interval <= 0. then failwith "--interval: must be > 0";
  let labelled = fleet_labels paths in
  let take_all ~strict =
    List.filter_map
      (fun (label, path) ->
        match take_snap path with
        | s -> Some (label, path, s)
        | exception e when server_gone e && not strict -> None
        | exception e ->
          if strict then (
            Printf.eprintf "sftop fleet: cannot scrape %s: %s\n" path
              (Printexc.to_string e);
            failwith "fleet scrape failed")
          else raise e)
      labelled
  in
  if once then begin
    let snaps = take_all ~strict:true in
    print_string (render_fleet snaps);
    0
  end
  else begin
    let clear = "\027[H\027[2J" in
    let rec loop prev =
      let snaps = take_all ~strict:false in
      if snaps = [] then begin
        Printf.printf "\nsftop fleet: every socket closed (runs finished); detaching.\n";
        0
      end
      else begin
        print_string (clear ^ render_fleet ?prev snaps);
        flush stdout;
        Unix.sleepf interval;
        loop (Some (List.map (fun (l, _, s) -> (l, s)) snaps))
      end
    in
    match take_all ~strict:true with
    | exception e -> connect_failed (String.concat " " paths) e
    | first ->
      print_string (clear ^ render_fleet first);
      flush stdout;
      Unix.sleepf interval;
      loop (Some (List.map (fun (l, _, s) -> (l, s)) first))
  end

(* ------------------------------------------------------------------ *)
(* timeline: merge per-process .jsonl traces into one Perfetto file    *)
(* ------------------------------------------------------------------ *)

module Trace = Sf_obs.Trace

(* read back what Trace_export.event_jsonl wrote; integral numbers
   re-enter as Int (the jsonl form does not distinguish) *)
let event_of_jsonl ~file line =
  match Json.parse line with
  | Error msg -> failwith (Printf.sprintf "%s: %s" file msg)
  | Ok j ->
    let str k = Option.bind (Json.member k j) Json.as_str in
    let n k = Option.bind (Json.member k j) Json.as_num in
    let name = match str "name" with Some s -> s | None -> failwith (file ^ ": event without name") in
    let kind =
      match str "ph" with
      | Some "B" -> Trace.Begin
      | Some "E" -> Trace.End
      | Some "i" -> Trace.Instant
      | Some "C" -> Trace.Counter (Option.value ~default:0. (n "value"))
      | Some ph -> failwith (Printf.sprintf "%s: unknown phase %S" file ph)
      | None -> failwith (file ^ ": event without ph")
    in
    let args =
      match Json.member "args" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Num x when Float.is_integer x && Float.abs x < 1e15 ->
              Some (k, Trace.Int (int_of_float x))
            | Json.Num x -> Some (k, Trace.Float x)
            | Json.Str s -> Some (k, Trace.Str s)
            | Json.Bool b -> Some (k, Trace.Bool b)
            | Json.Arr l -> Some (k, Trace.Ints (List.filter_map Json.as_int l))
            | Json.Null | Json.Obj _ -> None)
          fields
      | _ -> []
    in
    {
      Trace.seq = Option.value ~default:0 (Option.bind (Json.member "seq" j) Json.as_int);
      ts = Option.value ~default:0. (n "ts");
      name;
      kind;
      args;
    }

let read_jsonl_events file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           let l = String.trim (input_line ic) in
           if l <> "" then acc := event_of_jsonl ~file l :: !acc
         done
       with End_of_file -> ());
      List.rev !acc)

let parse_track_spec s =
  match String.index_opt s '=' with
  | Some i when i > 0 ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ -> failwith (Printf.sprintf "track %S: expected NAME=FILE.jsonl" s)

let timeline specs out =
  let tracks =
    List.map
      (fun spec ->
        let name, file = parse_track_spec spec in
        (name, read_jsonl_events file))
      specs
  in
  let doc = Sf_obs.Trace_export.perfetto_of_tracks tracks in
  if out = "-" then print_string doc
  else begin
    let oc = open_out out in
    output_string oc doc;
    close_out oc;
    Printf.printf "wrote merged timeline (%d tracks, %d events) to %s\n"
      (List.length tracks)
      (List.fold_left (fun n (_, evs) -> n + List.length evs) 0 tracks)
      out
  end;
  0

let plot file series_names width height =
  let ic = open_in file in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let l = String.trim (input_line ic) in
          if l <> "" then lines := l :: !lines
        done
      with End_of_file -> ());
  let snaps =
    List.rev_map
      (fun l -> match snap_of_json l with Ok s -> s | Error msg -> failwith (file ^ ": " ^ msg))
      !lines
  in
  if snaps = [] then failwith (file ^ ": no scrapes");
  let t0 = (List.hd snaps).s_ts in
  let series =
    List.mapi
      (fun i name ->
        {
          Sf_stats.Plot.label = name;
          glyph = Sf_stats.Plot.default_glyphs.(i mod Array.length Sf_stats.Plot.default_glyphs);
          points =
            List.filter_map
              (fun s ->
                Option.map (fun v -> (s.s_ts -. t0, v)) (series_value s.s_metrics name))
              snaps;
        })
      series_names
  in
  print_string
    (Sf_stats.Plot.render ~width ~height ~x_label:"t (s)" ~y_label:"value" series);
  0

(* ------------------------------------------------------------------ *)
(* cmdliner surface                                                    *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET" ~doc:"Unix-domain telemetry socket of the running tool")

let interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Delay between scrapes")

let wrap f = try f () with Failure msg -> Printf.eprintf "sftop: %s\n" msg; 1

let watch_term =
  Term.(const (fun path interval -> wrap (fun () -> watch path interval)) $ socket_arg $ interval_arg)

let once_cmd =
  Cmd.v
    (Cmd.info "once" ~doc:"print one snapshot and exit")
    Term.(const (fun path -> wrap (fun () -> once path)) $ socket_arg)

let record_cmd =
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Append one JSON snapshot per scrape to $(docv) (default stdout)")
  in
  let count =
    Arg.(value & opt int 10 & info [ "count" ] ~docv:"N" ~doc:"Number of scrapes to record")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"append timed snapshots to a JSONL file for post-hoc plots")
    Term.(
      const (fun path out count interval -> wrap (fun () -> record path out count interval))
      $ socket_arg $ out $ count $ interval_arg)

let plot_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL file written by $(b,sftop record)")
  in
  let series =
    Arg.(
      non_empty & opt_all string []
      & info [ "series"; "s" ] ~docv:"NAME"
          ~doc:
            "Series to plot (repeatable): a metric name plots its natural scalar \
             (counter/gauge value, timer total, histogram count); suffix a facet for \
             the rest, e.g. $(b,gen.mori.build_s.mean_s) or \
             $(b,search.requests_per_trial.p95)")
  in
  let width = Arg.(value & opt int 72 & info [ "width" ] ~docv:"COLS" ~doc:"Plot width") in
  let height = Arg.(value & opt int 20 & info [ "height" ] ~docv:"ROWS" ~doc:"Plot height") in
  Cmd.v
    (Cmd.info "plot" ~doc:"render recorded scrapes as an ASCII trend plot")
    Term.(
      const (fun file series width height -> wrap (fun () -> plot file series width height))
      $ file $ series $ width $ height)

let watch_cmd = Cmd.v (Cmd.info "watch" ~doc:"live dashboard (the default)") watch_term

let fleet_cmd =
  let sockets =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"SOCKET"
          ~doc:"Telemetry sockets of the running processes (one per process)")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Scrape every socket once, print the combined dashboard and exit \
                (nonzero if any socket is unreachable) — the CI smoke mode")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "aggregate live dashboards across several telemetry sockets (a serving \
          fleet: server + load, or a fabric coordinator) into one view")
    Term.(
      const (fun paths once interval -> wrap (fun () -> fleet paths once interval))
      $ sockets $ once $ interval_arg)

let timeline_cmd =
  let tracks =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"NAME=FILE"
          ~doc:
            "One track per process: $(docv) pairs a track name with that process's \
             $(b,--trace) .jsonl file, e.g. $(b,server=srv.jsonl load=load.jsonl)")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the merged Perfetto document to $(docv) (default stdout)")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "merge per-process .jsonl event traces into one Perfetto timeline with a \
          named track per process — spans sharing a trace id (a load request and \
          the server stages that served it) line up across tracks")
    Term.(const (fun specs out -> wrap (fun () -> timeline specs out)) $ tracks $ out)

let cmd =
  let doc = "attach a live dashboard to a running tool's telemetry socket" in
  Cmd.group ~default:watch_term
    (Cmd.info "sftop" ~doc)
    [ watch_cmd; once_cmd; record_cmd; plot_cmd; fleet_cmd; timeline_cmd ]

let () =
  (* a server that shuts down while we write the command line must
     surface as EPIPE (a clean detach in watch mode), not kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  exit (Cmd.eval' cmd)
