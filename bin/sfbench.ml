(* sfbench: record, compare, and gate the performance trajectory
   (doc/OBSERVABILITY.md, "Performance trajectory").

   Examples:
     sfbench record --quick                      # append BENCH_<n>.json to bench/history/
     sfbench compare bench/history/BENCH_0001.json bench/history/BENCH_0002.json
     sfbench report                              # trend table + log-scale trend plot
     sfbench gate --against bench/history/BENCH_0001.json --max-regression 10

   `gate` is the CI command: it exits non-zero on a confirmed
   regression beyond the cap, a lost benchmark, or a quick/full mode
   mismatch. *)

open Cmdliner

let default_dir = "bench/history"

(* the commit hash is impure context, so it enters here at the CLI
   layer and never inside lib/perf: CI exports GITHUB_SHA, local runs
   can set SFBENCH_COMMIT or pass --commit *)
let default_commit () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
    match Sys.getenv_opt "SFBENCH_COMMIT" with
    | Some s when s <> "" -> s
    | _ -> "unknown")

let default_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file_or_die path =
  match Sf_perf.Bench_file.read ~path with
  | Ok f -> f
  | Error msg ->
    Printf.eprintf "sfbench: %s: %s\n" path msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* record                                                              *)
(* ------------------------------------------------------------------ *)

let record quick seed repeats no_micro no_phases out commit date (obs : Obs_cli.t) =
  let mode = if quick then "quick" else "full" in
  Obs_cli.with_session obs ~tool:"sfbench" ~seed ~mode @@ fun () ->
  if no_micro && no_phases then failwith "--no-micro and --no-phases leave nothing to record";
  let commit = match commit with Some c -> c | None -> default_commit () in
  let date = match date with Some d -> d | None -> default_date () in
  let micro =
    if no_micro then []
    else begin
      Printf.eprintf "running %s microbenchmarks...\n%!" mode;
      Sf_perf.Suite.run_micro ~quick ()
    end
  in
  let phases =
    if no_phases then []
    else begin
      Printf.eprintf "running experiment phases (%d repeat(s))...\n%!" repeats;
      Sf_perf.Suite.run_phases ~quick ~seed ~repeats
    end
  in
  let benchmarks =
    List.map
      (fun (name, samples) -> { Sf_perf.Bench_file.name; unit_label = "ns"; samples })
      (micro @ phases)
  in
  let file =
    {
      Sf_perf.Bench_file.commit;
      date;
      host = Sf_perf.Bench_file.current_host ();
      jobs = Sf_parallel.Pool.default_jobs ();
      seed;
      mode;
      benchmarks;
    }
  in
  mkdir_p out;
  let index = Sf_perf.Bench_file.next_index ~dir:out in
  let path = Filename.concat out (Sf_perf.Bench_file.filename index) in
  Sf_perf.Bench_file.write ~path file;
  print_string
    (Sf_stats.Table.render
       ~aligns:[ Sf_stats.Table.Left; Sf_stats.Table.Right; Sf_stats.Table.Right ]
       ~headers:[ "benchmark"; "samples"; "median" ]
       ~rows:
         (List.map
            (fun (b : Sf_perf.Bench_file.benchmark) ->
              [
                b.Sf_perf.Bench_file.name;
                string_of_int (Array.length b.Sf_perf.Bench_file.samples);
                Sf_perf.Compare.fmt_ns (Sf_stats.Quantile.median b.Sf_perf.Bench_file.samples);
              ])
            benchmarks)
       ());
  Printf.printf "recorded %d benchmark(s) to %s (commit %s, %s, jobs %d)\n"
    (List.length benchmarks) path commit mode
    (Sf_parallel.Pool.default_jobs ());
  0

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd_run noise_floor alpha base_path cand_path =
  let policy =
    {
      Sf_perf.Compare.default_policy with
      Sf_perf.Compare.noise_floor_pct = noise_floor;
      alpha;
    }
  in
  let base = read_file_or_die base_path and cand = read_file_or_die cand_path in
  let c = Sf_perf.Compare.files policy ~base ~cand in
  print_string (Sf_perf.Compare.render c.Sf_perf.Compare.results);
  List.iter
    (fun n -> Printf.printf "only in %s: %s\n" base_path n)
    c.Sf_perf.Compare.only_base;
  List.iter
    (fun n -> Printf.printf "only in %s: %s\n" cand_path n)
    c.Sf_perf.Compare.only_cand;
  0

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report dir only plot_width plot_height =
  let entries, errors = Sf_perf.History.load ~dir in
  List.iter (fun msg -> Printf.eprintf "warning: %s\n" msg) errors;
  if entries = [] then begin
    Printf.printf "%s: no BENCH_*.json history\n" dir;
    if errors = [] then 0 else 1
  end
  else begin
    print_string (Sf_perf.History.trend_table entries);
    print_newline ();
    let only = if only = [] then None else Some only in
    print_string
      (Sf_perf.History.trend_plot ~width:plot_width ~height:plot_height ?only entries);
    0
  end

(* ------------------------------------------------------------------ *)
(* gate                                                                *)
(* ------------------------------------------------------------------ *)

let newest_in dir =
  match List.rev (Sf_perf.Bench_file.list_dir ~dir) with
  | (_, path) :: _ -> path
  | [] ->
    Printf.eprintf "sfbench gate: no candidate given and %s has no BENCH_*.json\n" dir;
    exit 2

let gate against candidate dir max_regression noise_floor alpha =
  let policy =
    {
      Sf_perf.Gate.compare =
        {
          Sf_perf.Compare.default_policy with
          Sf_perf.Compare.noise_floor_pct = noise_floor;
          alpha;
        };
      max_regression_pct = max_regression;
    }
  in
  let cand_path = match candidate with Some p -> p | None -> newest_in dir in
  let base = read_file_or_die against and cand = read_file_or_die cand_path in
  Printf.printf "baseline:  %s (commit %s, %s, jobs %d)\n" against
    base.Sf_perf.Bench_file.commit base.Sf_perf.Bench_file.mode
    base.Sf_perf.Bench_file.jobs;
  Printf.printf "candidate: %s (commit %s, %s, jobs %d)\n" cand_path
    cand.Sf_perf.Bench_file.commit cand.Sf_perf.Bench_file.mode
    cand.Sf_perf.Bench_file.jobs;
  let outcome = Sf_perf.Gate.run policy ~base ~cand in
  print_string (Sf_perf.Gate.render outcome);
  if Sf_perf.Gate.passed outcome then 0 else 1

(* ------------------------------------------------------------------ *)
(* command line                                                        *)
(* ------------------------------------------------------------------ *)

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Record in quick mode: 1/8 input sizes and shorter bechamel quotas. Quick and \
           full recordings are never gated against each other")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the experiment phases")

let repeats_arg =
  Arg.(
    value & opt int 3
    & info [ "repeats" ] ~docv:"N"
        ~doc:"Full experiment-registry passes; each pass contributes one phase sample")

let no_micro_arg =
  Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip the bechamel microbenchmarks")

let no_phases_arg =
  Arg.(value & flag & info [ "no-phases" ] ~doc:"Skip the experiment phase timers")

let out_arg =
  Arg.(
    value & opt string default_dir
    & info [ "out" ] ~docv:"DIR"
        ~doc:"History directory; the run is written as the next free BENCH_$(i,n).json")

let commit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "commit" ] ~docv:"HASH"
        ~doc:
          "Commit recorded in the file. Default: $(b,GITHUB_SHA), else \
           $(b,SFBENCH_COMMIT), else $(b,unknown)")

let date_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "date" ] ~docv:"ISO8601" ~doc:"Timestamp recorded in the file. Default: now (UTC)")

let dir_arg =
  Arg.(
    value & opt string default_dir
    & info [ "dir" ] ~docv:"DIR" ~doc:"History directory of BENCH_*.json files")

let noise_floor_arg =
  Arg.(
    value
    & opt float Sf_perf.Compare.default_policy.Sf_perf.Compare.noise_floor_pct
    & info [ "noise-floor" ] ~docv:"PCT"
        ~doc:"Median drifts below this magnitude are always classified unchanged")

let alpha_arg =
  Arg.(
    value
    & opt float Sf_perf.Compare.default_policy.Sf_perf.Compare.alpha
    & info [ "alpha" ] ~docv:"A" ~doc:"Mann-Whitney significance level")

let record_cmd =
  Cmd.v
    (Cmd.info "record"
       ~doc:"run the benchmark suite and append a BENCH_<n>.json to the history")
    Term.(
      const record $ quick_arg $ seed_arg $ repeats_arg $ no_micro_arg $ no_phases_arg
      $ out_arg $ commit_arg $ date_arg $ Obs_cli.term)

let compare_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE" ~doc:"Baseline BENCH file")
  in
  let cand =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"CANDIDATE" ~doc:"Candidate BENCH file")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"statistically compare two recorded BENCH files")
    Term.(const compare_cmd_run $ noise_floor_arg $ alpha_arg $ base $ cand)

let report_cmd =
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"NAME" ~doc:"Restrict the trend plot to these benchmarks (repeatable)")
  in
  let width = Arg.(value & opt int 72 & info [ "plot-width" ] ~docv:"COLS" ~doc:"Trend plot width") in
  let height =
    Arg.(value & opt int 24 & info [ "plot-height" ] ~docv:"ROWS" ~doc:"Trend plot height")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"render the trend table and plot of the recorded history")
    Term.(const report $ dir_arg $ only $ width $ height)

let gate_cmd =
  let against =
    Arg.(
      required
      & opt (some string) None
      & info [ "against" ] ~docv:"FILE" ~doc:"Baseline BENCH file the candidate must not regress")
  in
  let candidate =
    Arg.(
      value
      & opt (some string) None
      & info [ "candidate" ] ~docv:"FILE"
          ~doc:"Candidate BENCH file. Default: the newest file in $(b,--dir)")
  in
  let max_regression =
    Arg.(
      value
      & opt float Sf_perf.Gate.default_policy.Sf_perf.Gate.max_regression_pct
      & info [ "max-regression" ] ~docv:"PCT"
          ~doc:"Confirmed median slowdowns beyond this fail the gate")
  in
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "fail (exit 1) if the candidate confirms a regression beyond the cap, lost a \
          benchmark, or mixes quick/full modes")
    Term.(
      const gate $ against $ candidate $ dir_arg $ max_regression $ noise_floor_arg
      $ alpha_arg)

let cmd =
  let doc = "record, compare, and gate the repository's performance trajectory" in
  Cmd.group (Cmd.info "sfbench" ~doc) [ record_cmd; compare_cmd; report_cmd; gate_cmd ]

let () = exit (Cmd.eval' cmd)
