(* sfexp: run one experiment (or all) from the registry by id.

   Examples:
     sfexp list
     sfexp run T5
     sfexp run T1 --quick --seed 99
     sfexp run all *)

open Cmdliner

let list_experiments () =
  List.iter
    (fun (e : Sf_experiments.Registry.entry) ->
      Printf.printf "%-4s %s\n" e.Sf_experiments.Registry.id e.Sf_experiments.Registry.title)
    Sf_experiments.Registry.all;
  0

let print_result (result : Sf_experiments.Exp.result) =
  Printf.printf "\n######## %s - %s\n\n" result.Sf_experiments.Exp.id
    result.Sf_experiments.Exp.title;
  print_string result.Sf_experiments.Exp.output;
  print_newline ();
  List.iter
    (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "SHAPE MISMATCH") name)
    result.Sf_experiments.Exp.checks;
  Sf_experiments.Exp.all_pass result

(* --workers > 1: fan the experiments out across worker processes on
   the fabric swarm instead of the --jobs domain pool; same results,
   same output bytes, same counter totals (doc/PARALLELISM.md) *)
let run_distributed ~workers ~quick ~seed (obs : Obs_cli.t) entries =
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sfexp-%d.sock" (Unix.getpid ()))
  in
  let argv =
    [ Sys.executable_name; "worker"; "--connect"; sock_path; "--seed"; string_of_int seed ]
    @ (if quick then [ "--quick" ] else [])
    @ (match obs.Obs_cli.corpus with Some d -> [ "--corpus"; d ] | None -> [])
  in
  let spawn () = Sf_fabric.Swarm.spawn_exec (Array.of_list argv) in
  Sf_experiments.Distrib.run_all_processes ~sock_path ~workers ~spawn entries

let run_experiment id quick seed workers (obs : Obs_cli.t) =
  Obs_cli.with_session obs ~tool:"sfexp"
    ~extra:(fun () -> [ ("experiment", Sf_obs.Export.json_string id) ])
    ~seed
    ~mode:(if quick then "quick" else "full")
  @@ fun () ->
  let entries =
    if String.lowercase_ascii id = "all" then Some Sf_experiments.Registry.all
    else
      match Sf_experiments.Registry.find id with
      | Some e -> Some [ e ]
      | None -> None
  in
  match entries with
  | None ->
    Printf.eprintf "unknown experiment %s; try 'sfexp list'\n" id;
    1
  | Some entries ->
    let progress =
      if obs.Obs_cli.progress then
        Some (Sf_obs.Progress.create ~label:"experiments" ~total:(List.length entries) ())
      else None
    in
    let results =
      match entries with
      | [ e ] ->
        (* one experiment runs on the calling domain, so its exp.<id>
           span still lands in the manifest's span forest *)
        [ (e, e.Sf_experiments.Registry.run ~quick ~seed) ]
      | entries when workers > 0 ->
        (* worker processes over the fabric swarm *)
        run_distributed ~workers ~quick ~seed obs entries
      | entries ->
        (* 'all' fans out across the --jobs pool; output order and
           bytes are independent of the job count *)
        List.map
          (fun (e, result, _elapsed) -> (e, result))
          (Sf_experiments.Registry.run_all ~quick ~seed entries)
    in
    let ok =
      List.for_all
        (fun ((e : Sf_experiments.Registry.entry), result) ->
          let ok = print_result result in
          Option.iter
            (fun pr -> Sf_obs.Progress.step pr ~detail:e.Sf_experiments.Registry.id)
            progress;
          ok)
        results
    in
    Option.iter Sf_obs.Progress.finish progress;
    if ok then 0 else 2

let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (T1..T14) or 'all'")
let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced problem sizes")
let seed_arg = Arg.(value & opt int 20070615 & info [ "seed" ] ~doc:"Master seed")

let workers_arg =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
         ~doc:"Run 'all' on N worker processes (the fabric swarm) instead of the --jobs \
               domain pool. Same results, same bytes.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"run an experiment by id")
    Term.(const run_experiment $ id_arg $ quick_arg $ seed_arg $ workers_arg $ Obs_cli.term)

(* internal: one experiment worker process, spawned by run --workers *)
let worker_main connect quick seed corpus =
  Sf_store.Corpus.configure ?dir:corpus ();
  match Sf_experiments.Distrib.worker_main ~connect ~quick ~seed with
  | () -> 0
  | exception e ->
    Printf.eprintf "sfexp worker: %s\n" (Printexc.to_string e);
    1

let worker_cmd =
  let connect_arg =
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"PATH"
           ~doc:"Coordinator control socket.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Content-addressed graph corpus cache.")
  in
  Cmd.v
    (Cmd.info "worker" ~doc:"internal: an experiment worker process (spawned by run --workers)")
    Term.(const worker_main $ connect_arg $ quick_arg $ seed_arg $ corpus_arg)

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"list experiment ids") Term.(const list_experiments $ const ())

let verify_statements seed =
  let reports = Sf_core.Paper.verify ~seed in
  print_string (Sf_core.Paper.render reports);
  if Sf_core.Paper.all_pass reports then begin
    Printf.printf "All %d statements verified.\n" (List.length reports);
    0
  end
  else begin
    Printf.printf "Some statements FAILED verification.\n";
    2
  end

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"run the statement-by-statement paper verification certificate")
    Term.(const verify_statements $ seed_arg)

let cmd =
  let doc = "reproduce the paper's experiment tables" in
  Cmd.group (Cmd.info "sfexp" ~doc) [ list_cmd; run_cmd; verify_cmd; worker_cmd ]

let () = exit (Cmd.eval' cmd)
