(* sfsearch: run one local search on a generated or loaded graph and
   print its outcome next to the paper's lower bound.

   Examples:
     sfsearch --model mori -n 10000 -p 0.5 --strategy high-degree
     sfsearch --model cooper-frieze -n 4000 --strategy bfs --trials 20
     sfsearch --graph g.edges --strategy rand-walk --target 500 *)

open Cmdliner

let strategy_of_name name =
  let all =
    Sf_search.Strategies.weak_portfolio ()
    @ Sf_search.Strategies.strong_portfolio ()
    @ [ Sf_search.Strategies.random_edge ~skip_known:false ]
  in
  List.find_opt (fun s -> s.Sf_search.Strategy.name = name) all

let strategy_names () =
  Sf_search.Strategies.weak_portfolio () @ Sf_search.Strategies.strong_portfolio ()
  |> List.map (fun s -> s.Sf_search.Strategy.name)
  |> String.concat ", "

let run model n p m alpha exponent strategy_name source target trials budget seed graph_file
    trace_csv (obs : Obs_cli.t) =
  let extra = ref [] in
  Obs_cli.with_session obs ~extra:(fun () -> !extra) ~tool:"sfsearch" ~seed ~mode:model
  @@ fun () ->
  let rng = Sf_prng.Rng.of_seed seed in
  let graph, default_target =
    match graph_file with
    | Some path ->
      (* version-sniffing load: SFGB v2 files are mmap-backed CSR (no
         decode pass, doc/SCALING.md), v1 and edge lists decode *)
      let u = Sf_store.Csr_codec.load_ugraph ~path () in
      (u, Sf_graph.Ugraph.n_vertices u)
    | None -> (
      match model with
      | "mori" -> Sf_core.Searchability.mori_instance ~p ~m rng n
      | "cooper-frieze" ->
        let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
        Sf_core.Searchability.cooper_frieze_instance params rng n
      | "cooper-frieze-giant" ->
        let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
        Sf_core.Searchability.cooper_frieze_giant_instance params rng n
      | "config" -> Sf_core.Searchability.config_model_instance ~exponent rng n
      | other ->
        failwith
          ("unknown model: " ^ other ^ " (mori | cooper-frieze | cooper-frieze-giant | config)"))
  in
  match strategy_of_name strategy_name with
  | None ->
    Printf.eprintf "unknown strategy %s (known: %s)\n" strategy_name (strategy_names ());
    1
  | Some strategy ->
    let target = Option.value ~default:default_target target in
    let n_vertices = Sf_graph.Ugraph.n_vertices graph in
    let source = Option.value ~default:(if target = 1 then 2 else 1) source in
    Printf.printf "graph: %s vertices, %s edges; source %d -> target %d; strategy %s (%s model)\n"
      (Sf_stats.Table.fmt_int_grouped n_vertices)
      (Sf_stats.Table.fmt_int_grouped (Sf_graph.Ugraph.n_edges graph))
      source target strategy.Sf_search.Strategy.name
      (match strategy.Sf_search.Strategy.model with
      | Sf_search.Oracle.Weak -> "weak"
      | Sf_search.Oracle.Strong -> "strong");
    let to_target = Sf_stats.Summary.create () in
    let to_neighbor = Sf_stats.Summary.create () in
    let timeouts = ref 0 in
    let progress =
      if obs.Obs_cli.progress then
        Some (Sf_obs.Progress.create ~label:"trials" ~total:trials ())
      else None
    in
    (* every trial owns the split stream [split_at rng trial], so the
       pooled run below aggregates exactly what the old sequential
       loop did, at any --jobs value *)
    let run_one trial =
      let trial_rng = Sf_prng.Rng.split_at rng trial in
      Sf_search.Runner.search ?budget ~rng:trial_rng graph strategy ~source ~target
    in
    let record outcome =
      (match outcome.Sf_search.Runner.to_target with
      | Some r -> Sf_stats.Summary.add_int to_target r
      | None -> incr timeouts);
      (match outcome.Sf_search.Runner.to_neighbor with
      | Some r -> Sf_stats.Summary.add_int to_neighbor r
      | None -> ());
      Option.iter
        (fun pr ->
          Sf_obs.Progress.step pr
            ~detail:
              (Printf.sprintf "%d requests" outcome.Sf_search.Runner.total_requests))
        progress
    in
    Sf_obs.Span.with_span "trials" (fun () ->
        let traced_first =
          match trace_csv with
          | Some path when trials >= 1 ->
            (* the traced trial stays on the calling domain:
               run_traced attaches a temporary collector sink, which a
               parallel task must not do *)
            let trial_rng = Sf_prng.Rng.split_at rng 1 in
            let oracle =
              Sf_search.Oracle.start ~rng:trial_rng strategy.Sf_search.Strategy.model
                graph ~source ~target
            in
            let outcome, trace =
              Sf_search.Runner.run_traced ?budget ~rng:trial_rng strategy oracle
            in
            let oc = open_out path in
            output_string oc (Sf_search.Runner.trace_to_csv trace);
            close_out oc;
            Printf.printf "wrote trace of trial 1 to %s (%d events)\n" path
              (List.length trace);
            [ outcome ]
          | Some _ | None -> []
        in
        let already = List.length traced_first in
        let rest =
          if trials > already then
            Sf_parallel.Pool.with_pool (fun pool ->
                Sf_parallel.Pool.mapi pool (trials - already) (fun i ->
                    run_one (already + 1 + i)))
            |> Array.to_list
          else []
        in
        List.iter record (traced_first @ rest));
    Option.iter Sf_obs.Progress.finish progress;
    Printf.printf "trials: %d (timeouts: %d)\n" trials !timeouts;
    if Sf_stats.Summary.count to_target > 0 then
      Printf.printf "requests to target:    mean %.1f  (min %.0f, max %.0f)\n"
        (Sf_stats.Summary.mean to_target)
        (Sf_stats.Summary.min_value to_target)
        (Sf_stats.Summary.max_value to_target);
    if Sf_stats.Summary.count to_neighbor > 0 then
      Printf.printf "requests to neighbor:  mean %.1f  (min %.0f, max %.0f)\n"
        (Sf_stats.Summary.mean to_neighbor)
        (Sf_stats.Summary.min_value to_neighbor)
        (Sf_stats.Summary.max_value to_neighbor);
    if model = "mori" && graph_file = None then begin
      let bound = Sf_core.Lower_bound.theorem1 ~p ~m ~n in
      Printf.printf "Theorem 1 bound for this instance: >= %.1f expected requests\n"
        bound.Sf_core.Lower_bound.requests
    end;
    extra :=
      [
        ("strategy", Sf_obs.Export.json_string strategy.Sf_search.Strategy.name);
        ("n", string_of_int n_vertices);
        ("trials", string_of_int trials);
      ];
    0

let model_arg =
  Arg.(
    value & opt string "mori"
    & info [ "model" ] ~doc:"mori | cooper-frieze | cooper-frieze-giant | config")
let n_arg = Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Target vertex / problem size")
let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori parameter")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Mori merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze alpha")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Config-model exponent")
let strategy_arg = Arg.(value & opt string "high-degree" & info [ "strategy"; "s" ] ~doc:"Strategy name")
let source_arg = Arg.(value & opt (some int) None & info [ "source" ] ~doc:"Start vertex (default 1)")
let target_arg = Arg.(value & opt (some int) None & info [ "target" ] ~doc:"Target vertex (default: model-specific)")
let trials_arg = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Independent searches")
let budget_arg = Arg.(value & opt (some int) None & info [ "budget" ] ~doc:"Request budget per search")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")
let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph" ]
        ~doc:"Load a graph file (edge list or binary, sniffed by magic) instead of generating")
let trace_csv_arg =
  Arg.(value & opt (some string) None & info [ "trace-csv" ] ~doc:"Write the first trial's request trace to this CSV file")

let cmd =
  let doc = "run local-knowledge searches against the paper's lower bounds" in
  Cmd.v
    (Cmd.info "sfsearch" ~doc)
    Term.(
      const run $ model_arg $ n_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg $ strategy_arg
      $ source_arg $ target_arg $ trials_arg $ budget_arg $ seed_arg $ graph_arg
      $ trace_csv_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
