(* sfserve: the long-lived search-query daemon. Loads or generates a
   graph once, then answers framed search requests (doc/SERVING.md)
   over unix-domain and/or TCP sockets until stopped, batching every
   select round's in-flight searches across the domain pool.

   Examples:
     sfserve --graph corpus.sfgb --listen unix:/tmp/sf.sock
     sfserve --model mori -n 100000 --listen tcp:127.0.0.1:7440 \
             --telemetry /tmp/sf.telem --metrics serve.obs.json
     sfload unix:/tmp/sf.sock --requests 10000 --rate 500 *)

open Cmdliner

let run model n p m alpha exponent graph_file listen seed target default_budget
    max_frame (obs : Obs_cli.t) =
  let extra = ref [] in
  Obs_cli.with_session obs ~process:"server" ~extra:(fun () -> !extra) ~tool:"sfserve" ~seed
    ~mode:"serve"
  @@ fun () ->
  if listen = [] then begin
    prerr_endline
      "sfserve: no --listen endpoint (give at least one unix:PATH or tcp:HOST:PORT)";
    2
  end
  else begin
    let rng = Sf_prng.Rng.of_seed seed in
    let graph =
      match graph_file with
      | Some path -> Sf_store.Csr_codec.load_ugraph ~path ()
      | None ->
        fst
          (match model with
          | "mori" -> Sf_core.Searchability.mori_instance ~p ~m rng n
          | "cooper-frieze" ->
            let params =
              { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha }
            in
            Sf_core.Searchability.cooper_frieze_instance params rng n
          | "cooper-frieze-giant" ->
            let params =
              { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha }
            in
            Sf_core.Searchability.cooper_frieze_giant_instance params rng n
          | "config" -> Sf_core.Searchability.config_model_instance ~exponent rng n
          | other ->
            failwith
              ("unknown model: " ^ other
             ^ " (mori | cooper-frieze | cooper-frieze-giant | config)"))
    in
    let cfg =
      Sf_serve.Server.config ?default_target:target ?default_budget
        ?jobs:obs.Obs_cli.jobs ~max_payload:max_frame ~seed graph
    in
    let server = Sf_serve.Server.create cfg ~listen in
    let stop _ = Sf_serve.Server.stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Printf.printf "sfserve: %s vertices, %s edges; listening on %s\n%!"
      (Sf_stats.Table.fmt_int_grouped (Sf_graph.Ugraph.n_vertices graph))
      (Sf_stats.Table.fmt_int_grouped (Sf_graph.Ugraph.n_edges graph))
      (String.concat " "
         (List.map Sf_serve.Wire.endpoint_to_string
            (Sf_serve.Server.endpoints server)));
    Sf_serve.Server.run server;
    let served = Sf_serve.Server.served server in
    let errors = Sf_serve.Server.protocol_errors server in
    let conns = Sf_serve.Server.connections_accepted server in
    Printf.printf
      "sfserve: served %d searches over %d connections (%d protocol errors)\n"
      served conns errors;
    extra :=
      [
        ( "listen",
          Sf_obs.Export.json_string
            (String.concat " "
               (List.map Sf_serve.Wire.endpoint_to_string
                  (Sf_serve.Server.endpoints server))) );
        ("n", string_of_int (Sf_graph.Ugraph.n_vertices graph));
        ("served", string_of_int served);
        ("connections", string_of_int conns);
      ];
    0
  end

let model_arg =
  Arg.(
    value & opt string "mori"
    & info [ "model" ] ~doc:"mori | cooper-frieze | cooper-frieze-giant | config")

let n_arg =
  Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Generated graph size")

let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori parameter")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Mori merge factor")

let alpha_arg =
  Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze alpha")

let exponent_arg =
  Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Config-model exponent")

let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph" ]
        ~doc:
          "Serve a graph file (edge list or binary, sniffed by magic) instead of \
           generating")

let listen_arg =
  Arg.(
    value
    & opt_all Obs_cli.endpoint_conv []
    & info [ "listen" ] ~docv:"ENDPOINT"
        ~doc:
          "Listen on $(docv) (unix:PATH, tcp:HOST:PORT, or a bare socket path); \
           repeatable. Stale unix sockets are reclaimed, live ones refused")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ]
        ~doc:
          "Master seed of the per-request reply streams: fixed seed means every \
           request id gets the same reply, at any --jobs")

let target_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "target" ]
        ~doc:"Default search target (default: vertex n, the newest vertex)")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "default-budget" ]
        ~doc:"Oracle budget for requests that name none (default: 4n + 64)")

let max_frame_arg =
  Arg.(
    value
    & opt int Sf_serve.Wire.max_payload_default
    & info [ "max-frame" ] ~doc:"Per-frame payload cap in bytes")

let cmd =
  let doc = "serve local-knowledge search queries from a long-lived daemon" in
  Cmd.v
    (Cmd.info "sfserve" ~doc)
    Term.(
      const run $ model_arg $ n_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg
      $ graph_arg $ listen_arg $ seed_arg $ target_arg $ budget_arg
      $ max_frame_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
