(* sfsim: run one query-dissemination simulation and print its cost
   profile.

   Examples:
     sfsim --protocol flood --ttl 7 -n 20000
     sfsim --protocol walkers -k 32 --ttl 4000 -n 20000 --trials 30
     sfsim --protocol percolation -q 0.5 --ttl 10 --latency exp:2.0 *)

open Cmdliner

let parse_latency s =
  match String.split_on_char ':' s with
  | [ "const"; c ] -> Sf_sim.Network.Constant (float_of_string c)
  | [ "uniform"; lo; hi ] -> Sf_sim.Network.Uniform (float_of_string lo, float_of_string hi)
  | [ "exp"; mean ] -> Sf_sim.Network.Exponential (float_of_string mean)
  | _ -> failwith "latency: const:C | uniform:LO:HI | exp:MEAN"

let run protocol_name n exponent ttl k q trials seed latency graph_file (obs : Obs_cli.t) =
  Obs_cli.with_session obs ~tool:"sfsim" ~seed ~mode:protocol_name @@ fun () ->
  let rng = Sf_prng.Rng.of_seed seed in
  let protocol =
    match protocol_name with
    | "flood" -> Sf_sim.Query_sim.Flood { ttl }
    | "walkers" -> Sf_sim.Query_sim.K_walkers { k; ttl }
    | "percolation" -> Sf_sim.Query_sim.Percolation { q; ttl }
    | other -> failwith ("unknown protocol: " ^ other ^ " (flood | walkers | percolation)")
  in
  let g, overlay_desc =
    match graph_file with
    | Some path ->
      (Sf_store.Codec.read_any_file ~path, Printf.sprintf "loaded from %s" path)
    | None ->
      ( Sf_gen.Config_model.searchable_power_law rng ~n ~exponent (),
        Printf.sprintf "power-law giant component, exponent %.2f" exponent )
  in
  let net = Sf_sim.Network.create ~latency:(parse_latency latency) (Sf_graph.Ugraph.of_digraph g) in
  let n' = Sf_sim.Network.n_nodes net in
  Printf.printf "overlay: %s peers (%s)\n" (Sf_stats.Table.fmt_int_grouped n') overlay_desc;
  let hits = ref 0 in
  let messages = Sf_stats.Summary.create () in
  let contacted = Sf_stats.Summary.create () in
  let times = Sf_stats.Summary.create () in
  let progress =
    if obs.Obs_cli.progress then
      Some (Sf_obs.Progress.create ~label:"queries" ~total:trials ())
    else None
  in
  for trial = 1 to trials do
    let trial_rng = Sf_prng.Rng.split_at rng trial in
    let source = 1 + Sf_prng.Rng.int trial_rng n' in
    let target = 1 + Sf_prng.Rng.int trial_rng n' in
    if source <> target then begin
      let res =
        Sf_sim.Query_sim.query ~rng:trial_rng net protocol ~source
          ~holders:(Sf_sim.Query_sim.single_target net target)
      in
      Sf_stats.Summary.add_int messages res.Sf_sim.Query_sim.messages;
      Sf_stats.Summary.add_int contacted res.Sf_sim.Query_sim.contacted;
      if res.Sf_sim.Query_sim.hit then begin
        incr hits;
        Option.iter (Sf_stats.Summary.add times) res.Sf_sim.Query_sim.hit_time
      end
    end;
    Option.iter
      (fun pr ->
        Sf_obs.Progress.step pr ~detail:(Printf.sprintf "%d hits" !hits))
      progress
  done;
  Option.iter Sf_obs.Progress.finish progress;
  Printf.printf "trials:          %d\n" trials;
  Printf.printf "hit rate:        %.2f\n" (float_of_int !hits /. float_of_int trials);
  Printf.printf "mean messages:   %.0f (max %.0f)\n" (Sf_stats.Summary.mean messages)
    (Sf_stats.Summary.max_value messages);
  Printf.printf "mean contacted:  %.0f peers (%.3f of the overlay)\n"
    (Sf_stats.Summary.mean contacted)
    (Sf_stats.Summary.mean contacted /. float_of_int n');
  if !hits > 0 then
    Printf.printf "mean hit time:   %.2f (min %.2f, max %.2f)\n" (Sf_stats.Summary.mean times)
      (Sf_stats.Summary.min_value times)
      (Sf_stats.Summary.max_value times);
  0

let protocol_arg =
  Arg.(value & opt string "flood" & info [ "protocol" ] ~doc:"flood | walkers | percolation")

let n_arg = Arg.(value & opt int 20_000 & info [ "n" ] ~doc:"Overlay size")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Degree exponent")
let ttl_arg = Arg.(value & opt int 7 & info [ "ttl" ] ~doc:"Hop budget per message/walker")
let k_arg = Arg.(value & opt int 16 & info [ "k" ] ~doc:"Number of walkers")
let q_arg = Arg.(value & opt float 0.5 & info [ "q" ] ~doc:"Percolation forwarding probability")
let trials_arg = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Independent queries")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")
let latency_arg =
  Arg.(value & opt string "uniform:0.5:1.5" & info [ "latency" ] ~doc:"const:C | uniform:LO:HI | exp:MEAN")

let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph" ]
        ~doc:
          "Use this graph file as the overlay (edge list or binary, sniffed by magic) \
           instead of generating a configuration model")

let cmd =
  let doc = "simulate P2P query dissemination protocols" in
  Cmd.v (Cmd.info "sfsim" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ exponent_arg $ ttl_arg $ k_arg $ q_arg $ trials_arg
      $ seed_arg $ latency_arg $ graph_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
