(* sfanalyze: structural report for a generated or loaded graph -
   degree laws, correlations, clustering, cores, distances.  The
   one-stop diagnostic behind experiments T9, T10 and T15.

   Examples:
     sfanalyze --model mori -n 20000 -p 0.75
     sfanalyze --graph g.edges
     sfanalyze --model config -n 50000 --exponent 2.3 --distances *)

open Cmdliner

(* The report is Ugraph-native: an mmap-loaded corpus graph (SFGB v2)
   is analysed directly from its CSR sections, never materialising a
   boxed copy (doc/SCALING.md). *)
let report ?(distances = false) ~seed u =
  let rng = Sf_prng.Rng.of_seed seed in
  let n = Sf_graph.Ugraph.n_vertices u in
  let in_deg = Sf_graph.Metrics.u_in_degrees u in
  let total_deg = Sf_graph.Metrics.u_total_degrees u in
  Printf.printf "== size ==\n";
  Printf.printf "vertices            %s\n" (Sf_stats.Table.fmt_int_grouped n);
  Printf.printf "edges               %s\n" (Sf_stats.Table.fmt_int_grouped (Sf_graph.Ugraph.n_edges u));
  Printf.printf "self loops          %d\n" (Sf_graph.Metrics.u_self_loops u);
  Printf.printf "parallel edges      %d\n" (Sf_graph.Metrics.u_parallel_edges u);
  Printf.printf "connected           %b\n\n" (Sf_graph.Traversal.is_connected u);
  Printf.printf "== degrees ==\n";
  Printf.printf "mean total degree   %.2f\n" (Sf_graph.Metrics.u_mean_degree u);
  Printf.printf "max in / total      %d / %d\n"
    (Array.fold_left max 0 in_deg)
    (Array.fold_left max 0 total_deg);
  (try
     let fit = Sf_stats.Power_law.fit_scan total_deg () in
     Printf.printf "power-law tail      gamma=%.2f (x_min=%d, KS=%.3f, tail n=%d)\n"
       fit.Sf_stats.Power_law.alpha fit.Sf_stats.Power_law.x_min fit.Sf_stats.Power_law.ks
       fit.Sf_stats.Power_law.n_tail
   with Invalid_argument _ -> Printf.printf "power-law tail      (no admissible fit)\n");
  Printf.printf "\n== correlations (T15 statistics) ==\n";
  Printf.printf "assortativity       %+.3f\n" (Sf_graph.Correlation.assortativity u);
  Printf.printf "knn log-log slope   %+.3f\n" (Sf_graph.Correlation.knn_slope u);
  Printf.printf "age-degree rho      %+.3f\n" (Sf_graph.Correlation.age_degree_spearman u);
  Printf.printf "\n== structure ==\n";
  Printf.printf "degeneracy (k-core) %d\n" (Sf_graph.Kcore.degeneracy u);
  let cores = Sf_graph.Kcore.core_sizes u in
  Printf.printf "core sizes          %s\n"
    (String.concat ", " (List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c) cores));
  if n <= 20_000 then
    Printf.printf "avg clustering      %.4f\n" (Sf_graph.Clustering.average_local u)
  else Printf.printf "avg clustering      (skipped; n > 20000)\n";
  if distances then begin
    Printf.printf "\n== distances ==\n";
    Printf.printf "diameter (2-sweep)  %d\n" (Sf_graph.Traversal.diameter_double_sweep u rng);
    Printf.printf "mean distance       %.2f (sampled)\n"
      (Sf_graph.Traversal.mean_distance_sampled u rng ~samples:4)
  end;
  Printf.printf "\n== indegree histogram (log-binned) ==\n%s"
    (try Sf_stats.Histogram.render (Sf_stats.Histogram.logarithmic in_deg ())
     with Invalid_argument _ -> "(no positive indegrees)\n")

let run model n p m alpha exponent seed graph_file distances (obs : Obs_cli.t) =
  let mode = match graph_file with Some _ -> "graph-file" | None -> model in
  Obs_cli.with_session obs ~tool:"sfanalyze" ~seed ~mode @@ fun () ->
  let rng = Sf_prng.Rng.of_seed seed in
  let boxed g = Sf_graph.Ugraph.of_digraph g in
  let u =
    match graph_file with
    | Some path -> Sf_store.Csr_codec.load_ugraph ~path ()
    | None -> (
      match model with
      (* samplewise identical to the legacy path, so reports match
         old ones draw for draw — just without the boxed detour *)
      | "mori" -> Sf_gen.Mori.graph_giant rng ~p ~m ~n
      | "ba" -> boxed (Sf_gen.Barabasi_albert.generate rng ~n ~m:(max m 1))
      | "lcd" -> boxed (Sf_gen.Lcd.generate rng ~n ~m:(max m 1))
      | "cooper-frieze" ->
        let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
        boxed (Sf_gen.Cooper_frieze.generate_n_vertices rng params ~n)
      | "cooper-frieze-giant" ->
        let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
        Sf_gen.Cooper_frieze.generate_n_vertices_giant rng params ~n
      | "config" -> boxed (Sf_gen.Config_model.searchable_power_law rng ~n ~exponent ())
      | "uniform" -> boxed (Sf_gen.Uniform_attachment.tree rng ~t:n)
      | other -> failwith ("unknown model: " ^ other))
  in
  report ~distances ~seed u;
  0

let model_arg =
  Arg.(value & opt string "mori" & info [ "model" ] ~doc:"mori | ba | lcd | cooper-frieze | cooper-frieze-giant | config | uniform")

let n_arg = Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Vertices")
let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori parameter")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Out-degree / merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze alpha")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Config-model exponent")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")
let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph" ] ~doc:"Graph file to analyse (edge list or binary, sniffed by magic)")
let distances_arg = Arg.(value & flag & info [ "distances" ] ~doc:"Also estimate diameter and mean distance")

let cmd =
  let doc = "structural analysis of scale-free graphs" in
  Cmd.v (Cmd.info "sfanalyze" ~doc)
    Term.(
      const run $ model_arg $ n_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg $ seed_arg
      $ graph_arg $ distances_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
