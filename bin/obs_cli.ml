(* Shared observability plumbing for the command-line tools: the
   --metrics / --no-obs / --trace / --progress / --jobs flag set and
   the session bracket that turns them into attached sinks, an armed
   flight recorder, and a run manifest.

   Usage in a tool:

     let run ... (obs : Obs_cli.t) =
       Obs_cli.with_session obs ~tool:"sfgen" ~seed ~mode:model
         (fun () -> ... the tool body, returning an exit code ...)

   The bracket attaches the trace sinks before the body runs, dumps
   the flight recorder if the body raises or a strategy gives up,
   detaches (finalising the trace file) afterwards, and writes the
   manifest last so it sees every metric the body touched. *)

open Cmdliner

type t = {
  metrics : string option;
  no_obs : bool;
  trace : string option;
  progress : bool;
  jobs : int option;
  corpus : string option;
  telemetry : string option;
  telemetry_tick : float;
}

let term =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write an obs.json run manifest to $(docv); $(b,-) writes it to stdout so a \
             caller can capture it without a temp file")
  in
  let no_obs =
    Arg.(
      value & flag
      & info [ "no-obs" ]
          ~doc:"Disable all instrumentation (counters, timers, spans, trace events)")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the structured event trace to $(docv): a .jsonl suffix streams one \
             JSON object per event; any other suffix writes Chrome trace-event JSON \
             loadable in ui.perfetto.dev")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ] ~doc:"Report live progress on stderr")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel sections (trial grids, experiment \
             fan-out). Output is identical at any value for a fixed seed. Default: \
             $(b,SCALEFREE_JOBS) if set, else the machine's recommended domain count \
             capped at 8")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Content-addressed graph corpus cache (doc/STORAGE.md): generated graphs \
             are stored under $(docv) and replayed on later runs with byte-identical \
             results. Default: $(b,SCALEFREE_CORPUS) if set, else no cache")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"PATH"
          ~doc:
            "Serve live telemetry on a unix-domain socket at $(docv) while the run is \
             in flight: $(b,sftop) $(docv) attaches a dashboard, and the socket \
             answers $(b,metrics) (Prometheus text), $(b,json) and $(b,series) \
             commands (doc/OBSERVABILITY.md). Default: $(b,SCALEFREE_TELEMETRY) if \
             set, else off")
  in
  let telemetry_tick =
    Arg.(
      value & opt float 0.5
      & info [ "telemetry-tick" ] ~docv:"SECONDS"
          ~doc:"Background sampling period for the telemetry time series")
  in
  Term.(
    const (fun metrics no_obs trace progress jobs corpus telemetry telemetry_tick ->
        { metrics; no_obs; trace; progress; jobs; corpus; telemetry; telemetry_tick })
    $ metrics $ no_obs $ trace $ progress $ jobs $ corpus $ telemetry $ telemetry_tick)

(* One endpoint syntax for every flag that names a serving socket
   (sfserve --listen, sfload SERVER), so the tools cannot drift:
   unix:PATH | tcp:HOST:PORT | bare filesystem path. *)
let endpoint_conv : Sf_serve.Wire.endpoint Arg.conv =
  let parse s =
    match Sf_serve.Wire.endpoint_of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  let print fmt e =
    Format.pp_print_string fmt (Sf_serve.Wire.endpoint_to_string e)
  in
  Arg.conv (parse, print)

type session = {
  flight : Sf_obs.Flight.t option;
  sink_ids : Sf_obs.Trace.id list;
  telem : (Sf_obs.Series.t * Sf_obs.Expose.listener) option;
  wall0 : float;
  cpu0 : float;
}

(* --telemetry beats SCALEFREE_TELEMETRY beats off, mirroring how
   --jobs/SCALEFREE_JOBS and --corpus/SCALEFREE_CORPUS resolve *)
let telemetry_path (t : t) =
  match t.telemetry with
  | Some _ as p -> p
  | None -> (
    match Sys.getenv_opt "SCALEFREE_TELEMETRY" with Some "" | None -> None | Some _ as p -> p)

let start_telemetry (t : t) =
  match telemetry_path t with
  | None -> None
  | Some path when t.no_obs ->
    Printf.eprintf
      "observability is disabled (--no-obs); not serving telemetry on %s\n" path;
    None
  | Some path ->
    let series = Sf_obs.Series.create ~tick_s:t.telemetry_tick () in
    let listener = Sf_obs.Expose.serve ~series ~path () in
    Sf_obs.Series.start series;
    Printf.eprintf "serving live telemetry on %s (attach with: sftop %s)\n%!" path path;
    Some (series, listener)

let stop_telemetry session =
  match session.telem with
  | None -> ()
  | Some (series, listener) ->
    (* listener first: a scrape arriving mid-shutdown would race the
       sampler join; after [stop] the socket is gone *)
    Sf_obs.Expose.stop listener;
    Sf_obs.Series.stop series

let start ?process (t : t) =
  (* phase timings must not depend on Unix.gettimeofday: inject
     bechamel's CLOCK_MONOTONIC stub before anything reads the clock *)
  Sf_obs.Timer.set_clock (fun () -> Int64.to_float (Monotonic_clock.now ()) /. 1e9);
  (match t.jobs with
  | Some j when j < 1 -> invalid_arg "--jobs: need at least 1"
  | Some j -> Sf_parallel.Pool.set_default_jobs j
  | None -> ());
  (* before any domains spawn: the corpus handle is a process global *)
  Sf_store.Corpus.configure ?dir:t.corpus ();
  if t.no_obs then Sf_obs.Registry.set_enabled false;
  let telem = start_telemetry t in
  (* Sys.time sums CPU across all domains, so cpu/wall is the achieved
     parallel speedup recorded in the manifest *)
  let session sinks flight =
    { flight; sink_ids = sinks; telem; wall0 = Unix.gettimeofday (); cpu0 = Sys.time () }
  in
  match t.trace with
  | None -> session [] None
  | Some path when t.no_obs ->
    Printf.eprintf
      "observability is disabled (--no-obs); not writing an event trace to %s\n" path;
    session [] None
  | Some path ->
    (* the recorder rides along only when tracing is on, so untraced
       runs keep the stream inactive and pay nothing per event *)
    let flight = Sf_obs.Flight.create () in
    Sf_obs.Flight.arm flight
      ~trigger:(fun e -> e.Sf_obs.Trace.name = "search.gave_up")
      ~action:(fun f ->
        Printf.eprintf "flight recorder: a strategy gave up; recent events:\n";
        Sf_obs.Flight.dump f);
    (* kill -USR1 <pid> dumps the same ring, for runs that are stuck
       rather than raising *)
    ignore (Sf_obs.Flight.install_sigusr1 flight);
    let flight_id = Sf_obs.Trace.attach (Sf_obs.Flight.sink flight) in
    let file_id = Sf_obs.Trace_export.attach_file ?process path in
    session [ flight_id; file_id ] (Some flight)

let close_sinks session = List.iter Sf_obs.Trace.detach session.sink_ids

let perf_extra session =
  let wall_s = Unix.gettimeofday () -. session.wall0 in
  let cpu_s = Sys.time () -. session.cpu0 in
  [
    ("jobs", string_of_int (Sf_parallel.Pool.default_jobs ()));
    ("wall_s", Sf_obs.Export.json_float wall_s);
    ("cpu_s", Sf_obs.Export.json_float cpu_s);
    ("parallel_speedup", Sf_obs.Export.json_float (if wall_s > 0. then cpu_s /. wall_s else 1.));
  ]

(* recorded in the manifest so a warm-cache run is auditable: the
   cache.hit/miss counters say what happened, corpus_dir says where *)
let corpus_extra () =
  match Sf_store.Corpus.cache () with
  | None -> []
  | Some cache ->
    [
      ("corpus_dir", Sf_obs.Export.json_string (Sf_store.Cache.dir cache));
      ("corpus_entries", string_of_int (List.length (Sf_store.Cache.entries cache)));
      ("corpus_bytes", string_of_int (Sf_store.Cache.total_bytes cache));
    ]

(* [extra] is a thunk: manifest extras (instance sizes, strategy
   names) are typically computed inside the body, after the session
   has already started. *)
let finish (t : t) session ?(extra = fun () -> []) ~tool ~seed ~mode code =
  (* telemetry stops before the manifest is written, so the final
     rss_peak/scrape figures cover the whole body *)
  stop_telemetry session;
  close_sinks session;
  (match t.trace with
  | Some path when not t.no_obs -> Printf.printf "wrote event trace to %s\n" path
  | Some _ | None -> ());
  match t.metrics with
  | None -> code
  | Some path -> (
    match
      Sf_obs.Export.write_manifest_checked
        ~extra:
          (perf_extra session
          @ Sf_obs.Expose.manifest_extras
              ?listener:(Option.map snd session.telem)
              ()
          @ corpus_extra () @ extra ())
        ~tool ~seed ~mode ~path ()
    with
    | `Written ->
      (* stdout manifests (--metrics -) get their confirmation on
         stderr so the captured document stays clean *)
      let print = if path = "-" then Printf.eprintf else Printf.printf in
      print "wrote run manifest to %s (%d metrics)\n"
        (if path = "-" then "stdout" else path)
        (List.length (Sf_obs.Registry.names ()));
      code
    | `Skipped_disabled -> code (* the warning is already on stderr *)
    | `Error msg ->
      Printf.eprintf "cannot write run manifest: %s\n" msg;
      if code = 0 then 1 else code)

let with_session (t : t) ?process ?extra ~tool ~seed ~mode body =
  let session = start ?process t in
  match body () with
  | code -> finish t session ?extra ~tool ~seed ~mode code
  | exception exn ->
    (match session.flight with
    | Some f when Sf_obs.Flight.seen f > 0 ->
      Printf.eprintf "flight recorder: run raised (%s); recent events:\n"
        (Printexc.to_string exn);
      Sf_obs.Flight.dump f
    | Some _ | None -> ());
    stop_telemetry session;
    close_sinks session;
    raise exn
