(* sfgen: generate any of the library's random-graph models and write
   it as an edge list (or DOT), printing summary statistics.

   Examples:
     sfgen mori -n 10000 -p 0.5 --seed 7 --out g.edges
     sfgen mori -n 10000 -p 0.5 --seed 7 --out g.sfg --format bin
     sfgen cooper-frieze -n 5000 --alpha 0.9 --stats
     sfgen config -n 100000 --exponent 2.3 --out -
     sfgen kleinberg --side 64 --r 2.0 --dot grid.dot *)

open Cmdliner

let generate_graph ~model ~n ~p ~m ~alpha ~exponent ~d_min ~side ~r ~q ~seed =
  let rng = Sf_prng.Rng.of_seed seed in
  match model with
  | "mori" -> Ok (Sf_gen.Mori.graph rng ~p ~m ~n)
  | "ba" -> Ok (Sf_gen.Barabasi_albert.generate rng ~n ~m)
  | "cooper-frieze" ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
    Ok (Sf_gen.Cooper_frieze.generate_n_vertices rng params ~n)
  | "config" -> Ok (Sf_gen.Config_model.power_law rng ~n ~exponent ~d_min ())
  | "config-giant" -> Ok (Sf_gen.Config_model.searchable_power_law rng ~n ~exponent ~d_min ())
  | "kleinberg" -> Ok (Sf_gen.Kleinberg.generate rng ~side ~r ~q ()).Sf_gen.Kleinberg.graph
  | "uniform" -> Ok (Sf_gen.Uniform_attachment.tree rng ~t:n)
  | "gnm" -> Ok (Sf_gen.Erdos_renyi.gnm rng ~n ~m:(n * m))
  | other -> Error (`Msg ("unknown model: " ^ other))

let print_stats g =
  let u = Sf_graph.Ugraph.of_digraph g in
  let in_deg = Sf_graph.Metrics.in_degrees g in
  Printf.printf "vertices:        %s\n" (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_vertices g));
  Printf.printf "edges:           %s\n" (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_edges g));
  Printf.printf "mean degree:     %.2f\n" (Sf_graph.Metrics.mean_degree g);
  Printf.printf "max in-degree:   %d\n" (Sf_graph.Metrics.max_in_degree g);
  Printf.printf "max total deg:   %d\n" (Sf_graph.Metrics.max_total_degree g);
  Printf.printf "self loops:      %d\n" (Sf_graph.Metrics.self_loops g);
  Printf.printf "parallel edges:  %d\n" (Sf_graph.Metrics.parallel_edges g);
  Printf.printf "connected:       %b\n" (Sf_graph.Traversal.is_connected u);
  (try
     let fit = Sf_stats.Power_law.fit_scan in_deg () in
     Printf.printf "power-law tail:  gamma=%.2f (x_min=%d, KS=%.3f)\n" fit.Sf_stats.Power_law.alpha
       fit.Sf_stats.Power_law.x_min fit.Sf_stats.Power_law.ks
   with Invalid_argument _ -> Printf.printf "power-law tail:  (no admissible fit)\n");
  Printf.printf "\nlog-binned indegree histogram:\n%s"
    (try Sf_stats.Histogram.render (Sf_stats.Histogram.logarithmic in_deg ())
     with Invalid_argument _ -> "(no positive indegrees)\n")

let run model n p m alpha exponent d_min side r q seed out format dot stats (obs : Obs_cli.t) =
  Obs_cli.with_session obs ~tool:"sfgen" ~seed ~mode:model @@ fun () ->
  match
    generate_graph ~model ~n ~p ~m ~alpha ~exponent ~d_min ~side ~r ~q ~seed
  with
  | Error (`Msg msg) ->
    Printf.eprintf "sfgen: %s\n" msg;
    1
  | Ok g ->
    (match (out, format) with
    | Some "-", `Edges -> print_string (Sf_graph.Gio.to_edge_list g)
    | Some "-", `Bin ->
      set_binary_mode_out stdout true;
      print_string (Sf_store.Codec.encode g)
    | Some path, `Edges ->
      Sf_graph.Gio.write_edge_list g ~path;
      Printf.printf "wrote %s\n" path
    | Some path, `Bin ->
      Sf_store.Codec.write_graph_file g ~path;
      Printf.printf "wrote %s\n" path
    | None, _ -> ());
    (match dot with
    | Some path ->
      let oc = open_out path in
      output_string oc (Sf_graph.Gio.to_dot g);
      close_out oc;
      Printf.printf "wrote %s\n" path
    | None -> ());
    if stats || (out = None && dot = None) then print_stats g;
    0

let model_arg =
  let doc =
    "Model: mori | ba | cooper-frieze | config | config-giant | kleinberg | uniform | gnm"
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let n_arg = Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Number of vertices")
let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori preferential-attachment weight (0 < p <= 1)")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Out-degree / merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze NEW-step probability")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Configuration-model power-law exponent")
let d_min_arg = Arg.(value & opt int 2 & info [ "d-min" ] ~doc:"Configuration-model minimum degree")
let side_arg = Arg.(value & opt int 32 & info [ "side" ] ~doc:"Kleinberg grid side")
let r_arg = Arg.(value & opt float 2.0 & info [ "r" ] ~doc:"Kleinberg clustering exponent")
let q_arg = Arg.(value & opt int 1 & info [ "q" ] ~doc:"Kleinberg long-range links per vertex")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")
let out_arg = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Graph output path ('-' for stdout)")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("edges", `Edges); ("bin", `Bin) ]) `Edges
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format for --out: $(b,edges) (text edge list) or $(b,bin) (the \
           versioned binary graph format of doc/STORAGE.md — exact round trip \
           including edge-insertion order)")
let dot_arg = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"GraphViz DOT output path")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print summary statistics")

let cmd =
  let doc = "generate random scale-free (and control) graphs" in
  Cmd.v
    (Cmd.info "sfgen" ~doc)
    Term.(
      const run $ model_arg $ n_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg $ d_min_arg
      $ side_arg $ r_arg $ q_arg $ seed_arg $ out_arg $ format_arg $ dot_arg $ stats_arg
      $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
