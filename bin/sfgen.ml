(* sfgen: generate any of the library's random-graph models and write
   it as an edge list (or DOT), printing summary statistics.

   Examples:
     sfgen mori -n 10000 -p 0.5 --seed 7 --out g.edges
     sfgen mori -n 10000 -p 0.5 --seed 7 --out g.sfg --format bin
     sfgen mori -n 10000000 -p 0.5 --engine giant --out g.sfg --format csr
     sfgen cooper-frieze -n 5000 --alpha 0.9 --stats
     sfgen config -n 100000 --exponent 2.3 --out -
     sfgen kleinberg --side 64 --r 2.0 --dot grid.dot *)

open Cmdliner

(* The giant engines build CSR-backed undirected views and never
   materialise a boxed Digraph; models without a giant engine always
   come out boxed.  Everything downstream (stats, writers) handles
   both. *)
type built = Boxed of Sf_graph.Digraph.t | Giant of Sf_graph.Ugraph.t

(* --engine auto switches Mori / Cooper-Frieze to the giant engine at
   this size; explicit --engine giant|legacy overrides.  200k vertices
   is where the boxed representation's memory (~100 B/vertex plus
   per-edge boxes) starts to dominate a default container. *)
let auto_giant_threshold = 200_000

let generate_graph ~model ~engine ~n ~p ~m ~alpha ~exponent ~d_min ~side ~r ~q ~seed =
  let rng = Sf_prng.Rng.of_seed seed in
  let giant =
    match engine with
    | `Giant -> true
    | `Legacy -> false
    | `Auto -> n >= auto_giant_threshold
  in
  match (model, giant) with
  | "mori", true -> Ok (Giant (Sf_gen.Mori.graph_giant rng ~p ~m ~n))
  | "mori", false -> Ok (Boxed (Sf_gen.Mori.graph rng ~p ~m ~n))
  | "cooper-frieze", true ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
    Ok (Giant (Sf_gen.Cooper_frieze.generate_n_vertices_giant rng params ~n))
  | "cooper-frieze", false ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
    Ok (Boxed (Sf_gen.Cooper_frieze.generate_n_vertices rng params ~n))
  | other, true when engine = `Giant ->
    Error (`Msg ("model has no giant engine: " ^ other ^ " (mori and cooper-frieze do)"))
  | "ba", _ -> Ok (Boxed (Sf_gen.Barabasi_albert.generate rng ~n ~m))
  | "config", _ -> Ok (Boxed (Sf_gen.Config_model.power_law rng ~n ~exponent ~d_min ()))
  | "config-giant", _ ->
    Ok (Boxed (Sf_gen.Config_model.searchable_power_law rng ~n ~exponent ~d_min ()))
  | "kleinberg", _ ->
    Ok (Boxed (Sf_gen.Kleinberg.generate rng ~side ~r ~q ()).Sf_gen.Kleinberg.graph)
  | "uniform", _ -> Ok (Boxed (Sf_gen.Uniform_attachment.tree rng ~t:n))
  | "gnm", _ -> Ok (Boxed (Sf_gen.Erdos_renyi.gnm rng ~n ~m:(n * m)))
  | other, _ -> Error (`Msg ("unknown model: " ^ other))

let print_stats g =
  let u = Sf_graph.Ugraph.of_digraph g in
  let in_deg = Sf_graph.Metrics.in_degrees g in
  Printf.printf "vertices:        %s\n" (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_vertices g));
  Printf.printf "edges:           %s\n" (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_edges g));
  Printf.printf "mean degree:     %.2f\n" (Sf_graph.Metrics.mean_degree g);
  Printf.printf "max in-degree:   %d\n" (Sf_graph.Metrics.max_in_degree g);
  Printf.printf "max total deg:   %d\n" (Sf_graph.Metrics.max_total_degree g);
  Printf.printf "self loops:      %d\n" (Sf_graph.Metrics.self_loops g);
  Printf.printf "parallel edges:  %d\n" (Sf_graph.Metrics.parallel_edges g);
  Printf.printf "connected:       %b\n" (Sf_graph.Traversal.is_connected u);
  (try
     let fit = Sf_stats.Power_law.fit_scan in_deg () in
     Printf.printf "power-law tail:  gamma=%.2f (x_min=%d, KS=%.3f)\n" fit.Sf_stats.Power_law.alpha
       fit.Sf_stats.Power_law.x_min fit.Sf_stats.Power_law.ks
   with Invalid_argument _ -> Printf.printf "power-law tail:  (no admissible fit)\n");
  Printf.printf "\nlog-binned indegree histogram:\n%s"
    (try Sf_stats.Histogram.render (Sf_stats.Histogram.logarithmic in_deg ())
     with Invalid_argument _ -> "(no positive indegrees)\n")

(* Ugraph-native statistics: one pass over the flat endpoint sections,
   no boxed conversion — a 10M-vertex graph stays a 10M-vertex graph *)
let print_ugraph_stats u =
  let module U = Sf_graph.Ugraph in
  let n = U.n_vertices u and m = U.n_edges u in
  let in_deg = Array.make n 0 in
  let self_loops = ref 0 in
  for id = 0 to m - 1 do
    let s, d = U.endpoints u id in
    in_deg.(d - 1) <- in_deg.(d - 1) + 1;
    if s = d then incr self_loops
  done;
  let max_in = Array.fold_left max 0 in_deg in
  Printf.printf "vertices:        %s\n" (Sf_stats.Table.fmt_int_grouped n);
  Printf.printf "edges:           %s\n" (Sf_stats.Table.fmt_int_grouped m);
  Printf.printf "mean degree:     %.2f\n" (2. *. float_of_int m /. float_of_int (max n 1));
  Printf.printf "max in-degree:   %d\n" max_in;
  Printf.printf "max degree:      %d\n" (U.max_degree u);
  Printf.printf "self loops:      %d\n" !self_loops;
  Printf.printf "graph memory:    %s bytes (CSR)\n"
    (Sf_stats.Table.fmt_int_grouped (U.memory_bytes u));
  (try
     let fit = Sf_stats.Power_law.fit_scan in_deg () in
     Printf.printf "power-law tail:  gamma=%.2f (x_min=%d, KS=%.3f)\n" fit.Sf_stats.Power_law.alpha
       fit.Sf_stats.Power_law.x_min fit.Sf_stats.Power_law.ks
   with Invalid_argument _ -> Printf.printf "power-law tail:  (no admissible fit)\n");
  Printf.printf "\nlog-binned indegree histogram:\n%s"
    (try Sf_stats.Histogram.render (Sf_stats.Histogram.logarithmic in_deg ())
     with Invalid_argument _ -> "(no positive indegrees)\n")

let ugraph_edge_list u =
  let module U = Sf_graph.Ugraph in
  let n = U.n_vertices u and m = U.n_edges u in
  let buf = Buffer.create (16 + (8 * m)) in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" n m);
  for id = 0 to m - 1 do
    let s, d = U.endpoints u id in
    Buffer.add_string buf (Printf.sprintf "%d %d\n" s d)
  done;
  Buffer.contents buf

let write_output built ~out ~format =
  match (built, out, format) with
  | _, None, _ -> Ok false
  | Boxed g, Some "-", `Edges ->
    print_string (Sf_graph.Gio.to_edge_list g);
    Ok true
  | Giant u, Some "-", `Edges ->
    print_string (ugraph_edge_list u);
    Ok true
  | Boxed g, Some "-", `Bin ->
    set_binary_mode_out stdout true;
    print_string (Sf_store.Codec.encode g);
    Ok true
  | Giant u, Some "-", `Bin ->
    set_binary_mode_out stdout true;
    print_string (Sf_store.Codec.encode_ugraph u);
    Ok true
  | _, Some "-", `Csr -> Error (`Msg "--format csr needs a real --out path (it is written, not streamed)")
  | Boxed g, Some path, `Edges ->
    Sf_graph.Gio.write_edge_list g ~path;
    Printf.printf "wrote %s\n" path;
    Ok true
  | Giant u, Some path, `Edges ->
    Out_channel.with_open_bin path (fun oc -> output_string oc (ugraph_edge_list u));
    Printf.printf "wrote %s\n" path;
    Ok true
  | Boxed g, Some path, `Bin ->
    Sf_store.Codec.write_graph_file g ~path;
    Printf.printf "wrote %s\n" path;
    Ok true
  | Giant u, Some path, `Bin ->
    Sf_store.Codec.write_graph_file (Sf_store.Codec.digraph_of_ugraph u) ~path;
    Printf.printf "wrote %s\n" path;
    Ok true
  | Boxed g, Some path, `Csr ->
    Sf_store.Csr_codec.write_ugraph_file (Sf_graph.Ugraph.of_digraph g) ~path;
    Printf.printf "wrote %s\n" path;
    Ok true
  | Giant u, Some path, `Csr ->
    Sf_store.Csr_codec.write_ugraph_file u ~path;
    Printf.printf "wrote %s\n" path;
    Ok true

let run model engine n p m alpha exponent d_min side r q seed out format dot stats
    (obs : Obs_cli.t) =
  Obs_cli.with_session obs ~tool:"sfgen" ~seed ~mode:model @@ fun () ->
  match
    generate_graph ~model ~engine ~n ~p ~m ~alpha ~exponent ~d_min ~side ~r ~q ~seed
  with
  | Error (`Msg msg) ->
    Printf.eprintf "sfgen: %s\n" msg;
    1
  | Ok built -> (
    match write_output built ~out ~format with
    | Error (`Msg msg) ->
      Printf.eprintf "sfgen: %s\n" msg;
      1
    | Ok wrote ->
      (match (dot, built) with
      | Some path, Boxed g ->
        let oc = open_out path in
        output_string oc (Sf_graph.Gio.to_dot g);
        close_out oc;
        Printf.printf "wrote %s\n" path
      | Some path, Giant u ->
        (* DOT is for small demo graphs; the boxed detour is fine here *)
        let oc = open_out path in
        output_string oc (Sf_graph.Gio.to_dot (Sf_store.Codec.digraph_of_ugraph u));
        close_out oc;
        Printf.printf "wrote %s\n" path
      | None, _ -> ());
      if stats || ((not wrote) && dot = None) then begin
        match built with
        | Boxed g -> print_stats g
        | Giant u -> print_ugraph_stats u
      end;
      0)

let model_arg =
  let doc =
    "Model: mori | ba | cooper-frieze | config | config-giant | kleinberg | uniform | gnm"
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("legacy", `Legacy); ("giant", `Giant) ]) `Auto
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Generation engine for mori and cooper-frieze: $(b,giant) builds straight \
           into flat CSR storage (required beyond a few hundred thousand vertices, \
           doc/SCALING.md), $(b,legacy) uses the boxed representation, $(b,auto) \
           (default) picks giant at n >= 200000. The Mori giant engine draws the \
           identical random sequence as legacy; the cooper-frieze one is equal in \
           law only.")

let n_arg = Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Number of vertices")
let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori preferential-attachment weight (0 < p <= 1)")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Out-degree / merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze NEW-step probability")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Configuration-model power-law exponent")
let d_min_arg = Arg.(value & opt int 2 & info [ "d-min" ] ~doc:"Configuration-model minimum degree")
let side_arg = Arg.(value & opt int 32 & info [ "side" ] ~doc:"Kleinberg grid side")
let r_arg = Arg.(value & opt float 2.0 & info [ "r" ] ~doc:"Kleinberg clustering exponent")
let q_arg = Arg.(value & opt int 1 & info [ "q" ] ~doc:"Kleinberg long-range links per vertex")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")
let out_arg = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc:"Graph output path ('-' for stdout)")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("edges", `Edges); ("bin", `Bin); ("csr", `Csr) ]) `Edges
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format for --out: $(b,edges) (text edge list), $(b,bin) (the \
           compact varint container, SFGB v1 — exact round trip including \
           edge-insertion order) or $(b,csr) (the mmap-readable giant container, \
           SFGB v2 — what sfsearch/sfanalyze open without a decode pass; \
           doc/STORAGE.md)")
let dot_arg = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"GraphViz DOT output path")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print summary statistics")

let cmd =
  let doc = "generate random scale-free (and control) graphs" in
  Cmd.v
    (Cmd.info "sfgen" ~doc)
    Term.(
      const run $ model_arg $ engine_arg $ n_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg
      $ d_min_arg $ side_arg $ r_arg $ q_arg $ seed_arg $ out_arg $ format_arg $ dot_arg
      $ stats_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
