(* sfload: open-loop load generator for a running sfserve daemon.

   Examples:
     sfload unix:/tmp/sf.sock --requests 10000 --rate 500 --connections 4
     sfload tcp:127.0.0.1:7440 --requests 5000 --mix high-degree:3,rand-walk:1 \
            --summary load.txt --bench BENCH_load.json --stop-server

   With --rate 0 (the default) the run is a closed-loop saturation
   probe windowed by --concurrency; with --rate R requests arrive on a
   Poisson schedule and latency is measured from each request's
   scheduled arrival (doc/SERVING.md, "Capacity planning"). The
   summary block is deterministic for a fixed --seed; the wall-clock
   report is not and does not try to be. *)

open Cmdliner

let mix_conv : (string * float) list Arg.conv =
  let parse s =
    try
      let items = String.split_on_char ',' s in
      if items = [] then failwith "empty mix";
      Ok
        (List.map
           (fun item ->
             match String.index_opt item ':' with
             | None ->
               if item = "" then failwith "empty strategy name";
               (item, 1.)
             | Some i ->
               let name = String.sub item 0 i in
               let w =
                 float_of_string
                   (String.sub item (i + 1) (String.length item - i - 1))
               in
               if name = "" then failwith "empty strategy name";
               if w <= 0. then failwith "weights must be positive";
               (name, w))
           items)
    with Failure msg ->
      Error (`Msg (Printf.sprintf "bad mix %S (NAME[:WEIGHT],...): %s" s msg))
  in
  let print fmt mix =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map (fun (n, w) -> Printf.sprintf "%s:%g" n w) mix))
  in
  Arg.conv (parse, print)

let target_conv : Sf_serve.Load.target_spec Arg.conv =
  let parse = function
    | "server" -> Ok Sf_serve.Load.Server_default
    | "uniform" -> Ok Sf_serve.Load.Uniform_target
    | s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok (Sf_serve.Load.Fixed_target v)
      | _ -> Error (`Msg (Printf.sprintf "bad target %S (server | uniform | VERTEX)" s)))
  in
  let print fmt = function
    | Sf_serve.Load.Server_default -> Format.pp_print_string fmt "server"
    | Sf_serve.Load.Uniform_target -> Format.pp_print_string fmt "uniform"
    | Sf_serve.Load.Fixed_target v -> Format.pp_print_int fmt v
  in
  Arg.conv (parse, print)

let iso_utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* --ramp: geometric rate escalation until p99 blows the threshold,
   then bisect — one capacity number out (doc/SERVING.md) *)
let run_ramp ~server ~requests ~connections ~concurrency ~mix ~target ~budget
    ~stop_at_neighbor ~seed ~timeout ~ramp_start ~ramp_factor ~ramp_p99_ms ~ramp_steps
    ~ramp_bisect =
  let probe ~rate =
    let cfg =
      Sf_serve.Load.config ~rate ~connections ~concurrency ~mix ~target ?budget
        ~stop_at_neighbor ~timeout ~seed ~requests server
    in
    let o = Sf_serve.Load.run cfg in
    Sf_serve.Load.record_metrics o;
    o
  in
  let r =
    Sf_serve.Load.ramp ~start:ramp_start ~factor:ramp_factor ~p99_ms:ramp_p99_ms
      ~max_steps:ramp_steps ~bisect:ramp_bisect probe
  in
  print_string (Sf_serve.Load.ramp_report r);
  match r.Sf_serve.Load.r_capacity with
  | Some c ->
    ( 0,
      [
        ("ramp_capacity_rps", Printf.sprintf "%.1f" c);
        ("ramp_probes", string_of_int (List.length r.Sf_serve.Load.r_steps));
      ] )
  | None -> (1, [ ("ramp_probes", string_of_int (List.length r.Sf_serve.Load.r_steps)) ])

let run server requests rate connections concurrency mix target budget
    stop_at_neighbor seed summary_file bench_file stop_server timeout ramp
    ramp_start ramp_factor ramp_p99_ms ramp_steps ramp_bisect (obs : Obs_cli.t) =
  let extra = ref [] in
  Obs_cli.with_session obs ~process:"load" ~extra:(fun () -> !extra) ~tool:"sfload" ~seed
    ~mode:(if ramp then "ramp" else "load")
  @@ fun () ->
  if ramp then begin
    let code, kv =
      run_ramp ~server ~requests ~connections ~concurrency ~mix ~target ~budget
        ~stop_at_neighbor ~seed ~timeout ~ramp_start ~ramp_factor ~ramp_p99_ms
        ~ramp_steps ~ramp_bisect
    in
    extra := List.map (fun (k, v) -> (k, v)) kv;
    if stop_server then begin
      let c = Sf_serve.Client.connect server in
      Fun.protect
        ~finally:(fun () -> Sf_serve.Client.close c)
        (fun () -> ignore (Sf_serve.Client.call c (Sf_serve.Wire.Shutdown 0)))
    end;
    code
  end
  else begin
  let cfg =
    Sf_serve.Load.config ~rate ~connections ~concurrency ~mix ~target ?budget
      ~stop_at_neighbor ~timeout ~seed ~requests server
  in
  let o = Sf_serve.Load.run cfg in
  Sf_serve.Load.record_metrics o;
  print_string (Sf_serve.Load.report o);
  let summary = Sf_serve.Load.summary o in
  print_string summary;
  Option.iter (fun path -> write_file path summary) summary_file;
  Option.iter
    (fun path ->
      Sf_perf.Bench_file.write ~path
        (Sf_serve.Load.to_bench ~date:(iso_utc_now ()) ~commit:"unknown"
           ~mode:"load" o);
      Printf.printf "wrote bench file %s\n" path)
    bench_file;
  if stop_server then begin
    let c = Sf_serve.Client.connect server in
    Fun.protect
      ~finally:(fun () -> Sf_serve.Client.close c)
      (fun () ->
        match Sf_serve.Client.call c (Sf_serve.Wire.Shutdown 0) with
        | Sf_serve.Wire.Shutdown_ack _ -> print_endline "server shutdown acknowledged"
        | other ->
          Printf.eprintf "unexpected shutdown reply (kind id %d)\n"
            (Sf_serve.Wire.response_id other))
  end;
  extra :=
    [
      ("requests", string_of_int o.Sf_serve.Load.o_requests);
      ("replies", string_of_int o.Sf_serve.Load.o_replies);
      ("errors", string_of_int o.Sf_serve.Load.o_errors);
      ("missing", string_of_int o.Sf_serve.Load.o_missing);
      ("n", string_of_int o.Sf_serve.Load.o_n_vertices);
      ( "reply_crc32",
        Sf_obs.Export.json_string
          (Printf.sprintf "0x%08lx" o.Sf_serve.Load.o_reply_crc) );
    ];
  if o.Sf_serve.Load.o_errors > 0 || o.Sf_serve.Load.o_missing > 0 then 1 else 0
  end

let server_arg =
  Arg.(
    required
    & pos 0 (some Obs_cli.endpoint_conv) None
    & info [] ~docv:"SERVER" ~doc:"The daemon to load (unix:PATH or tcp:HOST:PORT)")

let requests_arg =
  Arg.(value & opt int 1000 & info [ "requests" ] ~doc:"Total search requests to send")

let rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "rate" ]
        ~doc:
          "Poisson arrival rate in requests/second (open loop); 0 runs a \
           closed-loop saturation probe windowed by --concurrency")

let connections_arg =
  Arg.(value & opt int 1 & info [ "connections" ] ~doc:"Concurrent connections")

let concurrency_arg =
  Arg.(
    value & opt int 32
    & info [ "concurrency" ] ~doc:"Closed-loop in-flight request window")

let mix_arg =
  Arg.(
    value
    & opt mix_conv [ ("high-degree", 1.) ]
    & info [ "mix" ] ~docv:"NAME[:WEIGHT],..."
        ~doc:"Strategy mix, e.g. high-degree:3,rand-walk:1")

let target_arg =
  Arg.(
    value
    & opt target_conv Sf_serve.Load.Server_default
    & info [ "target" ] ~doc:"server (daemon default), uniform, or a vertex id")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~doc:"Oracle budget per request (default: the server's)")

let stop_at_arg =
  Arg.(
    value & flag
    & info [ "stop-at-neighbor" ]
        ~doc:"Count success on reaching a neighbor of the target (the lenient rule)")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Load-plan seed (request ids, mix picks, arrivals)")

let summary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary" ] ~docv:"FILE" ~doc:"Write the deterministic summary block to $(docv)")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"FILE"
        ~doc:"Write a scalefree.bench/1 results file with the raw latency and cost samples")

let stop_server_arg =
  Arg.(value & flag & info [ "stop-server" ] ~doc:"Send Shutdown to the daemon after the run")

let timeout_arg =
  Arg.(value & opt float 30. & info [ "timeout" ] ~doc:"Per-read drain timeout in seconds")

let ramp_arg =
  Arg.(
    value & flag
    & info [ "ramp" ]
        ~doc:
          "Capacity ramp: escalate the open-loop rate geometrically until p99 \
           blows --ramp-p99-ms, bisect, and print one sustainable-rate \
           estimate. --requests is the probe length per step; --rate is \
           ignored. Exit 1 when no rate holds.")

let ramp_start_arg =
  Arg.(value & opt float 50. & info [ "ramp-start" ] ~doc:"First offered rate (req/s)")

let ramp_factor_arg =
  Arg.(value & opt float 2. & info [ "ramp-factor" ] ~doc:"Rate multiplier per climb step")

let ramp_p99_arg =
  Arg.(value & opt float 50. & info [ "ramp-p99-ms" ] ~doc:"p99 latency threshold (milliseconds)")

let ramp_steps_arg =
  Arg.(value & opt int 10 & info [ "ramp-steps" ] ~doc:"Maximum climb steps")

let ramp_bisect_arg =
  Arg.(value & opt int 2 & info [ "ramp-bisect" ] ~doc:"Geometric-mean bisection rounds after the bracket")

let cmd =
  let doc = "drive open-loop search load against a running sfserve daemon" in
  Cmd.v
    (Cmd.info "sfload" ~doc)
    Term.(
      const run $ server_arg $ requests_arg $ rate_arg $ connections_arg
      $ concurrency_arg $ mix_arg $ target_arg $ budget_arg $ stop_at_arg
      $ seed_arg $ summary_arg $ bench_arg $ stop_server_arg $ timeout_arg
      $ ramp_arg $ ramp_start_arg $ ramp_factor_arg $ ramp_p99_arg
      $ ramp_steps_arg $ ramp_bisect_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
