(* sffabric: the distributed experiment fabric (doc/FABRIC.md).

   A run directory holds the persisted grid plan, one resumable
   checkpoint per shard, and the merged outputs.  The outputs are
   byte-identical at any --workers count and across any crash/resume
   history — including runs where --fault-rate SIGKILLs workers
   mid-shard.

   Examples:
     sffabric run --dir /tmp/fab --sizes 256,512 --strategies high-degree,rand-walk \
       --trials 16 --workers 4
     sffabric run --dir /tmp/fab2 --workers 4 --fault-rate 0.2   # survives its own crashes
     sffabric status --dir /tmp/fab
     sffabric resume --dir /tmp/fab --workers 8 *)

open Cmdliner
module Fab = Sf_fabric

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let sizes_conv =
  let parse s =
    try Ok (List.map int_of_string (split_commas s))
    with Failure _ -> Error (`Msg (Printf.sprintf "bad size list %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (String.concat "," (List.map string_of_int v)))

let strings_conv =
  Arg.conv
    ( (fun s -> Ok (split_commas s)),
      fun ppf v -> Format.pp_print_string ppf (String.concat "," v) )

(* --- grid flags (run only; resume/status read the persisted plan) --- *)

let model_arg =
  Arg.(value & opt string "mori" & info [ "model" ] ~docv:"MODEL"
         ~doc:"Graph model: mori | cooper-frieze | cooper-frieze-giant | config.")

let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori preferential-attachment weight")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Mori out-degree / merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze NEW-step probability")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Configuration-model exponent")

let sizes_arg =
  Arg.(value & opt sizes_conv [ 256; 512 ] & info [ "sizes" ] ~docv:"N,N,..."
         ~doc:"Comma-separated graph sizes.")

let strategies_arg =
  Arg.(value & opt strings_conv [ "high-degree"; "rand-walk" ]
       & info [ "strategies" ] ~docv:"S,S,..." ~doc:"Comma-separated strategy names.")

let trials_arg = Arg.(value & opt int 16 & info [ "trials" ] ~doc:"Trials per (size, strategy) cell")

let metric_arg =
  Arg.(value & opt (enum [ ("neighbor", `Neighbor); ("target", `Target) ]) `Neighbor
       & info [ "metric" ] ~doc:"Success metric: reach a neighbor of the target, or the target itself.")

let source_arg =
  Arg.(value & opt (enum [ ("oldest", `Oldest); ("random", `Random) ]) `Oldest
       & info [ "source" ] ~doc:"Search source vertex: oldest | random.")

let budget_mul_arg = Arg.(value & opt int 4 & info [ "budget-mul" ] ~doc:"Request budget: MUL*n + ADD")
let budget_add_arg = Arg.(value & opt int 0 & info [ "budget-add" ] ~doc:"Request budget: MUL*n + ADD")
let seed_arg = Arg.(value & opt int 20070615 & info [ "seed" ] ~doc:"Master seed")

let spec_term =
  let mk model p m alpha exponent sizes strategies trials metric source budget_mul budget_add
      seed =
    {
      Fab.Grid.gs_model = model;
      gs_p = p;
      gs_m = m;
      gs_alpha = alpha;
      gs_exponent = exponent;
      gs_sizes = sizes;
      gs_strategies = strategies;
      gs_trials = trials;
      gs_metric = metric;
      gs_source = source;
      gs_budget_mul = budget_mul;
      gs_budget_add = budget_add;
      gs_seed = seed;
    }
  in
  Term.(
    const mk $ model_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg $ sizes_arg
    $ strategies_arg $ trials_arg $ metric_arg $ source_arg $ budget_mul_arg $ budget_add_arg
    $ seed_arg)

(* --- fabric flags --------------------------------------------------- *)

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc:"Fabric run directory.")

let workers_arg =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
         ~doc:"Worker processes; 0 runs the shards in-process (same checkpoints, same outputs).")

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
         ~doc:"Shard count (default: 4x the worker count, capped at the task count).")

let ckpt_every_arg =
  Arg.(value & opt int 16 & info [ "ckpt-every" ] ~docv:"K" ~doc:"Checkpoint every K trials.")

let fault_rate_arg =
  Arg.(value & opt float 0. & info [ "fault-rate" ] ~docv:"R"
         ~doc:"Deterministic fault injection: after each checkpoint the worker SIGKILLs itself \
               with probability R (a pure function of seed, shard and position). Outputs are \
               still byte-identical.")

let stop_after_arg =
  Arg.(value & opt (some int) None & info [ "stop-after-shards" ] ~docv:"K"
         ~doc:"Stop after K shards complete, SIGKILLing in-flight workers — leaves a crashed, \
               resumable run directory (exit code 3).")

let max_spawns_arg =
  Arg.(value & opt (some int) None & info [ "max-spawns" ] ~docv:"N"
         ~doc:"Abort after N process spawns (backstop against a poison shard).")

let sock_arg =
  Arg.(value & opt (some string) None & info [ "sock" ] ~docv:"PATH"
         ~doc:"Coordinator control socket (default DIR/fabric.sock).")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the rendered points.")

(* workers exec the same binary; forward the flags that shape their run *)
let spawn_worker ~dir ~ckpt_every ~fault_rate ~corpus ~sock_path =
  let argv =
    [
      Sys.executable_name; "worker"; "--dir"; dir; "--connect"; sock_path; "--ckpt-every";
      string_of_int ckpt_every; "--fault-rate"; string_of_float fault_rate;
    ]
    @ (match corpus with Some d -> [ "--corpus"; d ] | None -> [])
  in
  Fab.Swarm.spawn_exec (Array.of_list argv)

let drive ~dir ~workers ~ckpt_every ~fault_rate ~stop_after ~max_spawns ~sock_path ~quiet
    (obs : Obs_cli.t) loaded =
  let spawn = spawn_worker ~dir ~ckpt_every ~fault_rate ~corpus:obs.Obs_cli.corpus in
  (* one consolidated progress line for the whole fleet: workers
     suppress their own output and report through Proto.Progress, so
     nothing interleaves on the shared terminal *)
  let plan = fst loaded in
  let n_tasks = Fab.Grid.n_tasks plan.Fab.Grid.p_spec in
  let reporter =
    if obs.Obs_cli.progress && workers > 0 then begin
      let p = Sf_obs.Progress.create ~label:"fabric" ~total:n_tasks () in
      let seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
      (* resumed work counts from the checkpoints it already holds *)
      List.iter
        (fun st ->
          if st.Fab.Coordinator.st_done > 0 then begin
            Hashtbl.replace seen st.Fab.Coordinator.st_shard st.Fab.Coordinator.st_done;
            for _ = 1 to st.Fab.Coordinator.st_done do
              Sf_obs.Progress.step p
            done
          end)
        (Fab.Coordinator.status ~dir loaded);
      Some (p, seen)
    end
    else None
  in
  let on_shard_progress ~shard ~done_tasks ~total =
    match reporter with
    | None -> ()
    | Some (p, seen) ->
      let prev = Option.value (Hashtbl.find_opt seen shard) ~default:0 in
      if done_tasks > prev then begin
        Hashtbl.replace seen shard done_tasks;
        let detail = Printf.sprintf "shard %d %d/%d" shard done_tasks total in
        for _ = 1 to done_tasks - prev do
          Sf_obs.Progress.step ~detail p
        done
      end
  in
  let result =
    Fab.Coordinator.run ~dir ~workers ~ckpt_every ~fault_rate ?stop_after ?max_spawns
      ?sock_path
      ~trace:(obs.Obs_cli.trace <> None && not obs.Obs_cli.no_obs)
      ~on_shard_progress ~spawn loaded
  in
  (match reporter with Some (p, _) -> Sf_obs.Progress.finish p | None -> ());
  match result with
  | `Complete (points, report) ->
    if not quiet then print_string (Sf_experiments.Exp.render_points points);
    Printf.printf
      "fabric: %d shards done (%d spawned, %d deaths, %d reassigned); outputs in %s\n"
      report.Fab.Swarm.sw_completed report.Fab.Swarm.sw_spawned report.Fab.Swarm.sw_deaths
      report.Fab.Swarm.sw_reassigned dir;
    0
  | `Stopped_early report ->
    Printf.printf "fabric: stopped early after %d shards; resume with `sffabric resume --dir %s`\n"
      report.Fab.Swarm.sw_completed dir;
    3

let seed_of_loaded ((plan, _) : Fab.Grid.plan * int32) = plan.Fab.Grid.p_spec.Fab.Grid.gs_seed

let run_main spec dir workers shards ckpt_every fault_rate stop_after max_spawns sock_path
    quiet obs =
  let shards =
    Option.value shards ~default:(Fab.Coordinator.default_shards ~workers spec)
  in
  match Fab.Coordinator.prepare ~dir ~shards spec with
  | exception (Failure msg | Invalid_argument msg) ->
    Printf.eprintf "sffabric: %s\n" msg;
    1
  | loaded ->
    Obs_cli.with_session obs ~process:"coordinator" ~tool:"sffabric"
      ~seed:(seed_of_loaded loaded)
      ~mode:(Printf.sprintf "run-w%d" workers)
    @@ fun () ->
    drive ~dir ~workers ~ckpt_every ~fault_rate ~stop_after ~max_spawns ~sock_path ~quiet obs
      loaded

let resume_main dir workers ckpt_every fault_rate stop_after max_spawns sock_path quiet obs =
  match Fab.Coordinator.load ~dir with
  | exception Failure msg ->
    Printf.eprintf "sffabric: %s\n" msg;
    1
  | loaded ->
    Obs_cli.with_session obs ~process:"coordinator" ~tool:"sffabric"
      ~seed:(seed_of_loaded loaded)
      ~mode:(Printf.sprintf "resume-w%d" workers)
    @@ fun () ->
    drive ~dir ~workers ~ckpt_every ~fault_rate ~stop_after ~max_spawns ~sock_path ~quiet obs
      loaded

let status_main dir =
  match Fab.Coordinator.load ~dir with
  | exception Failure msg ->
    Printf.eprintf "sffabric: %s\n" msg;
    1
  | (plan, _) as loaded ->
    let sts = Fab.Coordinator.status ~dir loaded in
    print_string (Fab.Coordinator.render_status plan sts);
    if List.for_all (fun st -> st.Fab.Coordinator.st_state = `Complete) sts then 0 else 3

let worker_main dir connect ckpt_every fault_rate corpus =
  (* workers inherit the coordinator's terminal: no per-trial progress
     lines from here (the coordinator renders one consolidated line
     from Proto.Progress), and the same monotonic clock the
     coordinator injects, so relayed trace timestamps land on one
     comparable axis in the merged timeline *)
  Sf_obs.Timer.set_clock (fun () -> Int64.to_float (Monotonic_clock.now ()) /. 1e9);
  Sf_obs.Progress.set_enabled false;
  Sf_store.Corpus.configure ?dir:corpus ();
  match Fab.Worker.main ~dir ~connect ~fault_rate ~ckpt_every () with
  | () -> 0
  | exception e ->
    Printf.eprintf "sffabric worker: %s\n" (Printexc.to_string e);
    1

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"plan a grid and run it to completion")
    Term.(
      const run_main $ spec_term $ dir_arg $ workers_arg $ shards_arg $ ckpt_every_arg
      $ fault_rate_arg $ stop_after_arg $ max_spawns_arg $ sock_arg $ quiet_arg $ Obs_cli.term)

let resume_cmd =
  Cmd.v
    (Cmd.info "resume" ~doc:"continue a crashed or stopped run from its checkpoints")
    Term.(
      const resume_main $ dir_arg $ workers_arg $ ckpt_every_arg $ fault_rate_arg
      $ stop_after_arg $ max_spawns_arg $ sock_arg $ quiet_arg $ Obs_cli.term)

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"per-shard checkpoint progress (exit 0 iff complete)")
    Term.(const status_main $ dir_arg)

let connect_arg =
  Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"PATH"
         ~doc:"Coordinator control socket.")

let corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Content-addressed graph corpus cache.")

let worker_cmd =
  Cmd.v
    (Cmd.info "worker" ~doc:"internal: a fabric worker process (spawned by run/resume)")
    Term.(
      const worker_main $ dir_arg $ connect_arg $ ckpt_every_arg $ fault_rate_arg $ corpus_arg)

let cmd =
  let doc = "distributed experiment fabric: sharded grids, resumable checkpoints, deterministic merge" in
  Cmd.group (Cmd.info "sffabric" ~doc) [ run_cmd; resume_cmd; status_cmd; worker_cmd ]

let () = exit (Cmd.eval' cmd)
