(* sfcorpus: manage a content-addressed graph corpus cache
   (doc/STORAGE.md).

   Examples:
     sfcorpus build corpus/ --model mori -p 0.5 --sizes 200,400 --trials 30 --strategies 4
     sfcorpus ls corpus/
     sfcorpus verify corpus/
     sfcorpus gc corpus/ --budget 256M

   `build` pre-generates exactly the graphs a later measurement grid
   will request: the trial streams are derived with
   Sf_core.Searchability.trial_rng from the same master seed, so a
   subsequent `sfexp`/`bench` run over the same grid with
   --corpus DIR is all cache hits. *)

open Cmdliner

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Corpus cache directory")

let open_cache dir =
  let cache = Sf_store.Cache.open_dir dir in
  Sf_store.Corpus.set_cache (Some cache);
  cache

let fmt_bytes b =
  if b >= 1 lsl 30 then Printf.sprintf "%.1f GiB" (float_of_int b /. float_of_int (1 lsl 30))
  else if b >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int b /. float_of_int (1 lsl 20))
  else if b >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (float_of_int b /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" b

(* ------------------------------------------------------------------ *)
(* build                                                               *)
(* ------------------------------------------------------------------ *)

let parse_sizes s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (( <> ) "")
  |> List.map (fun tok ->
         match int_of_string_opt tok with
         | Some v when v > 0 -> v
         | _ -> failwith ("bad size: " ^ tok))

let instance_maker ~model ~p ~m ~alpha ~exponent =
  match model with
  | "mori" -> Sf_core.Searchability.mori_instance ~p ~m
  | "cooper-frieze" ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha } in
    Sf_core.Searchability.cooper_frieze_instance params
  | "config" -> Sf_core.Searchability.config_model_instance ~exponent
  | other -> failwith ("unknown model: " ^ other ^ " (mori | cooper-frieze | config)")

let build dir model p m alpha exponent sizes trials strategies seed (obs : Obs_cli.t) =
  Obs_cli.with_session obs ~tool:"sfcorpus" ~seed ~mode:("build-" ^ model) @@ fun () ->
  let sizes = parse_sizes sizes in
  if sizes = [] then failwith "--sizes: need at least one size";
  if trials < 1 then failwith "--trials: need at least 1";
  if strategies < 1 then failwith "--strategies: need at least 1";
  let cache = open_cache dir in
  let before = List.length (Sf_store.Cache.entries cache) in
  let make = instance_maker ~model ~p ~m ~alpha ~exponent in
  let master = Sf_prng.Rng.of_seed seed in
  let total = List.length sizes * strategies * trials in
  let progress =
    if obs.Obs_cli.progress then
      Some (Sf_obs.Progress.create ~label:"instances" ~total ())
    else None
  in
  (* visit coordinates in exactly the grid order of
     Searchability.measure, so this loop touches every stream a later
     run will request — no more, no fewer *)
  List.iteri
    (fun size_idx n ->
      for strat_idx = 0 to strategies - 1 do
        for trial = 0 to trials - 1 do
          let rng = Sf_core.Searchability.trial_rng master ~size_idx ~strat_idx ~trial in
          ignore (make rng n);
          Option.iter
            (fun pr -> Sf_obs.Progress.step pr ~detail:(Printf.sprintf "n=%d" n))
            progress
        done
      done)
    sizes;
  Option.iter Sf_obs.Progress.finish progress;
  let after = List.length (Sf_store.Cache.entries cache) in
  Printf.printf "built %d instance(s) (%d new, %d already cached) in %s: %d entries, %s\n"
    total (after - before)
    (total - (after - before))
    dir after
    (fmt_bytes (Sf_store.Cache.total_bytes cache));
  0

(* ------------------------------------------------------------------ *)
(* ls / verify / gc                                                    *)
(* ------------------------------------------------------------------ *)

let ls dir =
  let cache = open_cache dir in
  let entries = Sf_store.Cache.entries cache in
  if entries = [] then Printf.printf "%s: empty corpus\n" dir
  else begin
    print_string
      (Sf_stats.Table.render
         ~aligns:
           [
             Sf_stats.Table.Left;
             Sf_stats.Table.Right;
             Sf_stats.Table.Right;
             Sf_stats.Table.Right;
             Sf_stats.Table.Left;
           ]
         ~headers:[ "fingerprint"; "n"; "bytes"; "seq"; "coordinate" ]
         ~rows:
           (List.map
              (fun (e : Sf_store.Cache.entry) ->
                [
                  String.sub e.Sf_store.Cache.fp 0 12;
                  string_of_int e.Sf_store.Cache.n;
                  string_of_int e.Sf_store.Cache.bytes;
                  string_of_int e.Sf_store.Cache.seq;
                  e.Sf_store.Cache.desc;
                ])
              entries)
         ());
    Printf.printf "%d entries, %s (least recently used first)\n" (List.length entries)
      (fmt_bytes (Sf_store.Cache.total_bytes cache))
  end;
  0

let verify dir =
  let cache = open_cache dir in
  let results = Sf_store.Cache.verify cache in
  let bad = ref 0 in
  List.iter
    (fun ((e : Sf_store.Cache.entry), status) ->
      match status with
      | Ok () -> Printf.printf "ok       %s  %s\n" (String.sub e.Sf_store.Cache.fp 0 12) e.Sf_store.Cache.desc
      | Error msg ->
        incr bad;
        Printf.printf "CORRUPT  %s  %s: %s\n" (String.sub e.Sf_store.Cache.fp 0 12)
          e.Sf_store.Cache.desc msg)
    results;
  Printf.printf "%d entries verified, %d corrupt\n" (List.length results) !bad;
  if !bad = 0 then 0 else 1

(* budgets read naturally as "256M"; accept bare bytes and K/M/G
   binary suffixes *)
let parse_budget s =
  let len = String.length s in
  if len = 0 then failwith "--budget: empty";
  let mult, digits =
    match s.[len - 1] with
    | 'k' | 'K' -> (1 lsl 10, String.sub s 0 (len - 1))
    | 'm' | 'M' -> (1 lsl 20, String.sub s 0 (len - 1))
    | 'g' | 'G' -> (1 lsl 30, String.sub s 0 (len - 1))
    | '0' .. '9' -> (1, s)
    | c -> failwith (Printf.sprintf "--budget: bad suffix '%c' (want K, M or G)" c)
  in
  match int_of_string_opt digits with
  | Some v when v >= 0 -> v * mult
  | _ -> failwith ("--budget: bad number: " ^ digits)

let gc dir budget =
  let cache = open_cache dir in
  let budget_bytes = parse_budget budget in
  let before = Sf_store.Cache.total_bytes cache in
  let evicted = Sf_store.Cache.gc cache ~budget_bytes in
  List.iter
    (fun (e : Sf_store.Cache.entry) ->
      Printf.printf "evicted  %s  %s (%s)\n" (String.sub e.Sf_store.Cache.fp 0 12)
        e.Sf_store.Cache.desc (fmt_bytes e.Sf_store.Cache.bytes))
    evicted;
  Printf.printf "%s -> %s (budget %s, %d evicted)\n" (fmt_bytes before)
    (fmt_bytes (Sf_store.Cache.total_bytes cache))
    (fmt_bytes budget_bytes) (List.length evicted);
  0

(* ------------------------------------------------------------------ *)
(* command line                                                        *)
(* ------------------------------------------------------------------ *)

let model_arg =
  Arg.(value & opt string "mori" & info [ "model" ] ~doc:"mori | cooper-frieze | config")

let p_arg = Arg.(value & opt float 0.5 & info [ "p" ] ~doc:"Mori parameter")
let m_arg = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Mori merge factor")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc:"Cooper-Frieze alpha")
let exponent_arg = Arg.(value & opt float 2.3 & info [ "exponent" ] ~doc:"Config-model exponent")

let sizes_arg =
  Arg.(
    value & opt string "1000"
    & info [ "sizes" ] ~docv:"N1,N2,..." ~doc:"Comma-separated problem sizes of the grid")

let trials_arg = Arg.(value & opt int 30 & info [ "trials" ] ~doc:"Trials per grid cell")

let strategies_arg =
  Arg.(
    value & opt int 1
    & info [ "strategies" ] ~docv:"K"
        ~doc:
          "Number of strategies the later grid will run: trial streams are derived per \
           (size, strategy, trial) cell, so the count must match for the warm run to hit")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the later grid run")

let budget_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:"Byte budget to evict down to; accepts K/M/G suffixes (binary)")

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~doc:"pre-generate the graphs of a measurement grid into the corpus")
    Term.(
      const build $ dir_arg $ model_arg $ p_arg $ m_arg $ alpha_arg $ exponent_arg $ sizes_arg
      $ trials_arg $ strategies_arg $ seed_arg $ Obs_cli.term)

let ls_cmd = Cmd.v (Cmd.info "ls" ~doc:"list corpus entries, least recently used first") Term.(const ls $ dir_arg)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"decode every object against its checksum; nonzero exit on corruption")
    Term.(const verify $ dir_arg)

let gc_cmd =
  Cmd.v
    (Cmd.info "gc" ~doc:"evict least-recently-used entries down to a byte budget")
    Term.(const gc $ dir_arg $ budget_arg)

let cmd =
  let doc = "manage the content-addressed graph corpus cache" in
  Cmd.group (Cmd.info "sfcorpus" ~doc) [ build_cmd; ls_cmd; verify_cmd; gc_cmd ]

let () = exit (Cmd.eval' cmd)
