(** Shared observability flags and session bracket of the command-line
    tools ([--metrics], [--no-obs], [--trace], [--progress],
    [--jobs]).

    Every tool splices {!term} into its cmdliner term and wraps its
    body in {!with_session}, which sets the {!Sf_parallel.Pool}
    default job count from [--jobs], attaches the [--trace] sinks
    (file exporter plus an armed {!Sf_obs.Flight} recorder), dumps the
    recorder when the body raises or a strategy gives up, finalises
    the trace file, and writes the [--metrics] manifest last — with
    [jobs], [wall_s], [cpu_s], [parallel_speedup] (CPU over wall,
    summed across domains), [rss_peak_bytes] and [telemetry_scrapes]
    among the manifest extras. With [--telemetry] it also brackets the
    run with a live {!Sf_obs.Series} sampler and {!Sf_obs.Expose}
    socket listener, stopped before the manifest is written; with
    [--trace] the armed flight recorder additionally dumps on
    [SIGUSR1]. *)

type t = {
  metrics : string option;  (** [--metrics FILE]: write an obs.json manifest *)
  no_obs : bool;  (** [--no-obs]: kill switch for all instrumentation *)
  trace : string option;
      (** [--trace FILE]: event trace; [.jsonl] streams, else Perfetto *)
  progress : bool;  (** [--progress]: live progress on stderr *)
  jobs : int option;
      (** [--jobs N]: worker domains for the parallel sections;
          [None] keeps {!Sf_parallel.Pool.default_jobs} *)
  corpus : string option;
      (** [--corpus DIR]: content-addressed graph corpus cache
          (doc/STORAGE.md); falls back to [SCALEFREE_CORPUS], else no
          cache. When active, the manifest extras record [corpus_dir],
          [corpus_entries] and [corpus_bytes]. *)
  telemetry : string option;
      (** [--telemetry PATH]: serve live telemetry on a unix-domain
          socket at [PATH] while the run is in flight ([sftop PATH]
          attaches; doc/OBSERVABILITY.md, "Live telemetry"). Falls
          back to [SCALEFREE_TELEMETRY], else off; skipped with a
          warning under [--no-obs]. *)
  telemetry_tick : float;
      (** [--telemetry-tick SECONDS] (default 0.5): background
          sampling period of the telemetry time series. *)
}

val term : t Cmdliner.Term.t

val endpoint_conv : Sf_serve.Wire.endpoint Cmdliner.Arg.conv
(** One endpoint syntax for every flag that names a serving socket
    ([sfserve --listen], [sfload SERVER]): [unix:PATH],
    [tcp:HOST:PORT], or a bare filesystem path (a unix socket, like
    [--telemetry]). *)

val with_session :
  t ->
  ?process:string ->
  ?extra:(unit -> (string * string) list) ->
  tool:string ->
  seed:int ->
  mode:string ->
  (unit -> int) ->
  int
(** [with_session t ~tool ~seed ~mode body] brackets [body] with sink
    attach/detach and manifest writing; returns [body]'s exit code,
    forced to nonzero if the manifest write fails. [extra] is
    evaluated after [body] returns — manifest extras are typically
    computed inside the body. [process] names this process's track in
    a Perfetto [--trace] export (default ["main"]) — what makes the
    per-tool traces of one fleet mergeable with [sftop timeline].
    Re-raises whatever [body] raises, after dumping the flight
    recorder and closing the sinks (a partial trace file is still
    written). *)
