module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module E = Codec_error

let magic = "SFGB"
let version = 1

(* flags byte *)
let flag_permutation = 0x01

let obs_read_timer = Sf_obs.Registry.timer "store.read_s"
let obs_write_timer = Sf_obs.Registry.timer "store.write_s"
let obs_bytes_read = Sf_obs.Registry.counter "store.bytes_read"
let obs_bytes_written = Sf_obs.Registry.counter "store.bytes_written"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let encode g =
  let n = Digraph.n_vertices g and m = Digraph.n_edges g in
  (* Rows in source order, insertion order within a row; [ids] is the
     concatenated canonical edge-id sequence. *)
  let degrees = Array.make n 0 in
  Digraph.iter_edges g (fun e -> degrees.(e.Digraph.src - 1) <- degrees.(e.Digraph.src - 1) + 1);
  let row_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    row_start.(v) <- row_start.(v - 1) + degrees.(v - 1)
  done;
  let fill = Array.copy row_start in
  let ids = Array.make m 0 and dsts = Array.make m 0 in
  Digraph.iter_edges g (fun e ->
      let slot = fill.(e.Digraph.src - 1) in
      ids.(slot) <- e.Digraph.id;
      dsts.(slot) <- e.Digraph.dst;
      fill.(e.Digraph.src - 1) <- slot + 1);
  let canonical = ref true in
  Array.iteri (fun k id -> if id <> k then canonical := false) ids;
  let buf = Buffer.create (16 + (2 * m) + n) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr (if !canonical then 0 else flag_permutation));
  Varint.write buf n;
  Varint.write buf m;
  Array.iter (fun d -> Varint.write buf d) degrees;
  for v = 1 to n do
    (* delta-encode a row against its own source: growth models attach
       near their own timestamp, so deltas stay short *)
    let prev = ref v in
    for slot = row_start.(v - 1) to row_start.(v) - 1 do
      Varint.write_signed buf (dsts.(slot) - !prev);
      prev := dsts.(slot)
    done
  done;
  if not !canonical then begin
    let prev = ref 0 in
    Array.iter
      (fun id ->
        Varint.write_signed buf (id - !prev);
        prev := id)
      ids
  end;
  let crc = Crc32.string (Buffer.contents buf) in
  let tail = Bytes.create 4 in
  Bytes.set_int32_le tail 0 crc;
  Buffer.add_bytes buf tail;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let looks_binary s = String.length s >= 4 && String.sub s 0 4 = magic

let decode s =
  let len = String.length s in
  if len < 4 then E.fail (E.Truncated "magic");
  if String.sub s 0 4 <> magic then E.fail E.Bad_magic;
  if len < 10 then E.fail (E.Truncated "header");
  let v = Char.code s.[4] in
  if v <> version then E.fail (E.Unsupported_version v);
  let stored = String.get_int32_le s (len - 4) in
  let computed = Crc32.sub s ~pos:0 ~len:(len - 4) in
  if stored <> computed then E.fail (E.Checksum_mismatch { stored; computed });
  let flags = Char.code s.[5] in
  if flags land lnot flag_permutation <> 0 then
    E.fail (E.Malformed (Printf.sprintf "unknown flag bits %#x" flags));
  let payload_end = len - 4 in
  (* varint reads are bounds-checked against the whole string; a read
     that strays into the checksum tail is caught by the final
     position check below *)
  let n, pos = Varint.read s ~pos:6 in
  let m, pos = Varint.read s ~pos in
  (* every vertex costs >= 1 degree byte and every edge >= 1 delta
     byte, so counts beyond the input length cannot be honest — reject
     before allocating *)
  if n > len || m > len then
    E.fail (E.Malformed (Printf.sprintf "counts n=%d m=%d exceed input size %d" n m len));
  let degrees = Array.make (max n 1) 0 in
  let pos = ref pos in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let d, next = Varint.read s ~pos:!pos in
    degrees.(i) <- d;
    sum := !sum + d;
    pos := next
  done;
  if !sum <> m then
    E.fail (E.Malformed (Printf.sprintf "degree sum %d disagrees with edge count %d" !sum m));
  let dsts = Array.make (max m 1) 0 in
  let slot = ref 0 in
  for v = 1 to n do
    let prev = ref v in
    for _ = 1 to degrees.(v - 1) do
      let delta, next = Varint.read_signed s ~pos:!pos in
      let dst = !prev + delta in
      if dst < 1 || dst > n then
        E.fail (E.Malformed (Printf.sprintf "edge endpoint %d outside 1..%d" dst n));
      dsts.(!slot) <- dst;
      prev := dst;
      incr slot;
      pos := next
    done
  done;
  let ids =
    if flags land flag_permutation = 0 then Array.init m (fun k -> k)
    else begin
      let ids = Array.make (max m 1) 0 in
      let seen = Array.make (max m 1) false in
      let prev = ref 0 in
      for k = 0 to m - 1 do
        let delta, next = Varint.read_signed s ~pos:!pos in
        let id = !prev + delta in
        if id < 0 || id >= m || seen.(id) then
          E.fail (E.Malformed "edge-order section is not a permutation");
        seen.(id) <- true;
        ids.(k) <- id;
        prev := id;
        pos := next
      done;
      ids
    end
  in
  if !pos <> payload_end then
    E.fail (E.Malformed (Printf.sprintf "%d trailing payload byte(s)" (payload_end - !pos)));
  (* Replay edges in insertion (id) order so ids come out identical. *)
  let srcs_by_id = Array.make (max m 1) 0 and dsts_by_id = Array.make (max m 1) 0 in
  let slot = ref 0 in
  for v = 1 to n do
    for _ = 1 to degrees.(v - 1) do
      let id = ids.(!slot) in
      srcs_by_id.(id) <- v;
      dsts_by_id.(id) <- dsts.(!slot);
      incr slot
    done
  done;
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  for id = 0 to m - 1 do
    ignore (Digraph.add_edge g ~src:srcs_by_id.(id) ~dst:dsts_by_id.(id))
  done;
  g

(* ------------------------------------------------------------------ *)
(* The undirected view                                                 *)
(* ------------------------------------------------------------------ *)

let digraph_of_ugraph u =
  let n = Ugraph.n_vertices u and m = Ugraph.n_edges u in
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  for id = 0 to m - 1 do
    let src, dst = Ugraph.endpoints u id in
    ignore (Digraph.add_edge g ~src ~dst)
  done;
  g

let encode_ugraph u = encode (digraph_of_ugraph u)
let decode_ugraph s = Ugraph.of_digraph (decode s)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let trace_file op ~path ~bytes =
  if Sf_obs.Trace.active () then
    Sf_obs.Trace.instant op
      ~args:[ ("path", Sf_obs.Trace.Str path); ("bytes", Sf_obs.Trace.Int bytes) ]

let write_graph_file g ~path =
  Sf_obs.Timer.time obs_write_timer (fun () ->
      let bytes = encode g in
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      (try
         output_string oc bytes;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path;
      if Sf_obs.Registry.enabled () then
        Sf_obs.Counter.add obs_bytes_written (String.length bytes);
      trace_file "store.write" ~path ~bytes:(String.length bytes))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)

let read_graph_file ~path =
  Sf_obs.Timer.time obs_read_timer (fun () ->
      let bytes = read_file path in
      if Sf_obs.Registry.enabled () then
        Sf_obs.Counter.add obs_bytes_read (String.length bytes);
      trace_file "store.read" ~path ~bytes:(String.length bytes);
      decode bytes)

let read_any_file ~path =
  let bytes = read_file path in
  if looks_binary bytes then
    Sf_obs.Timer.time obs_read_timer (fun () ->
        if Sf_obs.Registry.enabled () then
          Sf_obs.Counter.add obs_bytes_read (String.length bytes);
        trace_file "store.read" ~path ~bytes:(String.length bytes);
        decode bytes)
  else
    try Sf_graph.Gio.of_edge_list bytes
    with Failure msg -> failwith (path ^ ": " ^ msg)
