(** LEB128 variable-length integers — the wire primitive of the binary
    graph format (doc/STORAGE.md).

    Unsigned values are written base-128, low group first, high bit of
    every byte but the last set. Signed values go through the zigzag
    map [(n lsl 1) lxor (n asr 62)] first, so small magnitudes of
    either sign stay short — neighbour deltas in an adjacency row are
    signed because rows are kept in edge-insertion order, not sorted.

    All values are OCaml [int]s (63-bit); encodings never exceed nine
    bytes. *)

val write : Buffer.t -> int -> unit
(** Append the unsigned encoding of a non-negative value.
    @raise Invalid_argument on a negative value. *)

val write_signed : Buffer.t -> int -> unit
(** Append the zigzag encoding of any value. *)

val read : string -> pos:int -> int * int
(** [read s ~pos] decodes an unsigned value at [pos] and returns
    [(value, next_pos)].
    @raise Codec_error.Error on truncation, on an encoding longer than
    nine bytes, or on a value that overflows a 63-bit [int]. *)

val read_signed : string -> pos:int -> int * int
(** [read] followed by the inverse zigzag map. *)
