type t =
  | Truncated of string
  | Bad_magic
  | Unsupported_version of int
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string

exception Error of t

let to_string = function
  | Truncated what -> Printf.sprintf "truncated input (%s)" what
  | Bad_magic -> "bad magic: not a binary graph file"
  | Unsupported_version v -> Printf.sprintf "unsupported format version %d" v
  | Checksum_mismatch { stored; computed } ->
    Printf.sprintf "checksum mismatch: stored %08lx, computed %08lx" stored computed
  | Malformed what -> Printf.sprintf "malformed payload (%s)" what

let fail e = raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Sf_store.Codec_error.Error: " ^ to_string e)
    | _ -> None)
