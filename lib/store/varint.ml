let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative value";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

(* zigzag: interleave positives and negatives so small magnitudes stay
   small; [asr 62] propagates the sign over a 63-bit int. *)
let write_signed buf v = write buf ((v lsl 1) lxor (v asr 62))

let read s ~pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then Codec_error.fail (Codec_error.Truncated "varint");
    if shift > 62 then Codec_error.fail (Codec_error.Malformed "varint too long");
    let byte = Char.code s.[pos] in
    let low = byte land 0x7f in
    (* bits at index >= 62 would overflow a non-negative OCaml int *)
    if low lsr (62 - shift) <> 0 then
      Codec_error.fail (Codec_error.Malformed "varint overflows 63-bit int");
    let acc = acc lor (low lsl shift) in
    if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let read_signed s ~pos =
  let v, next = read s ~pos in
  ((v lsr 1) lxor (-(v land 1)), next)
