(** Content addresses of corpus entries.

    A cache key names a {e generation coordinate}: which generator,
    with which parameters, at which size, fed by which random stream.
    Two coordinates collide exactly when they would generate the same
    graph, so the address is a pure function of the coordinate and
    per-coordinate fingerprints stay deterministic under any [--jobs]
    schedule (doc/PARALLELISM.md).

    The stream component is the {e full generator state}
    ({!Sf_prng.Rng.state_words}), not the user-facing seed: trial [i]
    of a grid owns the split stream [split_at master key], and its
    coordinate must differ from trial [j]'s even though both descend
    from the same seed. *)

type key = {
  gen : string;  (** generator id, e.g. ["mori"] *)
  params : (string * string) list;  (** rendered parameters, in a fixed order *)
  n : int;  (** requested problem size *)
  stream : string;  (** rng-state token from {!rng_token} *)
}

val rng_token : Sf_prng.Rng.t -> string
(** The generator's current state as 64 hex digits; does not advance
    the stream. *)

val restore : Sf_prng.Rng.t -> string -> unit
(** Set a generator to the state captured in a {!rng_token}. The
    corpus cache stores the post-generation token with every entry and
    replays it on a hit, so a run that loads a graph leaves the trial
    stream exactly where a run that generated it would — the
    determinism contract of doc/STORAGE.md.
    @raise Invalid_argument on a malformed token. *)

val hex : key -> string
(** The content address: the MD5 digest (32 lowercase hex digits) of
    the canonical rendering
    [gen ^ "?" ^ k1 ^ "=" ^ v1 ^ "&" ^ … ^ "#n=" ^ n ^ "@" ^ stream].
    Parameter order is preserved, so callers must render parameters in
    a fixed order. *)

val describe : key -> string
(** Human-readable coordinate for index lines and [sfcorpus ls]. *)
