(** Decode errors of the binary graph format, shared by {!Varint} and
    {!Codec}.

    Decoding is strict: every malformed input maps to one of these
    constructors and nothing is silently repaired — a corpus cache
    treats any {!Error} as a corrupt entry and falls back to
    regeneration (see {!Cache}). *)

type t =
  | Truncated of string  (** input ended inside a field *)
  | Bad_magic  (** the first bytes are not the format magic *)
  | Unsupported_version of int
  | Checksum_mismatch of { stored : int32; computed : int32 }
  | Malformed of string  (** structurally invalid payload *)

exception Error of t

val to_string : t -> string

val fail : t -> 'a
(** Raise {!Error}. *)
