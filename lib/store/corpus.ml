module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph

(* Written once by the harness before worker domains exist, then only
   read — an Atomic for publication-safety, not for contention. *)
let current : Cache.t option Atomic.t = Atomic.make None

let set_cache c = Atomic.set current c
let cache () = Atomic.get current

let env_var = "SCALEFREE_CORPUS"

let configure ?dir () =
  let dir =
    match dir with
    | Some _ -> dir
    | None -> (
      match Sys.getenv_opt env_var with Some "" | None -> None | Some d -> Some d)
  in
  set_cache (Option.map Cache.open_dir dir)

let instance ~gen ~params make rng n =
  match cache () with
  | None -> make rng n
  | Some cache -> (
    let key = { Fingerprint.gen; params; n; stream = Fingerprint.rng_token rng } in
    let hit =
      match Cache.find cache key with
      | Some (g, entry) -> (
        (* a malformed rng token in the index is as fatal as a corrupt
           object: fall back to regeneration *)
        try
          Fingerprint.restore rng entry.Cache.rng_after;
          Some (Ugraph.of_digraph g, entry.Cache.target)
        with Invalid_argument _ -> None)
      | None -> None
    in
    match hit with
    | Some result -> result
    | None ->
      let u, target = make rng n in
      Cache.add cache key ~graph:(Codec.digraph_of_ugraph u) ~target
        ~rng_after:(Fingerprint.rng_token rng);
      (u, target))
