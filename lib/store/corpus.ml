module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph

(* Written once by the harness before worker domains exist, then only
   read — an Atomic for publication-safety, not for contention. *)
let current : Cache.t option Atomic.t = Atomic.make None

let set_cache c = Atomic.set current c
let cache () = Atomic.get current

let env_var = "SCALEFREE_CORPUS"

let configure ?dir () =
  let dir =
    match dir with
    | Some _ -> dir
    | None -> (
      match Sys.getenv_opt env_var with Some "" | None -> None | Some d -> Some d)
  in
  set_cache (Option.map Cache.open_dir dir)

(* Container selection: the compact varint container (v1) up to this
   many edges, the mmap CSR container (v2) beyond it.  Reads sniff the
   version byte, so the threshold only decides what new objects cost —
   moving it never invalidates an existing corpus.  2^18 edges keeps
   every graph the small-n experiment grid produces in the compact
   container (their goldens predate v2) while anything
   production-scale gets the decode-free read path. *)
let v2_edge_threshold = 1 lsl 18

let instance ~gen ~params make rng n =
  match cache () with
  | None -> make rng n
  | Some cache -> (
    let key = { Fingerprint.gen; params; n; stream = Fingerprint.rng_token rng } in
    let hit =
      match Cache.find_ugraph cache key with
      | Some (u, entry) -> (
        (* a malformed rng token in the index is as fatal as a corrupt
           object: fall back to regeneration *)
        try
          Fingerprint.restore rng entry.Cache.rng_after;
          Some (u, entry.Cache.target)
        with Invalid_argument _ -> None)
      | None -> None
    in
    match hit with
    | Some result -> result
    | None ->
      let u, target = make rng n in
      let format = if Ugraph.n_edges u >= v2_edge_threshold then `V2 else `V1 in
      Cache.add_ugraph cache key ~graph:u ~target ~rng_after:(Fingerprint.rng_token rng)
        ~format;
      (u, target))
