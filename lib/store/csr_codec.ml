module Ugraph = Sf_graph.Ugraph
module Csr = Sf_graph.Csr
module E = Codec_error

let magic = Codec.magic
let version = 2

(* Fixed 32-byte header, then the four CSR sections as raw int32
   little-endian, then a trailing CRC-32 of everything before it:

     0   magic "SFGB"
     4   version (2)
     5   flags (0; no bits defined yet)
     6   2 reserved zero bytes
     8   n        u64 LE
     16  m        u64 LE
     24  inc_len  u64 LE   (redundant; cross-checked on read)
     32  srcs      m       int32 LE
         dsts      m       int32 LE
         inc_start n+1     int32 LE
         inc       inc_len int32 LE
         crc32             u32 LE

   Every section starts on a 4-byte boundary, so a reader can
   [Unix.map_file] each one at its offset and hand the maps straight
   to [Csr.of_sections] — no decode pass, no allocation proportional
   to the graph (doc/STORAGE.md, doc/SCALING.md). *)

let header_bytes = 32
let section_offset_srcs = header_bytes

let obs_map_timer = Sf_obs.Registry.timer "store.map_s"
let obs_write_timer = Sf_obs.Registry.timer "store.write_giant_s"
let obs_bytes_mapped = Sf_obs.Registry.counter "store.bytes_mapped"
let obs_bytes_written = Sf_obs.Registry.counter "store.bytes_written.giant"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

(* scratch size for streaming sections through the CRC: 64k ints *)
let chunk_ints = 65_536

let write_section oc crc (buf : Csr.buf) =
  let dim = Bigarray.Array1.dim buf in
  let scratch = Bytes.create (4 * chunk_ints) in
  let pos = ref 0 in
  while !pos < dim do
    let count = min chunk_ints (dim - !pos) in
    for i = 0 to count - 1 do
      Bytes.set_int32_le scratch (4 * i) (Bigarray.Array1.unsafe_get buf (!pos + i))
    done;
    let chunk = Bytes.sub_string scratch 0 (4 * count) in
    crc := Crc32.string ~init:!crc chunk;
    output_string oc chunk;
    pos := !pos + count
  done

let file_bytes ~n ~m ~inc_len = header_bytes + (4 * ((2 * m) + n + 1 + inc_len)) + 4

let write_ugraph_file u ~path =
  Sf_obs.Timer.time obs_write_timer (fun () ->
      let csr = Ugraph.csr u in
      let n = csr.Csr.n and m = csr.Csr.m in
      let inc_len = Bigarray.Array1.dim csr.Csr.inc in
      let header = Bytes.make header_bytes '\000' in
      Bytes.blit_string magic 0 header 0 4;
      Bytes.set header 4 (Char.chr version);
      (* byte 5 = flags 0, bytes 6-7 reserved *)
      Bytes.set_int64_le header 8 (Int64.of_int n);
      Bytes.set_int64_le header 16 (Int64.of_int m);
      Bytes.set_int64_le header 24 (Int64.of_int inc_len);
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      (try
         let head = Bytes.to_string header in
         let crc = ref (Crc32.string head) in
         output_string oc head;
         write_section oc crc csr.Csr.srcs;
         write_section oc crc csr.Csr.dsts;
         write_section oc crc csr.Csr.inc_start;
         write_section oc crc csr.Csr.inc;
         let tail = Bytes.create 4 in
         Bytes.set_int32_le tail 0 !crc;
         output_bytes oc tail;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path;
      let bytes = file_bytes ~n ~m ~inc_len in
      if Sf_obs.Registry.enabled () then Sf_obs.Counter.add obs_bytes_written bytes;
      if Sf_obs.Trace.active () then
        Sf_obs.Trace.instant "store.write"
          ~args:[ ("path", Sf_obs.Trace.Str path); ("bytes", Sf_obs.Trace.Int bytes) ])

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let looks_v2 s =
  String.length s >= 5 && String.sub s 0 4 = magic && Char.code s.[4] = version

let with_fd path f =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)

let really_read fd buf ~pos ~len what =
  let got = ref 0 in
  while !got < len do
    let k = Unix.read fd buf (pos + !got) (len - !got) in
    if k = 0 then E.fail (E.Truncated what);
    got := !got + k
  done

type header = { n : int; m : int; inc_len : int; size : int }

let read_header fd ~path =
  let size =
    match (Unix.fstat fd).Unix.st_kind with
    | Unix.S_REG -> (Unix.fstat fd).Unix.st_size
    | _ -> raise (Sys_error (path ^ ": not a regular file"))
  in
  if size < header_bytes + 4 then E.fail (E.Truncated "header");
  let raw = Bytes.create header_bytes in
  really_read fd raw ~pos:0 ~len:header_bytes "header";
  if Bytes.sub_string raw 0 4 <> magic then E.fail E.Bad_magic;
  let v = Char.code (Bytes.get raw 4) in
  if v <> version then E.fail (E.Unsupported_version v);
  let flags = Char.code (Bytes.get raw 5) in
  if flags <> 0 then E.fail (E.Malformed (Printf.sprintf "unknown flag bits %#x" flags));
  let u64 off =
    let x = Bytes.get_int64_le raw off in
    if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int max_int) > 0 then
      E.fail (E.Malformed "count overflows the host int");
    Int64.to_int x
  in
  let n = u64 8 and m = u64 16 and inc_len = u64 24 in
  if n > Csr.max_vertices then E.fail (E.Malformed "vertex count beyond int32 range");
  if m > Csr.max_edges then E.fail (E.Malformed "edge count beyond int32/2 range");
  if inc_len > 2 * m then E.fail (E.Malformed "incidence longer than 2m");
  let expected = file_bytes ~n ~m ~inc_len in
  if size <> expected then
    E.fail
      (E.Malformed
         (Printf.sprintf "file is %d bytes, header implies %d" size expected));
  { n; m; inc_len; size }

let verify_crc fd ~size =
  let payload = size - 4 in
  let buf = Bytes.create 65_536 in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let crc = ref 0l in
  let first = ref true in
  let pos = ref 0 in
  while !pos < payload do
    let len = min (Bytes.length buf) (payload - !pos) in
    really_read fd buf ~pos:0 ~len "payload";
    let chunk = Bytes.sub_string buf 0 len in
    crc := (if !first then Crc32.string chunk else Crc32.string ~init:!crc chunk);
    first := false;
    pos := !pos + len
  done;
  really_read fd buf ~pos:0 ~len:4 "checksum";
  let stored = Bytes.get_int32_le buf 0 in
  if stored <> !crc then E.fail (E.Checksum_mismatch { stored; computed = !crc })

let map_section fd ~pos dim : Csr.buf =
  if dim = 0 then Sf_graph.Bigvec.create_buf 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout false
         [| dim |])

(* Big-endian hosts cannot reuse the raw int32 maps (the format is
   little-endian on disk), so they pay a full byte-swapping read.
   Every deployment this project targets is little-endian; the branch
   exists so the format stays well-defined everywhere. *)
let read_section_swapped fd ~pos dim : Csr.buf =
  let out = Sf_graph.Bigvec.create_buf dim in
  let raw = Bytes.create (4 * min dim chunk_ints) in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let done_ = ref 0 in
  while !done_ < dim do
    let count = min chunk_ints (dim - !done_) in
    really_read fd raw ~pos:0 ~len:(4 * count) "section";
    for i = 0 to count - 1 do
      Bigarray.Array1.unsafe_set out (!done_ + i) (Bytes.get_int32_le raw (4 * i))
    done;
    done_ := !done_ + count
  done;
  out

let map_ugraph_file ?(verify = true) ~path () =
  Sf_obs.Timer.time obs_map_timer (fun () ->
      with_fd path (fun fd ->
          let h = read_header fd ~path in
          if verify then verify_crc fd ~size:h.size;
          let section = if Sys.big_endian then read_section_swapped else map_section in
          let off_srcs = section_offset_srcs in
          let off_dsts = off_srcs + (4 * h.m) in
          let off_inc_start = off_dsts + (4 * h.m) in
          let off_inc = off_inc_start + (4 * (h.n + 1)) in
          let srcs = section fd ~pos:off_srcs h.m in
          let dsts = section fd ~pos:off_dsts h.m in
          let inc_start = section fd ~pos:off_inc_start (h.n + 1) in
          let inc = section fd ~pos:off_inc h.inc_len in
          (* cheap structural cross-checks; full [Csr.validate] is the
             caller's (or [verify]'s) opt-in — it is O(n+m) with a
             rebuild, defeating the point of a lazy map *)
          if h.n > 0 && Int32.to_int (Bigarray.Array1.get inc_start 0) <> 0 then
            E.fail (E.Malformed "offsets do not start at 0");
          if Int32.to_int (Bigarray.Array1.get inc_start h.n) <> h.inc_len then
            E.fail (E.Malformed "incidence length disagrees with offsets");
          if Sf_obs.Registry.enabled () then Sf_obs.Counter.add obs_bytes_mapped h.size;
          if Sf_obs.Trace.active () then
            Sf_obs.Trace.instant "store.map"
              ~args:[ ("path", Sf_obs.Trace.Str path); ("bytes", Sf_obs.Trace.Int h.size) ];
          Ugraph.of_csr
            (Csr.of_sections ~n:h.n ~m:h.m ~srcs ~dsts ~inc_start ~inc)))

(* ------------------------------------------------------------------ *)
(* Version-sniffing load                                               *)
(* ------------------------------------------------------------------ *)

let sniff_version path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let buf = Bytes.create 5 in
      let got = input ic buf 0 5 in
      if got >= 5 && Bytes.sub_string buf 0 4 = magic then Some (Char.code (Bytes.get buf 4))
      else None)

let load_ugraph ?(verify = true) ~path () =
  match sniff_version path with
  | Some v when v = version -> map_ugraph_file ~verify ~path ()
  | Some _ (* v1 or future: the strict codec decides *) | None ->
    Ugraph.of_digraph (Codec.read_any_file ~path)
