type key = {
  gen : string;
  params : (string * string) list;
  n : int;
  stream : string;
}

let rng_token rng =
  Sf_prng.Rng.state_words rng
  |> Array.map (fun w -> Printf.sprintf "%016Lx" w)
  |> Array.to_list |> String.concat ""

let restore rng token =
  if String.length token <> 64 then invalid_arg "Fingerprint.restore: malformed rng token";
  let word i =
    try Int64.of_string ("0x" ^ String.sub token (16 * i) 16)
    with Failure _ -> invalid_arg "Fingerprint.restore: malformed rng token"
  in
  Sf_prng.Rng.set_state_words rng (Array.init 4 word)

let canonical k =
  let params = List.map (fun (name, v) -> name ^ "=" ^ v) k.params |> String.concat "&" in
  Printf.sprintf "%s?%s#n=%d@%s" k.gen params k.n k.stream

let hex k = Digest.to_hex (Digest.string (canonical k))

let describe k =
  let params = List.map (fun (name, v) -> name ^ "=" ^ v) k.params |> String.concat "," in
  Printf.sprintf "%s(%s) n=%d" k.gen params k.n
