(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven — the
    trailing integrity checksum of the binary graph format.

    The checksum detects the failure modes an on-disk corpus actually
    meets (truncated writes, bit rot, concurrent-writer shears); it is
    not a content address — {!Fingerprint} plays that role. *)

val string : ?init:int32 -> string -> int32
(** CRC of a whole string, or a continuation of [init] (the running
    CRC returned by a previous call) over a further chunk. *)

val sub : ?init:int32 -> string -> pos:int -> len:int -> int32
(** CRC of a substring.
    @raise Invalid_argument on an out-of-bounds range. *)
