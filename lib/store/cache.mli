(** The content-addressed on-disk corpus cache.

    Layout under the cache directory:
    {v
    DIR/
      index.jsonl          one JSON object per line (append-only log)
      objects/<fp>.sfg     codec-encoded graphs, named by fingerprint
    v}

    The index is a log, not a table: an entry line re-registers its
    fingerprint, a touch line refreshes its LRU position, and the last
    line wins. Loading replays the log (skipping any malformed line),
    {!gc} compacts it. Object files are written to a [.tmp.<pid>] name
    and renamed into place, so readers never observe a half-written
    graph; concurrent writers of the same fingerprint carry identical
    bytes by construction (the address is a pure function of the
    generation coordinate), so last-write-wins renames are safe.

    {b Corruption handling.} A hit whose object file is missing,
    truncated or fails the codec checksum — or whose index metadata is
    unusable — counts into [cache.corrupt], evicts the entry, and
    reports a miss: the caller regenerates and re-stores, and the run
    completes with the same results it would have produced cold
    (doc/STORAGE.md, determinism contract).

    {b Instrumentation.} [cache.hit], [cache.miss], [cache.evict],
    [cache.corrupt] counters, [cache.hit]/[cache.miss]/[cache.corrupt]
    trace instants, plus the [store.read_s]/[store.write_s] timers of
    {!Codec} underneath. All operations are serialised on an internal
    mutex, so a cache may be shared by every domain of a
    {!Sf_parallel.Pool}; counters tick inside the per-task capture and
    merge deterministically (doc/PARALLELISM.md). *)

type t

type entry = {
  fp : string;  (** content address (32 hex digits) *)
  desc : string;  (** human-readable coordinate *)
  gen : string;
  n : int;
  target : int;  (** search target packaged with the graph *)
  rng_after : string;  (** post-generation rng token *)
  bytes : int;  (** object size on disk *)
  seq : int;  (** LRU clock: higher = more recently used *)
}

val open_dir : string -> t
(** Create the directory (and [objects/]) if missing, replay the
    index.
    @raise Sys_error when the path exists but is not writable. *)

val dir : t -> string

val find : t -> Fingerprint.key -> (Sf_graph.Digraph.t * entry) option
(** Decoded graph plus metadata on a hit (refreshing its LRU
    position); [None] — after the counter and eviction bookkeeping
    described above — on a miss or a corrupt entry. *)

val add :
  t -> Fingerprint.key -> graph:Sf_graph.Digraph.t -> target:int -> rng_after:string -> unit
(** Store an object and append its index line. Re-adding a
    fingerprint overwrites the object and supersedes the line. *)

val find_ugraph : t -> Fingerprint.key -> (Sf_graph.Ugraph.t * entry) option
(** Container-agnostic {!find}: version-2 objects open as mmap-backed
    CSR graphs ({!Csr_codec.map_ugraph_file}, CRC verified), version-1
    objects decode and convert. Counters, LRU touch and
    corrupt-eviction behave exactly as in {!find}. *)

val add_ugraph :
  t ->
  Fingerprint.key ->
  graph:Sf_graph.Ugraph.t ->
  target:int ->
  rng_after:string ->
  format:[ `V1 | `V2 ] ->
  unit
(** Store in the chosen container. Both versions share the
    [<fp>.sfg] namespace — the version byte in the file, not the
    name, selects the read path — so gc and the index treat them
    uniformly. [`V1] is compact (varints, ~1–2 bytes/edge), [`V2] is
    mmap-readable (~12 bytes/edge); {!Corpus} picks by graph size. *)

val mem : t -> Fingerprint.key -> bool
(** Pure membership probe — no counters, no LRU touch. *)

val entries : t -> entry list
(** Least-recently-used first. *)

val total_bytes : t -> int

val gc : t -> budget_bytes:int -> entry list
(** Evict least-recently-used entries until the object total fits the
    budget; returns the evicted entries and compacts the index.
    @raise Invalid_argument on a negative budget. *)

val verify : t -> (entry * (unit, string) result) list
(** Check every object against its checksum, in LRU order, without
    touching counters or LRU state. Version-1 objects are fully
    decoded; version-2 objects are CRC-verified and then put through
    the deep structural audit ([Csr.validate]) that the fast mmap
    read path deliberately skips. *)

val remove : t -> string -> bool
(** Remove one entry by fingerprint; [false] if absent. *)

val flush : t -> unit
(** Flush the index channel (for tests that reopen the directory). *)

val close : t -> unit
(** Flush and close the index channel. Further use raises
    [Sys_error]. *)
