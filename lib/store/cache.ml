module E = Sf_obs.Export

let obs_hit = Sf_obs.Registry.counter "cache.hit"
let obs_miss = Sf_obs.Registry.counter "cache.miss"
let obs_evict = Sf_obs.Registry.counter "cache.evict"
let obs_corrupt = Sf_obs.Registry.counter "cache.corrupt"

type entry = {
  fp : string;
  desc : string;
  gen : string;
  n : int;
  target : int;
  rng_after : string;
  bytes : int;
  seq : int;
}

type t = {
  root : string;
  objects : string;
  table : (string, entry) Hashtbl.t;
  mutable seq : int;
  mutable index_oc : out_channel option;
  lock : Mutex.t;
}

let dir t = t.root
let index_path t = Filename.concat t.root "index.jsonl"
let object_path t fp = Filename.concat t.objects (fp ^ ".sfg")

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Index lines                                                         *)
(* ------------------------------------------------------------------ *)

let entry_line e =
  Printf.sprintf
    "{\"fp\":%s,\"gen\":%s,\"desc\":%s,\"n\":%d,\"target\":%d,\"rng\":%s,\"bytes\":%d,\"seq\":%d}"
    (E.json_string e.fp) (E.json_string e.gen) (E.json_string e.desc) e.n e.target
    (E.json_string e.rng_after) e.bytes e.seq

let touch_line fp seq = Printf.sprintf "{\"touch\":%s,\"seq\":%d}" (E.json_string fp) seq

(* Minimal field scanners for the lines this module writes. They are
   deliberately tolerant: any line they cannot make sense of is
   dropped on replay — losing an index line only costs a
   regeneration, never a wrong answer. *)
let scan_string line name =
  let pat = "\"" ^ name ^ "\":\"" in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    let buf = Buffer.create 32 in
    let rec consume i =
      if i >= String.length line then None
      else
        match line.[i] with
        | '"' -> Some (Buffer.contents buf)
        | '\\' when i + 1 < String.length line ->
          Buffer.add_char buf line.[i + 1];
          consume (i + 2)
        | c ->
          Buffer.add_char buf c;
          consume (i + 1)
    in
    consume start

let scan_int line name =
  let pat = "\"" ^ name ^ "\":" in
  let plen = String.length pat in
  let rec search i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length line
      && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    if !stop = start then None else int_of_string_opt (String.sub line start (!stop - start))

let hex_only s = s <> "" && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let apply_line t line =
  match scan_string line "touch" with
  | Some fp -> (
    match (Hashtbl.find_opt t.table fp, scan_int line "seq") with
    | Some e, Some seq ->
      Hashtbl.replace t.table fp { e with seq };
      t.seq <- max t.seq seq
    | _ -> ())
  | None -> (
    match
      ( scan_string line "fp",
        scan_string line "gen",
        scan_string line "desc",
        scan_int line "n",
        scan_int line "target",
        scan_string line "rng",
        scan_int line "bytes",
        scan_int line "seq" )
    with
    | Some fp, Some gen, Some desc, Some n, Some target, Some rng_after, Some bytes, Some seq
      when hex_only fp && String.length rng_after = 64 && hex_only rng_after ->
      Hashtbl.replace t.table fp { fp; gen; desc; n; target; rng_after; bytes; seq };
      t.seq <- max t.seq seq
    | _ -> () (* malformed line: dropped, see module doc *))

let mkdir_p path =
  if not (Sys.file_exists path) then (
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  if not (Sys.is_directory path) then raise (Sys_error (path ^ ": not a directory"))

let open_dir root =
  mkdir_p root;
  let objects = Filename.concat root "objects" in
  mkdir_p objects;
  let t =
    { root; objects; table = Hashtbl.create 64; seq = 0; index_oc = None; lock = Mutex.create () }
  in
  let index = index_path t in
  if Sys.file_exists index then begin
    let ic = open_in index in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            apply_line t (input_line ic)
          done
        with End_of_file -> ())
  end;
  (* drop index entries whose object file vanished *)
  Hashtbl.iter
    (fun fp _ -> if not (Sys.file_exists (object_path t fp)) then Hashtbl.remove t.table fp)
    (Hashtbl.copy t.table);
  t.index_oc <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 index);
  t

let append_line t line =
  match t.index_oc with
  | None -> raise (Sys_error "Cache: closed")
  | Some oc ->
    output_string oc (line ^ "\n");
    flush oc

(* ------------------------------------------------------------------ *)
(* Instrumentation helpers                                             *)
(* ------------------------------------------------------------------ *)

let trace_cache event (key : Fingerprint.key) fp =
  if Sf_obs.Trace.active () then
    Sf_obs.Trace.instant event
      ~args:
        [
          ("fp", Sf_obs.Trace.Str fp);
          ("coordinate", Sf_obs.Trace.Str (Fingerprint.describe key));
        ]

let count c = if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr c

(* ------------------------------------------------------------------ *)
(* The protocol                                                        *)
(* ------------------------------------------------------------------ *)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table (Fingerprint.hex key))

let drop_entry t fp =
  (* caller holds the lock *)
  if Hashtbl.mem t.table fp then begin
    Hashtbl.remove t.table fp;
    (try Sys.remove (object_path t fp) with Sys_error _ -> ())
  end

let find t key =
  let fp = Fingerprint.hex key in
  let entry = with_lock t (fun () -> Hashtbl.find_opt t.table fp) in
  match entry with
  | None ->
    count obs_miss;
    trace_cache "cache.miss" key fp;
    None
  | Some e -> (
    match Codec.read_graph_file ~path:(object_path t fp) with
    | g ->
      count obs_hit;
      trace_cache "cache.hit" key fp;
      with_lock t (fun () ->
          t.seq <- t.seq + 1;
          let e = { e with seq = t.seq } in
          Hashtbl.replace t.table fp e;
          append_line t (touch_line fp t.seq));
      Some (g, e)
    | exception (Codec_error.Error _ | Sys_error _) ->
      (* missing, truncated or bit-rotted object: evict and report a
         miss so the caller regenerates *)
      count obs_corrupt;
      trace_cache "cache.corrupt" key fp;
      with_lock t (fun () -> drop_entry t fp);
      None)

(* The ugraph variants serve both container versions through one
   address space: objects keep the same <fp>.sfg name and the version
   byte in the file decides the read path, so gc, verify and the index
   never care which container an object uses. *)
let find_ugraph t key =
  let fp = Fingerprint.hex key in
  let entry = with_lock t (fun () -> Hashtbl.find_opt t.table fp) in
  match entry with
  | None ->
    count obs_miss;
    trace_cache "cache.miss" key fp;
    None
  | Some e -> (
    let path = object_path t fp in
    let load () =
      match Csr_codec.sniff_version path with
      | Some v when v = Csr_codec.version -> Csr_codec.map_ugraph_file ~path ()
      | _ -> Sf_graph.Ugraph.of_digraph (Codec.read_graph_file ~path)
    in
    match load () with
    | g ->
      count obs_hit;
      trace_cache "cache.hit" key fp;
      with_lock t (fun () ->
          t.seq <- t.seq + 1;
          let e = { e with seq = t.seq } in
          Hashtbl.replace t.table fp e;
          append_line t (touch_line fp t.seq));
      Some (g, e)
    | exception (Codec_error.Error _ | Sys_error _) ->
      count obs_corrupt;
      trace_cache "cache.corrupt" key fp;
      with_lock t (fun () -> drop_entry t fp);
      None)

let register t key ~target ~rng_after ~path =
  let fp = Fingerprint.hex key in
  let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  with_lock t (fun () ->
      t.seq <- t.seq + 1;
      let e =
        {
          fp;
          desc = Fingerprint.describe key;
          gen = key.Fingerprint.gen;
          n = key.Fingerprint.n;
          target;
          rng_after;
          bytes;
          seq = t.seq;
        }
      in
      Hashtbl.replace t.table fp e;
      append_line t (entry_line e))

let add_ugraph t key ~graph ~target ~rng_after ~format =
  let path = object_path t (Fingerprint.hex key) in
  (match format with
  | `V1 -> Codec.write_graph_file (Codec.digraph_of_ugraph graph) ~path
  | `V2 -> Csr_codec.write_ugraph_file graph ~path);
  register t key ~target ~rng_after ~path

let add t key ~graph ~target ~rng_after =
  let fp = Fingerprint.hex key in
  let path = object_path t fp in
  Codec.write_graph_file graph ~path;
  let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  with_lock t (fun () ->
      t.seq <- t.seq + 1;
      let e =
        {
          fp;
          desc = Fingerprint.describe key;
          gen = key.Fingerprint.gen;
          n = key.Fingerprint.n;
          target;
          rng_after;
          bytes;
          seq = t.seq;
        }
      in
      Hashtbl.replace t.table fp e;
      append_line t (entry_line e))

let entries t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
      |> List.sort (fun (a : entry) (b : entry) -> compare a.seq b.seq))

let total_bytes t =
  with_lock t (fun () -> Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.table 0)

let rewrite_index t =
  (* caller holds the lock; compact the log to one line per entry *)
  (match t.index_oc with
  | Some oc ->
    close_out_noerr oc;
    t.index_oc <- None
  | None -> ());
  let sorted =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun (a : entry) (b : entry) -> compare a.seq b.seq)
  in
  let tmp = Printf.sprintf "%s.tmp.%d" (index_path t) (Unix.getpid ()) in
  let oc = open_out tmp in
  List.iter (fun e -> output_string oc (entry_line e ^ "\n")) sorted;
  close_out oc;
  Sys.rename tmp (index_path t);
  t.index_oc <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 (index_path t))

let gc t ~budget_bytes =
  if budget_bytes < 0 then invalid_arg "Cache.gc: negative budget";
  with_lock t (fun () ->
      let sorted =
        Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
        |> List.sort (fun (a : entry) (b : entry) -> compare a.seq b.seq)
      in
      let total = List.fold_left (fun acc e -> acc + e.bytes) 0 sorted in
      let evicted = ref [] in
      let remaining = ref total in
      List.iter
        (fun e ->
          if !remaining > budget_bytes then begin
            drop_entry t e.fp;
            count obs_evict;
            remaining := !remaining - e.bytes;
            evicted := e :: !evicted
          end)
        sorted;
      if !evicted <> [] then rewrite_index t;
      List.rev !evicted)

let verify t =
  entries t
  |> List.map (fun e ->
         (* the checksum is the integrity guarantee; no plausibility
            checks against the coordinate — e.g. config-giant stores
            its giant component, legitimately smaller than the
            requested n *)
         let path = object_path t e.fp in
         let status =
           match Csr_codec.sniff_version path with
           | Some v when v = Csr_codec.version -> (
             (* giant container: CRC plus the deep structural audit —
                the mmap read path skips the latter, so verify is
                where it runs *)
             match Csr_codec.map_ugraph_file ~path () with
             | u -> (
               match Sf_graph.Csr.validate (Sf_graph.Ugraph.csr u) with
               | Ok () -> Ok ()
               | Error msg -> Error msg)
             | exception Codec_error.Error err -> Error (Codec_error.to_string err)
             | exception Sys_error msg -> Error msg)
           | _ -> (
             match Codec.decode (In_channel.with_open_bin path In_channel.input_all) with
             | (_ : Sf_graph.Digraph.t) -> Ok ()
             | exception Codec_error.Error err -> Error (Codec_error.to_string err)
             | exception Sys_error msg -> Error msg)
         in
         (e, status))

let remove t fp =
  with_lock t (fun () ->
      let present = Hashtbl.mem t.table fp in
      if present then begin
        drop_entry t fp;
        rewrite_index t
      end;
      present)

let flush t =
  with_lock t (fun () -> match t.index_oc with Some oc -> flush oc | None -> ())

let close t =
  with_lock t (fun () ->
      match t.index_oc with
      | Some oc ->
        close_out_noerr oc;
        t.index_oc <- None
      | None -> ())
