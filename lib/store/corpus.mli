(** The ambient corpus: one process-global optional {!Cache} that the
    instance makers of {!Sf_core.Searchability} consult, configured
    once by the harness from [--corpus DIR] or [SCALEFREE_CORPUS]
    (bin/obs_cli, bench). Nothing is cached until a directory is
    configured — with the corpus unset, {!instance} is the identity
    wrapper and a grid run is byte-identical to one built before this
    module existed.

    {b Determinism contract} (doc/STORAGE.md): for a configured
    corpus, a warm run performs zero generator calls for cached
    coordinates and produces search results byte-identical to the
    cold run at any [--jobs] value. The mechanism: the cache key is
    the generation coordinate including the trial stream's full rng
    state, the stored entry carries the post-generation rng state, and
    a hit restores it — so downstream draws (source selection, search
    randomness) consume exactly the stream they would have after
    generating. *)

val configure : ?dir:string -> unit -> unit
(** [configure ~dir ()] opens (creating if needed) the cache at [dir];
    without [dir], falls back to the [SCALEFREE_CORPUS] environment
    variable, else leaves the corpus unset. Call before spawning
    worker domains. *)

val set_cache : Cache.t option -> unit
(** Install an already-open cache (tests), or [None] to disable. *)

val cache : unit -> Cache.t option

val instance :
  gen:string ->
  params:(string * string) list ->
  (Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int) ->
  Sf_prng.Rng.t ->
  int ->
  Sf_graph.Ugraph.t * int
(** [instance ~gen ~params make rng n] is [make rng n] routed through
    the corpus: a hit opens the stored graph, restores the stream
    and skips [make]; a miss (or corrupt entry) runs [make] and stores
    graph, target and post-generation stream. [params] must render
    every parameter [make] closes over, in a fixed order — two
    distinct generators must never share a coordinate.

    Objects at or above [2^18] edges are stored in the version-2 mmap
    container and open without a decode pass ({!Csr_codec}); smaller
    ones use the compact version-1 codec. Reads sniff the version
    byte, so a corpus written before this split keeps working and the
    byte-identity contract is unchanged either way. *)
