(** The giant-graph container (magic [SFGB], version 2) — raw CSR
    sections behind a fixed header, designed to be read by [mmap]
    rather than decoded (byte layout in doc/STORAGE.md, memory model
    in doc/SCALING.md).

    Version 1 ({!Codec}) optimises for size: varint deltas, ~1–2 bytes
    per edge, but decoding allocates the whole graph. Version 2
    optimises for access: the four {!Sf_graph.Csr} sections are stored
    verbatim (int32 little-endian, 4-byte aligned), so opening a
    10M-vertex graph is four [Unix.map_file] calls and the OS pages in
    only what a search actually touches. The price is ~12 bytes per
    edge plus ~12 per vertex on disk.

    Integrity: a trailing CRC-32 over everything before it, exactly as
    in version 1. {!map_ugraph_file} verifies it by default (one
    streaming pass over the file — opening is then O(file) in I/O but
    still allocation-free); passing [~verify:false] skips the pass and
    trusts the mapping — for callers that checked the file through
    [Cache.verify] out of band. Structural sanity (header/size
    arithmetic, offset endpoints) is always checked; deep validation
    is [Csr.validate] on the result.

    Written files are byte-deterministic: the same graph produces the
    same file, so content-addressing and the warm-read byte-identity
    contract of doc/STORAGE.md carry over unchanged. *)

val magic : string
(** Same 4-byte magic as {!Codec}, ["SFGB"] — the version byte, not
    the magic, separates the formats. *)

val version : int
(** [2]. *)

val file_bytes : n:int -> m:int -> inc_len:int -> int
(** Exact on-disk size of a graph with these section dimensions. *)

val write_ugraph_file : Sf_graph.Ugraph.t -> path:string -> unit
(** Atomic write (tmp + rename), streaming the sections through the
    CRC without materialising the file in memory.
    @raise Sys_error on I/O failure. *)

val map_ugraph_file : ?verify:bool -> path:string -> unit -> Sf_graph.Ugraph.t
(** Open a version-2 file as a CSR graph backed by shared read-only
    maps. [verify] (default [true]) streams the file once to check the
    trailing CRC before mapping.
    @raise Codec_error.Error on malformed contents, wrong version or
    checksum mismatch; [Sys_error] on I/O failure. *)

val looks_v2 : string -> bool
(** Whether a byte prefix (≥ 5 bytes) is a version-2 header. *)

val sniff_version : string -> int option
(** Read the first bytes of a file: [Some v] for an SFGB header of
    version [v], [None] for anything else (including short files). *)

val load_ugraph : ?verify:bool -> path:string -> unit -> Sf_graph.Ugraph.t
(** The one-stop loader the CLI tools use: version-2 files are mapped
    (honouring [verify]), version-1 files decoded via {!Codec}, and
    anything else parsed as a text edge list. *)
