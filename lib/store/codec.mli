(** The versioned binary graph format (magic [SFGB], version 1) —
    byte layout in doc/STORAGE.md.

    The encoding is CSR-shaped: per-vertex out-degrees, then each
    vertex's out-neighbour row as zigzag-varint deltas. Rows keep
    edges in insertion order {e within} the row, and a trailing
    permutation section (present only when needed) recovers the global
    edge-insertion order exactly — edge ids double as timestamps in
    this codebase, and the search oracles expose incidence in id
    order, so a decoded graph must reproduce search runs
    byte-for-byte, not merely be isomorphic. Growth-model graphs
    insert edges in source order, so the permutation section is
    usually absent and the format costs ~1–2 bytes per edge.

    A CRC-32 of everything before it trails the payload. {!decode} is
    strict: bad magic, unsupported version, checksum mismatch,
    truncation, degree/edge-count disagreement, out-of-range
    endpoints, a non-permutation order section and trailing bytes all
    raise {!Codec_error.Error} — nothing is repaired silently.

    Reads and writes are timed into the [store.read_s] /
    [store.write_s] registry timers and bracketed by [store.read] /
    [store.write] trace events (doc/OBSERVABILITY.md). *)

val magic : string
(** The 4-byte magic, ["SFGB"]. *)

val version : int

val encode : Sf_graph.Digraph.t -> string
(** Exact encoding: [decode (encode g)] reproduces vertex count and
    the edge sequence (id, src, dst) of [g] exactly. *)

val decode : string -> Sf_graph.Digraph.t
(** @raise Codec_error.Error on any malformed input. *)

val digraph_of_ugraph : Sf_graph.Ugraph.t -> Sf_graph.Digraph.t
(** Exact inverse of {!Sf_graph.Ugraph.of_digraph}: the view retains
    every edge's oriented endpoints in id order, so the directed
    multigraph is recoverable bit-for-bit. *)

val encode_ugraph : Sf_graph.Ugraph.t -> string
(** Encodes the directed multigraph underlying the view — a
    {!Sf_graph.Ugraph.t} retains every edge's oriented endpoints in id
    order, so this is exact, not a symmetrised approximation. *)

val decode_ugraph : string -> Sf_graph.Ugraph.t

val looks_binary : string -> bool
(** Whether a byte prefix (≥ 4 bytes) carries the format magic — the
    sniff used by the CLI tools to accept [.sfg] and edge-list inputs
    through one flag. *)

val write_graph_file : Sf_graph.Digraph.t -> path:string -> unit
(** Atomic write: encode to [path ^ ".tmp.<pid>"], then rename.
    @raise Sys_error on I/O failure. *)

val read_graph_file : path:string -> Sf_graph.Digraph.t
(** @raise Codec_error.Error on malformed contents (the message of a
    wrapped [Sys_error] names [path]). *)

val read_any_file : path:string -> Sf_graph.Digraph.t
(** Sniff the first bytes: binary graphs go through {!decode},
    anything else through {!Sf_graph.Gio.of_edge_list}. *)
