(** The local-knowledge oracle: the only window a searching process has
    onto the graph (Section "Modeling the searching process" of the
    paper).

    The searcher starts knowing one vertex. At any time it knows a set
    of {e discovered} vertices, each with its identity, its degree and
    a list of incident {e edge handles} whose far endpoints are hidden
    until paid for. The two request types are exactly the paper's:

    - {b weak}: a request is a pair (discovered vertex [u], edge handle
      [e] incident to [u]); the answer is the identity of the far
      endpoint [v] of [e], which becomes discovered (degree + handles).
    - {b strong}: a request names a discovered vertex [u]; the answer
      is the list of [u]'s neighbours, each of which becomes
      discovered. (The paper phrases requests as naming a vertex
      {e adjacent to} a discovered one; the two formulations simulate
      each other within one request, and this one needs no bootstrap
      convention for the first step.)

    {b Information hiding.} Edge handles are opaque integers assigned
    in first-exposure order, and each discovered vertex's handle list
    is privately shuffled, so a strategy cannot read construction
    timestamps out of edge ids or list positions — it sees exactly what
    the paper's model allows, vertex identities included (identities
    are the whole point: the target is "the vertex named [t]"). The
    same physical edge carries the same handle at both endpoints, so a
    searcher that has discovered both endpoints can recognise the edge
    — also as in the paper, where the answer to a request includes the
    full incident-edge lists.

    The oracle also keeps the two score counters of the paper's
    complexity measure — requests made when the target was first
    discovered, and when a neighbour of the target was first discovered
    — which the experiment {e runner} reads after the fact; honest
    strategies never call these. *)

type vertex = int

type handle = int
(** Opaque public edge id; meaningful only through this interface. *)

type model = Weak | Strong

type t

val start :
  ?obfuscate:bool ->
  rng:Sf_prng.Rng.t ->
  model ->
  Sf_graph.Ugraph.t ->
  source:vertex ->
  target:vertex ->
  t
(** Fresh search instance; [source] is discovered at zero cost.
    [obfuscate] (default [true]) enables handle renaming and list
    shuffling; turn off only in tests that need to address physical
    edge ids. [rng] drives the shuffling only.
    @raise Invalid_argument if [source] or [target] is not a vertex. *)

(** {1 What the searcher may observe} *)

val model : t -> model
val n_vertices : t -> int
val target : t -> vertex
val source : t -> vertex
val requests : t -> int

val is_discovered : t -> vertex -> bool

val discovered_count : t -> int

val discovered_nth : t -> int -> vertex
(** Discovery sequence, [0 .. discovered_count - 1]; lets a strategy
    pull new discoveries incrementally. *)

val degree : t -> vertex -> int
(** Observable degree of a {e discovered} vertex: the number of its
    handles (a self-loop contributes one).
    @raise Invalid_argument if undiscovered. *)

val handles : t -> vertex -> handle array
(** Handles of a discovered vertex. The array is owned by the oracle —
    do not mutate. @raise Invalid_argument if undiscovered. *)

val handle_requested : t -> handle -> bool
(** Whether some past weak request already paid for this handle. *)

val endpoints_if_known : t -> handle -> (vertex * vertex) option
(** Both endpoints, when the searcher is in a position to know them —
    i.e. both are discovered (the handle then appears in both their
    lists). [None] otherwise. *)

(** {1 Requests} *)

val request_weak : t -> owner:vertex -> handle -> vertex
(** One weak request; returns (and discovers) the far endpoint.
    Counts 1 even if the edge was already requested or recognisable.
    @raise Invalid_argument in the strong model, if [owner] is
    undiscovered, or if the handle is not incident to [owner]. *)

val request_strong : t -> vertex -> vertex list
(** One strong request on a discovered vertex; discovers and returns
    all its neighbours (with multiplicity collapsed).
    @raise Invalid_argument in the weak model or if undiscovered. *)

val is_explored : t -> vertex -> bool
(** Strong model: whether the vertex was already strong-requested. *)

(** {1 Discovery provenance}

    The paper's task is to find {e a path} to the target, not merely
    its name: every discovery is caused by a request at some known
    vertex, so the discovery tree yields a certified graph path from
    the source to anything discovered. *)

val discovery_parent : t -> vertex -> vertex option
(** The discovered vertex whose request revealed this one ([None] for
    the source). @raise Invalid_argument if undiscovered. *)

val discovery_path : t -> vertex -> vertex list
(** The source-to-vertex path through the discovery tree (source
    first). Every consecutive pair is an edge of the graph — the
    deliverable the paper's searcher owes.
    @raise Invalid_argument if undiscovered. *)

(** {1 The request event}

    Every paid request additionally emits one event named
    {!request_event_name} on the {!Sf_obs.Trace} stream (when a sink
    is attached and the registry enabled): the paper's complexity
    measure as a {e sequence}. Args: [index] (1-based request number),
    [kind] (["weak-edge"] | ["strong-vertex"]), [at] (the vertex the
    request addressed), [revealed] (vertices newly discovered, in
    discovery order), [discovered_total] (count after the request). *)

val request_event_name : string
(** ["search.request"]. *)

(** {1 Scoring — for the runner, not for strategies} *)

val target_found : t -> bool

val requests_when_found : t -> int option
(** Requests made when the target itself became discovered. [Some 0]
    if [source = target]. *)

val requests_when_neighbor : t -> int option
(** Requests made when the discovered set first touched the target's
    closed neighbourhood — the paper's lenient stopping rule. *)
