(* Observability: per-run aggregates; per-request counting and the
   per-request "search.request" trace events live in Oracle. Strategy
   names may contain characters the metric grammar rejects ('+',
   parentheses), so they are sanitised. *)
let obs_runs = Sf_obs.Registry.counter "search.runs"
let obs_gave_up = Sf_obs.Registry.counter "search.gave_up"
let obs_budget_exhausted = Sf_obs.Registry.counter "search.budget_exhausted"
let obs_run_timer = Sf_obs.Registry.timer "search.run_s"
let obs_requests_per_run = Sf_obs.Registry.histo "search.requests_per_run"

let metric_component s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '_')
    s

type outcome = {
  strategy : string;
  n_vertices : int;
  total_requests : int;
  to_target : int option;
  to_neighbor : int option;
  discovered : int;
  gave_up : bool;
}

type stop_rule = At_target | At_neighbor

let stopped stop_at oracle =
  match stop_at with
  | At_target -> Oracle.target_found oracle
  | At_neighbor -> Oracle.requests_when_neighbor oracle <> None

type trace_event = {
  index : int;
  kind : [ `Weak_edge | `Strong_vertex ];
  at : int;
  revealed : int list;
  discovered_total : int;
}

let run ?budget ?(stop_at = At_target) ~rng (strategy : Strategy.t) oracle =
  if strategy.Strategy.model <> Oracle.model oracle then
    invalid_arg "Runner.run: strategy and oracle use different knowledge models";
  let budget =
    match budget with Some b -> b | None -> (4 * Oracle.n_vertices oracle) + 64
  in
  let stepper = strategy.Strategy.prepare (Sf_prng.Rng.split rng) oracle in
  let gave_up = ref false in
  let continue = ref true in
  let requests_before = Oracle.requests oracle in
  let obs = Sf_obs.Registry.enabled () in
  if obs then Sf_obs.Timer.start obs_run_timer;
  while !continue && (not (stopped stop_at oracle)) && Oracle.requests oracle < budget do
    match stepper () with
    | Strategy.Request_edge (owner, h) -> ignore (Oracle.request_weak oracle ~owner h)
    | Strategy.Request_vertex v -> ignore (Oracle.request_strong oracle v)
    | Strategy.Give_up ->
      gave_up := true;
      continue := false
  done;
  if !gave_up then
    Sf_obs.Trace.instant "search.gave_up"
      ~args:
        [
          ("strategy", Sf_obs.Trace.Str strategy.Strategy.name);
          ("requests", Sf_obs.Trace.Int (Oracle.requests oracle - requests_before));
          ("discovered", Sf_obs.Trace.Int (Oracle.discovered_count oracle));
        ];
  if obs then begin
    Sf_obs.Timer.stop obs_run_timer;
    let paid = Oracle.requests oracle - requests_before in
    Sf_obs.Counter.incr obs_runs;
    if !gave_up then Sf_obs.Counter.incr obs_gave_up;
    if Oracle.requests oracle >= budget && not (stopped stop_at oracle) then
      Sf_obs.Counter.incr obs_budget_exhausted;
    Sf_obs.Histo.observe_int obs_requests_per_run paid;
    Sf_obs.Counter.add
      (Sf_obs.Registry.counter
         ("search.strategy." ^ metric_component strategy.Strategy.name ^ ".requests"))
      paid
  end;
  {
    strategy = strategy.Strategy.name;
    n_vertices = Oracle.n_vertices oracle;
    total_requests = Oracle.requests oracle;
    to_target = Oracle.requests_when_found oracle;
    to_neighbor = Oracle.requests_when_neighbor oracle;
    discovered = Oracle.discovered_count oracle;
    gave_up = !gave_up;
  }

(* run_traced replays the oracle's "search.request" stream events back
   into the record shape the CSV exporter renders: a temporary
   collector sink, attached for exactly the duration of the run. *)

let trace_event_of_stream (e : Sf_obs.Trace.event) =
  let int key =
    match List.assoc_opt key e.Sf_obs.Trace.args with Some (Sf_obs.Trace.Int i) -> i | _ -> 0
  in
  let kind =
    match List.assoc_opt "kind" e.Sf_obs.Trace.args with
    | Some (Sf_obs.Trace.Str "strong-vertex") -> `Strong_vertex
    | _ -> `Weak_edge
  in
  let revealed =
    match List.assoc_opt "revealed" e.Sf_obs.Trace.args with
    | Some (Sf_obs.Trace.Ints l) -> l
    | _ -> []
  in
  {
    index = int "index";
    kind;
    at = int "at";
    revealed;
    discovered_total = int "discovered_total";
  }

let run_traced ?budget ?stop_at ~rng strategy oracle =
  let collected = ref [] in
  let id =
    Sf_obs.Trace.attach
      {
        Sf_obs.Trace.descr = "runner.run_traced";
        emit =
          (fun e ->
            if e.Sf_obs.Trace.name = Oracle.request_event_name then
              collected := e :: !collected);
        close = (fun () -> ());
      }
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Sf_obs.Trace.detach id)
      (fun () -> run ?budget ?stop_at ~rng strategy oracle)
  in
  (outcome, List.rev_map trace_event_of_stream !collected)

let trace_to_csv events =
  Sf_stats.Csv.to_string
    ~header:[ "index"; "kind"; "at"; "revealed"; "discovered_total" ]
    ~rows:
      (List.map
         (fun e ->
           [
             string_of_int e.index;
             (match e.kind with `Weak_edge -> "weak-edge" | `Strong_vertex -> "strong-vertex");
             string_of_int e.at;
             String.concat ";" (List.map string_of_int e.revealed);
             string_of_int e.discovered_total;
           ])
         events)

let search ?obfuscate ?budget ?stop_at ~rng g (strategy : Strategy.t) ~source ~target =
  let oracle =
    Oracle.start ?obfuscate ~rng strategy.Strategy.model g ~source ~target
  in
  run ?budget ?stop_at ~rng strategy oracle
