(* Observability: per-run aggregates; per-request counting lives in
   Oracle. Strategy names may contain characters the metric grammar
   rejects ('+', parentheses), so they are sanitised. *)
let obs_runs = Sf_obs.Registry.counter "search.runs"
let obs_gave_up = Sf_obs.Registry.counter "search.gave_up"
let obs_budget_exhausted = Sf_obs.Registry.counter "search.budget_exhausted"
let obs_run_timer = Sf_obs.Registry.timer "search.run_s"
let obs_requests_per_run = Sf_obs.Registry.histo "search.requests_per_run"

let metric_component s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '_')
    s

type outcome = {
  strategy : string;
  n_vertices : int;
  total_requests : int;
  to_target : int option;
  to_neighbor : int option;
  discovered : int;
  gave_up : bool;
}

type stop_rule = At_target | At_neighbor

let stopped stop_at oracle =
  match stop_at with
  | At_target -> Oracle.target_found oracle
  | At_neighbor -> Oracle.requests_when_neighbor oracle <> None

type trace_event = {
  index : int;
  kind : [ `Weak_edge | `Strong_vertex ];
  at : int;
  revealed : int list;
  discovered_total : int;
}

let run_general ?budget ?(stop_at = At_target) ~rng ?on_event (strategy : Strategy.t) oracle =
  if strategy.Strategy.model <> Oracle.model oracle then
    invalid_arg "Runner.run: strategy and oracle use different knowledge models";
  let budget =
    match budget with Some b -> b | None -> (4 * Oracle.n_vertices oracle) + 64
  in
  let stepper = strategy.Strategy.prepare (Sf_prng.Rng.split rng) oracle in
  let gave_up = ref false in
  let continue = ref true in
  let record kind at before =
    match on_event with
    | None -> ()
    | Some f ->
      let after = Oracle.discovered_count oracle in
      let revealed =
        List.init (after - before) (fun i -> Oracle.discovered_nth oracle (before + i))
      in
      f
        {
          index = Oracle.requests oracle;
          kind;
          at;
          revealed;
          discovered_total = after;
        }
  in
  let requests_before = Oracle.requests oracle in
  let obs = Sf_obs.Registry.enabled () in
  if obs then Sf_obs.Timer.start obs_run_timer;
  while !continue && (not (stopped stop_at oracle)) && Oracle.requests oracle < budget do
    match stepper () with
    | Strategy.Request_edge (owner, h) ->
      let before = Oracle.discovered_count oracle in
      ignore (Oracle.request_weak oracle ~owner h);
      record `Weak_edge owner before
    | Strategy.Request_vertex v ->
      let before = Oracle.discovered_count oracle in
      ignore (Oracle.request_strong oracle v);
      record `Strong_vertex v before
    | Strategy.Give_up ->
      gave_up := true;
      continue := false
  done;
  if obs then begin
    Sf_obs.Timer.stop obs_run_timer;
    let paid = Oracle.requests oracle - requests_before in
    Sf_obs.Counter.incr obs_runs;
    if !gave_up then Sf_obs.Counter.incr obs_gave_up;
    if Oracle.requests oracle >= budget && not (stopped stop_at oracle) then
      Sf_obs.Counter.incr obs_budget_exhausted;
    Sf_obs.Histo.observe_int obs_requests_per_run paid;
    Sf_obs.Counter.add
      (Sf_obs.Registry.counter
         ("search.strategy." ^ metric_component strategy.Strategy.name ^ ".requests"))
      paid
  end;
  {
    strategy = strategy.Strategy.name;
    n_vertices = Oracle.n_vertices oracle;
    total_requests = Oracle.requests oracle;
    to_target = Oracle.requests_when_found oracle;
    to_neighbor = Oracle.requests_when_neighbor oracle;
    discovered = Oracle.discovered_count oracle;
    gave_up = !gave_up;
  }

let run ?budget ?stop_at ~rng strategy oracle =
  run_general ?budget ?stop_at ~rng strategy oracle

let run_traced ?budget ?stop_at ~rng strategy oracle =
  let events = ref [] in
  let outcome =
    run_general ?budget ?stop_at ~rng ~on_event:(fun e -> events := e :: !events) strategy
      oracle
  in
  (outcome, List.rev !events)

let trace_to_csv events =
  Sf_stats.Csv.to_string
    ~header:[ "index"; "kind"; "at"; "revealed"; "discovered_total" ]
    ~rows:
      (List.map
         (fun e ->
           [
             string_of_int e.index;
             (match e.kind with `Weak_edge -> "weak-edge" | `Strong_vertex -> "strong-vertex");
             string_of_int e.at;
             String.concat ";" (List.map string_of_int e.revealed);
             string_of_int e.discovered_total;
           ])
         events)

let search ?obfuscate ?budget ?stop_at ~rng g (strategy : Strategy.t) ~source ~target =
  let oracle =
    Oracle.start ?obfuscate ~rng strategy.Strategy.model g ~source ~target
  in
  run ?budget ?stop_at ~rng strategy oracle
