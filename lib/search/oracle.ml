module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Vec = Sf_graph.Vec

(* Observability: the oracle is where the paper's complexity measure
   is paid, so the request counters live here (see
   doc/OBSERVABILITY.md; search.requests is Lemma 1's count). *)
let obs_requests = Sf_obs.Registry.counter "search.requests"
let obs_requests_weak = Sf_obs.Registry.counter "search.requests.weak"
let obs_requests_strong = Sf_obs.Registry.counter "search.requests.strong"
let obs_discoveries = Sf_obs.Registry.counter "search.discoveries"
let obs_oracles = Sf_obs.Registry.counter "search.oracles"

(* One "search.request" trace event per paid request — the paper's
   complexity measure as a sequence rather than a count.  Runner's
   run_traced and the --trace exporters are both fed from here. *)
let request_event_name = "search.request"

type vertex = int
type handle = int
type model = Weak | Strong

type t = {
  model : model;
  g : Ugraph.t;
  target : vertex;
  source : vertex;
  near_target : bool array; (* target's closed neighbourhood *)
  rng : Rng.t;
  obfuscate : bool;
  pub_of_real : (int, int) Hashtbl.t;
  real_of_pub : Vec.t;
  discovered : bool array;
  order : Vec.t; (* discovery sequence *)
  parent : int array; (* discovery tree: revealing vertex, 0 for roots *)
  handle_lists : int array array; (* vertex-1 -> public handles, [||] until discovered *)
  requested : (int, unit) Hashtbl.t; (* public ids of paid weak requests *)
  explored : bool array; (* strong-requested vertices *)
  mutable request_count : int;
  mutable found_at : int option;
  mutable neighbor_at : int option;
}

let publicize t real_id =
  if not t.obfuscate then real_id
  else
    match Hashtbl.find_opt t.pub_of_real real_id with
    | Some pub -> pub
    | None ->
      let pub = Vec.length t.real_of_pub in
      Vec.push t.real_of_pub real_id;
      Hashtbl.replace t.pub_of_real real_id pub;
      pub

let realize t pub =
  if not t.obfuscate then begin
    if pub < 0 || pub >= Ugraph.n_edges t.g then invalid_arg "Oracle: unknown handle";
    pub
  end
  else if pub < 0 || pub >= Vec.length t.real_of_pub then invalid_arg "Oracle: unknown handle"
  else Vec.get t.real_of_pub pub

let discover ?(via = 0) t v =
  if not t.discovered.(v - 1) then begin
    if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_discoveries;
    t.discovered.(v - 1) <- true;
    t.parent.(v - 1) <- via;
    Vec.push t.order v;
    let pubs = Array.map (publicize t) (Ugraph.incident t.g v) in
    if t.obfuscate then Sf_prng.Shuffle.in_place t.rng pubs;
    t.handle_lists.(v - 1) <- pubs;
    if t.near_target.(v - 1) && t.neighbor_at = None then
      t.neighbor_at <- Some t.request_count;
    if v = t.target && t.found_at = None then t.found_at <- Some t.request_count
  end

let start ?(obfuscate = true) ~rng model g ~source ~target =
  if not (Ugraph.mem_vertex g source) then invalid_arg "Oracle.start: bad source";
  if not (Ugraph.mem_vertex g target) then invalid_arg "Oracle.start: bad target";
  let n = Ugraph.n_vertices g in
  let near_target = Array.make n false in
  near_target.(target - 1) <- true;
  Ugraph.iter_neighbors g target (fun u -> near_target.(u - 1) <- true);
  let t =
    {
      model;
      g;
      target;
      source;
      near_target;
      rng = Rng.split rng;
      obfuscate;
      pub_of_real = Hashtbl.create 64;
      real_of_pub = Vec.create ();
      discovered = Array.make n false;
      order = Vec.create ();
      parent = Array.make n 0;
      handle_lists = Array.make n [||];
      requested = Hashtbl.create 64;
      explored = Array.make n false;
      request_count = 0;
      found_at = None;
      neighbor_at = None;
    }
  in
  if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_oracles;
  discover t source;
  t

let model t = t.model
let n_vertices t = Ugraph.n_vertices t.g
let target t = t.target
let source t = t.source
let requests t = t.request_count

let is_discovered t v = Ugraph.mem_vertex t.g v && t.discovered.(v - 1)

let discovered_count t = Vec.length t.order
let discovered_nth t i = Vec.get t.order i

let check_discovered t v name =
  if not (is_discovered t v) then invalid_arg ("Oracle." ^ name ^ ": vertex not discovered")

let handles t v =
  check_discovered t v "handles";
  t.handle_lists.(v - 1)

let degree t v = Array.length (handles t v)

let handle_requested t h = Hashtbl.mem t.requested h

let endpoints_if_known t h =
  let real = realize t h in
  let s, d = Ugraph.endpoints t.g real in
  if t.discovered.(s - 1) && t.discovered.(d - 1) then Some (s, d) else None

let trace_request t ~kind ~at ~before =
  let after = Vec.length t.order in
  let revealed = List.init (after - before) (fun i -> Vec.get t.order (before + i)) in
  Sf_obs.Trace.emit request_event_name Sf_obs.Trace.Instant
    ~args:
      [
        ("index", Sf_obs.Trace.Int t.request_count);
        ("kind", Sf_obs.Trace.Str kind);
        ("at", Sf_obs.Trace.Int at);
        ("revealed", Sf_obs.Trace.Ints revealed);
        ("discovered_total", Sf_obs.Trace.Int after);
      ]

let request_weak t ~owner h =
  if t.model <> Weak then invalid_arg "Oracle.request_weak: not a weak-model instance";
  check_discovered t owner "request_weak";
  let real = realize t h in
  let far = Ugraph.other_endpoint t.g ~edge_id:real owner in
  if Sf_obs.Registry.enabled () then begin
    Sf_obs.Counter.incr obs_requests;
    Sf_obs.Counter.incr obs_requests_weak
  end;
  let tracing = Sf_obs.Trace.active () in
  let before = if tracing then Vec.length t.order else 0 in
  t.request_count <- t.request_count + 1;
  Hashtbl.replace t.requested h ();
  discover ~via:owner t far;
  if tracing then trace_request t ~kind:"weak-edge" ~at:owner ~before;
  far

let request_strong t v =
  if t.model <> Strong then invalid_arg "Oracle.request_strong: not a strong-model instance";
  check_discovered t v "request_strong";
  if Sf_obs.Registry.enabled () then begin
    Sf_obs.Counter.incr obs_requests;
    Sf_obs.Counter.incr obs_requests_strong
  end;
  let tracing = Sf_obs.Trace.active () in
  let before = if tracing then Vec.length t.order else 0 in
  t.request_count <- t.request_count + 1;
  t.explored.(v - 1) <- true;
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Ugraph.iter_neighbors t.g v (fun u ->
      discover ~via:v t u;
      if not (Hashtbl.mem seen u) then begin
        Hashtbl.replace seen u ();
        acc := u :: !acc
      end);
  if tracing then trace_request t ~kind:"strong-vertex" ~at:v ~before;
  List.rev !acc

let is_explored t v =
  check_discovered t v "is_explored";
  t.explored.(v - 1)

let discovery_parent t v =
  check_discovered t v "discovery_parent";
  if t.parent.(v - 1) = 0 then None else Some t.parent.(v - 1)

let discovery_path t v =
  check_discovered t v "discovery_path";
  let rec climb v acc =
    match t.parent.(v - 1) with 0 -> v :: acc | parent -> climb parent (v :: acc)
  in
  climb v []

let target_found t = t.found_at <> None
let requests_when_found t = t.found_at
let requests_when_neighbor t = t.neighbor_at
