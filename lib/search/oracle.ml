module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Vec = Sf_graph.Vec

(* Observability: the oracle is where the paper's complexity measure
   is paid, so the request counters live here (see
   doc/OBSERVABILITY.md; search.requests is Lemma 1's count). *)
let obs_requests = Sf_obs.Registry.counter "search.requests"
let obs_requests_weak = Sf_obs.Registry.counter "search.requests.weak"
let obs_requests_strong = Sf_obs.Registry.counter "search.requests.strong"
let obs_discoveries = Sf_obs.Registry.counter "search.discoveries"
let obs_oracles = Sf_obs.Registry.counter "search.oracles"

(* One "search.request" trace event per paid request — the paper's
   complexity measure as a sequence rather than a count.  Runner's
   run_traced and the --trace exporters are both fed from here. *)
let request_event_name = "search.request"

type vertex = int
type handle = int
type model = Weak | Strong

(* Per-vertex flags live in Bytes, not [bool array]: one byte per
   vertex instead of one word, which is what keeps a single oracle on
   a 10M-vertex CSR graph to tens of MB of search state
   (doc/SCALING.md). *)
type t = {
  model : model;
  g : Ugraph.t;
  target : vertex;
  source : vertex;
  near_target : Bytes.t; (* target's closed neighbourhood *)
  rng : Rng.t;
  obfuscate : bool;
  pub_of_real : (int, int) Hashtbl.t;
  real_of_pub : Vec.t;
  discovered : Bytes.t;
  order : Vec.t; (* discovery sequence *)
  parent : int array; (* discovery tree: revealing vertex, 0 for roots *)
  handle_lists : int array array; (* vertex-1 -> public handles, [||] until discovered *)
  requested : (int, unit) Hashtbl.t; (* public ids of paid weak requests *)
  explored : Bytes.t; (* strong-requested vertices *)
  mutable request_count : int;
  mutable found_at : int option;
  mutable neighbor_at : int option;
}

let flag flags v = Bytes.get flags (v - 1) <> '\000'
let set_flag flags v = Bytes.set flags (v - 1) '\001'

let publicize t real_id =
  if not t.obfuscate then real_id
  else
    match Hashtbl.find_opt t.pub_of_real real_id with
    | Some pub -> pub
    | None ->
      let pub = Vec.length t.real_of_pub in
      Vec.push t.real_of_pub real_id;
      Hashtbl.replace t.pub_of_real real_id pub;
      pub

let realize t pub =
  if not t.obfuscate then begin
    if pub < 0 || pub >= Ugraph.n_edges t.g then invalid_arg "Oracle: unknown handle";
    pub
  end
  else if pub < 0 || pub >= Vec.length t.real_of_pub then invalid_arg "Oracle: unknown handle"
  else Vec.get t.real_of_pub pub

let discover ?(via = 0) t v =
  if not (flag t.discovered v) then begin
    if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_discoveries;
    set_flag t.discovered v;
    t.parent.(v - 1) <- via;
    Vec.push t.order v;
    (* an explicit ascending loop: publicize assigns public ids in
       first-exposure order, so the fill order is load-bearing *)
    let d = Ugraph.degree t.g v in
    let pubs = Array.make d 0 in
    for i = 0 to d - 1 do
      pubs.(i) <- publicize t (Ugraph.incident_nth t.g v i)
    done;
    if t.obfuscate then Sf_prng.Shuffle.in_place t.rng pubs;
    t.handle_lists.(v - 1) <- pubs;
    if flag t.near_target v && t.neighbor_at = None then
      t.neighbor_at <- Some t.request_count;
    if v = t.target && t.found_at = None then t.found_at <- Some t.request_count
  end

let start ?(obfuscate = true) ~rng model g ~source ~target =
  if not (Ugraph.mem_vertex g source) then invalid_arg "Oracle.start: bad source";
  if not (Ugraph.mem_vertex g target) then invalid_arg "Oracle.start: bad target";
  let n = Ugraph.n_vertices g in
  let near_target = Bytes.make n '\000' in
  set_flag near_target target;
  Ugraph.iter_neighbors g target (fun u -> set_flag near_target u);
  let t =
    {
      model;
      g;
      target;
      source;
      near_target;
      rng = Rng.split rng;
      obfuscate;
      pub_of_real = Hashtbl.create 64;
      real_of_pub = Vec.create ();
      discovered = Bytes.make n '\000';
      order = Vec.create ();
      parent = Array.make n 0;
      handle_lists = Array.make n [||];
      requested = Hashtbl.create 64;
      explored = Bytes.make n '\000';
      request_count = 0;
      found_at = None;
      neighbor_at = None;
    }
  in
  if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_oracles;
  discover t source;
  t

let model t = t.model
let n_vertices t = Ugraph.n_vertices t.g
let target t = t.target
let source t = t.source
let requests t = t.request_count

let is_discovered t v = Ugraph.mem_vertex t.g v && flag t.discovered v

let discovered_count t = Vec.length t.order
let discovered_nth t i = Vec.get t.order i

let check_discovered t v name =
  if not (is_discovered t v) then invalid_arg ("Oracle." ^ name ^ ": vertex not discovered")

let handles t v =
  check_discovered t v "handles";
  t.handle_lists.(v - 1)

let degree t v = Array.length (handles t v)

let handle_requested t h = Hashtbl.mem t.requested h

let endpoints_if_known t h =
  let real = realize t h in
  let s, d = Ugraph.endpoints t.g real in
  if flag t.discovered s && flag t.discovered d then Some (s, d) else None

let trace_request t ~kind ~at ~before =
  let after = Vec.length t.order in
  let revealed = List.init (after - before) (fun i -> Vec.get t.order (before + i)) in
  Sf_obs.Trace.emit request_event_name Sf_obs.Trace.Instant
    ~args:
      [
        ("index", Sf_obs.Trace.Int t.request_count);
        ("kind", Sf_obs.Trace.Str kind);
        ("at", Sf_obs.Trace.Int at);
        ("revealed", Sf_obs.Trace.Ints revealed);
        ("discovered_total", Sf_obs.Trace.Int after);
      ]

let request_weak t ~owner h =
  if t.model <> Weak then invalid_arg "Oracle.request_weak: not a weak-model instance";
  check_discovered t owner "request_weak";
  let real = realize t h in
  let far = Ugraph.other_endpoint t.g ~edge_id:real owner in
  if Sf_obs.Registry.enabled () then begin
    Sf_obs.Counter.incr obs_requests;
    Sf_obs.Counter.incr obs_requests_weak
  end;
  let tracing = Sf_obs.Trace.active () in
  let before = if tracing then Vec.length t.order else 0 in
  t.request_count <- t.request_count + 1;
  Hashtbl.replace t.requested h ();
  discover ~via:owner t far;
  if tracing then trace_request t ~kind:"weak-edge" ~at:owner ~before;
  far

let request_strong t v =
  if t.model <> Strong then invalid_arg "Oracle.request_strong: not a strong-model instance";
  check_discovered t v "request_strong";
  if Sf_obs.Registry.enabled () then begin
    Sf_obs.Counter.incr obs_requests;
    Sf_obs.Counter.incr obs_requests_strong
  end;
  let tracing = Sf_obs.Trace.active () in
  let before = if tracing then Vec.length t.order else 0 in
  t.request_count <- t.request_count + 1;
  set_flag t.explored v;
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Ugraph.iter_neighbors t.g v (fun u ->
      discover ~via:v t u;
      if not (Hashtbl.mem seen u) then begin
        Hashtbl.replace seen u ();
        acc := u :: !acc
      end);
  if tracing then trace_request t ~kind:"strong-vertex" ~at:v ~before;
  List.rev !acc

let is_explored t v =
  check_discovered t v "is_explored";
  flag t.explored v

let discovery_parent t v =
  check_discovered t v "discovery_parent";
  if t.parent.(v - 1) = 0 then None else Some t.parent.(v - 1)

let discovery_path t v =
  check_discovered t v "discovery_path";
  let rec climb v acc =
    match t.parent.(v - 1) with 0 -> v :: acc | parent -> climb parent (v :: acc)
  in
  climb v []

let target_found t = t.found_at <> None
let requests_when_found t = t.found_at
let requests_when_neighbor t = t.neighbor_at
