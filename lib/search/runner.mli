(** Executes one strategy against one oracle and scores it with the
    paper's complexity measure. *)

type outcome = {
  strategy : string;
  n_vertices : int;
  total_requests : int; (** requests made before the run stopped *)
  to_target : int option;
      (** requests when the target was discovered; [None] if the run
          stopped first *)
  to_neighbor : int option;
      (** requests when the target's closed neighbourhood was first
          touched — the paper's stopping rule *)
  discovered : int; (** vertices known at the end *)
  gave_up : bool; (** strategy ran out of moves before stopping *)
}

type stop_rule =
  | At_target  (** run until the target itself is discovered *)
  | At_neighbor
      (** stop as soon as a neighbour of the target (or the target) is
          discovered — the paper's lenient rule, and cheaper to run *)

val run :
  ?budget:int ->
  ?stop_at:stop_rule ->
  rng:Sf_prng.Rng.t ->
  Strategy.t ->
  Oracle.t ->
  outcome
(** [budget] caps requests (default [4 * n + 64]); [stop_at] defaults
    to {!At_target}. The [rng] seeds the strategy's private stream.
    @raise Invalid_argument if the strategy and oracle models differ. *)

(** {1 Traced runs}

    For debugging strategies and exporting to external analysis: the
    same execution, with the request-by-request record replayed off
    the unified {!Sf_obs.Trace} stream (the oracle emits one
    ["search.request"] event per paid request; a traced run attaches a
    private collector sink for its duration). Consequently a traced
    run under [--no-obs] ({!Sf_obs.Registry.set_enabled}[ false])
    returns an {e empty} trace — the stream is silenced along with
    every other instrumentation site. *)

type trace_event = {
  index : int; (** 1-based request number *)
  kind : [ `Weak_edge | `Strong_vertex ];
  at : int; (** the vertex the request addressed *)
  revealed : int list; (** vertices newly discovered by this request *)
  discovered_total : int; (** discovered count after the request *)
}

val run_traced :
  ?budget:int ->
  ?stop_at:stop_rule ->
  rng:Sf_prng.Rng.t ->
  Strategy.t ->
  Oracle.t ->
  outcome * trace_event list
(** Like {!run}, also returning the request-by-request trace in
    execution order. *)

val trace_to_csv : trace_event list -> string
(** CSV rendering of a trace (header: index, kind, at, revealed,
    discovered_total); [revealed] is ';'-separated. *)

val search :
  ?obfuscate:bool ->
  ?budget:int ->
  ?stop_at:stop_rule ->
  rng:Sf_prng.Rng.t ->
  Sf_graph.Ugraph.t ->
  Strategy.t ->
  source:int ->
  target:int ->
  outcome
(** Convenience wrapper: build the oracle (model taken from the
    strategy) and run. *)
