module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph

type params = {
  replication_walk : int;
  query_walk : int;
  broadcast_prob : float;
  max_messages : int;
}

let default_params ~n =
  let root = int_of_float (ceil (sqrt (float_of_int n))) in
  {
    replication_walk = root;
    query_walk = root;
    broadcast_prob = 0.5;
    max_messages = 8 * n;
  }

type result = { hit : bool; messages : int; contacted : int; replicas : int }

let random_step rng g v =
  let deg = Ugraph.degree g v in
  if deg = 0 then v
  else Ugraph.other_endpoint g ~edge_id:(Ugraph.incident_nth g v (Rng.int rng deg)) v

let replicate rng g ~owner ~walk_length =
  let members = Array.make (Ugraph.n_vertices g) false in
  let pos = ref owner in
  members.(owner - 1) <- true;
  for _ = 1 to walk_length do
    pos := random_step rng g !pos;
    members.(!pos - 1) <- true
  done;
  members

exception Found of int (* messages spent when the replica was hit *)

let query rng g params ~source ~replicas =
  let n = Ugraph.n_vertices g in
  let contacted = Array.make n false in
  let messages = ref 0 in
  let n_contacted = ref 0 in
  let queue = Queue.create () in
  let touch v =
    if not contacted.(v - 1) then begin
      contacted.(v - 1) <- true;
      incr n_contacted;
      if replicas.(v - 1) then raise (Found !messages);
      Queue.push v queue
    end
  in
  let outcome =
    try
      touch source;
      (* Seed walk: each hop is one message and contacts one vertex. *)
      let pos = ref source in
      for _ = 1 to params.query_walk do
        if !messages < params.max_messages then begin
          pos := random_step rng g !pos;
          incr messages;
          touch !pos
        end
      done;
      (* Epidemic phase: every contacted vertex forwards over each
         incident edge independently with probability broadcast_prob. *)
      while (not (Queue.is_empty queue)) && !messages < params.max_messages do
        let v = Queue.pop queue in
        Ugraph.iter_incident g v (fun edge_id ->
            if !messages < params.max_messages && Rng.bernoulli rng params.broadcast_prob
            then begin
              incr messages;
              touch (Ugraph.other_endpoint g ~edge_id v)
            end)
      done;
      None
    with Found at -> Some at
  in
  match outcome with
  | Some at ->
    {
      hit = true;
      messages = at;
      contacted = !n_contacted;
      replicas = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 replicas;
    }
  | None ->
    {
      hit = false;
      messages = !messages;
      contacted = !n_contacted;
      replicas = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 replicas;
    }

let run rng g params ~source ~target =
  let replicas = replicate rng g ~owner:target ~walk_length:params.replication_walk in
  query rng g params ~source ~replicas
