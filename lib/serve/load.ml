(* Open-loop load generator against a running Server — the engine
   behind bin/sfload.

   Arrival model: with [rate > 0] requests are injected on a Poisson
   schedule fixed before the run starts, and each request's latency is
   measured from its *scheduled* arrival time, not from the moment the
   sender thread got around to writing it — the open-loop discipline
   that avoids coordinated omission: a slow server does not slow the
   clock that judges it. With [rate = 0] the generator degrades to a
   closed loop windowed by [concurrency], which is what saturation
   probing wants.

   Determinism: every request's parameters (strategy pick, target
   pick) come from [Rng.split_at param_root i], and the server derives
   the reply stream from the request id alone — so the multiset of
   reply payloads is a pure function of (seed, server seed, graph),
   independent of timing, connection count, or the server's --jobs.
   [summary] digests exactly that deterministic part (service costs in
   oracle requests — the paper's complexity measure — plus a CRC-32
   over the re-encoded replies in id order, each payload's own
   checksum tail excluded); wall-clock latencies go
   in [report] and the bench file, which only have to be *valid*, not
   byte-identical. *)

module Rng = Sf_prng.Rng
module Quantile = Sf_stats.Quantile
module Crc32 = Sf_store.Crc32
module Bench_file = Sf_perf.Bench_file
module Registry = Sf_obs.Registry
module Counter = Sf_obs.Counter
module Histo = Sf_obs.Histo

type target_spec = Server_default | Fixed_target of int | Uniform_target

type config = {
  endpoint : Wire.endpoint;
  requests : int;
  rate : float;
  connections : int;
  concurrency : int;
  seed : int;
  mix : (string * float) list;
  target : target_spec;
  budget : int option;
  stop_at_neighbor : bool;
  timeout : float;
}

let config ?(rate = 0.) ?(connections = 1) ?(concurrency = 32)
    ?(mix = [ ("high-degree", 1.) ]) ?(target = Server_default) ?budget
    ?(stop_at_neighbor = false) ?(timeout = 30.) ~seed ~requests endpoint =
  if requests < 1 then invalid_arg "Load.config: requests must be positive";
  if connections < 1 then invalid_arg "Load.config: connections must be positive";
  if concurrency < 1 then invalid_arg "Load.config: concurrency must be positive";
  if rate < 0. || not (Float.is_finite rate) then
    invalid_arg "Load.config: rate must be finite and non-negative";
  if timeout <= 0. then invalid_arg "Load.config: timeout must be positive";
  if mix = [] then invalid_arg "Load.config: empty strategy mix";
  List.iter
    (fun (name, w) ->
      if name = "" then invalid_arg "Load.config: empty strategy name in mix";
      if w <= 0. || not (Float.is_finite w) then
        invalid_arg
          (Printf.sprintf "Load.config: mix weight for %s must be positive" name))
    mix;
  (match target with
  | Fixed_target v when v < 1 ->
    invalid_arg "Load.config: fixed target must be a positive vertex"
  | _ -> ());
  (match budget with
  | Some b when b < 1 -> invalid_arg "Load.config: budget must be positive"
  | _ -> ());
  { endpoint; requests; rate; connections; concurrency; seed; mix; target;
    budget; stop_at_neighbor; timeout }

type outcome = {
  o_requests : int;
  o_connections : int;
  o_rate : float;  (** offered rate; 0 for a closed loop *)
  o_seed : int;
  o_n_vertices : int;
  o_sent : int;
  o_replies : int;  (** search replies received *)
  o_errors : int;  (** [Error] responses received *)
  o_missing : int;  (** requests never answered within the timeout *)
  o_found : int;  (** succeeded under the configured stop rule *)
  o_exhausted : int;  (** budget ran out before success *)
  o_gave_up : int;  (** the strategy itself ran out of moves *)
  o_mix_counts : (string * int) list;
  o_costs : int array;  (** oracle requests per answered search, id order *)
  o_wall_ns : float array;  (** wall latency per answered search, id order *)
  o_reply_crc : int32;  (** CRC-32 over re-encoded replies, id order *)
  o_elapsed_s : float;
  o_achieved_rate : float;
}

(* ---- deterministic request plan ------------------------------------- *)

let pick_strategy mix total rng =
  let x = Rng.unit_float rng *. total in
  let rec go acc = function
    | [] -> fst (List.nth mix (List.length mix - 1))
    | (name, w) :: rest ->
      let acc = acc +. w in
      if x < acc then name else go acc rest
  in
  go 0. mix

let plan cfg ~n_vertices =
  let root = Rng.of_seed cfg.seed in
  let param_root = Rng.split_at root 1 in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. cfg.mix in
  Array.init cfg.requests (fun i ->
      let rng = Rng.split_at param_root i in
      let strategy = pick_strategy cfg.mix total rng in
      let target =
        match cfg.target with
        | Server_default -> None
        | Fixed_target v -> Some v
        | Uniform_target -> Some (1 + Rng.int rng n_vertices)
      in
      (* the trace context is part of the plan: derived from (seed, id)
         by pure mixing, so request bytes are fixed-seed deterministic
         whether or not anyone is tracing *)
      { Wire.id = i + 1; strategy; source = None; target; budget = cfg.budget;
        stop_at_neighbor = cfg.stop_at_neighbor;
        ctx = Some (Sf_obs.Tctx.derive ~seed:cfg.seed ~id:(i + 1)) })

let poisson_schedule cfg =
  if cfg.rate <= 0. then [||]
  else begin
    let root = Rng.of_seed cfg.seed in
    let r = Rng.copy (Rng.split_at root 2) in
    let t = ref 0. in
    Array.init cfg.requests (fun _ ->
        let u = 1. -. Rng.unit_float r in
        t := !t +. (-.log u /. cfg.rate);
        !t)
  end

(* ---- the run --------------------------------------------------------- *)

let learn_n_vertices cfg =
  let probe = Client.connect cfg.endpoint in
  Fun.protect
    ~finally:(fun () -> Client.close probe)
    (fun () ->
      match Client.call probe (Wire.Stats 0) with
      | Wire.Stats_reply s -> s.Wire.ss_n_vertices
      | other ->
        failwith
          (Printf.sprintf "Load.run: server answered Stats with message kind %d"
             (Wire.response_id other)))

let run cfg =
  let n_vertices = learn_n_vertices cfg in
  let reqs = plan cfg ~n_vertices in
  let schedule = poisson_schedule cfg in
  let open_loop = schedule <> [||] in
  let conns = Array.init cfg.connections (fun _ -> Client.connect cfg.endpoint) in
  Array.iter (fun c -> Client.set_receive_timeout c cfg.timeout) conns;
  let replies = Array.make cfg.requests None in
  let recv_at = Array.make cfg.requests 0. in
  let send_at = Array.make cfg.requests 0. in
  (* closed-loop window *)
  let m = Mutex.create () in
  let cv = Condition.create () in
  let inflight = ref 0 in
  let acquire () =
    Mutex.lock m;
    while !inflight >= cfg.concurrency do
      Condition.wait cv m
    done;
    incr inflight;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    decr inflight;
    Condition.signal cv;
    Mutex.unlock m
  in
  let expected = Array.make cfg.connections 0 in
  for i = 0 to cfg.requests - 1 do
    expected.(i mod cfg.connections) <- expected.(i mod cfg.connections) + 1
  done;
  let receiver c () =
    let conn = conns.(c) in
    let remaining = ref expected.(c) in
    (try
       while !remaining > 0 do
         let resp = Client.recv conn in
         let now = Sf_obs.Timer.now_s () in
         (match Wire.response_id resp with
         | id when id >= 1 && id <= cfg.requests ->
           replies.(id - 1) <- Some resp;
           recv_at.(id - 1) <- now
         | _ -> ());
         decr remaining;
         if not open_loop then release ()
       done
     with
    | End_of_file | Failure _ | Sf_store.Codec_error.Error _
    | Unix.Unix_error _ ->
      (* server gone, stream mutilated, or timed out: the unanswered
         requests on this connection are counted as missing *)
      if not open_loop then
        for _ = 1 to !remaining do
          release ()
        done)
  in
  let receivers =
    Array.init cfg.connections (fun c -> Thread.create (receiver c) ())
  in
  let t0 = Sf_obs.Timer.now_s () in
  let sent = ref 0 in
  (try
     for i = 0 to cfg.requests - 1 do
       if open_loop then begin
         let due = t0 +. schedule.(i) in
         let rec wait () =
           let now = Sf_obs.Timer.now_s () in
           if now < due then begin
             Thread.delay (Float.min 0.002 (due -. now));
             wait ()
           end
         in
         wait ()
       end
       else acquire ();
       send_at.(i) <- Sf_obs.Timer.now_s ();
       Client.send conns.(i mod cfg.connections) (Wire.Search reqs.(i));
       incr sent
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Array.iter Thread.join receivers;
  let t_end = Sf_obs.Timer.now_s () in
  Array.iter Client.close conns;
  (* fold the replies, id order *)
  let n_replies = ref 0 in
  let errors = ref 0 in
  let missing = ref 0 in
  let found = ref 0 in
  let exhausted = ref 0 in
  let gave_up = ref 0 in
  let costs = ref [] in
  let wall = ref [] in
  let crc = ref 0l in
  for i = cfg.requests - 1 downto 0 do
    match replies.(i) with
    | None -> incr missing
    | Some resp ->
      (match resp with
      | Wire.Search_reply sr ->
        incr n_replies;
        let success =
          if cfg.stop_at_neighbor then sr.Wire.sr_to_neighbor <> None
          else sr.Wire.sr_to_target <> None
        in
        if success then incr found
        else if sr.Wire.sr_gave_up then incr gave_up
        else incr exhausted;
        costs := sr.Wire.sr_total_requests :: !costs;
        let origin = if open_loop then t0 +. schedule.(i) else send_at.(i) in
        wall := Float.max 0. ((recv_at.(i) -. origin) *. 1e9) :: !wall
      | Wire.Error _ -> incr errors
      | _ -> incr errors)
  done;
  (* Digest in ascending id order. Each encoded payload ends with its
     own CRC-32 tail, and a CRC over a self-checksummed block is the
     constant residue 0x2144df1c whatever the content — so the tail
     must be excluded or the digest degenerates to a reply count. *)
  for i = 0 to cfg.requests - 1 do
    match replies.(i) with
    | Some (Wire.Search_reply _ as resp) ->
      let s = Wire.encode_response resp in
      crc := Crc32.sub ~init:!crc s ~pos:0 ~len:(String.length s - 4)
    | _ -> ()
  done;
  (* per-request client spans, reconstructed after the run from the
     recorded send/receive stamps (the receiver threads must never
     touch trace sinks — sinks are single-domain closures).  Emitted
     in id order as adjacent Begin/End pairs; with the server traced
     to its own file, the merged timeline lines these up against the
     serve.stage.* spans via the shared trace id. *)
  if Sf_obs.Trace.active () then
    for i = 0 to cfg.requests - 1 do
      match replies.(i) with
      | Some (Wire.Search_reply sr) ->
        let origin = if open_loop then t0 +. schedule.(i) else send_at.(i) in
        let args =
          [ ("id", Sf_obs.Trace.Int (i + 1));
            ("strategy", Sf_obs.Trace.Str reqs.(i).Wire.strategy);
            ("cost", Sf_obs.Trace.Int sr.Wire.sr_total_requests) ]
          @ (match reqs.(i).Wire.ctx with
            | Some c -> Sf_obs.Tctx.args c
            | None -> [])
        in
        Sf_obs.Trace.emit ~ts:origin "load.request" Sf_obs.Trace.Begin ~args;
        Sf_obs.Trace.emit
          ~ts:(Float.max origin recv_at.(i))
          "load.request" Sf_obs.Trace.End
      | _ -> ()
    done;
  let mix_counts =
    List.map
      (fun (name, _) ->
        ( name,
          Array.fold_left
            (fun acc r -> if r.Wire.strategy = name then acc + 1 else acc)
            0 reqs ))
      cfg.mix
  in
  let elapsed = Float.max 1e-9 (t_end -. t0) in
  {
    o_requests = cfg.requests;
    o_connections = cfg.connections;
    o_rate = cfg.rate;
    o_seed = cfg.seed;
    o_n_vertices = n_vertices;
    o_sent = !sent;
    o_replies = !n_replies;
    o_errors = !errors;
    o_missing = !missing;
    o_found = !found;
    o_exhausted = !exhausted;
    o_gave_up = !gave_up;
    o_mix_counts = mix_counts;
    o_costs = Array.of_list !costs;
    o_wall_ns = Array.of_list !wall;
    o_reply_crc = !crc;
    o_elapsed_s = elapsed;
    o_achieved_rate = float_of_int !n_replies /. elapsed;
  }

(* ---- reporting ------------------------------------------------------- *)

let cost_quantiles o =
  if o.o_costs = [||] then (0., 0., 0., 0.)
  else
    let xs = Quantile.of_int_array o.o_costs in
    match Quantile.quantiles xs ~qs:[ 0.5; 0.95; 0.99 ] with
    | [ p50; p95; p99 ] ->
      let mx = Array.fold_left Float.max neg_infinity xs in
      (p50, p95, p99, mx)
    | _ -> assert false

let summary o =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let cost_total = Array.fold_left ( + ) 0 o.o_costs in
  let mean =
    if o.o_costs = [||] then 0.
    else float_of_int cost_total /. float_of_int (Array.length o.o_costs)
  in
  let p50, p95, p99, mx = cost_quantiles o in
  let sqrt_n = sqrt (float_of_int o.o_n_vertices) in
  pf "sfload summary (deterministic)\n";
  pf "  seed             %d\n" o.o_seed;
  pf "  requests         %d\n" o.o_requests;
  pf "  mix              %s\n"
    (String.concat " "
       (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) o.o_mix_counts));
  pf "  replies          found=%d exhausted=%d gave-up=%d errors=%d missing=%d\n"
    o.o_found o.o_exhausted o.o_gave_up o.o_errors o.o_missing;
  pf "  cost/request     total=%d mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%.0f\n"
    cost_total mean p50 p95 p99 mx;
  pf "  sqrt(n) floor    n=%d sqrt=%.1f mean-cost/sqrt(n)=%.3f\n" o.o_n_vertices
    sqrt_n
    (if sqrt_n > 0. then mean /. sqrt_n else 0.);
  pf "  reply-crc32      0x%08lx\n" o.o_reply_crc;
  Buffer.contents b

let report o =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "sfload run (wall clock)\n";
  pf "  connections      %d\n" o.o_connections;
  (if o.o_rate > 0. then pf "  offered rate     %.1f req/s (open loop)\n" o.o_rate
   else pf "  offered rate     closed loop (saturation probe)\n");
  pf "  achieved rate    %.1f req/s over %.3f s\n" o.o_achieved_rate o.o_elapsed_s;
  if o.o_wall_ns <> [||] then begin
    match Quantile.quantiles o.o_wall_ns ~qs:[ 0.5; 0.95; 0.99 ] with
    | [ p50; p95; p99 ] ->
      pf "  latency          p50=%.3f ms p95=%.3f ms p99=%.3f ms\n" (p50 /. 1e6)
        (p95 /. 1e6) (p99 /. 1e6)
    | _ -> assert false
  end;
  Buffer.contents b

let to_bench ~date ~commit ~mode o =
  if o.o_wall_ns = [||] then
    invalid_arg "Load.to_bench: no replies, nothing to record";
  {
    Bench_file.commit;
    date;
    host = Bench_file.current_host ();
    jobs = o.o_connections;
    seed = o.o_seed;
    mode;
    benchmarks =
      [
        { Bench_file.name = "serve/load: request latency";
          unit_label = "ns";
          samples = Array.copy o.o_wall_ns };
        { Bench_file.name = "serve/load: service cost";
          unit_label = "oracle-requests";
          samples = Quantile.of_int_array o.o_costs };
      ];
  }

(* ---- capacity ramp ---------------------------------------------------- *)

type ramp_step = {
  r_rate : float;
  r_outcome : outcome;
  r_p99_ms : float;
  r_ok : bool;
}

type ramp_result = {
  r_steps : ramp_step list;
  r_capacity : float option;
  r_ceiling : float option;
}

let p99_ms o =
  if o.o_wall_ns = [||] then infinity
  else
    match Quantile.quantiles o.o_wall_ns ~qs:[ 0.99 ] with
    | [ p99 ] -> p99 /. 1e6
    | _ -> assert false

(* A step holds iff the server kept up: every request answered, no
   errors, and tail latency under the threshold.  An unanswered run
   has p99 = infinity, so the three conditions are really one: the
   offered rate was sustained. *)
let step ~threshold_ms probe rate =
  let o = probe ~rate in
  let p99 = p99_ms o in
  { r_rate = rate; r_outcome = o; r_p99_ms = p99;
    r_ok = o.o_missing = 0 && o.o_errors = 0 && p99 <= threshold_ms }

let ramp ?(start = 50.) ?(factor = 2.) ?(p99_ms = 50.) ?(max_steps = 10) ?(bisect = 2) probe =
  if start <= 0. then invalid_arg "Load.ramp: start must be positive";
  if factor <= 1. then invalid_arg "Load.ramp: factor must exceed 1";
  if p99_ms <= 0. then invalid_arg "Load.ramp: p99 threshold must be positive";
  if max_steps < 1 then invalid_arg "Load.ramp: need at least one step";
  if bisect < 0 then invalid_arg "Load.ramp: bisect rounds must be >= 0";
  let threshold_ms = p99_ms in
  let steps = ref [] in
  let probe_at rate =
    let s = step ~threshold_ms probe rate in
    steps := s :: !steps;
    s
  in
  (* geometric climb until the server blows the threshold *)
  let rec climb rate last_ok left =
    if left = 0 then (last_ok, None)
    else
      let s = probe_at rate in
      if s.r_ok then climb (rate *. factor) (Some rate) (left - 1)
      else (last_ok, Some rate)
  in
  match climb start None max_steps with
  | None, None -> { r_steps = List.rev !steps; r_capacity = None; r_ceiling = None }
  | None, Some bad ->
    (* the very first rate failed: no capacity estimate, only a ceiling *)
    { r_steps = List.rev !steps; r_capacity = None; r_ceiling = Some bad }
  | Some ok, None ->
    (* never failed within max_steps: the estimate is a lower bound *)
    { r_steps = List.rev !steps; r_capacity = Some ok; r_ceiling = None }
  | Some ok, Some bad ->
    (* bracket [ok, bad]: tighten by geometric-mean bisection *)
    let lo = ref ok and hi = ref bad in
    for _ = 1 to bisect do
      let mid = sqrt (!lo *. !hi) in
      let s = probe_at mid in
      if s.r_ok then lo := mid else hi := mid
    done;
    { r_steps = List.rev !steps; r_capacity = Some !lo; r_ceiling = Some !hi }

let ramp_report r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "sfload ramp (wall clock)\n";
  pf "  %10s %12s %10s %8s %8s  %s\n" "rate" "achieved" "p99" "errors" "missing" "verdict";
  List.iter
    (fun s ->
      pf "  %10.1f %12.1f %9.2fms %8d %8d  %s\n" s.r_rate s.r_outcome.o_achieved_rate
        s.r_p99_ms s.r_outcome.o_errors s.r_outcome.o_missing
        (if s.r_ok then "ok" else "OVER"))
    r.r_steps;
  (match (r.r_capacity, r.r_ceiling) with
  | Some c, Some x -> pf "  capacity ~%.1f req/s (ceiling %.1f req/s)\n" c x
  | Some c, None -> pf "  capacity >=%.1f req/s (never saturated; raise --ramp-steps)\n" c
  | None, Some x -> pf "  capacity <%.1f req/s (first rate already over; lower --ramp-start)\n" x
  | None, None -> pf "  no capacity estimate (no steps ran)\n");
  Buffer.contents b

let record_metrics o =
  Counter.add (Registry.counter "load.sent") o.o_sent;
  Counter.add (Registry.counter "load.replies") o.o_replies;
  Counter.add (Registry.counter "load.errors") (o.o_errors + o.o_missing);
  let h = Registry.histo "load.latency_us" in
  Array.iter (fun ns -> Histo.observe h (ns /. 1e3)) o.o_wall_ns
