(** Open-loop load generator against a running {!Server} — the engine
    behind [bin/sfload].

    With [rate > 0] requests arrive on a Poisson schedule fixed before
    the run starts, and each latency is measured from the request's
    {e scheduled} arrival — the open-loop discipline that avoids
    coordinated omission. With [rate = 0] the generator runs a closed
    loop windowed by [concurrency], which is how saturation throughput
    is probed.

    The reply {e payloads} are deterministic: request parameters come
    from [Rng.split_at] streams off [seed], and the server's replies
    depend only on the request — so {!summary} (service costs, reply
    CRC) is byte-identical across runs, connection counts, and server
    [--jobs]. Wall-clock latencies are inherently nondeterministic and
    live in {!report} and {!to_bench} instead. *)

type target_spec =
  | Server_default  (** let the server pick (its [--target], default: vertex n) *)
  | Fixed_target of int
  | Uniform_target  (** uniform over [1..n], per-request deterministic *)

type config = {
  endpoint : Wire.endpoint;
  requests : int;
  rate : float;  (** arrivals per second; [0.] = closed loop *)
  connections : int;
  concurrency : int;  (** closed-loop in-flight window *)
  seed : int;
  mix : (string * float) list;  (** strategy name, positive weight *)
  target : target_spec;
  budget : int option;  (** per-request oracle budget; [None] = server default *)
  stop_at_neighbor : bool;
  timeout : float;  (** per-read drain timeout, seconds *)
}

val config :
  ?rate:float ->
  ?connections:int ->
  ?concurrency:int ->
  ?mix:(string * float) list ->
  ?target:target_spec ->
  ?budget:int ->
  ?stop_at_neighbor:bool ->
  ?timeout:float ->
  seed:int ->
  requests:int ->
  Wire.endpoint ->
  config
(** Validated constructor (defaults: closed loop, 1 connection,
    window 32, mix [["high-degree"]], server-default target, 30 s
    timeout). @raise Invalid_argument on any out-of-range field. *)

type outcome = {
  o_requests : int;
  o_connections : int;
  o_rate : float;  (** offered rate; 0 for a closed loop *)
  o_seed : int;
  o_n_vertices : int;  (** learned from the server's [Stats] reply *)
  o_sent : int;
  o_replies : int;  (** search replies received *)
  o_errors : int;  (** [Error] responses received *)
  o_missing : int;  (** requests never answered within the timeout *)
  o_found : int;  (** succeeded under the configured stop rule *)
  o_exhausted : int;  (** budget ran out before success *)
  o_gave_up : int;  (** the strategy itself ran out of moves *)
  o_mix_counts : (string * int) list;  (** requests per strategy, mix order *)
  o_costs : int array;  (** oracle requests per answered search, id order *)
  o_wall_ns : float array;  (** wall latency per answered search, id order *)
  o_reply_crc : int32;
      (** CRC-32 over re-encoded search replies in id order, each
          payload's own checksum tail excluded (a CRC over a
          self-checksummed block is a content-independent constant). *)
  o_elapsed_s : float;
  o_achieved_rate : float;  (** replies per wall second *)
}

val run : config -> outcome
(** Connect, learn [n] from [Stats], fire the full request plan, drain
    replies, fold. Blocking; spawns one receiver thread per
    connection. Raises [Unix.Unix_error] when the server is
    unreachable at connect time; a server lost {e mid-run} surfaces as
    [o_missing > 0], not an exception. *)

val summary : outcome -> string
(** The deterministic digest: request counts, strategy mix, service
    costs (total / mean / p50 / p95 / p99 / max oracle requests),
    mean cost against the √n floor, and the reply CRC. Byte-identical
    for a fixed (seed, server seed, graph) whenever every request was
    answered. *)

val report : outcome -> string
(** The wall-clock side: offered vs achieved rate and latency
    p50/p95/p99 — honest numbers, different every run. *)

val to_bench :
  date:string -> commit:string -> mode:string -> outcome -> Sf_perf.Bench_file.t
(** A ["scalefree.bench/1"] document with the raw latency samples and
    the raw service-cost samples ([jobs] records the connection
    count). @raise Invalid_argument when no replies were received. *)

(** {1 Capacity ramp}

    The [--ramp] mode of [sfload]: geometric open-loop rate escalation
    until the server can no longer keep up, then geometric-mean
    bisection inside the bracketing interval — one number out, the
    sustainable request rate (doc/SERVING.md, "Capacity planning"). *)

type ramp_step = {
  r_rate : float;  (** offered rate of this step *)
  r_outcome : outcome;
  r_p99_ms : float;  (** [infinity] when nothing was answered *)
  r_ok : bool;  (** no errors, no missing replies, p99 under threshold *)
}

type ramp_result = {
  r_steps : ramp_step list;  (** probe order *)
  r_capacity : float option;
      (** highest rate that held; [None] when even the first failed *)
  r_ceiling : float option;
      (** lowest rate that blew the threshold; [None] when none did *)
}

val ramp :
  ?start:float ->
  ?factor:float ->
  ?p99_ms:float ->
  ?max_steps:int ->
  ?bisect:int ->
  (rate:float -> outcome) ->
  ramp_result
(** [ramp probe] offers [start] (default 50 req/s), multiplies by
    [factor] (default 2) while the server keeps up — every request
    answered, no errors, p99 at most [p99_ms] (default 50) — and on
    the first failure tightens the bracket with [bisect] (default 2)
    rounds of geometric-mean bisection. [probe] runs one open-loop
    measurement at the given rate; the engine never opens sockets
    itself. At most [max_steps] (default 10) climb steps run.
    @raise Invalid_argument on non-positive [start]/[p99_ms], [factor
    <= 1], [max_steps < 1] or negative [bisect]. *)

val ramp_report : ramp_result -> string
(** Step table plus the capacity line — wall-clock numbers, honest and
    unrepeatable like {!report}. *)

val record_metrics : outcome -> unit
(** Fold the outcome into the process-global registry:
    [load.sent]/[load.replies]/[load.errors] counters and the
    [load.latency_us] histogram. *)
