(** Blocking client connection to a running {!Server} — used by
    [bin/sfload], the end-to-end tests, and anything else that wants
    to ask a daemon for a search.

    {!send} and {!recv} are independent, so a caller may pipeline:
    keep many requests in flight on one connection and match replies
    to requests by id ({!Wire.response_id}). One connection must not
    be shared between threads without external locking — the receive
    buffer is not synchronised. *)

type t

val connect : Wire.endpoint -> t
(** Open a blocking connection (TCP connections get [TCP_NODELAY]).
    Raises [Unix.Unix_error] when the endpoint is unreachable and
    [Failure] when a TCP host does not resolve. *)

val close : t -> unit
(** Idempotent. *)

val set_receive_timeout : t -> float -> unit
(** Bound every subsequent {!recv} ([SO_RCVTIMEO]); a timed-out read
    surfaces as [Unix.Unix_error (EAGAIN, _, _)]. *)

val send : t -> Wire.request -> unit
(** Frame, encode and write one request (complete write guaranteed). *)

val recv : t -> Wire.response
(** Block until one whole reply frame arrives and decode it.
    @raise End_of_file when the server closes the connection.
    @raise Failure on an unframeable byte stream.
    @raise Sf_store.Codec_error.Error on a mutilated payload. *)

val call : t -> Wire.request -> Wire.response
(** [send] then [recv] — a synchronous round trip. *)

val search :
  ?source:int ->
  ?target:int ->
  ?budget:int ->
  ?stop_at_neighbor:bool ->
  ?ctx:Sf_obs.Tctx.t ->
  seed:int ->
  strategy:string ->
  t ->
  int ->
  Wire.response
(** One synchronous search for request id [i], carrying a trace
    context ([ctx], or {!Sf_obs.Tctx.derive}[ ~seed ~id] when
    omitted). When this process is tracing, a [client.request] span
    covering the round trip is emitted with the same trace id the
    server's [serve.stage.*] spans carry — the two process timelines
    correlate in the merged Perfetto view. *)
