(** The long-lived search-query daemon ([bin/sfserve]): a select-driven
    event loop answering {!Wire} frames on unix-domain and TCP
    sockets, with every batch of in-flight search requests dealt
    across an {!Sf_parallel.Pool} domain pool.

    {b Determinism.} A search reply is a pure function of the server
    configuration and the request: request [id] selects the split
    stream [Rng.split_at master id] off a master stream that is never
    advanced, so replies are byte-identical across runs, connection
    interleavings, batch boundaries and [--jobs] counts
    (doc/SERVING.md). Identical requests with identical ids get
    identical replies — a client wanting independent trials varies the
    id.

    {b Robustness.} A client disconnecting mid-frame loses only its
    own connection. A well-framed but mutilated payload is answered
    with an [Error] frame (code [bad-frame]) and the connection
    survives. A frame whose declared length is outside the legal range
    poisons the byte stream: the server answers once and closes that
    connection. The [serve.*] metric catalogue is in
    doc/OBSERVABILITY.md. *)

type config = {
  graph : Sf_graph.Ugraph.t;
  seed : int;  (** master seed of the per-request reply streams *)
  default_target : int;  (** for requests that name no target *)
  default_budget : int option;
      (** per-request oracle budget when the request names none;
          [None] falls through to the runner default ([4n + 64]) *)
  max_payload : int;  (** per-frame payload cap *)
  jobs : int option;  (** domain-pool size; [None] = pool default *)
}

val config :
  ?default_target:int ->
  ?default_budget:int ->
  ?max_payload:int ->
  ?jobs:int ->
  seed:int ->
  Sf_graph.Ugraph.t ->
  config
(** Validated constructor: the default target defaults to vertex [n]
    (the paper's hard case — the newest vertex).
    @raise Invalid_argument on an empty graph, an out-of-range
    default target, or a non-positive default budget. *)

type t

val create : ?backlog:int -> config -> listen:Wire.endpoint list -> t
(** Bind every endpoint (unix paths go through
    {!Sf_obs.Expose.claim_unix_path}: stale sockets reclaimed, live
    sockets and non-socket paths refused), spawn the domain pool, and
    ignore SIGPIPE process-wide. The loop itself starts in {!run}.
    @raise Invalid_argument on an empty endpoint list or an
    unclaimable unix path; socket errors propagate as
    [Unix.Unix_error]. *)

val run : ?tick:float -> t -> unit
(** The blocking event loop: accept, read, decode, batch, reply —
    until {!stop} is called (from a signal handler or another thread)
    or a client sends [Shutdown] (acknowledged, then the loop exits
    once every reply is flushed). On exit: connections closed,
    listeners closed, unix socket paths unlinked, pool shut down.
    [tick] (default 0.05 s) is the select timeout bounding stop
    latency. *)

val stop : t -> unit
(** Ask the loop to exit; safe from a signal handler. *)

val endpoints : t -> Wire.endpoint list
val served : t -> int  (** search requests answered *)

val protocol_errors : t -> int
(** Mutilated frames/payloads seen (the [serve.protocol_errors]
    counter tracks the same quantity as a metric). *)

val connections_accepted : t -> int

val strategy_names : t -> string list
(** The request-addressable strategy portfolio, in dispatch order. *)
