(** The sfserve wire protocol (version 1) — length-prefixed frames
    carrying versioned, CRC-checked request/response payloads.

    A frame is a 4-byte little-endian payload length followed by the
    payload; a payload is [version byte, kind byte, varint body,
    CRC-32 (little-endian, over everything before it)] — the same
    strict-decode discipline as the binary graph store
    ({!Sf_store.Codec}): every mutilated input raises
    {!Sf_store.Codec_error.Error}, nothing is repaired. The full
    grammar, with the determinism contract it carries, is documented
    in [doc/SERVING.md].

    Encoding is canonical: a message has exactly one wire image, so a
    CRC-32 over re-encoded replies is a digest of the server's actual
    bytes — what the determinism tests and [sfload]'s reply digest
    rely on. *)

val version : int
(** [1]. *)

val max_payload_default : int
(** Default per-frame payload cap (1 MiB): anything claiming to be
    larger is rejected at the framing layer before allocation. *)

val frame_header_bytes : int
(** [4]. *)

(** {1 Endpoints}

    One syntax shared by every flag that names a serving socket
    ([sfserve --listen], [sfload SERVER]): [unix:PATH], [tcp:HOST:PORT],
    or a bare filesystem path (a unix socket, as with [--telemetry]). *)

type endpoint = Unix_path of string | Tcp of string * int

val endpoint_of_string : string -> (endpoint, string) result
val endpoint_to_string : endpoint -> string
(** Round-trips through {!endpoint_of_string}; bare paths render as
    [unix:PATH]. *)

(** {1 Messages} *)

type search = {
  id : int;  (** client-chosen; replies are matched and made deterministic by it *)
  strategy : string;  (** portfolio name, e.g. ["high-degree"] *)
  source : int option;  (** default: vertex 1 (2 when the target is 1) *)
  target : int option;  (** default: the server's [--target] *)
  budget : int option;  (** request budget; default: the server's *)
  stop_at_neighbor : bool;  (** the paper's lenient stopping rule *)
  ctx : Sf_obs.Tctx.t option;
      (** trace context (flag [0x10], two varints): correlates the
          client's span with the server's stage spans. Carried, never
          inspected — replies are identical with or without it. *)
}

type request = Search of search | Ping of int | Stats of int | Shutdown of int

type search_reply = {
  sr_id : int;
  sr_total_requests : int;  (** oracle requests paid — the paper's cost *)
  sr_to_target : int option;
  sr_to_neighbor : int option;
  sr_discovered : int;
  sr_gave_up : bool;
  sr_path_len : int;  (** edges in the certified source→target path; 0 unless found *)
}

type server_stats = {
  ss_id : int;
  ss_n_vertices : int;
  ss_n_edges : int;
  ss_served : int;  (** searches answered since this server started *)
  ss_errors : int;  (** protocol errors seen since this server started *)
  ss_connections : int;  (** connections accepted since this server started *)
  ss_stage_queue_us : int;
      (** cumulative µs requests spent queued before their batch formed *)
  ss_stage_batch_us : int;
      (** cumulative µs between batch formation and the pool starting
          the search *)
  ss_stage_search_us : int;  (** cumulative µs spent searching *)
  ss_stage_reply_us : int;
      (** cumulative µs between reply enqueue and the socket draining *)
}

type error_code = Bad_frame | Unknown_strategy | Bad_vertex | Bad_request

type response =
  | Search_reply of search_reply
  | Pong of int
  | Stats_reply of server_stats
  | Shutdown_ack of int
  | Error of { err_id : int; code : error_code; message : string }

val request_id : request -> int
val response_id : response -> int
val error_code_to_string : error_code -> string

(** {1 Payload codec} *)

val encode_request : request -> string
(** The payload bytes (no frame header). Canonical and deterministic. *)

val encode_response : response -> string

val decode_request : string -> request
(** @raise Sf_store.Codec_error.Error on any malformed payload:
    truncation, version or kind mismatch, CRC failure, unknown flag
    bits, trailing bytes. *)

val decode_response : string -> response

(** {1 Framing} *)

val frame : string -> string
(** Prefix a payload with its 4-byte little-endian length. *)

val pop :
  ?max_payload:int ->
  string ->
  pos:int ->
  [ `Frame of string * int | `Need_more | `Bad of string ]
(** Incremental frame extraction from a receive buffer: [`Frame
    (payload, next_pos)] when a whole frame is available at [pos],
    [`Need_more] when bytes are missing, [`Bad msg] when the declared
    length is below the minimum payload size or above [max_payload] —
    the stream cannot be resynchronised after that, so the connection
    must be dropped. *)
