(* The search-query daemon behind bin/sfserve: a select-driven event
   loop accepting framed requests (Wire) on unix-domain and TCP
   sockets, batching every search request in flight across the
   lib/parallel domain pool, and answering with replies that are a
   pure function of (server seed, request) — request [id] selects the
   split stream [Rng.split_at master id], so a reply never depends on
   scheduling, batching, connection interleaving or the --jobs count
   (doc/SERVING.md, "Determinism").

   Connection robustness mirrors the telemetry listener (Expose): a
   client disconnecting mid-frame just drops its connection, a
   well-framed garbage payload gets an error reply and the connection
   survives, an oversized or undersized frame length poisons the
   stream and closes that one connection after an error reply — the
   server outlives all of it. *)

module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Registry = Sf_obs.Registry
module Counter = Sf_obs.Counter
module Histo = Sf_obs.Histo
module Timer = Sf_obs.Timer
module Pool = Sf_parallel.Pool
module Oracle = Sf_search.Oracle
module Runner = Sf_search.Runner
module Strategy = Sf_search.Strategy
module E = Sf_store.Codec_error

let c_requests = Registry.counter "serve.requests"
let c_replies = Registry.counter "serve.replies"
let c_errors = Registry.counter "serve.protocol_errors"
let c_rejected = Registry.counter "serve.rejected"
let c_connections = Registry.counter "serve.connections"
let c_batches = Registry.counter "serve.batches"
let c_bytes_in = Registry.counter "serve.bytes_in"
let c_bytes_out = Registry.counter "serve.bytes_out"
let h_batch = Registry.histo "serve.batch_size"
let h_latency = Registry.histo "serve.latency_us"
let t_batch = Registry.timer "serve.batch_s"
let g_conns = Registry.gauge "serve.open_connections"

(* Per-request stage breakdown (doc/OBSERVABILITY.md, "Distributed
   tracing"): queue = frame parsed -> batch formed, batch = batch
   formed -> pool slot starts the search, search = the search itself,
   reply = reply enqueued -> socket drained.  Totals are surfaced in
   Stats_reply so a remote client can watch where its latency goes. *)
let t_stage_queue = Registry.timer "serve.stage.queue_s"
let t_stage_batch = Registry.timer "serve.stage.batch_s"
let t_stage_search = Registry.timer "serve.stage.search_s"
let t_stage_reply = Registry.timer "serve.stage.reply_s"
let h_stage_queue = Registry.histo "serve.stage.queue_us"
let h_stage_batch = Registry.histo "serve.stage.batch_us"
let h_stage_search = Registry.histo "serve.stage.search_us"
let h_stage_reply = Registry.histo "serve.stage.reply_us"

let observe_stage tm h dt =
  let dt = Float.max 0. dt in
  Timer.add_s tm dt;
  Histo.observe h (dt *. 1e6)

(* span args for one request's stage: the request id plus, when the
   client sent a trace context, the shared trace id and a per-stage
   child span id *)
let stage_args (s : Wire.search) ~stage =
  let base = [ ("id", Sf_obs.Trace.Int s.id) ] in
  match s.ctx with
  | None -> base
  | Some c -> base @ Sf_obs.Tctx.args (Sf_obs.Tctx.child c ~key:stage)

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  graph : Ugraph.t;
  seed : int;
  default_target : int;
  default_budget : int option;
  max_payload : int;
  jobs : int option;
}

let config ?default_target ?default_budget ?(max_payload = Wire.max_payload_default)
    ?jobs ~seed graph =
  let n = Ugraph.n_vertices graph in
  if n < 1 then invalid_arg "Server.config: empty graph";
  let default_target =
    match default_target with
    | Some t ->
      if t < 1 || t > n then
        invalid_arg (Printf.sprintf "Server.config: default target %d outside 1..%d" t n);
      t
    | None -> n
  in
  (match default_budget with
  | Some b when b < 1 -> invalid_arg "Server.config: default budget must be >= 1"
  | Some _ | None -> ());
  { graph; seed; default_target; default_budget; max_payload; jobs }

type conn = {
  c_fd : Unix.file_descr;
  c_in : Buffer.t;
  mutable c_out : string;
  mutable c_out_off : int;
  mutable c_alive : bool;
  mutable c_close_after_flush : bool;
  (* search replies sitting in c_out, most recent first: enqueue time
     plus the request they answer, settled when the buffer drains *)
  mutable c_pending_replies : (float * Wire.search) list;
}

type t = {
  cfg : config;
  listeners : (Unix.file_descr * Wire.endpoint) list;
  pool : Pool.t;
  master : Rng.t; (* never advanced: requests draw split_at children *)
  strategies : (string * Strategy.t) list;
  mutable conns : conn list;
  mutable running : bool;
  mutable draining : bool; (* shutdown requested; exit once flushed *)
  mutable served : int;
  mutable errors : int;
  mutable accepted : int;
}

(* ------------------------------------------------------------------ *)
(* Listening sockets                                                   *)
(* ------------------------------------------------------------------ *)

let bind_endpoint ~backlog ep =
  let fd =
    match ep with
    | Wire.Unix_path path ->
      Sf_obs.Sock.claim_unix_path ~who:"Serve.listen" path;
      Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Wire.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  (try
     (match ep with
     | Wire.Unix_path path -> Unix.bind fd (Unix.ADDR_UNIX path)
     | Wire.Tcp (host, port) ->
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       let addr =
         if host = "*" then Unix.inet_addr_any
         else
           try Unix.inet_addr_of_string host
           with Failure _ -> (
             match Unix.gethostbyname host with
             | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
             | h -> h.Unix.h_addr_list.(0))
       in
       Unix.bind fd (Unix.ADDR_INET (addr, port)));
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (fd, ep)

let strategy_table () =
  let all =
    Sf_search.Strategies.weak_portfolio ()
    @ Sf_search.Strategies.strong_portfolio ()
    @ [ Sf_search.Strategies.random_edge ~skip_known:false ]
  in
  List.map (fun s -> (s.Strategy.name, s)) all

let strategy_names t = List.map fst t.strategies

let create ?(backlog = 64) cfg ~listen =
  if listen = [] then invalid_arg "Server.create: no listen endpoints";
  let listeners = List.map (bind_endpoint ~backlog) listen in
  (* a stalled client must see EPIPE on our writes, not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    cfg;
    listeners;
    pool = Pool.create ?jobs:cfg.jobs ();
    master = Rng.of_seed cfg.seed;
    strategies = strategy_table ();
    conns = [];
    running = true;
    draining = false;
    served = 0;
    errors = 0;
    accepted = 0;
  }

let endpoints t = List.map snd t.listeners
let served t = t.served
let protocol_errors t = t.errors
let connections_accepted t = t.accepted
let stop t = t.running <- false

(* ------------------------------------------------------------------ *)
(* Per-connection I/O                                                  *)
(* ------------------------------------------------------------------ *)

let close_conn c =
  if c.c_alive then begin
    c.c_alive <- false;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end

let enqueue c resp =
  let bytes = Wire.frame (Wire.encode_response resp) in
  c.c_out <-
    (if c.c_out_off = 0 then c.c_out
     else String.sub c.c_out c.c_out_off (String.length c.c_out - c.c_out_off))
    ^ bytes;
  c.c_out_off <- 0;
  Counter.incr c_replies

(* the reply-write stage closes when the connection's buffer fully
   drains: every search reply that was sitting in it is settled at the
   drain timestamp (the kernel has the bytes; client-side receive time
   is the load generator's business) *)
let settle_replies c =
  match c.c_pending_replies with
  | [] -> ()
  | pending ->
    c.c_pending_replies <- [];
    let t_flush = Timer.now_s () in
    List.iter
      (fun (t_enq, s) ->
        observe_stage t_stage_reply h_stage_reply (t_flush -. t_enq);
        if Sf_obs.Trace.active () then begin
          Sf_obs.Trace.emit ~ts:t_enq "serve.stage.reply" Sf_obs.Trace.Begin
            ~args:(stage_args s ~stage:4);
          Sf_obs.Trace.emit ~ts:t_flush "serve.stage.reply" Sf_obs.Trace.End
        end)
      (List.rev pending)

let flush_conn c =
  if c.c_alive && String.length c.c_out > c.c_out_off then begin
    match
      Unix.write_substring c.c_fd c.c_out c.c_out_off (String.length c.c_out - c.c_out_off)
    with
    | n ->
      Counter.add c_bytes_out n;
      c.c_out_off <- c.c_out_off + n;
      if c.c_out_off = String.length c.c_out then begin
        c.c_out <- "";
        c.c_out_off <- 0;
        settle_replies c;
        if c.c_close_after_flush then close_conn c
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn c
  end

let pending_out c = c.c_alive && String.length c.c_out > c.c_out_off

(* EOF or a connection reset mid-frame is the client's prerogative —
   drop the connection, keep serving everyone else *)
let read_conn c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn c
  | n ->
    Buffer.add_subbytes c.c_in chunk 0 n;
    Counter.add c_bytes_in n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let stats_reply t id =
  Wire.Stats_reply
    {
      Wire.ss_id = id;
      ss_n_vertices = Ugraph.n_vertices t.cfg.graph;
      ss_n_edges = Ugraph.n_edges t.cfg.graph;
      ss_served = t.served;
      ss_errors = t.errors;
      ss_connections = t.accepted;
      ss_stage_queue_us = int_of_float (Timer.total_s t_stage_queue *. 1e6);
      ss_stage_batch_us = int_of_float (Timer.total_s t_stage_batch *. 1e6);
      ss_stage_search_us = int_of_float (Timer.total_s t_stage_search *. 1e6);
      ss_stage_reply_us = int_of_float (Timer.total_s t_stage_reply *. 1e6);
    }

(* One search request, anywhere in the pool: the reply depends only on
   (cfg, request) — the rng is the request id's split stream off the
   never-advanced master, so any batching of concurrent requests
   yields the same bytes. *)
let handle_search t (s : Wire.search) : Wire.response =
  match List.assoc_opt s.strategy t.strategies with
  | None ->
    Counter.incr c_rejected;
    Wire.Error
      {
        err_id = s.id;
        code = Wire.Unknown_strategy;
        message =
          Printf.sprintf "unknown strategy %S (known: %s)" s.strategy
            (String.concat ", " (strategy_names t));
      }
  | Some strategy -> (
    let n = Ugraph.n_vertices t.cfg.graph in
    let target = Option.value ~default:t.cfg.default_target s.target in
    let source = Option.value ~default:(if target = 1 then 2 else 1) s.source in
    let budget =
      match s.budget with Some _ as b -> b | None -> t.cfg.default_budget
    in
    if target < 1 || target > n || source < 1 || source > n then begin
      Counter.incr c_rejected;
      Wire.Error
        {
          err_id = s.id;
          code = Wire.Bad_vertex;
          message = Printf.sprintf "source %d / target %d outside 1..%d" source target n;
        }
    end
    else
      match budget with
      | Some b when b < 1 ->
        Counter.incr c_rejected;
        Wire.Error
          {
            err_id = s.id;
            code = Wire.Bad_request;
            message = Printf.sprintf "budget %d must be >= 1" b;
          }
      | _ ->
        let t0 = Timer.now_s () in
        let rng = Rng.split_at t.master s.id in
        let stop_at = if s.stop_at_neighbor then Runner.At_neighbor else Runner.At_target in
        let oracle =
          Oracle.start ~rng strategy.Strategy.model t.cfg.graph ~source ~target
        in
        let outcome = Runner.run ?budget ~stop_at ~rng strategy oracle in
        let path_len =
          (* the paper's deliverable is a certified path, not a name:
             report the length of the discovery-tree path when the
             target was actually reached *)
          if Oracle.target_found oracle then
            List.length (Oracle.discovery_path oracle target) - 1
          else 0
        in
        Counter.incr c_requests;
        Histo.observe h_latency ((Timer.now_s () -. t0) *. 1e6);
        Wire.Search_reply
          {
            Wire.sr_id = s.id;
            sr_total_requests = outcome.Runner.total_requests;
            sr_to_target = outcome.Runner.to_target;
            sr_to_neighbor = outcome.Runner.to_neighbor;
            sr_discovered = outcome.Runner.discovered;
            sr_gave_up = outcome.Runner.gave_up;
            sr_path_len = path_len;
          })

(* Drain every complete frame out of a connection's receive buffer.
   Searches are collected for the batch; everything else is answered
   inline. *)
let parse_conn t c acc =
  let data = Buffer.contents c.c_in in
  let len = String.length data in
  let rec go pos acc =
    if not c.c_alive then (pos, acc)
    else
      match Wire.pop ~max_payload:t.cfg.max_payload data ~pos with
      | `Need_more -> (pos, acc)
      | `Bad msg ->
        (* the length prefix itself is garbage: no resynchronisation is
           possible, so answer once and drop the connection *)
        t.errors <- t.errors + 1;
        Counter.incr c_errors;
        enqueue c (Wire.Error { err_id = 0; code = Wire.Bad_frame; message = msg });
        c.c_close_after_flush <- true;
        (len, acc)
      | `Frame (payload, next) -> (
        match Wire.decode_request payload with
        | exception E.Error e ->
          (* framing is intact, the payload is mutilated: report and
             keep the connection *)
          t.errors <- t.errors + 1;
          Counter.incr c_errors;
          enqueue c
            (Wire.Error { err_id = 0; code = Wire.Bad_frame; message = E.to_string e });
          go next acc
        | Wire.Search s -> go next ((c, s, Timer.now_s ()) :: acc)
        | Wire.Ping id ->
          enqueue c (Wire.Pong id);
          go next acc
        | Wire.Stats id ->
          enqueue c (stats_reply t id);
          go next acc
        | Wire.Shutdown id ->
          enqueue c (Wire.Shutdown_ack id);
          t.draining <- true;
          go next acc)
  in
  let consumed, acc = go 0 acc in
  if consumed > 0 then begin
    let rest = String.sub data consumed (len - consumed) in
    Buffer.clear c.c_in;
    Buffer.add_string c.c_in rest
  end;
  acc

(* The batch: every search currently in flight, across all
   connections, dealt to the domain pool. Pool.mapi brackets each task
   in a Shard capture and merges in index order, so metric totals are
   deterministic too (doc/PARALLELISM.md). *)
let run_batch t batch =
  let batch = Array.of_list (List.rev batch) in
  let k = Array.length batch in
  if k > 0 then begin
    Counter.incr c_batches;
    Histo.observe_int h_batch k;
    let t_bstart = Timer.now_s () in
    let replies =
      Timer.time t_batch (fun () ->
          Pool.mapi t.pool k (fun i ->
              let _, s, t_arr = batch.(i) in
              (* stage observations and spans happen inside the task's
                 Shard capture: merged in index order at the join, so
                 counts and the event sequence stay deterministic *)
              let t_sstart = Timer.now_s () in
              observe_stage t_stage_queue h_stage_queue (t_bstart -. t_arr);
              observe_stage t_stage_batch h_stage_batch (t_sstart -. t_bstart);
              let traced = Sf_obs.Trace.active () in
              if traced then begin
                Sf_obs.Trace.emit ~ts:t_arr "serve.stage.queue" Sf_obs.Trace.Begin
                  ~args:(stage_args s ~stage:1);
                Sf_obs.Trace.emit ~ts:t_bstart "serve.stage.queue" Sf_obs.Trace.End;
                Sf_obs.Trace.emit ~ts:t_bstart "serve.stage.batch" Sf_obs.Trace.Begin
                  ~args:(stage_args s ~stage:2);
                Sf_obs.Trace.emit ~ts:t_sstart "serve.stage.batch" Sf_obs.Trace.End;
                Sf_obs.Trace.emit ~ts:t_sstart "serve.stage.search" Sf_obs.Trace.Begin
                  ~args:(stage_args s ~stage:3)
              end;
              let reply = handle_search t s in
              let t_done = Timer.now_s () in
              observe_stage t_stage_search h_stage_search (t_done -. t_sstart);
              if traced then
                Sf_obs.Trace.emit ~ts:t_done "serve.stage.search" Sf_obs.Trace.End;
              reply))
    in
    t.served <- t.served + k;
    Array.iteri
      (fun i reply ->
        let c, s, _ = batch.(i) in
        enqueue c reply;
        c.c_pending_replies <- (Timer.now_s (), s) :: c.c_pending_replies)
      replies
  end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let accept_ready t lfd =
  let rec go () =
    match Unix.accept lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      t.accepted <- t.accepted + 1;
      Counter.incr c_connections;
      t.conns <-
        {
          c_fd = fd;
          c_in = Buffer.create 4096;
          c_out = "";
          c_out_off = 0;
          c_alive = true;
          c_close_after_flush = false;
          c_pending_replies = [];
        }
        :: t.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let step t ~timeout =
  let listener_fds = List.map fst t.listeners in
  let conn_fds = List.filter_map (fun c -> if c.c_alive then Some c.c_fd else None) t.conns in
  let wfds = List.filter_map (fun c -> if pending_out c then Some c.c_fd else None) t.conns in
  match Unix.select (listener_fds @ conn_fds) wfds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, writable, _ ->
    List.iter (fun lfd -> if List.mem lfd readable then accept_ready t lfd) listener_fds;
    List.iter
      (fun c -> if c.c_alive && List.mem c.c_fd readable then read_conn c)
      t.conns;
    let batch = List.fold_left (fun acc c -> if c.c_alive then parse_conn t c acc else acc) [] t.conns in
    run_batch t batch;
    ignore writable;
    (* writes are nonblocking and EAGAIN-tolerant, so just try every
       connection with output pending — including output the batch
       created after the select returned *)
    List.iter (fun c -> if pending_out c then flush_conn c) t.conns;
    Registry.set_gauge g_conns
      (float_of_int (List.length (List.filter (fun c -> c.c_alive) t.conns)));
    t.conns <- List.filter (fun c -> c.c_alive) t.conns;
    if t.draining && not (List.exists pending_out t.conns) then t.running <- false

let cleanup t =
  List.iter (fun c -> close_conn c) t.conns;
  t.conns <- [];
  List.iter
    (fun (fd, ep) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match ep with
      | Wire.Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ())
    t.listeners;
  Pool.shutdown t.pool

let run ?(tick = 0.05) t =
  Fun.protect
    ~finally:(fun () -> cleanup t)
    (fun () ->
      while t.running do
        step t ~timeout:tick
      done)
