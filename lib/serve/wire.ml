(* The sfserve wire protocol: length-prefixed frames carrying
   versioned, CRC-checked request/response payloads, hand-rolled in
   the style of lib/store/codec (varint bodies, strict decode, a
   trailing CRC-32 so any corruption is an error, never a silently
   wrong answer).  The grammar is documented for humans in
   doc/SERVING.md. *)

module Varint = Sf_store.Varint
module Crc32 = Sf_store.Crc32
module E = Sf_store.Codec_error

let version = 1
let max_payload_default = 1 lsl 20
let frame_header_bytes = 4

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

type endpoint = Unix_path of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after_prefix ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let endpoint_of_string s =
  if s = "" then Error "empty endpoint"
  else if has_prefix ~prefix:"unix:" s then
    let p = after_prefix ~prefix:"unix:" s in
    if p = "" then Error "unix: endpoint needs a path" else Ok (Unix_path p)
  else if has_prefix ~prefix:"tcp:" s then
    let rest = after_prefix ~prefix:"tcp:" s in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S needs HOST:PORT" rest)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
        Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | Some _ | None -> Error (Printf.sprintf "bad tcp port %S" port))
  else Ok (Unix_path s) (* a bare path is a unix socket, as in --telemetry *)

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type search = {
  id : int;
  strategy : string;
  source : int option;
  target : int option;
  budget : int option;
  stop_at_neighbor : bool;
  ctx : Sf_obs.Tctx.t option;
      (* trace context: carried verbatim, never inspected by the
         search itself — replies are byte-identical with or without *)
}

type request = Search of search | Ping of int | Stats of int | Shutdown of int

type search_reply = {
  sr_id : int;
  sr_total_requests : int;
  sr_to_target : int option;
  sr_to_neighbor : int option;
  sr_discovered : int;
  sr_gave_up : bool;
  sr_path_len : int;
}

type server_stats = {
  ss_id : int;
  ss_n_vertices : int;
  ss_n_edges : int;
  ss_served : int;
  ss_errors : int;
  ss_connections : int;
  (* cumulative per-request stage totals, microseconds: time spent
     queued before a batch formed, waiting inside a batch for a pool
     slot, searching, and draining the reply to the socket *)
  ss_stage_queue_us : int;
  ss_stage_batch_us : int;
  ss_stage_search_us : int;
  ss_stage_reply_us : int;
}

type error_code = Bad_frame | Unknown_strategy | Bad_vertex | Bad_request

type response =
  | Search_reply of search_reply
  | Pong of int
  | Stats_reply of server_stats
  | Shutdown_ack of int
  | Error of { err_id : int; code : error_code; message : string }

let request_id = function Search s -> s.id | Ping id | Stats id | Shutdown id -> id

let response_id = function
  | Search_reply r -> r.sr_id
  | Pong id | Shutdown_ack id -> id
  | Stats_reply s -> s.ss_id
  | Error { err_id; _ } -> err_id

let error_code_to_int = function
  | Bad_frame -> 1
  | Unknown_strategy -> 2
  | Bad_vertex -> 3
  | Bad_request -> 4

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some Unknown_strategy
  | 3 -> Some Bad_vertex
  | 4 -> Some Bad_request
  | _ -> None

let error_code_to_string = function
  | Bad_frame -> "bad-frame"
  | Unknown_strategy -> "unknown-strategy"
  | Bad_vertex -> "bad-vertex"
  | Bad_request -> "bad-request"

(* kind bytes: requests in 0x01-0x0F, responses in 0x11-0x1F *)
let kind_search = 0x01
let kind_ping = 0x02
let kind_stats = 0x03
let kind_shutdown = 0x04
let kind_search_reply = 0x11
let kind_pong = 0x12
let kind_stats_reply = 0x13
let kind_shutdown_ack = 0x14
let kind_error = 0x1F

(* search flags byte *)
let flag_source = 0x01
let flag_target = 0x02
let flag_budget = 0x04
let flag_stop_at_neighbor = 0x08
let flag_trace = 0x10 (* payload carries trace-id and span-id varints *)

(* search-reply flags byte *)
let rflag_to_target = 0x01
let rflag_to_neighbor = 0x02
let rflag_gave_up = 0x04

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let finish_payload buf =
  let crc = Crc32.string (Buffer.contents buf) in
  let tail = Bytes.create 4 in
  Bytes.set_int32_le tail 0 crc;
  Buffer.add_bytes buf tail;
  Buffer.contents buf

let start_payload kind =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  buf

let encode_request req =
  let buf =
    match req with
    | Search s ->
      let buf = start_payload kind_search in
      Varint.write buf s.id;
      write_string buf s.strategy;
      let flags =
        (if s.source <> None then flag_source else 0)
        lor (if s.target <> None then flag_target else 0)
        lor (if s.budget <> None then flag_budget else 0)
        lor (if s.stop_at_neighbor then flag_stop_at_neighbor else 0)
        lor if s.ctx <> None then flag_trace else 0
      in
      Buffer.add_char buf (Char.chr flags);
      Option.iter (Varint.write buf) s.source;
      Option.iter (Varint.write buf) s.target;
      Option.iter (Varint.write buf) s.budget;
      Option.iter
        (fun (c : Sf_obs.Tctx.t) ->
          Varint.write buf c.trace;
          Varint.write buf c.span)
        s.ctx;
      buf
    | Ping id ->
      let buf = start_payload kind_ping in
      Varint.write buf id;
      buf
    | Stats id ->
      let buf = start_payload kind_stats in
      Varint.write buf id;
      buf
    | Shutdown id ->
      let buf = start_payload kind_shutdown in
      Varint.write buf id;
      buf
  in
  finish_payload buf

let encode_response resp =
  let buf =
    match resp with
    | Search_reply r ->
      let buf = start_payload kind_search_reply in
      Varint.write buf r.sr_id;
      let flags =
        (if r.sr_to_target <> None then rflag_to_target else 0)
        lor (if r.sr_to_neighbor <> None then rflag_to_neighbor else 0)
        lor if r.sr_gave_up then rflag_gave_up else 0
      in
      Buffer.add_char buf (Char.chr flags);
      Varint.write buf r.sr_total_requests;
      Option.iter (Varint.write buf) r.sr_to_target;
      Option.iter (Varint.write buf) r.sr_to_neighbor;
      Varint.write buf r.sr_discovered;
      Varint.write buf r.sr_path_len;
      buf
    | Pong id ->
      let buf = start_payload kind_pong in
      Varint.write buf id;
      buf
    | Stats_reply s ->
      let buf = start_payload kind_stats_reply in
      Varint.write buf s.ss_id;
      Varint.write buf s.ss_n_vertices;
      Varint.write buf s.ss_n_edges;
      Varint.write buf s.ss_served;
      Varint.write buf s.ss_errors;
      Varint.write buf s.ss_connections;
      Varint.write buf s.ss_stage_queue_us;
      Varint.write buf s.ss_stage_batch_us;
      Varint.write buf s.ss_stage_search_us;
      Varint.write buf s.ss_stage_reply_us;
      buf
    | Shutdown_ack id ->
      let buf = start_payload kind_shutdown_ack in
      Varint.write buf id;
      buf
    | Error { err_id; code; message } ->
      let buf = start_payload kind_error in
      Varint.write buf err_id;
      Varint.write buf (error_code_to_int code);
      write_string buf message;
      buf
  in
  finish_payload buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* version (1) + kind (1) + at least one varint body byte + crc (4) *)
let min_payload = 7

let check_envelope s =
  let len = String.length s in
  if len < min_payload then E.fail (E.Truncated "payload");
  let v = Char.code s.[0] in
  if v <> version then E.fail (E.Unsupported_version v);
  let stored = String.get_int32_le s (len - 4) in
  let computed = Crc32.sub s ~pos:0 ~len:(len - 4) in
  if stored <> computed then E.fail (E.Checksum_mismatch { stored; computed });
  (Char.code s.[1], len - 4)

let read_string s ~payload_end ~pos =
  let n, pos = Varint.read s ~pos in
  if n < 0 || pos + n > payload_end then E.fail (E.Truncated "string");
  (String.sub s pos n, pos + n)

let read_byte s ~payload_end ~pos =
  if pos >= payload_end then E.fail (E.Truncated "flags");
  (Char.code s.[pos], pos + 1)

let finish ~payload_end ~pos value =
  if pos <> payload_end then
    E.fail (E.Malformed (Printf.sprintf "%d trailing payload byte(s)" (payload_end - pos)));
  value

(* varint reads are bounds-checked against the whole string, so a read
   straying into the CRC tail is caught by [finish]'s position check,
   exactly as in Codec.decode *)
let decode_request s =
  let kind, payload_end = check_envelope s in
  if kind = kind_search then begin
    let id, pos = Varint.read s ~pos:2 in
    let strategy, pos = read_string s ~payload_end ~pos in
    let flags, pos = read_byte s ~payload_end ~pos in
    if
      flags
      land lnot
            (flag_source lor flag_target lor flag_budget lor flag_stop_at_neighbor
           lor flag_trace)
      <> 0
    then E.fail (E.Malformed (Printf.sprintf "unknown search flag bits %#x" flags));
    let opt flag pos =
      if flags land flag = 0 then (None, pos)
      else
        let v, pos = Varint.read s ~pos in
        (Some v, pos)
    in
    let source, pos = opt flag_source pos in
    let target, pos = opt flag_target pos in
    let budget, pos = opt flag_budget pos in
    let ctx, pos =
      if flags land flag_trace = 0 then (None, pos)
      else
        let trace, pos = Varint.read s ~pos in
        let span, pos = Varint.read s ~pos in
        (Some { Sf_obs.Tctx.trace; span }, pos)
    in
    finish ~payload_end ~pos
      (Search
         {
           id;
           strategy;
           source;
           target;
           budget;
           stop_at_neighbor = flags land flag_stop_at_neighbor <> 0;
           ctx;
         })
  end
  else if kind = kind_ping || kind = kind_stats || kind = kind_shutdown then begin
    let id, pos = Varint.read s ~pos:2 in
    finish ~payload_end ~pos
      (if kind = kind_ping then Ping id else if kind = kind_stats then Stats id else Shutdown id)
  end
  else E.fail (E.Malformed (Printf.sprintf "unknown request kind %#x" kind))

let decode_response s =
  let kind, payload_end = check_envelope s in
  if kind = kind_search_reply then begin
    let id, pos = Varint.read s ~pos:2 in
    let flags, pos = read_byte s ~payload_end ~pos in
    if flags land lnot (rflag_to_target lor rflag_to_neighbor lor rflag_gave_up) <> 0 then
      E.fail (E.Malformed (Printf.sprintf "unknown reply flag bits %#x" flags));
    let total, pos = Varint.read s ~pos in
    let opt flag pos =
      if flags land flag = 0 then (None, pos)
      else
        let v, pos = Varint.read s ~pos in
        (Some v, pos)
    in
    let to_target, pos = opt rflag_to_target pos in
    let to_neighbor, pos = opt rflag_to_neighbor pos in
    let discovered, pos = Varint.read s ~pos in
    let path_len, pos = Varint.read s ~pos in
    finish ~payload_end ~pos
      (Search_reply
         {
           sr_id = id;
           sr_total_requests = total;
           sr_to_target = to_target;
           sr_to_neighbor = to_neighbor;
           sr_discovered = discovered;
           sr_gave_up = flags land rflag_gave_up <> 0;
           sr_path_len = path_len;
         })
  end
  else if kind = kind_pong || kind = kind_shutdown_ack then begin
    let id, pos = Varint.read s ~pos:2 in
    finish ~payload_end ~pos (if kind = kind_pong then Pong id else Shutdown_ack id)
  end
  else if kind = kind_stats_reply then begin
    let id, pos = Varint.read s ~pos:2 in
    let n, pos = Varint.read s ~pos in
    let m, pos = Varint.read s ~pos in
    let served, pos = Varint.read s ~pos in
    let errors, pos = Varint.read s ~pos in
    let connections, pos = Varint.read s ~pos in
    let queue_us, pos = Varint.read s ~pos in
    let batch_us, pos = Varint.read s ~pos in
    let search_us, pos = Varint.read s ~pos in
    let reply_us, pos = Varint.read s ~pos in
    finish ~payload_end ~pos
      (Stats_reply
         {
           ss_id = id;
           ss_n_vertices = n;
           ss_n_edges = m;
           ss_served = served;
           ss_errors = errors;
           ss_connections = connections;
           ss_stage_queue_us = queue_us;
           ss_stage_batch_us = batch_us;
           ss_stage_search_us = search_us;
           ss_stage_reply_us = reply_us;
         })
  end
  else if kind = kind_error then begin
    let id, pos = Varint.read s ~pos:2 in
    let code, pos = Varint.read s ~pos in
    let message, pos = read_string s ~payload_end ~pos in
    match error_code_of_int code with
    | None -> E.fail (E.Malformed (Printf.sprintf "unknown error code %d" code))
    | Some code -> finish ~payload_end ~pos (Error { err_id = id; code; message })
  end
  else E.fail (E.Malformed (Printf.sprintf "unknown response kind %#x" kind))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + frame_header_bytes) in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int n);
  Buffer.add_bytes b hdr;
  Buffer.add_string b payload;
  Buffer.contents b

let pop ?(max_payload = max_payload_default) s ~pos =
  let avail = String.length s - pos in
  if avail < frame_header_bytes then `Need_more
  else
    (* unsigned 32-bit read: a garbage length like 0xFFFFFFFF must
       surface as oversized, not as a negative int *)
    let len = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
    if len < min_payload || len > max_payload then
      `Bad
        (Printf.sprintf "frame length %d outside %d..%d" len min_payload max_payload)
    else if avail - frame_header_bytes < len then `Need_more
    else `Frame (String.sub s (pos + frame_header_bytes) len, pos + frame_header_bytes + len)
