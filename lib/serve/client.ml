(* Blocking client for the sfserve protocol — the counterpart of
   Server, used by bin/sfload, the end-to-end tests, and anything
   else that wants to ask a running daemon for a search. Supports
   pipelining: [send] and [recv] are independent, so a caller may
   keep many requests in flight on one connection and match replies
   by id. *)

type t = {
  fd : Unix.file_descr;
  mutable buf : string; (* received, not yet framed-out *)
  mutable pos : int;
}

let connect ep =
  let fd =
    match ep with
    | Wire.Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Wire.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  (try
     (match ep with
     | Wire.Unix_path path -> Unix.connect fd (Unix.ADDR_UNIX path)
     | Wire.Tcp (host, port) ->
       let addr =
         try Unix.inet_addr_of_string host
         with Failure _ -> (
           match Unix.gethostbyname host with
           | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
           | h -> h.Unix.h_addr_list.(0))
       in
       Unix.connect fd (Unix.ADDR_INET (addr, port));
       Unix.setsockopt fd Unix.TCP_NODELAY true)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = ""; pos = 0 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let set_receive_timeout t seconds =
  Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO seconds

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off = if off < n then go (off + Unix.write fd bytes off (n - off)) in
  go 0

let send t req = write_all t.fd (Wire.frame (Wire.encode_request req))

let recv_payload t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Wire.pop t.buf ~pos:t.pos with
    | `Frame (payload, next) ->
      t.pos <- next;
      if t.pos = String.length t.buf then begin
        t.buf <- "";
        t.pos <- 0
      end;
      payload
    | `Bad msg -> failwith ("malformed frame from server: " ^ msg)
    | `Need_more -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> raise End_of_file
      | n ->
        t.buf <-
          (if t.pos = 0 then t.buf
           else String.sub t.buf t.pos (String.length t.buf - t.pos))
          ^ Bytes.sub_string chunk 0 n;
        t.pos <- 0;
        go ())
  in
  go ()

let recv t = Wire.decode_response (recv_payload t)

let call t req =
  send t req;
  recv t

(* One traced search round trip: builds the request (deriving a trace
   context from (seed, id) unless the caller supplies one), and — when
   this process is tracing — emits a client.request span covering
   send-to-receive, carrying the same trace id the server's stage
   spans will carry.  Single-threaded callers only, like [call]. *)
let search ?source ?target ?budget ?(stop_at_neighbor = false) ?ctx ~seed ~strategy t id =
  let ctx =
    match ctx with Some _ as c -> c | None -> Some (Sf_obs.Tctx.derive ~seed ~id)
  in
  let req =
    Wire.Search { id; strategy; source; target; budget; stop_at_neighbor; ctx }
  in
  let t0 = Sf_obs.Timer.now_s () in
  let resp = call t req in
  if Sf_obs.Trace.active () then begin
    let t1 = Sf_obs.Timer.now_s () in
    let args =
      ("id", Sf_obs.Trace.Int id)
      :: (match ctx with Some c -> Sf_obs.Tctx.args c | None -> [])
    in
    Sf_obs.Trace.emit ~ts:t0 "client.request" Sf_obs.Trace.Begin ~args;
    Sf_obs.Trace.emit ~ts:(Float.max t0 t1) "client.request" Sf_obs.Trace.End
  end;
  resp
