let n_buckets = 64

type t = {
  base : float;
  log_base : float;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(base = 2.0) () =
  if base <= 1. then invalid_arg "Histo.create: need base > 1";
  {
    base;
    log_base = Float.log base;
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0.;
    min_v = Float.nan;
    max_v = Float.nan;
  }

let base t = t.base

(* Domain-local capture, same scheme as Counter: a capture gives each
   touched histogram a private shadow (same base, same bucket layout)
   that absorbs the observations; [apply] merges shadows into the
   shared accumulators at the join barrier. *)

type delta = { h_target : t; h_shadow : t }
type deltas = delta list
type frame = delta list ref option

let slot : delta list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture_begin () : frame =
  let s = Domain.DLS.get slot in
  let prev = !s in
  s := Some (ref []);
  prev

let capture_end (prev : frame) : deltas =
  let s = Domain.DLS.get slot in
  let ds = match !s with Some buf -> List.rev !buf | None -> [] in
  s := prev;
  ds

let shadow_of buf t =
  let rec find = function
    | [] ->
      let cell = { h_target = t; h_shadow = create ~base:t.base () } in
      buf := cell :: !buf;
      cell.h_shadow
    | cell :: _ when cell.h_target == t -> cell.h_shadow
    | _ :: rest -> find rest
  in
  find !buf

let bucket_index t v =
  if v <= 1. then 0
  else
    (* epsilon guards exact powers of the base against log rounding up *)
    let i = int_of_float (Float.ceil ((Float.log v /. t.log_base) -. 1e-9)) in
    if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i

let observe_direct t v =
  t.counts.(bucket_index t v) <- t.counts.(bucket_index t v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if t.count = 1 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let observe t v =
  match !(Domain.DLS.get slot) with
  | None -> observe_direct t v
  | Some buf -> observe_direct (shadow_of buf t) v

let observe_int t v = observe t (float_of_int v)

let merge_direct ~into:t src =
  if src.count > 0 then begin
    Array.iteri (fun i c -> if c > 0 then t.counts.(i) <- t.counts.(i) + c) src.counts;
    if t.count = 0 then begin
      t.min_v <- src.min_v;
      t.max_v <- src.max_v
    end
    else begin
      if src.min_v < t.min_v then t.min_v <- src.min_v;
      if src.max_v > t.max_v then t.max_v <- src.max_v
    end;
    t.count <- t.count + src.count;
    t.sum <- t.sum +. src.sum
  end

let apply ds =
  List.iter
    (fun d ->
      match !(Domain.DLS.get slot) with
      | None -> merge_direct ~into:d.h_target d.h_shadow
      | Some buf -> merge_direct ~into:(shadow_of buf d.h_target) d.h_shadow)
    ds

let count t = t.count
let sum t = t.sum
let min_value t = t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let bucket_count t i = t.counts.(i)

let upper_bound t i = if i = 0 then 1. else t.base ** float_of_int i

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (upper_bound t i, t.counts.(i)) :: !acc
  done;
  !acc

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histo.quantile: need q in [0, 1]";
  if t.count = 0 then Float.nan
  else begin
    let target = q *. float_of_int t.count in
    let cum = ref 0 in
    let result = ref (upper_bound t (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + t.counts.(i);
         if float_of_int !cum >= target && t.counts.(i) > 0 then begin
           result := upper_bound t i;
           raise Stdlib.Exit
         end
       done
     with Stdlib.Exit -> ());
    !result
  end

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- Float.nan;
  t.max_v <- Float.nan
