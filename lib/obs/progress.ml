(* Live progress lines on stderr: carriage-return overwrite while
   running, a final newline-terminated line on finish.  Lines are
   padded to the longest line written so a shorter update fully
   overwrites a longer one. *)

(* Process-wide kill switch: fabric worker processes inherit the
   coordinator's terminal, and N workers redrawing carriage-return
   lines over each other is garbage — workers flip this off and report
   through Proto.Progress instead, leaving the coordinator's single
   consolidated line as the only writer. *)
let enabled = ref true
let set_enabled v = enabled := v

type t = {
  out : out_channel;
  label : string;
  total : int;
  start : float;
  mutable completed : int;
  mutable widest : int;
  mutable finished : bool;
}

let create ?(out = stderr) ~label ~total () =
  if total < 0 then invalid_arg "Progress.create: negative total";
  { out; label; total; start = Timer.now_s (); completed = 0; widest = 0; finished = false }

let fmt_seconds s =
  if s >= 60. then Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%.1fs" s

let line t ~detail =
  let elapsed = Float.max 0. (Timer.now_s () -. t.start) in
  let counts =
    if t.total > 0 then Printf.sprintf "%d/%d" t.completed t.total
    else string_of_int t.completed
  in
  let eta =
    if t.total > 0 && t.completed > 0 && t.completed < t.total then
      Printf.sprintf ", ETA %s"
        (fmt_seconds (elapsed /. float_of_int t.completed *. float_of_int (t.total - t.completed)))
    else ""
  in
  let detail = match detail with "" -> "" | d -> " — " ^ d in
  Printf.sprintf "%s: %s (elapsed %s%s)%s" t.label counts (fmt_seconds elapsed) eta detail

let show t s =
  if !enabled then
  let padded =
    if String.length s >= t.widest then begin
      t.widest <- String.length s;
      s
    end
    else s ^ String.make (t.widest - String.length s) ' '
  in
  Printf.fprintf t.out "\r%s%!" padded

let step ?(detail = "") t =
  if not t.finished then begin
    t.completed <- t.completed + 1;
    show t (line t ~detail)
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    show t (line t ~detail:"done");
    if !enabled then begin
      output_char t.out '\n';
      flush t.out
    end
  end

let completed t = t.completed
