(* Unix-domain listener lifecycle, shared by every long-lived socket
   in the repo: the telemetry socket (Expose), the lib/serve request
   socket, and the lib/fabric coordinator socket.  Claiming a path
   safely is the same problem for all of them: reclaim the path only
   when it is a leftover socket of a dead run; refuse to clobber
   anything else (--telemetry ./results.json would otherwise delete a
   data file) and refuse to steal the socket of a process that is
   still serving it. *)

let claim_unix_path ~who path =
  if String.length path = 0 then invalid_arg (who ^ ": empty socket path");
  if String.length path >= 104 then
    (* sockaddr_un.sun_path is 108 bytes on Linux; stay clear of it so
       the error is ours, not a truncated-bind surprise *)
    invalid_arg
      (Printf.sprintf "%s: socket path too long (%d chars, limit 103): %s" who
         (String.length path) path);
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      invalid_arg (Printf.sprintf "%s: %s is in use by a live process" who path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> invalid_arg (Printf.sprintf "%s: %s exists and is not a socket" who path)

let bind_unix ?(backlog = 8) ~who path =
  (* Never let a departing client kill the process behind the socket:
     writing to a half-closed connection must raise EPIPE (every
     listener treats it as client-gone), not deliver a fatal
     SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  claim_unix_path ~who path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd
