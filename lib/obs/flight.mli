(** The flight recorder: a bounded ring of the most recent trace
    events, kept in memory and dumped on demand — the "what just
    happened" view when a run raises or a strategy gives up.

    Attach one with [Trace.attach (Flight.sink recorder)]; the
    harnesses do this whenever [--trace] is active and {!arm} it to
    dump on a ["search.gave_up"] event, and dump it by hand from their
    top-level exception handler. The buffer is fixed at creation:
    recording is one array store, no allocation, so the recorder can
    ride along any traced run. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 events.
    @raise Invalid_argument if [capacity < 1]. *)

val sink : t -> Trace.sink
(** The recorder as an attachable sink. One recorder should back at
    most one attachment. *)

(** {1 Reading} *)

val events : t -> Trace.event list
(** The retained events, oldest first (at most [capacity]). *)

val length : t -> int
(** Events currently retained. *)

val seen : t -> int
(** Events ever recorded. *)

val dropped : t -> int
(** Events overwritten: [seen - capacity] when positive. *)

val capacity : t -> int

(** {1 Triggered dumps} *)

val arm : t -> trigger:(Trace.event -> bool) -> action:(t -> unit) -> unit
(** Run [action recorder] on the first recorded event satisfying
    [trigger] (the triggering event is already in the buffer). The
    trigger then disarms itself — re-arm to fire again — so a
    gave-up storm dumps once, not per run. *)

val disarm : t -> unit

val dump : ?out:out_channel -> t -> unit
(** Human-readable dump ({!Trace.event_to_line} per event) to [out]
    (default [stderr]), flushed. *)

val install_sigusr1 : ?out:out_channel -> t -> bool
(** Install a [SIGUSR1] handler dumping the ring to [out] (default
    [stderr]), so a stuck run can be inspected with
    [kill -USR1 <pid>] without killing it. Returns [false] on
    platforms without the signal. The harnesses install this whenever
    [--trace] arms a recorder; a later call replaces the earlier
    handler. *)
