(* Time-series rings over the registry: the live-telemetry substrate.

   A {e series} is a fixed-capacity ring of (timestamp, value) points
   for one scalar facet of one metric.  Sampling walks the registry
   and pushes the current value of every facet — counters as their
   count, timers as [.total_s]/[.count], set gauges as their value,
   histograms as [.count]/[.sum]/[.p50]/[.p95]/[.p99]/[.p999] — so rolling
   rates, EWMAs and windowed quantiles can be derived from a running
   process without waiting for the end-of-run manifest.

   Concurrency.  The background sampler is a systhread, not a domain:
   it shares the main domain's runtime lock AND its domain-local
   storage, so it must never open a capture frame (that would corrupt
   the pool's shard bookkeeping) and must not emit trace events (their
   stream position would be scheduling-dependent).  It therefore only
   {e reads} metric values — counter loads and gauge reads are single
   word reads, histogram buckets are int array reads; a torn read can
   at worst be one observation stale, never out of thin air — and
   refreshes the GC/RSS gauges via [~trace:false].  Ring state itself
   is guarded by a mutex shared with scrape-triggered samples. *)

(* --- one ring ------------------------------------------------------ *)

type ring = {
  r_capacity : int;
  r_ts : float array;
  r_v : float array;
  mutable r_seen : int; (* points ever pushed; head = r_seen mod cap *)
}

let ring_create ~capacity =
  if capacity < 1 then invalid_arg "Series.ring_create: capacity must be >= 1";
  { r_capacity = capacity; r_ts = Array.make capacity 0.; r_v = Array.make capacity 0.; r_seen = 0 }

let ring_capacity r = r.r_capacity
let ring_seen r = r.r_seen
let ring_length r = min r.r_seen r.r_capacity

let ring_push r ~ts ~v =
  let i = r.r_seen mod r.r_capacity in
  r.r_ts.(i) <- ts;
  r.r_v.(i) <- v;
  r.r_seen <- r.r_seen + 1

(* oldest first *)
let ring_points r =
  let len = ring_length r in
  let first = r.r_seen - len in
  List.init len (fun k ->
      let i = (first + k) mod r.r_capacity in
      (r.r_ts.(i), r.r_v.(i)))

let ring_last r =
  if r.r_seen = 0 then None
  else
    let i = (r.r_seen - 1) mod r.r_capacity in
    Some (r.r_ts.(i), r.r_v.(i))

(* --- derived statistics (pure over the retained points) ------------ *)

(* Points no older than [window_s] before the newest timestamp,
   oldest first. *)
let window_points r ~window_s =
  match ring_last r with
  | None -> []
  | Some (t_last, _) ->
    List.filter (fun (ts, _) -> ts >= t_last -. window_s) (ring_points r)

let rate r ~window_s =
  match window_points r ~window_s with
  | [] | [ _ ] -> None
  | (t0, v0) :: _ as pts ->
    let tn, vn = List.nth pts (List.length pts - 1) in
    let dt = tn -. t0 in
    if dt <= 0. then None else Some ((vn -. v0) /. dt)

(* Time-decayed EWMA: each step folds the next point in with weight
   [a = 1 - exp (-dt / tau_s)], so irregular tick spacing is handled
   exactly — a long gap weighs the new point more. *)
let ewma r ~tau_s =
  if tau_s <= 0. then invalid_arg "Series.ewma: tau_s must be > 0";
  match ring_points r with
  | [] -> None
  | (t0, v0) :: rest ->
    let e, _ =
      List.fold_left
        (fun (e, t_prev) (ts, v) ->
          let dt = Float.max 0. (ts -. t_prev) in
          let a = 1. -. exp (-.dt /. tau_s) in
          (e +. (a *. (v -. e)), ts))
        (v0, t0) rest
    in
    Some e

(* Nearest-rank quantile over the values retained in the window. *)
let window_quantile r ~window_s q =
  if q < 0. || q > 1. then invalid_arg "Series.window_quantile: q outside [0,1]";
  match window_points r ~window_s with
  | [] -> None
  | pts ->
    let vs = List.map snd pts |> Array.of_list in
    Array.sort compare vs;
    let n = Array.length vs in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    Some vs.(max 0 (min (n - 1) (rank - 1)))

(* --- the collection + background sampler --------------------------- *)

type t = {
  capacity : int;
  tick_s : float;
  mu : Mutex.t;
  rings : (string, ring) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
  mutable n_samples : int;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let create ?(capacity = 600) ?(tick_s = 0.5) () =
  if capacity < 1 then invalid_arg "Series.create: capacity must be >= 1";
  if tick_s <= 0. then invalid_arg "Series.create: tick_s must be > 0";
  {
    capacity;
    tick_s;
    mu = Mutex.create ();
    rings = Hashtbl.create 64;
    order = [];
    n_samples = 0;
    running = false;
    thread = None;
  }

let tick_s t = t.tick_s
let samples t = t.n_samples

let ring_for t name =
  match Hashtbl.find_opt t.rings name with
  | Some r -> r
  | None ->
    let r = ring_create ~capacity:t.capacity in
    Hashtbl.add t.rings name r;
    t.order <- name :: t.order;
    r

let push t name ~ts ~v = ring_push (ring_for t name) ~ts ~v

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* One snapshot of every registered metric.  [~trace:false] because
   this may run on the sampler thread (see the header comment). *)
let sample t =
  if Registry.enabled () then begin
    Gc_sample.sample ~trace:false ();
    let metrics = Registry.all () in
    locked t (fun () ->
        let ts = Timer.now_s () in
        List.iter
          (fun (name, m) ->
            match m with
            | Registry.Counter c -> push t name ~ts ~v:(float_of_int (Counter.value c))
            | Registry.Timer tm ->
              push t (name ^ ".total_s") ~ts ~v:(Timer.total_s tm);
              push t (name ^ ".count") ~ts ~v:(float_of_int (Timer.count tm))
            | Registry.Gauge g ->
              if Registry.gauge_set g then push t name ~ts ~v:(Registry.gauge_value g)
            | Registry.Histo h ->
              push t (name ^ ".count") ~ts ~v:(float_of_int (Histo.count h));
              push t (name ^ ".sum") ~ts ~v:(Histo.sum h);
              if Histo.count h > 0 then begin
                push t (name ^ ".p50") ~ts ~v:(Histo.quantile h 0.5);
                push t (name ^ ".p95") ~ts ~v:(Histo.quantile h 0.95);
                push t (name ^ ".p99") ~ts ~v:(Histo.quantile h 0.99);
                push t (name ^ ".p999") ~ts ~v:(Histo.quantile h 0.999)
              end)
          metrics;
        t.n_samples <- t.n_samples + 1)
  end

let names t = locked t (fun () -> List.sort compare t.order)

(* The only ring accessor: runs the reader under the collection lock.
   Handing a ring out of the lock would let callers race the sampler
   thread's pushes, so there is deliberately no [find]. *)
let with_ring t name f =
  locked t (fun () ->
      match Hashtbl.find_opt t.rings name with None -> None | Some r -> Some (f r))

(* sleep in short slices so [stop] returns promptly even at a long tick *)
let interruptible_delay t seconds =
  let slice = 0.05 in
  let rec go remaining =
    if t.running && remaining > 0. then begin
      Thread.delay (Float.min slice remaining);
      go (remaining -. slice)
    end
  in
  go seconds

let sampler_loop t =
  while t.running do
    interruptible_delay t t.tick_s;
    if t.running then sample t
  done

let start t =
  if t.thread = None then begin
    t.running <- true;
    sample t;
    (* a first point at t0, so rates are defined after one tick *)
    t.thread <- Some (Thread.create sampler_loop t)
  end

let stop t =
  match t.thread with
  | None -> ()
  | Some th ->
    t.running <- false;
    Thread.join th;
    t.thread <- None;
    sample t (* final point, so the last interval is covered *)

let running t = t.thread <> None

(* --- JSON dump (the socket [series] command) ----------------------- *)

let to_json t =
  locked t (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b
        (Printf.sprintf {|{"tick_s":%s,"samples":%d,"series":{|}
           (Export.json_float t.tick_s) t.n_samples);
      let names = List.sort compare t.order in
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char b ',';
          let r = Hashtbl.find t.rings name in
          Buffer.add_string b (Export.json_string name);
          Buffer.add_string b
            (Printf.sprintf {|:{"seen":%d,"points":[|} r.r_seen);
          List.iteri
            (fun j (ts, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "[%s,%s]" (Export.json_float ts) (Export.json_float v)))
            (ring_points r);
          Buffer.add_string b "]}")
        names;
      Buffer.add_string b "}}";
      Buffer.contents b)
