(** Nestable spans: the phase structure of a run, as a forest of
    timed intervals.

    A span is opened around a phase ("experiments", "exp.T1",
    "search.trial") and closed when the phase ends; spans opened while
    another is live become its children, so a completed run leaves a
    forest mirroring the call structure — the "wall/CPU time per
    phase" section of the run manifest ({!Export.manifest_json}).

    State is a single implicit stack per process (the stack of the
    currently-open spans), matching the single-threaded harness. Use
    {!with_span} wherever possible; it is exception-safe. When the
    registry is disabled ({!Registry.set_enabled}[ false]),
    {!with_span} runs its body without touching the clock or
    allocating.

    Span boundaries feed the wider observability layer: each
    {!enter}/{!leave} emits a [Begin]/[End] event to the {!Trace}
    stream (rendered as nested slices by the Perfetto exporter) and
    refreshes the {!Gc_sample} runtime gauges. *)

type t
(** A {e completed} span. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a fresh span; the span is
    closed (and attached to its parent, or to the root list) even if
    [f] raises. Inside a parallel task ({!Trace.capturing}), the span
    forest is not touched — it belongs to the pool's caller — but the
    [Begin]/[End] event pair still reaches the stream, so the phase
    keeps its Perfetto slice (doc/PARALLELISM.md). *)

val enter : string -> unit
(** Open a span by hand. Every [enter] must be matched by a {!leave};
    prefer {!with_span}. *)

val leave : unit -> unit
(** Close the innermost open span. Ignored when no span is open. *)

(** {1 Reading the forest} *)

val roots : unit -> t list
(** Completed top-level spans, in completion order. Spans still open
    are not included. *)

val name : t -> string
val duration_s : t -> float
val children : t -> t list
(** Completed children in completion order. *)

val reset : unit -> unit
(** Drop all completed spans and abandon any open ones. *)
