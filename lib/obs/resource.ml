(* Process-resource attribution: RSS and peak-RSS gauges read from
   /proc/self/status (VmRSS / VmHWM, Linux).  Sampled alongside
   Gc_sample at span boundaries and at every telemetry tick, so run
   manifests carry measured memory figures instead of the hand-noted
   numbers doc/SCALING.md used to quote.

   On systems without /proc the probe returns nothing: the gauges stay
   unset and [rss_peak_bytes] falls back to the highest VmRSS this
   module ever observed (0 if it never saw one). *)

let g_rss = Registry.gauge "proc.rss_bytes"
let g_rss_peak = Registry.gauge "proc.rss_peak_bytes"

(* highest RSS seen by any probe, shared fallback when the kernel does
   not report a high-water mark *)
let observed_peak = ref 0

let status_path = "/proc/self/status"

(* "VmRSS:\t  123456 kB" -> Some 126418944 *)
let parse_kb_line line prefix =
  let lp = String.length prefix in
  if String.length line > lp && String.sub line 0 lp = prefix then begin
    let b = Buffer.create 12 in
    String.iter (function '0' .. '9' as c -> Buffer.add_char b c | _ -> ()) line;
    match int_of_string_opt (Buffer.contents b) with
    | Some kb -> Some (kb * 1024)
    | None -> None
  end
  else None

let probe () =
  match open_in status_path with
  | exception Sys_error _ -> (None, None)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rss = ref None and hwm = ref None in
        (try
           while !rss = None || !hwm = None do
             let line = input_line ic in
             (match parse_kb_line line "VmRSS:" with Some b -> rss := Some b | None -> ());
             match parse_kb_line line "VmHWM:" with Some b -> hwm := Some b | None -> ()
           done
         with End_of_file -> ());
        (!rss, !hwm))

let available () = Sys.file_exists status_path

let note_peak = function
  | Some b when b > !observed_peak -> observed_peak := b
  | Some _ | None -> ()

(* [trace=false] is the telemetry sampler's path: a background thread
   must not inject counter events into the trace stream at
   nondeterministic times (doc/OBSERVABILITY.md, "Live telemetry") *)
let sample ?(trace = true) () =
  if Registry.enabled () then begin
    let rss, hwm = probe () in
    note_peak rss;
    note_peak hwm;
    (match rss with
    | Some b ->
      Registry.set_gauge g_rss (float_of_int b);
      if trace && Trace.active () then Trace.counter "proc.rss_bytes" (float_of_int b)
    | None -> ());
    match (hwm, !observed_peak) with
    | Some b, _ -> Registry.set_gauge g_rss_peak (float_of_int b)
    | None, p when p > 0 -> Registry.set_gauge g_rss_peak (float_of_int p)
    | None, _ -> ()
  end

let rss_bytes () =
  let rss, hwm = probe () in
  note_peak rss;
  note_peak hwm;
  Option.value ~default:0 rss

(* a fresh probe, not the gauge: manifest extras must be accurate even
   for a run that never sampled (e.g. one without spans) *)
let rss_peak_bytes () =
  let rss, hwm = probe () in
  note_peak rss;
  note_peak hwm;
  max !observed_peak (Option.value ~default:0 hwm)
