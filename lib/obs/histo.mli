(** Log-bucketed histograms for latency and degree distributions.

    Scale-free quantities (degrees, request counts, queue latencies)
    span orders of magnitude, so buckets grow geometrically: with the
    default base 2, bucket 0 holds every value [<= 1], and bucket
    [i >= 1] holds the half-open range [(base^(i-1), base^i]].
    Observation is O(1) (one [log], one array increment) and the
    memory footprint is a fixed 64-slot array regardless of the value
    range — safe to keep hot.

    This is the observability twin of [Sf_stats.Histogram]: that one
    renders a {e finished} sample for a table, this one is a mutable
    accumulator cheap enough to live inside generators and search
    loops, exported via {!Export}. *)

type t

val create : ?base:float -> unit -> t
(** [base] (default [2.0]) is the geometric bucket growth factor.
    @raise Invalid_argument if [base <= 1]. *)

val base : t -> float

val observe : t -> float -> unit
(** Record one value. Values [<= 1] (including negatives) land in
    bucket 0. *)

val observe_int : t -> int -> unit

val count : t -> int
(** Number of observations. *)

val sum : t -> float
val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val mean : t -> float
(** [sum / count]; [0.] when empty. *)

val bucket_index : t -> float -> int
(** The bucket a value falls into — exposed so tests can pin the
    boundary behaviour: [bucket_index h v = 0] iff [v <= 1], and for
    [i >= 1] the bucket covers [(base^(i-1), base^i]]. *)

val bucket_count : t -> int -> int
(** Observations in the given bucket index. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. Bucket
    0's upper bound is [1.]. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [[0, 1]]: the upper bound of the first
    bucket whose cumulative count reaches [q * count] — an upper
    estimate with relative error bounded by the bucket base. [nan]
    when empty. @raise Invalid_argument if [q] is outside [[0,1]]. *)

val reset : t -> unit

(** {1 Domain-local capture}

    Same contract as {!Counter.capture_begin} — see there for the full
    story. A capture gives each touched histogram a private shadow
    (same base and bucket layout) absorbing its observations; {!apply}
    merges shadows into the shared accumulators at the join barrier.
    Bucket counts, totals and min/max merge exactly; the running [sum]
    is a float whose association order follows the merge order, which
    the pool keeps fixed (task-index order) so a given seed produces
    the same sum at any job count. *)

type frame
type deltas

val capture_begin : unit -> frame
val capture_end : frame -> deltas
val apply : deltas -> unit
