let buf_add = Buffer.add_string

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add b "\\\""
      | '\\' -> buf_add b "\\\\"
      | '\n' -> buf_add b "\\n"
      | '\r' -> buf_add b "\\r"
      | '\t' -> buf_add b "\\t"
      | c when Char.code c < 0x20 -> buf_add b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let metric_json = function
  | Registry.Counter c -> Printf.sprintf {|{"kind":"counter","value":%d}|} (Counter.value c)
  | Registry.Timer t ->
    Printf.sprintf {|{"kind":"timer","count":%d,"total_s":%s,"mean_s":%s}|} (Timer.count t)
      (json_float (Timer.total_s t))
      (json_float (Timer.mean_s t))
  | Registry.Gauge g ->
    Printf.sprintf {|{"kind":"gauge","value":%s,"set":%b}|}
      (json_float (Registry.gauge_value g))
      (Registry.gauge_set g)
  | Registry.Histo h ->
    let buckets =
      Histo.buckets h
      |> List.map (fun (ub, n) -> Printf.sprintf "[%s,%d]" (json_float ub) n)
      |> String.concat ","
    in
    let q p = if Histo.count h = 0 then "null" else json_float (Histo.quantile h p) in
    Printf.sprintf
      {|{"kind":"histogram","count":%d,"sum":%s,"min":%s,"max":%s,"p50":%s,"p90":%s,"p95":%s,"p99":%s,"p999":%s,"buckets":[%s]}|}
      (Histo.count h)
      (json_float (Histo.sum h))
      (json_float (Histo.min_value h))
      (json_float (Histo.max_value h))
      (q 0.5) (q 0.9) (q 0.95) (q 0.99) (q 0.999) buckets

let metrics_json () =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add b (json_string name);
      Buffer.add_char b ':';
      buf_add b (metric_json m))
    (Registry.all ());
  Buffer.add_char b '}';
  Buffer.contents b

let metrics_csv () =
  let b = Buffer.create 1024 in
  buf_add b "name,kind,value,count,mean\n";
  List.iter
    (fun (name, m) ->
      let kind, value, count, mean =
        match m with
        | Registry.Counter c -> ("counter", string_of_int (Counter.value c), "", "")
        | Registry.Timer t ->
          ( "timer",
            Printf.sprintf "%.9f" (Timer.total_s t),
            string_of_int (Timer.count t),
            Printf.sprintf "%.9f" (Timer.mean_s t) )
        | Registry.Gauge g ->
          ("gauge", Printf.sprintf "%.9g" (Registry.gauge_value g), "", "")
        | Registry.Histo h ->
          ( "histogram",
            Printf.sprintf "%.9g" (Histo.sum h),
            string_of_int (Histo.count h),
            Printf.sprintf "%.9g" (Histo.mean h) )
      in
      buf_add b
        (Printf.sprintf "%s,%s,%s,%s,%s\n" (Sf_stats.Csv.escape_field name) kind value count
           mean))
    (Registry.all ());
  Buffer.contents b

let rec span_json s =
  Printf.sprintf {|{"name":%s,"seconds":%s,"children":[%s]}|}
    (json_string (Span.name s))
    (json_float (Span.duration_s s))
    (String.concat "," (List.map span_json (Span.children s)))

let spans_json () = "[" ^ String.concat "," (List.map span_json (Span.roots ())) ^ "]"

let manifest_json ?(extra = []) ~tool ~seed ~mode () =
  let b = Buffer.create 4096 in
  buf_add b "{\n";
  buf_add b (Printf.sprintf {|  "tool": %s,|} (json_string tool));
  buf_add b "\n";
  buf_add b (Printf.sprintf {|  "seed": %d,|} seed);
  buf_add b "\n";
  buf_add b (Printf.sprintf {|  "mode": %s,|} (json_string mode));
  buf_add b "\n";
  buf_add b (Printf.sprintf {|  "ocaml": %s,|} (json_string Sys.ocaml_version));
  buf_add b "\n";
  List.iter
    (fun (k, raw_json) -> buf_add b (Printf.sprintf "  %s: %s,\n" (json_string k) raw_json))
    extra;
  buf_add b (Printf.sprintf {|  "spans": %s,|} (spans_json ()));
  buf_add b "\n";
  buf_add b (Printf.sprintf {|  "metrics": %s|} (metrics_json ()));
  buf_add b "\n}\n";
  Buffer.contents b

let write_manifest ?extra ~tool ~seed ~mode ~path () =
  let doc = manifest_json ?extra ~tool ~seed ~mode () in
  if path = "-" then begin
    (* [--metrics -]: the manifest goes to stdout so a caller (sfbench,
       CI scripts) can capture it without a temp file *)
    print_string doc;
    flush stdout
  end
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
  end

let write_manifest_checked ?extra ~tool ~seed ~mode ~path () =
  if not (Registry.enabled ()) then begin
    Printf.eprintf
      "%s: observability is disabled (--no-obs); not writing the run manifest to %s\n%!" tool
      path;
    `Skipped_disabled
  end
  else
    try
      write_manifest ?extra ~tool ~seed ~mode ~path ();
      `Written
    with Sys_error msg -> `Error msg

(* --- reading manifests back (the baseline shape check) ------------- *)

(* Scan a JSON document for the keys of the object bound to "metrics":
   after the opening brace of that object, every string at nesting
   depth 1 that is followed by ':' is a metric name.  A full parser is
   not needed — manifests are machine-written by this module. *)

let scan_string src i =
  (* src.[i] = '"'; returns (contents, index after closing quote) *)
  let b = Buffer.create 16 in
  let n = String.length src in
  let rec go i =
    if i >= n then (Buffer.contents b, i)
    else
      match src.[i] with
      | '"' -> (Buffer.contents b, i + 1)
      | '\\' when i + 1 < n ->
        (match src.[i + 1] with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' -> Buffer.add_char b '?' (* names never contain escapes *)
        | c -> Buffer.add_char b c);
        go (i + 2)
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go (i + 1)

let next_nonspace src i =
  let n = String.length src in
  let rec go i = if i < n && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r') then go (i + 1) else i in
  go i

let find_metrics_object src =
  (* index of the '{' opening the "metrics" object, if any *)
  let n = String.length src in
  let rec go i =
    if i >= n then None
    else if src.[i] = '"' then begin
      let key, j = scan_string src i in
      let j' = next_nonspace src j in
      if key = "metrics" && j' < n && src.[j'] = ':' then begin
        let k = next_nonspace src (j' + 1) in
        if k < n && src.[k] = '{' then Some k else None
      end
      else go j
    end
    else go (i + 1)
  in
  go 0

let metric_names_of_manifest src =
  match find_metrics_object src with
  | None -> []
  | Some start ->
    let n = String.length src in
    let rec go i depth acc =
      if i >= n || depth = 0 then List.rev acc
      else
        match src.[i] with
        | '{' | '[' -> go (i + 1) (depth + 1) acc
        | '}' | ']' -> go (i + 1) (depth - 1) acc
        | '"' ->
          let s, j = scan_string src i in
          let j' = next_nonspace src j in
          if depth = 1 && j' < n && src.[j'] = ':' then go j' depth (s :: acc)
          else go j depth acc
        | _ -> go (i + 1) depth acc
    in
    go (start + 1) 1 []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let metric_names_of_file path = metric_names_of_manifest (read_file path)
