(** Unix-domain listener lifecycle, shared by every long-lived socket
    in the repo — the telemetry socket ({!Expose}), the [lib/serve]
    request socket and the [lib/fabric] coordinator socket all claim
    their filesystem path through the same discipline, so they behave
    identically around crashes: a stale socket left by a dead process
    is reclaimed, a live one is refused, anything that is not a socket
    is never touched. *)

val claim_unix_path : who:string -> string -> unit
(** Make a filesystem path safe to bind a fresh unix-domain stream
    socket at: a stale socket left by a dead process is unlinked and
    reclaimed; anything else — a regular file, a directory, or a
    socket another live process still answers on (checked with a
    connect probe) — is refused. [who] prefixes the error messages.
    @raise Invalid_argument on an empty path, one at or beyond the
    [sun_path] limit (104 chars), or an unreclaimable [path]. *)

val bind_unix : ?backlog:int -> who:string -> string -> Unix.file_descr
(** {!claim_unix_path}, then socket + bind + listen (default backlog
    8), returning the listening descriptor. Also ignores SIGPIPE
    process-wide, so a client disconnecting mid-response surfaces as
    EPIPE rather than killing the process. The caller owns the
    descriptor and the path (close and unlink on shutdown).
    @raise Invalid_argument as {!claim_unix_path}; socket errors
    propagate as [Unix.Unix_error]. *)

val connect_unix : string -> Unix.file_descr
(** Connect a fresh stream socket to a unix-domain listener; the
    descriptor is closed again if the connect fails.
    @raise Unix.Unix_error when nothing answers at the path. *)
