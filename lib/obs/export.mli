(** Exporters: the registry and span forest rendered as JSON and CSV,
    and the per-run manifest ([obs.json]).

    A manifest is the machine-readable record of one run — seed, mode,
    wall time per phase (the {!Span} forest), and the value of every
    registered metric — written next to a run's human-readable tables
    so that regressions can be tracked across commits by diffing
    manifests. [bench/main.exe --quick] does exactly that against the
    committed [bench/baseline_quick.json] (names only, no timing
    assertions). The schema is documented in [doc/OBSERVABILITY.md].

    JSON is rendered and re-scanned by hand: manifests are flat,
    machine-written documents, and this library must not grow a
    dependency for them. *)

(** {1 Rendering} *)

val metrics_json : unit -> string
(** The registry as one JSON object: name → [{"kind": ..., ...}].
    Counters carry [value]; timers [count], [total_s], [mean_s];
    gauges [value], [set]; histograms [count], [sum], [min], [max],
    [p50]/[p90]/[p95]/[p99]/[p999] and the non-empty [buckets] as
    [[upper_bound, count]] pairs. *)

val metrics_csv : unit -> string
(** The registry as CSV (header [name,kind,value,count,mean]); the
    [value] column is the counter value, timer total seconds,
    gauge value, or histogram sum. Field quoting is
    {!Sf_stats.Csv.escape_field} (RFC 4180), so metric names containing
    commas or quotes round-trip through {!Sf_stats.Csv.parse}. *)

val spans_json : unit -> string
(** The completed span forest as a JSON array of
    [{"name", "seconds", "children"}] trees. *)

val manifest_json :
  ?extra:(string * string) list -> tool:string -> seed:int -> mode:string -> unit -> string
(** The full run manifest. [extra] entries are [(key, raw_json)]
    pairs spliced verbatim into the top-level object — the caller is
    responsible for their JSON validity. *)

val write_manifest :
  ?extra:(string * string) list ->
  tool:string ->
  seed:int ->
  mode:string ->
  path:string ->
  unit ->
  unit
(** {!manifest_json} written to [path] (truncating). The path ["-"]
    writes the manifest to stdout instead — the [--metrics -] mode of
    the tools, which lets a caller capture the manifest without a temp
    file. *)

val write_manifest_checked :
  ?extra:(string * string) list ->
  tool:string ->
  seed:int ->
  mode:string ->
  path:string ->
  unit ->
  [ `Written | `Skipped_disabled | `Error of string ]
(** The harness entry point behind [--metrics FILE]. When the registry
    is disabled ([--no-obs]) the manifest would be a near-empty husk —
    every value zero — so instead of writing one this warns on stderr
    and returns [`Skipped_disabled]. I/O failures come back as
    [`Error] rather than raising. *)

val json_string : string -> string
(** Escape and quote one string — for building [extra] values. *)

val json_float : float -> string
(** A JSON number, or [null] for non-finite values. *)

(** {1 Reading manifests back} *)

val metric_names_of_manifest : string -> string list
(** The keys of the ["metrics"] object of a manifest document, in
    document order; [[]] if the document has none. Tolerant scanner,
    not a validator — intended for manifests this module wrote. *)

val metric_names_of_file : string -> string list
(** {!metric_names_of_manifest} over a file's contents.
    @raise Sys_error if the file cannot be read. *)
