type t = { span_name : string; duration : float; kids : t list }

(* open spans, innermost first; completed children accumulate in
   reverse completion order *)
type open_span = { o_name : string; o_start : float; mutable o_kids : t list }

let stack : open_span list ref = ref []
let completed_roots : t list ref = ref []

let enter name =
  Gc_sample.sample ();
  Trace.emit name Trace.Begin;
  stack := { o_name = name; o_start = Timer.now_s (); o_kids = [] } :: !stack

let leave () =
  match !stack with
  | [] -> ()
  | o :: rest ->
    stack := rest;
    let span =
      {
        span_name = o.o_name;
        duration = Float.max 0. (Timer.now_s () -. o.o_start);
        kids = List.rev o.o_kids;
      }
    in
    (match rest with
    | [] -> completed_roots := span :: !completed_roots
    | parent :: _ -> parent.o_kids <- span :: parent.o_kids);
    Trace.emit o.o_name Trace.End;
    Gc_sample.sample ()

let with_span name f =
  if not (Registry.enabled ()) then f ()
  else if Trace.capturing () then begin
    (* inside a parallel task: the span forest (global stack) belongs
       to the pool's caller, so only the stream sees this phase — the
       Begin/End pair is buffered and replayed at the join barrier,
       keeping Perfetto slices without racing on the stack *)
    Trace.emit name Trace.Begin;
    Fun.protect ~finally:(fun () -> Trace.emit name Trace.End) f
  end
  else begin
    enter name;
    Fun.protect ~finally:leave f
  end

let roots () = List.rev !completed_roots
let name t = t.span_name
let duration_s t = t.duration
let children t = t.kids

let reset () =
  stack := [];
  completed_roots := []
