(** Accumulating wall-clock timers for phase and hot-path costs.

    A timer accumulates the total elapsed seconds and the number of
    timed intervals, so [total_s / count] is a mean cost per
    operation — the quantity the ROADMAP's "as fast as the hardware
    allows" goal is tracked against.

    {b Clock.} The default clock is [Unix.gettimeofday]. The image
    this library targets has no monotonic-clock binding in the
    standard library, so a harness that links one injects it with
    {!set_clock}; everything downstream — spans, manifests — then
    uses it. The harnesses do exactly that: [bin/obs_cli.ml] (all the
    [bin/*] tools) and [bench/main.ml] install bechamel's
    [clock_gettime(CLOCK_MONOTONIC)] stub at session start, so phase
    timings there never depend on [Unix.gettimeofday]. Timings are
    measurements, never test assertions, so library code running
    without a harness (unit tests) still gets correct-enough wall
    clock from the default. *)

type t

val create : unit -> t
(** A fresh timer with no recorded intervals. Prefer
    {!Registry.timer} for metrics that should appear in manifests. *)

val time : t -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()], adding its elapsed time to [t] (one
    interval), even if [f] raises. *)

val start : t -> unit
(** Open an interval by hand (for code that cannot be wrapped in a
    closure). A second [start] before {!stop} restarts the interval. *)

val stop : t -> unit
(** Close the interval opened by {!start} and accumulate it. A [stop]
    without a pending [start] is ignored. *)

val add_s : t -> float -> unit
(** Accumulate one externally measured interval of [dt] seconds — for
    stages whose endpoints are recorded clock readings rather than a
    wrappable closure (the server's per-request stage breakdown).
    Negative [dt] is clamped to zero; capture-aware like {!time}. *)

val count : t -> int
(** Number of accumulated intervals. *)

val total_s : t -> float
(** Total accumulated seconds. *)

val mean_s : t -> float
(** [total_s / count]; [0.] when nothing was recorded. *)

val reset : t -> unit

(** {1 Domain-local capture}

    Same contract as {!Counter.capture_begin} — see there for the full
    story. While a capture is open on this domain, {!time},
    {!start}/{!stop} accumulate into a private delta (including the
    pending-interval state, so paired start/stop inside a parallel
    task never touches the shared cell); {!apply} folds closed deltas
    in at the join barrier. Interval {e counts} merge
    deterministically; the accumulated seconds are wall-clock and
    therefore vary run to run (doc/PARALLELISM.md, determinism
    contract). *)

type frame
type deltas

val capture_begin : unit -> frame
val capture_end : frame -> deltas
val apply : deltas -> unit

(** {1 Clock injection} *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (seconds as a float; only differences are
    used). Affects all timers and {!Span}s. *)

val now_s : unit -> float
(** Read the current clock. *)
