(** The GC/runtime sampler: minor/major collection counts, major-heap
    words and cumulative minor-word allocation as registry gauges
    ([gc.minor_collections], [gc.major_collections], [gc.heap_words],
    [gc.minor_words]), refreshed from [Gc.quick_stat] — no heap walk.

    {!Span} calls {!sample} at every span boundary, so any run with
    spans (all harnesses) carries final runtime figures in its
    manifest, and a traced run additionally gets [gc.*] counter-sample
    events rendering as counter tracks in Perfetto, aligned with the
    span slices that caused the allocation. *)

val sample : unit -> unit
(** Refresh the four gauges; additionally emit one trace counter
    sample per collection/heap gauge when the stream is
    {!Trace.active}. A no-op when the registry is disabled. *)
