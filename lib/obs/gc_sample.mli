(** The GC/runtime sampler: minor/major collection counts, major-heap
    words and cumulative minor-word allocation as registry gauges
    ([gc.minor_collections], [gc.major_collections], [gc.heap_words],
    [gc.minor_words]), refreshed from [Gc.quick_stat] — no heap walk.
    Process RSS ({!Resource}) is sampled in the same call, so the two
    families always move together.

    {!Span} calls {!sample} at every span boundary, so any run with
    spans (all harnesses) carries final runtime figures in its
    manifest, and a traced run additionally gets [gc.*] counter-sample
    events rendering as counter tracks in Perfetto, aligned with the
    span slices that caused the allocation. The telemetry sampler
    ({!Series}) calls it every tick with [~trace:false]. *)

val sample : ?trace:bool -> unit -> unit
(** Refresh the four gauges (plus the [proc.*] gauges via
    {!Resource.sample}); with [trace] (default [true]) an active
    trace stream additionally gets one counter event per
    collection/heap gauge. Background sampler threads pass
    [~trace:false] — they must not inject events at nondeterministic
    stream positions. A no-op when the registry is disabled. *)
