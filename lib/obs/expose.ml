(* Telemetry exposition: renderers for the registry (Prometheus text,
   JSON snapshot) and a unix-domain-socket listener serving them to an
   attached consumer (bin/sftop, curl --unix-socket, a Prometheus
   node_exporter textfile shim).

   Protocol (deliberately minimal, hand-rolled like every other format
   in this repo): the client connects, sends one command line —

     metrics   Prometheus text exposition of the registry
     json      one-line JSON snapshot {"ts":..,"scrapes":..,"metrics":{..}}
     series    the Series ring dump (Series.to_json)
     ping      liveness check, answers "pong"

   — and the server writes the response body and closes the
   connection (EOF is the framing).  Every scrape command first takes
   a fresh Series sample, so attaching consumers see current GC/RSS
   gauges even between background ticks.

   The accept loop runs on a systhread with a select timeout, so
   [stop] is prompt and the main domain's compute is undisturbed (the
   listener shares the runtime lock; request handling is microseconds
   of formatting).  Like the Series sampler it never opens capture
   frames and never emits trace events. *)

let c_scrapes = Registry.counter "telemetry.scrapes"

(* --- Prometheus text exposition ------------------------------------ *)

(* metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*; we map everything
   else to '_' and prefix "sf_" (which also fixes leading digits) *)
let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name
  |> ( ^ ) "sf_"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let render_prometheus_for metrics =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, m) ->
      let base = sanitize name in
      match m with
      | Registry.Counter c ->
        line "# TYPE %s_total counter" base;
        line "%s_total %d" base (Counter.value c)
      | Registry.Timer t ->
        line "# TYPE %s_seconds_total counter" base;
        line "%s_seconds_total %s" base (prom_float (Timer.total_s t));
        line "# TYPE %s_count counter" base;
        line "%s_count %d" base (Timer.count t)
      | Registry.Gauge g ->
        if Registry.gauge_set g then begin
          line "# TYPE %s gauge" base;
          line "%s %s" base (prom_float (Registry.gauge_value g))
        end
      | Registry.Histo h ->
        line "# TYPE %s summary" base;
        if Histo.count h > 0 then begin
          line {|%s{quantile="0.5"} %s|} base (prom_float (Histo.quantile h 0.5));
          line {|%s{quantile="0.95"} %s|} base (prom_float (Histo.quantile h 0.95));
          line {|%s{quantile="0.99"} %s|} base (prom_float (Histo.quantile h 0.99));
          line {|%s{quantile="0.999"} %s|} base (prom_float (Histo.quantile h 0.999))
        end;
        line "%s_sum %s" base (prom_float (Histo.sum h));
        line "%s_count %d" base (Histo.count h))
    metrics;
  Buffer.contents b

let render_prometheus () = render_prometheus_for (Registry.all ())

let render_json ~scrapes () =
  Printf.sprintf {|{"ts":%s,"scrapes":%d,"metrics":%s}|}
    (Export.json_float (Timer.now_s ()))
    scrapes (Export.metrics_json ())

(* --- the socket listener ------------------------------------------- *)

type listener = {
  l_path : string;
  l_fd : Unix.file_descr;
  l_series : Series.t;
  mutable l_scrapes : int;
  mutable l_running : bool;
  mutable l_thread : Thread.t option;
}

let path l = l.l_path
let scrapes l = l.l_scrapes

(* A client that disconnects mid-response (sftop killed between
   scrapes, a reader closing during a large [series] dump) surfaces
   here as EPIPE/ECONNRESET — client-gone, not an error.  SIGPIPE is
   ignored in [serve]; with the default disposition the signal would
   terminate the monitored process before EPIPE could be raised. *)
let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | 0 -> ()
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let first_line s =
  match String.index_opt s '\n' with Some i -> Some (String.sub s 0 i) | None -> None

(* Read until the first newline (the command line), EOF, 2 s of
   silence, or 4096 bytes — whichever first. *)
let read_command fd =
  let acc = Buffer.create 32 in
  let chunk = Bytes.create 256 in
  let rec go () =
    match first_line (Buffer.contents acc) with
    | Some line -> Some line
    | None ->
      if Buffer.length acc > 4096 then None
      else (
        match Unix.select [ fd ] [] [] 2.0 with
        | [], _, _ -> None
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> if Buffer.length acc > 0 then Some (Buffer.contents acc) else None
          | n ->
            Buffer.add_subbytes acc chunk 0 n;
            go ()))
  in
  Option.map String.trim (go ())

let handle_client l client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      match read_command client with
      | None -> ()
      | Some cmd -> (
        let scrape render =
          Series.sample l.l_series;
          l.l_scrapes <- l.l_scrapes + 1;
          Counter.incr c_scrapes;
          render ()
        in
        let body =
          match cmd with
          | "ping" -> "pong\n"
          | "metrics" -> scrape render_prometheus
          | "json" -> scrape (fun () -> render_json ~scrapes:l.l_scrapes () ^ "\n")
          | "series" -> scrape (fun () -> Series.to_json l.l_series ^ "\n")
          | other -> Printf.sprintf "err unknown command %S\n" other
        in
        write_all client body))

let accept_loop l =
  while l.l_running do
    match Unix.select [ l.l_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept l.l_fd with
      | exception Unix.Unix_error _ -> ()
      | client, _ -> ( try handle_client l client with _ -> ()))
  done

(* Claiming a unix-domain path safely is the same problem for every
   long-lived listener in the repo; the discipline lives in Sock and
   is re-exported here so existing callers keep their name. *)
let claim_unix_path = Sock.claim_unix_path

let serve ?(backlog = 8) ~series ~path () =
  (* Sock.bind_unix also ignores SIGPIPE process-wide: a departing
     client must never kill the run it monitors — writing a response
     to a half-closed socket raises EPIPE (handled in [write_all]). *)
  let fd = Sock.bind_unix ~backlog ~who:"Expose.serve" path in
  let l =
    { l_path = path; l_fd = fd; l_series = series; l_scrapes = 0; l_running = true; l_thread = None }
  in
  l.l_thread <- Some (Thread.create accept_loop l);
  l

let stop l =
  match l.l_thread with
  | None -> ()
  | Some th ->
    l.l_running <- false;
    Thread.join th;
    l.l_thread <- None;
    (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink l.l_path with Unix.Unix_error _ -> ())

(* --- manifest extras ----------------------------------------------- *)

(* raw JSON values for Export.write_manifest ~extra; present in every
   manifest whether or not telemetry was on, so the shape checks can
   assert them unconditionally *)
let manifest_extras ?listener () =
  [
    ("rss_peak_bytes", string_of_int (Resource.rss_peak_bytes ()));
    ( "telemetry_scrapes",
      string_of_int (match listener with Some l -> l.l_scrapes | None -> 0) );
  ]
