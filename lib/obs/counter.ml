type t = { mutable n : int }

(* Domain-local capture: while a capture is open on the current domain
   (Pool workers, via Shard), updates land in a private delta list
   instead of the shared cell, and are folded in deterministically at
   the join barrier.  The common sequential path pays one domain-local
   read per update. *)

type delta = { c_target : t; mutable c_add : int }
type deltas = delta list
type frame = delta list ref option

let slot : delta list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture_begin () : frame =
  let s = Domain.DLS.get slot in
  let prev = !s in
  s := Some (ref []);
  prev

let capture_end (prev : frame) : deltas =
  let s = Domain.DLS.get slot in
  let ds = match !s with Some buf -> List.rev !buf | None -> [] in
  s := prev;
  ds

let create () = { n = 0 }

(* the delta list stays tiny (a handful of distinct counters per task),
   so a physical-equality scan beats any keyed structure *)
let record t d =
  match !(Domain.DLS.get slot) with
  | None -> t.n <- t.n + d
  | Some buf ->
    let rec bump = function
      | [] -> buf := { c_target = t; c_add = d } :: !buf
      | cell :: _ when cell.c_target == t -> cell.c_add <- cell.c_add + d
      | _ :: rest -> bump rest
    in
    bump !buf

let incr t = record t 1

let add t d =
  if d < 0 then invalid_arg "Counter.add: negative delta (counters are monotone)";
  record t d

let apply ds = List.iter (fun d -> record d.c_target d.c_add) ds

let value t = t.n
let reset t = t.n <- 0
