type t = { mutable n : int }

let create () = { n = 0 }
let incr t = t.n <- t.n + 1

let add t d =
  if d < 0 then invalid_arg "Counter.add: negative delta (counters are monotone)";
  t.n <- t.n + d

let value t = t.n
let reset t = t.n <- 0
