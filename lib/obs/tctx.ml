(* Cross-process trace correlation: a trace id names one logical
   request (or one grid task) across every process that touches it, a
   span id names one process's piece of the work.  Ids are derived by
   pure integer mixing from (seed, request id) — never from Random or
   a clock — so a fixed-seed run names its spans identically on every
   execution, and the wire bytes that carry a context are themselves
   deterministic. *)

type t = { trace : int; span : int }

(* splitmix64-style finalizer restricted to OCaml's 63-bit int: two
   xor-shift-multiply rounds with odd constants (the splitmix64 ones,
   truncated to fit a 63-bit literal), then mask the sign bit away so
   the id is always non-negative (varint-encodable, printable as 16
   hex digits without 2^63 overflow games). *)
let mix a b =
  let z = a lxor (b * 0x1E3779B97F4A7C15) in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let derive ~seed ~id =
  let trace = mix (mix seed 0x7472616365) id (* "trace" *) in
  { trace; span = mix trace 0 }

let child t ~key = { t with span = mix t.span (key + 1) }

let to_hex v = Printf.sprintf "%016x" v

let args t =
  [ ("trace", Trace.Str (to_hex t.trace)); ("span", Trace.Str (to_hex t.span)) ]
