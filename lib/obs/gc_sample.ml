(* OCaml runtime gauges, refreshed from Gc.quick_stat at span
   boundaries (Span calls sample): cheap enough to ride every phase
   change, heavy enough not to belong in per-request hot paths.
   Process RSS (Resource) is sampled in the same breath, so any run
   with spans carries memory figures in its manifest. *)

let g_minor = Registry.gauge "gc.minor_collections"
let g_major = Registry.gauge "gc.major_collections"
let g_heap_words = Registry.gauge "gc.heap_words"
let g_minor_words = Registry.gauge "gc.minor_words"

(* [trace=false] is the telemetry sampler's path: a background thread
   must not inject counter events into the trace stream at
   nondeterministic positions (doc/OBSERVABILITY.md) *)
let sample ?(trace = true) () =
  if Registry.enabled () then begin
    let s = Gc.quick_stat () in
    let minor = float_of_int s.Gc.minor_collections in
    let major = float_of_int s.Gc.major_collections in
    let heap = float_of_int s.Gc.heap_words in
    Registry.set_gauge g_minor minor;
    Registry.set_gauge g_major major;
    Registry.set_gauge g_heap_words heap;
    Registry.set_gauge g_minor_words s.Gc.minor_words;
    if trace && Trace.active () then begin
      Trace.counter "gc.minor_collections" minor;
      Trace.counter "gc.major_collections" major;
      Trace.counter "gc.heap_words" heap
    end;
    Resource.sample ~trace ()
  end
