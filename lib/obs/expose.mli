(** Telemetry exposition: registry renderers (Prometheus text, JSON
    snapshot) and a unix-domain-socket listener serving them live.

    The listener speaks a one-command-per-connection line protocol:
    the client sends [metrics], [json], [series] or [ping] followed by
    a newline; the server writes the response body and closes (EOF is
    the framing). Every scrape command first takes a fresh
    {!Series.sample}, so attached consumers ([bin/sftop]) see current
    GC and RSS gauges even between background ticks. The grammar and
    a walkthrough live in [doc/OBSERVABILITY.md], "Live telemetry".

    The accept loop runs on a systhread with a select timeout: it
    shares the main domain's runtime lock, never opens capture frames
    and never emits trace events, so determinism guarantees hold
    unchanged with telemetry enabled. *)

(** {1 Renderers} *)

val sanitize : string -> string
(** Registry name → Prometheus metric name: every character outside
    [[a-zA-Z0-9_]] becomes ['_'], prefixed with ["sf_"]. *)

val render_prometheus_for : (string * Registry.metric) list -> string
(** Prometheus text exposition of an explicit metric list (the golden
    test renders a fixed list for byte-stable output): counters as
    [_total], timers as [_seconds_total] + [_count], set gauges
    verbatim, histograms as summaries with [quantile] labels and
    [_sum]/[_count]. Unset gauges are omitted. *)

val render_prometheus : unit -> string
(** {!render_prometheus_for} over {!Registry.all}. *)

val render_json : scrapes:int -> unit -> string
(** One-line snapshot [{"ts":…,"scrapes":…,"metrics":{…}}] with
    {!Export.metrics_json} as the payload. *)

(** {1 The listener} *)

val claim_unix_path : who:string -> string -> unit
(** Alias of {!Sock.claim_unix_path}, kept so existing callers read
    naturally: make a filesystem path safe to bind a fresh unix-domain
    stream socket at — a stale socket left by a dead process is
    unlinked and reclaimed; anything else is refused. Every long-lived
    listener in the repo (this one, [lib/serve], [lib/fabric]) shares
    the one implementation.
    @raise Invalid_argument on an empty path, one at or beyond the
    [sun_path] limit (104 chars), or an unreclaimable [path]. *)

type listener

val serve : ?backlog:int -> series:Series.t -> path:string -> unit -> listener
(** Bind a unix-domain stream socket at [path] and start answering on
    a background thread. A stale socket left by a dead run is
    unlinked and reclaimed; anything else at [path] — a regular file,
    or a socket another live process still answers on — is refused.
    Also ignores SIGPIPE process-wide, so a client disconnecting
    mid-response surfaces as EPIPE (treated as client-gone) rather
    than killing the monitored run.
    @raise Invalid_argument on an empty path, one at or beyond the
    [sun_path] limit (104 chars), or an unreclaimable [path]; socket
    errors propagate as [Unix.Unix_error]. *)

val stop : listener -> unit
(** Stop the accept loop (prompt: the loop polls at 200 ms), join its
    thread, close and unlink the socket. Idempotent. *)

val path : listener -> string

val scrapes : listener -> int
(** Scrape commands served so far ([ping] and unknown commands do not
    count). This exact count feeds the [telemetry_scrapes] manifest
    extra; the [telemetry.scrapes] registry counter tracks the same
    quantity as a metric. *)

(** {1 Manifest extras} *)

val manifest_extras : ?listener:listener -> unit -> (string * string) list
(** [[("rss_peak_bytes", …); ("telemetry_scrapes", …)]] as raw-JSON
    pairs for [Export.write_manifest ~extra] — present in every
    manifest (zero scrapes without a listener) so shape checks can
    assert them unconditionally. *)
