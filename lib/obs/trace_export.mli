(** Trace sinks that persist the event stream: a streaming JSONL form
    and the Chrome trace-event / Perfetto JSON form.

    {b JSONL} writes one JSON object per event as it arrives — the
    form to tail, grep, or feed to external analysis; nothing is
    buffered beyond the channel.

    {b Perfetto} buffers rendered records and writes one
    [{"traceEvents": [...]}] document on close, loadable directly in
    {{:https://ui.perfetto.dev}ui.perfetto.dev} (or
    [chrome://tracing]). [Begin]/[End] pairs are matched by nesting
    into complete ([{"ph":"X"}]) slices, instants become ["i"] and
    counter samples ["C"] records; timestamps are microseconds
    relative to the first event. A run that raised mid-span has its
    unmatched [Begin]s closed at the last seen timestamp.

    The harnesses pick the form from the [--trace FILE] extension:
    [.jsonl] streams, anything else (canonically [.json]) is
    Perfetto. *)

val event_jsonl : Trace.event -> string
(** One event as a single-line JSON object:
    [{"seq", "ts", "ph", "name", "value"?, "args"?}]. *)

val jsonl_sink : ?close:(unit -> unit) -> out_channel -> Trace.sink
(** Stream events to an open channel, one line each; [close] runs
    after the final flush. The channel is not closed unless [close]
    does so. *)

val jsonl_file : string -> Trace.sink
(** {!jsonl_sink} on a fresh file (truncating); detaching closes it. *)

val perfetto_json : Trace.event list -> string
(** Pure rendering of an event list (e.g. a {!Flight} buffer) as a
    complete trace-event document. *)

val perfetto_sink : (string -> unit) -> Trace.sink
(** Buffering Perfetto sink; the callback receives the finished
    document exactly once, on detach. *)

val perfetto_file : string -> Trace.sink
(** {!perfetto_sink} writing to [path] on detach (truncating). *)

val sink_for_path : string -> Trace.sink
(** [.jsonl] → {!jsonl_file}, anything else → {!perfetto_file}. *)

val attach_file : string -> Trace.id
(** [Trace.attach (sink_for_path path)] — the [--trace FILE] flag. *)
