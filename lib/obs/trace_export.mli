(** Trace sinks that persist the event stream: a streaming JSONL form
    and the Chrome trace-event / Perfetto JSON form.

    {b JSONL} writes one JSON object per event as it arrives — the
    form to tail, grep, or feed to external analysis; nothing is
    buffered beyond the channel.

    {b Perfetto} buffers rendered records and writes one
    [{"traceEvents": [...]}] document on close, loadable directly in
    {{:https://ui.perfetto.dev}ui.perfetto.dev} (or
    [chrome://tracing]). [Begin]/[End] pairs are matched by nesting
    into complete ([{"ph":"X"}]) slices, instants become ["i"] and
    counter samples ["C"] records; timestamps are microseconds
    relative to the first event. A run that raised mid-span has its
    unmatched [Begin]s closed at the last seen timestamp.

    {b Multi-process tracks.} An event whose args carry
    [("proc", Str name)] renders on a named track: each distinct name
    is assigned a Chrome "pid" in first-seen order and announced with
    a ["ph":"M"] [process_name] metadata record; span nesting is
    matched per track. Untagged events land on the default track
    (pid 1), whose name is the [?process] argument. This is the merged
    fleet timeline: the coordinator replays relayed worker events
    tagged [worker-N], and {!perfetto_of_tracks} merges per-process
    files (server, load) recorded separately.

    The harnesses pick the form from the [--trace FILE] extension:
    [.jsonl] streams, anything else (canonically [.json]) is
    Perfetto. *)

val proc_arg : string -> string * Trace.arg
(** [("proc", Str name)] — the arg that routes an event to track
    [name]. *)

val tag : proc:string -> Trace.event list -> Trace.event list
(** Add {!proc_arg}[ proc] to every event that does not already carry
    a track tag (events relayed with their own tag keep it). *)

val event_jsonl : Trace.event -> string
(** One event as a single-line JSON object:
    [{"seq", "ts", "ph", "name", "value"?, "args"?}]. *)

val jsonl_sink : ?close:(unit -> unit) -> out_channel -> Trace.sink
(** Stream events to an open channel, one line each; [close] runs
    after the final flush. The channel is not closed unless [close]
    does so. *)

val jsonl_file : string -> Trace.sink
(** {!jsonl_sink} on a fresh file (truncating); detaching closes it. *)

val perfetto_json : ?process:string -> Trace.event list -> string
(** Pure rendering of an event list (e.g. a {!Flight} buffer) as a
    complete trace-event document. [process] names the default track
    (default ["main"]). *)

val perfetto_sink : ?process:string -> (string -> unit) -> Trace.sink
(** Buffering Perfetto sink; the callback receives the finished
    document exactly once, on detach. *)

val perfetto_file : ?process:string -> string -> Trace.sink
(** {!perfetto_sink} writing to [path] on detach (truncating). *)

val merge_tracks : (string * Trace.event list) list -> Trace.event list
(** Sequence-ordered merge of per-process event lists: each track is
    sorted by its own sequence numbers (every process counts its
    events independently), tagged with its track name, then merged by
    timestamp with a stable sort so equal stamps keep track order.
    Feeding the result to {!perfetto_json} yields one timeline with
    one named track per process. *)

val perfetto_of_tracks :
  ?process:string -> (string * Trace.event list) list -> string
(** [perfetto_json ?process (merge_tracks tracks)]. *)

val sink_for_path : ?process:string -> string -> Trace.sink
(** [.jsonl] → {!jsonl_file}, anything else → {!perfetto_file}. *)

val attach_file : ?process:string -> string -> Trace.id
(** [Trace.attach (sink_for_path path)] — the [--trace FILE] flag.
    [process] names the default Perfetto track (the tool: [server],
    [load], [coordinator]...). *)
