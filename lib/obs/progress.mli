(** Live progress reporting for long harness runs: a single
    carriage-return-overwritten stderr line with per-phase counts,
    elapsed time and a linear-extrapolation ETA — the [--progress]
    flag of [bench/main.exe] and [bin/sfsearch.exe].

    Display-only: nothing is registered in the metric registry and no
    trace events are emitted, so progress can stay on during [--no-obs]
    runs (it reports, it does not measure). *)

type t

val set_enabled : bool -> unit
(** Process-wide kill switch (default on). When off, reporters update
    their counts but write nothing — fabric {e worker} processes,
    which share the coordinator's terminal, turn this off so only the
    coordinator's consolidated line redraws. *)

val create : ?out:out_channel -> label:string -> total:int -> unit -> t
(** A reporter expecting [total] units of work ([total = 0] means
    unknown: counts are shown without an ETA). [out] defaults to
    [stderr].
    @raise Invalid_argument on negative [total]. *)

val step : ?detail:string -> t -> unit
(** One unit done; redraw the line. [detail] names the unit just
    finished (an experiment id, a trial number). *)

val finish : t -> unit
(** Final redraw terminated by a newline. Idempotent; further
    {!step}s are ignored. *)

val completed : t -> int
