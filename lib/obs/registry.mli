(** The process-wide named-metric registry.

    Instrumented modules declare their metrics once, at module
    initialisation ([let requests = Registry.counter "search.requests"]),
    and update them from hot paths; exporters ({!Export}) walk the
    registry to build run manifests. Names are dotted paths grouped by
    subsystem — ["search.requests"], ["gen.mori.build_s"],
    ["sim.messages"] — catalogued in [doc/OBSERVABILITY.md].

    {b Get-or-create.} Requesting an existing name with the same
    metric kind returns the {e same} instance (so a metric can be
    declared from several modules); requesting it with a different
    kind raises — a name collision is a bug in the instrumentation,
    not something to silently paper over.

    {b The kill switch.} {!set_enabled}[ false] (the [--no-obs] flag
    of the harnesses) turns every instrumentation site into a
    single-branch no-op: sites guard clock reads, histogram observes
    and span bookkeeping behind {!enabled}[ ()]. Declaring metrics
    remains allowed — they simply stay at zero. *)

(** {1 Enabling} *)

val set_enabled : bool -> unit
(** Default [true]. Flip before the run starts, not mid-phase. *)

val enabled : unit -> bool

(** {1 Declaring metrics}

    All declare functions
    @raise Invalid_argument on an empty name, a name with characters
    outside [[A-Za-z0-9._/,-]] plus the double-quote character (commas
    and quotes are admitted because both exporters escape them;
    whitespace and control characters are not), or a name already
    registered as a different kind. *)

val counter : string -> Counter.t
val timer : string -> Timer.t

val histo : ?base:float -> string -> Histo.t
(** [base] is only used on first creation. *)

type gauge
(** A point-in-time float (queue depth, event rate): the one
    non-monotone metric kind, small enough to live here rather than
    in its own module. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_set : gauge -> bool
(** Whether the gauge was ever set (distinguishes "0" from "never
    measured"). *)

(** {1 Domain-local gauge capture}

    Same contract as {!Counter.capture_begin}. A capture remembers the
    last value set per gauge; {!apply_gauges} replays them at the join
    barrier in task-index order, so "last write wins" is decided by
    index, not scheduling. Prefer the composed {!Shard} API.

    Get-or-create itself ({!counter}, {!timer}, {!histo}, {!gauge}) is
    protected by a mutex and safe to call from any domain — a few
    instrumentation sites register metrics lazily from hot paths. *)

type gauge_frame
type gauge_deltas

val gauge_capture_begin : unit -> gauge_frame
val gauge_capture_end : gauge_frame -> gauge_deltas
val apply_gauges : gauge_deltas -> unit

(** {1 Walking the registry} *)

type metric =
  | Counter of Counter.t
  | Timer of Timer.t
  | Histo of Histo.t
  | Gauge of gauge

val names : unit -> string list
(** All registered names, sorted. *)

val find : string -> metric option

val all : unit -> (string * metric) list
(** Sorted by name. *)

val reset_all : unit -> unit
(** Zero every metric, keeping registrations — the harness calls this
    between runs so manifests cover exactly one run. *)

val clear : unit -> unit
(** Forget all registrations. Only for tests: modules register their
    metrics at initialisation time and will not re-register. *)
