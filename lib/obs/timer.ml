let clock = ref Unix.gettimeofday
let set_clock f = clock := f
let now_s () = !clock ()

type t = { mutable total : float; mutable count : int; mutable started : float option }

(* Domain-local capture, same scheme as Counter: while a capture is
   open on this domain, intervals accumulate in a private delta and are
   folded in at the join barrier.  [started] lives in the delta too, so
   a start/stop pair inside a parallel task never touches the shared
   cell. *)

type delta = {
  t_target : t;
  mutable t_total : float;
  mutable t_count : int;
  mutable t_started : float option;
}

type deltas = delta list
type frame = delta list ref option

let slot : delta list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture_begin () : frame =
  let s = Domain.DLS.get slot in
  let prev = !s in
  s := Some (ref []);
  prev

let capture_end (prev : frame) : deltas =
  let s = Domain.DLS.get slot in
  let ds = match !s with Some buf -> List.rev !buf | None -> [] in
  s := prev;
  ds

let create () = { total = 0.; count = 0; started = None }

let cell_of buf t =
  let rec find = function
    | [] ->
      let cell = { t_target = t; t_total = 0.; t_count = 0; t_started = None } in
      buf := cell :: !buf;
      cell
    | cell :: _ when cell.t_target == t -> cell
    | _ :: rest -> find rest
  in
  find !buf

(* clock steps under gettimeofday can make dt negative; clamp so the
   accumulator stays monotone *)
let record t dt =
  let dt = Float.max 0. dt in
  match !(Domain.DLS.get slot) with
  | None ->
    t.total <- t.total +. dt;
    t.count <- t.count + 1
  | Some buf ->
    let cell = cell_of buf t in
    cell.t_total <- cell.t_total +. dt;
    cell.t_count <- cell.t_count + 1

(* merge a closed delta: totals and counts in one shot, preserving the
   per-interval clamping already applied by [record] *)
let absorb t ~total ~count =
  match !(Domain.DLS.get slot) with
  | None ->
    t.total <- t.total +. total;
    t.count <- t.count + count
  | Some buf ->
    let cell = cell_of buf t in
    cell.t_total <- cell.t_total +. total;
    cell.t_count <- cell.t_count + count

let apply ds =
  List.iter (fun d -> if d.t_count > 0 then absorb d.t_target ~total:d.t_total ~count:d.t_count) ds

let add_s = record

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f

let start t =
  match !(Domain.DLS.get slot) with
  | None -> t.started <- Some (now_s ())
  | Some buf -> (cell_of buf t).t_started <- Some (now_s ())

let stop t =
  let finish cell_started set_started =
    match cell_started with
    | None -> ()
    | Some t0 ->
      set_started None;
      record t (now_s () -. t0)
  in
  match !(Domain.DLS.get slot) with
  | None -> finish t.started (fun v -> t.started <- v)
  | Some buf ->
    let cell = cell_of buf t in
    finish cell.t_started (fun v -> cell.t_started <- v)

let count t = t.count
let total_s t = t.total
let mean_s t = if t.count = 0 then 0. else t.total /. float_of_int t.count

let reset t =
  t.total <- 0.;
  t.count <- 0;
  t.started <- None
