let clock = ref Unix.gettimeofday
let set_clock f = clock := f
let now_s () = !clock ()

type t = { mutable total : float; mutable count : int; mutable started : float option }

let create () = { total = 0.; count = 0; started = None }

let record t dt =
  (* clock steps under gettimeofday can make dt negative; clamp so the
     accumulator stays monotone *)
  t.total <- t.total +. Float.max 0. dt;
  t.count <- t.count + 1

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f

let start t = t.started <- Some (now_s ())

let stop t =
  match t.started with
  | None -> ()
  | Some t0 ->
    t.started <- None;
    record t (now_s () -. t0)

let count t = t.count
let total_s t = t.total
let mean_s t = if t.count = 0 then 0. else t.total /. float_of_int t.count

let reset t =
  t.total <- 0.;
  t.count <- 0;
  t.started <- None
