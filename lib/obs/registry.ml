type metric =
  | Counter of Counter.t
  | Timer of Timer.t
  | Histo of Histo.t
  | Gauge of gauge

and gauge = { mutable g_value : float; mutable g_set : bool }

let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let insertion_order : string list ref = ref []

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let kind_name = function
  | Counter _ -> "counter"
  | Timer _ -> "timer"
  | Histo _ -> "histogram"
  | Gauge _ -> "gauge"

let check_name name =
  if name = "" then invalid_arg "Registry: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' -> ()
      | _ -> invalid_arg (Printf.sprintf "Registry: bad character %C in metric name %S" c name))
    name

let find_or_add name ~make ~cast =
  check_name name;
  match Hashtbl.find_opt table name with
  | Some m -> (
    match cast m with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: metric %S already registered as a %s" name (kind_name m)))
  | None ->
    let m, x = make () in
    Hashtbl.replace table name m;
    insertion_order := name :: !insertion_order;
    x

let counter name =
  find_or_add name
    ~make:(fun () ->
      let c = Counter.create () in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | _ -> None)

let timer name =
  find_or_add name
    ~make:(fun () ->
      let t = Timer.create () in
      (Timer t, t))
    ~cast:(function Timer t -> Some t | _ -> None)

let histo ?base name =
  find_or_add name
    ~make:(fun () ->
      let h = Histo.create ?base () in
      (Histo h, h))
    ~cast:(function Histo h -> Some h | _ -> None)

let gauge name =
  find_or_add name
    ~make:(fun () ->
      let g = { g_value = 0.; g_set = false } in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let set_gauge g v =
  g.g_value <- v;
  g.g_set <- true

let gauge_value g = g.g_value
let gauge_set g = g.g_set

let names () = List.sort compare !insertion_order
let find name = Hashtbl.find_opt table name

let all () = List.map (fun name -> (name, Hashtbl.find table name)) (names ())

let reset_all () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Counter.reset c
      | Timer t -> Timer.reset t
      | Histo h -> Histo.reset h
      | Gauge g ->
        g.g_value <- 0.;
        g.g_set <- false)
    table

let clear () =
  Hashtbl.reset table;
  insertion_order := []
