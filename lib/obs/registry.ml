type metric =
  | Counter of Counter.t
  | Timer of Timer.t
  | Histo of Histo.t
  | Gauge of gauge

and gauge = { mutable g_value : float; mutable g_set : bool }

let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let insertion_order : string list ref = ref []

(* The table is mostly populated at module initialisation (single
   domain), but a few sites register lazily from hot paths — e.g. the
   per-strategy request counters in Sf_search.Runner — which under the
   Pool can happen on a worker domain.  One mutex around every table
   access keeps get-or-create atomic; metric *updates* don't take it
   (they go through the capture layer instead). *)
let table_lock = Mutex.create ()

let locked f =
  Mutex.lock table_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_lock) f

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let kind_name = function
  | Counter _ -> "counter"
  | Timer _ -> "timer"
  | Histo _ -> "histogram"
  | Gauge _ -> "gauge"

let check_name name =
  if name = "" then invalid_arg "Registry: empty metric name";
  String.iter
    (fun c ->
      match c with
      (* commas and quotes are allowed because both exporters escape
         them (JSON via json_string, CSV via Sf_stats.Csv.escape_field);
         whitespace and control characters stay out *)
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' | ',' | '"' -> ()
      | _ -> invalid_arg (Printf.sprintf "Registry: bad character %C in metric name %S" c name))
    name

let find_or_add name ~make ~cast =
  check_name name;
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
        match cast m with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Registry: metric %S already registered as a %s" name (kind_name m)))
      | None ->
        let m, x = make () in
        Hashtbl.replace table name m;
        insertion_order := name :: !insertion_order;
        x)

let counter name =
  find_or_add name
    ~make:(fun () ->
      let c = Counter.create () in
      (Counter c, c))
    ~cast:(function Counter c -> Some c | _ -> None)

let timer name =
  find_or_add name
    ~make:(fun () ->
      let t = Timer.create () in
      (Timer t, t))
    ~cast:(function Timer t -> Some t | _ -> None)

let histo ?base name =
  find_or_add name
    ~make:(fun () ->
      let h = Histo.create ?base () in
      (Histo h, h))
    ~cast:(function Histo h -> Some h | _ -> None)

let gauge name =
  find_or_add name
    ~make:(fun () ->
      let g = { g_value = 0.; g_set = false } in
      (Gauge g, g))
    ~cast:(function Gauge g -> Some g | _ -> None)

(* Domain-local gauge capture, same scheme as Counter: a capture
   remembers the last value set per gauge; the join-barrier replay
   applies them in task order, so "last write wins" is decided by task
   index, not scheduling. *)

type gauge_delta = { gd_target : gauge; mutable gd_value : float }
type gauge_deltas = gauge_delta list
type gauge_frame = gauge_delta list ref option

let gauge_slot : gauge_delta list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let gauge_capture_begin () : gauge_frame =
  let s = Domain.DLS.get gauge_slot in
  let prev = !s in
  s := Some (ref []);
  prev

let gauge_capture_end (prev : gauge_frame) : gauge_deltas =
  let s = Domain.DLS.get gauge_slot in
  let ds = match !s with Some buf -> List.rev !buf | None -> [] in
  s := prev;
  ds

let set_gauge g v =
  match !(Domain.DLS.get gauge_slot) with
  | None ->
    g.g_value <- v;
    g.g_set <- true
  | Some buf ->
    let rec set = function
      | [] -> buf := { gd_target = g; gd_value = v } :: !buf
      | cell :: _ when cell.gd_target == g -> cell.gd_value <- v
      | _ :: rest -> set rest
    in
    set !buf

let apply_gauges ds = List.iter (fun d -> set_gauge d.gd_target d.gd_value) ds

let gauge_value g = g.g_value
let gauge_set g = g.g_set

let names () = locked (fun () -> List.sort compare !insertion_order)
let find name = locked (fun () -> Hashtbl.find_opt table name)

let all () =
  locked (fun () ->
      List.map
        (fun name -> (name, Hashtbl.find table name))
        (List.sort compare !insertion_order))

let reset_all () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Counter.reset c
          | Timer t -> Timer.reset t
          | Histo h -> Histo.reset h
          | Gauge g ->
            g.g_value <- 0.;
            g.g_set <- false)
        table)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      insertion_order := [])
