(* The process-wide structured event stream.  Peer of the metric
   registry: metrics aggregate, the stream remembers the sequence.
   Emission is gated on (a) at least one attached sink and (b) the
   registry kill switch, so an untraced or --no-obs run pays a single
   branch per site. *)

type arg = Int of int | Float of float | Str of string | Bool of bool | Ints of int list

type kind = Begin | End | Instant | Counter of float

type event = {
  seq : int;
  ts : float;
  name : string;
  kind : kind;
  args : (string * arg) list;
}

type sink = { descr : string; emit : event -> unit; close : unit -> unit }

type id = int

(* sinks kept in attach order; attach/detach are rare, emission is hot *)
let sinks : (id * sink) list ref = ref []
let next_id = ref 0
let seq = ref 0

let active () = (match !sinks with [] -> false | _ :: _ -> true) && Registry.enabled ()

let attach sink =
  incr next_id;
  let id = !next_id in
  sinks := !sinks @ [ (id, sink) ];
  id

let detach id =
  match List.assoc_opt id !sinks with
  | None -> ()
  | Some sink ->
    sinks := List.filter (fun (i, _) -> i <> id) !sinks;
    sink.close ()

let detach_all () =
  let closing = !sinks in
  sinks := [];
  List.iter (fun (_, s) -> s.close ()) closing

let attached () = List.length !sinks

(* Domain-local capture (see Counter for the scheme): while a capture
   is open, events are buffered with a zero sequence number; the pool
   replays buffers at the join barrier in task-index order, and only
   that replay touches the global counter and the sinks — so sinks
   remain single-domain and sequence numbers stay gap-free and
   deterministic for a fixed seed. *)

type frame = event list ref option

let slot : event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capturing () = Option.is_some !(Domain.DLS.get slot)

let capture_begin () : frame =
  let s = Domain.DLS.get slot in
  let prev = !s in
  s := Some (ref []);
  prev

let capture_end (prev : frame) : event list =
  let s = Domain.DLS.get slot in
  let events = match !s with Some buf -> List.rev !buf | None -> [] in
  s := prev;
  events

let dispatch e =
  incr seq;
  let e = { e with seq = !seq } in
  List.iter (fun (_, s) -> s.emit e) !sinks

let emit ?ts ?(args = []) name kind =
  if active () then begin
    let ts = match ts with Some t -> t | None -> Timer.now_s () in
    let e = { seq = 0; ts; name; kind; args } in
    match !(Domain.DLS.get slot) with
    | Some buf -> buf := e :: !buf
    | None -> dispatch e
  end

let replay events =
  match !(Domain.DLS.get slot) with
  | Some buf -> List.iter (fun e -> buf := e :: !buf) events
  | None -> if active () then List.iter dispatch events

let instant ?args name = emit ?args name Instant
let counter ?args name v = emit ?args name (Counter v)

let kind_tag = function Begin -> "B" | End -> "E" | Instant -> "i" | Counter _ -> "C"

let arg_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> s
  | Bool b -> string_of_bool b
  | Ints l -> String.concat ";" (List.map string_of_int l)

let event_to_line e =
  let args =
    match e.args with
    | [] -> ""
    | args ->
      " "
      ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (arg_to_string v)) args)
  in
  let value = match e.kind with Counter v -> Printf.sprintf " value=%.9g" v | _ -> "" in
  Printf.sprintf "#%d %.6f %s %s%s%s" e.seq e.ts (kind_tag e.kind) e.name value args

let reset () =
  detach_all ();
  seq := 0
