(* Bounded in-memory recorder: the last [capacity] events, overwriting
   the oldest.  The trigger is checked after the event is stored, so a
   dump always includes the event that fired it. *)

type trigger = { pred : Trace.event -> bool; action : t -> unit }

and t = {
  capacity : int;
  buf : Trace.event option array;
  mutable seen : int;
  mutable armed : trigger option;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Flight.create: need capacity >= 1";
  { capacity; buf = Array.make capacity None; seen = 0; armed = None }

let capacity t = t.capacity
let seen t = t.seen
let length t = min t.seen t.capacity
let dropped t = max 0 (t.seen - t.capacity)

let record t e =
  t.buf.(t.seen mod t.capacity) <- Some e;
  t.seen <- t.seen + 1;
  match t.armed with
  | Some { pred; action } when pred e ->
    (* disarm before acting so a dump that emits events cannot recurse *)
    t.armed <- None;
    action t
  | _ -> ()

let sink t =
  { Trace.descr = "flight"; emit = record t; close = (fun () -> ()) }

let events t =
  let n = length t in
  let first = t.seen - n in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.capacity) with Some e -> e | None -> assert false)

let arm t ~trigger ~action = t.armed <- Some { pred = trigger; action }
let disarm t = t.armed <- None

let dump ?(out = stderr) t =
  Printf.fprintf out "--- flight recorder: last %d of %d event(s)%s ---\n" (length t) t.seen
    (if dropped t > 0 then Printf.sprintf " (%d overwritten)" (dropped t) else "");
  List.iter (fun e -> output_string out (Trace.event_to_line e ^ "\n")) (events t);
  Printf.fprintf out "--- end flight recorder ---\n%!"

(* SIGUSR1 → dump: lets a stuck giant run be diagnosed from outside
   (kill -USR1 <pid>) without killing it.  Formatting a few hundred
   lines from a signal handler is not async-signal-safe in the C
   sense, but OCaml handlers run at safepoints in normal OCaml
   context, so channel output is fine here. *)
let install_sigusr1 ?out t =
  match Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump ?out t)) with
  | _prev -> true
  | exception (Invalid_argument _ | Sys_error _) ->
    (* platform without sigusr1 — the feature degrades to absent *)
    false
