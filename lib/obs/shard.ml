(* One domain's observability output for one parallel task, composed
   from the per-primitive capture layers.  The pool brackets every task
   in [capture] and folds the shards back with [merge] in task-index
   order at the join barrier — that fixed fold order is what makes
   metric totals and the event stream deterministic for a fixed seed
   at any job count (doc/PARALLELISM.md). *)

type t = {
  counters : Counter.deltas;
  timers : Timer.deltas;
  histos : Histo.deltas;
  gauges : Registry.gauge_deltas;
  events : Trace.event list;
}

type frame = {
  f_counters : Counter.frame;
  f_timers : Timer.frame;
  f_histos : Histo.frame;
  f_gauges : Registry.gauge_frame;
  f_events : Trace.frame;
}

let capturing = Trace.capturing

let capture_begin () =
  {
    f_counters = Counter.capture_begin ();
    f_timers = Timer.capture_begin ();
    f_histos = Histo.capture_begin ();
    f_gauges = Registry.gauge_capture_begin ();
    f_events = Trace.capture_begin ();
  }

let capture_end fr =
  {
    counters = Counter.capture_end fr.f_counters;
    timers = Timer.capture_end fr.f_timers;
    histos = Histo.capture_end fr.f_histos;
    gauges = Registry.gauge_capture_end fr.f_gauges;
    events = Trace.capture_end fr.f_events;
  }

let capture f =
  let fr = capture_begin () in
  match f () with
  | v -> (v, capture_end fr)
  | exception exn ->
    (* a failed task's observations are discarded: merging a partial
       shard would make totals depend on where the exception struck *)
    let bt = Printexc.get_raw_backtrace () in
    ignore (capture_end fr);
    Printexc.raise_with_backtrace exn bt

let merge s =
  Counter.apply s.counters;
  Timer.apply s.timers;
  Histo.apply s.histos;
  Registry.apply_gauges s.gauges;
  Trace.replay s.events

(* The cross-process sibling of [merge]: what a fabric worker relays
   over the control socket is a named-counter delta list plus its
   buffered events (Sf_fabric.Relay), not a full shard — timers and
   histograms stay process-local, and exact totals are reconciled from
   checkpoints at the end of the run (Sf_fabric.Coordinator). *)
let merge_remote ~proc ~counters ~events =
  List.iter
    (fun (name, v) -> if v > 0 then Counter.add (Registry.counter name) v)
    counters;
  Trace.replay (Trace_export.tag ~proc events)
