(** The process-wide structured event stream: every oracle request,
    generator checkpoint and simulator event as a timestamped record,
    fanned out to pluggable sinks.

    The stream is the sequencing peer of the metric {!Registry}: a
    counter says {e how many} requests a run made, the stream says
    {e when} each one happened and what it revealed — the sequence of
    oracle requests that the paper's complexity measure counts
    (PAPER.md, Lemma 1). Sinks include the {!Flight} recorder, the
    JSONL stream and the Perfetto exporter ({!Trace_export}).

    {b Zero cost when disabled.} An emission site pays one branch when
    no sink is attached or when the registry kill switch
    ({!Registry.set_enabled}[ false], the [--no-obs] flag) is down; no
    event is allocated and no clock is read. Instrumentation sites
    that must {e prepare} payloads (e.g. the oracle collecting the
    revealed-vertex list) guard the preparation behind {!active}. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Ints of int list  (** small vertex lists, e.g. revealed-by-request *)

type kind =
  | Begin  (** a phase opens (paired with [End] by name nesting) *)
  | End  (** the innermost open phase of this name closes *)
  | Instant  (** a point event — one oracle request, one checkpoint *)
  | Counter of float  (** a sampled value (queue depth, heap words) *)

type event = {
  seq : int;  (** 1-based global sequence number, gap-free per process *)
  ts : float;  (** seconds on the {!Timer.now_s} clock *)
  name : string;  (** dotted event name, same grammar as metric names *)
  kind : kind;
  args : (string * arg) list;  (** small payload, possibly empty *)
}

(** {1 Emitting} *)

val active : unit -> bool
(** True iff at least one sink is attached {e and} the registry is
    enabled. Sites with non-trivial payload preparation should guard
    on this before building [args]. *)

val emit : ?ts:float -> ?args:(string * arg) list -> string -> kind -> unit
(** Emit one event to every attached sink, in attach order. A no-op
    (single branch) when {!active} is false. [ts] overrides the
    {!Timer.now_s} stamp — for spans reconstructed after the fact from
    recorded clock readings (the server's stage breakdown, the load
    generator's per-request spans); pair such [Begin]/[End] events
    adjacently so renderer span stacks still match them up. *)

val instant : ?args:(string * arg) list -> string -> unit
val counter : ?args:(string * arg) list -> string -> float -> unit

(** {1 Domain-local capture}

    Sinks are plain closures and must only ever run on one domain.
    {!Sf_parallel.Pool} guarantees that by bracketing parallel tasks
    in a capture: while one is open on the current domain, {!emit}
    buffers events (with a zero [seq] and the emitting domain's
    timestamp) instead of touching the sinks; {!replay} at the join
    barrier — in task-index order, on the pool's caller — assigns the
    definitive sequence numbers and fans out. Sequence numbers are
    therefore gap-free and identical for a fixed seed at any job
    count; timestamps keep wall-clock truth and may interleave.
    Prefer the composed {!Shard} API over calling these directly. *)

type frame

val capturing : unit -> bool
(** True while a capture is open on the current domain — i.e. the code
    is running inside a parallel task. Sites that must side-step
    capture (e.g. attaching a sink) can refuse when this is set. *)

val capture_begin : unit -> frame
val capture_end : frame -> event list

val replay : event list -> unit
(** Re-emit captured events: assigns fresh sequence numbers and fans
    out to the attached sinks (dropped when none are attached), or
    re-buffers into the enclosing capture if one is open. *)

(** {1 Sinks} *)

type sink = {
  descr : string;  (** for diagnostics *)
  emit : event -> unit;  (** called synchronously per event *)
  close : unit -> unit;  (** flush and release; called exactly once on detach *)
}

type id

val attach : sink -> id
(** Attach; the sink sees every subsequent event until detached. *)

val detach : id -> unit
(** Remove the sink and call its [close]. Unknown ids are ignored. *)

val detach_all : unit -> unit
(** Detach and close every sink (harness shutdown path). *)

val attached : unit -> int
(** Number of attached sinks. *)

(** {1 Rendering helpers} *)

val kind_tag : kind -> string
(** Chrome trace-event phase letter: ["B"], ["E"], ["i"], ["C"]. *)

val arg_to_string : arg -> string
(** Flat rendering ([Ints] joined with [';'] — the CSV trace idiom). *)

val event_to_line : event -> string
(** One human-readable line (the {!Flight} dump format). *)

val reset : unit -> unit
(** Detach all sinks and restart the sequence counter. Only for
    tests. *)
