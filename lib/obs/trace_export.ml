(* Trace sinks: the streaming JSONL form (one object per line, written
   as events arrive) and the Chrome trace-event / Perfetto form
   (buffered, written on close as a {"traceEvents": [...]} document
   loadable in ui.perfetto.dev).  JSON is rendered by hand, as for
   manifests (Export).

   The Perfetto form is multi-process: an event carrying a
   ("proc", Str name) arg is routed to a named track (a Chrome "pid"),
   assigned in first-seen order and announced with a "process_name"
   metadata record; untagged events land on the default track.  This
   is how one document holds a whole fleet — the coordinator's own
   events plus relayed worker events, or a server and load timeline
   merged after the fact. *)

let proc_key = "proc"

let proc_arg name = (proc_key, Trace.Str name)

let args_json args =
  let arg_json = function
    | Trace.Int i -> string_of_int i
    | Trace.Float f -> Export.json_float f
    | Trace.Str s -> Export.json_string s
    | Trace.Bool b -> string_of_bool b
    | Trace.Ints l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]"
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Export.json_string k ^ ":" ^ arg_json v) args)
  ^ "}"

(* --- JSONL ---------------------------------------------------------- *)

let event_jsonl (e : Trace.event) =
  let value = match e.kind with Trace.Counter v -> Printf.sprintf ",\"value\":%s" (Export.json_float v) | _ -> "" in
  let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
  Printf.sprintf {|{"seq":%d,"ts":%s,"ph":%s,"name":%s%s%s}|} e.seq
    (Export.json_float e.ts)
    (Export.json_string (Trace.kind_tag e.kind))
    (Export.json_string e.name)
    value args

let jsonl_sink ?(close = fun () -> ()) oc =
  {
    Trace.descr = "jsonl";
    emit =
      (fun e ->
        output_string oc (event_jsonl e);
        output_char oc '\n');
    close =
      (fun () ->
        flush oc;
        close ());
  }

let jsonl_file path =
  let oc = open_out path in
  jsonl_sink ~close:(fun () -> close_out oc) oc

(* --- Chrome trace-event / Perfetto ---------------------------------- *)

(* Timestamps are microseconds relative to the first event.  Begin/End
   pairs become one complete ("ph":"X") slice each, matched by a
   per-track nesting stack; instants and counters pass through as "i"
   and "C" records on their track. *)

type renderer = {
  buf : Buffer.t;
  mutable t0 : float option;
  mutable last_us : float;
  procs : (string, int) Hashtbl.t;  (* track name -> pid, first-seen order *)
  mutable next_pid : int;
  open_spans : (int, (string * float * (string * Trace.arg) list) list) Hashtbl.t;
  mutable n_records : int;
}

let add_record r fields =
  if r.n_records > 0 then Buffer.add_char r.buf ',';
  Buffer.add_char r.buf '{';
  Buffer.add_string r.buf (String.concat "," fields);
  Buffer.add_char r.buf '}';
  r.n_records <- r.n_records + 1

let name_track r ~pid name =
  add_record r
    [
      {|"name":"process_name"|};
      {|"ph":"M"|};
      Printf.sprintf {|"pid":%d|} pid;
      {|"tid":1|};
      Printf.sprintf {|"args":{"name":%s}|} (Export.json_string name);
    ]

let renderer ?(process = "main") () =
  let r =
    {
      buf = Buffer.create 4096;
      t0 = None;
      last_us = 0.;
      procs = Hashtbl.create 8;
      next_pid = 2;
      open_spans = Hashtbl.create 8;
      n_records = 0;
    }
  in
  Hashtbl.add r.procs process 1;
  name_track r ~pid:1 process;
  r

(* the ("proc", _) arg is consumed here: it becomes the record's pid
   and is not repeated in the rendered args *)
let route r (e : Trace.event) =
  match List.assoc_opt proc_key e.args with
  | Some (Trace.Str p) -> (
    match Hashtbl.find_opt r.procs p with
    | Some pid -> pid
    | None ->
      let pid = r.next_pid in
      r.next_pid <- pid + 1;
      Hashtbl.add r.procs p pid;
      name_track r ~pid p;
      pid)
  | _ -> 1

let drop_proc args = List.filter (fun (k, _) -> k <> proc_key) args

let complete_slice r ~pid ~name ~ts_us ~dur_us ~args =
  add_record r
    [
      Printf.sprintf {|"name":%s|} (Export.json_string name);
      {|"ph":"X"|};
      Printf.sprintf {|"ts":%.3f|} ts_us;
      Printf.sprintf {|"dur":%.3f|} dur_us;
      Printf.sprintf {|"pid":%d|} pid;
      {|"tid":1|};
      Printf.sprintf {|"args":%s|} (args_json args);
    ]

let feed r (e : Trace.event) =
  let pid = route r e in
  let t0 = match r.t0 with Some t0 -> t0 | None -> r.t0 <- Some e.ts; e.ts in
  let ts_us = Float.max 0. ((e.ts -. t0) *. 1e6) in
  r.last_us <- Float.max r.last_us ts_us;
  let args = drop_proc e.args in
  let stack () = Option.value (Hashtbl.find_opt r.open_spans pid) ~default:[] in
  match e.kind with
  | Trace.Begin -> Hashtbl.replace r.open_spans pid ((e.name, ts_us, args) :: stack ())
  | Trace.End -> (
    match stack () with
    | [] -> () (* unmatched End: dropped, as Span.leave ignores it *)
    | (name, t_begin, bargs) :: rest ->
      Hashtbl.replace r.open_spans pid rest;
      complete_slice r ~pid ~name ~ts_us:t_begin
        ~dur_us:(Float.max 0. (ts_us -. t_begin))
        ~args:(bargs @ args))
  | Trace.Instant ->
    add_record r
      [
        Printf.sprintf {|"name":%s|} (Export.json_string e.name);
        {|"ph":"i"|};
        Printf.sprintf {|"ts":%.3f|} ts_us;
        Printf.sprintf {|"pid":%d|} pid;
        {|"tid":1|};
        {|"s":"t"|};
        Printf.sprintf {|"args":%s|} (args_json args);
      ]
  | Trace.Counter v ->
    add_record r
      [
        Printf.sprintf {|"name":%s|} (Export.json_string e.name);
        {|"ph":"C"|};
        Printf.sprintf {|"ts":%.3f|} ts_us;
        Printf.sprintf {|"pid":%d|} pid;
        Printf.sprintf {|"args":{"value":%s}|} (Export.json_float v);
      ]

let finish r =
  (* a run that raised mid-span leaves Begins unmatched: close them at
     the last seen timestamp so the slices still render.  Tracks are
     drained in pid order so the document is a pure function of the
     event sequence. *)
  let stacks =
    List.sort compare (Hashtbl.fold (fun pid spans acc -> (pid, spans) :: acc) r.open_spans [])
  in
  List.iter
    (fun (pid, spans) ->
      List.iter
        (fun (name, t_begin, args) ->
          complete_slice r ~pid ~name ~ts_us:t_begin
            ~dur_us:(Float.max 0. (r.last_us -. t_begin))
            ~args)
        spans)
    stacks;
  Hashtbl.reset r.open_spans;
  Printf.sprintf {|{"traceEvents":[%s],"displayTimeUnit":"ms"}|} (Buffer.contents r.buf)
  ^ "\n"

let perfetto_json ?process events =
  let r = renderer ?process () in
  List.iter (feed r) events;
  finish r

let perfetto_sink ?process write =
  let r = renderer ?process () in
  { Trace.descr = "perfetto"; emit = feed r; close = (fun () -> write (finish r)) }

let perfetto_file ?process path =
  perfetto_sink ?process (fun doc ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc))

(* --- multi-track merge ---------------------------------------------- *)

let tag ~proc events =
  List.map
    (fun (e : Trace.event) ->
      if List.mem_assoc proc_key e.args then e
      else { e with args = proc_arg proc :: e.args })
    events

let merge_tracks tracks =
  (* per-track order is sequence order (each process's own seq counter
     is strictly increasing); across tracks the merge is by timestamp,
     stable, so equal stamps keep track order *)
  let tagged =
    List.concat_map
      (fun (proc, events) ->
        let events =
          List.stable_sort (fun (a : Trace.event) b -> compare a.seq b.seq) events
        in
        tag ~proc events)
      tracks
  in
  List.stable_sort (fun (a : Trace.event) b -> Float.compare a.ts b.ts) tagged

let perfetto_of_tracks ?process tracks = perfetto_json ?process (merge_tracks tracks)

(* --- file-extension dispatch ---------------------------------------- *)

let sink_for_path ?process path =
  if Filename.check_suffix path ".jsonl" then jsonl_file path
  else perfetto_file ?process path

let attach_file ?process path = Trace.attach (sink_for_path ?process path)
