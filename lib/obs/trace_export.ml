(* Trace sinks: the streaming JSONL form (one object per line, written
   as events arrive) and the Chrome trace-event / Perfetto form
   (buffered, written on close as a {"traceEvents": [...]} document
   loadable in ui.perfetto.dev).  JSON is rendered by hand, as for
   manifests (Export). *)

let args_json args =
  let arg_json = function
    | Trace.Int i -> string_of_int i
    | Trace.Float f -> Export.json_float f
    | Trace.Str s -> Export.json_string s
    | Trace.Bool b -> string_of_bool b
    | Trace.Ints l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]"
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Export.json_string k ^ ":" ^ arg_json v) args)
  ^ "}"

(* --- JSONL ---------------------------------------------------------- *)

let event_jsonl (e : Trace.event) =
  let value = match e.kind with Trace.Counter v -> Printf.sprintf ",\"value\":%s" (Export.json_float v) | _ -> "" in
  let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
  Printf.sprintf {|{"seq":%d,"ts":%s,"ph":%s,"name":%s%s%s}|} e.seq
    (Export.json_float e.ts)
    (Export.json_string (Trace.kind_tag e.kind))
    (Export.json_string e.name)
    value args

let jsonl_sink ?(close = fun () -> ()) oc =
  {
    Trace.descr = "jsonl";
    emit =
      (fun e ->
        output_string oc (event_jsonl e);
        output_char oc '\n');
    close =
      (fun () ->
        flush oc;
        close ());
  }

let jsonl_file path =
  let oc = open_out path in
  jsonl_sink ~close:(fun () -> close_out oc) oc

(* --- Chrome trace-event / Perfetto ---------------------------------- *)

(* Timestamps are microseconds relative to the first event.  Begin/End
   pairs become one complete ("ph":"X") slice each, matched by the
   nesting stack the single-threaded harness guarantees; instants and
   counters pass through as "i" and "C" records. *)

type renderer = {
  buf : Buffer.t;
  mutable t0 : float option;
  mutable last_us : float;
  mutable open_spans : (string * float * (string * Trace.arg) list) list;
  mutable n_records : int;
}

let renderer () = { buf = Buffer.create 4096; t0 = None; last_us = 0.; open_spans = []; n_records = 0 }

let add_record r fields =
  if r.n_records > 0 then Buffer.add_char r.buf ',';
  Buffer.add_char r.buf '{';
  Buffer.add_string r.buf (String.concat "," fields);
  Buffer.add_char r.buf '}';
  r.n_records <- r.n_records + 1

let complete_slice r ~name ~ts_us ~dur_us ~args =
  add_record r
    [
      Printf.sprintf {|"name":%s|} (Export.json_string name);
      {|"ph":"X"|};
      Printf.sprintf {|"ts":%.3f|} ts_us;
      Printf.sprintf {|"dur":%.3f|} dur_us;
      {|"pid":1|};
      {|"tid":1|};
      Printf.sprintf {|"args":%s|} (args_json args);
    ]

let feed r (e : Trace.event) =
  let t0 = match r.t0 with Some t0 -> t0 | None -> r.t0 <- Some e.ts; e.ts in
  let ts_us = Float.max 0. ((e.ts -. t0) *. 1e6) in
  r.last_us <- Float.max r.last_us ts_us;
  match e.kind with
  | Trace.Begin -> r.open_spans <- (e.name, ts_us, e.args) :: r.open_spans
  | Trace.End -> (
    match r.open_spans with
    | [] -> () (* unmatched End: dropped, as Span.leave ignores it *)
    | (name, t_begin, args) :: rest ->
      r.open_spans <- rest;
      complete_slice r ~name ~ts_us:t_begin ~dur_us:(Float.max 0. (ts_us -. t_begin))
        ~args:(args @ e.args))
  | Trace.Instant ->
    add_record r
      [
        Printf.sprintf {|"name":%s|} (Export.json_string e.name);
        {|"ph":"i"|};
        Printf.sprintf {|"ts":%.3f|} ts_us;
        {|"pid":1|};
        {|"tid":1|};
        {|"s":"t"|};
        Printf.sprintf {|"args":%s|} (args_json e.args);
      ]
  | Trace.Counter v ->
    add_record r
      [
        Printf.sprintf {|"name":%s|} (Export.json_string e.name);
        {|"ph":"C"|};
        Printf.sprintf {|"ts":%.3f|} ts_us;
        {|"pid":1|};
        Printf.sprintf {|"args":{"value":%s}|} (Export.json_float v);
      ]

let finish r =
  (* a run that raised mid-span leaves Begins unmatched: close them at
     the last seen timestamp so the slices still render *)
  List.iter
    (fun (name, t_begin, args) ->
      complete_slice r ~name ~ts_us:t_begin ~dur_us:(Float.max 0. (r.last_us -. t_begin)) ~args)
    r.open_spans;
  r.open_spans <- [];
  Printf.sprintf {|{"traceEvents":[%s],"displayTimeUnit":"ms"}|} (Buffer.contents r.buf)
  ^ "\n"

let perfetto_json events =
  let r = renderer () in
  List.iter (feed r) events;
  finish r

let perfetto_sink write =
  let r = renderer () in
  { Trace.descr = "perfetto"; emit = feed r; close = (fun () -> write (finish r)) }

let perfetto_file path =
  perfetto_sink (fun doc ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc))

(* --- file-extension dispatch ---------------------------------------- *)

let sink_for_path path =
  if Filename.check_suffix path ".jsonl" then jsonl_file path else perfetto_file path

let attach_file path = Trace.attach (sink_for_path path)
