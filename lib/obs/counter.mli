(** Monotonic event counters — the unit of account of the paper's
    complexity measure.

    Lemma 1 (and every bound built on it) is a statement about the
    {e number of oracle requests} a searcher makes; a counter is the
    runtime object that carries such a count out of a hot loop and
    into a run manifest. Counters are plain single-word mutable cells:
    OCaml mutates one machine word per [incr], so they are
    lock-free-by-construction — no locks, no atomics, no allocation
    on the update path.

    Counters only ever grow ({!incr}, {!add} with a non-negative
    delta); {!reset} exists for the harness between runs, not for
    instrumented code. *)

type t

val create : unit -> t
(** A fresh counter at zero. Prefer {!Registry.counter} for metrics
    that should appear in manifests. *)

val incr : t -> unit
(** Add one. *)

val add : t -> int -> unit
(** Add a non-negative delta.
    @raise Invalid_argument on a negative delta (counters are
    monotone; use a {!Registry.gauge} for values that move both
    ways). *)

val value : t -> int
(** Current count. *)

val reset : t -> unit
(** Back to zero — for the harness between runs. *)
