(** Monotonic event counters — the unit of account of the paper's
    complexity measure.

    Lemma 1 (and every bound built on it) is a statement about the
    {e number of oracle requests} a searcher makes; a counter is the
    runtime object that carries such a count out of a hot loop and
    into a run manifest. Counters are plain single-word mutable cells:
    OCaml mutates one machine word per [incr], so they are
    lock-free-by-construction — no locks, no atomics, no allocation
    on the update path.

    Counters only ever grow ({!incr}, {!add} with a non-negative
    delta); {!reset} exists for the harness between runs, not for
    instrumented code. *)

type t

val create : unit -> t
(** A fresh counter at zero. Prefer {!Registry.counter} for metrics
    that should appear in manifests. *)

val incr : t -> unit
(** Add one. *)

val add : t -> int -> unit
(** Add a non-negative delta.
    @raise Invalid_argument on a negative delta (counters are
    monotone; use a {!Registry.gauge} for values that move both
    ways). *)

val value : t -> int
(** Current count. *)

val reset : t -> unit
(** Back to zero — for the harness between runs. *)

(** {1 Domain-local capture}

    The raw mutable cells above are {e not} safe under concurrent
    update. {!Sf_parallel.Pool} makes them safe by bracketing every
    parallel task in a capture: between {!capture_begin} and
    {!capture_end} on a given domain, {!incr}/{!add} accumulate into a
    private delta list instead of the shared cell, and the pool folds
    the deltas in with {!apply} — in task-index order, at the join
    barrier, on one domain. Sequential code never opens a capture and
    pays one domain-local read per update. Prefer the composed
    {!Shard} API over calling these directly.

    {!value} and {!reset} always address the shared cell: reads inside
    a capture do not see the deltas buffered so far. *)

type frame
(** Token restoring the enclosing capture (if any) — captures nest. *)

type deltas
(** The updates recorded by one closed capture. *)

val capture_begin : unit -> frame
(** Start buffering this domain's counter updates. *)

val capture_end : frame -> deltas
(** Stop buffering and return the recorded updates; the enclosing
    capture (or direct mode) is restored. *)

val apply : deltas -> unit
(** Fold recorded updates into their counters. Capture-aware: applied
    inside another capture, the deltas merge into {e that} capture —
    this is what makes nested pools compose. *)
