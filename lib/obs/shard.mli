(** Per-task observability shards: the bridge between this library's
    single-domain mutable metrics and {!Sf_parallel.Pool}'s worker
    domains.

    The raw metric cells ({!Counter}, {!Timer}, {!Histo}, gauges) and
    the {!Trace} sinks are deliberately plain mutable state — the hot
    paths they instrument cannot afford atomics. Parallel execution
    keeps them safe by {e isolation}, not locking: the pool brackets
    every task in {!capture}, so all metric updates and trace events
    land in a private, domain-local shard; {!merge} folds the shards
    back on the pool's caller, in task-index order, at the join
    barrier.

    That fixed merge order is the heart of the determinism contract
    (doc/PARALLELISM.md): counter totals, histogram contents, gauge
    last-writes and trace sequence numbers come out identical for a
    fixed seed at any job count. Wall-clock quantities (timer totals,
    event timestamps, span durations) stay truthful and therefore vary
    run to run.

    Captures nest: a {!capture} opened while another is in progress
    (a pool used inside a pool task) merges into the {e enclosing}
    shard, and the composition stays deterministic. *)

type t
(** The observability output of one completed task: counter and timer
    deltas, histogram shadows, gauge writes, buffered trace events. *)

val capturing : unit -> bool
(** True while a capture is open on the current domain — i.e. the
    caller is running inside a parallel task. *)

val capture : (unit -> 'a) -> 'a * t
(** [capture f] runs [f] with all observability output redirected into
    a fresh shard and returns the result with the shard. If [f]
    raises, the partial shard is {e discarded} and the exception
    re-raised with its backtrace — totals must not depend on where an
    exception struck. *)

val merge : t -> unit
(** Fold a shard into the process-wide metrics and the attached trace
    sinks (or into the enclosing capture, when nested). Call on the
    domain that owns the sinks, in task-index order. *)

val merge_remote :
  proc:string ->
  counters:(string * int) list ->
  events:Trace.event list ->
  unit
(** Fold a {e relayed} shard — named counter deltas plus buffered
    trace events shipped from another process — into this process's
    registry and trace stream. Events are tagged with track name
    [proc] ({!Trace_export.tag}) before replay, so the merged Perfetto
    timeline shows them on the sender's own track; replay assigns
    fresh local sequence numbers in arrival order, which is the
    sender's emission order. Non-positive counter deltas are
    ignored. *)
