(** Time-series rings over the registry: the live-telemetry substrate.

    A collection {!t} holds one fixed-capacity ring of
    [(timestamp, value)] points per {e series} — one scalar facet of
    one registered metric. {!sample} walks {!Registry.all} and pushes
    the current value of every facet:

    - a counter [name] → series [name] (the count);
    - a timer [name] → [name.total_s] and [name.count];
    - a gauge [name] → [name], only once it has been set;
    - a histogram [name] → [name.count], [name.sum] and (when
      non-empty) [name.p50], [name.p95], [name.p99], [name.p999].

    {!start} spawns a background sampler thread ticking every
    [tick_s]; it also refreshes the GC and RSS gauges
    ({!Gc_sample.sample}[ ~trace:false]) so a long single-phase run
    still gets fresh memory figures. The sampler is a systhread
    sharing the main domain's runtime lock and domain-local storage:
    it never opens capture frames and never emits trace events, so
    parallel determinism (doc/PARALLELISM.md) is unaffected. Under an
    open capture (a domain draining pool tasks) it reads the {e
    shared} accumulators, which only advance at join barriers — live
    counters can plateau between barriers; this is documented
    behaviour, not data loss.

    Derived statistics (rates, EWMAs, windowed quantiles) are pure
    functions over a ring's retained points, usable in-process; remote
    consumers ([bin/sftop]) derive the same quantities from the
    socket's [series] dump. *)

(** {1 Rings} *)

type ring

val ring_create : capacity:int -> ring
(** @raise Invalid_argument if [capacity < 1]. *)

val ring_push : ring -> ts:float -> v:float -> unit
val ring_capacity : ring -> int

val ring_length : ring -> int
(** Points currently retained (at most capacity). *)

val ring_seen : ring -> int
(** Points ever pushed. *)

val ring_points : ring -> (float * float) list
(** Retained points, oldest first. *)

val ring_last : ring -> (float * float) option

(** {1 Derived statistics} *)

val rate : ring -> window_s:float -> float option
(** Mean increase per second over the points whose timestamps lie
    within [window_s] of the newest point: [(v_n - v_0) / (t_n -
    t_0)]. [None] with fewer than two points in the window or a
    non-increasing clock. *)

val ewma : ring -> tau_s:float -> float option
(** Time-decayed exponentially-weighted moving average over all
    retained points: each step folds the next point in with weight
    [1 - exp (-dt / tau_s)], so irregular tick spacing is handled
    exactly. [None] on an empty ring.
    @raise Invalid_argument if [tau_s <= 0]. *)

val window_quantile : ring -> window_s:float -> float -> float option
(** Nearest-rank quantile of the values within the window. [None] on
    an empty window. @raise Invalid_argument if [q] outside [[0,1]]. *)

(** {1 The collection} *)

type t

val create : ?capacity:int -> ?tick_s:float -> unit -> t
(** [capacity] (default 600) points per ring; [tick_s] (default 0.5)
    the background sampler period — 600 × 0.5 s = a five-minute
    window. @raise Invalid_argument on [capacity < 1] or
    [tick_s <= 0]. *)

val sample : t -> unit
(** Take one snapshot now: refresh GC/RSS gauges (without trace
    events) and push every metric facet. Safe from any thread; a
    no-op while the registry is disabled. *)

val start : t -> unit
(** Take an initial snapshot and spawn the sampler thread. Idempotent
    while running. *)

val stop : t -> unit
(** Stop and join the sampler, then take a final snapshot so the last
    partial tick is covered. Idempotent. *)

val running : t -> bool
val tick_s : t -> float

val samples : t -> int
(** Snapshots taken so far (manual + ticked). *)

val names : t -> string list
(** All series names seen so far, sorted. *)

val with_ring : t -> string -> (ring -> 'a) -> 'a option
(** Run a reader under the collection lock; the only way to reach a
    collection's rings. Derived statistics walk ring arrays the
    sampler thread mutates, so readers must hold the lock for the
    whole read — which is why there is no [find] returning a bare
    [ring]. [f] must not call back into this collection. *)

val to_json : t -> string
(** The full dump served for the socket [series] command:
    [{"tick_s":…,"samples":…,"series":{name:{"seen":…,"points":[[ts,v],…]},…}}]. *)
