(** Process-resource attribution: resident-set-size gauges read from
    [/proc/self/status].

    {!sample} refreshes two registry gauges —

    - [proc.rss_bytes]: current resident set (VmRSS),
    - [proc.rss_peak_bytes]: the kernel high-water mark (VmHWM), or
      the highest VmRSS this process ever probed where VmHWM is not
      reported —

    and is called alongside {!Gc_sample.sample} at every span boundary
    and at every telemetry tick ({!Series.sample}), so manifests and
    live scrapes carry measured memory figures (the numbers
    [doc/SCALING.md] quotes). On systems without [/proc] the gauges
    stay unset and the byte accessors return 0. *)

val available : unit -> bool
(** Whether [/proc/self/status] exists on this system. *)

val sample : ?trace:bool -> unit -> unit
(** Refresh the gauges (no-op while the registry is disabled). With
    [trace] (default [true]) an active trace stream additionally gets
    a [proc.rss_bytes] counter event; the telemetry sampler passes
    [~trace:false] because a background thread must not inject events
    at nondeterministic stream positions. *)

val rss_bytes : unit -> int
(** Current resident set in bytes, from a fresh probe (0 when
    unavailable). *)

val rss_peak_bytes : unit -> int
(** Peak resident set in bytes: VmHWM from a fresh probe, or the
    highest VmRSS ever observed by this module (0 when unavailable).
    The [rss_peak_bytes] manifest extra reads this at manifest-write
    time. *)
