(** Trace-context propagation: compact trace/span ids correlating one
    logical request across process boundaries.

    A context is two non-negative 63-bit integers. The {e trace} id is
    shared by every span of one logical operation — the client's
    [load.request] span, the server's queue/batch/search/reply stage
    spans, a fabric worker's trial span — while the {e span} id names
    one process's piece. Both are derived by pure splitmix-style
    integer mixing from [(seed, request id)]: no [Random], no clock,
    so a fixed seed yields the same ids (and the same wire bytes) on
    every run, preserving the repo's byte-identical-output contract
    even with tracing on.

    Carriage is the transport's business: [Sf_serve.Wire] flags a
    search request and appends the two ids as varints;
    [Sf_fabric] derives per-task contexts from the grid seed on both
    sides, so nothing extra crosses the control socket. *)

type t = { trace : int; span : int }

val derive : seed:int -> id:int -> t
(** Root context for logical operation [id] (a request id, a grid task
    index) under [seed]. Deterministic; both ids are in
    [\[0, max_int\]]. *)

val child : t -> key:int -> t
(** Same trace, fresh span: the receiving process derives its own span
    under key [key] (callers pick small distinct keys per stage). *)

val mix : int -> int -> int
(** The underlying mixer (exposed for tests): non-negative output. *)

val to_hex : int -> string
(** 16 lowercase hex digits, zero-padded — the rendering used in trace
    event args and docs. *)

val args : t -> (string * Trace.arg) list
(** [[("trace", Str hex); ("span", Str hex)]] — the standard event-arg
    encoding of a context. *)
