(** A minimal JSON reader for the performance-trajectory files.

    [lib/obs] renders its manifests by hand and re-scans them with a
    tolerant string scanner; BENCH files need more — sample arrays must
    be read back exactly — so this module is a small total parser over
    an explicit value type. Same dependency policy as the rest of the
    observability stack: machine-written documents, no JSON package. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing garbage after the top-level value
    is an error. Error messages carry the byte offset. *)

(** {1 Accessors} — all return [None] on a shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val as_str : t -> string option
val as_num : t -> float option
val as_int : t -> int option
(** [as_num] truncated; [None] if the number is not integral. *)

val as_arr : t -> t list option
