type policy = { compare : Compare.policy; max_regression_pct : float }

let default_policy = { compare = Compare.default_policy; max_regression_pct = 10.0 }

type outcome = {
  comparison : Compare.file_comparison;
  failures : Compare.result list;
  missing : string list;
  mode_mismatch : (string * string) option;
  host_mismatch : (string * string) option;
}

let run policy ~base ~cand =
  let comparison = Compare.files policy.compare ~base ~cand in
  let failures =
    List.filter
      (fun (r : Compare.result) ->
        r.verdict = Compare.Regressed && r.change_pct > policy.max_regression_pct)
      comparison.results
  in
  let mode_mismatch =
    if base.Bench_file.mode <> cand.Bench_file.mode then
      Some (base.Bench_file.mode, cand.Bench_file.mode)
    else None
  in
  let host_mismatch =
    let h (f : Bench_file.t) =
      Printf.sprintf "%s/%s/%d-bit" f.host.hostname f.host.os f.host.word_size
    in
    if h base <> h cand then Some (h base, h cand) else None
  in
  { comparison; failures; missing = comparison.only_base; mode_mismatch; host_mismatch }

let passed o = o.failures = [] && o.missing = [] && o.mode_mismatch = None

let render o =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Compare.render o.comparison.results);
  (match o.host_mismatch with
  | Some (base, cand) ->
    Buffer.add_string b
      (Printf.sprintf "note: hosts differ (baseline %s, candidate %s); medians compared anyway\n"
         base cand)
  | None -> ());
  if o.comparison.only_cand <> [] then
    Buffer.add_string b
      (Printf.sprintf "note: %d new benchmark(s) not in the baseline: %s\n"
         (List.length o.comparison.only_cand)
         (String.concat ", " o.comparison.only_cand));
  (match o.mode_mismatch with
  | Some (base, cand) ->
    Buffer.add_string b
      (Printf.sprintf "FAIL: mode mismatch (baseline %S, candidate %S) — timings not comparable\n"
         base cand)
  | None -> ());
  if o.missing <> [] then
    Buffer.add_string b
      (Printf.sprintf "FAIL: %d baseline benchmark(s) missing from the candidate: %s\n"
         (List.length o.missing)
         (String.concat ", " o.missing));
  List.iter
    (fun (r : Compare.result) ->
      Buffer.add_string b
        (Printf.sprintf "FAIL: %s regressed %+.1f%% (%s -> %s, p=%.4f)\n" r.name r.change_pct
           (Compare.fmt_ns r.base_median) (Compare.fmt_ns r.cand_median) r.p))
    o.failures;
  Buffer.add_string b
    (if passed o then "perf gate: PASS\n" else "perf gate: FAIL\n");
  Buffer.contents b
