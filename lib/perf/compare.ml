type verdict = Improved | Unchanged | Regressed

type result = {
  name : string;
  base_median : float;
  cand_median : float;
  change_pct : float;
  base_ci : float * float;
  cand_ci : float * float;
  u : float;
  p : float;
  verdict : verdict;
}

type policy = {
  noise_floor_pct : float;
  alpha : float;
  bootstrap_iters : int;
  bootstrap_seed : int;
}

let default_policy =
  { noise_floor_pct = 2.0; alpha = 0.01; bootstrap_iters = 400; bootstrap_seed = 2007 }

let bootstrap_median_ci policy xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Compare.bootstrap_median_ci: empty sample";
  if n = 1 then (xs.(0), xs.(0))
  else begin
    let rng = Sf_prng.Rng.of_seed policy.bootstrap_seed in
    let iters = max 1 policy.bootstrap_iters in
    let medians = Array.make iters 0. in
    let resample = Array.make n 0. in
    for i = 0 to iters - 1 do
      for j = 0 to n - 1 do
        resample.(j) <- xs.(Sf_prng.Rng.int rng n)
      done;
      medians.(i) <- Sf_stats.Quantile.median resample
    done;
    ( Sf_stats.Quantile.quantile medians ~q:0.025,
      Sf_stats.Quantile.quantile medians ~q:0.975 )
  end

let samples policy ~name ~base ~cand =
  if Array.length base = 0 || Array.length cand = 0 then
    invalid_arg "Compare.samples: empty sample";
  let base_median = Sf_stats.Quantile.median base in
  let cand_median = Sf_stats.Quantile.median cand in
  let change_pct =
    if base_median > 0. then ((cand_median /. base_median) -. 1.) *. 100.
    else if cand_median > 0. then Float.infinity
    else 0.
  in
  let base_ci = bootstrap_median_ci policy base in
  let cand_ci = bootstrap_median_ci policy cand in
  let u, p = Sf_stats.Tests.mann_whitney_u base cand in
  let significant = p < policy.alpha in
  let base_lo, base_hi = base_ci in
  let cand_lo, cand_hi = cand_ci in
  let verdict =
    if change_pct > policy.noise_floor_pct && significant && cand_lo > base_hi then Regressed
    else if change_pct < -.policy.noise_floor_pct && significant && cand_hi < base_lo then
      Improved
    else Unchanged
  in
  { name; base_median; cand_median; change_pct; base_ci; cand_ci; u; p; verdict }

type file_comparison = {
  results : result list;
  only_base : string list;
  only_cand : string list;
}

let files policy ~base ~cand =
  let results =
    List.filter_map
      (fun (b : Bench_file.benchmark) ->
        Bench_file.find cand b.name
        |> Option.map (fun (c : Bench_file.benchmark) ->
               samples policy ~name:b.name ~base:b.samples ~cand:c.samples))
      base.Bench_file.benchmarks
  in
  let only_base =
    List.filter (fun n -> Bench_file.find cand n = None) (Bench_file.names base)
  in
  let only_cand =
    List.filter (fun n -> Bench_file.find base n = None) (Bench_file.names cand)
  in
  { results; only_base; only_cand }

let verdict_label = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"

let fmt_ns ns =
  if Float.is_nan ns then "-"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let render results =
  Sf_stats.Table.render
    ~aligns:
      [
        Sf_stats.Table.Left; Sf_stats.Table.Right; Sf_stats.Table.Right;
        Sf_stats.Table.Right; Sf_stats.Table.Right; Sf_stats.Table.Left;
      ]
    ~headers:[ "benchmark"; "base"; "candidate"; "change"; "p"; "verdict" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.name;
             fmt_ns r.base_median;
             fmt_ns r.cand_median;
             Printf.sprintf "%+.1f%%" r.change_pct;
             Printf.sprintf "%.3f" r.p;
             verdict_label r.verdict;
           ])
         results)
    ()
