(** The versioned [BENCH_<n>.json] schema — one durable record of a
    benchmark run, the unit of the repo's performance trajectory.

    A BENCH file stores the {e raw per-sample timing arrays} of every
    microbenchmark and experiment phase ({!Suite}), not just their
    means: the comparison engine ({!Compare}) needs whole samples for
    the Mann–Whitney test and the bootstrap confidence intervals, and
    a mean alone cannot be re-analysed once the run is gone.

    Files live under [bench/history/] as [BENCH_0001.json],
    [BENCH_0002.json], …; committing them is what turns one-shot runs
    into a trajectory ({!History}). Commit hash and date are {e
    injected by the caller} ([bin/sfbench.ml]) so the library stays
    deterministic and testable; the host fingerprint records enough to
    tell whether two files are comparable at all. Schema evolution is
    explicit: the [schema] field is ["scalefree.bench/1"], and a
    reader rejects any other id rather than guessing.

    The format is documented for humans in [doc/OBSERVABILITY.md]
    ("Performance trajectory"). *)

val schema_id : string
(** ["scalefree.bench/1"]. *)

type host = {
  hostname : string;
  os : string;  (** [Sys.os_type] *)
  word_size : int;
  ocaml : string;  (** [Sys.ocaml_version] *)
}

type benchmark = {
  name : string;  (** e.g. ["sf/gen: mori tree t=8192 (T1)"] or ["exp.T1"] *)
  unit_label : string;  (** always ["ns"] today; recorded for evolution *)
  samples : float array;  (** raw per-sample values, at least one *)
}

type t = {
  commit : string;  (** injected by the caller; ["unknown"] is legal *)
  date : string;  (** injected by the caller, ISO-8601 UTC *)
  host : host;
  jobs : int;
  seed : int;
  mode : string;  (** ["quick"] or ["full"]; gates refuse to mix them *)
  benchmarks : benchmark list;
}

val current_host : unit -> host

val to_json : t -> string

val of_json : string -> (t, string) result
(** Parse {e and validate}: the schema id must match {!schema_id}
    exactly, every benchmark needs a non-empty name unique within the
    file and a non-empty array of finite, non-negative samples, and
    [jobs] must be positive. Anything else is an [Error] naming the
    offending field. *)

val write : path:string -> t -> unit
val read : path:string -> (t, string) result
(** [Error] covers unreadable files as well as invalid documents. *)

val find : t -> string -> benchmark option
val names : t -> string list
(** Benchmark names in file order. *)

(** {1 The history naming convention} *)

val filename : int -> string
(** [filename 7 = "BENCH_0007.json"].
    @raise Invalid_argument if the index is not positive. *)

val index_of_filename : string -> int option
(** Inverse of {!filename} on basenames; [None] for anything else. *)

val list_dir : dir:string -> (int * string) list
(** The [(index, full path)] of every [BENCH_*.json] in [dir],
    ascending by index. A missing directory is an empty history. *)

val next_index : dir:string -> int
(** One past the largest recorded index; [1] for an empty history. *)
