(** The CI perf gate: a pass/fail decision between a baseline BENCH
    file and a candidate.

    The gate fails — [passed] is [false], and [bin/sfbench gate] exits
    non-zero — when any of these hold:

    - a benchmark is a {e confirmed} regression ({!Compare.verdict} is
      [Regressed]: beyond the noise floor, Mann–Whitney-significant,
      disjoint bootstrap CIs) {e and} its median slowdown exceeds
      [max_regression_pct];
    - a benchmark recorded in the baseline is missing from the
      candidate (a lost benchmark is a lost instrument, the same rule
      the manifest shape check applies to metric names);
    - the two files were recorded in different modes (quick vs full
      timings are not comparable).

    Host differences do {e not} fail the gate — CI baselines are
    routinely recorded on other machines — but they are reported, and
    the relative medians are still meaningful on a same-class host.
    New candidate-only benchmarks are reported and tolerated (new
    instrumentation lands before the baseline is refreshed). *)

type policy = {
  compare : Compare.policy;
  max_regression_pct : float;
      (** confirmed regressions up to this slowdown are tolerated
          (default 10.0) *)
}

val default_policy : policy

type outcome = {
  comparison : Compare.file_comparison;
  failures : Compare.result list;  (** confirmed regressions beyond the cap *)
  missing : string list;  (** baseline benchmarks absent from the candidate *)
  mode_mismatch : (string * string) option;  (** [(base, cand)] when they differ *)
  host_mismatch : (string * string) option;  (** informational only *)
}

val run : policy -> base:Bench_file.t -> cand:Bench_file.t -> outcome
val passed : outcome -> bool

val render : outcome -> string
(** The full comparison table followed by the verdict lines the CI log
    shows. *)
