type entry = { index : int; path : string; file : Bench_file.t }

let load ~dir =
  List.fold_left
    (fun (entries, errors) (index, path) ->
      match Bench_file.read ~path with
      | Ok file -> ({ index; path; file } :: entries, errors)
      | Error msg -> (entries, msg :: errors))
    ([], [])
    (Bench_file.list_dir ~dir)
  |> fun (entries, errors) -> (List.rev entries, List.rev errors)

let names entries =
  List.concat_map (fun e -> Bench_file.names e.file) entries
  |> List.sort_uniq compare

let series entries name =
  List.filter_map
    (fun e ->
      Bench_file.find e.file name
      |> Option.map (fun (b : Bench_file.benchmark) ->
             (float_of_int e.index, Sf_stats.Quantile.median b.samples)))
    entries

let ramp = "_.-~=+*#%@"

let sparkline values =
  match values with
  | [] -> ""
  | vs ->
    let lo = List.fold_left Float.min Float.infinity vs in
    let hi = List.fold_left Float.max Float.neg_infinity vs in
    let levels = String.length ramp in
    String.concat ""
      (List.map
         (fun v ->
           if hi <= lo then "-"
           else begin
             let i = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int (levels - 1)) in
             String.make 1 ramp.[max 0 (min (levels - 1) i)]
           end)
         vs)

let trend_table entries =
  let rows =
    List.map
      (fun name ->
        let points = series entries name in
        let medians = List.map snd points in
        let first = List.hd medians in
        let last = List.nth medians (List.length medians - 1) in
        let change =
          if first > 0. then ((last /. first) -. 1.) *. 100. else 0.
        in
        [
          name;
          string_of_int (List.length points);
          Compare.fmt_ns first;
          Compare.fmt_ns last;
          Printf.sprintf "%+.1f%%" change;
          sparkline medians;
        ])
      (names entries)
  in
  Sf_stats.Table.render
    ~aligns:
      [
        Sf_stats.Table.Left; Sf_stats.Table.Right; Sf_stats.Table.Right;
        Sf_stats.Table.Right; Sf_stats.Table.Right; Sf_stats.Table.Left;
      ]
    ~headers:[ "benchmark"; "runs"; "first"; "latest"; "change"; "trend" ]
    ~rows ()

let trend_plot ?(width = 72) ?(height = 24) ?only entries =
  let wanted =
    match only with
    | Some names -> names
    | None -> names entries
  in
  let glyphs = Sf_stats.Plot.default_glyphs in
  let series_list =
    List.mapi
      (fun i name ->
        {
          Sf_stats.Plot.label = name;
          glyph = glyphs.(i mod Array.length glyphs);
          points = series entries name;
        })
      wanted
  in
  Sf_stats.Plot.render ~width ~height ~y_log:true ~x_label:"bench file index"
    ~y_label:"median ns" series_list
