type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

(* Recursive-descent parser over the raw string. BENCH files are
   machine-written, so the grammar is plain RFC-8259 minus the corner
   we never emit: \u escapes decode to '?' (names and dates are
   ASCII). *)

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter (fun c -> expect c) word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
          (* we never emit \u escapes; decode to a placeholder *)
          pos := !pos + 4;
          Buffer.add_char b '?'
        | Some c -> Buffer.add_char b c
        | None -> fail "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after the document";
  v

let parse s = try Ok (parse_exn s) with Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_str = function Str s -> Some s | _ -> None
let as_num = function Num f -> Some f | _ -> None

let as_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let as_arr = function Arr xs -> Some xs | _ -> None
