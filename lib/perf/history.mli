(** The performance history: every committed [BENCH_*.json] of a
    directory, loaded and rendered as trends.

    The trajectory is the point of the subsystem — a single BENCH file
    says what a commit cost, the ordered sequence says where the repo
    is {e going}. Trend tables compare the first and latest recording
    of each benchmark and draw an ASCII sparkline over the medians;
    the scatter plot puts every benchmark's median-vs-index series on
    one {!Sf_stats.Plot} canvas (log y, one glyph per benchmark), the
    same way the experiment harness renders the paper's scaling
    figures. *)

type entry = { index : int; path : string; file : Bench_file.t }

val load : dir:string -> entry list * string list
(** All parseable history files ascending by index, plus one error
    message per file that failed to read or validate. A missing
    directory is an empty history. *)

val names : entry list -> string list
(** Union of benchmark names across the history, sorted. *)

val series : entry list -> string -> (float * float) list
(** [(index, median)] of one benchmark across the entries recording
    it. *)

val sparkline : float list -> string
(** One ASCII character per value, scaled to the list's own min/max
    (ramp [_.-~=+*#%@]); a flat or singleton series renders as ['-']
    characters. Empty input is the empty string. *)

val trend_table : entry list -> string
(** One row per benchmark: recordings, first and latest median, total
    change, sparkline. *)

val trend_plot : ?width:int -> ?height:int -> ?only:string list -> entry list -> string
(** Median-vs-index scatter of every benchmark (or the [only] subset)
    on one log-y canvas, glyphs cycling through
    {!Sf_stats.Plot.default_glyphs}. *)
