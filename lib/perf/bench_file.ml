let schema_id = "scalefree.bench/1"

type host = { hostname : string; os : string; word_size : int; ocaml : string }
type benchmark = { name : string; unit_label : string; samples : float array }

type t = {
  commit : string;
  date : string;
  host : host;
  jobs : int;
  seed : int;
  mode : string;
  benchmarks : benchmark list;
}

let current_host () =
  {
    hostname = Unix.gethostname ();
    os = Sys.os_type;
    word_size = Sys.word_size;
    ocaml = Sys.ocaml_version;
  }

(* --- rendering ----------------------------------------------------- *)

let jstr = Sf_obs.Export.json_string
let jnum = Sf_obs.Export.json_float

let to_json t =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n";
  add (Printf.sprintf {|  "schema": %s,|} (jstr schema_id));
  add "\n";
  add (Printf.sprintf {|  "commit": %s,|} (jstr t.commit));
  add "\n";
  add (Printf.sprintf {|  "date": %s,|} (jstr t.date));
  add "\n";
  add
    (Printf.sprintf
       {|  "host": {"hostname": %s, "os": %s, "word_size": %d, "ocaml": %s},|}
       (jstr t.host.hostname) (jstr t.host.os) t.host.word_size (jstr t.host.ocaml));
  add "\n";
  add (Printf.sprintf {|  "jobs": %d,|} t.jobs);
  add "\n";
  add (Printf.sprintf {|  "seed": %d,|} t.seed);
  add "\n";
  add (Printf.sprintf {|  "mode": %s,|} (jstr t.mode));
  add "\n";
  add "  \"benchmarks\": [\n";
  List.iteri
    (fun i bench ->
      if i > 0 then add ",\n";
      let samples =
        Array.to_list bench.samples |> List.map jnum |> String.concat ","
      in
      add
        (Printf.sprintf {|    {"name": %s, "unit": %s, "samples": [%s]}|}
           (jstr bench.name) (jstr bench.unit_label) samples))
    t.benchmarks;
  add "\n  ]\n}\n";
  Buffer.contents b

(* --- parsing and validation ---------------------------------------- *)

let field name json conv =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let ( let* ) = Result.bind

let benchmark_of_json seen i json =
  let ctx msg = Printf.sprintf "benchmarks[%d]: %s" i msg in
  let* name = Result.map_error ctx (field "name" json Json.as_str) in
  let* unit_label = Result.map_error ctx (field "unit" json Json.as_str) in
  let* raw = Result.map_error ctx (field "samples" json Json.as_arr) in
  if name = "" then Error (ctx "empty benchmark name")
  else if Hashtbl.mem seen name then
    Error (ctx (Printf.sprintf "duplicate benchmark name %S" name))
  else begin
    Hashtbl.add seen name ();
    if raw = [] then Error (ctx (Printf.sprintf "%S has no samples" name))
    else begin
      let* samples =
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Json.as_num v with
            | Some f when Float.is_finite f && f >= 0. -> Ok (f :: acc)
            | Some _ | None ->
              Error (ctx (Printf.sprintf "%S has a non-finite or negative sample" name)))
          (Ok []) raw
      in
      Ok { name; unit_label; samples = Array.of_list (List.rev samples) }
    end
  end

let of_json src =
  let* json = Result.map_error (fun e -> "not valid JSON: " ^ e) (Json.parse src) in
  let* schema = field "schema" json Json.as_str in
  if schema <> schema_id then
    Error (Printf.sprintf "unsupported schema %S (this reader knows %S)" schema schema_id)
  else
    let* commit = field "commit" json Json.as_str in
    let* date = field "date" json Json.as_str in
    let* host_json =
      match Json.member "host" json with
      | Some h -> Ok h
      | None -> Error "missing or mistyped field \"host\""
    in
    let* hostname = field "hostname" host_json Json.as_str in
    let* os = field "os" host_json Json.as_str in
    let* word_size = field "word_size" host_json Json.as_int in
    let* ocaml = field "ocaml" host_json Json.as_str in
    let* jobs = field "jobs" json Json.as_int in
    let* seed = field "seed" json Json.as_int in
    let* mode = field "mode" json Json.as_str in
    let* bench_json = field "benchmarks" json Json.as_arr in
    if jobs < 1 then Error "jobs must be positive"
    else if mode = "" then Error "empty mode"
    else begin
      let seen = Hashtbl.create 64 in
      let* benchmarks =
        List.fold_left
          (fun acc (i, bj) ->
            let* acc = acc in
            let* bench = benchmark_of_json seen i bj in
            Ok (bench :: acc))
          (Ok [])
          (List.mapi (fun i bj -> (i, bj)) bench_json)
      in
      Ok
        {
          commit;
          date;
          host = { hostname; os; word_size; ocaml };
          jobs;
          seed;
          mode;
          benchmarks = List.rev benchmarks;
        }
    end

let write ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | src -> Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_json src)
  | exception Sys_error msg -> Error msg

let find t name = List.find_opt (fun b -> b.name = name) t.benchmarks
let names t = List.map (fun b -> b.name) t.benchmarks

(* --- the history naming convention --------------------------------- *)

let filename i =
  if i < 1 then invalid_arg "Bench_file.filename: need a positive index";
  Printf.sprintf "BENCH_%04d.json" i

let index_of_filename base =
  let prefix = "BENCH_" and suffix = ".json" in
  let pn = String.length prefix and sn = String.length suffix in
  let n = String.length base in
  if n <= pn + sn
     || not (String.starts_with ~prefix base)
     || not (String.ends_with ~suffix base)
  then None
  else
    let digits = String.sub base pn (n - pn - sn) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      match int_of_string_opt digits with Some i when i >= 1 -> Some i | _ -> None
    else None

let list_dir ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun base ->
           Option.map (fun i -> (i, Filename.concat dir base)) (index_of_filename base))
    |> List.sort compare

let next_index ~dir =
  match List.rev (list_dir ~dir) with [] -> 1 | (i, _) :: _ -> i + 1
