(** The regression-comparison engine: robust verdicts on two recorded
    benchmark runs.

    Timing samples are skewed, heavy-tailed, and polluted by scheduler
    noise, so everything here is order-statistics based:

    - the point estimate of a benchmark's cost is the {e median},
    - its uncertainty is a bootstrap confidence interval of the median
      (deterministic resampling, {!Sf_prng.Rng}),
    - the significance test is {!Sf_stats.Tests.mann_whitney_u}
      (two-sided, tie-corrected) — no normality assumption.

    A benchmark is only classified [Regressed] (or [Improved]) when
    {e all three} agree: the median moved beyond the noise floor, the
    Mann–Whitney p-value clears [alpha], and the two bootstrap
    intervals are disjoint. A <2 % drift therefore never flags, no
    matter how statistically "significant" a large sample makes it —
    the noise floor is a magnitude requirement, not a confidence
    one. *)

type verdict = Improved | Unchanged | Regressed

type result = {
  name : string;
  base_median : float;
  cand_median : float;
  change_pct : float;  (** [(cand/base - 1) * 100]; positive = slower *)
  base_ci : float * float;  (** bootstrap 95 % CI of the baseline median *)
  cand_ci : float * float;
  u : float;  (** Mann–Whitney U of the baseline sample *)
  p : float;  (** two-sided p-value *)
  verdict : verdict;
}

type policy = {
  noise_floor_pct : float;
      (** median drifts below this magnitude are always [Unchanged]
          (default 2.0) *)
  alpha : float;  (** Mann–Whitney significance level (default 0.01) *)
  bootstrap_iters : int;  (** resamples per CI (default 400) *)
  bootstrap_seed : int;
      (** the resampling PRNG seed — fixed so verdicts are
          reproducible (default 2007) *)
}

val default_policy : policy

val bootstrap_median_ci : policy -> float array -> float * float
(** Percentile-bootstrap 95 % confidence interval of the median. A
    single-sample array collapses to a point interval.
    @raise Invalid_argument on an empty array. *)

val samples : policy -> name:string -> base:float array -> cand:float array -> result
(** Compare two raw sample arrays (same unit).
    @raise Invalid_argument if either is empty. *)

type file_comparison = {
  results : result list;  (** benchmarks present in both, baseline order *)
  only_base : string list;  (** recorded in the baseline, gone from the candidate *)
  only_cand : string list;  (** new in the candidate *)
}

val files : policy -> base:Bench_file.t -> cand:Bench_file.t -> file_comparison

val verdict_label : verdict -> string
(** ["improved"], ["unchanged"], ["REGRESSED"]. *)

val fmt_ns : float -> string
(** Human time from nanoseconds: ["1.23 us"], ["4.56 ms"], … *)

val render : result list -> string
(** One table row per result: medians, change, p-value, verdict. *)
