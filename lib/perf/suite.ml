open Bechamel

(* The microbenchmark definitions lived in bench/main.ml through PR 4;
   they moved here unchanged so that `sfbench record` and the bench
   harness time exactly the same closures. *)

let tests ~quick =
  let scale n = if quick then n / 8 else n in
  let rng0 = Sf_prng.Rng.of_seed 1 in
  (* Pre-built inputs shared by the per-run closures. *)
  let mori_16k = Sf_gen.Mori.tree (Sf_prng.Rng.split rng0) ~p:0.5 ~t:(scale 16_384) in
  let mori_u = Sf_graph.Ugraph.of_digraph mori_16k in
  let config_g =
    Sf_gen.Config_model.searchable_power_law (Sf_prng.Rng.split rng0) ~n:(scale 16_384)
      ~exponent:2.3 ()
  in
  let config_u = Sf_graph.Ugraph.of_digraph config_g in
  let kleinberg = Sf_gen.Kleinberg.generate (Sf_prng.Rng.split rng0) ~side:32 ~r:2. ~q:1 () in
  let kleinberg_u = Sf_graph.Ugraph.of_digraph kleinberg.Sf_gen.Kleinberg.graph in
  let degrees = Sf_graph.Metrics.in_degrees mori_16k in
  let n_mori = Sf_graph.Ugraph.n_vertices mori_u in
  let n_conf = Sf_graph.Ugraph.n_vertices config_u in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    (* T1/T2: generation of the Theorem 1 workloads *)
    mk
      (Printf.sprintf "gen: mori tree t=%d (T1)" (scale 8192))
      (fun () -> ignore (Sf_gen.Mori.tree (Sf_prng.Rng.copy rng0) ~p:0.5 ~t:(scale 8192)));
    mk
      (Printf.sprintf "gen: merged mori m=4 n=%d (T2)" (scale 2048))
      (fun () ->
        ignore (Sf_gen.Mori.graph (Sf_prng.Rng.copy rng0) ~p:0.5 ~m:4 ~n:(scale 2048)));
    (* T4: Cooper-Frieze generation *)
    mk
      (Printf.sprintf "gen: cooper-frieze n=%d (T4)" (scale 4096))
      (fun () ->
        ignore
          (Sf_gen.Cooper_frieze.generate_n_vertices (Sf_prng.Rng.copy rng0)
             Sf_gen.Cooper_frieze.default ~n:(scale 4096)));
    (* T11: configuration-model generation *)
    mk
      (Printf.sprintf "gen: config model n=%d (T11)" (scale 8192))
      (fun () ->
        ignore
          (Sf_gen.Config_model.power_law (Sf_prng.Rng.copy rng0) ~n:(scale 8192) ~exponent:2.3
             ()));
    (* T12: Kleinberg generation and routing *)
    mk "gen: kleinberg side=32 (T12)" (fun () ->
        ignore (Sf_gen.Kleinberg.generate (Sf_prng.Rng.copy rng0) ~side:32 ~r:2. ~q:1 ()));
    mk "search: greedy route side=32 (T12)" (fun () ->
        ignore
          (Sf_search.Geo_routing.greedy kleinberg_u
             ~dist:(Sf_gen.Kleinberg.lattice_distance ~side:32)
             ~source:1 ~target:600 ~max_steps:10_000));
    (* T1: a full weak-model search *)
    mk "search: bfs to neighbor on mori (T1)" (fun () ->
        ignore
          (Sf_search.Runner.search ~stop_at:Sf_search.Runner.At_neighbor
             ~rng:(Sf_prng.Rng.copy rng0) mori_u Sf_search.Strategies.bfs ~source:1
             ~target:(n_mori - 3)));
    (* T3: a strong-model search *)
    mk "search: strong high-degree on mori (T3)" (fun () ->
        ignore
          (Sf_search.Runner.search ~rng:(Sf_prng.Rng.copy rng0) mori_u
             Sf_search.Strategies.strong_high_degree ~source:1 ~target:(n_mori - 3)));
    (* T11: Adamic greedy on the configuration graph *)
    mk "search: strong high-degree on config (T11)" (fun () ->
        ignore
          (Sf_search.Runner.search ~rng:(Sf_prng.Rng.copy rng0) config_u
             Sf_search.Strategies.strong_high_degree ~source:1 ~target:(n_conf / 2)));
    (* T13: percolation query *)
    mk "search: percolation run on config (T13)" (fun () ->
        ignore
          (Sf_search.Percolation.run (Sf_prng.Rng.copy rng0) config_u
             (Sf_search.Percolation.default_params ~n:n_conf)
             ~source:1 ~target:(n_conf / 2)));
    (* T5: exact event probability at a = 10^6 *)
    mk "math: P(E_{a,b}) exact a=10^6 (T5)" (fun () ->
        ignore (Sf_core.Events.prob_exact ~p:0.5 ~a:1_000_000 ~b:1_001_000));
    (* T6: exhaustive equivalence at t=8 *)
    mk "math: exact equivalence t=8 (T6)" (fun () ->
        ignore (Sf_core.Equivalence.exact ~p:0.5 ~t:8 ~a:4 ~b:7));
    (* T6: conditioned sampling *)
    mk
      (Printf.sprintf "gen: conditioned mori t=%d (T6)" (scale 4096))
      (fun () ->
        let t = scale 4096 in
        ignore
          (Sf_gen.Mori.tree_conditioned (Sf_prng.Rng.copy rng0) ~p:0.5 ~t ~a:(t - 64) ~b:t));
    (* T8: max-degree replay *)
    mk "math: max-degree series (T8)" (fun () ->
        ignore
          (Sf_core.Max_degree.max_indegree_series (Sf_prng.Rng.copy rng0) ~p:0.8
             ~checkpoints:[ scale 16_384 ]));
    (* T9: power-law MLE *)
    mk "math: power-law MLE fit (T9)" (fun () ->
        ignore (Sf_stats.Power_law.fit degrees ~x_min:1));
    (* T10: BFS over the whole graph *)
    mk "graph: full BFS on mori (T10)" (fun () ->
        ignore (Sf_graph.Traversal.bfs_distances mori_u ~source:1));
    (* T14: permutation action *)
    mk "graph: permutation action on mori (T14)" (fun () ->
        ignore (Sf_graph.Permute.apply (Sf_graph.Permute.identity n_mori) mori_16k));
    (* T15: correlation statistics *)
    mk "graph: assortativity on config (T15)" (fun () ->
        ignore (Sf_graph.Correlation.assortativity config_u));
    mk "graph: k-core decomposition on config (T15)" (fun () ->
        ignore (Sf_graph.Kcore.coreness config_u));
    (* T6: exact rational certificate *)
    mk "math: rational certificate t=8 (T6)" (fun () ->
        ignore (Sf_core.Equivalence.exact_rational ~p_num:1 ~p_den:2 ~t:8 ~a:4 ~b:7));
    (* T19: one simulated flood *)
    (let net = Sf_sim.Network.create config_u in
     mk "sim: flood query on config (T19)" (fun () ->
         ignore
           (Sf_sim.Query_sim.query ~rng:(Sf_prng.Rng.copy rng0) net
              (Sf_sim.Query_sim.Flood { ttl = 6 })
              ~source:1
              ~holders:(Sf_sim.Query_sim.single_target net (n_conf / 2)))));
    (* T22: one churned query *)
    (let net = Sf_sim.Network.create config_u in
     mk "sim: churned flood on config (T22)" (fun () ->
         ignore
           (Sf_sim.Churn_sim.query ~rng:(Sf_prng.Rng.copy rng0) net
              { Sf_sim.Churn_sim.mean_up = 40.; mean_down = 10. }
              (Sf_sim.Query_sim.Flood { ttl = 6 })
              ~source:1
              ~holders:(Sf_sim.Query_sim.single_target net (n_conf / 2)))));
    (* giant-graph engine hot paths (doc/SCALING.md): the Bigvec-backed
       Móri grower, the alias-sampled Cooper–Frieze grower, the CSR
       freeze, and the SFGB-v2 write+map round trip *)
    mk
      (Printf.sprintf "gen: mori giant tree t=%d (T1)" (scale 8192))
      (fun () ->
        ignore (Sf_gen.Mori.tree_giant (Sf_prng.Rng.copy rng0) ~p:0.5 ~t:(scale 8192)));
    mk
      (Printf.sprintf "gen: cooper-frieze giant n=%d (T4)" (scale 4096))
      (fun () ->
        ignore
          (Sf_gen.Cooper_frieze.generate_n_vertices_giant (Sf_prng.Rng.copy rng0)
             Sf_gen.Cooper_frieze.default ~n:(scale 4096)));
    mk
      (Printf.sprintf "graph: csr freeze n=%d" (scale 16_384))
      (fun () -> ignore (Sf_graph.Csr.of_digraph mori_16k));
    (let path = Filename.temp_file "sfbench_v2" ".sfg" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     mk "store: sfgb-v2 write+map roundtrip" (fun () ->
         Sf_store.Csr_codec.write_ugraph_file mori_u ~path;
         ignore (Sf_store.Csr_codec.map_ugraph_file ~path ())));
    (* event queue throughput *)
    mk "sim: event queue 10k schedule+drain" (fun () ->
        let q = Sf_sim.Event_queue.create () in
        let r = Sf_prng.Rng.copy rng0 in
        for i = 0 to 9_999 do
          Sf_sim.Event_queue.schedule q ~time:(Sf_prng.Rng.unit_float r) i
        done;
        while not (Sf_sim.Event_queue.is_empty q) do
          ignore (Sf_sim.Event_queue.next q)
        done);
  ]
  (* fabric overhead (doc/FABRIC.md): the checkpoint codec round trip
     through the filesystem and the coordinator's merge of complete
     shard checkpoints — the prices a distributed grid pays over an
     in-process one *)
  @
  let n_out = max 64 (scale 4096) in
  let shards = 8 in
  let spec =
    {
      Sf_fabric.Grid.gs_model = "mori";
      gs_p = 0.5;
      gs_m = 1;
      gs_alpha = 0.5;
      gs_exponent = 2.3;
      gs_sizes = [ 64 ];
      gs_strategies = [ "high-degree" ];
      gs_trials = n_out;
      gs_metric = `Neighbor;
      gs_source = `Oldest;
      gs_budget_mul = 4;
      gs_budget_add = 0;
      gs_seed = 1;
    }
  in
  let plan = Sf_fabric.Grid.make_plan ~shards spec in
  let crc = Sf_fabric.Grid.plan_crc plan in
  let token = Sf_fabric.Grid.rng_token spec in
  let dir = Filename.temp_file "sfbench_fab" "" in
  Sys.remove dir;
  Sf_fabric.Grid.mkdir_p (Filename.dirname (Sf_fabric.Grid.shard_path dir 0));
  let orng = Sf_prng.Rng.copy rng0 in
  let ckpt_of shard (lo, hi) =
    {
      Sf_fabric.Ckpt.c_grid_crc = crc;
      c_shard = shard;
      c_lo = lo;
      c_hi = hi;
      c_rng_token = token;
      c_next = hi;
      c_outcomes =
        Array.init (hi - lo) (fun _ -> (Sf_prng.Rng.unit_float orng *. 100., false, false));
      c_counters = [ ("search.request", (hi - lo) * 17) ];
    }
  in
  Array.iteri
    (fun shard range ->
      Sf_fabric.Ckpt.write ~path:(Sf_fabric.Grid.shard_path dir shard) (ckpt_of shard range))
    plan.Sf_fabric.Grid.p_shards;
  let one = ckpt_of 0 plan.Sf_fabric.Grid.p_shards.(0) in
  let wpath = Filename.concat dir "bench.ckpt" in
  Sf_fabric.Ckpt.write ~path:wpath one;
  at_exit (fun () ->
      let rm p = try Sys.remove p with Sys_error _ -> () in
      rm wpath;
      Array.iteri (fun shard _ -> rm (Sf_fabric.Grid.shard_path dir shard)) plan.Sf_fabric.Grid.p_shards;
      (try Unix.rmdir (Filename.dirname (Sf_fabric.Grid.shard_path dir 0)) with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
  [
    mk
      (Printf.sprintf "fabric: ckpt write %d outcomes" (Array.length one.Sf_fabric.Ckpt.c_outcomes))
      (fun () -> Sf_fabric.Ckpt.write ~path:wpath one);
    mk
      (Printf.sprintf "fabric: ckpt read %d outcomes" (Array.length one.Sf_fabric.Ckpt.c_outcomes))
      (fun () -> ignore (Sf_fabric.Ckpt.load ~path:wpath));
    mk
      (Printf.sprintf "fabric: merge %d shards x %d" shards (n_out / shards))
      (fun () -> ignore (Sf_fabric.Coordinator.merge ~dir ~grid_crc:crc plan));
  ]

let micro_cfg ~quick =
  Benchmark.cfg ~limit:200
    ~quota:(Time.second (if quick then 0.25 else 1.0))
    ~kde:None ~stabilize:true ()

let run_micro ~quick () =
  let instance = Toolkit.Instance.monotonic_clock in
  let label = Measure.label instance in
  let raw =
    Benchmark.all (micro_cfg ~quick) [ instance ]
      (Test.make_grouped ~name:"sf" (tests ~quick))
  in
  Hashtbl.fold
    (fun name (b : Benchmark.t) acc ->
      let samples =
        Array.map
          (fun m -> Measurement_raw.get ~label m /. Measurement_raw.run m)
          b.Benchmark.lr
      in
      (* a batch with zero runs would yield nan; bechamel starts runs
         at 1, so samples are always finite — but guard anyway *)
      let samples = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq samples)) in
      if Array.length samples = 0 then acc else (name, samples) :: acc)
    raw []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_phases ~quick ~seed ~repeats =
  if repeats < 1 then invalid_arg "Suite.run_phases: need repeats >= 1";
  let acc : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
  for _ = 1 to repeats do
    List.iter
      (fun ((entry : Sf_experiments.Registry.entry), _result, dt) ->
        let name = "exp." ^ entry.Sf_experiments.Registry.id in
        let cell =
          match Hashtbl.find_opt acc name with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add acc name c;
            c
        in
        cell := (dt *. 1e9) :: !cell)
      (Sf_experiments.Registry.run_all ~quick ~seed Sf_experiments.Registry.all)
  done;
  Hashtbl.fold
    (fun name cell rows -> (name, Array.of_list (List.rev !cell)) :: rows)
    acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
