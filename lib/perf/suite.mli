(** The recordable benchmark suite — the single source of truth for
    what gets timed.

    Two producers feed the trajectory:

    - {!tests}: the bechamel microbenchmarks of the hot paths behind
      the experiment tables (generation, search, simulation, exact
      math). [bench/main.exe] renders their OLS estimates; [sfbench
      record] keeps the {e raw} samples.
    - {!run_phases}: the experiment phase timers — each registry
      experiment's wall time over repeated full passes, the quantity
      the per-experiment [%.1fs] stamps of the bench harness show.

    Both return plain [(name, samples)] pairs in nanoseconds so
    {!Bench_file} can persist them and {!Compare} can re-analyse them
    later. *)

val tests : quick:bool -> Bechamel.Test.t list
(** The microbenchmark set, identical between [bench/main.exe] and
    [sfbench record]. [quick] divides the input sizes by 8. *)

val micro_cfg : quick:bool -> Bechamel.Benchmark.configuration
(** The shared bechamel configuration: 200-sample limit, 0.25 s
    ([quick]) or 1 s quota, GC stabilisation on. *)

val run_micro : quick:bool -> unit -> (string * float array) list
(** Run every microbenchmark; per benchmark, one ns-per-run sample per
    raw bechamel measurement (total time of a batch divided by its run
    count). Sorted by name (["sf/..."]). *)

val run_phases : quick:bool -> seed:int -> repeats:int -> (string * float array) list
(** Run the full experiment registry [repeats] times on the default
    pool; per experiment, the wall-clock ns of each pass, named
    ["exp.<id>"]. Results and observability side effects are the
    deterministic ones of {!Sf_experiments.Registry.run_all}; only the
    timings vary. Sorted by name.
    @raise Invalid_argument if [repeats < 1]. *)
