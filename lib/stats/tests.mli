(** Hypothesis tests used by the equivalence experiments: comparing the
    empirical distribution of [G] against [σ(G)] means comparing two
    categorical samples. *)

val gamma_p : a:float -> x:float -> float
(** Regularised lower incomplete gamma [P(a, x)] (series + continued
    fraction), the building block of the chi-square CDF. *)

val chi_square_cdf : dof:int -> float -> float

val chi_square_two_sample :
  (string * int) list -> (string * int) list -> float * int * float
(** [(statistic, dof, p_value)] for the two-sample chi-square test on
    categorical counts. Categories with combined expected count below 5
    are pooled into a single bucket (the usual validity fix); the union
    of category labels is used.
    @raise Invalid_argument if either sample is empty. *)

val total_variation :
  (string * int) list -> (string * int) list -> float
(** Total-variation distance between the two empirical distributions,
    in [0, 1]. *)

val ks_two_sample : float array -> float array -> float * float
(** [(statistic, approximate p_value)] of the two-sample
    Kolmogorov–Smirnov test (asymptotic Q_KS significance). *)

val mann_whitney_u : float array -> float array -> float * float
(** [(u1, p_value)] of the two-sided Mann–Whitney U (Wilcoxon
    rank-sum) test: [u1] is the U statistic of the {e first} sample and
    [p_value] the continuity-corrected normal approximation with the
    usual tie correction (midranks). Robust to outliers and makes no
    normality assumption, which is why [lib/perf] uses it to compare
    benchmark timing samples across commits. When every pooled value is
    identical the variance is zero and the p-value is 1 (no evidence of
    a shift). @raise Invalid_argument if either sample is empty. *)
