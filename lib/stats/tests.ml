(* Lanczos approximation of log Γ, g = 7, n = 9 coefficients; accurate
   to ~1e-13 on the positive reals we use. *)
let log_gamma =
  let coeffs =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  fun x ->
    if x <= 0. then invalid_arg "Tests.log_gamma: need x > 0";
    let x = x -. 1. in
    let a = ref coeffs.(0) in
    for i = 1 to 8 do
      a := !a +. (coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Regularised incomplete gamma, after Numerical Recipes (gser / gcf). *)

let gamma_p_series ~a ~x =
  let ap = ref a and sum = ref (1. /. a) and del = ref (1. /. a) in
  let continue = ref true and iter = ref 0 in
  while !continue && !iter < 500 do
    incr iter;
    ap := !ap +. 1.;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. 1e-14 then continue := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_q_cont_frac ~a ~x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) and c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 and continue = ref true in
  while !continue && !i < 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < 1e-14 then continue := false;
    incr i
  done;
  !h *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_p ~a ~x =
  if a <= 0. then invalid_arg "Tests.gamma_p: need a > 0";
  if x < 0. then invalid_arg "Tests.gamma_p: need x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series ~a ~x
  else 1. -. gamma_q_cont_frac ~a ~x

let chi_square_cdf ~dof x =
  if dof < 1 then invalid_arg "Tests.chi_square_cdf: need dof >= 1";
  if x <= 0. then 0. else gamma_p ~a:(float_of_int dof /. 2.) ~x:(x /. 2.)

let counts_to_table sample =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, c) ->
      let prev = try Hashtbl.find tbl k with Not_found -> 0 in
      Hashtbl.replace tbl k (prev + c))
    sample;
  tbl

let union_categories t1 t2 =
  let keys = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t1;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t2;
  Hashtbl.fold (fun k () acc -> k :: acc) keys [] |> List.sort compare

let lookup tbl k = try Hashtbl.find tbl k with Not_found -> 0

let chi_square_two_sample sample1 sample2 =
  let t1 = counts_to_table sample1 and t2 = counts_to_table sample2 in
  let n1 = Hashtbl.fold (fun _ c acc -> acc + c) t1 0 in
  let n2 = Hashtbl.fold (fun _ c acc -> acc + c) t2 0 in
  if n1 = 0 || n2 = 0 then invalid_arg "Tests.chi_square_two_sample: empty sample";
  let cats = union_categories t1 t2 in
  (* Pool sparse categories (combined count < 10, i.e. expected < 5 per
     side for balanced samples) into one bucket. *)
  let pooled1 = ref 0 and pooled2 = ref 0 in
  let kept =
    List.filter
      (fun k ->
        let c1 = lookup t1 k and c2 = lookup t2 k in
        if c1 + c2 < 10 then begin
          pooled1 := !pooled1 + c1;
          pooled2 := !pooled2 + c2;
          false
        end
        else true)
      cats
  in
  let cells =
    List.map (fun k -> (lookup t1 k, lookup t2 k)) kept
    @ (if !pooled1 + !pooled2 > 0 then [ (!pooled1, !pooled2) ] else [])
  in
  let k = List.length cells in
  if k < 2 then (0., 1, 1.)
  else begin
    let f1 = float_of_int n1 and f2 = float_of_int n2 in
    let stat =
      List.fold_left
        (fun acc (c1, c2) ->
          let tot = float_of_int (c1 + c2) in
          let e1 = tot *. f1 /. (f1 +. f2) and e2 = tot *. f2 /. (f1 +. f2) in
          acc
          +. (((float_of_int c1 -. e1) ** 2.) /. e1)
          +. (((float_of_int c2 -. e2) ** 2.) /. e2))
        0. cells
    in
    let dof = k - 1 in
    (stat, dof, 1. -. chi_square_cdf ~dof stat)
  end

let total_variation sample1 sample2 =
  let t1 = counts_to_table sample1 and t2 = counts_to_table sample2 in
  let n1 = Hashtbl.fold (fun _ c acc -> acc + c) t1 0 in
  let n2 = Hashtbl.fold (fun _ c acc -> acc + c) t2 0 in
  if n1 = 0 || n2 = 0 then invalid_arg "Tests.total_variation: empty sample";
  let cats = union_categories t1 t2 in
  0.5
  *. List.fold_left
       (fun acc k ->
         acc
         +. Float.abs
              ((float_of_int (lookup t1 k) /. float_of_int n1)
              -. (float_of_int (lookup t2 k) /. float_of_int n2)))
       0. cats

(* Complementary error function (Numerical Recipes erfcc), absolute
   error < 1.2e-7 everywhere — plenty for p-values compared against
   thresholds like 0.05 or 0.01. *)
let erfc x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -.z *. z -. 1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t *. (-0.82215223 +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp poly in
  if x >= 0. then ans else 2. -. ans

let mann_whitney_u xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Tests.mann_whitney_u: empty sample";
  (* pool the samples, rank with midranks for ties *)
  let tagged = Array.append (Array.map (fun v -> (v, 0)) xs) (Array.map (fun v -> (v, 1)) ys) in
  Array.sort (fun (a, _) (b, _) -> compare a b) tagged;
  let n = n1 + n2 in
  let r1 = ref 0. and tie_sum = ref 0. in
  let i = ref 0 in
  while !i < n do
    (* [i, j) is one group of equal values *)
    let j = ref (!i + 1) in
    while !j < n && fst tagged.(!j) = fst tagged.(!i) do
      incr j
    done;
    let t = !j - !i in
    (* average rank of the group; ranks are 1-based *)
    let midrank = float_of_int (!i + !j + 1) /. 2. in
    for k = !i to !j - 1 do
      if snd tagged.(k) = 0 then r1 := !r1 +. midrank
    done;
    if t > 1 then begin
      let ft = float_of_int t in
      tie_sum := !tie_sum +. ((ft *. ft *. ft) -. ft)
    end;
    i := !j
  done;
  let f1 = float_of_int n1 and f2 = float_of_int n2 and fn = float_of_int n in
  let u1 = !r1 -. (f1 *. (f1 +. 1.) /. 2.) in
  let u2 = (f1 *. f2) -. u1 in
  let u = Float.min u1 u2 in
  let mu = f1 *. f2 /. 2. in
  let sigma2 = f1 *. f2 /. 12. *. (fn +. 1. -. (!tie_sum /. (fn *. (fn -. 1.)))) in
  let p =
    if sigma2 <= 0. then 1. (* every pooled value equal: no evidence of a shift *)
    else begin
      (* continuity-corrected normal approximation, two-sided:
         2 (1 - Φ(|z|)) = erfc(|z| / √2) *)
      let z = (u -. mu +. 0.5) /. sqrt sigma2 in
      Float.min 1. (erfc (Float.abs z /. sqrt 2.))
    end
  in
  (u1, p)

let ks_significance lambda =
  (* Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²} *)
  let sum = ref 0. and sign = ref 1. in
  for j = 1 to 100 do
    sum := !sum +. (!sign *. exp (-2. *. float_of_int (j * j) *. lambda *. lambda));
    sign := -. !sign
  done;
  Float.max 0. (Float.min 1. (2. *. !sum))

let ks_two_sample xs ys =
  let n = Array.length xs and m = Array.length ys in
  if n = 0 || m = 0 then invalid_arg "Tests.ks_two_sample: empty sample";
  let sx = Array.copy xs and sy = Array.copy ys in
  Array.sort compare sx;
  Array.sort compare sy;
  let i = ref 0 and j = ref 0 and d = ref 0. in
  while !i < n && !j < m do
    let x = sx.(!i) and y = sy.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    let fx = float_of_int !i /. float_of_int n in
    let fy = float_of_int !j /. float_of_int m in
    if Float.abs (fx -. fy) > !d then d := Float.abs (fx -. fy)
  done;
  let ne = float_of_int n *. float_of_int m /. float_of_int (n + m) in
  let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. !d in
  (!d, ks_significance lambda)
