(* A small persistent domain pool with deterministic fork-join.

   Work is submitted as a batch of [n] indexed tasks; the caller's
   domain participates, and [jobs - 1] persistent workers drain the
   shared index with [Atomic.fetch_and_add].  Every task runs inside an
   [Sf_obs.Shard.capture], and the shards are merged back on the
   caller in task-index order at the join barrier — scheduling decides
   only *when* a task runs, never what it observes or the order its
   output lands, so a fixed seed produces identical results, metrics
   and trace streams at any job count (doc/PARALLELISM.md).

   The sequential path (jobs = 1, or a single chunk, or a pool used
   inside another pool's task) runs the same capture/merge bracket
   inline, keeping the two paths literally the same code shape. *)

type batch = { b_n : int; b_next : int Atomic.t; b_run : int -> unit }

type t = {
  p_jobs : int;
  p_lock : Mutex.t;
  p_work : Condition.t;  (* workers: a new batch or shutdown *)
  p_done : Condition.t;  (* caller: all workers left the batch *)
  mutable p_batch : batch option;
  mutable p_gen : int;  (* bumped once per batch *)
  mutable p_active : int;  (* workers still inside the current batch *)
  mutable p_closing : bool;
  mutable p_domains : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Job-count defaults                                                  *)
(* ------------------------------------------------------------------ *)

(* cap the zero-config default: trial workloads stop scaling well
   before the core count on big machines, and CI runners lie about
   their parallelism *)
let recommended_jobs () = min 8 (Domain.recommended_domain_count ())

let env_jobs () =
  match Sys.getenv_opt "SCALEFREE_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | Some _ | None -> None)

let default = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
    let j = match env_jobs () with Some j -> j | None -> recommended_jobs () in
    default := Some j;
    j

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: need jobs >= 1";
  default := Some j

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let drain b =
  let rec loop () =
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < b.b_n then begin
      b.b_run i;
      loop ()
    end
  in
  loop ()

let rec worker_loop t gen_seen =
  Mutex.lock t.p_lock;
  while (not t.p_closing) && t.p_gen = gen_seen do
    Condition.wait t.p_work t.p_lock
  done;
  if t.p_closing then Mutex.unlock t.p_lock
  else begin
    let gen = t.p_gen in
    let batch = t.p_batch in
    Mutex.unlock t.p_lock;
    (match batch with
    | Some b ->
      (* b_run captures exceptions itself; the catch-all is belt and
         braces so a worker can never die and deadlock the barrier *)
      (try drain b with _ -> ());
      Mutex.lock t.p_lock;
      t.p_active <- t.p_active - 1;
      if t.p_active = 0 then Condition.broadcast t.p_done;
      Mutex.unlock t.p_lock
    | None -> ());
    worker_loop t gen
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?jobs () =
  let requested = match jobs with Some j -> j | None -> default_jobs () in
  if requested < 1 then invalid_arg "Pool.create: need jobs >= 1";
  (* a pool created inside another pool's task runs inline: nested
     spawning would oversubscribe the machine, and the enclosing
     capture already owns this domain's observability output *)
  let jobs = if Sf_obs.Shard.capturing () then 1 else requested in
  let t =
    {
      p_jobs = jobs;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_batch = None;
      p_gen = 0;
      p_active = 0;
      p_closing = false;
      p_domains = [];
    }
  in
  if jobs > 1 then
    t.p_domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.p_jobs

let shutdown t =
  Mutex.lock t.p_lock;
  t.p_closing <- true;
  Condition.broadcast t.p_work;
  Mutex.unlock t.p_lock;
  (* idempotent: a second call finds no domains left to join *)
  List.iter Domain.join t.p_domains;
  t.p_domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let run_batch t ~n run =
  let b = { b_n = n; b_next = Atomic.make 0; b_run = run } in
  Mutex.lock t.p_lock;
  t.p_batch <- Some b;
  t.p_gen <- t.p_gen + 1;
  t.p_active <- List.length t.p_domains;
  Condition.broadcast t.p_work;
  Mutex.unlock t.p_lock;
  drain b;
  (* the barrier: its lock ordering also publishes every slot the
     workers wrote, so the caller may read result arrays plainly *)
  Mutex.lock t.p_lock;
  while t.p_active > 0 do
    Condition.wait t.p_done t.p_lock
  done;
  t.p_batch <- None;
  Mutex.unlock t.p_lock

let map_chunks t ~chunk n f =
  if chunk < 1 then invalid_arg "Pool.map_chunks: need chunk >= 1";
  if n < 0 then invalid_arg "Pool.map_chunks: need n >= 0";
  if t.p_closing then invalid_arg "Pool.map_chunks: pool is shut down";
  if n = 0 then [||]
  else begin
    let n_chunks = ((n + chunk) - 1) / chunk in
    let results = Array.make n None in
    let run_chunk c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        results.(i) <- Some (f i)
      done
    in
    if t.p_jobs = 1 || n_chunks = 1 then
      (* sequential: the same capture/merge bracket per chunk, so the
         observability stream is structurally identical to a parallel
         run's — that, not luck, is the determinism guarantee *)
      for c = 0 to n_chunks - 1 do
        let (), shard = Sf_obs.Shard.capture (fun () -> run_chunk c) in
        Sf_obs.Shard.merge shard
      done
    else begin
      let shards = Array.make n_chunks None in
      let errors = Array.make n_chunks None in
      run_batch t ~n:n_chunks (fun c ->
          match Sf_obs.Shard.capture (fun () -> run_chunk c) with
          | (), shard -> shards.(c) <- Some shard
          | exception exn -> errors.(c) <- Some (exn, Printexc.get_raw_backtrace ()));
      let rec first_error c =
        if c >= n_chunks then None
        else match errors.(c) with Some e -> Some e | None -> first_error (c + 1)
      in
      match first_error 0 with
      | Some (exn, bt) ->
        (* deterministic failure: the smallest-index error wins and no
           shard is merged, whatever the interleaving was *)
        Printexc.raise_with_backtrace exn bt
      | None -> Array.iter (function Some s -> Sf_obs.Shard.merge s | None -> ()) shards
    end;
    Array.map (function Some v -> v | None -> assert false) results
  end

let mapi t n f = map_chunks t ~chunk:1 n f

let map t f arr = mapi t (Array.length arr) (fun i -> f arr.(i))
