(** A small persistent domain pool with {e deterministic} fork-join —
    the execution engine behind the trial grids of
    {!Sf_core.Searchability}, the experiment fan-out and the bench
    harness.

    The paper's bounds are statistical claims over thousands of
    independent search trials (PAPER.md, Theorems 1–2); the trials are
    embarrassingly parallel because every one owns a split random
    stream ([Rng.split_at master key]). This pool adds the missing
    piece: {b scheduling must not be observable}. Tasks are claimed
    from a shared atomic index by [jobs - 1] persistent worker domains
    plus the caller, but each task runs inside an
    {!Sf_obs.Shard.capture} and the shards are merged on the caller in
    task-index order at the join barrier — so results, metric totals
    and the trace stream are identical for a fixed seed at any job
    count. The full contract lives in doc/PARALLELISM.md.

    With [jobs = 1] (or a single chunk, or a pool created inside
    another pool's task) no domain is spawned and the same
    capture/merge bracket runs inline — the sequential fallback is the
    same code shape, not a separate path. *)

type t

(** {1 Lifecycle} *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] persistent worker domains
    (none when [jobs = 1]). Default: {!default_jobs}. Inside another
    pool's task the pool silently degrades to [jobs = 1] — nested
    spawning would oversubscribe the machine.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The effective job count (caller included). *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Using the pool afterwards
    raises. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] brackets [f] between {!create} and {!shutdown},
    shutting down even if [f] raises. *)

(** {1 Deterministic parallel maps} *)

val map_chunks : t -> chunk:int -> int -> (int -> 'a) -> 'a array
(** [map_chunks t ~chunk n f] computes [[| f 0; …; f (n-1) |]],
    dealing indices to the workers in contiguous chunks of [chunk].
    Each chunk is bracketed in an {!Sf_obs.Shard.capture}; shards are
    merged in chunk order at the join barrier. If any [f i] raises,
    the exception with the {e smallest index} is re-raised (with its
    backtrace) after the barrier and no shard of the batch is merged.
    [f] must not touch shared mutable state other than through
    [Sf_obs]; it may freely read the (immutable) captured environment.
    @raise Invalid_argument when [chunk < 1], [n < 0] or the pool is
    shut down. *)

val mapi : t -> int -> (int -> 'a) -> 'a array
(** [map_chunks] with [chunk = 1] — the right grain for search trials,
    where one task is milliseconds of work. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] = [mapi] over [arr]'s indices. *)

(** {1 Job-count defaults} *)

val default_jobs : unit -> int
(** The process default: {!set_default_jobs} if called, else a valid
    [SCALEFREE_JOBS] environment variable, else {!recommended_jobs}.
    The resolution is sticky — the environment is read once. *)

val set_default_jobs : int -> unit
(** Set the process default ([--jobs] lands here).
    @raise Invalid_argument when [jobs < 1]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8: trial workloads
    stop scaling well before the core count on big machines, and CI
    runners overstate their parallelism. *)
