type churn = { mean_up : float; mean_down : float }

(* Observability: how much churn the lazy renewal process actually
   simulated (doc/OBSERVABILITY.md). *)
let obs_queries = Sf_obs.Registry.counter "sim.churn.queries"
let obs_flips = Sf_obs.Registry.counter "sim.churn.flips"
let obs_uptime = Sf_obs.Registry.gauge "sim.churn.uptime"

let uptime c = c.mean_up /. (c.mean_up +. c.mean_down)

type result = {
  hit : bool;
  hit_time : float option;
  messages : int;
  dropped : int;
  duration : float;
}

(* Lazily simulated alternating renewal process per node: advance a
   node's timeline only when a message reaches it.  Exponential phase
   lengths make the stationary initialisation exact (memorylessness:
   the residual of the current phase has the full phase law). *)
type liveness = {
  rng : Sf_prng.Rng.t;
  churn : churn;
  state : bool array; (* alive now? *)
  next_flip : float array;
}

let make_liveness rng churn ~n ~force_alive =
  let l =
    {
      rng = Sf_prng.Rng.split rng;
      churn;
      state = Array.make n false;
      next_flip = Array.make n 0.;
    }
  in
  let p_up = uptime churn in
  for v = 0 to n - 1 do
    let alive = if v = force_alive - 1 then true else Sf_prng.Rng.bernoulli l.rng p_up in
    l.state.(v) <- alive;
    let mean = if alive then churn.mean_up else churn.mean_down in
    l.next_flip.(v) <- Sf_prng.Dist.exponential l.rng ~rate:(1. /. mean)
  done;
  l

let alive_at l v t =
  let i = v - 1 in
  while l.next_flip.(i) <= t do
    if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_flips;
    l.state.(i) <- not l.state.(i);
    if Sf_obs.Trace.active () then
      Sf_obs.Trace.instant "sim.churn.flip"
        ~args:
          [
            ("node", Sf_obs.Trace.Int v);
            ("at", Sf_obs.Trace.Float l.next_flip.(i));
            ("up", Sf_obs.Trace.Bool l.state.(i));
          ];
    let mean = if l.state.(i) then l.churn.mean_up else l.churn.mean_down in
    l.next_flip.(i) <- l.next_flip.(i) +. Sf_prng.Dist.exponential l.rng ~rate:(1. /. mean)
  done;
  l.state.(i)

let query ?max_messages ~rng net churn protocol ~source ~holders =
  if churn.mean_up <= 0. || churn.mean_down <= 0. then
    invalid_arg "Churn_sim.query: churn means must be positive";
  if Sf_obs.Registry.enabled () then begin
    Sf_obs.Counter.incr obs_queries;
    Sf_obs.Registry.set_gauge obs_uptime (uptime churn)
  end;
  let liveness = make_liveness rng churn ~n:(Network.n_nodes net) ~force_alive:source in
  let res =
    Query_sim.query ?max_messages ~alive:(alive_at liveness) ~rng net protocol ~source
      ~holders
  in
  {
    hit = res.Query_sim.hit;
    hit_time = res.Query_sim.hit_time;
    messages = res.Query_sim.messages;
    dropped = res.Query_sim.dropped;
    duration = res.Query_sim.duration;
  }
