module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph

(* Observability: message/coverage counters plus the two load gauges
   (deepest event-queue backlog and delivered-message rate) of the
   most recent query (doc/OBSERVABILITY.md). *)
let obs_queries = Sf_obs.Registry.counter "sim.queries"
let obs_messages = Sf_obs.Registry.counter "sim.messages"
let obs_dropped = Sf_obs.Registry.counter "sim.dropped"
let obs_contacted = Sf_obs.Registry.counter "sim.contacted"
let obs_queue_depth = Sf_obs.Registry.gauge "sim.queue_depth.max"
let obs_event_rate = Sf_obs.Registry.gauge "sim.event_rate"
let obs_hit_time = Sf_obs.Registry.histo "sim.hit_time"

type protocol =
  | Flood of { ttl : int }
  | K_walkers of { k : int; ttl : int }
  | Percolation of { q : float; ttl : int }

type result = {
  hit : bool;
  hit_time : float option;
  messages : int;
  contacted : int;
  dropped : int;
  duration : float;
}

type message = { dst : int; from : int; ttl : int; kind : kind }
and kind = Flood_msg | Walker | Percolation_msg

let validate_protocol = function
  | Flood { ttl } -> if ttl < 0 then invalid_arg "Query_sim: negative TTL"
  | K_walkers { k; ttl } ->
    if k < 1 then invalid_arg "Query_sim: need k >= 1";
    if ttl < 0 then invalid_arg "Query_sim: negative TTL"
  | Percolation { q; ttl } ->
    if q < 0. || q > 1. then invalid_arg "Query_sim: q outside [0, 1]";
    if ttl < 0 then invalid_arg "Query_sim: negative TTL"

let protocol_label = function
  | Flood { ttl } -> Printf.sprintf "flood(ttl=%d)" ttl
  | K_walkers { k; ttl } -> Printf.sprintf "%d-walkers(ttl=%d)" k ttl
  | Percolation { q; ttl } -> Printf.sprintf "percolation(q=%g,ttl=%d)" q ttl

let kind_label = function
  | Flood_msg -> "flood"
  | Walker -> "walker"
  | Percolation_msg -> "percolation"

let single_target net v =
  let holders = Array.make (Network.n_nodes net) false in
  if v < 1 || v > Network.n_nodes net then invalid_arg "Query_sim.single_target: bad node";
  holders.(v - 1) <- true;
  holders

let query ?max_messages ?(alive = fun _ _ -> true) ~rng net protocol ~source ~holders =
  validate_protocol protocol;
  let g = Network.graph net in
  let n = Network.n_nodes net in
  if source < 1 || source > n then invalid_arg "Query_sim.query: bad source";
  if Array.length holders <> n then invalid_arg "Query_sim.query: holder array size mismatch";
  let max_messages = Option.value ~default:(64 * n) max_messages in
  (* cached once: the trace stream's activity cannot change mid-query,
     and the hot paths below fire once per message *)
  let tr = Sf_obs.Trace.active () in
  if tr then
    Sf_obs.Trace.emit "sim.query" Sf_obs.Trace.Begin
      ~args:
        [
          ("protocol", Sf_obs.Trace.Str (protocol_label protocol));
          ("source", Sf_obs.Trace.Int source);
          ("nodes", Sf_obs.Trace.Int n);
        ];
  let queue = Event_queue.create () in
  let seen = Array.make n false in
  (* duplicate suppression for the spreading protocols: a node
     forwards a given query at most once *)
  let forwarded = Array.make n false in
  let flood_done v = forwarded.(v - 1) in
  let mark_flood v = forwarded.(v - 1) <- true in
  let contacted = ref 0 in
  let messages = ref 0 in
  let dropped = ref 0 in
  let now = ref 0. in
  let hit_time = ref None in
  let touch v =
    if not seen.(v - 1) then begin
      seen.(v - 1) <- true;
      incr contacted
    end;
    if holders.(v - 1) && !hit_time = None then hit_time := Some !now
  in
  let send ~from ~dst ~ttl ~kind =
    if !messages < max_messages then begin
      incr messages;
      if tr then
        Sf_obs.Trace.instant "sim.enqueue"
          ~args:
            [
              ("from", Sf_obs.Trace.Int from);
              ("dst", Sf_obs.Trace.Int dst);
              ("ttl", Sf_obs.Trace.Int ttl);
              ("kind", Sf_obs.Trace.Str (kind_label kind));
            ];
      Event_queue.schedule queue
        ~time:(!now +. Network.sample_latency net rng)
        { dst; from; ttl; kind }
    end
  in
  let forward_flood v ~from ~ttl =
    if ttl > 0 then
      Ugraph.iter_neighbors g v (fun u ->
          if u <> from && u <> v then send ~from:v ~dst:u ~ttl:(ttl - 1) ~kind:Flood_msg)
  in
  let forward_walker v ~ttl =
    if ttl > 0 then begin
      let deg = Ugraph.degree g v in
      if deg > 0 then begin
        let u =
          Ugraph.other_endpoint g ~edge_id:(Ugraph.incident_nth g v (Rng.int rng deg)) v
        in
        send ~from:v ~dst:u ~ttl:(ttl - 1) ~kind:Walker
      end
    end
  in
  let forward_percolation v ~from ~ttl ~q =
    if ttl > 0 then
      Ugraph.iter_neighbors g v (fun u ->
          if u <> from && u <> v && Rng.bernoulli rng q then
            send ~from:v ~dst:u ~ttl:(ttl - 1) ~kind:Percolation_msg)
  in
  (* kick off from the source at time 0 *)
  touch source;
  (match protocol with
  | _ when !hit_time <> None -> () (* source holds the content *)
  | Flood { ttl } ->
    mark_flood source;
    forward_flood source ~from:0 ~ttl
  | K_walkers { k; ttl } ->
    for _ = 1 to k do
      forward_walker source ~ttl
    done
  | Percolation { q; ttl } ->
    mark_flood source;
    forward_percolation source ~from:0 ~ttl ~q);
  let obs = Sf_obs.Registry.enabled () in
  let max_depth = ref (Event_queue.length queue) in
  let continue = ref true in
  while !continue && !hit_time = None do
    (if obs then
       let d = Event_queue.length queue in
       if d > !max_depth then max_depth := d);
    match Event_queue.next queue with
    | None -> continue := false
    | Some (time, msg) ->
      now := time;
      if tr then
        Sf_obs.Trace.counter "sim.queue_depth" (float_of_int (Event_queue.length queue));
      if not (alive msg.dst time) then begin
        incr dropped;
        if tr then
          Sf_obs.Trace.instant "sim.drop"
            ~args:
              [
                ("dst", Sf_obs.Trace.Int msg.dst);
                ("kind", Sf_obs.Trace.Str (kind_label msg.kind));
              ]
      end
      else begin
      if tr then
        Sf_obs.Trace.instant "sim.deliver"
          ~args:
            [
              ("dst", Sf_obs.Trace.Int msg.dst);
              ("ttl", Sf_obs.Trace.Int msg.ttl);
              ("kind", Sf_obs.Trace.Str (kind_label msg.kind));
            ];
      touch msg.dst;
      if !hit_time = None then begin
        match msg.kind with
        | Flood_msg ->
          (* duplicate suppression: a node floods a query only once *)
          if not (flood_done msg.dst) then begin
            mark_flood msg.dst;
            forward_flood msg.dst ~from:msg.from ~ttl:msg.ttl
          end
        | Walker -> forward_walker msg.dst ~ttl:msg.ttl
        | Percolation_msg ->
          if not (flood_done msg.dst) then begin
            mark_flood msg.dst;
            match protocol with
            | Percolation { q; _ } -> forward_percolation msg.dst ~from:msg.from ~ttl:msg.ttl ~q
            | Flood _ | K_walkers _ -> assert false
          end
      end
      end
  done;
  if tr then
    Sf_obs.Trace.emit "sim.query" Sf_obs.Trace.End
      ~args:
        [
          ("hit", Sf_obs.Trace.Bool (!hit_time <> None));
          ("messages", Sf_obs.Trace.Int !messages);
          ("contacted", Sf_obs.Trace.Int !contacted);
          ("dropped", Sf_obs.Trace.Int !dropped);
        ];
  if obs then begin
    Sf_obs.Counter.incr obs_queries;
    Sf_obs.Counter.add obs_messages !messages;
    Sf_obs.Counter.add obs_dropped !dropped;
    Sf_obs.Counter.add obs_contacted !contacted;
    Sf_obs.Registry.set_gauge obs_queue_depth (float_of_int !max_depth);
    if !now > 0. then
      Sf_obs.Registry.set_gauge obs_event_rate (float_of_int !messages /. !now);
    Option.iter (Sf_obs.Histo.observe obs_hit_time) !hit_time
  end;
  {
    hit = !hit_time <> None;
    hit_time = !hit_time;
    messages = !messages;
    contacted = !contacted;
    dropped = !dropped;
    duration = !now;
  }
