(** The containment event [E_{a,b}] of Lemma 2 and its probability
    (Lemma 3 of PAPER.md).

    [E_{a,b} = ∩_{a < k ≤ b} { N_k ≤ a }]: every vertex arriving in
    the window [(a, b]] attaches to the "old core" [[1, a]]. This is
    the event conditioning the vertex equivalence of {!Equivalence},
    and its probability is the [P(E)] factor of every
    {!Lower_bound.lemma1} bound. At generation time, the
    [gen.mori.father_age] histogram (doc/OBSERVABILITY.md) records
    the attachment ages whose old-core bias makes the event likely.

    {b Exact closed form.} Conditional on the event's prefix
    [E_{a,k-1}], every one of the [k-2] edges existing when vertex [k]
    arrives points into [[1, a]] (vertices [2..a] always attach below
    themselves; window vertices by conditioning), so the indegree mass
    inside the core is exactly [k-2] and

    {[
      P(N_k ≤ a | E_{a,k-1})
        = (p(k-2) + (1-p)a) / (p(k-2) + (1-p)(k-1))
    ]}

    deterministically — whence the product formula implemented by
    {!prob_exact}. The paper states only the bound
    [P(E_{a,b}) ≥ e^{-(1-p)}] for the window [b = a + ⌊√(a-1)⌋]
    (Lemma 3); the product makes every experiment's constant explicit
    and is verified against brute-force enumeration and Monte-Carlo in
    the test suite. Note the probability does not depend on the final
    tree size [t ≥ b]. *)

val window_end : a:int -> int
(** Lemma 3's window: [b = a + ⌊√(a-1)⌋]. Requires [a >= 2]. *)

val step_prob : p:float -> a:int -> k:int -> float
(** [P(N_k ≤ a | E_{a,k-1})] as above. Requires [2 <= a < k]. *)

val prob_exact : p:float -> a:int -> b:int -> float
(** [P(E_{a,b})], the product of {!step_prob} over the window;
    computed in log space. Requires [2 <= a <= b]; equals 1 when
    [a = b]. *)

val lemma3_bound : p:float -> float
(** [e^{-(1-p)}], Lemma 3's lower bound for the canonical window. *)

val holds : Sf_graph.Digraph.t -> a:int -> b:int -> bool
(** Whether a realised Móri tree satisfies [E_{a,b}]. *)

val prob_monte_carlo :
  Sf_prng.Rng.t -> p:float -> a:int -> b:int -> trials:int -> float * float
(** [(estimate, standard_error)] of [P(E_{a,b})] from [trials]
    unconditioned trees of size [b]. *)
