module Rng = Sf_prng.Rng
module Runner = Sf_search.Runner
module Strategy = Sf_search.Strategy
module Ugraph = Sf_graph.Ugraph

type point = {
  n : int;
  strategy : string;
  trials : int;
  mean : float;
  ci95 : float;
  median : float;
  q90 : float;
  timeouts : int;
  gave_up : int;
}

type metric = To_neighbor | To_target

type spec = {
  trials : int;
  metric : metric;
  budget : int -> int;
  source : [ `Oldest | `Random ];
}

let default_spec =
  { trials = 30; metric = To_neighbor; budget = (fun n -> (4 * n) + 64); source = `Oldest }

let pick_source rng spec g target =
  match spec.source with
  | `Oldest -> if target = 1 && Ugraph.n_vertices g > 1 then 2 else 1
  | `Random ->
    let n = Ugraph.n_vertices g in
    let rec draw () =
      let v = 1 + Rng.int rng n in
      if v = target then draw () else v
    in
    draw ()

let trial_cost spec outcome =
  let recorded =
    match spec.metric with
    | To_neighbor -> outcome.Runner.to_neighbor
    | To_target -> outcome.Runner.to_target
  in
  match recorded with
  | Some r -> (float_of_int r, false)
  | None -> (float_of_int outcome.Runner.total_requests, true)

(* A unique, order-independent stream per cell and trial.  Public so
   sfcorpus build can pre-generate exactly the graphs a later measure
   grid will request from the corpus cache (lib/store). *)
let trial_rng master ~size_idx ~strat_idx ~trial =
  let key = (((size_idx * 97) + strat_idx) * 65_537) + trial in
  Rng.split_at master key

(* One independent trial: the parallel unit of work.  Everything here
   is either freshly built from the trial's split stream or routed
   through the capture-aware Sf_obs layer, so trials may run on any
   domain in any order. *)
let run_trial master spec ~make ~strategy ~n ~size_idx ~strat_idx ~trial =
  let rng = trial_rng master ~size_idx ~strat_idx ~trial in
  (* Trace events, not Span.with_span: thousands of trials would bloat
     the manifest's span forest, while the stream costs nothing with no
     sink attached. *)
  let tracing = Sf_obs.Trace.active () in
  if tracing then
    Sf_obs.Trace.emit "search.trial" Sf_obs.Trace.Begin
      ~args:
        [
          ("n", Sf_obs.Trace.Int n);
          ("strategy", Sf_obs.Trace.Str strategy.Strategy.name);
          ("trial", Sf_obs.Trace.Int trial);
        ];
  let g, target = make rng n in
  let source = pick_source rng spec g target in
  let stop_at =
    match spec.metric with To_neighbor -> Runner.At_neighbor | To_target -> Runner.At_target
  in
  let outcome = Runner.search ~budget:(spec.budget n) ~stop_at ~rng g strategy ~source ~target in
  let cost, truncated = trial_cost spec outcome in
  if tracing then
    Sf_obs.Trace.emit "search.trial" Sf_obs.Trace.End
      ~args:
        [
          ("cost", Sf_obs.Trace.Float cost);
          ("truncated", Sf_obs.Trace.Bool truncated);
          ("gave_up", Sf_obs.Trace.Bool outcome.Runner.gave_up);
        ];
  (cost, truncated, outcome.Runner.gave_up)

let validate_grid ~sizes ~spec =
  if spec.trials < 1 then invalid_arg "Searchability.measure: need trials >= 1";
  List.iter
    (fun n ->
      let b = spec.budget n in
      if b < 1 then
        invalid_arg
          (Printf.sprintf "Searchability.measure: budget must be positive (got %d for n = %d)"
             b n))
    sizes

let n_grid_tasks ~sizes ~strategies ~spec =
  List.length sizes * List.length strategies * spec.trials

(* One flattened grid task, ascending in exactly the order the old
   sequential triple loop visited (size, strategy, trial).  This
   decomposition is the unit both Pool.mapi (below) and the lib/fabric
   worker processes execute, so a shard of [lo, hi) tasks run in
   another process is draw-for-draw the same work as positions
   [lo, hi) of an in-process run. *)
let run_grid_task master ~spec ~make ~strategies ~sizes task =
  let n_strats = Array.length strategies in
  let cell = task / spec.trials and trial = task mod spec.trials in
  let size_idx = cell / n_strats and strat_idx = cell mod n_strats in
  run_trial master spec ~make ~strategy:strategies.(strat_idx) ~n:sizes.(size_idx) ~size_idx
    ~strat_idx ~trial

(* Statistical aggregation over the flat outcome array, folding trial
   results in trial order — bit-identical to the sequential loop, and
   shared by measure and the fabric coordinator's shard merge. *)
let aggregate ~sizes ~strategies ~spec outcomes =
  let sizes_a = Array.of_list sizes in
  let strategies_a = Array.of_list strategies in
  let n_strats = Array.length strategies_a in
  let expected = Array.length sizes_a * n_strats * spec.trials in
  if Array.length outcomes <> expected then
    invalid_arg
      (Printf.sprintf "Searchability.aggregate: %d outcomes for a %d-task grid"
         (Array.length outcomes) expected);
  let points = ref [] in
  Array.iteri
    (fun size_idx n ->
      Array.iteri
        (fun strat_idx strategy ->
          let summary = Sf_stats.Summary.create () in
          let costs = Array.make spec.trials 0. in
          let timeouts = ref 0 and gave_up = ref 0 in
          for trial = 0 to spec.trials - 1 do
            let task = ((((size_idx * n_strats) + strat_idx) * spec.trials) + trial) in
            let cost, truncated, gup = outcomes.(task) in
            if truncated then incr timeouts;
            if gup then incr gave_up;
            Sf_stats.Summary.add summary cost;
            costs.(trial) <- cost
          done;
          let point =
            {
              n;
              strategy;
              trials = spec.trials;
              mean = Sf_stats.Summary.mean summary;
              ci95 = Sf_stats.Summary.ci95_halfwidth summary;
              median = Sf_stats.Quantile.median costs;
              q90 = Sf_stats.Quantile.quantile costs ~q:0.9;
              timeouts = !timeouts;
              gave_up = !gave_up;
            }
          in
          points := point :: !points)
        strategies_a)
    sizes_a;
  List.rev !points

let measure ?jobs master ~make ~strategies ~sizes ~spec =
  validate_grid ~sizes ~spec;
  let sizes_a = Array.of_list sizes in
  let strategies_a = Array.of_list strategies in
  let n_tasks = n_grid_tasks ~sizes ~strategies ~spec in
  (* Flattened task index — the pool merges per-task observability
     shards in this order, so metrics and trace come out identical at
     any job count. *)
  let outcomes =
    Sf_parallel.Pool.with_pool ?jobs (fun pool ->
        Sf_parallel.Pool.mapi pool n_tasks
          (run_grid_task master ~spec ~make ~strategies:strategies_a ~sizes:sizes_a))
  in
  aggregate ~sizes ~strategies:(List.map (fun s -> s.Strategy.name) strategies) ~spec outcomes

(* --- corpus-cached instance makers (doc/STORAGE.md) ----------------

   [cached] routes a maker through the ambient corpus cache: with no
   corpus configured it is the maker itself; with one, each (gen,
   params, n, trial-stream) coordinate is generated once, stored in
   the binary format, and replayed — including the post-generation rng
   state, so results are byte-identical either way.  The [params] list
   must render every value the maker closes over. *)

let fparam = Printf.sprintf "%.17g"

let cached ~gen ~params make rng n = Sf_store.Corpus.instance ~gen ~params make rng n

let mori_instance ~p ~m rng n =
  cached ~gen:"mori"
    ~params:[ ("p", fparam p); ("m", string_of_int m) ]
    (fun rng n ->
      (* the giant engine is draw-for-draw identical to Mori.graph on
         the same stream (tested), so swapping it in changes memory
         and speed, not results — coordinates and goldens carry over *)
      let bound = Lower_bound.theorem1 ~p ~m ~n in
      (Sf_gen.Mori.graph_giant rng ~p ~m ~n:bound.Lower_bound.graph_size, n))
    rng n

let cf_params_rendered (params : Sf_gen.Cooper_frieze.params) =
  let dist d =
    d
    |> List.map (fun (v, prob) -> Printf.sprintf "%d:%s" v (fparam prob))
    |> String.concat ";"
  in
  [
    ("alpha", fparam params.Sf_gen.Cooper_frieze.alpha);
    ("beta", fparam params.Sf_gen.Cooper_frieze.beta);
    ("gamma", fparam params.Sf_gen.Cooper_frieze.gamma);
    ("delta", fparam params.Sf_gen.Cooper_frieze.delta);
    ("q", dist params.Sf_gen.Cooper_frieze.q);
    ("p_dist", dist params.Sf_gen.Cooper_frieze.p_dist);
    ( "pref",
      match params.Sf_gen.Cooper_frieze.preference with
      | Sf_gen.Cooper_frieze.In_degree -> "in"
      | Sf_gen.Cooper_frieze.Total_degree -> "total" );
  ]

let cooper_frieze_instance params rng n =
  cached ~gen:"cooper-frieze" ~params:(cf_params_rendered params)
    (fun rng n ->
      let extra = int_of_float (sqrt (float_of_int n)) in
      let g = Sf_gen.Cooper_frieze.generate_n_vertices rng params ~n:(n + extra) in
      (Ugraph.of_digraph g, n))
    rng n

let cooper_frieze_giant_instance params rng n =
  (* a distinct coordinate, not a swap: the giant CF path consumes the
     stream differently from the legacy one (alias out-degree draws),
     so the two must never share cache objects or be compared
     digest-for-digest — equal in law only *)
  cached ~gen:"cooper-frieze-giant" ~params:(cf_params_rendered params)
    (fun rng n ->
      let extra = int_of_float (sqrt (float_of_int n)) in
      (Sf_gen.Cooper_frieze.generate_n_vertices_giant rng params ~n:(n + extra), n))
    rng n

let config_model_instance ~exponent rng n =
  cached ~gen:"config-giant"
    ~params:[ ("exponent", fparam exponent) ]
    (fun rng n ->
      let g = Sf_gen.Config_model.searchable_power_law rng ~n ~exponent () in
      let u = Ugraph.of_digraph g in
      let n' = Ugraph.n_vertices u in
      let target = if n' <= 1 then 1 else 2 + Rng.int rng (n' - 1) in
      (u, target))
    rng n

let points_to_csv points =
  Sf_stats.Csv.to_string
    ~header:[ "n"; "strategy"; "trials"; "mean"; "ci95"; "median"; "q90"; "timeouts"; "gave_up" ]
    ~rows:
      (List.map
         (fun pt ->
           [
             string_of_int pt.n;
             pt.strategy;
             string_of_int pt.trials;
             Printf.sprintf "%.6g" pt.mean;
             Printf.sprintf "%.6g" pt.ci95;
             Printf.sprintf "%.6g" pt.median;
             Printf.sprintf "%.6g" pt.q90;
             string_of_int pt.timeouts;
             string_of_int pt.gave_up;
           ])
         points)

let points_of_strategy points ~strategy =
  List.filter (fun pt -> pt.strategy = strategy) points

let exponent_fit points ~strategy =
  let series =
    points_of_strategy points ~strategy
    |> List.map (fun pt -> (float_of_int pt.n, Float.max pt.mean 1e-9))
  in
  Sf_stats.Regression.log_log series
