(** The measurement harness confronting strategies with the lower
    bounds of PAPER.md: run (graph model × strategy × size) grids,
    aggregate request counts with confidence intervals, fit scaling
    exponents against Theorem 1's [Ω(√n)].

    Every trial owns a split random stream derived from the master
    seed and the trial index, so grids are bit-reproducible under any
    execution order.

    Measurement rides on the instrumented runner: each trial advances
    the [search.*] counters and the [search.requests_per_run]
    histogram (doc/OBSERVABILITY.md), so a grid run with
    [--metrics obs.json] leaves a manifest whose totals cross-check
    the {!point} aggregates reported here. *)

type point = {
  n : int; (** problem size (vertices of the searched graph) *)
  strategy : string;
  trials : int;
  mean : float; (** mean requests under the chosen metric *)
  ci95 : float; (** 95% half-width *)
  median : float;
  q90 : float;
  timeouts : int; (** trials truncated by the budget (their cost is
                      counted as the budget: a conservative
                      under-estimate, safe for lower-bound checks) *)
  gave_up : int; (** trials where the strategy ran out of moves *)
}

type metric =
  | To_neighbor
      (** requests until the target's closed neighbourhood is touched
          — the paper's complexity measure *)
  | To_target  (** requests until the target itself is discovered *)

type spec = {
  trials : int;
  metric : metric;
  budget : int -> int; (** request budget as a function of [n] *)
  source : [ `Oldest | `Random ];
      (** where searches start: vertex 1 (the old, well-connected
          core — the searcher-friendly choice) or a uniform non-target
          vertex *)
}

val default_spec : spec
(** 30 trials, {!To_neighbor}, budget [4n + 64], oldest-vertex
    start. *)

val measure :
  ?jobs:int ->
  Sf_prng.Rng.t ->
  make:(Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int) ->
  strategies:Sf_search.Strategy.t list ->
  sizes:int list ->
  spec:spec ->
  point list
(** [make rng n] must return a connected graph for problem size [n]
    together with the search target. One fresh graph per trial.

    Trials run on an {!Sf_parallel.Pool} of [jobs] domains (default
    {!Sf_parallel.Pool.default_jobs}); every trial owns the split
    stream [Rng.split_at master key] and aggregation folds results in
    trial order, so points, metrics and trace output are identical for
    a fixed seed at any job count (doc/PARALLELISM.md).

    @raise Invalid_argument when [spec.trials < 1] or [spec.budget]
    returns a non-positive budget for any requested size — a budget of
    zero would silently record every trial as a timeout. *)

(** {2 The grid, one task at a time}

    [measure] is [run_grid_task] fanned over a {!Sf_parallel.Pool}
    followed by [aggregate]; the pieces are public so the distributed
    fabric ([lib/fabric]) can run shards of the same flattened task
    range in worker {e processes} and still merge to byte-identical
    output (doc/FABRIC.md). *)

val validate_grid : sizes:int list -> spec:spec -> unit
(** The argument checks {!measure} performs.
    @raise Invalid_argument as {!measure}. *)

val n_grid_tasks : sizes:int list -> strategies:'a list -> spec:spec -> int
(** [|sizes| * |strategies| * spec.trials] — the flattened task count. *)

val run_grid_task :
  Sf_prng.Rng.t ->
  spec:spec ->
  make:(Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int) ->
  strategies:Sf_search.Strategy.t array ->
  sizes:int array ->
  int ->
  float * bool * bool
(** Run flattened grid task [task] (ascending in (size, strategy,
    trial) order, trial innermost) on its own {!trial_rng} stream and
    return [(cost, truncated, gave_up)]. Depends only on the master
    stream and the task index — any process may run any task in any
    order. *)

val aggregate :
  sizes:int list ->
  strategies:string list ->
  spec:spec ->
  (float * bool * bool) array ->
  point list
(** Fold a full flat outcome array (as indexed by {!run_grid_task})
    into points, in (size, strategy) order with trials folded in trial
    order — bit-identical to a sequential loop.
    @raise Invalid_argument when the array length is not the grid's
    task count. *)

val trial_rng :
  Sf_prng.Rng.t -> size_idx:int -> strat_idx:int -> trial:int -> Sf_prng.Rng.t
(** The split stream a {!measure} grid hands to the given (size,
    strategy, trial) cell. Exposed so [sfcorpus build] can pre-generate
    exactly the graphs a later grid run will request from the corpus
    cache (doc/STORAGE.md). *)

(** {2 Instance makers}

    The three makers below build one fresh problem instance per trial.
    Each routes through {!Sf_store.Corpus.instance}: with no corpus
    configured they generate directly; with one ([--corpus] /
    [SCALEFREE_CORPUS]), generated graphs are stored in the binary
    format keyed by (generator, parameters, n, trial stream) and
    replayed on later runs — byte-identical results either way, since
    a cache hit also restores the post-generation rng state. *)

val mori_instance :
  p:float -> m:int -> Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int
(** The Theorem 1 workload: the merged Móri graph sized
    [graph_size] from {!Lower_bound.theorem1} (so the equivalence
    window exists), target = vertex [n]. Built by the giant engine
    ({!Sf_gen.Mori.graph_giant}) at every size — it is draw-for-draw
    identical to the legacy path, so this is a storage change, not a
    distribution change. *)

val cooper_frieze_instance :
  Sf_gen.Cooper_frieze.params -> Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int
(** The Theorem 2 workload: CF graph grown to [n + ⌊√n⌋] vertices,
    target = vertex [n]. *)

val cooper_frieze_giant_instance :
  Sf_gen.Cooper_frieze.params -> Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int
(** The Theorem 2 workload built by the flat-storage giant engine
    ({!Sf_gen.Cooper_frieze.generate_n_vertices_giant}) — the choice
    for [n] in the millions. Cached under its own coordinate
    ([cooper-frieze-giant]): the giant path consumes the random
    stream differently from the legacy one, so the two are equal in
    law but not interchangeable draw-for-draw. (The Móri maker needs
    no such split — its giant engine is samplewise identical and
    {!mori_instance} already uses it.) *)

val config_model_instance :
  exponent:float -> Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int
(** The Adamic et al. workload: largest component of a power-law
    configuration graph; the target is a uniform vertex distinct from
    the source-designate (vertex 1 after relabelling). *)

val exponent_fit : point list -> strategy:string -> Sf_stats.Regression.fit
(** Log–log fit of [mean] against [n] for one strategy's points.
    @raise Invalid_argument with fewer than two sizes. *)

val points_of_strategy : point list -> strategy:string -> point list

val points_to_csv : point list -> string
(** CSV export of a measurement grid (header: n, strategy, trials,
    mean, ci95, median, q90, timeouts, gave_up) — the bridge to
    external plotting tools. *)
