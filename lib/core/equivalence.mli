(** Probabilistic vertex equivalence (Definitions 1–2 of PAPER.md)
    and the verification of Lemma 2.

    Lemma 2 is the engine of both theorems: conditional on the
    containment event [E_{a,b}] ({!Events}), the window vertices of a
    Móri tree are equivalent, so no searcher can tell them apart and
    Lemma 1 ({!Lower_bound.lemma1}) applies.

    A vertex set [V] is equivalent conditional on an event [E] when,
    for every [σ ∈ S_V], the conditional laws of [G] and [σ(G)]
    coincide. Two checkers:

    - {!exact}: for small [t], enumerate the whole probability space
      ({!Enumerate}), build the conditional distribution over labelled
      trees, and compare it with its image under every transposition
      of the window (transpositions generate [S_V], and the
      permutation action on distributions is a group homomorphism, so
      invariance under transpositions gives invariance under all of
      [S_V]). The reported discrepancy is a hard number — Lemma 2
      predicts 0 up to float rounding.

    - {!monte_carlo}: at experiment scale, sample trees {e conditioned
      on} [E_{a,b}] (exact conditional sampler,
      {!Sf_gen.Mori.tree_conditioned}), and compare a window statistic
      of [G] against the same statistic of [σ(G)] with a chi-square
      two-sample test. Under Lemma 2 the test must not reject (beyond
      its level); for the {e unconditioned} model it must reject for
      wide windows — the negative control showing the test has
      power. *)

type exact_report = {
  a : int;
  b : int;
  t : int;
  n_outcomes : int;
  event_prob : float; (** exact [P(E_{a,b})] from enumeration *)
  permutations_checked : int;
  max_discrepancy : float;
      (** max over checked σ and graph keys of
          [|P(G = g | E) - P(σG = g | E)|] *)
}

val exact : p:float -> t:int -> a:int -> b:int -> exact_report
(** @raise Invalid_argument if [t > 12] (enumeration blow-up guard) or
    the window is malformed. *)

type rational_report = {
  equal : bool;
      (** the conditional laws of [G] and [σ(G)] agree {e exactly},
          fraction by fraction, for every window transposition *)
  event_prob : Rational.t; (** exact [P(E_{a,b})] as a fraction *)
  outcomes_conditioned : int;
  permutations_checked : int;
}

val exact_rational :
  p_num:int -> p_den:int -> t:int -> a:int -> b:int -> rational_report
(** {!exact} with {e no floating point}: for rational [p], every
    outcome probability is an exact 64-bit fraction, so the
    distribution comparison is literal equality — a machine-checked
    certificate of Lemma 2 for the given instance rather than an
    epsilon test. @raise Rational.Overflow if 64 bits ever fail to
    suffice (they do not for [t <= 12] and small denominators). *)

type mc_report = {
  trials : int;
  chi_square : float;
  dof : int;
  p_value : float;
  tv_distance : float; (** total variation between the two samples *)
}

val window_statistic : Sf_graph.Digraph.t -> a:int -> b:int -> string
(** The projection used by the Monte-Carlo test: capped
    (indegree, father-class) labels of fixed window slots — all slots
    for windows of width ≤ 4, else the first, middle and last. Being a
    fixed function of the labelled graph, it is a legitimate test
    statistic for distribution equality of [G] vs [σ(G)]; its coarse
    category space keeps the chi-square calibrated at a few thousand
    samples. *)

val monte_carlo :
  Sf_prng.Rng.t ->
  p:float ->
  t:int ->
  a:int ->
  b:int ->
  trials:int ->
  sigma:Sf_graph.Permute.t ->
  conditioned:bool ->
  mc_report
(** Sample [trials] trees for each side ([G] vs [σ(G)]), conditioned
    on [E_{a,b}] when [conditioned] (Lemma 2's hypothesis) or
    unconditioned (the negative control), and chi-square-compare the
    window statistics. [sigma] must permute only [[a+1, b]]. *)

val random_window_sigma :
  Sf_prng.Rng.t -> t:int -> a:int -> b:int -> Sf_graph.Permute.t
(** A uniform non-trivial permutation of the window (resampled until
    it differs from the identity; requires [b > a]). *)
