(** Lemma 1 and the explicit (non-asymptotic) lower bounds of
    Theorems 1 and 2 of Duchon–Eggemann–Hanusse, "Non-searchability of
    random scale-free graphs" (PAPER.md).

    Lemma 1: if [V] is equivalent conditional on [E]
    ({!Equivalence}), every weak searcher for a target in [V] makes at
    least [|V|·P(E)/2] expected requests — "requests" being exactly
    what the [search.requests] counter of the observability layer
    measures at runtime (doc/OBSERVABILITY.md), so every bound
    computed here can be confronted with a measured manifest. The
    theorem drivers instantiate [V] and [E]:

    - {b Theorem 1} (Móri, merged or not): the window
      [V = [a+1, b]] with [a = n-1], [b = a + ⌊√(a-1)⌋] (scaled by
      the merge factor [m]), and [E = E_{a,b}] with its exact
      probability ({!Events.prob_exact}) — so the bound carries an
      explicit constant, not just Ω(√n).
    - {b Theorem 2} (Cooper–Frieze): the analogous containment event —
      the last [w ≈ √n] arrivals attach only to the old core, receive
      no edges, and are never reused as OLD-step sources; arrivals
      sharing an out-degree are then exchangeable. The paper omits the
      CF proof details (page limit), so the event probability and
      equivalence-class size are estimated by Monte-Carlo here,
      yielding an {e estimated} explicit bound of the same √n shape. *)

val lemma1 : set_size:int -> event_prob:float -> float
(** [|V| · P(E) / 2]. *)

type bound = {
  n : int; (** the target vertex (the n-th arrival) *)
  m : int; (** merge factor (1 = tree) *)
  p : float;
  a : int; (** window start, in {e merged} vertex ids *)
  b : int; (** window end (inclusive) *)
  graph_size : int; (** merged vertices the graph must have (= b) *)
  set_size : int;
  event_prob : float;
  requests : float; (** the Lemma 1 expected-request lower bound *)
}

val theorem1 : p:float -> m:int -> n:int -> bound
(** The explicit Theorem 1 bound for finding vertex [n] in the merged
    Móri graph. The window in tree coordinates is
    [(a·m, a·m + w·m]] with [w = max 1 (⌊√(a·m - 1)⌋ / m)], so the
    merged window [V = [a+1, a+w]] consists of [w] fully-merged
    blocks; [P(E)] is exact. For [m = 1] this is literally the
    paper's construction. @raise Invalid_argument if [n < 3]. *)

type window_choice = {
  width : int; (** window width w *)
  event_prob : float; (** exact P(E_{a, a+w}) *)
  requests : float; (** the Lemma-1 bound w·P(E)/2 *)
}

val window_tradeoff : p:float -> a:int -> widths:int list -> window_choice list
(** The bound as a function of the window width, with exact event
    probabilities: widening the window grows |V| linearly but decays
    P(E) exponentially beyond ~√a. The ablation behind the paper's
    choice w = ⌊√(a−1)⌋ (experiment T18). *)

val optimal_window : p:float -> a:int -> ?max_width:int -> unit -> window_choice
(** The width maximising w·P(E_{a,a+w})/2, found by an exact
    incremental scan up to [max_width] (default 8·√a). The optimum
    sits at Θ(√a) and improves the canonical constant only by a
    bounded factor — the paper's choice is the right order. *)

val asymptotic_theorem1 : p:float -> n:int -> float
(** The paper's headline form [√n · e^{-(1-p)} / 2] (weak model,
    m = 1): what Lemmas 1–3 give without the exact product. *)

val strong_model_exponent : p:float -> float
(** Theorem 1, strong model: the bound exponent [1/2 - p] (positive
    content only for [p < 1/2], as the paper notes). *)

type cf_estimate = {
  n : int;
  window : int;
  trials : int;
  event_rate : float; (** Monte-Carlo P(E) *)
  event_rate_se : float;
  mean_class_size : float;
      (** mean size of the largest same-out-degree class within the
          window, among event trials *)
  requests : float; (** estimated Lemma 1 bound *)
}

val theorem2_estimate :
  Sf_prng.Rng.t ->
  Sf_gen.Cooper_frieze.params ->
  n:int ->
  ?window:int ->
  trials:int ->
  unit ->
  cf_estimate
(** Monte-Carlo instantiation of the Theorem 2 machinery on
    Cooper–Frieze graphs; [window] defaults to [⌊√n⌋]. *)

val cf_event_holds :
  Sf_graph.Digraph.t -> arrival:int array -> n:int -> window:int -> bool
(** The Theorem 2 containment event on a traced CF graph: every vertex
    of the window [[n-window+1, n]] kept its arrival out-degree, has
    indegree 0, and all its out-edges land at or below [n - window]. *)
