(** Deterministic, splittable pseudo-random number generator.

    The core generator is xoshiro256++ (Blackman & Vigna), seeded through
    splitmix64 so that any 64-bit seed yields a well-mixed initial state.
    Streams are {e splittable}: [split t] derives a statistically
    independent child stream from [t], which lets every trial of an
    experiment own its private stream and makes results reproducible
    independently of execution order.

    All operations mutate the state in place; copy with {!copy} when a
    snapshot is needed. *)

type t
(** Mutable generator state. *)

val of_seed : int -> t
(** [of_seed seed] creates a generator deterministically from [seed].
    Distinct seeds give streams that behave independently. *)

val of_int64_seed : int64 -> t
(** Same as {!of_seed} but accepts a full 64-bit seed. *)

val split : t -> t
(** [split t] draws entropy from [t] to create a fresh, statistically
    independent generator. [t] advances; the child shares no state. *)

val split_at : t -> int -> t
(** [split_at t i] derives the [i]-th child of [t] {e without} advancing
    [t]: the child depends only on [t]'s current state and [i]. Useful to
    give trial [i] of an experiment its own stream while keeping the
    parent reusable. *)

val copy : t -> t
(** [copy t] snapshots the state; the copy evolves independently. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int] (portable across word sizes). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1]. Unbiased (rejection
    sampling). @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound) with 53-bit resolution. *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val jump : t -> unit
(** Advance the state by 2^128 steps (xoshiro jump polynomial); used to
    spread sub-streams far apart in the cycle. *)

val state_fingerprint : t -> int64
(** Hash of the current state, for tests that detect state divergence. *)

val state_words : t -> int64 array
(** The four xoshiro256++ state words, as a fresh array. Together with
    {!set_state_words} this lets a cache (lib/store) snapshot a stream
    after graph generation and resume it on a cache hit, so a run that
    skips generation consumes exactly the same stream as one that does
    not. *)

val set_state_words : t -> int64 array -> unit
(** Restore a state captured by {!state_words}.
    @raise Invalid_argument unless given exactly four words. *)
