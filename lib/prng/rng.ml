(* xoshiro256++ with splitmix64 seeding.  The generator state is four
   int64 words; all int64 arithmetic below is modular, which matches the
   reference C implementation. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: one step of the stateless mixing generator, used both for
   seeding and for deriving split children. *)
let splitmix64_next x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let z = x in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (x, Int64.logxor z (Int64.shift_right_logical z 31))

let of_int64_seed seed =
  let x0, a = splitmix64_next seed in
  let x1, b = splitmix64_next x0 in
  let x2, c = splitmix64_next x1 in
  let _, d = splitmix64_next x2 in
  { s0 = a; s1 = b; s2 = c; s3 = d }

let of_seed seed = of_int64_seed (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_int64_seed (int64 t)

let split_at t i =
  (* Mix the parent fingerprint with the child index through splitmix64;
     the parent state is left untouched. *)
  let mix = Int64.logxor (Int64.logxor t.s0 (rotl t.s1 13)) (Int64.logxor (rotl t.s2 29) (rotl t.s3 47)) in
  let _, h = splitmix64_next (Int64.logxor mix (Int64.of_int i)) in
  of_int64_seed h

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

(* Uniform int in [0, bound) by rejection on the top 62 bits, so the
   result is exact for any bound representable as a positive int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (int64 t) 2 in
    let v = Int64.rem r bound64 in
    (* Reject the final partial block to remove modulo bias. *)
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int 1L) bound64 then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let jump_poly = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (int64 t)
      done)
    jump_poly;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let state_words t = [| t.s0; t.s1; t.s2; t.s3 |]

let set_state_words t w =
  if Array.length w <> 4 then invalid_arg "Rng.set_state_words: need exactly 4 words";
  t.s0 <- w.(0);
  t.s1 <- w.(1);
  t.s2 <- w.(2);
  t.s3 <- w.(3)

let state_fingerprint t =
  let _, h0 = splitmix64_next t.s0 in
  let _, h1 = splitmix64_next (Int64.logxor h0 t.s1) in
  let _, h2 = splitmix64_next (Int64.logxor h1 t.s2) in
  let _, h3 = splitmix64_next (Int64.logxor h2 t.s3) in
  h3
