(** Degree statistics of directed multigraphs. *)

val in_degrees : Digraph.t -> int array
(** [a.(v-1)] = indegree of [v]. *)

val out_degrees : Digraph.t -> int array

val total_degrees : Digraph.t -> int array
(** Loop-counts-twice convention ({!Digraph.degree}). *)

val max_in_degree : Digraph.t -> int
val max_total_degree : Digraph.t -> int

val mean_degree : Digraph.t -> float
(** Mean total degree = [2m/n]. *)

val degree_counts : int array -> (int * int) list
(** [(degree, how many vertices)] pairs, ascending, zero counts
    omitted. *)

val degree_ccdf : int array -> (int * float) list
(** Complementary CDF of the degree sample: [(d, P(D >= d))] at each
    observed degree, ascending. *)

val self_loops : Digraph.t -> int
val parallel_edges : Digraph.t -> int
(** Number of edges beyond the first within each (unordered) endpoint
    pair; 0 for a simple graph. *)

val degree_sum_invariant : Digraph.t -> bool
(** Handshake check: sum of total degrees = 2·edges. *)

(** {2 Ugraph-native variants}

    The same statistics computed from the flat CSR endpoint sections —
    identical values to converting and calling the Digraph versions,
    but with no boxed intermediate, so they work at 10M vertices on
    mmap-loaded graphs (doc/SCALING.md). *)

val u_in_degrees : Ugraph.t -> int array
val u_out_degrees : Ugraph.t -> int array

val u_total_degrees : Ugraph.t -> int array
(** Loop-counts-twice convention, matching {!total_degrees} (note
    {!Ugraph.degree} counts a loop once — that is the observable
    incidence count, not this sum). *)

val u_mean_degree : Ugraph.t -> float
val u_self_loops : Ugraph.t -> int

val u_parallel_edges : Ugraph.t -> int
(** Same count as {!parallel_edges}, via a packed endpoint-pair sort
    instead of a hash table (O(m log m), one flat scratch array). *)
