type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable data : buf; mutable len : int }

let max_value = Int32.to_int Int32.max_int
let min_value = Int32.to_int Int32.min_int

let create_buf len : buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len

let create ?(capacity = 16) () = { data = create_buf (max 1 capacity); len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then invalid_arg ("Bigvec." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  Int32.to_int (Bigarray.Array1.unsafe_get t.data i)

let unsafe_get t i = Int32.to_int (Bigarray.Array1.unsafe_get t.data i)

let fits v = v >= min_value && v <= max_value

let set t i v =
  check t i "set";
  if not (fits v) then invalid_arg "Bigvec.set: value exceeds 32-bit range";
  Bigarray.Array1.unsafe_set t.data i (Int32.of_int v)

let push t v =
  if not (fits v) then invalid_arg "Bigvec.push: value exceeds 32-bit range";
  if t.len = Bigarray.Array1.dim t.data then begin
    let data' = create_buf (2 * t.len) in
    Bigarray.Array1.blit t.data (Bigarray.Array1.sub data' 0 t.len);
    t.data <- data'
  end;
  Bigarray.Array1.unsafe_set t.data t.len (Int32.of_int v);
  t.len <- t.len + 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Int32.to_int (Bigarray.Array1.unsafe_get t.data i))
  done

let to_buf t =
  let out = create_buf t.len in
  if t.len > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub t.data 0 t.len) out;
  out

let sub_view t = Bigarray.Array1.sub t.data 0 t.len

let to_array t = Array.init t.len (fun i -> unsafe_get t i)

let of_array a =
  let t = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push t) a;
  t
