let to_edge_list g =
  let buf = Buffer.create (16 + (8 * Digraph.n_edges g)) in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Digraph.n_vertices g) (Digraph.n_edges g));
  Digraph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" e.Digraph.src e.Digraph.dst));
  Buffer.contents buf

(* Plain decimal integers only: [int_of_string] also accepts hex/octal
   literals and '_' separators, which in an edge list can only be
   corruption. *)
let parse_int what s =
  let plain =
    s <> ""
    && String.for_all (function '0' .. '9' -> true | _ -> false)
         (match s.[0] with '-' -> String.sub s 1 (String.length s - 1) | _ -> s)
  in
  match if plain then int_of_string_opt s else None with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Gio.of_edge_list: bad %s" what)

let of_edge_list text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Gio.of_edge_list: empty input"
  | header :: rest ->
    let n, m =
      match String.split_on_char ' ' header |> List.filter (( <> ) "") with
      | [ a; b ] -> (parse_int "header" a, parse_int "header" b)
      | _ -> failwith "Gio.of_edge_list: bad header"
    in
    if n < 0 || m < 0 then failwith "Gio.of_edge_list: bad header";
    let found = List.length rest in
    (* check the declared count before touching any edge line, so the
       error names the real problem rather than whichever malformed
       line happens to come first *)
    if found < m then
      failwith
        (Printf.sprintf "Gio.of_edge_list: edge count mismatch (header declares %d, found %d)"
           m found)
    else if found > m then
      failwith
        (Printf.sprintf
           "Gio.of_edge_list: trailing garbage (%d line(s) after the %d declared edges)"
           (found - m) m);
    let g = Digraph.create ~expected_vertices:n () in
    Digraph.add_vertices g n;
    List.iter
      (fun line ->
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ a; b ] ->
          let src = parse_int "edge line" a and dst = parse_int "edge line" b in
          if src < 1 || src > n || dst < 1 || dst > n then
            failwith
              (Printf.sprintf "Gio.of_edge_list: edge %d %d outside vertex range 1..%d" src
                 dst n);
          ignore (Digraph.add_edge g ~src ~dst)
        | _ -> failwith "Gio.of_edge_list: bad edge line")
      rest;
    g

let write_edge_list g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let read_edge_list ~path =
  let text =
    try
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
    with Sys_error msg -> failwith ("Gio.read_edge_list: " ^ msg)
  in
  (* parse failures name the file: "g.edges: Gio.of_edge_list: ..." *)
  try of_edge_list text with Failure msg -> failwith (path ^ ": " ^ msg)

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v))
    highlight;
  Digraph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" e.Digraph.src e.Digraph.dst));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
