type vertex = int

(* The view is exactly a frozen CSR structure; every query delegates.
   Keeping the type abstract lets the mmap loader (lib/store) hand out
   file-backed views through the same interface. *)
type t = Csr.t

let of_csr c = c
let csr t = t

let of_digraph = Csr.of_digraph

let n_vertices = Csr.n_vertices
let n_edges = Csr.n_edges
let mem_vertex = Csr.mem_vertex

let check_vertex t v name =
  if not (mem_vertex t v) then invalid_arg ("Ugraph." ^ name ^ ": vertex out of range")

let degree t v =
  check_vertex t v "degree";
  Csr.degree t v

let incident_count = degree

let incident_nth t v i =
  check_vertex t v "incident_nth";
  Csr.incident_nth t v i

let iter_incident t v f =
  check_vertex t v "iter_incident";
  Csr.iter_incident t v f

let incident t v =
  check_vertex t v "incident";
  let d = Csr.degree t v in
  let out = Array.make d 0 in
  for i = 0 to d - 1 do
    out.(i) <- Csr.incident_nth t v i
  done;
  out

let endpoints t id =
  if id < 0 || id >= Csr.n_edges t then invalid_arg "Ugraph.endpoints: edge id out of range";
  (Csr.src t id, Csr.dst t id)

let other_endpoint t ~edge_id v =
  let s, d = endpoints t edge_id in
  if v = s then d
  else if v = d then s
  else invalid_arg "Ugraph.other_endpoint: vertex is not an endpoint"

let iter_neighbors t v f =
  check_vertex t v "iter_neighbors";
  Csr.iter_neighbors t v f

let neighbors t v =
  let acc = ref [] in
  iter_neighbors t v (fun u -> acc := u :: !acc);
  List.rev !acc

let max_degree = Csr.max_degree
let memory_bytes = Csr.memory_bytes
