let in_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.in_degree g (i + 1))
let out_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.out_degree g (i + 1))
let total_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.degree g (i + 1))

let max_in_degree g = Array.fold_left max 0 (in_degrees g)
let max_total_degree g = Array.fold_left max 0 (total_degrees g)

let mean_degree g =
  let n = Digraph.n_vertices g in
  if n = 0 then 0. else 2. *. float_of_int (Digraph.n_edges g) /. float_of_int n

let degree_counts degrees =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let c = try Hashtbl.find tbl d with Not_found -> 0 in
      Hashtbl.replace tbl d (c + 1))
    degrees;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let degree_ccdf degrees =
  let n = Array.length degrees in
  if n = 0 then []
  else begin
    let counts = degree_counts degrees in
    (* Walk degrees in descending order accumulating the tail mass. *)
    let rev = List.rev counts in
    let _, acc =
      List.fold_left
        (fun (tail, acc) (d, c) ->
          let tail = tail + c in
          (tail, (d, float_of_int tail /. float_of_int n) :: acc))
        (0, []) rev
    in
    acc
  end

let self_loops g =
  Digraph.fold_edges g ~init:0 ~f:(fun acc e ->
      if e.Digraph.src = e.Digraph.dst then acc + 1 else acc)

let parallel_edges g =
  let tbl = Hashtbl.create (Digraph.n_edges g) in
  Digraph.fold_edges g ~init:0 ~f:(fun acc e ->
      let key = (min e.Digraph.src e.Digraph.dst, max e.Digraph.src e.Digraph.dst) in
      if Hashtbl.mem tbl key then acc + 1
      else begin
        Hashtbl.replace tbl key ();
        acc
      end)

let degree_sum_invariant g =
  Array.fold_left ( + ) 0 (total_degrees g) = 2 * Digraph.n_edges g

(* --- Ugraph-native variants ----------------------------------------

   The same statistics computed from the flat CSR endpoint sections,
   so a 10M-vertex mmap-loaded graph never has to round-trip through
   a boxed Digraph (doc/SCALING.md).  Conventions match the Digraph
   versions exactly: the directed orientation of every edge is
   retained in the view, and a self-loop contributes 2 to its
   endpoint's total degree. *)

let u_in_degrees u =
  let a = Array.make (Ugraph.n_vertices u) 0 in
  for id = 0 to Ugraph.n_edges u - 1 do
    let _, d = Ugraph.endpoints u id in
    a.(d - 1) <- a.(d - 1) + 1
  done;
  a

let u_out_degrees u =
  let a = Array.make (Ugraph.n_vertices u) 0 in
  for id = 0 to Ugraph.n_edges u - 1 do
    let s, _ = Ugraph.endpoints u id in
    a.(s - 1) <- a.(s - 1) + 1
  done;
  a

let u_total_degrees u =
  let a = Array.make (Ugraph.n_vertices u) 0 in
  for id = 0 to Ugraph.n_edges u - 1 do
    let s, d = Ugraph.endpoints u id in
    a.(s - 1) <- a.(s - 1) + 1;
    a.(d - 1) <- a.(d - 1) + 1
  done;
  a

let u_mean_degree u =
  let n = Ugraph.n_vertices u in
  if n = 0 then 0. else 2. *. float_of_int (Ugraph.n_edges u) /. float_of_int n

let u_self_loops u =
  let c = ref 0 in
  for id = 0 to Ugraph.n_edges u - 1 do
    let s, d = Ugraph.endpoints u id in
    if s = d then incr c
  done;
  !c

let u_parallel_edges u =
  (* sort packed (min, max) endpoint pairs instead of hashing them:
     O(m log m) with one flat scratch array, no per-edge boxes — the
     difference between feasible and not at 10^7 edges *)
  let m = Ugraph.n_edges u in
  if m = 0 then 0
  else begin
    let packed = Array.make m 0 in
    for id = 0 to m - 1 do
      let s, d = Ugraph.endpoints u id in
      packed.(id) <- (min s d lsl 31) lor max s d
    done;
    Array.sort compare packed;
    let dups = ref 0 in
    for i = 1 to m - 1 do
      if packed.(i) = packed.(i - 1) then incr dups
    done;
    !dups
  end
