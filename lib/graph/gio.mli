(** Serialisation of graphs: a plain edge-list text format and GraphViz
    DOT output.

    Edge-list format: first line [n m]; then one [src dst] pair per
    line, in edge-insertion order (so a round trip preserves edge ids
    and timestamps). *)

val to_edge_list : Digraph.t -> string

val of_edge_list : string -> Digraph.t
(** Strict parse: the declared [n m] header must match the body
    exactly — fewer edge lines than [m] is an edge-count mismatch,
    more is trailing garbage; endpoints outside [1..n], non-decimal
    integers and extra tokens are rejected.
    @raise Failure on malformed input, with a message naming the
    problem. *)

val write_edge_list : Digraph.t -> path:string -> unit

val read_edge_list : path:string -> Digraph.t
(** @raise Failure on I/O or parse errors; parse failures are prefixed
    with the path. *)

val to_dot : ?name:string -> ?highlight:int list -> Digraph.t -> string
(** Directed DOT rendering; [highlight] vertices are filled. Intended
    for small demo graphs. *)
