(** Frozen undirected incidence view of a directed multigraph.

    The paper's graphs grow {e oriented}, but "searching always takes
    place in the corresponding unoriented graph". Searching also never
    mutates the graph, so this view is an immutable snapshot with
    O(1) incidence lookups — the structure the oracles and traversals
    operate on.

    Since the giant-graph engine (doc/SCALING.md) the view is backed
    by flat {!Csr} storage: four unboxed [int32] Bigarray sections
    instead of boxed per-vertex arrays, ~12–16 bytes per edge, and the
    same layout an SFGB-v2 file carries on disk — {!of_csr} is how the
    mmap loader (lib/store) wraps a file-backed graph in this
    interface with zero copying.

    Conventions (unchanged across the CSR refactor — searches replay
    byte-for-byte):
    - edge ids are those of the underlying {!Digraph.t};
    - the incidence list of [v] contains each incident edge {e once},
      including self-loops (a self-loop at [v] is one handle whose far
      endpoint is [v] itself), in ascending edge-id (= insertion)
      order;
    - [degree v] is the length of that list. This is the degree a
      searcher observes: the number of distinct requests available at
      [v]. Use {!Digraph.degree} for the loop-counts-twice convention. *)

type vertex = int
type t

val of_digraph : Digraph.t -> t

val of_csr : Csr.t -> t
(** O(1) adoption of CSR storage — generator and mmap fast path. *)

val csr : t -> Csr.t
(** The backing storage; O(1). Used by the store layer to serialise
    without an intermediate {!Digraph}. *)

val n_vertices : t -> int
val n_edges : t -> int

val degree : t -> vertex -> int

val incident : t -> vertex -> int array
(** Ids of the edges incident to [v], in insertion order, as a
    {e freshly allocated} array. Prefer {!incident_nth} /
    {!iter_incident} on hot paths — they read the CSR row in place. *)

val incident_count : t -> vertex -> int
(** Same as {!degree}; named for symmetry with {!incident_nth}. *)

val incident_nth : t -> vertex -> int -> int
(** [incident_nth t v i] is the [i]-th incident edge id of [v],
    [0 <= i < degree t v], without allocating.
    @raise Invalid_argument if out of range. *)

val iter_incident : t -> vertex -> (int -> unit) -> unit
(** Visits [v]'s incident edge ids in insertion order, allocation-free. *)

val endpoints : t -> int -> vertex * vertex
(** [(src, dst)] of the underlying directed edge. *)

val other_endpoint : t -> edge_id:int -> vertex -> vertex
(** The endpoint of [edge_id] that is not [v] (or [v] for a self-loop).
    @raise Invalid_argument if [v] is not an endpoint of the edge. *)

val iter_neighbors : t -> vertex -> (vertex -> unit) -> unit
(** Visits the far endpoint of every incident edge (with multiplicity;
    a self-loop visits [v] once). *)

val neighbors : t -> vertex -> vertex list

val max_degree : t -> int

val mem_vertex : t -> vertex -> bool

val memory_bytes : t -> int
(** Resident bytes of the backing CSR sections. *)
