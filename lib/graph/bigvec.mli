(** Growable vector of machine ints on flat Bigarray [int32] storage.

    {!Vec} stores OCaml ints (one word each) in a boxed-header array;
    fine at toy sizes, 8 bytes per entry at n = 10M. This variant
    packs entries into an unboxed [int32] Bigarray — half the memory,
    no GC scanning of the payload — and is the growth buffer behind
    the giant-graph engine: generator endpoint stores and the staging
    area for {!Csr} edge arrays (doc/SCALING.md).

    Values must fit in 32 bits ([-2{^31} .. 2{^31}-1]); {!push} and
    {!set} reject anything wider. Vertex ids and edge ids in this
    codebase are bounded by the CSR limits (doc/SCALING.md), so the
    restriction is never binding in practice. *)

type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val max_value : int
(** Largest storable value, [2{^31} - 1]. *)

val create : ?capacity:int -> unit -> t
val create_buf : int -> buf
(** A fresh uninitialised flat buffer, for callers that know the final
    length up front. *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> int
(** @raise Invalid_argument if out of bounds. *)

val unsafe_get : t -> int -> int
(** No bounds check — hot-loop accessor; the caller owns the proof. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument if out of bounds or the value exceeds
    32 bits. *)

val push : t -> int -> unit
(** Amortised O(1) append (doubling growth).
    @raise Invalid_argument if the value exceeds 32 bits. *)

val clear : t -> unit
val iter : (int -> unit) -> t -> unit

val to_buf : t -> buf
(** The first [length] entries as a freshly allocated flat buffer. *)

val sub_view : t -> buf
(** The first [length] entries as a {e view} sharing storage with the
    vector: O(1), invalidated by any later {!push} that reallocates. *)

val to_array : t -> int array
val of_array : int array -> t
