type vertex = int
type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  m : int;
  srcs : buf; (* edge id -> src, length m *)
  dsts : buf; (* edge id -> dst, length m *)
  inc_start : buf; (* vertex-1 -> first slot in inc, length n+1 *)
  inc : buf; (* incident edge ids, id-ascending within each row *)
}

let max_vertices = Bigvec.max_value
let max_edges = Int32.to_int Int32.max_int / 2

let n_vertices t = t.n
let n_edges t = t.m
let mem_vertex t v = v >= 1 && v <= t.n

let get (b : buf) i = Int32.to_int (Bigarray.Array1.unsafe_get b i)
let set (b : buf) i v = Bigarray.Array1.unsafe_set b i (Int32.of_int v)

let src t id = get t.srcs id
let dst t id = get t.dsts id

let check_vertex t v name =
  if not (mem_vertex t v) then invalid_arg ("Csr." ^ name ^ ": vertex out of range")

let check_edge t id name =
  if id < 0 || id >= t.m then invalid_arg ("Csr." ^ name ^ ": edge id out of range")

let endpoints t id =
  check_edge t id "endpoints";
  (src t id, dst t id)

let degree t v =
  check_vertex t v "degree";
  get t.inc_start v - get t.inc_start (v - 1)

let incident_nth t v i =
  check_vertex t v "incident_nth";
  let lo = get t.inc_start (v - 1) in
  if i < 0 || lo + i >= get t.inc_start v then
    invalid_arg "Csr.incident_nth: slot out of range";
  get t.inc (lo + i)

let iter_incident t v f =
  check_vertex t v "iter_incident";
  for slot = get t.inc_start (v - 1) to get t.inc_start v - 1 do
    f (get t.inc slot)
  done

let other_endpoint t ~edge_id v =
  check_edge t edge_id "other_endpoint";
  let s = src t edge_id and d = dst t edge_id in
  if v = s then d
  else if v = d then s
  else invalid_arg "Csr.other_endpoint: vertex is not an endpoint"

let iter_neighbors t v f =
  check_vertex t v "iter_neighbors";
  for slot = get t.inc_start (v - 1) to get t.inc_start v - 1 do
    let id = get t.inc slot in
    let s = get t.srcs id in
    f (if v = s then get t.dsts id else s)
  done

let max_degree t =
  let best = ref 0 in
  for v = 1 to t.n do
    best := max !best (get t.inc_start v - get t.inc_start (v - 1))
  done;
  !best

let memory_bytes t =
  4 * (Bigarray.Array1.dim t.srcs + Bigarray.Array1.dim t.dsts
      + Bigarray.Array1.dim t.inc_start + Bigarray.Array1.dim t.inc)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let check_counts ~n ~m =
  if n < 0 || n > max_vertices then invalid_arg "Csr: vertex count out of range";
  if m < 0 || m > max_edges then invalid_arg "Csr: edge count out of range"

(* Build the incidence sections from endpoint arrays: two counting-sort
   passes over the edges, O(n + m), no boxed intermediates.  Scanning
   ids in ascending order keeps every row id-sorted — the invariant the
   oracle's handle lists and the codec's row encoding both rely on.  A
   self-loop occupies one incidence slot (Ugraph's observable-degree
   convention). *)
let build ~n ~m (srcs : buf) (dsts : buf) =
  check_counts ~n ~m;
  if Bigarray.Array1.dim srcs <> m || Bigarray.Array1.dim dsts <> m then
    invalid_arg "Csr: endpoint arrays disagree with edge count";
  let inc_start = Bigvec.create_buf (n + 1) in
  Bigarray.Array1.fill inc_start 0l;
  (* slot v-1 of the prefix array temporarily holds vertex v's count;
     the exclusive scan below turns it into the row-start offsets *)
  let bump v = set inc_start (v - 1) (get inc_start (v - 1) + 1) in
  for id = 0 to m - 1 do
    let s = get srcs id and d = get dsts id in
    if s < 1 || s > n || d < 1 || d > n then
      invalid_arg (Printf.sprintf "Csr: edge endpoint outside 1..%d" n);
    bump s;
    if d <> s then bump d
  done;
  let total = ref 0 in
  for v = 0 to n do
    let c = get inc_start v in
    set inc_start v !total;
    total := !total + c
  done;
  let inc = Bigvec.create_buf !total in
  let fill = Bigvec.create_buf (max n 1) in
  if n > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub inc_start 0 n) fill;
  for id = 0 to m - 1 do
    let s = get srcs id and d = get dsts id in
    set inc (get fill (s - 1)) id;
    set fill (s - 1) (get fill (s - 1) + 1);
    if d <> s then begin
      set inc (get fill (d - 1)) id;
      set fill (d - 1) (get fill (d - 1) + 1)
    end
  done;
  { n; m; srcs; dsts; inc_start; inc }

let of_endpoint_bufs ~n srcs dsts = build ~n ~m:(Bigarray.Array1.dim srcs) srcs dsts

let of_bigvecs ~n srcs dsts =
  if Bigvec.length srcs <> Bigvec.length dsts then
    invalid_arg "Csr.of_bigvecs: endpoint vectors disagree";
  build ~n ~m:(Bigvec.length srcs) (Bigvec.to_buf srcs) (Bigvec.to_buf dsts)

let of_digraph g =
  let n = Digraph.n_vertices g and m = Digraph.n_edges g in
  check_counts ~n ~m;
  let srcs = Bigvec.create_buf m and dsts = Bigvec.create_buf m in
  Digraph.iter_edges g (fun e ->
      set srcs e.Digraph.id e.Digraph.src;
      set dsts e.Digraph.id e.Digraph.dst);
  build ~n ~m srcs dsts

let of_sections ~n ~m ~srcs ~dsts ~inc_start ~inc = { n; m; srcs; dsts; inc_start; inc }

(* ------------------------------------------------------------------ *)
(* Whole-structure checks                                              *)
(* ------------------------------------------------------------------ *)

let validate t =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let dim = Bigarray.Array1.dim in
  if t.n < 0 || t.m < 0 then fail "negative counts"
  else if dim t.srcs <> t.m || dim t.dsts <> t.m then fail "endpoint section length mismatch"
  else if dim t.inc_start <> t.n + 1 then fail "offset section length mismatch"
  else begin
    let bad = ref None in
    for id = 0 to t.m - 1 do
      if !bad = None then begin
        let s = get t.srcs id and d = get t.dsts id in
        if s < 1 || s > t.n || d < 1 || d > t.n then
          bad := Some (Printf.sprintf "edge %d endpoint outside 1..%d" id t.n)
      end
    done;
    match !bad with
    | Some msg -> Error msg
    | None ->
      if get t.inc_start 0 <> 0 then fail "offsets do not start at 0"
      else begin
        let mono = ref true in
        for v = 1 to t.n do
          if get t.inc_start v < get t.inc_start (v - 1) then mono := false
        done;
        if not !mono then fail "offsets not monotone"
        else if get t.inc_start t.n <> dim t.inc then fail "incidence length disagrees with offsets"
        else begin
          (* rebuild the incidence from the endpoints and require an
             exact match — catches id-order violations, not just
             shape errors *)
          let reference = build ~n:t.n ~m:t.m t.srcs t.dsts in
          let same = ref true in
          for slot = 0 to dim t.inc - 1 do
            if get t.inc slot <> get reference.inc slot then same := false
          done;
          for v = 0 to t.n do
            if get t.inc_start v <> get reference.inc_start v then same := false
          done;
          if !same then Ok () else fail "incidence disagrees with endpoint arrays"
        end
      end
  end

let equal a b =
  a.n = b.n && a.m = b.m
  && (let same = ref true in
      for id = 0 to a.m - 1 do
        if get a.srcs id <> get b.srcs id || get a.dsts id <> get b.dsts id then same := false
      done;
      !same)
