(** Flat CSR storage for frozen multigraphs — the giant-graph engine's
    memory layout (doc/SCALING.md).

    Four unboxed [int32] Bigarray sections hold everything:

    - [srcs]/[dsts] — oriented endpoints by edge id (insertion order,
      the timestamps the paper's models rely on);
    - [inc_start]/[inc] — per-vertex incidence rows in compressed
      sparse row form: vertex [v]'s incident edge ids occupy slots
      [inc_start.(v-1) .. inc_start.(v) - 1] of [inc], ascending.

    Cost: 4 bytes per vertex for offsets plus 12–16 bytes per edge
    (8 for endpoints, 4 per incidence slot; a self-loop takes one slot,
    every other edge two) — an order of magnitude below the boxed
    {!Digraph}/{!Ugraph} pair, with no GC-scanned payload. The same
    four sections are what the SFGB-v2 container (doc/STORAGE.md)
    lays out on disk, so an mmapped file {e is} a valid [t] with zero
    copying.

    Invariants (checked by constructors, re-checkable with
    {!validate}): endpoints lie in [1..n]; [inc_start] is monotone
    from 0 to [dim inc]; each row lists incident edge ids in
    ascending id order, self-loops once. These match {!Ugraph}'s
    observable conventions exactly, so a search on a CSR view replays
    byte-for-byte against one on the legacy representation.

    Limits: [n <= 2{^31} - 1] vertices and [m <= 2{^30} - 1] edges
    (an incidence section of up to [2m] slots must itself be
    addressable in 32 bits). *)

type vertex = int
type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  n : int;
  m : int;
  srcs : buf;
  dsts : buf;
  inc_start : buf;
  inc : buf;
}

val max_vertices : int
val max_edges : int

(** {1 Construction} *)

val of_digraph : Digraph.t -> t
(** Freeze a grown digraph; O(n + m). *)

val of_endpoint_bufs : n:int -> buf -> buf -> t
(** [of_endpoint_bufs ~n srcs dsts] takes ownership of the endpoint
    buffers and builds the incidence sections in O(n + m). Edges may
    arrive in any source order.
    @raise Invalid_argument on out-of-range endpoints or counts. *)

val of_bigvecs : n:int -> Bigvec.t -> Bigvec.t -> t
(** Same, from growth vectors (copied to exact-length buffers). *)

val of_sections :
  n:int -> m:int -> srcs:buf -> dsts:buf -> inc_start:buf -> inc:buf -> t
(** Adopt pre-built sections verbatim — the mmap loader's entry point.
    Performs {e no} validation; callers must either trust the source
    (CRC-verified container) or run {!validate}. *)

(** {1 Queries — all O(1) unless noted} *)

val n_vertices : t -> int
val n_edges : t -> int
val mem_vertex : t -> vertex -> bool

val src : t -> int -> vertex
(** Unchecked endpoint read by edge id (hot path). *)

val dst : t -> int -> vertex

val endpoints : t -> int -> vertex * vertex
(** @raise Invalid_argument if the id is out of range. *)

val degree : t -> vertex -> int
(** Observable degree: incidence-row length (self-loop counts once). *)

val incident_nth : t -> vertex -> int -> int
(** [incident_nth t v i] is the [i]-th incident edge id of [v].
    @raise Invalid_argument if out of range. *)

val iter_incident : t -> vertex -> (int -> unit) -> unit
val iter_neighbors : t -> vertex -> (vertex -> unit) -> unit
val other_endpoint : t -> edge_id:int -> vertex -> vertex

val max_degree : t -> int
(** O(n). *)

val memory_bytes : t -> int
(** Resident bytes of the four sections (doc/SCALING.md's model). *)

(** {1 Whole-structure checks} *)

val validate : t -> (unit, string) result
(** Full structural audit in O(n + m) time and O(n + m) scratch:
    endpoint ranges, offset monotonicity, and an exact rebuild
    comparison of the incidence sections. Run on data adopted via
    {!of_sections} when the source is not already integrity-checked. *)

val equal : t -> t -> bool
(** Same vertex count and identical edge sequence (id, src, dst). *)
