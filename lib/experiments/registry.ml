type entry = {
  id : string;
  title : string;
  run : quick:bool -> seed:int -> Exp.result;
}

(* Observability: every experiment runs inside an "exp.<id>" span, so
   a harness manifest carries per-experiment wall time without the
   experiments knowing (doc/OBSERVABILITY.md). *)
let obs_runs = Sf_obs.Registry.counter "exp.runs"

let traced e =
  {
    e with
    run =
      (fun ~quick ~seed ->
        if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_runs;
        let result =
          Sf_obs.Span.with_span ("exp." ^ e.id) (fun () -> e.run ~quick ~seed)
        in
        if Sf_obs.Trace.active () then begin
          let checks = List.length result.Exp.checks in
          let failed =
            List.length (List.filter (fun (_, pass) -> not pass) result.Exp.checks)
          in
          Sf_obs.Trace.instant "exp.done"
            ~args:
              [
                ("id", Sf_obs.Trace.Str e.id);
                ("checks", Sf_obs.Trace.Int checks);
                ("failed", Sf_obs.Trace.Int failed);
              ]
        end;
        result);
  }

let all =
  List.map traced
  [
    {
      id = "T1";
      title = "Theorem 1 weak model, m = 1 (Mori tree)";
      run = Exp_theorem1.t1_weak_mori;
    };
    {
      id = "T2";
      title = "Theorem 1 weak model, merged Mori graph (m > 1)";
      run = Exp_theorem1.t2_merged_mori;
    };
    {
      id = "T3";
      title = "Theorem 1 strong model (p < 1/2)";
      run = Exp_theorem1.t3_strong_mori;
    };
    { id = "T4"; title = "Theorem 2 (Cooper-Frieze)"; run = Exp_theorem2.t4_cooper_frieze };
    { id = "T5"; title = "Lemma 3 event probability"; run = Exp_lemmas.t5_lemma3 };
    { id = "T6"; title = "Lemma 2 vertex equivalence"; run = Exp_lemmas.t6_lemma2 };
    {
      id = "T7";
      title = "Lemma 1 explicit bound vs measured";
      run = Exp_theorem1.t7_bound_vs_measured;
    };
    { id = "T8"; title = "Mori max-degree law"; run = Exp_degree.t8_max_degree };
    { id = "T9"; title = "Scale-free degree laws"; run = Exp_degree.t9_degree_law };
    { id = "T10"; title = "Low diameter vs search cost"; run = Exp_smallworld.t10_diameter };
    { id = "T11"; title = "Adamic et al. baseline"; run = Exp_baselines.t11_adamic };
    { id = "T12"; title = "Kleinberg navigability contrast"; run = Exp_smallworld.t12_kleinberg };
    { id = "T13"; title = "Sarshar percolation search"; run = Exp_baselines.t13_percolation };
    {
      id = "T14";
      title = "Strong-to-weak simulation factor";
      run = Exp_theorem1.t14_simulation_factor;
    };
    {
      id = "T15";
      title = "Neighbour-degree dependence (evolving vs pure random)";
      run = Exp_extensions.t15_degree_correlations;
    };
    {
      id = "T16";
      title = "Total-degree models: max degree ~ sqrt(t)";
      run = Exp_extensions.t16_total_degree_models;
    };
    {
      id = "T17";
      title = "Timestamp-leak ablation";
      run = Exp_extensions.t17_timestamp_leak;
    };
    {
      id = "T18";
      title = "Window-size ablation for Lemma 1";
      run = Exp_extensions.t18_window_ablation;
    };
    {
      id = "T19";
      title = "Protocol traffic/latency tradeoff (discrete-event)";
      run = Exp_simulation.t19_protocol_tradeoff;
    };
    {
      id = "T20";
      title = "Cohen-Shenker square-root replication";
      run = Exp_simulation.t20_sqrt_replication;
    };
    {
      id = "T21";
      title = "Attack tolerance: random failure vs hub removal";
      run = Exp_extensions.t21_attack_tolerance;
    };
    {
      id = "T22";
      title = "Lookups under churn";
      run = Exp_simulation.t22_churn;
    };
    {
      id = "T23";
      title = "Open problem probe: strong model at p >= 1/2";
      run = Exp_extensions.t23_open_problem;
    };
  ]

let find id =
  let needle = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = needle) all

let ids () = List.map (fun e -> e.id) all

(* The per-experiment fan-out.  Experiments are pure producers (they
   return their tables as strings; nothing prints during [run]) whose
   randomness comes from the seed, so they parallelise like trials do.
   One experiment per task; a measure grid *inside* an experiment sees
   Shard.capturing and runs its own trials inline, so the machine is
   never oversubscribed.  Results come back in registry order whatever
   the schedule was. *)
let run_all ?jobs ~quick ~seed entries =
  let arr = Array.of_list entries in
  Sf_parallel.Pool.with_pool ?jobs (fun pool ->
      Sf_parallel.Pool.map pool
        (fun e ->
          let t0 = Sf_obs.Timer.now_s () in
          let result = e.run ~quick ~seed in
          (e, result, Sf_obs.Timer.now_s () -. t0))
        arr)
  |> Array.to_list
