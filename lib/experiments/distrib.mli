(** Experiment fan-out over worker {e processes} — the
    {!Sf_fabric.Swarm} driving one experiment per assignment, for when
    domains cannot help (memory isolation, crash tolerance). The
    domain pool ({!Registry.run_all}) remains the default; this is the
    [--workers] path of [sfexp run] (doc/PARALLELISM.md, "Domains or
    processes?"). *)

val run_all_processes :
  sock_path:string ->
  workers:int ->
  spawn:(unit -> int) ->
  Registry.entry list ->
  (Registry.entry * Exp.result) list
(** Run the entries on worker processes started with [spawn] (which
    must exec something that calls {!worker_main} against
    [sock_path]). Results return in input order, and each worker's
    registry counter deltas are folded into this process's registry in
    input order — counter totals match a sequential run regardless of
    completion order. Worker quick/seed configuration travels in the
    spawned argv, not the protocol.
    @raise Failure when a worker cannot produce a result. *)

val worker_main : connect:string -> quick:bool -> seed:int -> unit
(** The worker side: serve experiment ids until [Quit] or EOF. *)
