(* Experiment fan-out over worker processes: the Sf_fabric.Swarm
   driving one experiment per Assign, for machines where domains
   cannot help (a runaway experiment wedging the GC, rough memory
   isolation) or where crash-tolerance matters more than latency.

   Jobs are experiment ids; Done bodies carry the rendered result plus
   the worker's registry counter deltas.  Deltas are applied to the
   coordinator's registry in job-index order after the run completes,
   so final counter totals match a sequential run regardless of which
   worker finished first — the same determinism contract run_all gives
   for domains (doc/PARALLELISM.md). *)

module Varint = Sf_store.Varint

let put_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let get_string data ~pos =
  let n, pos = Varint.read data ~pos in
  if n < 0 || pos + n > String.length data then failwith "Distrib: truncated body";
  (String.sub data pos n, pos + n)

let encode_done (result : Exp.result) ~counters =
  let buf = Buffer.create 1024 in
  put_string buf result.Exp.id;
  put_string buf result.Exp.title;
  put_string buf result.Exp.output;
  Varint.write buf (List.length result.Exp.checks);
  List.iter
    (fun (name, ok) ->
      put_string buf name;
      Buffer.add_char buf (if ok then '\001' else '\000'))
    result.Exp.checks;
  Varint.write buf (List.length counters);
  List.iter
    (fun (name, v) ->
      put_string buf name;
      Varint.write buf v)
    counters;
  Buffer.contents buf

let decode_done data =
  let id, pos = get_string data ~pos:0 in
  let title, pos = get_string data ~pos in
  let output, pos = get_string data ~pos in
  let n_checks, pos = Varint.read data ~pos in
  let pos = ref pos in
  let checks =
    List.init n_checks (fun _ ->
        let name, p = get_string data ~pos:!pos in
        if p >= String.length data then failwith "Distrib: truncated checks";
        pos := p + 1;
        (name, data.[p] = '\001'))
  in
  let n_counters, p = Varint.read data ~pos:!pos in
  pos := p;
  let counters =
    List.init n_counters (fun _ ->
        let name, p = get_string data ~pos:!pos in
        let v, p = Varint.read data ~pos:p in
        pos := p;
        (name, v))
  in
  ({ Exp.id; title; output; checks }, counters)

(* every registry counter — unlike the fabric grid there is no
   persisted-outcome boundary to respect, a Done body accounts the
   whole experiment *)
let counters_snapshot () =
  List.filter_map
    (fun (name, m) ->
      match m with Sf_obs.Registry.Counter c -> Some (name, Sf_obs.Counter.value c) | _ -> None)
    (Sf_obs.Registry.all ())

let counters_delta ~base now =
  List.filter_map
    (fun (name, v) ->
      let b = Option.value (List.assoc_opt name base) ~default:0 in
      if v > b then Some (name, v - b) else None)
    now

let run_all_processes ~sock_path ~workers ~spawn entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let results : (Exp.result * (string * int) list) option array = Array.make n None in
  let outcome, (_ : Sf_fabric.Swarm.report) =
    Sf_fabric.Swarm.run ~who:"Distrib.run_all_processes" ~sock_path ~workers:(min workers n)
      ~spawn
      ~pending:(List.init n Fun.id)
      ~assign_body:(fun job -> entries.(job).Registry.id)
      ~on_done:(fun ~job ~body -> results.(job) <- Some (decode_done body))
      ()
  in
  (match outcome with `Complete -> () | `Stopped_early -> assert false);
  Array.to_list
    (Array.mapi
       (fun i entry ->
         match results.(i) with
         | None -> failwith (Printf.sprintf "Distrib: no result for %s" entry.Registry.id)
         | Some (result, counters) ->
           (* job-index order: counter totals independent of finish order *)
           List.iter
             (fun (name, v) -> Sf_obs.Counter.add (Sf_obs.Registry.counter name) v)
             counters;
           (entry, result))
       entries)

let worker_main ~connect ~quick ~seed =
  Sf_fabric.Swarm.worker_loop ~connect ~handle:(fun ~job:_ ~body ~progress:_ ~telemetry:_ ->
      match Registry.find body with
      | None -> failwith (Printf.sprintf "Distrib worker: unknown experiment %s" body)
      | Some entry ->
        let base = counters_snapshot () in
        let result = entry.Registry.run ~quick ~seed in
        encode_done result ~counters:(counters_delta ~base (counters_snapshot ())))
