(** The experiment registry: every table of EXPERIMENTS.md, runnable by
    id from the bench harness, the CLI and the tests. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> seed:int -> Exp.result;
}

val all : entry list
(** In presentation order T1 … T14. *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val ids : unit -> string list

val run_all :
  ?jobs:int -> quick:bool -> seed:int -> entry list -> (entry * Exp.result * float) list
(** Run the given experiments on an {!Sf_parallel.Pool} of [jobs]
    domains (default {!Sf_parallel.Pool.default_jobs}), one experiment
    per task. Returns [(entry, result, elapsed_s)] in input order;
    results and observability output are deterministic for a fixed
    seed at any job count (doc/PARALLELISM.md). Because experiments
    run as pool tasks, their [exp.<id>] phases appear as trace slices
    rather than manifest span-forest nodes; per-experiment wall time
    is the returned [elapsed_s]. *)
