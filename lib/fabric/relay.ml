(* The worker-telemetry relay codec: what rides inside a
   Proto.Telemetry body.  A batch is the observability delta a worker
   accumulated between two checkpoint writes — its buffered trace
   events (worker-local sequence numbers intact) and the named counter
   deltas the checkpoint just persisted (fabric.* machinery counters
   excluded, as in Ckpt).  Encoding is canonical and decode is strict
   in the house codec discipline: varint sizes, IEEE-754 bits for
   floats, zigzag varints where a value can be negative, and a
   trailing-bytes check — the enclosing Proto frame supplies the
   CRC-32.  Relaying after (never before) the checkpoint write keeps
   relayed <= checkpointed for any crash history, so the coordinator
   can reconcile exact totals from checkpoints at the end of the run
   (Coordinator). *)

module Varint = Sf_store.Varint
module E = Sf_store.Codec_error
module Trace = Sf_obs.Trace

let version = 1

type batch = {
  r_events : Trace.event list;
  r_counters : (string * int) list;
}

(* ---- assign-body flag ---------------------------------------------- *)

(* The coordinator tells a worker to relay by putting this token in
   the Assign body; an empty body (the pre-relay grammar) means run
   silent.  Carried per job, so no worker argv changes are needed. *)
let assign_trace_token = "trace:1"

let assign_body ~trace = if trace then assign_trace_token else ""
let assign_wants_trace body = body = assign_trace_token

(* ---- encoding ------------------------------------------------------ *)

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let write_f64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Buffer.add_bytes buf b

let tag_int = 0
let tag_float = 1
let tag_str = 2
let tag_bool = 3
let tag_ints = 4

let write_arg buf (k, a) =
  write_string buf k;
  match a with
  | Trace.Int i ->
    Buffer.add_char buf (Char.chr tag_int);
    Varint.write_signed buf i
  | Trace.Float f ->
    Buffer.add_char buf (Char.chr tag_float);
    write_f64 buf f
  | Trace.Str s ->
    Buffer.add_char buf (Char.chr tag_str);
    write_string buf s
  | Trace.Bool b ->
    Buffer.add_char buf (Char.chr tag_bool);
    Buffer.add_char buf (if b then '\001' else '\000')
  | Trace.Ints l ->
    Buffer.add_char buf (Char.chr tag_ints);
    Varint.write buf (List.length l);
    List.iter (Varint.write_signed buf) l

let kind_begin = 0
let kind_end = 1
let kind_instant = 2
let kind_counter = 3

let write_event buf (e : Trace.event) =
  write_string buf e.name;
  (match e.kind with
  | Trace.Begin -> Buffer.add_char buf (Char.chr kind_begin)
  | Trace.End -> Buffer.add_char buf (Char.chr kind_end)
  | Trace.Instant -> Buffer.add_char buf (Char.chr kind_instant)
  | Trace.Counter v ->
    Buffer.add_char buf (Char.chr kind_counter);
    write_f64 buf v);
  write_f64 buf e.ts;
  Varint.write buf e.seq;
  Varint.write buf (List.length e.args);
  List.iter (write_arg buf) e.args

let encode b =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (Char.chr version);
  Varint.write buf (List.length b.r_counters);
  List.iter
    (fun (name, v) ->
      if v < 0 then invalid_arg "Relay.encode: negative counter delta";
      write_string buf name;
      Varint.write buf v)
    b.r_counters;
  Varint.write buf (List.length b.r_events);
  List.iter (write_event buf) b.r_events;
  Buffer.contents buf

(* ---- decoding ------------------------------------------------------ *)

let read_string s ~pos =
  let n, pos = Varint.read s ~pos in
  if pos + n > String.length s then E.fail (E.Truncated "relay string");
  (String.sub s pos n, pos + n)

let read_byte s ~pos =
  if pos >= String.length s then E.fail (E.Truncated "relay byte");
  (Char.code s.[pos], pos + 1)

let read_f64 s ~pos =
  if pos + 8 > String.length s then E.fail (E.Truncated "relay float");
  (Int64.float_of_bits (String.get_int64_le s pos), pos + 8)

let read_arg s ~pos =
  let k, pos = read_string s ~pos in
  let tag, pos = read_byte s ~pos in
  if tag = tag_int then
    let v, pos = Varint.read_signed s ~pos in
    ((k, Trace.Int v), pos)
  else if tag = tag_float then
    let v, pos = read_f64 s ~pos in
    ((k, Trace.Float v), pos)
  else if tag = tag_str then
    let v, pos = read_string s ~pos in
    ((k, Trace.Str v), pos)
  else if tag = tag_bool then
    let b, pos = read_byte s ~pos in
    if b > 1 then E.fail (E.Malformed (Printf.sprintf "relay bool byte %d" b));
    ((k, Trace.Bool (b = 1)), pos)
  else if tag = tag_ints then begin
    let n, pos = Varint.read s ~pos in
    let pos = ref pos in
    let l =
      List.init n (fun _ ->
          let v, p = Varint.read_signed s ~pos:!pos in
          pos := p;
          v)
    in
    ((k, Trace.Ints l), !pos)
  end
  else E.fail (E.Malformed (Printf.sprintf "unknown relay arg tag %d" tag))

let read_event s ~pos =
  let name, pos = read_string s ~pos in
  let tag, pos = read_byte s ~pos in
  let kind, pos =
    if tag = kind_begin then (Trace.Begin, pos)
    else if tag = kind_end then (Trace.End, pos)
    else if tag = kind_instant then (Trace.Instant, pos)
    else if tag = kind_counter then
      let v, pos = read_f64 s ~pos in
      (Trace.Counter v, pos)
    else E.fail (E.Malformed (Printf.sprintf "unknown relay event kind %d" tag))
  in
  let ts, pos = read_f64 s ~pos in
  let seq, pos = Varint.read s ~pos in
  let n_args, pos = Varint.read s ~pos in
  let pos = ref pos in
  let args =
    List.init n_args (fun _ ->
        let a, p = read_arg s ~pos:!pos in
        pos := p;
        a)
  in
  ({ Trace.seq; ts; name; kind; args }, !pos)

let decode s =
  let v, pos = read_byte s ~pos:0 in
  if v <> version then E.fail (E.Unsupported_version v);
  let n_counters, pos = Varint.read s ~pos in
  let pos = ref pos in
  let counters =
    List.init n_counters (fun _ ->
        let name, p = read_string s ~pos:!pos in
        let v, p = Varint.read s ~pos:p in
        pos := p;
        (name, v))
  in
  let n_events, p = Varint.read s ~pos:!pos in
  pos := p;
  let events =
    List.init n_events (fun _ ->
        let e, p = read_event s ~pos:!pos in
        pos := p;
        e)
  in
  if !pos <> String.length s then
    E.fail
      (E.Malformed
         (Printf.sprintf "%d trailing relay byte(s)" (String.length s - !pos)));
  { r_events = events; r_counters = counters }
