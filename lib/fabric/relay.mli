(** The worker-telemetry relay codec — the body of a
    {!Proto.Telemetry} message.

    A batch is the observability delta a worker accumulated between
    two checkpoint writes: its buffered trace events (worker-local
    sequence numbers intact — the coordinator re-sequences on replay)
    and the counter deltas the checkpoint just persisted. Workers
    relay {e after} the checkpoint write, so relayed totals never
    exceed checkpointed totals under any crash history and the
    coordinator can reconcile exact counts from checkpoints at the
    end of the run ({!Coordinator}).

    Same codec discipline as {!Proto} and {!Sf_store.Codec}: version
    byte, varint sizes, canonical encoding, strict decode with a
    trailing-bytes check (the enclosing frame carries the CRC-32).
    Grammar in doc/OBSERVABILITY.md. *)

type batch = {
  r_events : Sf_obs.Trace.event list;
  r_counters : (string * int) list;  (** non-negative deltas *)
}

val version : int
(** [1]. *)

val encode : batch -> string
(** Canonical bytes for a batch.
    @raise Invalid_argument on a negative counter delta. *)

val decode : string -> batch
(** @raise Sf_store.Codec_error.Error on truncation, version
    mismatch, unknown tags, or trailing bytes. *)

val assign_body : trace:bool -> string
(** What the coordinator puts in a grid-runner [Assign] body:
    ["trace:1"] to ask the worker to relay telemetry, [""] (the
    pre-relay grammar) to run silent. *)

val assign_wants_trace : string -> bool
(** Worker-side test of an [Assign] body. *)
