(* The coordinator/worker control protocol: length-prefixed frames
   carrying versioned, CRC-checked payloads — the same codec
   discipline as lib/serve/wire and lib/store/codec (varint bodies,
   strict decode, trailing CRC-32, canonical encoding), with its own
   kind space and a larger frame cap because Done bodies carry whole
   experiment outputs.  lib/fabric deliberately does not depend on
   lib/serve (which sits above lib/perf, which sits above this
   library's clients), so the ~40 framing lines are restated here
   rather than imported; the grammar is documented in doc/FABRIC.md. *)

module Varint = Sf_store.Varint
module Crc32 = Sf_store.Crc32
module E = Sf_store.Codec_error

let version = 1

(* Done bodies can carry a full experiment table plus counter deltas;
   64 MiB leaves room without admitting garbage lengths. *)
let max_payload_default = 1 lsl 26
let frame_header_bytes = 4

type msg =
  | Hello of int  (* worker pid *)
  | Assign of { job : int; body : string }
  | Done of { job : int; body : string }
  | Progress of { job : int; body : string }
  | Telemetry of { job : int; body : string }
    (* worker -> coordinator: a Relay batch of buffered trace events
       and counter deltas, shipped after each checkpoint write *)
  | Quit

let kind_hello = 0x21
let kind_assign = 0x22
let kind_done = 0x23
let kind_progress = 0x24
let kind_quit = 0x25
let kind_telemetry = 0x26

(* ------------------------------------------------------------------ *)
(* Payload codec                                                       *)
(* ------------------------------------------------------------------ *)

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let start_payload kind =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr kind);
  buf

let finish_payload buf =
  let crc = Crc32.string (Buffer.contents buf) in
  let tail = Bytes.create 4 in
  Bytes.set_int32_le tail 0 crc;
  Buffer.add_bytes buf tail;
  Buffer.contents buf

let encode msg =
  let buf =
    match msg with
    | Hello pid ->
      let buf = start_payload kind_hello in
      Varint.write buf pid;
      buf
    | Assign { job; body } ->
      let buf = start_payload kind_assign in
      Varint.write buf job;
      write_string buf body;
      buf
    | Done { job; body } ->
      let buf = start_payload kind_done in
      Varint.write buf job;
      write_string buf body;
      buf
    | Progress { job; body } ->
      let buf = start_payload kind_progress in
      Varint.write buf job;
      write_string buf body;
      buf
    | Telemetry { job; body } ->
      let buf = start_payload kind_telemetry in
      Varint.write buf job;
      write_string buf body;
      buf
    | Quit ->
      let buf = start_payload kind_quit in
      Varint.write buf 0;
      buf
  in
  finish_payload buf

(* version (1) + kind (1) + at least one varint body byte + crc (4) *)
let min_payload = 7

let check_envelope s =
  let len = String.length s in
  if len < min_payload then E.fail (E.Truncated "payload");
  let v = Char.code s.[0] in
  if v <> version then E.fail (E.Unsupported_version v);
  let stored = String.get_int32_le s (len - 4) in
  let computed = Crc32.sub s ~pos:0 ~len:(len - 4) in
  if stored <> computed then E.fail (E.Checksum_mismatch { stored; computed });
  (Char.code s.[1], len - 4)

let read_string s ~payload_end ~pos =
  let n, pos = Varint.read s ~pos in
  if n < 0 || pos + n > payload_end then E.fail (E.Truncated "string");
  (String.sub s pos n, pos + n)

let finish ~payload_end ~pos value =
  if pos <> payload_end then
    E.fail (E.Malformed (Printf.sprintf "%d trailing payload byte(s)" (payload_end - pos)));
  value

let decode s =
  let kind, payload_end = check_envelope s in
  if kind = kind_hello then begin
    let pid, pos = Varint.read s ~pos:2 in
    finish ~payload_end ~pos (Hello pid)
  end
  else if
    kind = kind_assign || kind = kind_done || kind = kind_progress
    || kind = kind_telemetry
  then begin
    let job, pos = Varint.read s ~pos:2 in
    let body, pos = read_string s ~payload_end ~pos in
    finish ~payload_end ~pos
      (if kind = kind_assign then Assign { job; body }
       else if kind = kind_done then Done { job; body }
       else if kind = kind_progress then Progress { job; body }
       else Telemetry { job; body })
  end
  else if kind = kind_quit then begin
    let zero, pos = Varint.read s ~pos:2 in
    if zero <> 0 then E.fail (E.Malformed "quit body");
    finish ~payload_end ~pos Quit
  end
  else E.fail (E.Malformed (Printf.sprintf "unknown fabric kind %#x" kind))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + frame_header_bytes) in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int n);
  Buffer.add_bytes b hdr;
  Buffer.add_string b payload;
  Buffer.contents b

let pop ?(max_payload = max_payload_default) s ~pos =
  let avail = String.length s - pos in
  if avail < frame_header_bytes then `Need_more
  else
    (* unsigned 32-bit read: a garbage length like 0xFFFFFFFF must
       surface as oversized, not as a negative int *)
    let len = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
    if len < min_payload || len > max_payload then
      `Bad (Printf.sprintf "frame length %d outside %d..%d" len min_payload max_payload)
    else if avail - frame_header_bytes < len then `Need_more
    else `Frame (String.sub s (pos + frame_header_bytes) len, pos + frame_header_bytes + len)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_pos : int;
  c_chunk : Bytes.t;
  mutable c_pending : msg list;  (* decoded but not yet consumed by recv_block *)
}

let conn fd =
  { c_fd = fd; c_buf = Buffer.create 4096; c_pos = 0; c_chunk = Bytes.create 65536; c_pending = [] }
let conn_fd c = c.c_fd

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let send c msg = write_all c.c_fd (frame (encode msg))

(* One read(2) plus every complete frame it finishes.  Distinguishing
   [`Eof] from [`Msgs []] is what lets the coordinator treat a closed
   connection as a worker death. *)
let pump c =
  match Unix.read c.c_fd c.c_chunk 0 (Bytes.length c.c_chunk) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof
  | 0 -> if Buffer.length c.c_buf > c.c_pos then `Bad "eof inside a frame" else `Eof
  | n -> (
    Buffer.add_subbytes c.c_buf c.c_chunk 0 n;
    let data = Buffer.contents c.c_buf in
    let msgs = ref [] in
    let bad = ref None in
    let continue = ref true in
    while !continue do
      match pop data ~pos:c.c_pos with
      | `Frame (payload, next) -> (
        c.c_pos <- next;
        match decode payload with
        | msg -> msgs := msg :: !msgs
        | exception E.Error e ->
          bad := Some (E.to_string e);
          continue := false)
      | `Need_more -> continue := false
      | `Bad msg ->
        bad := Some msg;
        continue := false
    done;
    (* drop consumed bytes once the buffer has no partial frame *)
    if c.c_pos = Buffer.length c.c_buf then begin
      Buffer.clear c.c_buf;
      c.c_pos <- 0
    end;
    match !bad with
    | Some msg -> `Bad msg
    | None -> `Msgs (List.rev !msgs))

let rec recv_block c =
  match c.c_pending with
  | m :: rest ->
    c.c_pending <- rest;
    Some m
  | [] -> (
    match pump c with
    | `Eof -> None
    | `Bad msg -> failwith ("fabric protocol: " ^ msg)
    | `Msgs [] -> recv_block c
    | `Msgs (m :: rest) ->
      c.c_pending <- rest;
      Some m)
