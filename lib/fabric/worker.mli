(** The shard runner — what one worker process does with one assigned
    shard of the grid (doc/FABRIC.md).

    Trials run strictly in task order on the same
    {!Sf_prng.Rng.split_at} streams an in-process
    {!Sf_core.Searchability.measure} would use, checkpointing
    atomically every [ckpt_every] trials: at any instant the on-disk
    state is a consistent prefix of the shard, so SIGKILL costs at most
    [ckpt_every - 1] redone trials and zero bytes of output
    difference. *)

val fault_fires : seed:int -> shard:int -> next:int -> float -> bool
(** The deterministic crash schedule: whether the worker self-SIGKILLs
    after writing the checkpoint at position [next] is a pure function
    of [(seed, shard, next)]. Each kill point fires at most once per
    run history — the next incarnation resumes beyond it — so a
    fault-rate run always terminates, and a given seed always
    exercises the same crashes. *)

val run_shard :
  dir:string ->
  grid_crc:int32 ->
  Grid.plan ->
  shard:int ->
  ?fault_rate:float ->
  ?ckpt_every:int ->
  ?progress:(int -> unit) ->
  ?after_ckpt:(next:int -> unit) ->
  unit ->
  Ckpt.t
(** Run (or resume) one shard to completion and return its final,
    complete checkpoint. An existing checkpoint is validated against
    [grid_crc], the shard range and the plan's rng token — a mismatch
    is [Failure], never a silent restart. [progress] is called after
    each checkpoint with the tasks completed so far in this shard;
    [after_ckpt] is the test hook for simulating a crash at an exact
    checkpoint boundary (raise from it to stop mid-shard).

    With [fault_rate > 0] the process may {b SIGKILL itself} and not
    return — callers other than worker processes must pass [0].

    When this process is tracing ({!Sf_obs.Trace.active}), each trial
    is wrapped in a [fabric.trial] span carrying the shard, the task
    index and the {!Sf_obs.Tctx} context derived from
    [(seed, task)] — the per-shard story the merged fleet timeline
    shows (doc/OBSERVABILITY.md). *)

val main :
  dir:string -> connect:string -> fault_rate:float -> ckpt_every:int -> unit -> unit
(** The [sffabric worker] entry point: load the plan from [dir],
    connect to the coordinator at [connect], and serve shard
    assignments until [Quit] or EOF. When an [Assign] body carries the
    {!Relay} trace flag, the worker buffers its [fabric.*] trace
    events and ships a {!Relay} batch (events plus the just-persisted
    counter deltas) after every checkpoint write. *)
