(** The process pool: a coordinator select loop plus the matching
    worker loop, generic over what a "job" is. The grid runner
    ({!Coordinator} / {!Worker}) and the experiment fan-out
    ([Sf_experiments.Distrib]) both sit on this engine.

    The coordinator binds a unix-domain control socket through
    {!Sf_obs.Sock} (stale sockets of crashed coordinators are
    reclaimed, live ones refused — so the same run directory cannot be
    coordinated twice), spawns worker processes, and feeds each
    connection [Assign] jobs until the pending queue drains. Worker
    death — EOF, a reset, an unresynchronisable stream, SIGKILL at any
    instant — requeues the in-flight job at the head and spawns a
    replacement, up to [max_spawns]. Progress lands in the [fabric.*]
    registry metrics and trace instants, so [sftop] can watch a
    distributed run live (doc/FABRIC.md).

    The engine never looks inside job bodies; determinism is the
    client's concern — jobs must be pure functions of their index. *)

type report = {
  sw_completed : int;
  sw_spawned : int;  (** processes started, including replacements *)
  sw_deaths : int;
  sw_reassigned : int;  (** jobs requeued after a death *)
}

val spawn_exec : string array -> int
(** Spawn [argv] (argv.(0) is the executable path) via
    [Unix.create_process], returning the child pid — the standard
    [spawn] callback for CLI use. Not fork+exec: OCaml 5 forbids
    [Unix.fork] once any domain has been created, and coordinators
    routinely run domain-pool work first. *)

val run :
  who:string ->
  sock_path:string ->
  workers:int ->
  ?backlog:int ->
  ?max_spawns:int ->
  ?stop_after:int ->
  spawn:(unit -> int) ->
  pending:int list ->
  assign_body:(int -> string) ->
  on_done:(job:int -> body:string -> unit) ->
  ?on_progress:(job:int -> body:string -> unit) ->
  ?on_telemetry:(pid:int -> job:int -> body:string -> unit) ->
  unit ->
  [ `Complete | `Stopped_early ] * report
(** Drive [pending] (job indices, assigned head-first) to completion
    on [workers] concurrent processes started with [spawn].

    [stop_after k] stops the run once [k] jobs have completed,
    SIGKILLing the remaining workers mid-job — the controlled way to
    manufacture a crashed, resumable state (tests, the CI fabric-smoke
    job). [`Stopped_early] is returned iff jobs remain.

    [max_spawns] (default [workers + 32]) bounds total process starts;
    exceeding it aborts with [Failure] after killing the fleet — the
    backstop against a job that kills every worker it is assigned to.

    [on_telemetry] receives each [Telemetry] message with the sending
    worker's pid (0 if the message somehow precedes [Hello]) — the
    {!Coordinator} uses the pid to keep one merged-timeline track per
    worker process.

    On every path — complete, stopped early, failure — children are
    reaped and the socket closed and unlinked before returning.

    @raise Invalid_argument when [workers < 1]; [Failure] on the spawn
    limit or an internal invariant violation. *)

val worker_loop :
  connect:string ->
  handle:
    (job:int ->
    body:string ->
    progress:(string -> unit) ->
    telemetry:(string -> unit) ->
    string) ->
  unit
(** The worker side: connect to the coordinator's socket, send [Hello]
    with our pid, then serve [Assign] jobs with [handle] (its return
    value becomes the [Done] body; [progress] sends a [Progress] body,
    [telemetry] a [Telemetry] body — a {!Relay} batch) until [Quit] or
    EOF. A vanished coordinator is an exit, not an error — the work
    must be re-derivable from checkpoints. *)
