(* The shard runner: what one worker process does with one Assign.

   A shard is the task range [lo, hi) of the flattened grid.  Trials
   run strictly in task order on the same Rng.split_at streams an
   in-process run would use; every ckpt_every trials the accumulated
   outcomes are checkpointed atomically, so at any instant the on-disk
   state is a consistent prefix of the shard.  Resuming loads the
   prefix and continues from c_next — a SIGKILL mid-trial costs at
   most ckpt_every - 1 trials of redone work and zero bytes of output
   difference.

   Fault injection is deterministic: whether the worker kills itself
   after writing the checkpoint at position `next` is a pure function
   of (seed, shard, next), so each kill point fires at most once per
   run history (the next incarnation starts beyond it) — a fault-rate
   run always terminates, and a given seed always exercises the same
   crash schedule. *)

module Rng = Sf_prng.Rng
module S = Sf_core.Searchability
module Registry = Sf_obs.Registry
module Trace = Sf_obs.Trace

let c_shards_run = Registry.counter "fabric.shards_run"
let c_ckpt_writes = Registry.counter "fabric.ckpt_writes"
let t_ckpt_write = Registry.timer "fabric.ckpt_write_s"

(* --- telemetry relay ------------------------------------------------ *)

(* When an Assign asks for tracing (Relay.assign_wants_trace), the
   worker buffers its own fabric.* trace events in a process-global
   sink and ships them — together with the counter deltas the
   checkpoint just persisted — as a Relay batch after every checkpoint
   write.  Only fabric.*-named events are kept: a trial emits
   search.trial spans and per-request oracle instants by the thousand,
   and relaying those over the control socket would swamp it; the
   per-shard story (trial spans, checkpoint instants) is what the
   merged fleet timeline wants.  The buffer is bounded as a backstop —
   it drains every ckpt_every trials, so the cap is never the limit in
   a healthy run. *)

let relay_max_events = 4096
let relay_buf : Trace.event list ref = ref [] (* newest first *)
let relay_buf_len = ref 0
let relay_attached = ref false

let relay_keep name =
  String.length name >= 7 && String.sub name 0 7 = "fabric."

let ensure_relay_sink () =
  if not !relay_attached then begin
    relay_attached := true;
    ignore
      (Trace.attach
         {
           Trace.descr = "fabric telemetry relay";
           emit =
             (fun e ->
               if relay_keep e.Trace.name && !relay_buf_len < relay_max_events
               then begin
                 relay_buf := e :: !relay_buf;
                 incr relay_buf_len
               end);
           close = (fun () -> ());
         })
  end

let relay_drain () =
  let evs = List.rev !relay_buf in
  relay_buf := [];
  relay_buf_len := 0;
  evs

let fault_fires ~seed ~shard ~next rate =
  rate > 0.
  &&
  let r = Rng.split_at (Rng.split_at (Rng.of_seed (seed lxor 0x5FAB12)) (shard + 1)) (next + 1) in
  Rng.unit_float r < rate

let run_shard ~dir ~grid_crc (plan : Grid.plan) ~shard ?(fault_rate = 0.) ?(ckpt_every = 16)
    ?(progress = fun (_ : int) -> ()) ?(after_ckpt = fun ~next:_ -> ()) () =
  if ckpt_every < 1 then invalid_arg "Worker.run_shard: ckpt_every must be >= 1";
  if shard < 0 || shard >= Array.length plan.Grid.p_shards then
    invalid_arg (Printf.sprintf "Worker.run_shard: no shard %d in the plan" shard);
  let spec = plan.Grid.p_spec in
  let lo, hi = plan.Grid.p_shards.(shard) in
  let path = Grid.shard_path dir shard in
  let token = Grid.rng_token spec in
  let existing = Ckpt.load_opt ~path in
  (match existing with
  | Some c ->
    if
      c.Ckpt.c_grid_crc <> grid_crc || c.Ckpt.c_shard <> shard || c.Ckpt.c_lo <> lo
      || c.Ckpt.c_hi <> hi
      || c.Ckpt.c_rng_token <> token
    then
      failwith
        (Printf.sprintf "%s belongs to a different grid or seed; refusing to resume" path)
  | None -> ());
  match existing with
  | Some c when Ckpt.complete c -> c
  | _ ->
    Sf_obs.Counter.incr c_shards_run;
    let out = Array.make (hi - lo) (0., false, false) in
    let start_next, prior_counters =
      match existing with
      | Some c ->
        Array.blit c.Ckpt.c_outcomes 0 out 0 (Array.length c.Ckpt.c_outcomes);
        (c.Ckpt.c_next, c.Ckpt.c_counters)
      | None -> (lo, [])
    in
    let master = Rng.of_seed spec.Grid.gs_seed in
    let make = Grid.make_of_spec spec in
    let strategies = Array.of_list (Grid.strategies_of_spec spec) in
    let sizes = Array.of_list spec.Grid.gs_sizes in
    let cspec = Grid.core_spec spec in
    (* counter deltas cover exactly the trials persisted by this
       incarnation; trials a previous incarnation ran but never
       checkpointed died with its registry, keeping merged totals
       consistent with merged outcomes *)
    let base = Ckpt.counters_snapshot () in
    let next = ref start_next in
    let write_ckpt () =
      let counters =
        Ckpt.counters_merge prior_counters
          (Ckpt.counters_delta ~base (Ckpt.counters_snapshot ()))
      in
      let c =
        {
          Ckpt.c_grid_crc = grid_crc;
          c_shard = shard;
          c_lo = lo;
          c_hi = hi;
          c_rng_token = token;
          c_next = !next;
          c_outcomes = Array.sub out 0 (!next - lo);
          c_counters = counters;
        }
      in
      Sf_obs.Timer.time t_ckpt_write (fun () -> Ckpt.write ~path c);
      Sf_obs.Counter.incr c_ckpt_writes;
      if Trace.active () then
        Trace.emit "fabric.ckpt" Trace.Instant
          ~args:[ ("shard", Trace.Int shard); ("next", Trace.Int !next) ];
      progress (!next - lo);
      after_ckpt ~next:!next;
      if fault_fires ~seed:spec.Grid.gs_seed ~shard ~next:!next fault_rate then
        (* die like a real crash: no unwinding, no exit handlers *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
      c
    in
    if hi = lo then write_ckpt ()
    else begin
      let last = ref None in
      while !next < hi do
        let task = !next in
        let traced = Trace.active () in
        if traced then
          Trace.emit "fabric.trial" Trace.Begin
            ~args:
              (("shard", Trace.Int shard)
              :: ("task", Trace.Int task)
              :: Sf_obs.Tctx.args
                   (Sf_obs.Tctx.derive ~seed:spec.Grid.gs_seed ~id:task));
        out.(task - lo) <- S.run_grid_task master ~spec:cspec ~make ~strategies ~sizes task;
        if traced then Trace.emit "fabric.trial" Trace.End;
        incr next;
        if (!next - lo) mod ckpt_every = 0 || !next = hi then last := Some (write_ckpt ())
      done;
      match !last with Some c -> c | None -> assert false
    end

(* The Swarm handle for grid work: job = shard id, assign body = the
   Relay trace flag (everything else derives from the run directory),
   empty done body (the result lives in the checkpoint file), progress
   body = varint of tasks completed in the shard, telemetry body = a
   Relay batch after each checkpoint write. *)
let handle ~dir ~grid_crc plan ~fault_rate ~ckpt_every ~job ~body ~progress ~telemetry =
  let send_progress done_tasks =
    let buf = Buffer.create 8 in
    Sf_store.Varint.write buf done_tasks;
    progress (Buffer.contents buf)
  in
  let flush =
    if not (Relay.assign_wants_trace body) then fun ~next:_ -> ()
    else begin
      ensure_relay_sink ();
      (* relay after (never before) the checkpoint write, in deltas
         from the last relay: across any crash history, relayed totals
         stay <= checkpointed totals, and the coordinator closes the
         gap from the checkpoints at the end of the run *)
      let last = ref (Ckpt.counters_snapshot ()) in
      fun ~next:_ ->
        let now = Ckpt.counters_snapshot () in
        let counters = Ckpt.counters_delta ~base:!last now in
        last := now;
        let events = relay_drain () in
        if events <> [] || counters <> [] then
          telemetry (Relay.encode { Relay.r_events = events; r_counters = counters })
    end
  in
  let (_ : Ckpt.t) =
    run_shard ~dir ~grid_crc plan ~shard:job ~fault_rate ~ckpt_every ~progress:send_progress
      ~after_ckpt:flush ()
  in
  (* a resumed-complete shard writes no checkpoint; nothing new to
     relay in that case, but drain any stragglers all the same *)
  flush ~next:(-1);
  ""

let main ~dir ~connect ~fault_rate ~ckpt_every () =
  let plan, grid_crc = Grid.load_plan ~dir in
  Swarm.worker_loop ~connect ~handle:(fun ~job ~body ~progress ~telemetry ->
      handle ~dir ~grid_crc plan ~fault_rate ~ckpt_every ~job ~body ~progress ~telemetry)
