(** Resumable shard checkpoints — the [scalefree.ckpt/1] format
    (doc/FABRIC.md).

    One file per shard, rewritten atomically (tmp+rename, the
    {!Sf_store} discipline) every few trials: a worker killed at any
    instant leaves either the previous checkpoint or the next, never a
    torn file. Strict decode in the {!Sf_store.Codec} style — magic,
    version byte, varint fields, trailing CRC-32; every mutilated
    input raises {!Sf_store.Codec_error.Error}.

    A checkpoint binds itself to its grid by the plan file's CRC and a
    fingerprint of the master rng state, so resuming against the wrong
    grid or seed fails loudly instead of merging foreign outcomes. *)

type t = {
  c_grid_crc : int32;  (** CRC-32 of the grid plan file this shard belongs to *)
  c_shard : int;
  c_lo : int;
  c_hi : int;  (** task range [lo, hi) in the flattened grid *)
  c_rng_token : int64;  (** {!Sf_prng.Rng.state_fingerprint} of the master stream *)
  c_next : int;  (** first task not yet persisted; [lo <= next <= hi] *)
  c_outcomes : (float * bool * bool) array;
      (** [(cost, truncated, gave_up)] for tasks [lo..next-1], in task order *)
  c_counters : (string * int) list;
      (** registry counter deltas attributable to exactly the persisted
          outcomes, sorted by name; [fabric.*] metrics excluded — they
          measure the machinery and differ across crash histories *)
}

val complete : t -> bool
(** [c_next = c_hi]. *)

val encode : t -> string
(** Canonical bytes. @raise Invalid_argument when the outcome count
    disagrees with [next - lo]. *)

val decode : string -> t
(** @raise Sf_store.Codec_error.Error on any malformed input. *)

val write : path:string -> t -> unit
(** Atomic: encode to [path.tmp.PID], then rename over [path]. *)

val load : path:string -> t
(** @raise Sf_store.Codec_error.Error on corruption, [Sys_error] when
    unreadable. *)

val load_opt : path:string -> t option
(** [None] when the file does not exist; corruption still raises —
    a checkpoint that decodes wrongly must surface, not silently
    restart the shard. *)

(** {1 Counter bookkeeping}

    The helpers the worker and coordinator share to account
    observability alongside outcomes. *)

val counters_snapshot : unit -> (string * int) list
(** Current values of every registry counter except [fabric.*], in
    registry (name) order. *)

val counters_delta :
  base:(string * int) list -> (string * int) list -> (string * int) list
(** Positive differences [now - base] (a name missing from [base]
    counts from zero — metrics register lazily). *)

val counters_merge :
  (string * int) list -> (string * int) list -> (string * int) list
(** Pointwise sum, sorted by name. *)
