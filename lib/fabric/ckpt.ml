(* Resumable shard checkpoints — the scalefree.ckpt/1 format.

   One file per shard under DIR/shards/, rewritten atomically
   (tmp+rename, the lib/store discipline) every few trials, so a
   worker killed at any instant leaves either the previous checkpoint
   or the next one, never a torn file.  A checkpoint binds itself to
   its grid twice over: the CRC of the grid plan file and a
   fingerprint of the master rng state, so a stale checkpoint from a
   different grid or seed is refused loudly at resume instead of
   silently merging foreign outcomes.

   Counter deltas ride along so the coordinator can reconstruct the
   observability totals of exactly the trials whose outcomes were
   persisted: a worker that dies after running trials but before
   checkpointing them takes its in-memory counters down with it, which
   is precisely what keeps the merged totals consistent with the
   merged outcomes.  fabric.* metrics are excluded — they measure the
   machinery (checkpoint writes, worker deaths) and differ across
   crash histories by design. *)

module Varint = Sf_store.Varint
module Crc32 = Sf_store.Crc32
module E = Sf_store.Codec_error

let magic = "SFCK"
let version = 1

type t = {
  c_grid_crc : int32;
  c_shard : int;
  c_lo : int;
  c_hi : int;
  c_rng_token : int64;
  c_next : int;  (* first task index not yet persisted; lo <= next <= hi *)
  c_outcomes : (float * bool * bool) array;  (* next - lo entries *)
  c_counters : (string * int) list;  (* sorted by name, values > 0 *)
}

let complete c = c.c_next = c.c_hi

let flag_truncated = 0x01
let flag_gave_up = 0x02

let encode c =
  if Array.length c.c_outcomes <> c.c_next - c.c_lo then
    invalid_arg "Ckpt.encode: outcome count disagrees with next - lo";
  let buf = Buffer.create (64 + (9 * Array.length c.c_outcomes)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  let b4 = Bytes.create 4 in
  Bytes.set_int32_le b4 0 c.c_grid_crc;
  Buffer.add_bytes buf b4;
  Varint.write buf c.c_shard;
  Varint.write buf c.c_lo;
  Varint.write buf c.c_hi;
  let b8 = Bytes.create 8 in
  Bytes.set_int64_le b8 0 c.c_rng_token;
  Buffer.add_bytes buf b8;
  Varint.write buf c.c_next;
  Array.iter
    (fun (cost, truncated, gave_up) ->
      Bytes.set_int64_le b8 0 (Int64.bits_of_float cost);
      Buffer.add_bytes buf b8;
      let flags =
        (if truncated then flag_truncated else 0) lor if gave_up then flag_gave_up else 0
      in
      Buffer.add_char buf (Char.chr flags))
    c.c_outcomes;
  Varint.write buf (List.length c.c_counters);
  List.iter
    (fun (name, v) ->
      Varint.write buf (String.length name);
      Buffer.add_string buf name;
      Varint.write buf v)
    c.c_counters;
  let crc = Crc32.string (Buffer.contents buf) in
  Bytes.set_int32_le b4 0 crc;
  Buffer.add_bytes buf b4;
  Buffer.contents buf

let read_string s ~limit ~pos =
  let n, pos = Varint.read s ~pos in
  if n < 0 || pos + n > limit then E.fail (E.Truncated "string");
  (String.sub s pos n, pos + n)

let decode s =
  let len = String.length s in
  if len < String.length magic + 1 + 4 + 4 then E.fail (E.Truncated "checkpoint");
  if String.sub s 0 4 <> magic then E.fail E.Bad_magic;
  let v = Char.code s.[4] in
  if v <> version then E.fail (E.Unsupported_version v);
  let stored = String.get_int32_le s (len - 4) in
  let computed = Crc32.sub s ~pos:0 ~len:(len - 4) in
  if stored <> computed then E.fail (E.Checksum_mismatch { stored; computed });
  let payload_end = len - 4 in
  let grid_crc = String.get_int32_le s 5 in
  let pos = 9 in
  let shard, pos = Varint.read s ~pos in
  let lo, pos = Varint.read s ~pos in
  let hi, pos = Varint.read s ~pos in
  if lo > hi then E.fail (E.Malformed "shard range");
  if pos + 8 > payload_end then E.fail (E.Truncated "rng token");
  let rng_token = String.get_int64_le s pos in
  let pos = pos + 8 in
  let next, pos = Varint.read s ~pos in
  if next < lo || next > hi then E.fail (E.Malformed "next outside shard range");
  let count = next - lo in
  if pos + (9 * count) > payload_end then E.fail (E.Truncated "outcomes");
  let outcomes =
    Array.init count (fun i ->
        let base = pos + (9 * i) in
        let cost = Int64.float_of_bits (String.get_int64_le s base) in
        let flags = Char.code s.[base + 8] in
        if flags land lnot (flag_truncated lor flag_gave_up) <> 0 then
          E.fail (E.Malformed (Printf.sprintf "unknown outcome flag bits %#x" flags));
        (cost, flags land flag_truncated <> 0, flags land flag_gave_up <> 0))
  in
  let pos = pos + (9 * count) in
  let n_counters, pos = Varint.read s ~pos in
  if n_counters < 0 then E.fail (E.Malformed "counter count");
  let pos = ref pos in
  let counters =
    List.init n_counters (fun _ ->
        let name, p = read_string s ~limit:payload_end ~pos:!pos in
        let v, p = Varint.read s ~pos:p in
        pos := p;
        (name, v))
  in
  if !pos <> payload_end then
    E.fail (E.Malformed (Printf.sprintf "%d trailing byte(s)" (payload_end - !pos)));
  {
    c_grid_crc = grid_crc;
    c_shard = shard;
    c_lo = lo;
    c_hi = hi;
    c_rng_token = rng_token;
    c_next = next;
    c_outcomes = outcomes;
    c_counters = counters;
  }

let write ~path c =
  let data = encode c in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path = decode (read_file path)

let load_opt ~path = if Sys.file_exists path then Some (load ~path) else None

(* --- counter bookkeeping ------------------------------------------- *)

let fabric_prefix = "fabric."

let is_fabric name =
  String.length name >= String.length fabric_prefix
  && String.sub name 0 (String.length fabric_prefix) = fabric_prefix

let counters_snapshot () =
  Sf_obs.Registry.all ()
  |> List.filter_map (fun (name, m) ->
         match m with
         | Sf_obs.Registry.Counter c when not (is_fabric name) ->
           Some (name, Sf_obs.Counter.value c)
         | _ -> None)

(* [now] extends [base]: metrics register lazily, so names may appear
   between snapshots — a missing base value is zero. *)
let counters_delta ~base now =
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace base_tbl name v) base;
  List.filter_map
    (fun (name, v) ->
      let d = v - (try Hashtbl.find base_tbl name with Not_found -> 0) in
      if d > 0 then Some (name, d) else None)
    now

let counters_merge a b =
  let tbl = Hashtbl.create 64 in
  let add (name, v) = Hashtbl.replace tbl name (v + (try Hashtbl.find tbl name with Not_found -> 0)) in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
