(* The coordinator: owns the run directory, decides what still needs
   running, drives the Swarm over the pending shards, and merges the
   complete checkpoints into the final outputs.

   The merge is where the byte-identity contract is discharged: shard
   outcome slices are blitted into one array at their lo offsets —
   reconstructing exactly the task-order outcome sequence a sequential
   run produces — and aggregated with the same fold measure uses.
   Worker count, crash history and assignment order can only change
   how fast the array fills, never its contents. *)

module Registry = Sf_obs.Registry
module S = Sf_core.Searchability

let c_tasks_done = Registry.counter "fabric.tasks_done"

type shard_status = {
  st_shard : int;
  st_lo : int;
  st_hi : int;
  st_done : int;
  st_state : [ `Missing | `Partial | `Complete ];
}

let default_shards ~workers spec =
  let n = Grid.n_tasks spec in
  max 1 (min (max 1 workers * 4) n)

let prepare ~dir ~shards spec =
  if Sys.file_exists (Grid.plan_path dir) then
    failwith
      (Printf.sprintf "%s already holds a grid plan; `sffabric resume` continues it"
         (Grid.plan_path dir));
  let plan = Grid.make_plan ~shards spec in
  Grid.write_plan ~dir plan;
  Grid.load_plan ~dir

let load ~dir = Grid.load_plan ~dir

(* load a shard's checkpoint and insist it belongs to this plan *)
let ckpt_of_shard ~dir ~grid_crc (plan : Grid.plan) shard =
  let lo, hi = plan.Grid.p_shards.(shard) in
  let path = Grid.shard_path dir shard in
  match Ckpt.load_opt ~path with
  | None -> None
  | Some c ->
    if
      c.Ckpt.c_grid_crc <> grid_crc || c.Ckpt.c_shard <> shard || c.Ckpt.c_lo <> lo
      || c.Ckpt.c_hi <> hi
      || c.Ckpt.c_rng_token <> Grid.rng_token plan.Grid.p_spec
    then
      failwith
        (Printf.sprintf "%s belongs to a different grid or seed; refusing to merge" path)
    else Some c

let status ~dir ((plan, grid_crc) : Grid.plan * int32) =
  Array.to_list
    (Array.mapi
       (fun shard (lo, hi) ->
         match ckpt_of_shard ~dir ~grid_crc plan shard with
         | None -> { st_shard = shard; st_lo = lo; st_hi = hi; st_done = 0; st_state = `Missing }
         | Some c ->
           {
             st_shard = shard;
             st_lo = lo;
             st_hi = hi;
             st_done = c.Ckpt.c_next - lo;
             st_state = (if Ckpt.complete c then `Complete else `Partial);
           })
       plan.Grid.p_shards)

let render_status (plan : Grid.plan) sts =
  let b = Buffer.create 256 in
  let n = Grid.n_tasks plan.Grid.p_spec in
  Buffer.add_string b "shard        tasks   done  state\n";
  let total_done = ref 0 and complete = ref 0 in
  List.iter
    (fun st ->
      total_done := !total_done + st.st_done;
      if st.st_state = `Complete then incr complete;
      Buffer.add_string b
        (Printf.sprintf "%5d  [%5d,%5d) %6d  %s\n" st.st_shard st.st_lo st.st_hi st.st_done
           (match st.st_state with
           | `Missing -> "missing"
           | `Partial -> "partial"
           | `Complete -> "complete")))
    sts;
  Buffer.add_string b
    (Printf.sprintf "total  %d/%d tasks, %d/%d shards complete\n" !total_done n !complete
       (List.length sts));
  Buffer.contents b

let pending ~dir ~grid_crc (plan : Grid.plan) =
  let pend = ref [] in
  for shard = Array.length plan.Grid.p_shards - 1 downto 0 do
    match ckpt_of_shard ~dir ~grid_crc plan shard with
    | Some c when Ckpt.complete c -> ()
    | _ -> pend := shard :: !pend
  done;
  !pend

(* reconstruct the full task-order outcome array and the summed
   counter deltas from the complete shard checkpoints *)
let merge ~dir ~grid_crc (plan : Grid.plan) =
  let n = Grid.n_tasks plan.Grid.p_spec in
  let out = Array.make n (0., false, false) in
  let counters = ref [] in
  Array.iteri
    (fun shard (lo, hi) ->
      match ckpt_of_shard ~dir ~grid_crc plan shard with
      | Some c when Ckpt.complete c ->
        Array.blit c.Ckpt.c_outcomes 0 out lo (hi - lo);
        counters := Ckpt.counters_merge !counters c.Ckpt.c_counters
      | _ ->
        failwith
          (Printf.sprintf "Coordinator.merge: shard %d is incomplete; resume the run first"
             shard))
    plan.Grid.p_shards;
  (out, !counters)

let run ~dir ~workers ?(ckpt_every = 16) ?(fault_rate = 0.) ?stop_after ?max_spawns
    ?sock_path ?(trace = false) ?(on_shard_progress = fun ~shard:_ ~done_tasks:_ ~total:_ -> ())
    ~spawn ((plan, grid_crc) : Grid.plan * int32) =
  if workers < 0 then invalid_arg "Coordinator.run: workers must be >= 0";
  if fault_rate < 0. || fault_rate >= 1. then
    invalid_arg "Coordinator.run: fault_rate must be in [0, 1)";
  let pend = pending ~dir ~grid_crc plan in
  (* per-counter totals already applied live from worker relays, so the
     final merge only adds the gap (trials checkpointed but never
     relayed — a worker that died between its last checkpoint write and
     the relay send).  Empty when tracing is off. *)
  let relayed : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let finish ~apply_counters report =
    let outcomes, counters = merge ~dir ~grid_crc plan in
    (* in distributed mode the trials ran in other processes; fold
       their persisted counter deltas into this registry so sftop and
       the exposition socket see grid totals, not just fabric.* *)
    if apply_counters then
      List.iter
        (fun (name, v) ->
          let live = Option.value (Hashtbl.find_opt relayed name) ~default:0 in
          let gap = max 0 (v - live) in
          if gap > 0 then Sf_obs.Counter.add (Registry.counter name) gap)
        counters;
    let points = Grid.write_outputs ~dir plan ~outcomes ~counters in
    `Complete (points, report)
  in
  let zero = { Swarm.sw_completed = 0; sw_spawned = 0; sw_deaths = 0; sw_reassigned = 0 } in
  if pend = [] then finish ~apply_counters:false zero
  else if workers = 0 then begin
    (* sequential in-process: the same shard runner, checkpoint files
       and merge path — just no sockets and no forks.  Fault injection
       is forced off: the dying process would be us. *)
    List.iter
      (fun shard ->
        let (_ : Ckpt.t) =
          Worker.run_shard ~dir ~grid_crc plan ~shard ~fault_rate:0. ~ckpt_every ()
        in
        ())
      pend;
    finish ~apply_counters:false { zero with Swarm.sw_completed = List.length pend }
  end
  else begin
    let sock_path = Option.value sock_path ~default:(Grid.sock_path dir) in
    let max_spawns =
      match max_spawns with
      | Some m -> m
      | None ->
        if fault_rate > 0. then
          (* every checkpoint boundary is a potential at-most-once kill
             point, so deaths are bounded by the task count *)
          workers + 8 + (2 * Grid.n_tasks plan.Grid.p_spec)
        else workers + 32
    in
    (* Progress bodies are cumulative per shard; convert to increments *)
    let last_seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let on_progress ~job ~body =
      match Sf_store.Varint.read body ~pos:0 with
      | exception _ -> ()
      | cum, _ ->
        let prev = Option.value (Hashtbl.find_opt last_seen job) ~default:0 in
        if cum > prev then begin
          Hashtbl.replace last_seen job cum;
          Sf_obs.Counter.add c_tasks_done (cum - prev);
          let lo, hi = plan.Grid.p_shards.(job) in
          on_shard_progress ~shard:job ~done_tasks:cum ~total:(hi - lo)
        end
    in
    (* telemetry relays land here: name the sending process by its pid
       in first-seen order ("worker-1", "worker-2", ...), apply the
       counter deltas live and replay the trace events — tagged with
       the track name — into this process's stream *)
    let worker_names : (int, string) Hashtbl.t = Hashtbl.create 8 in
    let on_telemetry ~pid ~job:_ ~body =
      match Relay.decode body with
      | exception _ -> () (* the frame CRC passed, so this is a version skew, not corruption; drop *)
      | batch ->
        let proc =
          match Hashtbl.find_opt worker_names pid with
          | Some n -> n
          | None ->
            let n = Printf.sprintf "worker-%d" (Hashtbl.length worker_names + 1) in
            Hashtbl.replace worker_names pid n;
            n
        in
        List.iter
          (fun (name, v) ->
            Hashtbl.replace relayed name
              (v + Option.value (Hashtbl.find_opt relayed name) ~default:0))
          batch.Relay.r_counters;
        Sf_obs.Shard.merge_remote ~proc ~counters:batch.Relay.r_counters
          ~events:batch.Relay.r_events
    in
    let outcome, report =
      Swarm.run ~who:"Coordinator.run" ~sock_path ~workers ~max_spawns ?stop_after
        ~spawn:(fun () -> spawn ~sock_path)
        ~pending:pend
        ~assign_body:(fun _ -> Relay.assign_body ~trace)
        ~on_done:(fun ~job:_ ~body:_ -> ())
        ~on_progress ~on_telemetry ()
    in
    match outcome with
    | `Stopped_early -> `Stopped_early report
    | `Complete -> finish ~apply_counters:true report
  end
