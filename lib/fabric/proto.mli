(** The coordinator/worker control protocol (version 1) —
    length-prefixed frames carrying versioned, CRC-checked payloads,
    in the codec discipline of {!Sf_store.Codec} and the serve wire
    format: varint bodies, canonical encoding, strict decode where
    every mutilated input raises {!Sf_store.Codec_error.Error}.

    Six message kinds make the whole conversation: a worker opens
    with [Hello pid]; the coordinator answers each idle worker with
    [Assign] (an opaque job body — the grid runner and the experiment
    fan-out define their own) or [Quit]; the worker streams optional
    [Progress] and [Telemetry] (a {!Relay} batch of buffered trace
    events and counter deltas) and ends the job with [Done]. Anything
    else — EOF, a bad frame — is a worker death and triggers
    reassignment (doc/FABRIC.md). *)

type msg =
  | Hello of int  (** worker's pid — how the coordinator learns who to reap *)
  | Assign of { job : int; body : string }
  | Done of { job : int; body : string }
  | Progress of { job : int; body : string }
  | Telemetry of { job : int; body : string }
      (** worker → coordinator, after each checkpoint write: the
          {!Relay}-encoded observability delta since the last relay *)
  | Quit

val version : int
(** [1]. *)

val max_payload_default : int
(** 64 MiB — [Done] bodies carry whole experiment outputs. *)

val encode : msg -> string
(** Payload bytes (no frame header). Canonical and deterministic. *)

val decode : string -> msg
(** @raise Sf_store.Codec_error.Error on truncation, version or kind
    mismatch, CRC failure, or trailing bytes. *)

val frame : string -> string
(** Prefix a payload with its 4-byte little-endian length. *)

val pop :
  ?max_payload:int ->
  string ->
  pos:int ->
  [ `Frame of string * int | `Need_more | `Bad of string ]
(** Incremental frame extraction, as in the serve wire format: [`Bad]
    means the stream cannot be resynchronised and the connection must
    be dropped. *)

(** {1 Connections}

    A thin buffered reader/writer over a stream socket, used blocking
    by workers and select-driven by the coordinator. *)

type conn

val conn : Unix.file_descr -> conn
val conn_fd : conn -> Unix.file_descr

val send : conn -> msg -> unit
(** Frame, encode and write fully. [Unix.Unix_error] (EPIPE,
    ECONNRESET) propagates — the caller decides whether a vanished
    peer is fatal. *)

val pump : conn -> [ `Msgs of msg list | `Eof | `Bad of string ]
(** One [read(2)] plus every complete frame it finishes, in arrival
    order. [`Eof] on a cleanly closed peer (or reset), [`Bad] on an
    unresynchronisable stream. Call after [select] says readable. *)

val recv_block : conn -> msg option
(** Block until one message arrives ([None] on EOF). Messages beyond
    the first are queued for the next call.
    @raise Failure on a [`Bad] stream. *)
