(* The sharded grid: what a fabric run is *of*.

   A grid is a searchability measurement (model x sizes x strategies x
   trials, one master seed) plus a shard plan: a partition of the
   flattened task range [0, n_tasks) into contiguous [lo, hi) slices.
   The plan is persisted in DIR/grid.sfg (binary, scalefree.grid/1,
   strict codec) when a run starts and reloaded verbatim on resume, so
   shard boundaries never move once trials have been checkpointed —
   resuming with a different --workers count redistributes shards, not
   tasks.  A human-readable mirror goes to DIR/grid.json (write-only).

   Everything downstream is a pure function of the plan: worker
   processes run Searchability.run_grid_task over their slice, the
   coordinator concatenates slices in task order and feeds
   Searchability.aggregate — the same code path Searchability.measure
   uses in-process, which is the whole byte-identity argument
   (doc/FABRIC.md). *)

module Rng = Sf_prng.Rng
module S = Sf_core.Searchability
module Varint = Sf_store.Varint
module Crc32 = Sf_store.Crc32
module E = Sf_store.Codec_error

type spec = {
  gs_model : string;
  gs_p : float;
  gs_m : int;
  gs_alpha : float;
  gs_exponent : float;
  gs_sizes : int list;
  gs_strategies : string list;
  gs_trials : int;
  gs_metric : [ `Neighbor | `Target ];
  gs_source : [ `Oldest | `Random ];
  gs_budget_mul : int;
  gs_budget_add : int;
  gs_seed : int;
}

type plan = { p_spec : spec; p_shards : (int * int) array }

let core_spec spec =
  {
    S.trials = spec.gs_trials;
    S.metric = (match spec.gs_metric with `Neighbor -> S.To_neighbor | `Target -> S.To_target);
    S.budget = (fun n -> (spec.gs_budget_mul * n) + spec.gs_budget_add);
    S.source = (spec.gs_source :> [ `Oldest | `Random ]);
  }

let models = [ "mori"; "cooper-frieze"; "cooper-frieze-giant"; "config" ]

let make_of_spec spec =
  match spec.gs_model with
  | "mori" -> S.mori_instance ~p:spec.gs_p ~m:spec.gs_m
  | "cooper-frieze" ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha = spec.gs_alpha } in
    S.cooper_frieze_instance params
  | "cooper-frieze-giant" ->
    let params = { Sf_gen.Cooper_frieze.default with Sf_gen.Cooper_frieze.alpha = spec.gs_alpha } in
    S.cooper_frieze_giant_instance params
  | "config" -> S.config_model_instance ~exponent:spec.gs_exponent
  | other ->
    invalid_arg
      (Printf.sprintf "Grid: unknown model %s (%s)" other (String.concat " | " models))

let strategies_of_spec spec =
  let all =
    Sf_search.Strategies.weak_portfolio ()
    @ Sf_search.Strategies.strong_portfolio ()
    @ [ Sf_search.Strategies.random_edge ~skip_known:false ]
  in
  List.map
    (fun name ->
      match List.find_opt (fun s -> s.Sf_search.Strategy.name = name) all with
      | Some s -> s
      | None ->
        invalid_arg
          (Printf.sprintf "Grid: unknown strategy %s (known: %s)" name
             (String.concat ", " (List.map (fun s -> s.Sf_search.Strategy.name) all))))
    spec.gs_strategies

let n_tasks spec =
  S.n_grid_tasks ~sizes:spec.gs_sizes ~strategies:spec.gs_strategies ~spec:(core_spec spec)

let validate spec =
  if spec.gs_sizes = [] then invalid_arg "Grid: need at least one size";
  if spec.gs_strategies = [] then invalid_arg "Grid: need at least one strategy";
  let (_ : Rng.t -> int -> Sf_graph.Ugraph.t * int) = make_of_spec spec in
  let (_ : Sf_search.Strategy.t list) = strategies_of_spec spec in
  S.validate_grid ~sizes:spec.gs_sizes ~spec:(core_spec spec)

let rng_token spec = Rng.state_fingerprint (Rng.of_seed spec.gs_seed)

let make_plan ~shards spec =
  validate spec;
  let n = n_tasks spec in
  if shards < 1 then invalid_arg "Grid: need at least one shard";
  let shards = min shards n in
  let base = n / shards and rem = n mod shards in
  let plan = Array.make shards (0, 0) in
  let lo = ref 0 in
  for i = 0 to shards - 1 do
    let len = base + if i < rem then 1 else 0 in
    plan.(i) <- (!lo, !lo + len);
    lo := !lo + len
  done;
  { p_spec = spec; p_shards = plan }

(* ------------------------------------------------------------------ *)
(* Plan codec (scalefree.grid/1)                                       *)
(* ------------------------------------------------------------------ *)

let magic = "SFGR"
let version = 1

let encode plan =
  let s = plan.p_spec in
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Varint.write_signed buf s.gs_seed;
  Varint.write buf (String.length s.gs_model);
  Buffer.add_string buf s.gs_model;
  let b8 = Bytes.create 8 in
  let add_float f =
    Bytes.set_int64_le b8 0 (Int64.bits_of_float f);
    Buffer.add_bytes buf b8
  in
  add_float s.gs_p;
  Varint.write buf s.gs_m;
  add_float s.gs_alpha;
  add_float s.gs_exponent;
  Buffer.add_char buf (match s.gs_metric with `Neighbor -> '\000' | `Target -> '\001');
  Buffer.add_char buf (match s.gs_source with `Oldest -> '\000' | `Random -> '\001');
  Varint.write buf s.gs_budget_mul;
  Varint.write_signed buf s.gs_budget_add;
  Varint.write buf s.gs_trials;
  Varint.write buf (List.length s.gs_sizes);
  List.iter (Varint.write buf) s.gs_sizes;
  Varint.write buf (List.length s.gs_strategies);
  List.iter
    (fun name ->
      Varint.write buf (String.length name);
      Buffer.add_string buf name)
    s.gs_strategies;
  Varint.write buf (Array.length plan.p_shards);
  Array.iter
    (fun (lo, hi) ->
      Varint.write buf lo;
      Varint.write buf hi)
    plan.p_shards;
  let crc = Crc32.string (Buffer.contents buf) in
  let b4 = Bytes.create 4 in
  Bytes.set_int32_le b4 0 crc;
  Buffer.add_bytes buf b4;
  Buffer.contents buf

let read_string s ~limit ~pos =
  let n, pos = Varint.read s ~pos in
  if n < 0 || pos + n > limit then E.fail (E.Truncated "string");
  (String.sub s pos n, pos + n)

let read_byte s ~limit ~pos ~what =
  if pos >= limit then E.fail (E.Truncated what);
  (Char.code s.[pos], pos + 1)

let decode data =
  let len = String.length data in
  if len < 9 then E.fail (E.Truncated "grid plan");
  if String.sub data 0 4 <> magic then E.fail E.Bad_magic;
  let v = Char.code data.[4] in
  if v <> version then E.fail (E.Unsupported_version v);
  let stored = String.get_int32_le data (len - 4) in
  let computed = Crc32.sub data ~pos:0 ~len:(len - 4) in
  if stored <> computed then E.fail (E.Checksum_mismatch { stored; computed });
  let limit = len - 4 in
  let pos = 5 in
  let seed, pos = Varint.read_signed data ~pos in
  let model, pos = read_string data ~limit ~pos in
  let read_float pos =
    if pos + 8 > limit then E.fail (E.Truncated "float");
    (Int64.float_of_bits (String.get_int64_le data pos), pos + 8)
  in
  let p, pos = read_float pos in
  let m, pos = Varint.read data ~pos in
  let alpha, pos = read_float pos in
  let exponent, pos = read_float pos in
  let metric_b, pos = read_byte data ~limit ~pos ~what:"metric" in
  let metric =
    match metric_b with
    | 0 -> `Neighbor
    | 1 -> `Target
    | b -> E.fail (E.Malformed (Printf.sprintf "metric byte %d" b))
  in
  let source_b, pos = read_byte data ~limit ~pos ~what:"source" in
  let source =
    match source_b with
    | 0 -> `Oldest
    | 1 -> `Random
    | b -> E.fail (E.Malformed (Printf.sprintf "source byte %d" b))
  in
  let budget_mul, pos = Varint.read data ~pos in
  let budget_add, pos = Varint.read_signed data ~pos in
  let trials, pos = Varint.read data ~pos in
  let n_sizes, pos = Varint.read data ~pos in
  if n_sizes < 0 then E.fail (E.Malformed "size count");
  let pos = ref pos in
  let sizes =
    List.init n_sizes (fun _ ->
        let v, p = Varint.read data ~pos:!pos in
        pos := p;
        v)
  in
  let n_strats, sp = Varint.read data ~pos:!pos in
  if n_strats < 0 then E.fail (E.Malformed "strategy count");
  pos := sp;
  let strategies =
    List.init n_strats (fun _ ->
        let v, p = read_string data ~limit ~pos:!pos in
        pos := p;
        v)
  in
  let n_shards, hp = Varint.read data ~pos:!pos in
  if n_shards < 0 then E.fail (E.Malformed "shard count");
  pos := hp;
  let shards =
    Array.init n_shards (fun _ ->
        let lo, p1 = Varint.read data ~pos:!pos in
        let hi, p2 = Varint.read data ~pos:p1 in
        if lo > hi then E.fail (E.Malformed "shard range");
        pos := p2;
        (lo, hi))
  in
  if !pos <> limit then
    E.fail (E.Malformed (Printf.sprintf "%d trailing byte(s)" (limit - !pos)));
  let spec =
    {
      gs_model = model;
      gs_p = p;
      gs_m = m;
      gs_alpha = alpha;
      gs_exponent = exponent;
      gs_sizes = sizes;
      gs_strategies = strategies;
      gs_trials = trials;
      gs_metric = metric;
      gs_source = source;
      gs_budget_mul = budget_mul;
      gs_budget_add = budget_add;
      gs_seed = seed;
    }
  in
  (* shards must partition [0, n_tasks) exactly *)
  let n = n_tasks spec in
  let covered = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      if lo <> !covered then E.fail (E.Malformed "shards do not tile the task range");
      covered := hi)
    shards;
  if !covered <> n then E.fail (E.Malformed "shards do not cover the task range");
  { p_spec = spec; p_shards = shards }

(* ------------------------------------------------------------------ *)
(* Directory layout                                                    *)
(* ------------------------------------------------------------------ *)

let plan_path dir = Filename.concat dir "grid.sfg"
let json_path dir = Filename.concat dir "grid.json"
let shards_dir dir = Filename.concat dir "shards"
let shard_path dir i = Filename.concat (shards_dir dir) (Printf.sprintf "shard-%04d.ckpt" i)
let csv_path dir = Filename.concat dir "measure.csv"
let manifest_path dir = Filename.concat dir "manifest.json"
let sock_path dir = Filename.concat dir "fabric.sock"

let write_file_atomic path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* --- JSON rendering (deterministic, hand-rolled) ------------------- *)

let jstr = Sf_obs.Export.json_string
let jfloat f = jstr (Printf.sprintf "%.17g" f)

let spec_json s =
  Printf.sprintf
    "{\"model\": %s, \"p\": %s, \"m\": %d, \"alpha\": %s, \"exponent\": %s, \"sizes\": [%s], \
     \"strategies\": [%s], \"trials\": %d, \"metric\": %s, \"source\": %s, \"budget\": [%d, \
     %d], \"seed\": %d}"
    (jstr s.gs_model) (jfloat s.gs_p) s.gs_m (jfloat s.gs_alpha) (jfloat s.gs_exponent)
    (String.concat ", " (List.map string_of_int s.gs_sizes))
    (String.concat ", " (List.map jstr s.gs_strategies))
    s.gs_trials
    (jstr (match s.gs_metric with `Neighbor -> "neighbor" | `Target -> "target"))
    (jstr (match s.gs_source with `Oldest -> "oldest" | `Random -> "random"))
    s.gs_budget_mul s.gs_budget_add s.gs_seed

let shards_json plan =
  plan.p_shards |> Array.to_list
  |> List.map (fun (lo, hi) -> Printf.sprintf "[%d, %d]" lo hi)
  |> String.concat ", "

let write_plan ~dir plan =
  mkdir_p dir;
  mkdir_p (shards_dir dir);
  write_file_atomic (plan_path dir) (encode plan);
  write_file_atomic (json_path dir)
    (Printf.sprintf "{\"schema\": \"scalefree.grid/1\", \"grid\": %s, \"n_tasks\": %d, \
                     \"shards\": [%s]}\n"
       (spec_json plan.p_spec) (n_tasks plan.p_spec) (shards_json plan))

let load_plan ~dir =
  let path = plan_path dir in
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "no grid plan at %s (is this a fabric run directory?)" path);
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (decode data, Crc32.string data)

let plan_crc plan = Crc32.string (encode plan)

(* ------------------------------------------------------------------ *)
(* Deterministic outputs                                               *)
(* ------------------------------------------------------------------ *)

let outcomes_crc outcomes =
  let buf = Buffer.create (9 * Array.length outcomes) in
  let b8 = Bytes.create 8 in
  Array.iter
    (fun (cost, truncated, gave_up) ->
      Bytes.set_int64_le b8 0 (Int64.bits_of_float cost);
      Buffer.add_bytes buf b8;
      Buffer.add_char buf
        (Char.chr ((if truncated then 1 else 0) lor if gave_up then 2 else 0)))
    outcomes;
  Crc32.string (Buffer.contents buf)

let search_prefix = "search."

let is_search name =
  String.length name >= String.length search_prefix
  && String.sub name 0 (String.length search_prefix) = search_prefix

let point_json (pt : S.point) =
  Printf.sprintf
    "{\"n\": %d, \"strategy\": %s, \"trials\": %d, \"mean\": %s, \"ci95\": %s, \"median\": \
     %s, \"q90\": %s, \"timeouts\": %d, \"gave_up\": %d}"
    pt.S.n (jstr pt.S.strategy) pt.S.trials
    (jstr (Printf.sprintf "%.6g" pt.S.mean))
    (jstr (Printf.sprintf "%.6g" pt.S.ci95))
    (jstr (Printf.sprintf "%.6g" pt.S.median))
    (jstr (Printf.sprintf "%.6g" pt.S.q90))
    pt.S.timeouts pt.S.gave_up

(* The deterministic manifest: byte-identical at any worker count and
   across any crash/resume history.  It describes the measurement, not
   the execution — the shard plan stays in grid.json, because shard
   counts legitimately differ between a sequential and a distributed
   run of the same grid.  Counters are restricted to the search.*
   family — generation and cache counters legitimately differ between
   crash histories when a corpus cache is configured (a re-run trial
   hits where the first run missed), while search.* counters are a
   function of the trials whose outcomes were persisted. *)
let manifest plan ~outcomes ~counters ~points =
  let counters = List.filter (fun (name, _) -> is_search name) counters in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\": \"scalefree.fabric/1\",\n";
  Buffer.add_string buf (Printf.sprintf " \"grid\": %s,\n" (spec_json plan.p_spec));
  Buffer.add_string buf (Printf.sprintf " \"n_tasks\": %d,\n" (n_tasks plan.p_spec));
  Buffer.add_string buf
    (Printf.sprintf " \"outcomes_crc32\": \"0x%08lx\",\n" (outcomes_crc outcomes));
  Buffer.add_string buf
    (Printf.sprintf " \"counters\": {%s},\n"
       (String.concat ", "
          (List.map (fun (name, v) -> Printf.sprintf "%s: %d" (jstr name) v) counters)));
  Buffer.add_string buf
    (Printf.sprintf " \"points\": [%s]}\n" (String.concat ",\n  " (List.map point_json points)));
  Buffer.contents buf

let write_outputs ~dir plan ~outcomes ~counters =
  let spec = plan.p_spec in
  let points =
    S.aggregate ~sizes:spec.gs_sizes ~strategies:spec.gs_strategies ~spec:(core_spec spec)
      outcomes
  in
  write_file_atomic (csv_path dir) (S.points_to_csv points);
  write_file_atomic (manifest_path dir) (manifest plan ~outcomes ~counters ~points);
  points
