(* The process pool: a coordinator select loop and the matching worker
   loop, generic over what a "job" is.  The grid runner (Coordinator /
   Worker) and the experiment fan-out (Sf_experiments.Distrib) both
   sit on this engine; neither defines its own process management.

   Life of a worker: the coordinator binds DIR/fabric.sock (through
   Sf_obs.Sock, so a socket left by a crashed coordinator is reclaimed
   and a live one is refused — double-running the same grid directory
   is impossible), spawns N processes, and each connects back, says
   Hello pid, and is fed Assign / answers Done until the pending queue
   drains, then gets Quit.

   Death is detected as connection EOF (or an unresynchronisable
   stream): the worker's in-flight job goes back to the head of the
   queue, a replacement process is spawned (up to max_spawns), and the
   zombie is reaped by pid.  SIGKILL at any instant is therefore an
   ordinary event, which is what --fault-rate leans on.  The engine
   never looks inside job bodies, so determinism is entirely the
   client's concern: jobs must be pure functions of their index. *)

module Registry = Sf_obs.Registry
module Trace = Sf_obs.Trace

let c_spawned = Registry.counter "fabric.workers_spawned"
let c_deaths = Registry.counter "fabric.worker_deaths"
let c_reassigned = Registry.counter "fabric.reassigned"
let c_jobs_done = Registry.counter "fabric.jobs_done"
let g_live = Registry.gauge "fabric.workers_live"

type report = {
  sw_completed : int;
  sw_spawned : int;
  sw_deaths : int;
  sw_reassigned : int;
}

let spawn_exec argv =
  (* the child shares the parent's buffered stdio; flush so nothing is
     printed twice. Unix.create_process (posix_spawn underneath), not
     fork+exec: OCaml 5 forbids Unix.fork in any process that has ever
     created a domain, and callers like bench/main.exe run pool work
     before fanning out *)
  flush stdout;
  flush stderr;
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr

type wstate = {
  w_conn : Proto.conn;
  mutable w_pid : int option;  (* learned from Hello *)
  mutable w_job : int option;
}

let trace name args = if Trace.active () then Trace.emit name Trace.Instant ~args

let run ~who ~sock_path ~workers ?(backlog = 16) ?max_spawns ?stop_after ~spawn ~pending
    ~assign_body ~on_done ?(on_progress = fun ~job:_ ~body:_ -> ())
    ?(on_telemetry = fun ~pid:_ ~job:_ ~body:_ -> ()) () =
  if workers < 1 then invalid_arg (who ^ ": need at least one worker");
  let total = List.length pending in
  let target = match stop_after with Some k -> max 1 (min k total) | None -> total in
  let max_spawns = Option.value max_spawns ~default:(workers + 32) in
  let zero = { sw_completed = 0; sw_spawned = 0; sw_deaths = 0; sw_reassigned = 0 } in
  if total = 0 then (`Complete, zero)
  else begin
    let listen_fd = Sf_obs.Sock.bind_unix ~backlog ~who sock_path in
    let pending = ref pending in
    let completed = ref 0 in
    let conns : wstate list ref = ref [] in
    let spawned = ref 0 and deaths = ref 0 and reassigned = ref 0 in
    let children = Hashtbl.create 16 in
    (* live spawned pids *)
    let set_live () = Registry.set_gauge g_live (float_of_int (Hashtbl.length children)) in
    let spawn_one () =
      let pid = spawn () in
      incr spawned;
      Sf_obs.Counter.incr c_spawned;
      Hashtbl.replace children pid ();
      set_live ();
      trace "fabric.spawn" [ ("pid", Trace.Int pid) ]
    in
    let reap_nonblock () =
      let exited =
        Hashtbl.fold
          (fun pid () acc ->
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> acc
            | _ -> pid :: acc
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> pid :: acc)
          children []
      in
      List.iter (fun pid -> Hashtbl.remove children pid) exited;
      if exited <> [] then set_live ()
    in
    let drop w =
      (try Unix.close (Proto.conn_fd w.w_conn) with Unix.Unix_error _ -> ());
      conns := List.filter (fun o -> o != w) !conns
    in
    (* a vanished or unresynchronisable worker: give its job back and
       note the death; the respawn check below starts a replacement *)
    let death w =
      incr deaths;
      Sf_obs.Counter.incr c_deaths;
      trace "fabric.death"
        [ ("pid", Trace.Int (Option.value w.w_pid ~default:0)) ];
      (match w.w_job with
      | Some job ->
        pending := job :: !pending;
        incr reassigned;
        Sf_obs.Counter.incr c_reassigned;
        trace "fabric.reassign" [ ("job", Trace.Int job) ]
      | None -> ());
      drop w
    in
    let assign_or_quit w =
      match !pending with
      | [] ->
        (try Proto.send w.w_conn Proto.Quit with Unix.Unix_error _ -> ());
        drop w
      | job :: rest -> (
        pending := rest;
        w.w_job <- Some job;
        match Proto.send w.w_conn (Proto.Assign { job; body = assign_body job }) with
        | () -> trace "fabric.assign" [ ("job", Trace.Int job) ]
        | exception Unix.Unix_error _ -> death w)
    in
    let handle_msg w = function
      | Proto.Hello pid ->
        w.w_pid <- Some pid;
        assign_or_quit w
      | Proto.Done { job; body } ->
        w.w_job <- None;
        incr completed;
        Sf_obs.Counter.incr c_jobs_done;
        trace "fabric.done" [ ("job", Trace.Int job) ];
        on_done ~job ~body;
        if !completed < target then assign_or_quit w
      | Proto.Progress { job; body } -> on_progress ~job ~body
      | Proto.Telemetry { job; body } ->
        on_telemetry ~pid:(Option.value w.w_pid ~default:0) ~job ~body
      | Proto.Assign _ | Proto.Quit -> death w
    in
    let cleanup ~kill =
      List.iter (fun w -> try Unix.close (Proto.conn_fd w.w_conn) with Unix.Unix_error _ -> ()) !conns;
      conns := [];
      if kill then
        Hashtbl.iter
          (fun pid () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          children;
      (* grace period for clean exits, then SIGKILL stragglers *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait_children () =
        reap_nonblock ();
        if Hashtbl.length children > 0 then
          if Unix.gettimeofday () > deadline then begin
            Hashtbl.iter
              (fun pid () ->
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
              children;
            Hashtbl.reset children
          end
          else begin
            ignore (Unix.select [] [] [] 0.02);
            wait_children ()
          end
      in
      wait_children ();
      set_live ();
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink sock_path with Unix.Unix_error _ -> ()
    in
    let fail msg =
      cleanup ~kill:true;
      failwith (who ^ ": " ^ msg)
    in
    (try
       for _ = 1 to min workers total do
         spawn_one ()
       done
     with e ->
       cleanup ~kill:true;
       raise e);
    while !completed < target do
      reap_nonblock ();
      (* replace dead processes while work remains *)
      let in_flight = List.length (List.filter (fun w -> w.w_job <> None) !conns) in
      let outstanding = List.length !pending + in_flight in
      let want = min workers outstanding in
      while Hashtbl.length children < want && !completed < target do
        if !spawned >= max_spawns then
          fail
            (Printf.sprintf "spawn limit exceeded (%d spawns for %d workers): workers are dying faster than they finish jobs"
               !spawned workers);
        spawn_one ()
      done;
      if outstanding = 0 && !completed < target then
        (* every job is done or abandoned yet the target is unreached —
           cannot happen while deaths requeue jobs, but guard against a
           logic error looping forever *)
        fail "no outstanding work but target unreached";
      let fds = listen_fd :: List.map (fun w -> Proto.conn_fd w.w_conn) !conns in
      match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        if List.mem listen_fd readable then begin
          match Unix.accept listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> conns := { w_conn = Proto.conn fd; w_pid = None; w_job = None } :: !conns
        end;
        (* snapshot: handle_msg mutates the conns list, and an earlier
           message in this pass may already have dropped (closed) a
           later connection — re-check membership before pumping *)
        let snapshot =
          List.filter (fun w -> List.mem (Proto.conn_fd w.w_conn) readable) !conns
        in
        List.iter
          (fun w ->
            if List.memq w !conns then
              match Proto.pump w.w_conn with
              | `Eof | `Bad _ -> death w
              | `Msgs msgs ->
                List.iter (fun m -> if List.memq w !conns then handle_msg w m) msgs)
          snapshot
    done;
    let stopped = !completed < total in
    cleanup ~kill:stopped;
    ( (if stopped then `Stopped_early else `Complete),
      {
        sw_completed = !completed;
        sw_spawned = !spawned;
        sw_deaths = !deaths;
        sw_reassigned = !reassigned;
      } )
  end

let worker_loop ~connect ~handle =
  let fd = Sf_obs.Sock.connect_unix connect in
  let c = Proto.conn fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Proto.send c (Proto.Hello (Unix.getpid ())) with Unix.Unix_error _ -> ());
      let rec loop () =
        match Proto.recv_block c with
        | None | Some Proto.Quit -> ()
        | Some (Proto.Assign { job; body }) ->
          let progress body =
            try Proto.send c (Proto.Progress { job; body }) with Unix.Unix_error _ -> ()
          in
          let telemetry body =
            try Proto.send c (Proto.Telemetry { job; body }) with Unix.Unix_error _ -> ()
          in
          let result = handle ~job ~body ~progress ~telemetry in
          (try Proto.send c (Proto.Done { job; body = result })
           with Unix.Unix_error _ -> ());
          loop ()
        | Some (Proto.Hello _ | Proto.Done _ | Proto.Progress _ | Proto.Telemetry _) ->
          failwith "fabric worker: unexpected coordinator message"
      in
      loop ())
