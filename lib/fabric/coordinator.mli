(** The coordinator: owns a fabric run directory, drives the
    {!Swarm} over whatever shards are not yet complete, and merges the
    checkpoints into the final measure CSV and manifest
    (doc/FABRIC.md).

    {b The determinism contract.} The merge blits shard outcome slices
    into one array at their task offsets — reconstructing exactly the
    outcome sequence a sequential {!Sf_core.Searchability.measure}
    produces — and aggregates with the same fold. Worker count, crash
    history, fault injection and assignment order change how fast the
    array fills, never its contents: [measure.csv] and
    [manifest.json] are byte-identical across all of them. *)

type shard_status = {
  st_shard : int;
  st_lo : int;
  st_hi : int;
  st_done : int;  (** trials persisted, out of [hi - lo] *)
  st_state : [ `Missing | `Partial | `Complete ];
}

val default_shards : workers:int -> Grid.spec -> int
(** [min (max 1 workers * 4) n_tasks], floored at one — enough slack
    for work stealing without checkpoint-file noise. *)

val prepare : dir:string -> shards:int -> Grid.spec -> Grid.plan * int32
(** Validate, partition, create the run directory and persist the
    plan. @raise Failure when [dir] already holds a plan — a started
    run is resumed, never re-planned. *)

val load : dir:string -> Grid.plan * int32
(** The persisted plan and its file CRC (what checkpoints bind to). *)

val status : dir:string -> Grid.plan * int32 -> shard_status list
val render_status : Grid.plan -> shard_status list -> string

val pending : dir:string -> grid_crc:int32 -> Grid.plan -> int list
(** Shards without a complete checkpoint, in index order.
    @raise Failure on a checkpoint from a different grid or seed. *)

val merge :
  dir:string ->
  grid_crc:int32 ->
  Grid.plan ->
  (float * bool * bool) array * (string * int) list
(** The full task-order outcome array and summed counter deltas.
    @raise Failure while any shard is incomplete. *)

val run :
  dir:string ->
  workers:int ->
  ?ckpt_every:int ->
  ?fault_rate:float ->
  ?stop_after:int ->
  ?max_spawns:int ->
  ?sock_path:string ->
  ?trace:bool ->
  ?on_shard_progress:(shard:int -> done_tasks:int -> total:int -> unit) ->
  spawn:(sock_path:string -> int) ->
  Grid.plan * int32 ->
  [ `Complete of Sf_core.Searchability.point list * Swarm.report
  | `Stopped_early of Swarm.report ]
(** Run every pending shard and, on completion, merge and write the
    outputs. [workers = 0] runs shards in-process through the same
    runner, checkpoints and merge (no sockets, [fault_rate] forced to
    0); [workers > 0] forks via [spawn] (given the control socket
    path) and drives the {!Swarm}. [stop_after k] completes [k] shards
    then SIGKILLs the rest — the controlled crash for tests and CI;
    the merge is skipped and [`Stopped_early] returned. [max_spawns]
    defaults generously under fault injection (each checkpoint
    boundary is an at-most-once kill point). In distributed mode the
    merged counter deltas are folded into this process's registry so
    live telemetry reports grid totals.

    [trace] asks each worker (via the {!Relay} flag in the [Assign]
    body) to relay its buffered [fabric.*] trace events and counter
    deltas after every checkpoint write. Relayed events replay into
    this process's trace stream tagged with a per-worker track name
    (["worker-1"], ... in first-seen pid order), so a Perfetto export
    shows one named track per process; relayed counters apply live,
    and the final merge adds only the checkpointed-but-never-relayed
    gap — merged totals, [measure.csv] and [manifest.json] are
    byte-identical with tracing on or off. [on_shard_progress] fires
    on every worker progress message with that shard's cumulative
    count — what [sffabric] renders as its consolidated progress
    line.

    @raise Invalid_argument on [workers < 0] or [fault_rate] outside
    [\[0, 1)]; [Failure] on foreign checkpoints or the spawn limit. *)
